// Reuse-cache throughput on a Zipf-skewed, read-mostly operation mix
// (DESIGN.md §4d), cache on vs cache off, single worker — the 1-CPU
// acceptance shape for the cache subsystem is >=2x closed-loop throughput
// and a lower open-loop p99 with the cache on.
//
// The workload joins the two access patterns the cache serves:
//
//   * scan templates — a small rotating set of sequential-scan shapes over
//     a read-only dimension table ("dim", unindexed predicate column).
//     Uncached, every execution walks the whole table; cached, the first
//     execution fills a result entry that is never invalidated (nothing
//     writes dim), so repeats are O(1) lock-free hits.
//   * Zipf point reads + increments over a partitioned "accounts" table
//     with a unique (relation-global) hash index on the key.  Point-read
//     entries carry partition-precise footprints, so an increment kills
//     only the entries whose partition it wrote — hot keys in untouched
//     partitions keep hitting.
//
//   * CacheMixClosed — closed-loop qps, Args(cache_on, read_pct) with
//     read_pct 90 and 99.  Counters: qps, hit_rate, invalidations.
//   * CacheMixOpenLoop — same mix at a fixed offered rate (paced Submit,
//     latency measured from the *scheduled* send instant, so server
//     slowdown shows up as queueing delay, not reduced load).  Counters:
//     qps, lat_p50_us, lat_p99_us.
//
// Run with --json to emit BENCH_cache_throughput.json (CI artifact).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/cache/reuse_cache.h"
#include "src/core/database.h"
#include "src/server/query_service.h"
#include "src/workload/generator.h"

namespace mmdb {
namespace {

constexpr int32_t kAccounts = 8192;   // 8 partitions at the default 1024 cap
constexpr int32_t kDimRows = 10000;   // sequential-scan cost per uncached scan
constexpr uint32_t kScanTemplates = 8;

std::unique_ptr<Database> MakeDb(bool cache_on) {
  auto db = std::make_unique<Database>();
  db->reuse_cache().SetEnabled(cache_on);

  // Read-write fact table: unique global index on id => precise footprints.
  db->CreateTable("accounts", {{"id", Type::kInt32}, {"bal", Type::kInt32}});
  IndexConfig unique;
  unique.unique = true;
  db->CreateIndex("accounts", "id", IndexKind::kChainedBucketHash, unique);
  for (int32_t i = 0; i < kAccounts; ++i) {
    db->Insert("accounts", {Value(i), Value(1000)});
  }

  // Read-only dimension table; `weight` is unindexed so every uncached
  // template query is a full sequential scan.
  db->CreateTable("dim", {{"id", Type::kInt32}, {"weight", Type::kInt32}});
  Rng rng(5);
  for (int32_t i = 0; i < kDimRows; ++i) {
    db->Insert("dim", {Value(i), Value(int32_t(rng.NextBounded(1000)))});
  }
  return db;
}

MixSpec Mix(double read_pct) {
  MixSpec spec;
  spec.key_domain = kAccounts;
  spec.zipf_theta = 0.99;
  spec.read_pct = read_pct;
  spec.point_pct = 50.0;  // reads: half hot point lookups, half scan templates
  spec.templates = kScanTemplates;
  return spec;
}

/// Translates one MixedOp into a service operation.
Operation ToOperation(const MixedOp& op) {
  switch (op.kind) {
    case MixedOp::Kind::kScanRead: {
      // ~1% selectivity scan template over the dimension table.
      SelectSpec sel;
      sel.table = "dim";
      sel.where = {WhereClause{"weight", CompareOp::kGt,
                               Value(int32_t(990 + op.template_id % 9))}};
      return sel;
    }
    case MixedOp::Kind::kPointRead: {
      SelectSpec sel;
      sel.table = "accounts";
      sel.where = {WhereClause{"id", CompareOp::kEq, Value(int32_t(op.key))}};
      sel.columns = {"accounts.bal"};
      return sel;
    }
    case MixedOp::Kind::kInsert:
    case MixedOp::Kind::kUpdate:
      break;
  }
  IncrementSpec inc;
  inc.table = "accounts";
  inc.match = WhereClause{"id", CompareOp::kEq, Value(int32_t(op.key))};
  inc.field = "bal";
  inc.delta = 1;
  return inc;
}

void BM_CacheMixClosed(benchmark::State& state) {
  const bool cache_on = state.range(0) != 0;
  const double read_pct = static_cast<double>(state.range(1));
  auto db = MakeDb(cache_on);
  ServiceOptions opts;
  opts.workers = 1;  // the acceptance shape is single-CPU
  QueryService service(db.get(), opts);
  Session* session = service.OpenSession();
  OpMixGenerator gen(Mix(read_pct), /*seed=*/42);

  int64_t ops = 0;
  for (auto _ : state) {
    constexpr int kBatch = 256;
    for (int i = 0; i < kBatch; ++i) {
      OpResult r = service.Execute(session, ToOperation(gen.Next()));
      if (!r.ok()) {
        state.SkipWithError(r.status.ToString().c_str());
        return;
      }
    }
    ops += kBatch;
  }

  const cache::CacheStats cs = db->reuse_cache().Stats();
  state.counters["qps"] = benchmark::Counter(static_cast<double>(ops),
                                             benchmark::Counter::kIsRate);
  state.counters["cache_on"] = cache_on ? 1 : 0;
  state.counters["read_pct"] = read_pct;
  state.counters["hit_rate"] =
      cs.hits + cs.misses > 0
          ? static_cast<double>(cs.hits) / double(cs.hits + cs.misses)
          : 0.0;
  state.counters["invalidations"] = static_cast<double>(cs.invalidations);
  service.CloseSession(session);
}
BENCHMARK(BM_CacheMixClosed)
    ->Args({0, 90})
    ->Args({1, 90})
    ->Args({0, 99})
    ->Args({1, 99})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_CacheMixOpenLoop(benchmark::State& state) {
  const bool cache_on = state.range(0) != 0;
  constexpr int kOfferedPerSec = 1000;  // sustainable for both modes
  constexpr int kOpsPerIter = 1000;
  auto db = MakeDb(cache_on);
  ServiceOptions opts;
  opts.workers = 1;
  opts.queue_depth = 4096;  // queueing shows up as latency, not shed
  QueryService service(db.get(), opts);
  Session* session = service.OpenSession();
  OpMixGenerator gen(Mix(90.0), /*seed=*/42);

  std::vector<double> latencies_us;
  for (auto _ : state) {
    using Clock = std::chrono::steady_clock;
    const auto interval =
        std::chrono::nanoseconds(1'000'000'000 / kOfferedPerSec);
    std::vector<double> lat(kOpsPerIter, 0.0);
    std::atomic<int> done{0};
    std::atomic<int> errors{0};
    const auto start = Clock::now();
    for (int i = 0; i < kOpsPerIter; ++i) {
      const auto scheduled = start + i * interval;
      std::this_thread::sleep_until(scheduled);
      Status s = service.Submit(
          session, ToOperation(gen.Next()), [&lat, &done, &errors, i,
                                             scheduled](OpResult r) {
            if (!r.ok()) errors.fetch_add(1, std::memory_order_relaxed);
            lat[i] = std::chrono::duration<double, std::micro>(
                         Clock::now() - scheduled)
                         .count();
            done.fetch_add(1, std::memory_order_release);
          });
      if (!s.ok()) {
        state.SkipWithError("submit rejected");
        return;
      }
    }
    while (done.load(std::memory_order_acquire) < kOpsPerIter) {
      std::this_thread::yield();
    }
    if (errors.load() != 0) {
      state.SkipWithError("operation failed");
      return;
    }
    latencies_us.insert(latencies_us.end(), lat.begin(), lat.end());
  }

  std::sort(latencies_us.begin(), latencies_us.end());
  auto pct = [&](double p) {
    if (latencies_us.empty()) return 0.0;
    const size_t i = std::min(latencies_us.size() - 1,
                              size_t(p * double(latencies_us.size())));
    return latencies_us[i];
  };
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(latencies_us.size()), benchmark::Counter::kIsRate);
  state.counters["cache_on"] = cache_on ? 1 : 0;
  state.counters["lat_p50_us"] = pct(0.50);
  state.counters["lat_p99_us"] = pct(0.99);
  service.CloseSession(session);
}
BENCHMARK(BM_CacheMixOpenLoop)
    ->Arg(0)
    ->Arg(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace
}  // namespace mmdb

MMDB_BENCH_MAIN(cache_throughput);
