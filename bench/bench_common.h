// Shared setup for the paper-reproduction benchmarks.
//
// Conventions: relation cardinalities and parameter sweeps follow Section 3
// (30,000-element indices; 20,000/30,000-tuple join relations).  Absolute
// times are ~3 orders of magnitude below the paper's VAX 11/750 numbers;
// EXPERIMENTS.md compares *shapes* (who wins, where the crossovers sit).

#ifndef MMDB_BENCH_BENCH_COMMON_H_
#define MMDB_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/exec/join.h"
#include "src/exec/project.h"
#include "src/exec/select.h"
#include "src/index/index.h"
#include "src/index/key_ops.h"
#include "src/index/ttree.h"
#include "src/storage/relation.h"
#include "src/workload/generator.h"

namespace mmdb {
namespace bench {

inline constexpr size_t kIndexElements = 30000;  // Section 3.2.2

/// The eight structures in paper order.
inline const std::vector<IndexKind>& AllIndexKinds() {
  static const std::vector<IndexKind> kinds = {
      IndexKind::kArray,          IndexKind::kAvlTree,
      IndexKind::kBTree,          IndexKind::kTTree,
      IndexKind::kChainedBucketHash, IndexKind::kExtendibleHash,
      IndexKind::kLinearHash,     IndexKind::kModifiedLinearHash,
  };
  return kinds;
}

/// A relation of `n` unique int keys (0..n-1 shuffled) with an array
/// primary index on the key (the paper's relation-scan vehicle).
inline std::unique_ptr<Relation> UniqueKeyRelation(size_t n,
                                                   uint64_t seed = 42) {
  Schema schema({{"key", Type::kInt32}, {"seq", Type::kInt32}});
  auto rel = std::make_unique<Relation>("bench", schema);
  std::vector<int32_t> keys(n);
  for (size_t i = 0; i < n; ++i) keys[i] = static_cast<int32_t>(i);
  Rng rng(seed);
  rng.Shuffle(&keys);
  int32_t seq = 0;
  for (int32_t k : keys) rel->Insert({Value(k), Value(seq++)});

  auto ops = std::make_shared<FieldKeyOps>(&rel->schema(), 0);
  IndexConfig config;
  config.expected = n;
  auto primary = CreateIndex(IndexKind::kArray, std::move(ops), config);
  primary->set_name("bench.key_array");
  primary->set_key_fields({0});
  rel->AttachIndex(std::move(primary));
  return rel;
}

/// Builds an index of `kind` on field 0 and loads every tuple.
inline std::unique_ptr<TupleIndex> BuildIndex(const Relation& rel,
                                              IndexKind kind, int node_size) {
  IndexConfig config;
  config.node_size = node_size;
  config.expected = rel.cardinality();
  auto ops = std::make_shared<FieldKeyOps>(&rel.schema(), 0);
  auto index = CreateIndex(kind, std::move(ops), config);
  index->BeginBulk();
  rel.ForEachTuple([&](TupleRef t) { index->Insert(t); });
  index->EndBulk();
  return index;
}

/// Join-test pair per Section 3.3.1.  Outer values are drawn from the
/// inner's (semijoin selectivity), both sides share duplicate composition.
struct JoinPair {
  std::unique_ptr<Relation> outer;
  std::unique_ptr<Relation> inner;
  std::unique_ptr<TupleIndex> outer_tree;  // T Tree on the join column
  std::unique_ptr<TupleIndex> inner_tree;
};

inline JoinPair MakeJoinPair(size_t outer_n, size_t inner_n, double dup_pct,
                             double stddev, double semijoin_pct,
                             uint64_t seed = 7, bool with_trees = true) {
  WorkloadGen gen(seed);
  ColumnData inner_col = gen.Generate({inner_n, dup_pct, stddev});
  ColumnData outer_col =
      gen.GenerateMatching({outer_n, dup_pct, stddev}, inner_col.uniques,
                           semijoin_pct);
  JoinPair pair;
  pair.outer = WorkloadGen::BuildRelation("outer", outer_col);
  pair.inner = WorkloadGen::BuildRelation("inner", inner_col);
  if (with_trees) {
    pair.outer_tree = BuildIndex(*pair.outer, IndexKind::kTTree, 16);
    pair.inner_tree = BuildIndex(*pair.inner, IndexKind::kTTree, 16);
  }
  return pair;
}

inline JoinSpec SpecOf(const JoinPair& pair) {
  return JoinSpec{pair.outer.get(), 0, pair.inner.get(), 0};
}

inline const OrderedIndex& OuterTree(const JoinPair& pair) {
  return *static_cast<const OrderedIndex*>(pair.outer_tree.get());
}

inline const OrderedIndex& InnerTree(const JoinPair& pair) {
  return *static_cast<const OrderedIndex*>(pair.inner_tree.get());
}

/// A width-1 temp list over every tuple of rel, with field 0 as the output
/// column (projection-bench input).
inline TempList ProjectInput(const Relation& rel) {
  ResultDescriptor desc({&rel});
  desc.AddColumn(0, uint16_t{0});
  TempList list(desc);
  list.Reserve(rel.cardinality());
  rel.ForEachTuple([&](TupleRef t) {
    list.Append1(t);
    return true;
  });
  return list;
}

/// Drop-in replacement for BENCHMARK_MAIN() that understands `--json`:
/// when present, results are additionally written to `BENCH_<name>.json`
/// (Google Benchmark's JSON reporter) in the working directory — the
/// machine-readable artifact CI uploads.  Every other flag passes through.
inline int RunBenchmarkMain(const char* name, int argc, char** argv) {
  std::vector<char*> args;
  bool json = false;
  for (int i = 0; i < argc; ++i) {
    if (argv[i] != nullptr && std::string(argv[i]) == "--json") {
      json = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  std::string out_flag;
  std::string fmt_flag = "--benchmark_out_format=json";
  if (json) {
    out_flag = std::string("--benchmark_out=BENCH_") + name + ".json";
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  ::benchmark::Initialize(&n, args.data());
  if (::benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 16);
  for (char c : s) {
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// The --json convention for the printf-style report benches (Graph 3's
/// distribution table, Table 1's storage costs): runs `fn` with stdout
/// captured, re-prints the report, and writes BENCH_<name>.json holding
/// the text — so *every* bench produces a machine-collectable artifact.
inline int RunTextReportMain(const char* name, int argc, char** argv,
                             void (*fn)()) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (argv[i] != nullptr && std::string(argv[i]) == "--json") json = true;
  }
  if (!json) {
    fn();
    return 0;
  }
  const std::string tmp_path = std::string("BENCH_") + name + ".capture";
  std::fflush(stdout);
  const int saved = ::dup(::fileno(stdout));
  if (saved < 0 || std::freopen(tmp_path.c_str(), "w", stdout) == nullptr) {
    fn();  // capture unavailable; still run
    return 0;
  }
  fn();
  std::fflush(stdout);
  ::dup2(saved, ::fileno(stdout));
  ::close(saved);

  std::ifstream in(tmp_path);
  std::stringstream captured;
  captured << in.rdbuf();
  in.close();
  std::remove(tmp_path.c_str());
  const std::string text = captured.str();
  std::fputs(text.c_str(), stdout);

  const std::string json_path = std::string("BENCH_") + name + ".json";
  std::ofstream out(json_path);
  out << "{\n  \"name\": \"" << name << "\",\n"
      << "  \"format\": \"text_report\",\n"
      << "  \"report\": \"" << JsonEscape(text) << "\"\n}\n";
  return 0;
}

}  // namespace bench
}  // namespace mmdb

/// main() for printf-style report benches, honoring --json via
/// RunTextReportMain; `fn` is a void() report printer.
#define MMDB_BENCH_TEXT_MAIN(name, fn)                                 \
  int main(int argc, char** argv) {                                    \
    return ::mmdb::bench::RunTextReportMain(#name, argc, argv, (fn));  \
  }                                                                    \
  static_assert(true, "require a trailing semicolon")

/// BENCHMARK_MAIN() with the --json convention; `name` keys the output
/// file (BENCH_<name>.json).
#define MMDB_BENCH_MAIN(name)                                    \
  int main(int argc, char** argv) {                              \
    char arg0_default[] = "benchmark";                           \
    char* args_default = arg0_default;                           \
    if (!argv) {                                                 \
      argc = 1;                                                  \
      argv = &args_default;                                      \
    }                                                            \
    return ::mmdb::bench::RunBenchmarkMain(#name, argc, argv);   \
  }                                                              \
  static_assert(true, "require a trailing semicolon")

#endif  // MMDB_BENCH_BENCH_COMMON_H_
