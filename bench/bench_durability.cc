// Durability-path benchmarks: raw WAL append/fsync throughput and
// cold-start recovery time as a function of log-tail length.  Both run
// against InMemEnv so the numbers measure the serialization/replay code,
// not the host filesystem.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "bench/bench_common.h"
#include "src/core/database.h"
#include "src/core/durability.h"
#include "src/txn/log.h"
#include "src/txn/log_format.h"
#include "src/txn/wal.h"
#include "src/util/env.h"

namespace mmdb {
namespace {

LogRecord MakeRecord(uint64_t lsn, uint32_t slot) {
  LogRecord r;
  r.op = LogOp::kInsert;
  r.lsn = lsn;
  r.txn_id = lsn;
  r.relation = "bench";
  r.tid.partition = 0;
  r.tid.slot = slot;
  r.payload.assign(64, std::byte{0x5a});  // a typical small-tuple after-image
  return r;
}

/// Frames-per-second of Append with a group-commit style Sync every
/// `state.range(0)` records (1 = fsync per record, the kSync worst case).
void BM_LogAppendThroughput(benchmark::State& state) {
  const uint64_t group = static_cast<uint64_t>(state.range(0));
  InMemEnv env;
  WalWriter wal(&env, "bench");
  if (!wal.Open(/*start_lsn=*/0, /*truncate=*/true).ok()) {
    state.SkipWithError("wal open failed");
    return;
  }
  std::string encoded;
  log_format::EncodeRecord(MakeRecord(1, 1), &encoded);
  const size_t frame_size = encoded.size();  // fixed-width payload fields

  uint64_t lsn = 0;
  size_t bytes = 0;
  for (auto _ : state) {
    LogRecord r = MakeRecord(++lsn, static_cast<uint32_t>(lsn));
    bytes += frame_size;
    if (!wal.Append(r).ok() ||
        (lsn % group == 0 && !wal.Sync().ok())) {
      state.SkipWithError("wal append/sync failed");
      return;
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
  state.counters["records_per_sec"] =
      benchmark::Counter(static_cast<double>(lsn), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LogAppendThroughput)->Arg(1)->Arg(8)->Arg(64);

/// Wall time of Database::Recover for a checkpointed base of 10k rows plus
/// a WAL tail of `state.range(0)` committed single-row transactions.
void BM_RecoveryTime(benchmark::State& state) {
  const int32_t tail = static_cast<int32_t>(state.range(0));
  InMemEnv env;
  {
    Database db;
    Relation* rel =
        db.CreateTable("r", {{"key", Type::kInt32}, {"seq", Type::kInt32}});
    for (int32_t i = 0; i < 10000; ++i) rel->Insert({Value(i), Value(i)});

    DurabilityOptions options;
    options.mode = DurabilityMode::kSync;
    options.dir = "bench";
    options.env = &env;
    options.flush_interval = std::chrono::hours(1);
    if (!db.EnableDurability(std::move(options)).ok()) {
      state.SkipWithError("enable durability failed");
      return;
    }
    for (int32_t i = 0; i < tail; ++i) {
      std::unique_ptr<Transaction> txn = db.Begin();
      if (!txn->Insert("r", {Value(10000 + i), Value(i)}).ok() ||
          !txn->Commit().ok() ||
          !db.WaitDurable(txn->commit_lsn()).ok()) {
        state.SkipWithError("durable insert failed");
        return;
      }
    }
  }

  size_t recovered = 0;
  for (auto _ : state) {
    Database db;
    RecoveryManager::Progress progress;
    if (!db.Recover("bench", &env, &progress).ok()) {
      state.SkipWithError("recover failed");
      return;
    }
    recovered = progress.tuples_loaded;
    benchmark::DoNotOptimize(recovered);
  }
  state.counters["tuples"] = static_cast<double>(recovered);
  state.counters["wal_tail"] = static_cast<double>(tail);
}
BENCHMARK(BM_RecoveryTime)->Arg(0)->Arg(1000)->Arg(5000);

}  // namespace
}  // namespace mmdb

MMDB_BENCH_MAIN(durability);
