// Footnote 3, measured: "the B+ Tree uses more storage than the B Tree and
// does not perform any better in main memory."  Search time, query-mix
// time, and storage bytes per element for the B Tree, the B+ Tree, and the
// T Tree across node sizes.  The B+ Tree's one physical advantage — the
// linked-leaf scan — is also measured, since it is why disk systems keep it.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/storage/tuple.h"

namespace mmdb {
namespace bench {
namespace {

const IndexKind kKinds[] = {IndexKind::kBTree, IndexKind::kBPlusTree,
                            IndexKind::kTTree};

void BM_Footnote3_Search(benchmark::State& state) {
  const IndexKind kind = kKinds[state.range(0)];
  const int node_size = static_cast<int>(state.range(1));
  auto rel = UniqueKeyRelation(kIndexElements);
  auto index = BuildIndex(*rel, kind, node_size);
  for (auto _ : state) {
    for (int32_t k = 0; k < static_cast<int32_t>(kIndexElements); ++k) {
      benchmark::DoNotOptimize(index->Find(Value(k)));
    }
  }
  state.counters["bytes_per_elem"] =
      static_cast<double>(index->StorageBytes()) / kIndexElements;
  state.SetItemsProcessed(state.iterations() * kIndexElements);
  state.SetLabel(IndexKindName(kind));
}

void BM_Footnote3_QueryMix(benchmark::State& state) {
  const IndexKind kind = kKinds[state.range(0)];
  const int node_size = static_cast<int>(state.range(1));
  auto rel = UniqueKeyRelation(kIndexElements);
  std::vector<TupleRef> tuples;
  rel->ForEachTuple([&](TupleRef t) { tuples.push_back(t); });
  auto index = BuildIndex(*rel, kind, node_size);

  Rng rng(1);
  const Schema& schema = rel->schema();
  for (auto _ : state) {
    for (int op = 0; op < 30000; ++op) {
      TupleRef t = tuples[rng.NextBounded(tuples.size())];
      const uint64_t dice = rng.NextBounded(100);
      if (dice < 60) {
        benchmark::DoNotOptimize(
            index->Find(tuple::GetValue(t, schema, 0)));
      } else if (!index->Erase(t)) {
        index->Insert(t);
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * 30000);
  state.SetLabel(IndexKindName(kind));
}

void BM_Footnote3_Scan(benchmark::State& state) {
  const IndexKind kind = kKinds[state.range(0)];
  const int node_size = static_cast<int>(state.range(1));
  auto rel = UniqueKeyRelation(kIndexElements);
  auto index = BuildIndex(*rel, kind, node_size);
  const auto* ordered = static_cast<const OrderedIndex*>(index.get());
  for (auto _ : state) {
    int64_t sum = 0;
    ordered->ScanAll([&](TupleRef t) {
      sum += reinterpret_cast<intptr_t>(t);
      return true;
    });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kIndexElements);
  state.SetLabel(IndexKindName(kind));
}

void Sweep(benchmark::internal::Benchmark* b) {
  for (long kind = 0; kind < 3; ++kind) {
    for (long node_size : {6, 20, 50}) b->Args({kind, node_size});
  }
}

BENCHMARK(BM_Footnote3_Search)->Apply(Sweep)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Footnote3_QueryMix)->Apply(Sweep)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Footnote3_Scan)->Apply(Sweep)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace mmdb

MMDB_BENCH_MAIN(extra_bplus_vs_b);
