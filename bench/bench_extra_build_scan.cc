// Section 3.3.2's two supporting measurements for the merge joins:
//   * "the arrays can be built and sorted in 60 percent of the time to
//      build the trees", and
//   * "the array can be scanned in about 60 [2/3] percent of the time it
//      takes to scan a tree"
// — the facts that make Sort Merge competitive for high-output joins even
// though Tree Merge does the same number of comparisons.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace mmdb {
namespace bench {
namespace {

void BM_BuildSortedArray(benchmark::State& state) {
  auto rel = UniqueKeyRelation(kIndexElements);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildSortedArray(*rel, 0)->size());
  }
  state.SetLabel("array build+sort");
}

void BM_BuildTTree(benchmark::State& state) {
  auto rel = UniqueKeyRelation(kIndexElements);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildIndex(*rel, IndexKind::kTTree, 16)->size());
  }
  state.SetLabel("T Tree build");
}

void BM_ScanArray(benchmark::State& state) {
  auto rel = UniqueKeyRelation(kIndexElements);
  auto array = BuildSortedArray(*rel, 0);
  for (auto _ : state) {
    int64_t sum = 0;
    for (size_t i = 0; i < array->size(); ++i) {
      sum += reinterpret_cast<intptr_t>(array->at(i));
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kIndexElements);
  state.SetLabel("array scan");
}

void BM_ScanTTree(benchmark::State& state) {
  auto rel = UniqueKeyRelation(kIndexElements);
  auto tree = BuildIndex(*rel, IndexKind::kTTree, 16);
  const auto* ordered = static_cast<const OrderedIndex*>(tree.get());
  for (auto _ : state) {
    int64_t sum = 0;
    ordered->ScanAll([&](TupleRef t) {
      sum += reinterpret_cast<intptr_t>(t);
      return true;
    });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kIndexElements);
  state.SetLabel("T Tree scan");
}

BENCHMARK(BM_BuildSortedArray)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BuildTTree)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScanArray)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScanTTree)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace mmdb

MMDB_BENCH_MAIN(extra_build_scan);
