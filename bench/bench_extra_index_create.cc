// Section 3.2.2 / 3.3.2 — index creation cost: inserting 30,000 elements
// into each structure (the paper quotes ~5 seconds to build a 30,000-entry
// hash table on the VAX, the cost the Hash Join always pays).
// Expected shape: hash builds cheapest; T Tree cheaper than AVL (fewer
// rebalances) and than B Tree at comparable node sizes; the sorted array
// is built by append + one hybrid sort (the Sort Merge discipline).

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace mmdb {
namespace bench {
namespace {

void BM_Extra_Create(benchmark::State& state) {
  const IndexKind kind = AllIndexKinds()[state.range(0)];
  const int node_size = static_cast<int>(state.range(1));
  auto rel = UniqueKeyRelation(kIndexElements);
  std::vector<TupleRef> tuples;
  rel->ForEachTuple([&](TupleRef t) { tuples.push_back(t); });

  for (auto _ : state) {
    IndexConfig config;
    config.node_size = node_size;
    config.expected = kIndexElements;
    auto ops = std::make_shared<FieldKeyOps>(&rel->schema(), 0);
    auto index = CreateIndex(kind, std::move(ops), config);
    index->BeginBulk();
    for (TupleRef t : tuples) index->Insert(t);
    index->EndBulk();
    benchmark::DoNotOptimize(index->size());
  }
  state.SetItemsProcessed(state.iterations() * kIndexElements);
  state.SetLabel(IndexKindName(kind));
}

BENCHMARK(BM_Extra_Create)
    ->Apply([](benchmark::internal::Benchmark* b) {
      for (size_t kind = 0; kind < AllIndexKinds().size(); ++kind) {
        b->Args({static_cast<long>(kind), 16});
      }
    })
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace mmdb

MMDB_BENCH_MAIN(extra_index_create);
