// Section 4's selection claim, measured: "a hash lookup (exact match only)
// is always faster than a tree lookup which is always faster than a
// sequential scan".  Exact-match selections against a 30,000-tuple relation
// through each access path, plus a range selection the hash path cannot
// serve at all.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace mmdb {
namespace bench {
namespace {

struct Setup {
  std::unique_ptr<Relation> rel;
  std::unique_ptr<TupleIndex> tree;
  std::unique_ptr<TupleIndex> hash;
};

Setup& GetSetup() {
  static Setup* s = [] {
    auto* setup = new Setup;
    setup->rel = UniqueKeyRelation(kIndexElements);
    setup->tree = BuildIndex(*setup->rel, IndexKind::kTTree, 16);
    setup->tree->set_key_fields({0});
    setup->hash = BuildIndex(*setup->rel, IndexKind::kModifiedLinearHash, 2);
    setup->hash->set_key_fields({0});
    // The relation needs a primary for the sequential path.
    auto ops = std::make_shared<FieldKeyOps>(&setup->rel->schema(), 0);
    IndexConfig config;
    config.expected = kIndexElements;
    auto primary = CreateIndex(IndexKind::kArray, std::move(ops), config);
    primary->set_key_fields({0});
    setup->rel->AttachIndex(std::move(primary));
    return setup;
  }();
  return *s;
}

constexpr int kLookups = 1000;

void BM_Selection_HashLookup(benchmark::State& state) {
  Setup& s = GetSetup();
  Predicate p;
  p.Add(0, CompareOp::kEq, Value(0));
  for (auto _ : state) {
    for (int k = 0; k < kLookups; ++k) {
      Predicate q;
      q.Add(0, CompareOp::kEq, Value(k * 29 % 30000));
      benchmark::DoNotOptimize(
          SelectHash(*s.rel, q, 0, *static_cast<HashIndex*>(s.hash.get()))
              .size());
    }
  }
  state.SetItemsProcessed(state.iterations() * kLookups);
}

void BM_Selection_TreeLookup(benchmark::State& state) {
  Setup& s = GetSetup();
  for (auto _ : state) {
    for (int k = 0; k < kLookups; ++k) {
      Predicate q;
      q.Add(0, CompareOp::kEq, Value(k * 29 % 30000));
      benchmark::DoNotOptimize(
          SelectTree(*s.rel, q, 0, *static_cast<OrderedIndex*>(s.tree.get()))
              .size());
    }
  }
  state.SetItemsProcessed(state.iterations() * kLookups);
}

void BM_Selection_SequentialScan(benchmark::State& state) {
  Setup& s = GetSetup();
  for (auto _ : state) {
    Predicate q;
    q.Add(0, CompareOp::kEq, Value(static_cast<int32_t>(state.iterations()) %
                                   30000));
    benchmark::DoNotOptimize(SelectScan(*s.rel, q).size());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("one full scan per lookup");
}

void BM_Selection_TreeRange(benchmark::State& state) {
  Setup& s = GetSetup();
  const int width = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Predicate q;
    q.Add(0, CompareOp::kGe, Value(1000)).Add(0, CompareOp::kLt,
                                              Value(1000 + width));
    benchmark::DoNotOptimize(
        SelectTree(*s.rel, q, 0, *static_cast<OrderedIndex*>(s.tree.get()))
            .size());
  }
  state.SetLabel("range width " + std::to_string(width));
}

BENCHMARK(BM_Selection_HashLookup)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Selection_TreeLookup)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Selection_SequentialScan)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Selection_TreeRange)->Arg(10)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace mmdb

MMDB_BENCH_MAIN(extra_selection);
