// Ablation — the quicksort insertion-sort cutoff (Section 3.3.2, footnote
// 6): "we ran a test to determine the optimal subarray size for switching
// from quicksort to insertion sort; the optimal subarray size was 10".
// This bench re-runs that tuning experiment on the Sort Merge build phase.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace mmdb {
namespace bench {
namespace {

void BM_SortCutoff(benchmark::State& state) {
  const int cutoff = static_cast<int>(state.range(0));
  auto rel = UniqueKeyRelation(kIndexElements);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildSortedArray(*rel, 0, cutoff)->size());
  }
  state.SetLabel("cutoff=" + std::to_string(cutoff));
}

BENCHMARK(BM_SortCutoff)
    ->Arg(1)->Arg(2)->Arg(5)->Arg(10)->Arg(20)->Arg(40)->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace mmdb

MMDB_BENCH_MAIN(extra_sort_cutoff);
