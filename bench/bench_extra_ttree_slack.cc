// Ablation — T Tree min/max-count slack (Section 3.2.1): "the minimum and
// maximum counts will usually differ by just a small amount, on the order
// of one or two items, which turns out to be enough to significantly reduce
// the need for tree rotations".  This bench sweeps the slack and reports
// both the mixed-workload time and the rotation count, plus the storage
// cost that the slack trades away.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace mmdb {
namespace bench {
namespace {

void BM_TTreeSlackQueryMix(benchmark::State& state) {
  const int slack = static_cast<int>(state.range(0));
  auto rel = UniqueKeyRelation(kIndexElements);
  std::vector<TupleRef> tuples;
  rel->ForEachTuple([&](TupleRef t) { tuples.push_back(t); });

  IndexConfig config;
  config.node_size = 16;
  config.min_slack = slack;
  auto ops = std::make_shared<FieldKeyOps>(&rel->schema(), 0);
  TTree tree(std::move(ops), config);
  for (TupleRef t : tuples) tree.Insert(t);

  counters::Reset();
  Rng rng(5);
  for (auto _ : state) {
    for (int i = 0; i < 30000; ++i) {
      TupleRef t = tuples[rng.NextBounded(tuples.size())];
      if (!tree.Erase(t)) tree.Insert(t);
    }
  }
  const OpCounters ops_done = counters::Snapshot();
  state.counters["rotations"] = static_cast<double>(ops_done.rotations) /
                                static_cast<double>(state.iterations());
  state.counters["nodes"] = static_cast<double>(tree.node_count());
  state.counters["bytes_per_elem"] =
      static_cast<double>(tree.StorageBytes()) /
      static_cast<double>(tree.size());
  state.SetLabel("slack=" + std::to_string(slack));
}

BENCHMARK(BM_TTreeSlackQueryMix)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace mmdb

MMDB_BENCH_MAIN(extra_ttree_slack);
