// Graph 1 — Index Search: time to search an index of 30,000 unique
// elements once for every element, as a function of node size, for all
// eight structures.  Expected shape (paper): Chained Bucket Hash fastest;
// Modified Linear / Extendible / Linear Hash cheap at small node sizes and
// degrading as chains/buckets grow; AVL < T Tree < Array < B Tree among the
// order-preserving structures, each flat or gently rising in node size.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace mmdb {
namespace bench {
namespace {

void BM_Graph01_Search(benchmark::State& state) {
  const IndexKind kind = AllIndexKinds()[state.range(0)];
  const int node_size = static_cast<int>(state.range(1));
  auto rel = UniqueKeyRelation(kIndexElements);
  auto index = BuildIndex(*rel, kind, node_size);

  counters::Reset();
  for (auto _ : state) {
    for (int32_t k = 0; k < static_cast<int32_t>(kIndexElements); ++k) {
      benchmark::DoNotOptimize(index->Find(Value(k)));
    }
  }
  const OpCounters ops = counters::Snapshot();
  state.SetItemsProcessed(state.iterations() * kIndexElements);
  state.counters["cmp_per_search"] =
      static_cast<double>(ops.comparisons) /
      (static_cast<double>(state.iterations()) * kIndexElements);
  state.SetLabel(IndexKindName(kind));
}

void GraphArgs(benchmark::internal::Benchmark* b) {
  for (size_t kind = 0; kind < AllIndexKinds().size(); ++kind) {
    // Structures without a meaningful node-size axis get one point.
    const IndexKind k = AllIndexKinds()[kind];
    if (k == IndexKind::kArray || k == IndexKind::kAvlTree ||
        k == IndexKind::kChainedBucketHash) {
      b->Args({static_cast<long>(kind), 2});
      continue;
    }
    for (long node_size : {2, 4, 6, 10, 20, 30, 50, 70, 100}) {
      b->Args({static_cast<long>(kind), node_size});
    }
  }
}

BENCHMARK(BM_Graph01_Search)->Apply(GraphArgs)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace mmdb

MMDB_BENCH_MAIN(graph01_search);
