// Graph 2 — Query Mix: interleaved searches/inserts/deletes against an
// index holding ~30,000 elements, for the paper's three mixes
// (80/10/10, 60/20/20, 40/30/30), as a function of node size.
// Expected shape (paper): T Tree beats AVL and B Tree; the array is orders
// of magnitude worse (every update moves half the array); Linear Hashing is
// much slower than the other hash structures because its utilization band
// forces constant reorganization; Modified Linear / Chained Bucket /
// Extendible are the fast group at small node sizes.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/storage/tuple.h"

namespace mmdb {
namespace bench {
namespace {

constexpr int kOpsPerIteration = 30000;

void RunMix(benchmark::State& state, int search_pct, int update_pct_each) {
  const IndexKind kind = AllIndexKinds()[state.range(0)];
  const int node_size = static_cast<int>(state.range(1));
  // Double population: half resident, half spare, so deletes and inserts
  // always have work to do while cardinality stays ~constant.
  auto rel = UniqueKeyRelation(kIndexElements * 2);
  std::vector<TupleRef> resident, spare;
  rel->ForEachTuple([&](TupleRef t) {
    (resident.size() < kIndexElements ? resident : spare).push_back(t);
  });
  IndexConfig config;
  config.node_size = node_size;
  config.expected = kIndexElements;
  auto ops = std::make_shared<FieldKeyOps>(&rel->schema(), 0);
  auto index = CreateIndex(kind, std::move(ops), config);
  index->BeginBulk();
  for (TupleRef t : resident) index->Insert(t);
  index->EndBulk();

  Rng rng(99);
  const Schema& schema = rel->schema();
  for (auto _ : state) {
    for (int op = 0; op < kOpsPerIteration; ++op) {
      const int dice = static_cast<int>(rng.NextBounded(100));
      if (dice < search_pct) {
        TupleRef probe = resident[rng.NextBounded(resident.size())];
        benchmark::DoNotOptimize(
            index->Find(tuple::GetValue(probe, schema, 0)));
      } else if (dice < search_pct + update_pct_each) {
        // Insert a spare element.
        if (spare.empty()) continue;
        const size_t i = rng.NextBounded(spare.size());
        index->Insert(spare[i]);
        resident.push_back(spare[i]);
        spare[i] = spare.back();
        spare.pop_back();
      } else {
        // Delete a resident element.
        if (resident.empty()) continue;
        const size_t i = rng.NextBounded(resident.size());
        index->Erase(resident[i]);
        spare.push_back(resident[i]);
        resident[i] = resident.back();
        resident.pop_back();
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerIteration);
  state.SetLabel(IndexKindName(kind));
}

void BM_Graph02_Mix_80_10_10(benchmark::State& state) { RunMix(state, 80, 10); }
void BM_Graph02_Mix_60_20_20(benchmark::State& state) { RunMix(state, 60, 20); }
void BM_Graph02_Mix_40_30_30(benchmark::State& state) { RunMix(state, 40, 30); }

void GraphArgs(benchmark::internal::Benchmark* b) {
  for (size_t kind = 0; kind < AllIndexKinds().size(); ++kind) {
    const IndexKind k = AllIndexKinds()[kind];
    if (k == IndexKind::kArray) {
      b->Args({static_cast<long>(kind), 2});  // 2 orders of magnitude slower
      continue;
    }
    if (k == IndexKind::kAvlTree || k == IndexKind::kChainedBucketHash) {
      b->Args({static_cast<long>(kind), 2});
      continue;
    }
    for (long node_size : {2, 6, 10, 20, 30, 50, 70, 100}) {
      b->Args({static_cast<long>(kind), node_size});
    }
  }
}

BENCHMARK(BM_Graph02_Mix_60_20_20)->Apply(GraphArgs)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Graph02_Mix_80_10_10)->Apply(GraphArgs)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Graph02_Mix_40_30_30)->Apply(GraphArgs)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace mmdb

MMDB_BENCH_MAIN(graph02_querymix);
