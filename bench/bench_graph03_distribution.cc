// Graph 3 — Distribution of Duplicate Values: cumulative percentage of
// tuples covered by the top x% of values, for the three truncated-normal
// standard deviations the join study uses (0.1 = skewed, 0.4 = moderately
// skewed, 0.8 = near-uniform).
//
// Expected shape (paper): the 0.1 curve rises almost vertically (a few
// values hold most tuples); 0.8 hugs the diagonal.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/workload/generator.h"

namespace mmdb {
namespace {

void Run() {
  constexpr size_t kCardinality = 20000;  // the join tests' |R|
  constexpr double kDuplicatePct = 90;    // many duplicates to distribute
  constexpr int kPoints = 10;

  std::printf("Graph 3 -- Distribution of Duplicate Values\n");
  std::printf("(cumulative %% of tuples vs %% of values, |R|=%zu, dup=%g%%)\n\n",
              kCardinality, kDuplicatePct);
  std::printf("%-14s", "% values ->");
  for (int p = 0; p <= kPoints; ++p) std::printf("%7d", p * 100 / kPoints);
  std::printf("\n");

  for (double stddev : {0.1, 0.4, 0.8}) {
    WorkloadGen gen(2026);
    ColumnData col = gen.Generate({kCardinality, kDuplicatePct, stddev});
    std::vector<double> curve = WorkloadGen::DistributionCurve(col, kPoints);
    std::printf("sigma=%-8.1f", stddev);
    for (double v : curve) std::printf("%7.1f", v);
    std::printf("\n");
  }
  std::printf("\n(sigma=0.1 is the paper's skewed curve; 0.8 near-uniform)\n");
}

}  // namespace
}  // namespace mmdb

MMDB_BENCH_TEXT_MAIN(bench_graph03_distribution, &mmdb::Run);
