// Graph 4 — Join Test 1 (Vary Cardinality): |R1| = |R2| swept up to 30,000,
// keys (0% duplicates), 100% semijoin selectivity.
// Expected shape (paper): Tree Merge best (indices pre-exist), Hash Join
// second, Tree Join close behind, Sort Merge worst (pays build + sort).

#include "bench/join_bench_common.h"

namespace mmdb {
namespace bench {
namespace {

void BM_Graph04_VaryCardinality(benchmark::State& state) {
  JoinBenchBody(state, [](long n) {
    return MakeJoinPair(n, n, /*dup_pct=*/0, /*stddev=*/0.8,
                        /*semijoin_pct=*/100);
  });
}

BENCHMARK(BM_Graph04_VaryCardinality)
    ->Apply([](benchmark::internal::Benchmark* b) {
      JoinSweepArgs(b, {3750, 7500, 15000, 22500, 30000});
    })
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace mmdb

MMDB_BENCH_MAIN(graph04_join_cardinality);
