// Graph 5 — Join Test 2 (Vary Inner Cardinality): |R2| swept 1-100% of
// |R1| = 30,000, keys, 100% semijoin selectivity.  The sweep parameter is
// the percentage.
// Expected shape (paper): as Graph 4 — Tree Merge best, then Hash Join.
//
// Note on workload construction: the semijoin constraint says every R2
// value participates, so R2's values are drawn from R1's; we generate R1
// first and sample R2 from it.

#include "bench/join_bench_common.h"

namespace mmdb {
namespace bench {
namespace {

constexpr size_t kOuterN = 30000;

void BM_Graph05_VaryInner(benchmark::State& state) {
  JoinBenchBody(state, [](long pct) {
    const size_t inner_n = kOuterN * static_cast<size_t>(pct) / 100;
    // R2 (inner) drawn from R1's values: build inner as the matching side.
    WorkloadGen gen(7);
    ColumnData outer_col = gen.Generate({kOuterN, 0, 0.8});
    ColumnData inner_col =
        gen.GenerateMatching({inner_n, 0, 0.8}, outer_col.uniques, 100);
    JoinPair pair;
    pair.outer = WorkloadGen::BuildRelation("outer", outer_col);
    pair.inner = WorkloadGen::BuildRelation("inner", inner_col);
    pair.outer_tree = BuildIndex(*pair.outer, IndexKind::kTTree, 16);
    pair.inner_tree = BuildIndex(*pair.inner, IndexKind::kTTree, 16);
    return pair;
  });
}

BENCHMARK(BM_Graph05_VaryInner)
    ->Apply([](benchmark::internal::Benchmark* b) {
      JoinSweepArgs(b, {1, 10, 25, 50, 75, 100});
    })
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace mmdb

MMDB_BENCH_MAIN(graph05_join_inner);
