// Graph 6 — Join Test 3 (Vary Outer Cardinality): |R1| swept 1-100% of
// |R2| = 30,000, keys, 100% semijoin selectivity.
// Expected shape (paper): the *Tree Join* wins for small |R1| — probing an
// existing index beats building a hash table until |R1| reaches ~60% of
// |R2|, where Hash Join takes over.  Tree Merge close throughout; Sort
// Merge worst.

#include "bench/join_bench_common.h"

namespace mmdb {
namespace bench {
namespace {

constexpr size_t kInnerN = 30000;

void BM_Graph06_VaryOuter(benchmark::State& state) {
  JoinBenchBody(state, [](long pct) {
    const size_t outer_n = kInnerN * static_cast<size_t>(pct) / 100;
    return MakeJoinPair(outer_n, kInnerN, /*dup_pct=*/0, /*stddev=*/0.8,
                        /*semijoin_pct=*/100);
  });
}

BENCHMARK(BM_Graph06_VaryOuter)
    ->Apply([](benchmark::internal::Benchmark* b) {
      JoinSweepArgs(b, {1, 10, 25, 40, 60, 80, 100});
    })
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace mmdb

MMDB_BENCH_MAIN(graph06_join_outer);
