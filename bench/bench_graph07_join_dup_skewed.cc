// Graph 7 — Join Test 4 (Vary Duplicate Percentage, skewed): |R1| = |R2| =
// 20,000, semijoin selectivity 100%, duplicate percentage swept 0-100% with
// the skewed (sigma = 0.1) distribution.
// Expected shape (paper): output size explodes with duplicates; Sort Merge
// scans the contiguous arrays fastest, overtaking the index joins around
// 40% duplicates and even Tree Merge by ~80%.  (Log-scale in the paper.)

#include "bench/join_bench_common.h"

namespace mmdb {
namespace bench {
namespace {

constexpr size_t kN = 20000;

void BM_Graph07_VaryDupSkewed(benchmark::State& state) {
  JoinBenchBody(state, [](long dup_pct) {
    return MakeJoinPair(kN, kN, static_cast<double>(dup_pct), /*stddev=*/0.1,
                        /*semijoin_pct=*/100);
  });
}

BENCHMARK(BM_Graph07_VaryDupSkewed)
    ->Apply([](benchmark::internal::Benchmark* b) {
      JoinSweepArgs(b, {0, 25, 50, 75, 90, 95});
    })
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace mmdb

MMDB_BENCH_MAIN(graph07_join_dup_skewed);
