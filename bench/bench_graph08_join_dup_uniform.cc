// Graph 8 — Join Test 5 (Vary Duplicate Percentage, uniform): |R1| = |R2| =
// 20,000, semijoin selectivity 100%, duplicate percentage swept 0-100% with
// the near-uniform (sigma = 0.8) distribution.
// Expected shape (paper): with uniform duplicates the output stays modest
// until very high percentages, so Tree Merge stays best until ~97%
// duplicates, where Sort Merge overtakes.

#include "bench/join_bench_common.h"

namespace mmdb {
namespace bench {
namespace {

constexpr size_t kN = 20000;

void BM_Graph08_VaryDupUniform(benchmark::State& state) {
  JoinBenchBody(state, [](long dup_pct) {
    return MakeJoinPair(kN, kN, static_cast<double>(dup_pct), /*stddev=*/0.8,
                        /*semijoin_pct=*/100);
  });
}

BENCHMARK(BM_Graph08_VaryDupUniform)
    ->Apply([](benchmark::internal::Benchmark* b) {
      JoinSweepArgs(b, {0, 25, 50, 75, 90, 97, 99});
    })
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace mmdb

MMDB_BENCH_MAIN(graph08_join_dup_uniform);
