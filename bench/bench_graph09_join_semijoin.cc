// Graph 9 — Join Test 6 (Vary Semijoin Selectivity): |R1| = |R2| = 30,000,
// 50% duplicates with a uniform distribution (~2 occurrences per value),
// matching-value percentage swept 1-100%.
// Expected shape (paper): Tree Join is hurt most by rising selectivity
// (unsuccessful probes bypass the scan phase; successful ones pay for it);
// Hash Join rises more gently; Sort Merge barely moves (sorting dominates);
// Tree Merge rises with the growing output.

#include "bench/join_bench_common.h"

namespace mmdb {
namespace bench {
namespace {

constexpr size_t kN = 30000;

void BM_Graph09_VarySemijoin(benchmark::State& state) {
  JoinBenchBody(state, [](long pct) {
    return MakeJoinPair(kN, kN, /*dup_pct=*/50, /*stddev=*/0.8,
                        static_cast<double>(pct));
  });
}

BENCHMARK(BM_Graph09_VarySemijoin)
    ->Apply([](benchmark::internal::Benchmark* b) {
      JoinSweepArgs(b, {1, 25, 50, 75, 100});
    })
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace mmdb

MMDB_BENCH_MAIN(graph09_join_semijoin);
