// Graph 10 — Nested Loops Join: |R1| = |R2| swept 1,000-20,000, keys, 100%
// semijoin selectivity.  Kept off Graphs 4-9 because it is "usually several
// orders of magnitude worse than the other join methods"; this bench prints
// it side by side with Hash Join so the gap is visible.

#include <benchmark/benchmark.h>

#include <map>

#include "bench/bench_common.h"

namespace mmdb {
namespace bench {
namespace {

JoinPair& PairFor(long n) {
  static std::map<long, JoinPair>* cache = new std::map<long, JoinPair>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    it = cache->emplace(n, MakeJoinPair(n, n, 0, 0.8, 100, /*seed=*/7,
                                        /*with_trees=*/false))
             .first;
  }
  return it->second;
}

void BM_Graph10_NestedLoops(benchmark::State& state) {
  const JoinPair& pair = PairFor(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(NestedLoopsJoin(SpecOf(pair)).size());
  }
  state.SetLabel("NestedLoops");
}

void BM_Graph10_HashJoinReference(benchmark::State& state) {
  const JoinPair& pair = PairFor(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(HashJoin(SpecOf(pair)).size());
  }
  state.SetLabel("HashJoin (reference)");
}

void BM_Graph10_HashJoinReferenceTuple(benchmark::State& state) {
  const JoinPair& pair = PairFor(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(HashJoin(SpecOf(pair), ExecMode::kTuple).size());
  }
  state.SetLabel("HashJoin[tuple] (reference)");
}

BENCHMARK(BM_Graph10_NestedLoops)
    ->Arg(1000)
    ->Arg(2500)
    ->Arg(5000)
    ->Arg(10000)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Graph10_HashJoinReference)
    ->Arg(1000)
    ->Arg(2500)
    ->Arg(5000)
    ->Arg(10000)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Graph10_HashJoinReferenceTuple)
    ->Arg(1000)
    ->Arg(2500)
    ->Arg(5000)
    ->Arg(10000)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace mmdb

MMDB_BENCH_MAIN(graph10_nested_loops);
