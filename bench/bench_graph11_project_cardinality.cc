// Graph 11 — Project Test 1 (Vary |R|): duplicate elimination over a
// relation of up to 30,000 single-column rows with no duplicates (output
// size = input size), Sort Scan vs Hashing.
// Expected shape (paper): Hash is linear (table sized |R|/2); Sort Scan is
// O(|R| log |R|) and falls behind as |R| grows — "the Hashing method is the
// clear winner".

#include <benchmark/benchmark.h>

#include <map>

#include "bench/bench_common.h"

namespace mmdb {
namespace bench {
namespace {

struct Workload {
  std::unique_ptr<Relation> rel;
  TempList input;
};

Workload& For(long n) {
  static std::map<long, Workload>* cache = new std::map<long, Workload>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    Workload w{UniqueKeyRelation(static_cast<size_t>(n)),
               TempList(ResultDescriptor())};
    w.input = ProjectInput(*w.rel);
    it = cache->emplace(n, std::move(w)).first;
  }
  return it->second;
}

void BM_Graph11_SortScan(benchmark::State& state) {
  const Workload& w = For(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ProjectSortScan(w.input).size());
  }
  state.SetLabel("SortScan");
}

void BM_Graph11_Hash(benchmark::State& state) {
  const Workload& w = For(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ProjectHash(w.input).size());
  }
  state.SetLabel("Hash");
}

BENCHMARK(BM_Graph11_SortScan)
    ->Arg(3750)->Arg(7500)->Arg(15000)->Arg(22500)->Arg(30000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Graph11_Hash)
    ->Arg(3750)->Arg(7500)->Arg(15000)->Arg(22500)->Arg(30000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace mmdb

MMDB_BENCH_MAIN(graph11_project_cardinality);
