// Graph 12 — Project Test 2 (Vary Duplicate Percentage): duplicate
// elimination over 30,000 rows as the duplicate percentage rises.
// Expected shape (paper): Hash gets *faster* with more duplicates (the
// table holds fewer survivors, chains shorten); Sort Scan still sorts the
// whole input, gaining only the insertion-sort benefit on equal runs.

#include <benchmark/benchmark.h>

#include <map>

#include "bench/bench_common.h"

namespace mmdb {
namespace bench {
namespace {

constexpr size_t kN = 30000;

struct Workload {
  std::unique_ptr<Relation> rel;
  TempList input;
};

Workload& For(long dup_pct) {
  static std::map<long, Workload>* cache = new std::map<long, Workload>();
  auto it = cache->find(dup_pct);
  if (it == cache->end()) {
    WorkloadGen gen(33);
    ColumnData col = gen.Generate({kN, static_cast<double>(dup_pct), 0.8});
    Workload w{WorkloadGen::BuildRelation("r", col),
               TempList(ResultDescriptor())};
    w.input = ProjectInput(*w.rel);
    it = cache->emplace(dup_pct, std::move(w)).first;
  }
  return it->second;
}

void BM_Graph12_SortScan(benchmark::State& state) {
  const Workload& w = For(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ProjectSortScan(w.input).size());
  }
  state.SetLabel("SortScan");
}

void BM_Graph12_Hash(benchmark::State& state) {
  const Workload& w = For(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ProjectHash(w.input).size());
  }
  state.SetLabel("Hash");
}

BENCHMARK(BM_Graph12_SortScan)
    ->Arg(0)->Arg(25)->Arg(50)->Arg(75)->Arg(99)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Graph12_Hash)
    ->Arg(0)->Arg(25)->Arg(50)->Arg(75)->Arg(99)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace mmdb

MMDB_BENCH_MAIN(graph12_project_duplicates);
