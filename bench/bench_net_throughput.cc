// Open-loop many-connection load generator for the network front end.
//
// Each benchmark run stands up a real epoll server (ephemeral port) over a
// QueryService and drives it through N TCP connections.  Every connection
// gets a *paced sender* thread and an independent *receiver* thread — the
// open-loop shape: arrivals are scheduled by the generator's clock, not
// gated on completions, so server slowdown shows up as queueing latency
// and typed kOverloaded shed instead of silently throttling the offered
// load (the closed-loop coordinated-omission trap).
//
//   * NetOpenLoop — sweeps connection counts (8 .. 256 — the >=128
//     concurrent-pipelined-connections acceptance point lives here) with a
//     fixed per-connection burst of point selects.  Reported counters:
//     qps (completed/sec), offered (sent/sec), shed (kOverloaded),
//     lat_p50/p95/p99/max_us from per-request send->response timestamps,
//     and the server-echoed decomposition srv_{queue,lock,exec,commit}_us
//     (means) with net_overhead_us = client mean - server-side total —
//     the client-vs-server latency split, in both console and --json.
//   * NetPipelineDepth — one connection, sweeping the client-side pipeline
//     bound: depth 1 is the classic request/response round trip; deeper
//     pipelines amortize the wire and show where the server's
//     max_pipeline admission starts shedding.
//   * NetPingLatency — empty-frame round trips: the protocol + epoll floor
//     with no query execution in it.
//
// Run with --json to emit BENCH_net_throughput.json (CI artifact).

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/database.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/server/query_service.h"
#include "src/util/metrics.h"
#include "src/util/timer.h"

namespace mmdb {
namespace net {
namespace {

constexpr int kRows = 4096;  // point-select target pool

/// Server + service + database for one benchmark run.
struct Stack {
  std::unique_ptr<Database> db;
  std::unique_ptr<QueryService> service;
  std::unique_ptr<Server> server;

  static Stack Make(size_t workers, size_t max_pipeline) {
    Stack s;
    s.db = std::make_unique<Database>();
    s.db->CreateTable("emp", {{"id", Type::kInt32},
                              {"age", Type::kInt32},
                              {"name", Type::kString}});
    for (int i = 0; i < kRows; ++i) {
      s.db->Insert("emp", {Value(i), Value(20 + i % 50),
                           Value("name" + std::to_string(i))});
    }
    ServiceOptions sopts;
    sopts.workers = workers;
    sopts.queue_depth = 8192;
    s.service = std::make_unique<QueryService>(s.db.get(), sopts);
    ServerOptions nopts;
    nopts.max_connections = 1024;
    nopts.max_pipeline = max_pipeline;
    s.server = std::make_unique<Server>(s.service.get(), nopts);
    if (!s.server->Start().ok()) s.server.reset();
    return s;
  }

  ~Stack() {
    server.reset();  // Stop() drains before the service goes away
    service.reset();
  }
  Stack() = default;
  Stack(Stack&&) = default;
  Stack& operator=(Stack&&) = default;
};

Operation PointSelect(int id) {
  SelectSpec s;
  s.table = "emp";
  s.where = {WhereClause{"id", CompareOp::kEq, Value(id % kRows)}};
  s.columns = {"emp.name"};
  return Operation(std::move(s));
}

/// Sum of the server-reported per-request breakdown (each OpResult echoes
/// queue/lock/exec/commit micros in the response frame) — subtracting the
/// server-side total from the client-observed latency isolates the wire +
/// client-stack overhead.
struct ServerMicros {
  std::atomic<uint64_t> queue{0};
  std::atomic<uint64_t> lock{0};
  std::atomic<uint64_t> exec{0};
  std::atomic<uint64_t> commit{0};
  std::atomic<uint64_t> count{0};

  void Accumulate(const OpResult& r) {
    queue.fetch_add(r.queue_us, std::memory_order_relaxed);
    lock.fetch_add(r.lock_us, std::memory_order_relaxed);
    exec.fetch_add(r.exec_us, std::memory_order_relaxed);
    commit.fetch_add(r.commit_us, std::memory_order_relaxed);
    count.fetch_add(1, std::memory_order_relaxed);
  }
};

/// One connection of the open-loop generator: the sender stamps each
/// request id with a Timer; the receiver thread looks the stamp up and
/// records the full wire+queue+execute+wire latency.
struct OpenLoopConn {
  Client client;
  std::mutex mu;
  std::unordered_map<uint64_t, Timer> sent_at;

  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> errors{0};
};

/// Drains `expect` responses, classifying completions vs. typed shed.
void DrainResponses(OpenLoopConn& conn, uint64_t expect, LatencyHistogram& lat,
                    ServerMicros* srv = nullptr) {
  for (uint64_t i = 0; i < expect; ++i) {
    Response r;
    if (!conn.client.Receive(&r).ok()) {
      conn.errors.fetch_add(expect - i, std::memory_order_relaxed);
      return;
    }
    Timer started;
    bool stamped = false;
    {
      std::lock_guard<std::mutex> lock(conn.mu);
      auto it = conn.sent_at.find(r.request_id);
      if (it != conn.sent_at.end()) {
        started = it->second;
        stamped = true;
        conn.sent_at.erase(it);
      }
    }
    if (r.is_error) {
      // Typed shed (kOverloaded under offered overload) — counted, never
      // part of the latency distribution.
      conn.shed.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (!r.result.ok()) {
      conn.errors.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    conn.completed.fetch_add(1, std::memory_order_relaxed);
    if (srv != nullptr) srv->Accumulate(r.result);
    if (stamped) lat.Record(static_cast<double>(started.ElapsedMicros()));
  }
}

/// Sends `ops` point selects on a fixed arrival schedule (`gap` between
/// sends, zero = as fast as the socket accepts), never waiting for
/// responses.
uint64_t PacedSend(OpenLoopConn& conn, int ops, int seed,
                   std::chrono::microseconds gap) {
  uint64_t sent = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < ops; ++i) {
    if (gap.count() > 0) {
      // Open loop: sleep to the *schedule*, not relative to the last send,
      // so a slow server cannot stretch the arrival process.
      std::this_thread::sleep_until(start + gap * i);
    }
    uint64_t id = 0;
    Timer t;
    if (!conn.client.Send(PointSelect(seed + i), &id).ok()) break;
    {
      std::lock_guard<std::mutex> lock(conn.mu);
      conn.sent_at.emplace(id, t);
    }
    ++sent;
  }
  return sent;
}

void BM_NetOpenLoop(benchmark::State& state) {
  const int conns = static_cast<int>(state.range(0));
  const int ops_per_conn = 64;
  Stack stack = Stack::Make(/*workers=*/4, /*max_pipeline=*/64);
  if (!stack.server) {
    state.SkipWithError("server failed to start");
    return;
  }
  const uint16_t port = stack.server->port();

  std::vector<std::unique_ptr<OpenLoopConn>> pool;
  for (int i = 0; i < conns; ++i) {
    auto conn = std::make_unique<OpenLoopConn>();
    if (!conn->client.Connect("127.0.0.1", port).ok()) {
      state.SkipWithError("connect failed");
      return;
    }
    pool.push_back(std::move(conn));
  }

  LatencyHistogram lat;
  ServerMicros srv;
  uint64_t offered = 0;
  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(2 * pool.size());
    std::vector<uint64_t> sent(pool.size(), 0);
    for (size_t i = 0; i < pool.size(); ++i) {
      threads.emplace_back([&, i] {
        sent[i] = PacedSend(*pool[i], ops_per_conn,
                            static_cast<int>(i) * 131,
                            std::chrono::microseconds(0));
      });
      threads.emplace_back(
          [&, i] { DrainResponses(*pool[i], ops_per_conn, lat, &srv); });
    }
    for (auto& t : threads) t.join();
    for (uint64_t s : sent) offered += s;
  }

  uint64_t completed = 0, shed = 0, errors = 0;
  for (const auto& conn : pool) {
    completed += conn->completed.load();
    shed += conn->shed.load();
    errors += conn->errors.load();
  }
  if (errors != 0) {
    state.SkipWithError("unexpected errors on the wire");
    return;
  }
  const auto snap = lat.Snap();
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(completed), benchmark::Counter::kIsRate);
  state.counters["offered"] = benchmark::Counter(
      static_cast<double>(offered), benchmark::Counter::kIsRate);
  state.counters["shed"] = static_cast<double>(shed);
  state.counters["connections"] = static_cast<double>(conns);
  state.counters["lat_p50_us"] =
      static_cast<double>(snap.PercentileMicros(0.50));
  state.counters["lat_p95_us"] =
      static_cast<double>(snap.PercentileMicros(0.95));
  state.counters["lat_p99_us"] =
      static_cast<double>(snap.PercentileMicros(0.99));
  state.counters["lat_max_us"] = static_cast<double>(snap.max_micros);

  // Client-vs-server latency decomposition from the breakdown each
  // response echoes: where did the client-observed mean actually go?
  const double n = static_cast<double>(srv.count.load());
  if (n > 0) {
    const double srv_queue = static_cast<double>(srv.queue.load()) / n;
    const double srv_lock = static_cast<double>(srv.lock.load()) / n;
    const double srv_exec = static_cast<double>(srv.exec.load()) / n;
    const double srv_commit = static_cast<double>(srv.commit.load()) / n;
    const double srv_total = srv_queue + srv_lock + srv_exec + srv_commit;
    state.counters["srv_queue_us"] = srv_queue;
    state.counters["srv_lock_us"] = srv_lock;
    state.counters["srv_exec_us"] = srv_exec;
    state.counters["srv_commit_us"] = srv_commit;
    state.counters["srv_total_us"] = srv_total;
    // Wire + client-stack share of the mean round trip (clamped: the two
    // clocks are different, so tiny negatives are possible at the floor).
    const double overhead = snap.MeanMicros() - srv_total;
    state.counters["net_overhead_us"] = overhead > 0 ? overhead : 0;
  }
}
BENCHMARK(BM_NetOpenLoop)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128)
    ->Arg(256)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_NetPipelineDepth(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  constexpr int kOpsPerIter = 256;
  Stack stack = Stack::Make(/*workers=*/4, /*max_pipeline=*/64);
  if (!stack.server) {
    state.SkipWithError("server failed to start");
    return;
  }
  Client client;
  if (!client.Connect("127.0.0.1", stack.server->port()).ok()) {
    state.SkipWithError("connect failed");
    return;
  }

  uint64_t completed = 0;
  for (auto _ : state) {
    int sent = 0, received = 0;
    while (received < kOpsPerIter) {
      while (sent < kOpsPerIter &&
             client.inflight() < static_cast<uint64_t>(depth)) {
        if (!client.Send(PointSelect(sent)).ok()) {
          state.SkipWithError("send failed");
          return;
        }
        ++sent;
      }
      Response r;
      if (!client.Receive(&r).ok() || !r.ok()) {
        state.SkipWithError("receive failed");
        return;
      }
      ++received;
      ++completed;
    }
  }
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(completed), benchmark::Counter::kIsRate);
  state.counters["depth"] = static_cast<double>(depth);
}
BENCHMARK(BM_NetPipelineDepth)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_NetPingLatency(benchmark::State& state) {
  Stack stack = Stack::Make(/*workers=*/1, /*max_pipeline=*/16);
  if (!stack.server) {
    state.SkipWithError("server failed to start");
    return;
  }
  Client client;
  if (!client.Connect("127.0.0.1", stack.server->port()).ok()) {
    state.SkipWithError("connect failed");
    return;
  }
  LatencyHistogram lat;
  for (auto _ : state) {
    Timer t;
    if (!client.Ping().ok()) {
      state.SkipWithError("ping failed");
      return;
    }
    lat.Record(static_cast<double>(t.ElapsedMicros()));
  }
  const auto snap = lat.Snap();
  state.counters["rtt_p50_us"] =
      static_cast<double>(snap.PercentileMicros(0.50));
  state.counters["rtt_p99_us"] =
      static_cast<double>(snap.PercentileMicros(0.99));
}
BENCHMARK(BM_NetPingLatency)->UseRealTime()->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace net
}  // namespace mmdb

MMDB_BENCH_MAIN(net_throughput);
