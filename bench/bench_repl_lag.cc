// Replication lag benchmarks for the log-shipping replica.
//
//   * ReplCatchUp — a primary accumulates N committed rows across sealed
//     WAL segments, then a cold replica attaches and replays to the
//     primary's durable LSN.  Reports catch-up wall time, shipped bytes,
//     and replay throughput (rows/s) — the "how long until a new replica
//     is useful" number.
//   * ReplSteadyLag — a caught-up replica follows a primary committing
//     single-row transactions; for a sample of commits we measure the
//     time from WaitDurable returning to the replica's applied LSN
//     covering that commit.  Reports visibility-lag percentiles — the
//     freshness a read replica actually serves under steady load.
//
// Both run over loopback TCP with the real wire protocol and an in-memory
// Env, so the numbers isolate protocol + replay cost from disk fsync.
//
// Run with --json to emit BENCH_repl_lag.json (CI artifact).

#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <thread>

#include "bench/bench_common.h"
#include "src/core/database.h"
#include "src/core/durability.h"
#include "src/net/server.h"
#include "src/repl/replica.h"
#include "src/repl/shipper.h"
#include "src/server/query_service.h"
#include "src/util/env.h"
#include "src/util/metrics.h"
#include "src/util/timer.h"

namespace mmdb {
namespace {

constexpr char kPrimaryDir[] = "dur";
constexpr char kMirrorDir[] = "rep";

/// Primary database + durability + shipper + wire server, in-memory Env.
struct Primary {
  InMemEnv env;
  Database db;
  std::unique_ptr<repl::Shipper> shipper;
  std::unique_ptr<QueryService> service;
  std::unique_ptr<net::Server> server;

  bool Start() {
    Relation::Options topt;
    topt.partition.slot_capacity = 256;
    db.CreateTable("t", {{"id", Type::kInt32}, {"v", Type::kInt32}}, topt);
    DurabilityOptions options;
    options.mode = DurabilityMode::kSync;
    options.dir = kPrimaryDir;
    options.env = &env;
    options.flush_interval = std::chrono::milliseconds(1);
    options.wal_segment_bytes = 64 << 10;  // roll often: ship sealed chains
    options.wal_retain_segments = 1 << 20;
    if (!db.EnableDurability(std::move(options)).ok()) return false;
    shipper = std::make_unique<repl::Shipper>(&db);
    service = std::make_unique<QueryService>(&db);
    net::ServerOptions sopt;
    sopt.port = 0;
    server = std::make_unique<net::Server>(service.get(), sopt);
    repl::Shipper* s = shipper.get();
    server->set_repl_handler(
        [s](const std::string& r) { return s->HandleRequest(r); });
    return server->Start().ok();
  }

  // Returns the commit LSN, already durable.
  uint64_t Insert(int32_t id) {
    std::unique_ptr<Transaction> txn = db.Begin();
    if (!txn->Insert("t", {Value(id), Value(id)}).ok()) return 0;
    if (!txn->Commit().ok()) return 0;
    if (!db.WaitDurable(txn->commit_lsn()).ok()) return 0;
    return txn->commit_lsn();
  }
};

std::unique_ptr<repl::Replica> AttachReplica(const Primary& primary,
                                             Env* env,
                                             std::chrono::milliseconds poll) {
  repl::ReplicaOptions options;
  options.primary_port = primary.server->port();
  options.dir = kMirrorDir;
  options.env = env;
  options.poll_interval = poll;
  options.reconnect_backoff = std::chrono::milliseconds(5);
  auto replica = std::make_unique<repl::Replica>(options);
  if (!replica->Start().ok()) return nullptr;
  return replica;
}

bool WaitApplied(repl::Replica* replica, uint64_t lsn,
                 std::chrono::seconds timeout = std::chrono::seconds(30)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (replica->applied_lsn() < lsn) {
    if (!replica->health().ok()) return false;
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return true;
}

void BM_ReplCatchUp(benchmark::State& state) {
  const int32_t rows = static_cast<int32_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Primary primary;
    if (!primary.Start()) {
      state.SkipWithError("primary failed to start");
      return;
    }
    uint64_t last_lsn = 0;
    for (int32_t i = 0; i < rows; ++i) last_lsn = primary.Insert(i);
    if (last_lsn == 0) {
      state.SkipWithError("load failed");
      return;
    }
    InMemEnv mirror_env;
    state.ResumeTiming();

    auto replica =
        AttachReplica(primary, &mirror_env, std::chrono::milliseconds(1));
    if (replica == nullptr || !WaitApplied(replica.get(), last_lsn)) {
      state.SkipWithError("replica never caught up");
      return;
    }

    state.PauseTiming();
    state.counters["rows"] = static_cast<double>(rows);
    state.counters["shipped_mb"] = benchmark::Counter(
        static_cast<double>(
            primary.db.metrics().GetCounter("mmdb_repl_bytes_shipped_total")->Value()) /
        (1024.0 * 1024.0));
    replica->Stop();
    replica.reset();
    primary.server->Stop();
    state.ResumeTiming();
  }
  state.counters["rows_per_s"] = benchmark::Counter(
      static_cast<double>(rows) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ReplCatchUp)
    ->Arg(1000)
    ->Arg(5000)
    ->Arg(20000)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_ReplSteadyLag(benchmark::State& state) {
  Primary primary;
  if (!primary.Start()) {
    state.SkipWithError("primary failed to start");
    return;
  }
  uint64_t lsn = primary.Insert(0);
  InMemEnv mirror_env;
  auto replica =
      AttachReplica(primary, &mirror_env, std::chrono::milliseconds(1));
  if (replica == nullptr || !WaitApplied(replica.get(), lsn)) {
    state.SkipWithError("replica never attached");
    return;
  }

  LatencyHistogram lag;
  int32_t id = 1;
  for (auto _ : state) {
    lsn = primary.Insert(id++);
    if (lsn == 0) {
      state.SkipWithError("insert failed");
      return;
    }
    Timer t;
    if (!WaitApplied(replica.get(), lsn)) {
      state.SkipWithError("replica fell behind and never recovered");
      return;
    }
    lag.Record(static_cast<double>(t.ElapsedMicros()));
  }
  const auto snap = lag.Snap();
  state.counters["lag_p50_us"] =
      static_cast<double>(snap.PercentileMicros(0.50));
  state.counters["lag_p95_us"] =
      static_cast<double>(snap.PercentileMicros(0.95));
  state.counters["lag_p99_us"] =
      static_cast<double>(snap.PercentileMicros(0.99));
  state.counters["applied_txns"] = static_cast<double>(
      replica->db()->metrics().GetCounter("mmdb_repl_applied_txns_total")->Value());
  replica->Stop();
  primary.server->Stop();
}
BENCHMARK(BM_ReplSteadyLag)->UseRealTime()->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace mmdb

MMDB_BENCH_MAIN(repl_lag);
