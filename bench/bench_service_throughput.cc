// Service throughput vs. worker-thread count (1, 2, 4, 8) on the paper's
// workload generator.  Two workloads:
//
//   * ServiceSelect — read-only selection queries (sequential-scan
//     predicate on the unindexed `seq` column, so each query carries real
//     CPU work).  Readers share partition S locks, so throughput should
//     scale with the worker count on multicore hardware — the acceptance
//     shape for this subsystem is >=2x at 4 workers vs. 1.
//   * ServiceMixed — 90% selections + 10% counter increments, showing the
//     cost of exclusive-writer serialization on a shared relation.
//
// Reported counter: qps (queries per wall-clock second).  Run on a
// single-core host these collapse to ~1x by construction; the scaling
// claim needs >= as many cores as workers.

#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <thread>

#include "bench/bench_common.h"
#include "src/core/database.h"
#include "src/server/query_service.h"
#include "src/workload/generator.h"

namespace mmdb {
namespace {

constexpr size_t kRelationCardinality = 30000;  // the paper's |R|
constexpr int kBatch = 64;  // queries submitted per benchmark iteration

/// One shared read-only database: a generated relation "r" (key:int32,
/// seq:int32) with the paper's array primary index on `key`.
Database* SelectDb() {
  static Database* db = [] {
    auto* d = new Database();
    WorkloadGen gen(/*seed=*/7);
    ColumnSpec spec;
    spec.cardinality = kRelationCardinality;
    spec.duplicate_pct = 0.0;
    ColumnData column = gen.Generate(spec);
    Relation* rel = d->CreateTable(
        "r", {{"key", Type::kInt32}, {"seq", Type::kInt32}});
    for (size_t i = 0; i < column.values.size(); ++i) {
      rel->Insert({Value(column.values[i]), Value(static_cast<int32_t>(i))});
    }
    return d;
  }();
  return db;
}

/// Waits until `done` reaches `target` (callbacks fire on worker threads).
void AwaitBatch(std::atomic<int>& done, int target) {
  while (done.load(std::memory_order_acquire) < target) {
    std::this_thread::yield();
  }
}

void BM_ServiceSelect(benchmark::State& state) {
  Database* db = SelectDb();
  ServiceOptions opts;
  opts.workers = static_cast<size_t>(state.range(0));
  opts.queue_depth = 4 * kBatch;
  QueryService service(db, opts);
  Session* session = service.OpenSession();

  SelectSpec sel;
  sel.table = "r";
  int32_t probe = 0;
  for (auto _ : state) {
    std::atomic<int> done{0};
    std::atomic<int> errors{0};
    for (int i = 0; i < kBatch; ++i) {
      // Unindexed column => sequential scan of all 30k tuples per query.
      sel.where = {WhereClause{"seq", CompareOp::kEq,
                               Value(probe++ % static_cast<int32_t>(
                                                   kRelationCardinality))}};
      Status s = service.Submit(session, Operation(sel), [&](OpResult r) {
        if (!r.ok() || r.rows.size() != 1) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
        done.fetch_add(1, std::memory_order_release);
      });
      if (!s.ok()) {
        state.SkipWithError("submit rejected");
        return;
      }
    }
    AwaitBatch(done, kBatch);
    if (errors.load() != 0) {
      state.SkipWithError("query failed");
      return;
    }
  }
  const double queries =
      static_cast<double>(state.iterations()) * kBatch;
  state.counters["qps"] =
      benchmark::Counter(queries, benchmark::Counter::kIsRate);
  state.counters["workers"] = static_cast<double>(opts.workers);
  service.Shutdown();
}
BENCHMARK(BM_ServiceSelect)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_ServiceMixed(benchmark::State& state) {
  // Private database per run: the increment load mutates it.
  Database db;
  WorkloadGen gen(/*seed=*/11);
  ColumnSpec spec;
  spec.cardinality = kRelationCardinality;
  spec.duplicate_pct = 0.0;
  ColumnData column = gen.Generate(spec);
  Relation* rel =
      db.CreateTable("r", {{"key", Type::kInt32}, {"seq", Type::kInt32}});
  for (size_t i = 0; i < column.values.size(); ++i) {
    rel->Insert({Value(column.values[i]), Value(static_cast<int32_t>(i))});
  }
  db.CreateTable("hits", {{"id", Type::kInt32}, {"count", Type::kInt64}});
  db.Insert("hits", {Value(0), Value(int64_t{0})});

  ServiceOptions opts;
  opts.workers = static_cast<size_t>(state.range(0));
  opts.queue_depth = 4 * kBatch;
  opts.lock_timeout = std::chrono::milliseconds(2000);
  QueryService service(&db, opts);
  Session* session = service.OpenSession();

  int32_t probe = 0;
  for (auto _ : state) {
    std::atomic<int> done{0};
    for (int i = 0; i < kBatch; ++i) {
      Operation op;
      if (i % 10 == 9) {
        IncrementSpec inc;
        inc.table = "hits";
        inc.match = WhereClause{"id", CompareOp::kEq, Value(0)};
        inc.field = "count";
        op = Operation(std::move(inc));
      } else {
        SelectSpec sel;
        sel.table = "r";
        sel.where = {WhereClause{"seq", CompareOp::kEq,
                                 Value(probe++ % static_cast<int32_t>(
                                                     kRelationCardinality))}};
        op = Operation(std::move(sel));
      }
      Status s = service.Submit(session, std::move(op), [&](OpResult) {
        done.fetch_add(1, std::memory_order_release);
      });
      if (!s.ok()) {
        state.SkipWithError("submit rejected");
        return;
      }
    }
    AwaitBatch(done, kBatch);
  }
  const double queries =
      static_cast<double>(state.iterations()) * kBatch;
  state.counters["qps"] =
      benchmark::Counter(queries, benchmark::Counter::kIsRate);
  state.counters["workers"] = static_cast<double>(opts.workers);
  service.Shutdown();
}
BENCHMARK(BM_ServiceMixed)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_ServiceDisjointPartitionUpdates(benchmark::State& state) {
  // Pure-DML workload on one relation whose partitions are each owned by a
  // different update stream.  The match predicate is on the unindexed
  // `tag` column, so every update's find phase sequentially scans the
  // relation — under the partition-local protocol that phase holds only
  // SHARED locks and runs concurrently across workers, with the partition
  // X lock held just for the brief apply.  Under the old relation-wide X
  // protocol the whole statement serialized, leaving qps flat in
  // `workers`; now it should scale like the read benchmark above.
  constexpr int kParts = 8;
  constexpr int kRowsPerPart = 512;
  Database db;
  Relation::Options options;
  options.partition.slot_capacity = kRowsPerPart;
  db.CreateTable("grid", {{"id", Type::kInt32},
                          {"tag", Type::kInt32},
                          {"value", Type::kInt64}},
                 options);
  for (int i = 0; i < kParts * kRowsPerPart; ++i) {
    db.Insert("grid", {Value(i), Value(i), Value(int64_t{0})});
  }

  ServiceOptions opts;
  opts.workers = static_cast<size_t>(state.range(0));
  opts.queue_depth = 4 * kBatch;
  opts.lock_timeout = std::chrono::milliseconds(2000);
  opts.max_attempts = 64;
  QueryService service(&db, opts);
  Session* session = service.OpenSession();

  int32_t tick = 0;
  for (auto _ : state) {
    std::atomic<int> done{0};
    std::atomic<int> errors{0};
    for (int i = 0; i < kBatch; ++i) {
      // Round-robin the batch across partitions: concurrent updates land
      // on disjoint partitions, the regime the protocol is built for.
      const int part = i % kParts;
      IncrementSpec inc;
      inc.table = "grid";
      inc.match = WhereClause{
          "tag", CompareOp::kEq,
          Value(part * kRowsPerPart + (tick++ % kRowsPerPart))};
      inc.field = "value";
      inc.delta = 1;
      Status s =
          service.Submit(session, Operation(std::move(inc)), [&](OpResult r) {
            if (!r.ok() || r.rows_affected != 1) {
              errors.fetch_add(1, std::memory_order_relaxed);
            }
            done.fetch_add(1, std::memory_order_release);
          });
      if (!s.ok()) {
        state.SkipWithError("submit rejected");
        return;
      }
    }
    AwaitBatch(done, kBatch);
    if (errors.load() != 0) {
      state.SkipWithError("update failed");
      return;
    }
  }
  const double updates = static_cast<double>(state.iterations()) * kBatch;
  state.counters["qps"] =
      benchmark::Counter(updates, benchmark::Counter::kIsRate);
  state.counters["workers"] = static_cast<double>(opts.workers);
  service.Shutdown();
}
BENCHMARK(BM_ServiceDisjointPartitionUpdates)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mmdb

MMDB_BENCH_MAIN(service_throughput);
