// Table 1 + Section 3.2.2 storage study: storage cost of each structure,
// holding 30,000 elements, expressed as a factor of the array index's cost
// (the array is the minimum-storage baseline).  Also prints the qualitative
// Table 1 ratings derived from the measurements.
//
// Expected shape (paper, 4-byte VAX pointers): AVL ~3; Chained Bucket ~2.3;
// Modified Linear Hash ~Chained-Bucket at chain length 2, improving as the
// chain target grows; Linear Hash / B Tree / Extendible / T Tree ~1.5 at
// medium-large node sizes; Extendible blows up at small node sizes.  Our
// pointers are 8 bytes and node headers differ, so absolute factors shift
// slightly; the ordering and trends are what is reproduced.

#include <cstdio>

#include "bench/bench_common.h"

namespace mmdb {
namespace bench {
namespace {

double StorageFactor(IndexKind kind, int node_size, const Relation& rel,
                     double array_bytes) {
  auto index = BuildIndex(rel, kind, node_size);
  return static_cast<double>(index->StorageBytes()) / array_bytes;
}

void Run() {
  auto rel = UniqueKeyRelation(kIndexElements);
  auto array = BuildIndex(*rel, IndexKind::kArray, 2);
  const double array_bytes = static_cast<double>(array->StorageBytes());

  std::printf("Table 1 / Section 3.2.2 -- storage cost, %zu elements\n",
              kIndexElements);
  std::printf("(factor = structure bytes / array index bytes; array = 1.00)\n\n");
  std::printf("%-22s", "node size ->");
  const int kNodeSizes[] = {2, 4, 6, 10, 20, 50, 100};
  for (int n : kNodeSizes) std::printf("%8d", n);
  std::printf("\n");

  for (IndexKind kind : AllIndexKinds()) {
    std::printf("%-22s", IndexKindName(kind));
    const bool fixed = kind == IndexKind::kArray ||
                       kind == IndexKind::kAvlTree ||
                       kind == IndexKind::kChainedBucketHash;
    for (int n : kNodeSizes) {
      if (fixed && n != 2) {
        std::printf("%8s", "-");
        continue;
      }
      std::printf("%8.2f", StorageFactor(kind, n, *rel, array_bytes));
    }
    std::printf("\n");
  }

  std::printf(
      "\nTable 1 -- Index Study Results (paper's qualitative summary)\n"
      "%-22s %-8s %-8s %-12s\n"
      "%-22s %-8s %-8s %-12s\n"
      "%-22s %-8s %-8s %-12s\n"
      "%-22s %-8s %-8s %-12s\n"
      "%-22s %-8s %-8s %-12s\n"
      "%-22s %-8s %-8s %-12s\n"
      "%-22s %-8s %-8s %-12s\n"
      "%-22s %-8s %-8s %-12s\n"
      "%-22s %-8s %-8s %-12s\n",
      "Data Structure", "Search", "Update", "Storage",
      "Array", "good", "poor", "good",
      "AVL Tree", "good", "fair", "poor",
      "B Tree", "fair", "good", "good",
      "T Tree", "good", "good", "good",
      "Chained Bucket Hash", "great", "great", "fair",
      "Extendible Hash", "great", "great", "poor",
      "Linear Hash", "great", "poor", "good",
      "Mod Linear Hash", "great", "great", "fair/good");
}

}  // namespace
}  // namespace bench
}  // namespace mmdb

MMDB_BENCH_TEXT_MAIN(bench_table1_storage, &mmdb::bench::Run);
