// Shared machinery for the six join benchmarks (Graphs 4-10).
//
// Each benchmark sweeps one workload axis (Section 3.3.3) for the four main
// methods.  Cost accounting follows the paper exactly: Hash Join re-builds
// its hash table inside the timed region; Sort Merge re-builds and re-sorts
// its arrays; Tree Join and Tree Merge use pre-existing T Tree indices
// built outside the timed region.

#ifndef MMDB_BENCH_JOIN_BENCH_COMMON_H_
#define MMDB_BENCH_JOIN_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <map>

#include "bench/bench_common.h"

namespace mmdb {
namespace bench {

enum class JoinBenchMethod : long {
  // The paper's four methods, run in the session-default exec mode
  // (batched unless MMDB_EXEC=TUPLE).
  kHashJoin = 0,
  kTreeJoin = 1,
  kSortMerge = 2,
  kTreeMerge = 3,
  // Batched-vs-scalar comparison rows: the two mode-sensitive algorithms
  // pinned to tuple-at-a-time, plus the explicitly batched and the
  // L2-partitioned batched hash joins.  Method pairs (4,5) vs (0-pinned,
  // 2-pinned) give the vectorization speedup on the same workload.
  kHashJoinTuple = 4,
  kSortMergeTuple = 5,
  kHashJoinBatched = 6,
  kSortMergeBatched = 7,
  kPartitionedHashBatched = 8,
};

inline const char* JoinBenchMethodName(JoinBenchMethod m) {
  switch (m) {
    case JoinBenchMethod::kHashJoin: return "HashJoin";
    case JoinBenchMethod::kTreeJoin: return "TreeJoin";
    case JoinBenchMethod::kSortMerge: return "SortMerge";
    case JoinBenchMethod::kTreeMerge: return "TreeMerge";
    case JoinBenchMethod::kHashJoinTuple: return "HashJoin[tuple]";
    case JoinBenchMethod::kSortMergeTuple: return "SortMerge[tuple]";
    case JoinBenchMethod::kHashJoinBatched: return "HashJoin[batched]";
    case JoinBenchMethod::kSortMergeBatched: return "SortMerge[batched]";
    case JoinBenchMethod::kPartitionedHashBatched:
      return "PartitionedHash[batched]";
  }
  return "?";
}

/// Runs the selected method once; returns the result cardinality.
inline size_t RunJoinOnce(const JoinPair& pair, JoinBenchMethod method) {
  const JoinSpec spec = SpecOf(pair);
  switch (method) {
    case JoinBenchMethod::kHashJoin:
      return HashJoin(spec).size();
    case JoinBenchMethod::kTreeJoin:
      return TreeJoin(spec, InnerTree(pair)).size();
    case JoinBenchMethod::kSortMerge:
      return SortMergeJoin(spec).size();
    case JoinBenchMethod::kTreeMerge:
      return TreeMergeJoin(spec, OuterTree(pair), InnerTree(pair)).size();
    case JoinBenchMethod::kHashJoinTuple:
      return HashJoin(spec, ExecMode::kTuple).size();
    case JoinBenchMethod::kSortMergeTuple:
      return SortMergeJoin(spec, kDefaultInsertionSortCutoff,
                           ExecMode::kTuple).size();
    case JoinBenchMethod::kHashJoinBatched:
      return HashJoin(spec, ExecMode::kBatched).size();
    case JoinBenchMethod::kSortMergeBatched:
      return SortMergeJoin(spec, kDefaultInsertionSortCutoff,
                           ExecMode::kBatched).size();
    case JoinBenchMethod::kPartitionedHashBatched: {
      const size_t build =
          joinmem::EstimateBuildBytes(spec.inner->cardinality());
      const size_t parts =
          joinmem::ChoosePartitions(build, joinmem::L2TargetBytes());
      return PartitionedHashJoin(spec, parts < 2 ? 2 : parts,
                                 ExecMode::kBatched).size();
    }
  }
  return 0;
}

/// Benchmark body: `make_pair(param)` builds (and caches) the workload for a
/// sweep point; the timed region runs the join.
template <typename MakePair>
void JoinBenchBody(benchmark::State& state, const MakePair& make_pair) {
  static std::map<long, JoinPair>* cache = new std::map<long, JoinPair>();
  const auto method = static_cast<JoinBenchMethod>(state.range(0));
  const long param = state.range(1);
  auto it = cache->find(param);
  if (it == cache->end()) it = cache->emplace(param, make_pair(param)).first;
  const JoinPair& pair = it->second;

  size_t result_rows = 0;
  for (auto _ : state) {
    result_rows = RunJoinOnce(pair, method);
    benchmark::DoNotOptimize(result_rows);
  }
  state.counters["result_rows"] = static_cast<double>(result_rows);
  state.SetLabel(JoinBenchMethodName(method));
}

/// All four paper methods, plus the tuple-vs-batched comparison rows,
/// crossed with the given sweep values.  Methods 6/7 (explicitly batched
/// hash / sort-merge) are skipped in the sweep because methods 0/2 already
/// run batched under the default exec mode — select them with a
/// --benchmark_filter when MMDB_EXEC=TUPLE is set globally.
inline void JoinSweepArgs(benchmark::internal::Benchmark* b,
                          const std::vector<long>& params) {
  for (long m : {0L, 1L, 2L, 3L, 4L, 5L, 8L}) {
    for (long p : params) b->Args({m, p});
  }
}

}  // namespace bench
}  // namespace mmdb

#endif  // MMDB_BENCH_JOIN_BENCH_COMMON_H_
