// Shared machinery for the six join benchmarks (Graphs 4-10).
//
// Each benchmark sweeps one workload axis (Section 3.3.3) for the four main
// methods.  Cost accounting follows the paper exactly: Hash Join re-builds
// its hash table inside the timed region; Sort Merge re-builds and re-sorts
// its arrays; Tree Join and Tree Merge use pre-existing T Tree indices
// built outside the timed region.

#ifndef MMDB_BENCH_JOIN_BENCH_COMMON_H_
#define MMDB_BENCH_JOIN_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <map>

#include "bench/bench_common.h"

namespace mmdb {
namespace bench {

enum class JoinBenchMethod : long {
  kHashJoin = 0,
  kTreeJoin = 1,
  kSortMerge = 2,
  kTreeMerge = 3,
};

inline const char* JoinBenchMethodName(JoinBenchMethod m) {
  switch (m) {
    case JoinBenchMethod::kHashJoin: return "HashJoin";
    case JoinBenchMethod::kTreeJoin: return "TreeJoin";
    case JoinBenchMethod::kSortMerge: return "SortMerge";
    case JoinBenchMethod::kTreeMerge: return "TreeMerge";
  }
  return "?";
}

/// Runs the selected method once; returns the result cardinality.
inline size_t RunJoinOnce(const JoinPair& pair, JoinBenchMethod method) {
  const JoinSpec spec = SpecOf(pair);
  switch (method) {
    case JoinBenchMethod::kHashJoin:
      return HashJoin(spec).size();
    case JoinBenchMethod::kTreeJoin:
      return TreeJoin(spec, InnerTree(pair)).size();
    case JoinBenchMethod::kSortMerge:
      return SortMergeJoin(spec).size();
    case JoinBenchMethod::kTreeMerge:
      return TreeMergeJoin(spec, OuterTree(pair), InnerTree(pair)).size();
  }
  return 0;
}

/// Benchmark body: `make_pair(param)` builds (and caches) the workload for a
/// sweep point; the timed region runs the join.
template <typename MakePair>
void JoinBenchBody(benchmark::State& state, const MakePair& make_pair) {
  static std::map<long, JoinPair>* cache = new std::map<long, JoinPair>();
  const auto method = static_cast<JoinBenchMethod>(state.range(0));
  const long param = state.range(1);
  auto it = cache->find(param);
  if (it == cache->end()) it = cache->emplace(param, make_pair(param)).first;
  const JoinPair& pair = it->second;

  size_t result_rows = 0;
  for (auto _ : state) {
    result_rows = RunJoinOnce(pair, method);
    benchmark::DoNotOptimize(result_rows);
  }
  state.counters["result_rows"] = static_cast<double>(result_rows);
  state.SetLabel(JoinBenchMethodName(method));
}

/// All four methods crossed with the given sweep values.
inline void JoinSweepArgs(benchmark::internal::Benchmark* b,
                          const std::vector<long>& params) {
  for (long m = 0; m < 4; ++m) {
    for (long p : params) b->Args({m, p});
  }
}

}  // namespace bench
}  // namespace mmdb

#endif  // MMDB_BENCH_JOIN_BENCH_COMMON_H_
