file(REMOVE_RECURSE
  "CMakeFiles/bench_extra_bplus_vs_b.dir/bench_extra_bplus_vs_b.cc.o"
  "CMakeFiles/bench_extra_bplus_vs_b.dir/bench_extra_bplus_vs_b.cc.o.d"
  "bench_extra_bplus_vs_b"
  "bench_extra_bplus_vs_b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extra_bplus_vs_b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
