# Empty dependencies file for bench_extra_bplus_vs_b.
# This may be replaced when dependencies are built.
