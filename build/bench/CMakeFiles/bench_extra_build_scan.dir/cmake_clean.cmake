file(REMOVE_RECURSE
  "CMakeFiles/bench_extra_build_scan.dir/bench_extra_build_scan.cc.o"
  "CMakeFiles/bench_extra_build_scan.dir/bench_extra_build_scan.cc.o.d"
  "bench_extra_build_scan"
  "bench_extra_build_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extra_build_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
