# Empty dependencies file for bench_extra_build_scan.
# This may be replaced when dependencies are built.
