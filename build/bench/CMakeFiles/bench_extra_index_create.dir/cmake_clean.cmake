file(REMOVE_RECURSE
  "CMakeFiles/bench_extra_index_create.dir/bench_extra_index_create.cc.o"
  "CMakeFiles/bench_extra_index_create.dir/bench_extra_index_create.cc.o.d"
  "bench_extra_index_create"
  "bench_extra_index_create.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extra_index_create.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
