# Empty compiler generated dependencies file for bench_extra_index_create.
# This may be replaced when dependencies are built.
