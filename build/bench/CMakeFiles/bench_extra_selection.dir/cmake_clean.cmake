file(REMOVE_RECURSE
  "CMakeFiles/bench_extra_selection.dir/bench_extra_selection.cc.o"
  "CMakeFiles/bench_extra_selection.dir/bench_extra_selection.cc.o.d"
  "bench_extra_selection"
  "bench_extra_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extra_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
