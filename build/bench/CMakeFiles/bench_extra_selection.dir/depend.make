# Empty dependencies file for bench_extra_selection.
# This may be replaced when dependencies are built.
