file(REMOVE_RECURSE
  "CMakeFiles/bench_extra_sort_cutoff.dir/bench_extra_sort_cutoff.cc.o"
  "CMakeFiles/bench_extra_sort_cutoff.dir/bench_extra_sort_cutoff.cc.o.d"
  "bench_extra_sort_cutoff"
  "bench_extra_sort_cutoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extra_sort_cutoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
