# Empty compiler generated dependencies file for bench_extra_sort_cutoff.
# This may be replaced when dependencies are built.
