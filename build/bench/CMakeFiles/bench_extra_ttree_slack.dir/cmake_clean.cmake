file(REMOVE_RECURSE
  "CMakeFiles/bench_extra_ttree_slack.dir/bench_extra_ttree_slack.cc.o"
  "CMakeFiles/bench_extra_ttree_slack.dir/bench_extra_ttree_slack.cc.o.d"
  "bench_extra_ttree_slack"
  "bench_extra_ttree_slack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extra_ttree_slack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
