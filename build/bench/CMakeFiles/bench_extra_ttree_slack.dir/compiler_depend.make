# Empty compiler generated dependencies file for bench_extra_ttree_slack.
# This may be replaced when dependencies are built.
