file(REMOVE_RECURSE
  "CMakeFiles/bench_graph01_search.dir/bench_graph01_search.cc.o"
  "CMakeFiles/bench_graph01_search.dir/bench_graph01_search.cc.o.d"
  "bench_graph01_search"
  "bench_graph01_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_graph01_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
