# Empty dependencies file for bench_graph01_search.
# This may be replaced when dependencies are built.
