file(REMOVE_RECURSE
  "CMakeFiles/bench_graph02_querymix.dir/bench_graph02_querymix.cc.o"
  "CMakeFiles/bench_graph02_querymix.dir/bench_graph02_querymix.cc.o.d"
  "bench_graph02_querymix"
  "bench_graph02_querymix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_graph02_querymix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
