# Empty compiler generated dependencies file for bench_graph02_querymix.
# This may be replaced when dependencies are built.
