file(REMOVE_RECURSE
  "CMakeFiles/bench_graph03_distribution.dir/bench_graph03_distribution.cc.o"
  "CMakeFiles/bench_graph03_distribution.dir/bench_graph03_distribution.cc.o.d"
  "bench_graph03_distribution"
  "bench_graph03_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_graph03_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
