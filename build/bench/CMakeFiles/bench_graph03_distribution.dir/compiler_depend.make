# Empty compiler generated dependencies file for bench_graph03_distribution.
# This may be replaced when dependencies are built.
