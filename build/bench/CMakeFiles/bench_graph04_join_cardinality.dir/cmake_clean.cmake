file(REMOVE_RECURSE
  "CMakeFiles/bench_graph04_join_cardinality.dir/bench_graph04_join_cardinality.cc.o"
  "CMakeFiles/bench_graph04_join_cardinality.dir/bench_graph04_join_cardinality.cc.o.d"
  "bench_graph04_join_cardinality"
  "bench_graph04_join_cardinality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_graph04_join_cardinality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
