# Empty dependencies file for bench_graph04_join_cardinality.
# This may be replaced when dependencies are built.
