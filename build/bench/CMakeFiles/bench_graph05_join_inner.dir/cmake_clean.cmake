file(REMOVE_RECURSE
  "CMakeFiles/bench_graph05_join_inner.dir/bench_graph05_join_inner.cc.o"
  "CMakeFiles/bench_graph05_join_inner.dir/bench_graph05_join_inner.cc.o.d"
  "bench_graph05_join_inner"
  "bench_graph05_join_inner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_graph05_join_inner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
