# Empty compiler generated dependencies file for bench_graph05_join_inner.
# This may be replaced when dependencies are built.
