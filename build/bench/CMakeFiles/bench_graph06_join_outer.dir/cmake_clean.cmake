file(REMOVE_RECURSE
  "CMakeFiles/bench_graph06_join_outer.dir/bench_graph06_join_outer.cc.o"
  "CMakeFiles/bench_graph06_join_outer.dir/bench_graph06_join_outer.cc.o.d"
  "bench_graph06_join_outer"
  "bench_graph06_join_outer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_graph06_join_outer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
