# Empty dependencies file for bench_graph06_join_outer.
# This may be replaced when dependencies are built.
