file(REMOVE_RECURSE
  "CMakeFiles/bench_graph07_join_dup_skewed.dir/bench_graph07_join_dup_skewed.cc.o"
  "CMakeFiles/bench_graph07_join_dup_skewed.dir/bench_graph07_join_dup_skewed.cc.o.d"
  "bench_graph07_join_dup_skewed"
  "bench_graph07_join_dup_skewed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_graph07_join_dup_skewed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
