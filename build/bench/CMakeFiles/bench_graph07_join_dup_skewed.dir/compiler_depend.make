# Empty compiler generated dependencies file for bench_graph07_join_dup_skewed.
# This may be replaced when dependencies are built.
