file(REMOVE_RECURSE
  "CMakeFiles/bench_graph08_join_dup_uniform.dir/bench_graph08_join_dup_uniform.cc.o"
  "CMakeFiles/bench_graph08_join_dup_uniform.dir/bench_graph08_join_dup_uniform.cc.o.d"
  "bench_graph08_join_dup_uniform"
  "bench_graph08_join_dup_uniform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_graph08_join_dup_uniform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
