# Empty dependencies file for bench_graph08_join_dup_uniform.
# This may be replaced when dependencies are built.
