file(REMOVE_RECURSE
  "CMakeFiles/bench_graph09_join_semijoin.dir/bench_graph09_join_semijoin.cc.o"
  "CMakeFiles/bench_graph09_join_semijoin.dir/bench_graph09_join_semijoin.cc.o.d"
  "bench_graph09_join_semijoin"
  "bench_graph09_join_semijoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_graph09_join_semijoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
