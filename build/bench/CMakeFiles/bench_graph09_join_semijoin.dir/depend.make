# Empty dependencies file for bench_graph09_join_semijoin.
# This may be replaced when dependencies are built.
