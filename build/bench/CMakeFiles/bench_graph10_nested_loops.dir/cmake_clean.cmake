file(REMOVE_RECURSE
  "CMakeFiles/bench_graph10_nested_loops.dir/bench_graph10_nested_loops.cc.o"
  "CMakeFiles/bench_graph10_nested_loops.dir/bench_graph10_nested_loops.cc.o.d"
  "bench_graph10_nested_loops"
  "bench_graph10_nested_loops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_graph10_nested_loops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
