# Empty dependencies file for bench_graph10_nested_loops.
# This may be replaced when dependencies are built.
