file(REMOVE_RECURSE
  "CMakeFiles/bench_graph11_project_cardinality.dir/bench_graph11_project_cardinality.cc.o"
  "CMakeFiles/bench_graph11_project_cardinality.dir/bench_graph11_project_cardinality.cc.o.d"
  "bench_graph11_project_cardinality"
  "bench_graph11_project_cardinality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_graph11_project_cardinality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
