# Empty dependencies file for bench_graph11_project_cardinality.
# This may be replaced when dependencies are built.
