file(REMOVE_RECURSE
  "CMakeFiles/bench_graph12_project_duplicates.dir/bench_graph12_project_duplicates.cc.o"
  "CMakeFiles/bench_graph12_project_duplicates.dir/bench_graph12_project_duplicates.cc.o.d"
  "bench_graph12_project_duplicates"
  "bench_graph12_project_duplicates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_graph12_project_duplicates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
