# Empty compiler generated dependencies file for bench_graph12_project_duplicates.
# This may be replaced when dependencies are built.
