file(REMOVE_RECURSE
  "CMakeFiles/employee_department.dir/employee_department.cpp.o"
  "CMakeFiles/employee_department.dir/employee_department.cpp.o.d"
  "employee_department"
  "employee_department.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/employee_department.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
