# Empty dependencies file for employee_department.
# This may be replaced when dependencies are built.
