file(REMOVE_RECURSE
  "CMakeFiles/mmdb_shell.dir/mmdb_shell.cpp.o"
  "CMakeFiles/mmdb_shell.dir/mmdb_shell.cpp.o.d"
  "mmdb_shell"
  "mmdb_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmdb_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
