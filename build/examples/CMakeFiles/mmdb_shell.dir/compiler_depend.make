# Empty compiler generated dependencies file for mmdb_shell.
# This may be replaced when dependencies are built.
