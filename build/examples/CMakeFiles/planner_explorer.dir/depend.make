# Empty dependencies file for planner_explorer.
# This may be replaced when dependencies are built.
