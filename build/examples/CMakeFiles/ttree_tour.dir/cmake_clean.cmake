file(REMOVE_RECURSE
  "CMakeFiles/ttree_tour.dir/ttree_tour.cpp.o"
  "CMakeFiles/ttree_tour.dir/ttree_tour.cpp.o.d"
  "ttree_tour"
  "ttree_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttree_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
