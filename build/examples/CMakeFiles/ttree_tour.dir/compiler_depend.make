# Empty compiler generated dependencies file for ttree_tour.
# This may be replaced when dependencies are built.
