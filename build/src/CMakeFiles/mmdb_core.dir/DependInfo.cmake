
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/database.cc" "src/CMakeFiles/mmdb_core.dir/core/database.cc.o" "gcc" "src/CMakeFiles/mmdb_core.dir/core/database.cc.o.d"
  "/root/repo/src/core/planner.cc" "src/CMakeFiles/mmdb_core.dir/core/planner.cc.o" "gcc" "src/CMakeFiles/mmdb_core.dir/core/planner.cc.o.d"
  "/root/repo/src/core/query.cc" "src/CMakeFiles/mmdb_core.dir/core/query.cc.o" "gcc" "src/CMakeFiles/mmdb_core.dir/core/query.cc.o.d"
  "/root/repo/src/core/shell.cc" "src/CMakeFiles/mmdb_core.dir/core/shell.cc.o" "gcc" "src/CMakeFiles/mmdb_core.dir/core/shell.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mmdb_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmdb_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmdb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmdb_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
