file(REMOVE_RECURSE
  "CMakeFiles/mmdb_core.dir/core/database.cc.o"
  "CMakeFiles/mmdb_core.dir/core/database.cc.o.d"
  "CMakeFiles/mmdb_core.dir/core/planner.cc.o"
  "CMakeFiles/mmdb_core.dir/core/planner.cc.o.d"
  "CMakeFiles/mmdb_core.dir/core/query.cc.o"
  "CMakeFiles/mmdb_core.dir/core/query.cc.o.d"
  "CMakeFiles/mmdb_core.dir/core/shell.cc.o"
  "CMakeFiles/mmdb_core.dir/core/shell.cc.o.d"
  "libmmdb_core.a"
  "libmmdb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmdb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
