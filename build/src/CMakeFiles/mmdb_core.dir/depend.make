# Empty dependencies file for mmdb_core.
# This may be replaced when dependencies are built.
