
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/aggregate.cc" "src/CMakeFiles/mmdb_exec.dir/exec/aggregate.cc.o" "gcc" "src/CMakeFiles/mmdb_exec.dir/exec/aggregate.cc.o.d"
  "/root/repo/src/exec/join.cc" "src/CMakeFiles/mmdb_exec.dir/exec/join.cc.o" "gcc" "src/CMakeFiles/mmdb_exec.dir/exec/join.cc.o.d"
  "/root/repo/src/exec/predicate.cc" "src/CMakeFiles/mmdb_exec.dir/exec/predicate.cc.o" "gcc" "src/CMakeFiles/mmdb_exec.dir/exec/predicate.cc.o.d"
  "/root/repo/src/exec/project.cc" "src/CMakeFiles/mmdb_exec.dir/exec/project.cc.o" "gcc" "src/CMakeFiles/mmdb_exec.dir/exec/project.cc.o.d"
  "/root/repo/src/exec/select.cc" "src/CMakeFiles/mmdb_exec.dir/exec/select.cc.o" "gcc" "src/CMakeFiles/mmdb_exec.dir/exec/select.cc.o.d"
  "/root/repo/src/exec/sort.cc" "src/CMakeFiles/mmdb_exec.dir/exec/sort.cc.o" "gcc" "src/CMakeFiles/mmdb_exec.dir/exec/sort.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mmdb_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
