file(REMOVE_RECURSE
  "CMakeFiles/mmdb_exec.dir/exec/aggregate.cc.o"
  "CMakeFiles/mmdb_exec.dir/exec/aggregate.cc.o.d"
  "CMakeFiles/mmdb_exec.dir/exec/join.cc.o"
  "CMakeFiles/mmdb_exec.dir/exec/join.cc.o.d"
  "CMakeFiles/mmdb_exec.dir/exec/predicate.cc.o"
  "CMakeFiles/mmdb_exec.dir/exec/predicate.cc.o.d"
  "CMakeFiles/mmdb_exec.dir/exec/project.cc.o"
  "CMakeFiles/mmdb_exec.dir/exec/project.cc.o.d"
  "CMakeFiles/mmdb_exec.dir/exec/select.cc.o"
  "CMakeFiles/mmdb_exec.dir/exec/select.cc.o.d"
  "CMakeFiles/mmdb_exec.dir/exec/sort.cc.o"
  "CMakeFiles/mmdb_exec.dir/exec/sort.cc.o.d"
  "libmmdb_exec.a"
  "libmmdb_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmdb_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
