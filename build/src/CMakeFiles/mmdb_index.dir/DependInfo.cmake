
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/array_index.cc" "src/CMakeFiles/mmdb_index.dir/index/array_index.cc.o" "gcc" "src/CMakeFiles/mmdb_index.dir/index/array_index.cc.o.d"
  "/root/repo/src/index/avl_tree.cc" "src/CMakeFiles/mmdb_index.dir/index/avl_tree.cc.o" "gcc" "src/CMakeFiles/mmdb_index.dir/index/avl_tree.cc.o.d"
  "/root/repo/src/index/bplus_tree.cc" "src/CMakeFiles/mmdb_index.dir/index/bplus_tree.cc.o" "gcc" "src/CMakeFiles/mmdb_index.dir/index/bplus_tree.cc.o.d"
  "/root/repo/src/index/btree.cc" "src/CMakeFiles/mmdb_index.dir/index/btree.cc.o" "gcc" "src/CMakeFiles/mmdb_index.dir/index/btree.cc.o.d"
  "/root/repo/src/index/chained_hash.cc" "src/CMakeFiles/mmdb_index.dir/index/chained_hash.cc.o" "gcc" "src/CMakeFiles/mmdb_index.dir/index/chained_hash.cc.o.d"
  "/root/repo/src/index/extendible_hash.cc" "src/CMakeFiles/mmdb_index.dir/index/extendible_hash.cc.o" "gcc" "src/CMakeFiles/mmdb_index.dir/index/extendible_hash.cc.o.d"
  "/root/repo/src/index/index.cc" "src/CMakeFiles/mmdb_index.dir/index/index.cc.o" "gcc" "src/CMakeFiles/mmdb_index.dir/index/index.cc.o.d"
  "/root/repo/src/index/key_ops.cc" "src/CMakeFiles/mmdb_index.dir/index/key_ops.cc.o" "gcc" "src/CMakeFiles/mmdb_index.dir/index/key_ops.cc.o.d"
  "/root/repo/src/index/linear_hash.cc" "src/CMakeFiles/mmdb_index.dir/index/linear_hash.cc.o" "gcc" "src/CMakeFiles/mmdb_index.dir/index/linear_hash.cc.o.d"
  "/root/repo/src/index/modified_linear_hash.cc" "src/CMakeFiles/mmdb_index.dir/index/modified_linear_hash.cc.o" "gcc" "src/CMakeFiles/mmdb_index.dir/index/modified_linear_hash.cc.o.d"
  "/root/repo/src/index/ttree.cc" "src/CMakeFiles/mmdb_index.dir/index/ttree.cc.o" "gcc" "src/CMakeFiles/mmdb_index.dir/index/ttree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mmdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
