file(REMOVE_RECURSE
  "CMakeFiles/mmdb_index.dir/index/array_index.cc.o"
  "CMakeFiles/mmdb_index.dir/index/array_index.cc.o.d"
  "CMakeFiles/mmdb_index.dir/index/avl_tree.cc.o"
  "CMakeFiles/mmdb_index.dir/index/avl_tree.cc.o.d"
  "CMakeFiles/mmdb_index.dir/index/bplus_tree.cc.o"
  "CMakeFiles/mmdb_index.dir/index/bplus_tree.cc.o.d"
  "CMakeFiles/mmdb_index.dir/index/btree.cc.o"
  "CMakeFiles/mmdb_index.dir/index/btree.cc.o.d"
  "CMakeFiles/mmdb_index.dir/index/chained_hash.cc.o"
  "CMakeFiles/mmdb_index.dir/index/chained_hash.cc.o.d"
  "CMakeFiles/mmdb_index.dir/index/extendible_hash.cc.o"
  "CMakeFiles/mmdb_index.dir/index/extendible_hash.cc.o.d"
  "CMakeFiles/mmdb_index.dir/index/index.cc.o"
  "CMakeFiles/mmdb_index.dir/index/index.cc.o.d"
  "CMakeFiles/mmdb_index.dir/index/key_ops.cc.o"
  "CMakeFiles/mmdb_index.dir/index/key_ops.cc.o.d"
  "CMakeFiles/mmdb_index.dir/index/linear_hash.cc.o"
  "CMakeFiles/mmdb_index.dir/index/linear_hash.cc.o.d"
  "CMakeFiles/mmdb_index.dir/index/modified_linear_hash.cc.o"
  "CMakeFiles/mmdb_index.dir/index/modified_linear_hash.cc.o.d"
  "CMakeFiles/mmdb_index.dir/index/ttree.cc.o"
  "CMakeFiles/mmdb_index.dir/index/ttree.cc.o.d"
  "libmmdb_index.a"
  "libmmdb_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmdb_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
