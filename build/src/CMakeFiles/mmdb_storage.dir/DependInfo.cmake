
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/catalog.cc" "src/CMakeFiles/mmdb_storage.dir/storage/catalog.cc.o" "gcc" "src/CMakeFiles/mmdb_storage.dir/storage/catalog.cc.o.d"
  "/root/repo/src/storage/index_iface.cc" "src/CMakeFiles/mmdb_storage.dir/storage/index_iface.cc.o" "gcc" "src/CMakeFiles/mmdb_storage.dir/storage/index_iface.cc.o.d"
  "/root/repo/src/storage/partition.cc" "src/CMakeFiles/mmdb_storage.dir/storage/partition.cc.o" "gcc" "src/CMakeFiles/mmdb_storage.dir/storage/partition.cc.o.d"
  "/root/repo/src/storage/relation.cc" "src/CMakeFiles/mmdb_storage.dir/storage/relation.cc.o" "gcc" "src/CMakeFiles/mmdb_storage.dir/storage/relation.cc.o.d"
  "/root/repo/src/storage/schema.cc" "src/CMakeFiles/mmdb_storage.dir/storage/schema.cc.o" "gcc" "src/CMakeFiles/mmdb_storage.dir/storage/schema.cc.o.d"
  "/root/repo/src/storage/temp_list.cc" "src/CMakeFiles/mmdb_storage.dir/storage/temp_list.cc.o" "gcc" "src/CMakeFiles/mmdb_storage.dir/storage/temp_list.cc.o.d"
  "/root/repo/src/storage/tuple.cc" "src/CMakeFiles/mmdb_storage.dir/storage/tuple.cc.o" "gcc" "src/CMakeFiles/mmdb_storage.dir/storage/tuple.cc.o.d"
  "/root/repo/src/storage/value.cc" "src/CMakeFiles/mmdb_storage.dir/storage/value.cc.o" "gcc" "src/CMakeFiles/mmdb_storage.dir/storage/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mmdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
