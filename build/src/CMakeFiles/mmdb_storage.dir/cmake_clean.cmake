file(REMOVE_RECURSE
  "CMakeFiles/mmdb_storage.dir/storage/catalog.cc.o"
  "CMakeFiles/mmdb_storage.dir/storage/catalog.cc.o.d"
  "CMakeFiles/mmdb_storage.dir/storage/index_iface.cc.o"
  "CMakeFiles/mmdb_storage.dir/storage/index_iface.cc.o.d"
  "CMakeFiles/mmdb_storage.dir/storage/partition.cc.o"
  "CMakeFiles/mmdb_storage.dir/storage/partition.cc.o.d"
  "CMakeFiles/mmdb_storage.dir/storage/relation.cc.o"
  "CMakeFiles/mmdb_storage.dir/storage/relation.cc.o.d"
  "CMakeFiles/mmdb_storage.dir/storage/schema.cc.o"
  "CMakeFiles/mmdb_storage.dir/storage/schema.cc.o.d"
  "CMakeFiles/mmdb_storage.dir/storage/temp_list.cc.o"
  "CMakeFiles/mmdb_storage.dir/storage/temp_list.cc.o.d"
  "CMakeFiles/mmdb_storage.dir/storage/tuple.cc.o"
  "CMakeFiles/mmdb_storage.dir/storage/tuple.cc.o.d"
  "CMakeFiles/mmdb_storage.dir/storage/value.cc.o"
  "CMakeFiles/mmdb_storage.dir/storage/value.cc.o.d"
  "libmmdb_storage.a"
  "libmmdb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmdb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
