
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/txn/disk_image.cc" "src/CMakeFiles/mmdb_txn.dir/txn/disk_image.cc.o" "gcc" "src/CMakeFiles/mmdb_txn.dir/txn/disk_image.cc.o.d"
  "/root/repo/src/txn/lock_manager.cc" "src/CMakeFiles/mmdb_txn.dir/txn/lock_manager.cc.o" "gcc" "src/CMakeFiles/mmdb_txn.dir/txn/lock_manager.cc.o.d"
  "/root/repo/src/txn/log.cc" "src/CMakeFiles/mmdb_txn.dir/txn/log.cc.o" "gcc" "src/CMakeFiles/mmdb_txn.dir/txn/log.cc.o.d"
  "/root/repo/src/txn/log_device.cc" "src/CMakeFiles/mmdb_txn.dir/txn/log_device.cc.o" "gcc" "src/CMakeFiles/mmdb_txn.dir/txn/log_device.cc.o.d"
  "/root/repo/src/txn/recovery.cc" "src/CMakeFiles/mmdb_txn.dir/txn/recovery.cc.o" "gcc" "src/CMakeFiles/mmdb_txn.dir/txn/recovery.cc.o.d"
  "/root/repo/src/txn/transaction.cc" "src/CMakeFiles/mmdb_txn.dir/txn/transaction.cc.o" "gcc" "src/CMakeFiles/mmdb_txn.dir/txn/transaction.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mmdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
