file(REMOVE_RECURSE
  "CMakeFiles/mmdb_txn.dir/txn/disk_image.cc.o"
  "CMakeFiles/mmdb_txn.dir/txn/disk_image.cc.o.d"
  "CMakeFiles/mmdb_txn.dir/txn/lock_manager.cc.o"
  "CMakeFiles/mmdb_txn.dir/txn/lock_manager.cc.o.d"
  "CMakeFiles/mmdb_txn.dir/txn/log.cc.o"
  "CMakeFiles/mmdb_txn.dir/txn/log.cc.o.d"
  "CMakeFiles/mmdb_txn.dir/txn/log_device.cc.o"
  "CMakeFiles/mmdb_txn.dir/txn/log_device.cc.o.d"
  "CMakeFiles/mmdb_txn.dir/txn/recovery.cc.o"
  "CMakeFiles/mmdb_txn.dir/txn/recovery.cc.o.d"
  "CMakeFiles/mmdb_txn.dir/txn/transaction.cc.o"
  "CMakeFiles/mmdb_txn.dir/txn/transaction.cc.o.d"
  "libmmdb_txn.a"
  "libmmdb_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmdb_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
