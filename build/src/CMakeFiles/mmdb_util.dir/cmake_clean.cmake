file(REMOVE_RECURSE
  "CMakeFiles/mmdb_util.dir/util/counters.cc.o"
  "CMakeFiles/mmdb_util.dir/util/counters.cc.o.d"
  "CMakeFiles/mmdb_util.dir/util/rng.cc.o"
  "CMakeFiles/mmdb_util.dir/util/rng.cc.o.d"
  "CMakeFiles/mmdb_util.dir/util/status.cc.o"
  "CMakeFiles/mmdb_util.dir/util/status.cc.o.d"
  "CMakeFiles/mmdb_util.dir/util/timer.cc.o"
  "CMakeFiles/mmdb_util.dir/util/timer.cc.o.d"
  "libmmdb_util.a"
  "libmmdb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmdb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
