file(REMOVE_RECURSE
  "libmmdb_util.a"
)
