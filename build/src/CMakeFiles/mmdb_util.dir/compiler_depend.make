# Empty compiler generated dependencies file for mmdb_util.
# This may be replaced when dependencies are built.
