file(REMOVE_RECURSE
  "CMakeFiles/mmdb_workload.dir/workload/generator.cc.o"
  "CMakeFiles/mmdb_workload.dir/workload/generator.cc.o.d"
  "libmmdb_workload.a"
  "libmmdb_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmdb_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
