file(REMOVE_RECURSE
  "libmmdb_workload.a"
)
