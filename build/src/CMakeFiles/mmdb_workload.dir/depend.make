# Empty dependencies file for mmdb_workload.
# This may be replaced when dependencies are built.
