file(REMOVE_RECURSE
  "CMakeFiles/avl_btree_test.dir/avl_btree_test.cc.o"
  "CMakeFiles/avl_btree_test.dir/avl_btree_test.cc.o.d"
  "avl_btree_test"
  "avl_btree_test.pdb"
  "avl_btree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avl_btree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
