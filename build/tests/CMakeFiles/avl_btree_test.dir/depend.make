# Empty dependencies file for avl_btree_test.
# This may be replaced when dependencies are built.
