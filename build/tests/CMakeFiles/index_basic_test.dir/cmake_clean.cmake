file(REMOVE_RECURSE
  "CMakeFiles/index_basic_test.dir/index_basic_test.cc.o"
  "CMakeFiles/index_basic_test.dir/index_basic_test.cc.o.d"
  "index_basic_test"
  "index_basic_test.pdb"
  "index_basic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
