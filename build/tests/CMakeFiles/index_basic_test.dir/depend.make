# Empty dependencies file for index_basic_test.
# This may be replaced when dependencies are built.
