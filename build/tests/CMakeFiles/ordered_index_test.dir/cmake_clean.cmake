file(REMOVE_RECURSE
  "CMakeFiles/ordered_index_test.dir/ordered_index_test.cc.o"
  "CMakeFiles/ordered_index_test.dir/ordered_index_test.cc.o.d"
  "ordered_index_test"
  "ordered_index_test.pdb"
  "ordered_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordered_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
