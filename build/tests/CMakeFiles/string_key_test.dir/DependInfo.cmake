
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/string_key_test.cc" "tests/CMakeFiles/string_key_test.dir/string_key_test.cc.o" "gcc" "tests/CMakeFiles/string_key_test.dir/string_key_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mmdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmdb_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmdb_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmdb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmdb_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
