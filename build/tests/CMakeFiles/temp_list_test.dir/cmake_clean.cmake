file(REMOVE_RECURSE
  "CMakeFiles/temp_list_test.dir/temp_list_test.cc.o"
  "CMakeFiles/temp_list_test.dir/temp_list_test.cc.o.d"
  "temp_list_test"
  "temp_list_test.pdb"
  "temp_list_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temp_list_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
