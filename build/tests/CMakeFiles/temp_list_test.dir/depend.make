# Empty dependencies file for temp_list_test.
# This may be replaced when dependencies are built.
