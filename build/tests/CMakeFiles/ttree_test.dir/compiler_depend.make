# Empty compiler generated dependencies file for ttree_test.
# This may be replaced when dependencies are built.
