// Concurrent clients demo: several client threads share one MM-DBMS
// through the QueryService — an account table takes concurrent deposits
// (read-modify-write increments) while an auditor session keeps reading
// balances.  At the end the books must balance exactly: the service's
// partition S/X locking means no deposit is ever lost.
//
//   build/examples/concurrent_clients

#include <cstdio>
#include <thread>
#include <vector>

#include "src/core/database.h"
#include "src/core/query.h"
#include "src/server/query_service.h"

using namespace mmdb;

int main() {
  Database db;
  db.CreateTable("accounts", {{"id", Type::kInt32},
                              {"owner", Type::kString},
                              {"balance", Type::kInt64}});
  constexpr int kAccounts = 4;
  const char* owners[kAccounts] = {"ada", "grace", "edsger", "barbara"};
  for (int i = 0; i < kAccounts; ++i) {
    db.Insert("accounts", {Value(i), Value(owners[i]), Value(int64_t{0})});
  }

  ServiceOptions options;
  options.workers = 4;
  options.queue_depth = 256;
  QueryService service(&db, options);

  constexpr int kClients = 4;
  constexpr int kDepositsPerClient = 200;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&service, c] {
      Session* session = service.OpenSession();
      for (int i = 0; i < kDepositsPerClient; ++i) {
        IncrementSpec deposit;
        deposit.table = "accounts";
        deposit.match = {"id", CompareOp::kEq, Value((c + i) % kAccounts)};
        deposit.field = "balance";
        deposit.delta = 10;
        OpResult r = session->Increment(deposit);
        if (!r.ok()) {
          std::printf("client %d: deposit failed: %s\n", c,
                      r.status.ToString().c_str());
        }
      }
    });
  }

  // Auditor: concurrent reads while the deposits pour in.
  std::thread auditor([&service] {
    Session* session = service.OpenSession();
    for (int i = 0; i < 20; ++i) {
      SelectSpec all;
      all.table = "accounts";
      all.columns = {"accounts.owner", "accounts.balance"};
      OpResult r = session->Select(all);
      if (r.ok() && i % 5 == 0) {
        int64_t sum = 0;
        for (const auto& row : r.rows) sum += row[1].AsInt64();
        std::printf("audit %2d: total balance %lld\n", i,
                    static_cast<long long>(sum));
      }
    }
  });

  for (auto& t : clients) t.join();
  auditor.join();
  service.Shutdown();

  // Final audit directly against the database.
  QueryResult finals = db.Query("accounts")
                           .Select({"accounts.owner", "accounts.balance"})
                           .OrderBySelected()
                           .Run();
  std::printf("\nfinal balances:\n");
  int64_t total = 0;
  for (size_t r = 0; r < finals.rows.size(); ++r) {
    std::printf("  %s\n", finals.rows.RowToString(r).c_str());
    total += finals.rows.GetValue(r, 1).AsInt64();
  }
  const int64_t expected = int64_t{kClients} * kDepositsPerClient * 10;
  std::printf("total %lld (expected %lld) — %s\n",
              static_cast<long long>(total), static_cast<long long>(expected),
              total == expected ? "books balance" : "LOST UPDATES");

  std::printf("\nservice stats:\n%s", service.Stats().ToString().c_str());
  return total == expected ? 0 : 1;
}
