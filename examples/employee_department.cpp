// The paper's running example (Figure 1): the Employee and Department
// relations, foreign keys materialized as tuple pointers, and the two
// motivating queries of Section 2.1:
//
//   Query 1: employee name, age, and department name for employees over 65
//            (answered by following precomputed pointers — no join at all);
//   Query 2: names of employees in the Toy or Shoe departments
//            (a selection on Department, then a pointer-comparison join).
//
//   $ ./employee_department

#include <cstdio>
#include <set>

#include "src/core/database.h"
#include "src/core/query.h"
#include "src/exec/join.h"
#include "src/exec/select.h"
#include "src/storage/tuple.h"

using namespace mmdb;

int main() {
  Database db;
  db.CreateTable("dept", {{"name", Type::kString}, {"id", Type::kInt32}});
  db.CreateIndex("dept", "id", IndexKind::kTTree);
  db.CreateTable("emp", {{"name", Type::kString},
                         {"id", Type::kInt32},
                         {"age", Type::kInt32},
                         {"dept_id", Type::kPointer}});
  db.CreateIndex("emp", "age", IndexKind::kTTree);
  // Declaring the foreign key makes inserts store a Department *tuple
  // pointer* in emp.dept_id — the precomputed join of Section 2.1.
  db.DeclareForeignKey("emp", "dept_id", "dept", "id");

  // Figure 1's data (plus one over-65 employee so Query 1 has a hit).
  db.Insert("dept", {Value("Toy"), Value(459)});
  db.Insert("dept", {Value("Shoe"), Value(409)});
  db.Insert("dept", {Value("Linen"), Value(411)});
  db.Insert("dept", {Value("Paint"), Value(455)});
  db.Insert("emp", {Value("Dave"), Value(23), Value(24), Value(459)});
  db.Insert("emp", {Value("Suzan"), Value(12), Value(27), Value(459)});
  db.Insert("emp", {Value("Yuman"), Value(44), Value(54), Value(411)});
  db.Insert("emp", {Value("Jane"), Value(43), Value(47), Value(411)});
  db.Insert("emp", {Value("Cindy"), Value(22), Value(22), Value(409)});
  db.Insert("emp", {Value("Al"), Value(51), Value(67), Value(409)});

  // ---- Query 1 ---------------------------------------------------------
  std::printf("Query 1: employees over 65, with their department name\n");
  QueryResult q1 = db.Query("emp")
                       .Where("age", CompareOp::kGt, 65)
                       .Select({"emp.name", "emp.age", "emp.dept_id.name"})
                       .Run();
  std::printf("  plan: %s\n", q1.plan.c_str());
  for (size_t r = 0; r < q1.rows.size(); ++r) {
    std::printf("  %s\n", q1.rows.RowToString(r).c_str());
  }

  // ---- Query 2, by hand, exactly as Section 2.1 describes ---------------
  std::printf("\nQuery 2: employees in the Toy or Shoe departments\n");
  Relation* dept = db.GetTable("dept");
  Relation* emp = db.GetTable("emp");

  // Selection on Department for "Toy" and "Shoe"...
  Predicate toy_or_shoe_is_two_selects;  // (the paper treats it as one)
  Predicate toy;
  toy.Add(0, CompareOp::kEq, Value("Toy"));
  Predicate shoe;
  shoe.Add(0, CompareOp::kEq, Value("Shoe"));
  TempList toy_rows = Select(*dept, toy);
  TempList shoe_rows = Select(*dept, shoe);

  // ...then a join whose comparisons are on *tuple pointers*, not data.
  std::set<TupleRef> wanted;
  for (size_t r = 0; r < toy_rows.size(); ++r) wanted.insert(toy_rows.At(r, 0));
  for (size_t r = 0; r < shoe_rows.size(); ++r)
    wanted.insert(shoe_rows.At(r, 0));

  const Schema& es = emp->schema();
  ScanRelation(*emp, [&](TupleRef e) {
    if (wanted.contains(tuple::GetPointer(e, es.offset(3)))) {
      std::printf("  %.*s\n",
                  static_cast<int>(tuple::GetString(e, es.offset(0)).size()),
                  tuple::GetString(e, es.offset(0)).data());
    }
    return true;
  });

  // ---- The precomputed join that Figure 1's result relation shows -------
  std::printf("\nFigure 1 result relation (precomputed join, all employees)\n");
  TempList result = PrecomputedJoin(*emp, 3);
  ResultDescriptor* desc = result.mutable_descriptor();
  desc->AddColumn(0, uint16_t{0}, "Emp Name");
  desc->AddColumn(0, uint16_t{2}, "Emp Age");
  desc->AddColumn(1, uint16_t{0}, "Dept Name");
  for (size_t r = 0; r < result.size(); ++r) {
    std::printf("  %s\n", result.RowToString(r).c_str());
  }
  return 0;
}
