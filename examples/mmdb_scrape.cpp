// mmdb_scrape: a tiny operator CLI that pulls the observability endpoints
// from a running server over the binary wire protocol (kAdminRequest
// frames) — the same text `curl http://host:port/<endpoint>` returns via
// the HTTP shim, but exercising the native path.
//
//   $ ./mmdb_scrape 127.0.0.1 7700 metrics   # Prometheus exposition
//   $ ./mmdb_scrape 127.0.0.1 7700 status    # health one-pager
//   $ ./mmdb_scrape 127.0.0.1 7700 slowlog   # recent slow queries
//   $ ./mmdb_scrape 127.0.0.1 7700 flight    # flight-recorder snapshot

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/net/client.h"
#include "src/net/wire_format.h"

int main(int argc, char** argv) {
  if (argc != 4) {
    std::fprintf(stderr, "usage: %s <host> <port> metrics|status|slowlog|flight\n",
                 argv[0]);
    return 2;
  }
  const std::string host = argv[1];
  const int port = std::atoi(argv[2]);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "error: bad port '%s'\n", argv[2]);
    return 2;
  }
  const std::string what = argv[3];
  mmdb::net::AdminKind kind;
  if (what == "metrics") {
    kind = mmdb::net::AdminKind::kMetrics;
  } else if (what == "status") {
    kind = mmdb::net::AdminKind::kStatus;
  } else if (what == "slowlog") {
    kind = mmdb::net::AdminKind::kSlowLog;
  } else if (what == "flight") {
    kind = mmdb::net::AdminKind::kFlight;
  } else {
    std::fprintf(stderr, "error: unknown endpoint '%s'\n", what.c_str());
    return 2;
  }

  mmdb::net::Client client;
  mmdb::Status s = client.Connect(host, static_cast<uint16_t>(port));
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::string text;
  s = client.Admin(kind, &text);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::fputs(text.c_str(), stdout);
  if (!text.empty() && text.back() != '\n') std::fputc('\n', stdout);
  return 0;
}
