// An interactive shell over the MM-DBMS.  Reads statements from stdin (or a
// script passed with -c), one per ';'.
//
//   $ ./mmdb_shell
//   mmdb> CREATE TABLE dept (name STRING, id INT);
//   mmdb> CREATE INDEX ON dept (id) USING TTREE;
//   mmdb> INSERT INTO dept VALUES ('Toy', 459);
//   mmdb> SELECT dept.name FROM dept WHERE id = 459;
//
//   $ ./mmdb_shell -c "CREATE TABLE t (x INT); INSERT INTO t VALUES (1);
//                      SELECT * FROM t;"
//
// --serve <port> exposes the shell's database over the binary wire
// protocol (equivalent to typing `SERVE <port>;`) while the REPL stays
// interactive — remote net::Client traffic and local statements hit the
// same tables:
//
//   $ ./mmdb_shell --serve 7700
//
// SIGUSR1 dumps the flight recorder + slow-query log without interrupting
// anything: the handler just sets a flag; the watchdog tick (when serving)
// or the REPL loop performs the dump.
//
//   $ kill -USR1 $(pidof mmdb_shell)

#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <iostream>
#include <string>

#include "src/core/database.h"
#include "src/core/shell.h"
#include "src/server/flight_recorder.h"

namespace {

extern "C" void OnSigusr1(int) { mmdb::flight::RequestDump(); }

/// REPL-side dump service: when no watchdog thread is running (not
/// serving), the prompt loop consumes the SIGUSR1 flag between statements.
void MaybeDump() {
  if (!mmdb::flight::ConsumePendingDump()) return;
  std::fprintf(stderr, "--- flight recorder dump (SIGUSR1) ---\n%s\n%s\n",
               mmdb::flight::SlowLogText().c_str(),
               mmdb::flight::FlightText().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGUSR1, OnSigusr1);

  mmdb::Database db;
  mmdb::CommandShell shell(&db);

  std::string serve_port;
  int arg = 1;
  if (argc >= 3 && std::string(argv[1]) == "--serve") {
    serve_port = argv[2];
    arg = 3;
  }
  if (argc - arg == 2 && std::string(argv[arg]) == "-c") {
    if (!serve_port.empty()) {
      std::printf("%s\n", shell.Execute("SERVE " + serve_port).c_str());
    }
    std::fputs(shell.ExecuteScript(argv[arg + 1]).c_str(), stdout);
    MaybeDump();
    return 0;
  }
  if (argc != arg) {
    std::fprintf(stderr, "usage: %s [--serve <port>] [-c 'script']\n",
                 argv[0]);
    return 2;
  }
  if (!serve_port.empty()) {
    const std::string result = shell.Execute("SERVE " + serve_port);
    std::printf("%s\n", result.c_str());
    if (result.rfind("error:", 0) == 0) return 1;
  }

  std::printf("mmdb shell — statements end with ';' (Ctrl-D to exit)\n");
  std::string buffer, line;
  std::printf("mmdb> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    MaybeDump();
    buffer += line;
    buffer += '\n';
    if (line.find(';') != std::string::npos) {
      std::fputs(shell.ExecuteScript(buffer).c_str(), stdout);
      buffer.clear();
      std::printf("mmdb> ");
    } else {
      std::printf("  ... ");
    }
    std::fflush(stdout);
  }
  std::printf("\n");
  if (!serve_port.empty()) {
    // Backgrounded `--serve` with stdin at EOF (CI, daemonized runs): keep
    // the server up until SIGINT/SIGTERM instead of exiting with stdin.
    std::fprintf(stderr, "stdin closed; still serving (Ctrl-C to stop)\n");
    for (;;) {
      pause();
      MaybeDump();
    }
  }
  return 0;
}
