// An interactive shell over the MM-DBMS.  Reads statements from stdin (or a
// script passed with -c), one per ';'.
//
//   $ ./mmdb_shell
//   mmdb> CREATE TABLE dept (name STRING, id INT);
//   mmdb> CREATE INDEX ON dept (id) USING TTREE;
//   mmdb> INSERT INTO dept VALUES ('Toy', 459);
//   mmdb> SELECT dept.name FROM dept WHERE id = 459;
//
//   $ ./mmdb_shell -c "CREATE TABLE t (x INT); INSERT INTO t VALUES (1);
//                      SELECT * FROM t;"
//
// --serve <port> exposes the shell's database over the binary wire
// protocol (equivalent to typing `SERVE <port>;`) while the REPL stays
// interactive — remote net::Client traffic and local statements hit the
// same tables:
//
//   $ ./mmdb_shell --serve 7700
//
// --replica-of <host:port> --dir <path> starts as a read replica of a
// serving primary: it bootstraps from the primary's newest checkpoint,
// mirrors and continuously replays its WAL segments into <path>, and
// serves SELECTs (add --serve to expose them over TCP).  Writes return
// READ_ONLY until `PROMOTE;` is typed, which turns the process into a
// standalone primary over the mirrored directory:
//
//   $ ./mmdb_shell --serve 7700 &            # primary
//   $ ./mmdb_shell --replica-of 127.0.0.1:7700 --dir /data/replica \
//                  --serve 7701
//
// SIGUSR1 dumps the flight recorder + slow-query log without interrupting
// anything: the handler just sets a flag; the watchdog tick (when serving)
// or the REPL loop performs the dump.
//
//   $ kill -USR1 $(pidof mmdb_shell)

#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "src/core/database.h"
#include "src/core/shell.h"
#include "src/repl/replica.h"
#include "src/repl/shipper.h"
#include "src/server/flight_recorder.h"

namespace {

extern "C" void OnSigusr1(int) { mmdb::flight::RequestDump(); }

/// REPL-side dump service: when no watchdog thread is running (not
/// serving), the prompt loop consumes the SIGUSR1 flag between statements.
void MaybeDump() {
  if (!mmdb::flight::ConsumePendingDump()) return;
  std::fprintf(stderr, "--- flight recorder dump (SIGUSR1) ---\n%s\n%s\n",
               mmdb::flight::SlowLogText().c_str(),
               mmdb::flight::FlightText().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGUSR1, OnSigusr1);

  std::string serve_port, replica_of, replica_dir, script;
  bool have_script = false;
  int arg = 1;
  while (arg < argc) {
    const std::string flag = argv[arg];
    if (flag == "--serve" && arg + 1 < argc) {
      serve_port = argv[++arg];
    } else if (flag == "--replica-of" && arg + 1 < argc) {
      replica_of = argv[++arg];
    } else if (flag == "--dir" && arg + 1 < argc) {
      replica_dir = argv[++arg];
    } else if (flag == "-c" && arg + 1 < argc) {
      script = argv[++arg];
      have_script = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--serve <port>] "
                   "[--replica-of <host:port> --dir <path>] [-c 'script']\n",
                   argv[0]);
      return 2;
    }
    ++arg;
  }

  // A replica owns its own Database (recovered from the mirror dir); a
  // primary gets a Shipper so SERVE answers log-shipping requests.
  std::unique_ptr<mmdb::Database> own_db;
  std::unique_ptr<mmdb::repl::Replica> replica;
  std::unique_ptr<mmdb::repl::Shipper> shipper;
  mmdb::Database* db = nullptr;
  if (!replica_of.empty()) {
    const size_t colon = replica_of.rfind(':');
    if (colon == std::string::npos || replica_dir.empty()) {
      std::fprintf(stderr,
                   "--replica-of needs <host:port> and a --dir mirror path\n");
      return 2;
    }
    mmdb::repl::ReplicaOptions options;
    options.primary_host = replica_of.substr(0, colon);
    options.primary_port =
        static_cast<uint16_t>(std::stoul(replica_of.substr(colon + 1)));
    options.dir = replica_dir;
    replica = std::make_unique<mmdb::repl::Replica>(options);
    mmdb::Status s = replica->Start();
    if (!s.ok()) {
      std::fprintf(stderr, "replica start failed: %s\n", s.ToString().c_str());
      return 1;
    }
    db = replica->db();
    std::fprintf(stderr, "replica of %s, mirroring into %s\n",
                 replica_of.c_str(), replica_dir.c_str());
  } else {
    own_db = std::make_unique<mmdb::Database>();
    db = own_db.get();
    shipper = std::make_unique<mmdb::repl::Shipper>(db);
  }

  mmdb::CommandShell shell(db);
  if (replica != nullptr) shell.set_replica(replica.get());
  if (shipper != nullptr) shell.set_repl_source(shipper.get());

  if (have_script) {
    if (!serve_port.empty()) {
      std::printf("%s\n", shell.Execute("SERVE " + serve_port).c_str());
    }
    std::fputs(shell.ExecuteScript(script).c_str(), stdout);
    MaybeDump();
    return 0;
  }
  if (!serve_port.empty()) {
    const std::string result = shell.Execute("SERVE " + serve_port);
    std::printf("%s\n", result.c_str());
    if (result.rfind("error:", 0) == 0) return 1;
  }

  std::printf("mmdb shell — statements end with ';' (Ctrl-D to exit)\n");
  std::string buffer, line;
  std::printf("mmdb> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    MaybeDump();
    buffer += line;
    buffer += '\n';
    if (line.find(';') != std::string::npos) {
      std::fputs(shell.ExecuteScript(buffer).c_str(), stdout);
      buffer.clear();
      std::printf("mmdb> ");
    } else {
      std::printf("  ... ");
    }
    std::fflush(stdout);
  }
  std::printf("\n");
  if (!serve_port.empty()) {
    // Backgrounded `--serve` with stdin at EOF (CI, daemonized runs): keep
    // the server up until SIGINT/SIGTERM instead of exiting with stdin.
    std::fprintf(stderr, "stdin closed; still serving (Ctrl-C to stop)\n");
    for (;;) {
      pause();
      MaybeDump();
    }
  }
  return 0;
}
