// An interactive shell over the MM-DBMS.  Reads statements from stdin (or a
// script passed with -c), one per ';'.
//
//   $ ./mmdb_shell
//   mmdb> CREATE TABLE dept (name STRING, id INT);
//   mmdb> CREATE INDEX ON dept (id) USING TTREE;
//   mmdb> INSERT INTO dept VALUES ('Toy', 459);
//   mmdb> SELECT dept.name FROM dept WHERE id = 459;
//
//   $ ./mmdb_shell -c "CREATE TABLE t (x INT); INSERT INTO t VALUES (1);
//                      SELECT * FROM t;"

#include <cstdio>
#include <iostream>
#include <string>

#include "src/core/database.h"
#include "src/core/shell.h"

int main(int argc, char** argv) {
  mmdb::Database db;
  mmdb::CommandShell shell(&db);

  if (argc == 3 && std::string(argv[1]) == "-c") {
    std::fputs(shell.ExecuteScript(argv[2]).c_str(), stdout);
    return 0;
  }
  if (argc != 1) {
    std::fprintf(stderr, "usage: %s [-c 'script']\n", argv[0]);
    return 2;
  }

  std::printf("mmdb shell — statements end with ';' (Ctrl-D to exit)\n");
  std::string buffer, line;
  std::printf("mmdb> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    buffer += line;
    buffer += '\n';
    if (line.find(';') != std::string::npos) {
      std::fputs(shell.ExecuteScript(buffer).c_str(), stdout);
      buffer.clear();
      std::printf("mmdb> ");
    } else {
      std::printf("  ... ");
    }
    std::fflush(stdout);
  }
  std::printf("\n");
  return 0;
}
