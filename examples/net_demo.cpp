// Network front end tour: stands up an epoll server over a QueryService,
// then drives it with net::Client — a synchronous round trip, a pipelined
// burst completing out of order, a deliberate protocol violation answered
// with a typed error frame, and the mmdb_net_* metrics the traffic left
// behind.
//
//   $ ./net_demo
//
// Everything runs in-process on an ephemeral loopback port; the same
// protocol is what `mmdb_shell --serve <port>` speaks.

#include <cstdio>
#include <map>
#include <string>

#include "src/core/database.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/server/query_service.h"

using namespace mmdb;

int main() {
  // A small employee table behind a 2-worker service.
  Database db;
  db.CreateTable("emp", {{"id", Type::kInt32},
                         {"age", Type::kInt32},
                         {"name", Type::kString}});
  for (int i = 0; i < 100; ++i) {
    db.Insert("emp", {Value(i), Value(20 + i % 50),
                      Value("emp" + std::to_string(i))});
  }
  ServiceOptions sopts;
  sopts.workers = 2;
  QueryService service(&db, sopts);

  net::ServerOptions nopts;
  nopts.port = 0;  // ephemeral
  nopts.max_pipeline = 8;
  net::Server server(&service, nopts);
  if (!server.Start().ok()) {
    std::printf("server failed to start\n");
    return 1;
  }
  std::printf("serving on 127.0.0.1:%u\n\n", server.port());

  net::Client client;
  if (!client.Connect("127.0.0.1", server.port()).ok()) return 1;

  // 1. Synchronous round trip.
  SelectSpec sel;
  sel.table = "emp";
  sel.where = {WhereClause{"id", CompareOp::kEq, Value(42)}};
  sel.columns = {"emp.name", "emp.age"};
  net::Response r = client.Call(Operation(sel));
  std::printf("point select: %s, age %s\n",
              r.result.rows[0][0].ToString().c_str(),
              r.result.rows[0][1].ToString().c_str());

  // 2. A pipelined burst: eight sends, then eight receives.  The worker
  // pool completes them in whatever order it likes; request ids match the
  // responses back up.
  std::map<uint64_t, int> asked;
  for (int i = 0; i < 8; ++i) {
    SelectSpec s;
    s.table = "emp";
    s.where = {WhereClause{"id", CompareOp::kEq, Value(i * 10)}};
    s.columns = {"emp.name"};
    uint64_t id = 0;
    client.Send(Operation(s), &id);
    asked[id] = i * 10;
  }
  std::printf("\npipelined burst (completion order):\n");
  for (int i = 0; i < 8; ++i) {
    net::Response resp;
    if (!client.Receive(&resp).ok()) break;
    std::printf("  id %llu -> emp %d: %s\n",
                static_cast<unsigned long long>(resp.request_id),
                asked[resp.request_id],
                resp.result.rows[0][0].ToString().c_str());
  }

  // 3. Overload: nine sends against a pipeline bound of eight — the ninth
  // is shed with a *typed* kOverloaded frame naming the victim's id.
  // (Stalling the workers would make this deterministic; at demo speed the
  // pool may drain fast enough to admit everything.)
  int shed = 0, fine = 0;
  for (int i = 0; i < 9; ++i) client.Send(Operation(sel));
  for (int i = 0; i < 9; ++i) {
    net::Response resp;
    if (!client.Receive(&resp).ok()) break;
    if (resp.is_error && resp.error_code == net::WireErrorCode::kOverloaded) {
      ++shed;
    } else {
      ++fine;
    }
  }
  std::printf("\noverload burst: %d completed, %d shed (typed kOverloaded)\n",
              fine, shed);

  // 4. What the traffic looked like to the server.
  const std::string metrics = service.MetricsText();
  for (const char* key :
       {"mmdb_net_accepted_total ", "mmdb_net_frames_in_total ",
        "mmdb_net_frames_out_total ", "mmdb_net_requests_total ",
        "mmdb_net_responses_total ", "mmdb_net_pipeline_depth_hwm "}) {
    // Match at line start so the "# TYPE <name> ..." header doesn't win.
    const size_t pos = metrics.find(std::string("\n") + key);
    if (pos == std::string::npos) continue;
    const size_t eol = metrics.find('\n', pos + 1);
    std::printf("  %s\n", metrics.substr(pos + 1, eol - pos - 1).c_str());
  }

  server.Stop();  // drains in-flight callbacks before the service dies
  return 0;
}
