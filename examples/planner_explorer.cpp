// Shows the Section 4 optimizer making its choices across scenarios:
// selection access paths and join methods, with the rule that fired.
//
//   $ ./planner_explorer

#include <cstdio>

#include "src/core/database.h"
#include "src/core/planner.h"
#include "src/index/key_ops.h"
#include "src/workload/generator.h"

using namespace mmdb;

namespace {

void ShowJoinPlan(const char* scenario, const JoinSpec& spec,
                  const JoinStats& stats = {}) {
  JoinPlan plan = Planner::PlanJoin(spec, stats);
  std::printf("  %-46s -> %-28s (%s)\n", scenario, JoinMethodName(plan.method),
              plan.rationale.c_str());
}

std::unique_ptr<TupleIndex> KeyIndex(Relation* rel, IndexKind kind) {
  auto ops = std::make_shared<FieldKeyOps>(&rel->schema(), 0);
  IndexConfig config;
  config.expected = rel->cardinality();
  auto index = CreateIndex(kind, std::move(ops), config);
  index->set_key_fields({0});
  return index;
}

}  // namespace

int main() {
  WorkloadGen gen(1);
  ColumnData big_col = gen.Generate({10000, 0, 0.8});
  ColumnData small_col = gen.GenerateMatching({1000, 0, 0.8}, big_col.uniques,
                                              100);
  auto big = WorkloadGen::BuildRelation("big", big_col);     // array primary
  auto small = WorkloadGen::BuildRelation("small", small_col);

  std::printf("join planning (Section 4 preference order):\n");

  // Both sides carry array (ordered) primaries on the join column.
  ShowJoinPlan("ordered indices on both join columns",
               {small.get(), 0, big.get(), 0});

  // No index on the outer join column (join on its seq field).
  ShowJoinPlan("no usable index on either join column",
               {small.get(), 1, big.get(), 1});

  // Index only on the large inner, small outer (10%).
  ShowJoinPlan("small outer, ordered index on large inner only",
               {small.get(), 1, big.get(), 0});

  // Same but with an existing hash index on the inner.
  big->AttachIndex(KeyIndex(big.get(), IndexKind::kChainedBucketHash));
  ShowJoinPlan("small outer, hash index on large inner",
               {small.get(), 1, big.get(), 0});

  // High duplicates + high selectivity favor Sort Merge.
  JoinStats heavy;
  heavy.duplicate_pct = 85;
  heavy.skewed = true;
  heavy.semijoin_selectivity = 100;
  ShowJoinPlan("85% skewed duplicates, 100% selectivity",
               {small.get(), 0, big.get(), 0}, heavy);

  // Foreign-key pointer field: the precomputed join always wins.
  Database db;
  db.CreateTable("dept", {{"id", Type::kInt32}});
  db.CreateTable("emp", {{"dept", Type::kPointer}});
  db.DeclareForeignKey("emp", "dept", "dept", "id");
  db.Insert("dept", {Value(1)});
  db.Insert("emp", {Value(1)});
  ShowJoinPlan("outer join field is a foreign-key pointer",
               {db.GetTable("emp"), 0, db.GetTable("dept"), 0});

  std::printf("\nselection planning:\n");
  Relation* r = big.get();
  Predicate eq;
  eq.Add(0, CompareOp::kEq, Value(big_col.uniques[0]));
  std::printf("  equality with hash + tree index  -> %s\n",
              AccessPathName(Planner::PlanSelect(*r, eq)));
  Predicate range;
  range.Add(0, CompareOp::kGt, Value(0));
  std::printf("  range with tree index            -> %s\n",
              AccessPathName(Planner::PlanSelect(*r, range)));
  Predicate unindexed;
  unindexed.Add(1, CompareOp::kEq, Value(5));
  std::printf("  equality on unindexed field      -> %s\n",
              AccessPathName(Planner::PlanSelect(*r, unindexed)));
  return 0;
}
