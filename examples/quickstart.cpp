// Quickstart: create tables, index them, insert, and query — the smallest
// useful tour of the public Database API.
//
//   $ ./quickstart

#include <cstdio>

#include "src/core/database.h"
#include "src/core/query.h"

using namespace mmdb;

int main() {
  Database db;

  // A table gets a T Tree primary index on its first field automatically;
  // additional indices are one call each.
  db.CreateTable("products", {{"name", Type::kString},
                              {"price", Type::kInt32},
                              {"stock", Type::kInt32}});
  db.CreateIndex("products", "price", IndexKind::kTTree);
  db.CreateIndex("products", "stock", IndexKind::kModifiedLinearHash);

  db.Insert("products", {Value("apple"), Value(120), Value(40)});
  db.Insert("products", {Value("banana"), Value(60), Value(0)});
  db.Insert("products", {Value("cherry"), Value(400), Value(12)});
  db.Insert("products", {Value("damson"), Value(90), Value(0)});

  // Range selection: the planner picks the T Tree on price.
  QueryResult cheap = db.Query("products")
                          .Where("price", CompareOp::kLt, 150)
                          .Select({"products.name", "products.price"})
                          .Run();
  std::printf("products under 150  [%s]\n", cheap.plan.c_str());
  for (size_t r = 0; r < cheap.rows.size(); ++r) {
    std::printf("  %s\n", cheap.rows.RowToString(r).c_str());
  }

  // Exact-match selection: hash lookup beats tree lookup (Section 4).
  QueryResult out_of_stock = db.Query("products")
                                 .Where("stock", CompareOp::kEq, 0)
                                 .Select({"products.name"})
                                 .Run();
  std::printf("\nout of stock  [%s]\n", out_of_stock.plan.c_str());
  for (size_t r = 0; r < out_of_stock.rows.size(); ++r) {
    std::printf("  %s\n", out_of_stock.rows.RowToString(r).c_str());
  }

  // Transactions: deferred update, redo-only logging.
  auto txn = db.Begin();
  txn->Insert("products", {Value("elderberry"), Value(800), Value(3)});
  txn->Commit();
  std::printf("\nafter txn, %zu products\n",
              db.GetTable("products")->cardinality());

  // Durability: checkpoint + log device; then survive a crash.
  db.Checkpoint();
  db.RunLogDevice();
  if (db.SimulateCrashAndRecover().ok()) {
    std::printf("recovered %zu products after simulated crash\n",
                db.GetTable("products")->cardinality());
  }
  return 0;
}
