// Figure 2 walkthrough: the stable log buffer, the active log device with
// its change-accumulation log, the disk copy of the database, and
// working-set-first crash recovery (Section 2.4).
//
//   $ ./recovery_demo

#include <cstdio>

#include "src/core/database.h"
#include "src/core/query.h"

using namespace mmdb;

int main() {
  Database db;
  db.CreateTable("accounts", {{"id", Type::kInt32}, {"balance", Type::kInt32}});
  db.CreateTable("audit", {{"seq", Type::kInt32}, {"note", Type::kString}});

  for (int i = 0; i < 8; ++i) {
    db.Insert("accounts", {Value(i), Value(1000)});
  }
  std::printf("loaded %zu accounts; checkpointing the disk copy...\n",
              db.GetTable("accounts")->cardinality());
  db.Checkpoint();

  // A committed transfer: log records written to the stable log buffer
  // *before* the update touches memory; commit makes them drainable.
  auto txn = db.Begin();
  Relation* accounts = db.GetTable("accounts");
  TupleRef from = accounts->primary_index()->Find(Value(3));
  TupleRef to = accounts->primary_index()->Find(Value(5));
  txn->Update("accounts", from, 1, Value(400));
  txn->Update("accounts", to, 1, Value(1600));
  txn->Insert("audit", {Value(1), Value("transfer 600: 3 -> 5")});
  txn->Commit();
  std::printf("committed transfer; stable log buffer holds %zu records\n",
              db.log_buffer().committed_size());

  // An aborted transaction leaves no trace — "the log entry is removed and
  // no undo is needed".
  auto oops = db.Begin();
  oops->Insert("audit", {Value(2), Value("fat-finger, never happened")});
  oops->Abort();

  // The log device drains committed records into its change-accumulation
  // log.  We *deliberately* stop before propagation, so the disk copy is
  // stale and recovery has to merge.
  const size_t pumped = db.log_device().Pump();
  std::printf("log device accumulated %zu records (disk copy still stale)\n",
              pumped);

  // CRASH.  Memory is gone; the disk copy + accumulation log survive.
  std::printf("\n*** crash ***\n\n");
  RecoveryManager::Progress progress;
  Status s = db.SimulateCrashAndRecover({"accounts"}, &progress);
  if (!s.ok()) {
    std::printf("recovery failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf(
      "recovered: %zu partitions, %zu tuples, %zu log records merged on the "
      "fly\n",
      progress.partitions_loaded, progress.tuples_loaded,
      progress.log_records_merged);

  QueryResult r = db.Query("accounts")
                      .Select({"accounts.id", "accounts.balance"})
                      .Run();
  std::printf("\naccounts after recovery:\n");
  for (size_t row = 0; row < r.rows.size(); ++row) {
    std::printf("  %s\n", r.rows.RowToString(row).c_str());
  }
  QueryResult audit = db.Query("audit").Select({"audit.note"}).Run();
  std::printf("audit rows: %zu (the aborted one is gone)\n",
              audit.rows.size());
  for (size_t row = 0; row < audit.rows.size(); ++row) {
    std::printf("  %s\n", audit.rows.RowToString(row).c_str());
  }
  return 0;
}
