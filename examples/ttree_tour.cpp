// A tour of the T Tree (Figures 3 and 4): node occupancy, GLB transfers,
// rotations, and how the min/max-count slack trades storage for update
// speed — with the operation counters the paper used for validation.
//
//   $ ./ttree_tour

#include <cstdio>

#include "src/index/key_ops.h"
#include "src/index/ttree.h"
#include "src/storage/relation.h"
#include "src/util/counters.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

using namespace mmdb;

namespace {

std::unique_ptr<Relation> MakeRelation(size_t n) {
  Schema schema({{"key", Type::kInt32}});
  auto rel = std::make_unique<Relation>("tour", schema);
  std::vector<int32_t> keys(n);
  for (size_t i = 0; i < n; ++i) keys[i] = static_cast<int32_t>(i);
  Rng rng(1);
  rng.Shuffle(&keys);
  for (int32_t k : keys) rel->Insert({Value(k)});
  return rel;
}

}  // namespace

int main() {
  constexpr size_t kN = 30000;
  auto rel = MakeRelation(kN);
  std::vector<TupleRef> tuples;
  rel->ForEachTuple([&](TupleRef t) { tuples.push_back(t); });

  std::printf("T Tree with %zu elements, per node size:\n", kN);
  std::printf("%-10s %-8s %-8s %-10s %-12s %-12s\n", "node_size", "nodes",
              "height", "bytes/elem", "cmp/search", "rotations");
  for (int node_size : {2, 8, 16, 32, 64}) {
    IndexConfig config;
    config.node_size = node_size;
    auto ops = std::make_shared<FieldKeyOps>(&rel->schema(), 0);
    TTree tree(std::move(ops), config);
    counters::Reset();
    for (TupleRef t : tuples) tree.Insert(t);
    const uint64_t build_rotations = counters::Snapshot().rotations;

    counters::Reset();
    for (int32_t k = 0; k < static_cast<int32_t>(kN); k += 7) {
      tree.Find(Value(k));
    }
    const double cmp_per_search =
        static_cast<double>(counters::Snapshot().comparisons) / (kN / 7.0);

    std::printf("%-10d %-8zu %-8d %-10.2f %-12.1f %-12llu\n", node_size,
                tree.node_count(), tree.Height(),
                static_cast<double>(tree.StorageBytes()) / kN, cmp_per_search,
                static_cast<unsigned long long>(build_rotations));
  }

  std::printf("\nmin/max-count slack vs rotations (mixed workload, node 16):\n");
  std::printf("%-8s %-12s %-12s\n", "slack", "rotations", "bytes/elem");
  for (int slack : {0, 1, 2, 4}) {
    IndexConfig config;
    config.node_size = 16;
    config.min_slack = slack;
    auto ops = std::make_shared<FieldKeyOps>(&rel->schema(), 0);
    TTree tree(std::move(ops), config);
    for (TupleRef t : tuples) tree.Insert(t);
    counters::Reset();
    Rng rng(5);
    for (int i = 0; i < 60000; ++i) {
      TupleRef t = tuples[rng.NextBounded(tuples.size())];
      if (!tree.Erase(t)) tree.Insert(t);
    }
    std::printf("%-8d %-12llu %-12.2f\n", slack,
                static_cast<unsigned long long>(counters::Snapshot().rotations),
                static_cast<double>(tree.StorageBytes()) / tree.size());
  }
  std::printf(
      "\n(the paper: one or two items of slack 'significantly reduce the "
      "need for tree rotations')\n");
  return 0;
}
