#include "src/cache/fingerprint.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace mmdb {
namespace cache {
namespace {

/// Canonical, unambiguous constant encoding.  Integers are width-normalized
/// (int32 5 and int64 5 select the same tuples under Value::Compare, so
/// they must encode identically); strings are length-prefixed so field
/// separators in payloads cannot forge a collision.
void EncodeValue(const Value& v, std::ostringstream* os) {
  switch (v.type()) {
    case Type::kInt32:
      *os << "i" << static_cast<int64_t>(v.AsInt32());
      break;
    case Type::kInt64:
      *os << "i" << v.AsInt64();
      break;
    case Type::kDouble: {
      // Hex float round-trips exactly; "%g" would collide distinct values.
      char buf[64];
      std::snprintf(buf, sizeof(buf), "d%a", v.AsDouble());
      *os << buf;
      break;
    }
    case Type::kString:
      *os << "s" << v.AsString().size() << ":" << v.AsString();
      break;
    case Type::kPointer:
      *os << "p" << reinterpret_cast<uintptr_t>(v.AsPointer());
      break;
  }
}

std::string EncodeConjunct(const ShapeConjunct& c) {
  std::ostringstream os;
  os << c.field.size() << ":" << c.field << "/" << static_cast<int>(c.op)
     << "/";
  EncodeValue(c.value, &os);
  return os.str();
}

/// Conjuncts are an unordered conjunction: sort the encodings so any
/// ordering of the same condition set yields one key.
void EncodeConjunctSet(const std::vector<ShapeConjunct>& set,
                       std::ostringstream* os) {
  std::vector<std::string> encoded;
  encoded.reserve(set.size());
  for (const ShapeConjunct& c : set) encoded.push_back(EncodeConjunct(c));
  std::sort(encoded.begin(), encoded.end());
  *os << "[" << encoded.size();
  for (const std::string& e : encoded) *os << "|" << e;
  *os << "]";
}

}  // namespace

std::string FingerprintBase(const QueryShape& shape) {
  std::ostringstream os;
  os << "t" << shape.table.size() << ":" << shape.table << ";w";
  EncodeConjunctSet(shape.where, &os);
  if (shape.has_join) {
    os << ";j" << shape.join_table.size() << ":" << shape.join_table << "/"
       << shape.join_left.size() << ":" << shape.join_left << "/"
       << shape.join_right.size() << ":" << shape.join_right << ";jw";
    EncodeConjunctSet(shape.join_where, &os);
  }
  return os.str();
}

namespace {

size_t CountSegments(const std::string& path) {
  return static_cast<size_t>(std::count(path.begin(), path.end(), '.')) + 1;
}

bool HasTablePrefix(const QueryShape& shape, const std::string& path) {
  const size_t dot = path.find('.');
  if (dot == std::string::npos) return false;
  const std::string head = path.substr(0, dot);
  return head == shape.table || (shape.has_join && head == shape.join_table);
}

}  // namespace

void NormalizeColumns(QueryShape* shape) {
  for (std::string& c : shape->columns) {
    if (!HasTablePrefix(*shape, c)) c = shape->table + "." + c;
  }
}

bool ColumnsCacheable(const QueryShape& shape) {
  for (const std::string& c : shape.columns) {
    // After NormalizeColumns every path is "<table>.<...>"; a single-hop
    // column has exactly two segments.
    if (CountSegments(c) != 2) return false;
  }
  return true;
}

std::string FingerprintFull(const QueryShape& shape) {
  std::ostringstream os;
  os << FingerprintBase(shape) << ";c[";
  // Column order is significant (it is the output order); no sorting here.
  for (const std::string& c : shape.columns) {
    os << c.size() << ":" << c << "|";
  }
  os << "]" << (shape.distinct ? ";D" : "") << (shape.ordered ? ";O" : "");
  return os.str();
}

}  // namespace cache
}  // namespace mmdb
