// Plan fingerprints: the normalized-key half of the reuse cache (see
// reuse_cache.h and DESIGN.md §4d).  "Revisiting Reuse in Main Memory
// Database Systems" keys cached results and intermediates by a canonical
// form of the plan so that syntactically different but equivalent queries
// share one entry.  Here the canonical form covers everything the engine's
// query surface can vary:
//
//   * conjuncts are sorted by (field, op, value) — WHERE a=1 AND b=2 and
//     WHERE b=2 AND a=1 produce the same key;
//   * integer constants are width-normalized — int32 5 and int64 5 select
//     the same tuples (Value::Compare is cross-width numeric), so they must
//     produce the same key;
//   * the output column list is made explicit — "all columns" expands to the
//     driving table's fields before fingerprinting, so SELECT * and the
//     spelled-out equivalent collide.
//
// Two keys exist per shape: the *base* key identifies the select/join/filter
// stage output (column list, DISTINCT and ORDER BY excluded — queries that
// differ only in projection share the same intermediate), and the *full* key
// identifies the final row set and order.
//
// The shape struct is deliberately local to this library: the cache sits
// below the server layer (src/server depends on it, not vice versa), so it
// cannot speak SelectSpec.  Callers adapt at the boundary.

#ifndef MMDB_CACHE_FINGERPRINT_H_
#define MMDB_CACHE_FINGERPRINT_H_

#include <string>
#include <vector>

#include "src/exec/predicate.h"
#include "src/storage/value.h"

namespace mmdb {
namespace cache {

/// One canonicalizable conjunct: field *name* (not index — the key must
/// survive a drop/recreate of the relation without aliasing) plus operator
/// and constant.
struct ShapeConjunct {
  std::string field;
  CompareOp op = CompareOp::kEq;
  Value value;
};

/// Everything that determines a query's result given database contents.
struct QueryShape {
  std::string table;
  std::vector<ShapeConjunct> where;

  bool has_join = false;
  std::string join_table;
  std::string join_left, join_right;
  std::vector<ShapeConjunct> join_where;

  /// Output columns as dot-paths.  Must already be explicit (an empty
  /// Select() expanded to the driving table's fields) so equivalent
  /// spellings collide.
  std::vector<std::string> columns;
  bool distinct = false;
  bool ordered = false;
};

/// Key of the select/join/filter stage output (columns/distinct/ordered
/// excluded).  Stable across conjunct order and integer constant width.
std::string FingerprintBase(const QueryShape& shape);

/// Key of the final result (base + columns + distinct + ordered).
std::string FingerprintFull(const QueryShape& shape);

/// Canonicalizes shape.columns in place: a path whose first segment is not
/// one of the shape's table names gets the driving table prepended, so
/// "name" and "emp.name" produce the same key (mirroring the resolution
/// precedence of QueryBuilder::ResolveColumn).
void NormalizeColumns(QueryShape* shape);

/// True if every column resolves within the shape's own tables in a single
/// hop.  Foreign-key hop columns ("emp.dept_id.name") read tuples of
/// relations outside the query's lock/footprint scope, so results carrying
/// them cannot be cached soundly.
bool ColumnsCacheable(const QueryShape& shape);

}  // namespace cache
}  // namespace mmdb

#endif  // MMDB_CACHE_FINGERPRINT_H_
