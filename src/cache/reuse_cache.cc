#include "src/cache/reuse_cache.h"

#include <algorithm>

#include "src/util/metrics.h"
#include "src/util/trace.h"

namespace mmdb {
namespace cache {

// ---- Footprint --------------------------------------------------------------

void Footprint::AddAll(const std::string& relation) {
  for (RelationScope& s : relations) {
    if (s.relation == relation) {
      s.all_partitions = true;
      s.partitions.clear();
      return;
    }
  }
  relations.push_back(RelationScope{relation, true, {}});
}

void Footprint::AddPartitions(const std::string& relation,
                              const std::vector<uint32_t>& pids) {
  for (RelationScope& s : relations) {
    if (s.relation == relation) {
      if (s.all_partitions) return;
      s.partitions.insert(s.partitions.end(), pids.begin(), pids.end());
      std::sort(s.partitions.begin(), s.partitions.end());
      s.partitions.erase(
          std::unique(s.partitions.begin(), s.partitions.end()),
          s.partitions.end());
      return;
    }
  }
  RelationScope scope{relation, false, pids};
  std::sort(scope.partitions.begin(), scope.partitions.end());
  scope.partitions.erase(
      std::unique(scope.partitions.begin(), scope.partitions.end()),
      scope.partitions.end());
  relations.push_back(std::move(scope));
}

// ---- Size accounting --------------------------------------------------------

namespace {

size_t ApproxValueBytes(const Value& v) {
  size_t n = sizeof(Value);
  if (v.type() == Type::kString) n += v.AsString().capacity();
  return n;
}

constexpr size_t kEntryOverhead = 256;  // map node, LRU node, bucket refs

}  // namespace

size_t ApproxBytes(const ResultPayload& p) {
  size_t n = kEntryOverhead + p.plan.size();
  for (const std::string& c : p.columns) n += c.size() + sizeof(std::string);
  for (const auto& row : p.rows) {
    n += sizeof(row) + (row.capacity() - row.size()) * sizeof(Value);
    for (const Value& v : row) n += ApproxValueBytes(v);
  }
  return n;
}

size_t ApproxBytes(const TempPayload& p) {
  // Pointer-rows: the paper's cheap-to-retain representation.
  return kEntryOverhead + p.plan.size() +
         p.rows.raw_rows().capacity() * sizeof(TupleRef) +
         p.rows.descriptor().columns().size() * sizeof(ColumnRef);
}

// ---- ReuseCache -------------------------------------------------------------

ReuseCache::ReuseCache(MetricsRegistry* registry, size_t budget_bytes)
    : budget_bytes_(budget_bytes),
      hits_(registry->GetCounter("mmdb_cache_hits_total")),
      misses_(registry->GetCounter("mmdb_cache_misses_total")),
      fills_(registry->GetCounter("mmdb_cache_fills_total")),
      invalidations_(registry->GetCounter("mmdb_cache_invalidations_total")),
      evictions_(registry->GetCounter("mmdb_cache_evictions_total")),
      bytes_gauge_(registry->GetGauge("mmdb_cache_bytes")),
      entries_gauge_(registry->GetGauge("mmdb_cache_entries")) {}

void ReuseCache::SetEnabled(bool on) {
  const bool was = enabled_.exchange(on, std::memory_order_acq_rel);
  if (was && !on) Flush();
}

void ReuseCache::SetBudgetBytes(size_t bytes) {
  budget_bytes_.store(bytes, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  EvictToBudgetLocked();
  UpdateGaugesLocked();
}

std::shared_ptr<const ResultPayload> ReuseCache::LookupResult(
    const std::string& key) {
  if (!enabled() || entry_count_.load(std::memory_order_acquire) == 0) {
    if (enabled()) misses_->Add();
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second->result == nullptr) {
    misses_->Add();
    return nullptr;
  }
  Entry* e = it->second.get();
  lru_.splice(lru_.begin(), lru_, e->lru_it);
  hits_->Add();
  return e->result;
}

std::shared_ptr<const TempPayload> ReuseCache::LookupTemp(
    const std::string& key) {
  if (!enabled() || entry_count_.load(std::memory_order_acquire) == 0) {
    if (enabled()) misses_->Add();
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second->temp == nullptr) {
    misses_->Add();
    return nullptr;
  }
  Entry* e = it->second.get();
  lru_.splice(lru_.begin(), lru_, e->lru_it);
  hits_->Add();
  return e->temp;
}

namespace {

/// Amortized husk removal: compact a bucket when it reaches a power-of-two
/// size, so registration stays O(1) amortized even if sweeps never visit.
template <typename WeakVec>
void CompactIfCrowded(WeakVec* bucket) {
  const size_t n = bucket->size();
  if (n >= 32 && (n & (n - 1)) == 0) {
    std::erase_if(*bucket, [](const auto& w) { return w.expired(); });
  }
}

}  // namespace

std::shared_ptr<ReuseCache::Entry> ReuseCache::InsertLocked(
    const std::string& key, const Footprint& reads, size_t bytes) {
  auto it = entries_.find(key);
  if (it != entries_.end()) KillLocked(it->second.get());

  auto e = std::make_shared<Entry>();
  e->key = key;
  e->reads = reads;
  e->bytes = bytes;
  lru_.push_front(e.get());
  e->lru_it = lru_.begin();
  entries_.emplace(key, e);
  bytes_ += bytes;
  entry_count_.store(entries_.size(), std::memory_order_release);

  for (const Footprint::RelationScope& s : reads.relations) {
    RelationBuckets& b = rel_index_[s.relation];
    CompactIfCrowded(&b.members);
    b.members.push_back(e);
    if (s.all_partitions) {
      CompactIfCrowded(&b.whole);
      b.whole.push_back(e);
    } else {
      for (uint32_t pid : s.partitions) {
        auto& bucket = b.by_pid[pid];
        CompactIfCrowded(&bucket);
        bucket.push_back(e);
      }
    }
  }
  return e;
}

void ReuseCache::FillResult(const std::string& key, const Footprint& reads,
                            ResultPayload payload) {
  if (!enabled()) return;
  const size_t bytes = ApproxBytes(payload);
  std::lock_guard<std::mutex> lock(mu_);
  if (bytes > budget_bytes_.load(std::memory_order_relaxed)) return;
  auto e = InsertLocked(key, reads, bytes);
  e->result = std::make_shared<const ResultPayload>(std::move(payload));
  fills_->Add();
  EvictToBudgetLocked();
  UpdateGaugesLocked();
}

void ReuseCache::FillTemp(const std::string& key, const Footprint& reads,
                          TempPayload payload) {
  if (!enabled()) return;
  const size_t bytes = ApproxBytes(payload);
  std::lock_guard<std::mutex> lock(mu_);
  if (bytes > budget_bytes_.load(std::memory_order_relaxed)) return;
  auto e = InsertLocked(key, reads, bytes);
  e->temp = std::make_shared<const TempPayload>(std::move(payload));
  fills_->Add();
  EvictToBudgetLocked();
  UpdateGaugesLocked();
}

void ReuseCache::KillLocked(Entry* e) {
  auto it = entries_.find(e->key);
  if (it == entries_.end() || it->second.get() != e) return;  // already gone
  bytes_ -= e->bytes;
  lru_.erase(e->lru_it);
  entries_.erase(it);  // bucket weak refs expire with the shared_ptr
  entry_count_.store(entries_.size(), std::memory_order_release);
}

void ReuseCache::EvictToBudgetLocked() {
  const size_t budget = budget_bytes_.load(std::memory_order_relaxed);
  while (bytes_ > budget && !lru_.empty()) {
    KillLocked(lru_.back());
    evictions_->Add();
  }
}

size_t ReuseCache::SweepBucketLocked(
    std::vector<std::weak_ptr<Entry>>* bucket) {
  size_t killed = 0;
  for (std::weak_ptr<Entry>& w : *bucket) {
    if (std::shared_ptr<Entry> e = w.lock()) {
      KillLocked(e.get());
      ++killed;
    }
  }
  bucket->clear();
  return killed;
}

void ReuseCache::Invalidate(const Footprint& writes) {
  if (writes.empty()) return;
  if (entry_count_.load(std::memory_order_acquire) == 0) return;
  trace::Span span("cache_invalidate");
  size_t killed = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const Footprint::RelationScope& s : writes.relations) {
    auto it = rel_index_.find(s.relation);
    if (it == rel_index_.end()) continue;
    RelationBuckets& b = it->second;
    if (s.all_partitions) {
      killed += SweepBucketLocked(&b.members);
      rel_index_.erase(it);  // whole/by_pid refs are all dead now
    } else {
      killed += SweepBucketLocked(&b.whole);
      for (uint32_t pid : s.partitions) {
        auto pit = b.by_pid.find(pid);
        if (pit != b.by_pid.end()) {
          killed += SweepBucketLocked(&pit->second);
          b.by_pid.erase(pit);
        }
      }
    }
  }
  if (killed > 0) {
    invalidations_->Add(killed);
    UpdateGaugesLocked();
  }
}

void ReuseCache::InvalidateRelation(const std::string& relation) {
  Footprint writes;
  writes.AddAll(relation);
  Invalidate(writes);
}

void ReuseCache::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
  rel_index_.clear();
  bytes_ = 0;
  entry_count_.store(0, std::memory_order_release);
  UpdateGaugesLocked();
}

void ReuseCache::UpdateGaugesLocked() {
  bytes_gauge_->Set(static_cast<int64_t>(bytes_));
  entries_gauge_->Set(static_cast<int64_t>(entries_.size()));
}

CacheStats ReuseCache::Stats() const {
  CacheStats s;
  s.enabled = enabled();
  s.hits = hits_->Value();
  s.misses = misses_->Value();
  s.fills = fills_->Value();
  s.invalidations = invalidations_->Value();
  s.evictions = evictions_->Value();
  s.budget_bytes = budget_bytes_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  s.entries = entries_.size();
  s.bytes = bytes_;
  return s;
}

}  // namespace cache
}  // namespace mmdb
