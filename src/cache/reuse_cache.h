// Reuse cache (DESIGN.md §4d): memory-budgeted caching of SELECT results
// and query intermediates, keyed by the normalized plan fingerprints of
// fingerprint.h, invalidated at partition granularity by the write-lock
// footprint committing transactions already hold.
//
// Two entry kinds share one budget and one LRU order:
//
//   * RESULT entries hold fully materialized rows (owned Values).  A hit is
//     served without taking any lock: the invalidation protocol guarantees
//     every entry still present reflects all acknowledged writes (writers
//     invalidate while still holding their X locks, before the commit is
//     acknowledged), so serving a live entry is linearizable.
//   * INTERMEDIATE entries hold TempLists — pointer-rows into partition
//     slots, the paper's cheap-to-retain representation.  They are only
//     safe to traverse while the caller holds the S locks the original
//     execution held; QueryBuilder serves them inside the reader's lock
//     scope (or single-threaded use).
//
// Soundness of the footprint (why partition granularity is safe here): the
// partition-locking protocol (transaction.h) escalates every write that can
// change *which* tuples match an indexed key — inserts, deletes, and
// updates of globally-indexed or string fields — to the relation-structure
// X lock, i.e. a relation-wide write footprint.  Therefore an entry may
// record a footprint narrower than "all partitions" only when its matching
// set is pinned by such an index: a single-table, single-conjunct query on
// a relation-globally-indexed field, whose outputs live on the matching
// tuples themselves.  Such an entry records exactly the partitions holding
// its matching tuples; partition-local writes (fixed-width non-key updates)
// elsewhere provably cannot change its result.  Every other entry records
// an all-partitions footprint per touched relation — still invalidated
// precisely, just at relation granularity.
//
// Fill/invalidate race freedom: fills happen while the reader still holds
// its S locks; invalidation happens while the writer still holds its X
// locks.  A write overlapping an entry's footprint is therefore strictly
// ordered with that entry's fill by the lock manager — either the fill
// completes first (and the invalidation removes it) or the write's
// invalidation completes first (and the fill reflects the new state).

#ifndef MMDB_CACHE_REUSE_CACHE_H_
#define MMDB_CACHE_REUSE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/storage/temp_list.h"
#include "src/storage/value.h"

namespace mmdb {

class Counter;
class Gauge;
class MetricsRegistry;

namespace cache {

/// A set of (relation, partitions) scopes — an entry's read footprint at
/// fill time, or a committing transaction's write footprint.  Two
/// footprints overlap on a relation if either side is all-partitions or
/// their partition sets intersect.
struct Footprint {
  struct RelationScope {
    std::string relation;
    bool all_partitions = false;
    std::vector<uint32_t> partitions;  ///< sorted unique; unused when all
  };
  std::vector<RelationScope> relations;

  /// Relation-wide scope (replaces any narrower scope for the relation).
  void AddAll(const std::string& relation);
  /// Adds partitions to the relation's scope (no-op if already all).
  void AddPartitions(const std::string& relation,
                     const std::vector<uint32_t>& pids);

  bool empty() const { return relations.empty(); }
};

/// A materialized SELECT result: owned values, safe to serve lock-free.
struct ResultPayload {
  std::vector<std::string> columns;
  std::vector<std::vector<Value>> rows;
  std::string plan;  ///< the plan trace of the execution that filled it
};

/// A retained intermediate: pointer-rows, valid only under the reader's
/// S locks on the footprint relations.
struct TempPayload {
  TempList rows;
  std::string plan;

  TempPayload() : rows(ResultDescriptor()) {}
};

struct CacheStats {
  bool enabled = false;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t fills = 0;
  uint64_t invalidations = 0;  ///< entries removed by write footprints
  uint64_t evictions = 0;      ///< entries removed by the byte budget
  size_t entries = 0;
  size_t bytes = 0;
  size_t budget_bytes = 0;
};

class ReuseCache {
 public:
  /// `registry` hosts the mmdb_cache_* series; must outlive the cache.
  ReuseCache(MetricsRegistry* registry, size_t budget_bytes);

  // ---- Configuration --------------------------------------------------------

  bool enabled() const { return enabled_.load(std::memory_order_acquire); }
  /// Disabling flushes all entries (re-enabling starts cold).
  void SetEnabled(bool on);
  void SetBudgetBytes(size_t bytes);

  // ---- Serve / fill ---------------------------------------------------------

  /// nullptr on miss.  The returned payload stays valid even if the entry
  /// is invalidated or evicted after lookup (shared ownership) — but for
  /// intermediates the *pointers inside* are only valid under the reader's
  /// locks; see the class comment.
  std::shared_ptr<const ResultPayload> LookupResult(const std::string& key);
  std::shared_ptr<const TempPayload> LookupTemp(const std::string& key);

  /// Inserts (or replaces) an entry.  Must be called while the executing
  /// reader still holds the S locks under which `payload` was computed.
  void FillResult(const std::string& key, const Footprint& reads,
                  ResultPayload payload);
  void FillTemp(const std::string& key, const Footprint& reads,
                TempPayload payload);

  // ---- Invalidation ---------------------------------------------------------

  /// Removes every entry whose footprint overlaps `writes`.  Must be called
  /// while the writer still holds its X locks (Transaction::Commit calls it
  /// before ReleaseAll), so it is ordered against concurrent fills.
  void Invalidate(const Footprint& writes);

  /// Relation-wide invalidation (DDL, fast-path DML, recovery of one
  /// relation).
  void InvalidateRelation(const std::string& relation);

  /// Drops everything (recovery, CACHE OFF).
  void Flush();

  CacheStats Stats() const;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const ResultPayload> result;  // exactly one of these
    std::shared_ptr<const TempPayload> temp;      // two is set
    Footprint reads;
    size_t bytes = 0;
    std::list<Entry*>::iterator lru_it;
  };

  /// Per-relation reverse index: which entries a write scope can hit.
  /// A relation-wide write sweeps `members` (every entry that read the
  /// relation at all — including partition-precise entries whose matching
  /// set was empty at fill time); a partition write sweeps `whole` (entries
  /// with an all-partitions footprint) plus `by_pid[pid]`.  Buckets hold
  /// weak refs; expired ones are pruned during sweeps and registrations.
  struct RelationBuckets {
    std::vector<std::weak_ptr<Entry>> members;
    std::vector<std::weak_ptr<Entry>> whole;
    std::unordered_map<uint32_t, std::vector<std::weak_ptr<Entry>>> by_pid;
  };

  std::shared_ptr<Entry> InsertLocked(const std::string& key,
                                      const Footprint& reads, size_t bytes);
  void KillLocked(Entry* e);
  void EvictToBudgetLocked();
  /// Kills live entries in `bucket` and compacts expired refs.
  size_t SweepBucketLocked(std::vector<std::weak_ptr<Entry>>* bucket);
  void UpdateGaugesLocked();

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Entry>> entries_;
  std::list<Entry*> lru_;  ///< front = most recently used
  std::unordered_map<std::string, RelationBuckets> rel_index_;
  size_t bytes_ = 0;

  std::atomic<bool> enabled_{true};
  std::atomic<size_t> budget_bytes_;
  // Lock-free early-out for the DML commit path: writers skip the mutex
  // entirely while the cache is empty.
  std::atomic<size_t> entry_count_{0};

  Counter* hits_;
  Counter* misses_;
  Counter* fills_;
  Counter* invalidations_;
  Counter* evictions_;
  Gauge* bytes_gauge_;
  Gauge* entries_gauge_;
};

/// Approximate retained size of payloads (for the byte budget).
size_t ApproxBytes(const ResultPayload& p);
size_t ApproxBytes(const TempPayload& p);

}  // namespace cache
}  // namespace mmdb

#endif  // MMDB_CACHE_REUSE_CACHE_H_
