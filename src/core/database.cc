#include "src/core/database.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/core/query.h"
#include "src/index/key_ops.h"
#include "src/index/partitioned_index.h"
#include "src/txn/log_format.h"
#include "src/txn/wal.h"

namespace mmdb {

namespace {

/// Cache configuration from the environment: MMDB_CACHE=OFF|0|off starts
/// the reuse cache disabled (the CI parity job runs the whole suite this
/// way); MMDB_CACHE_BYTES overrides the 64 MiB default budget.
bool CacheEnabledFromEnv() {
  const char* v = std::getenv("MMDB_CACHE");
  if (v == nullptr) return true;
  const std::string s(v);
  return !(s == "OFF" || s == "off" || s == "0" || s == "false");
}

size_t CacheBudgetFromEnv() {
  constexpr size_t kDefault = 64u << 20;
  const char* v = std::getenv("MMDB_CACHE_BYTES");
  if (v == nullptr) return kDefault;
  char* end = nullptr;
  const unsigned long long n = std::strtoull(v, &end, 10);
  return (end == v || n == 0) ? kDefault : static_cast<size_t>(n);
}

}  // namespace

Database::Database()
    : reuse_cache_(std::make_unique<cache::ReuseCache>(&metrics_,
                                                       CacheBudgetFromEnv())),
      log_device_(std::make_unique<LogDevice>(&log_buffer_, &disk_image_)),
      txn_manager_(std::make_unique<TransactionManager>(
          &catalog_, &log_buffer_, &lock_manager_, reuse_cache_.get())) {
  reuse_cache_->SetEnabled(CacheEnabledFromEnv());
  lock_manager_.set_metrics(&metrics_);
}

Database::~Database() {
  // Background workers must be quiet before any relation is torn down:
  // the durability flusher/checkpointer walk the catalog, and the log
  // device worker reads the buffer and disk image.
  if (durability_ != nullptr) durability_->Stop();
  log_device_->StopBackground();
}

Relation* Database::CreateTable(const std::string& name,
                                std::vector<Field> fields,
                                Relation::Options options) {
  Relation* rel = catalog_.CreateRelation(name, Schema(fields), options);
  if (rel == nullptr) return nullptr;
  ddl_tables_.push_back(DdlTable{name, fields, options});
  // Default primary index: T Tree on the first field (Section 2.1 requires
  // at least one index per relation).
  AttachNewIndex(rel, {fields.front().name}, IndexKind::kTTree, IndexConfig(),
                 /*record_ddl=*/true);
  PersistDdl();
  return rel;
}

void Database::PersistDdl() {
  // Failures latch into mmdb_checkpoint_failures_total; the next
  // checkpoint (periodic or explicit) re-journals the schema anyway.
  if (durability_ != nullptr) durability_->Checkpoint();
}

TupleIndex* Database::AttachNewIndex(Relation* rel,
                                     const std::vector<std::string>& fields,
                                     IndexKind kind, IndexConfig config,
                                     bool record_ddl) {
  std::vector<size_t> field_ids;
  for (const std::string& f : fields) {
    auto id = rel->schema().FieldIndex(f);
    if (!id.has_value()) return nullptr;
    field_ids.push_back(*id);
  }
  std::shared_ptr<const KeyOps> ops;
  if (field_ids.size() == 1) {
    ops = std::make_shared<FieldKeyOps>(&rel->schema(), field_ids[0]);
  } else {
    ops = std::make_shared<CompositeKeyOps>(&rel->schema(), field_ids);
  }
  // Non-unique indices are partition-local (one shard per partition) so DML
  // touching one partition rewrites only that partition's shards under its X
  // lock.  Unique indices must stay relation-global: uniqueness cannot be
  // checked per partition.
  std::unique_ptr<TupleIndex> index;
  if (config.unique) {
    index = ::mmdb::CreateIndex(kind, std::move(ops), config);
  } else if (IndexKindOrdered(kind)) {
    index = std::make_unique<PartitionedOrderedIndex>(rel, kind,
                                                      std::move(ops), config);
  } else {
    index = std::make_unique<PartitionedHashIndex>(rel, kind, std::move(ops),
                                                   config);
  }
  std::string index_name = rel->name();
  for (const std::string& f : fields) index_name += "." + f;
  index_name += std::string(".") + IndexKindName(kind);
  if (rel->FindIndex(index_name) != nullptr) return nullptr;
  index->set_name(index_name);
  index->set_key_fields(field_ids);
  TupleIndex* raw = rel->AttachIndex(std::move(index));
  if (record_ddl) {
    ddl_indexes_.push_back(
        DdlIndex{rel->name(), fields, kind, config, index_name});
  }
  return raw;
}

TupleIndex* Database::CreateIndex(const std::string& table,
                                  const std::string& field, IndexKind kind,
                                  IndexConfig config) {
  Relation* rel = catalog_.Get(table);
  if (rel == nullptr) return nullptr;
  TupleIndex* index = AttachNewIndex(rel, {field}, kind, config,
                                     /*record_ddl=*/true);
  if (index != nullptr) PersistDdl();
  return index;
}

TupleIndex* Database::CreateCompositeIndex(
    const std::string& table, const std::vector<std::string>& fields,
    IndexKind kind, IndexConfig config) {
  Relation* rel = catalog_.Get(table);
  if (rel == nullptr || fields.empty()) return nullptr;
  if (!IndexKindOrdered(kind) && fields.size() > 1) {
    // Composite hash keys are supported by CompositeKeyOps::Hash, but probe
    // values are single-field; restrict to ordered kinds for sanity.
    return nullptr;
  }
  TupleIndex* index = AttachNewIndex(rel, fields, kind, config,
                                     /*record_ddl=*/true);
  if (index != nullptr) PersistDdl();
  return index;
}

Status Database::DeclareForeignKey(const std::string& table,
                                   const std::string& field,
                                   const std::string& target,
                                   const std::string& target_field) {
  Relation* rel = catalog_.Get(table);
  Relation* target_rel = catalog_.Get(target);
  if (rel == nullptr || target_rel == nullptr) {
    return Status::NotFound("unknown relation");
  }
  auto f = rel->schema().FieldIndex(field);
  auto tf = target_rel->schema().FieldIndex(target_field);
  if (!f.has_value() || !tf.has_value()) {
    return Status::NotFound("unknown field");
  }
  Status s = rel->DeclareForeignKey(*f, target_rel, *tf);
  if (s.ok()) {
    ddl_fks_.push_back(DdlForeignKey{table, field, target, target_field});
    PersistDdl();
  }
  return s;
}

Status Database::DropTable(const std::string& name) {
  Status s = catalog_.Drop(name);
  if (s.ok()) {
    reuse_cache_->InvalidateRelation(name);
    std::erase_if(ddl_tables_,
                  [&](const DdlTable& t) { return t.name == name; });
    std::erase_if(ddl_indexes_,
                  [&](const DdlIndex& i) { return i.table == name; });
    std::erase_if(ddl_fks_,
                  [&](const DdlForeignKey& fk) { return fk.table == name; });
    PersistDdl();
  }
  return s;
}

// The auto-commit fast paths are single-op mini-transactions: the mutation
// is appended to the stable log buffer before it touches the database
// (Commit's WAL discipline), the reuse cache is invalidated under the
// transaction's X locks, and — under sync durability — the caller does not
// get the result back until the commit record is on the log device.  An
// earlier revision mutated the relation directly with no logging, which
// silently dropped every acked fast-path write on crash recovery.

TupleRef Database::Insert(const std::string& table,
                          std::vector<Value> values) {
  std::unique_ptr<Transaction> txn = Begin();
  if (!txn->Insert(table, std::move(values)).ok()) {
    txn->Abort();
    return nullptr;
  }
  if (!txn->Commit().ok()) return nullptr;
  WaitDurable(txn->commit_lsn());
  return txn->inserted().empty() ? nullptr : txn->inserted().front();
}

Status Database::Delete(const std::string& table, TupleRef t) {
  std::unique_ptr<Transaction> txn = Begin();
  Status s = txn->Delete(table, t);
  if (!s.ok()) {
    txn->Abort();
    return s;
  }
  s = txn->Commit();
  if (s.ok()) WaitDurable(txn->commit_lsn());
  return s;
}

Status Database::Update(const std::string& table, TupleRef t,
                        const std::string& field, Value v) {
  Relation* rel = catalog_.Get(table);
  if (rel == nullptr) return Status::NotFound("no relation " + table);
  auto f = rel->schema().FieldIndex(field);
  if (!f.has_value()) return Status::NotFound("no field " + field);
  std::unique_ptr<Transaction> txn = Begin();
  Status s = txn->Update(table, t, *f, std::move(v));
  if (!s.ok()) {
    txn->Abort();
    return s;
  }
  s = txn->Commit();
  if (s.ok()) WaitDurable(txn->commit_lsn());
  return s;
}

QueryBuilder Database::Query(const std::string& table) {
  return QueryBuilder(this, table);
}

namespace {

const char* TypeToken(Type t) { return TypeName(t); }

bool TokenToType(const std::string& token, Type* out) {
  for (Type t : {Type::kInt32, Type::kInt64, Type::kDouble, Type::kString,
                 Type::kPointer}) {
    if (token == TypeName(t)) {
      *out = t;
      return true;
    }
  }
  return false;
}

int KindToken(IndexKind kind) { return static_cast<int>(kind); }

}  // namespace

std::string Database::SchemaText() const {
  std::ostringstream os;
  os << "mmdb-snapshot 1\n";
  for (const DdlTable& t : ddl_tables_) {
    os << "table " << t.name << " " << t.fields.size() << " "
       << t.options.partition.slot_capacity << " "
       << t.options.partition.heap_bytes << "\n";
    for (const Field& f : t.fields) {
      os << "field " << f.name << " " << TypeToken(f.type) << "\n";
    }
  }
  for (const DdlIndex& i : ddl_indexes_) {
    os << "index " << i.table << " " << KindToken(i.kind) << " "
       << i.config.node_size << " " << i.config.min_slack << " "
       << i.config.expected << " " << (i.config.unique ? 1 : 0) << " "
       << i.fields.size();
    for (const std::string& f : i.fields) os << " " << f;
    os << "\n";
  }
  for (const DdlForeignKey& fk : ddl_fks_) {
    os << "fk " << fk.table << " " << fk.field << " " << fk.target << " "
       << fk.target_field << "\n";
  }
  os << "end\n";
  return os.str();
}

Status Database::SaveSnapshot(const std::string& path) {
  Checkpoint();
  std::ofstream os(path, std::ios::trunc);
  if (!os) return Status::Internal("cannot open " + path);
  os << SchemaText();
  if (!os) return Status::Internal("write failed: " + path);
  os.close();
  return disk_image_.SaveToFile(path + ".img");
}

Status Database::ReplaySchemaText(std::istream& is) {
  std::string magic;
  int version = 0;
  is >> magic >> version;
  if (magic != "mmdb-snapshot" || version != 1) {
    return Status::InvalidArgument("not an mmdb schema journal");
  }

  std::string keyword;
  std::string pending_table;
  std::vector<Field> pending_fields;
  size_t fields_expected = 0;
  Relation::Options pending_options;
  auto flush_table = [&]() -> Status {
    if (pending_table.empty()) return Status::Ok();
    if (pending_fields.size() != fields_expected) {
      return Status::Internal("field count mismatch for " + pending_table);
    }
    if (catalog_.CreateRelation(pending_table, Schema(pending_fields),
                                pending_options) == nullptr) {
      return Status::Internal("duplicate table " + pending_table);
    }
    ddl_tables_.push_back(
        DdlTable{pending_table, pending_fields, pending_options});
    pending_table.clear();
    pending_fields.clear();
    return Status::Ok();
  };

  while (is >> keyword) {
    if (keyword == "table") {
      Status s = flush_table();
      if (!s.ok()) return s;
      uint32_t slot_capacity;
      size_t heap_bytes;
      is >> pending_table >> fields_expected >> slot_capacity >> heap_bytes;
      pending_options.partition.slot_capacity = slot_capacity;
      pending_options.partition.heap_bytes = heap_bytes;
    } else if (keyword == "field") {
      std::string name, type_token;
      is >> name >> type_token;
      Type type;
      if (!TokenToType(type_token, &type)) {
        return Status::Internal("bad field type " + type_token);
      }
      pending_fields.push_back(Field{name, type});
    } else if (keyword == "index") {
      Status s = flush_table();
      if (!s.ok()) return s;
      std::string table;
      int kind_token, node_size, min_slack, unique;
      size_t expected, nfields;
      is >> table >> kind_token >> node_size >> min_slack >> expected >>
          unique >> nfields;
      std::vector<std::string> fields(nfields);
      for (auto& f : fields) is >> f;
      Relation* rel = catalog_.Get(table);
      IndexConfig config;
      config.node_size = node_size;
      config.min_slack = min_slack;
      config.expected = expected;
      config.unique = unique != 0;
      if (rel == nullptr ||
          AttachNewIndex(rel, fields, static_cast<IndexKind>(kind_token),
                         config, /*record_ddl=*/true) == nullptr) {
        return Status::Internal("index replay failed on " + table);
      }
    } else if (keyword == "fk") {
      Status s = flush_table();
      if (!s.ok()) return s;
      std::string table, field, target, target_field;
      is >> table >> field >> target >> target_field;
      s = DeclareForeignKey(table, field, target, target_field);
      if (!s.ok()) return s;
    } else if (keyword == "end") {
      Status s = flush_table();
      if (!s.ok()) return s;
      break;
    } else {
      return Status::Internal("unknown snapshot keyword " + keyword);
    }
  }
  return Status::Ok();
}

Status Database::LoadSnapshot(const std::string& path) {
  if (catalog_.size() != 0) {
    return Status::FailedPrecondition("LoadSnapshot needs an empty database");
  }
  std::ifstream is(path);
  if (!is) return Status::NotFound("cannot open " + path);
  Status s = ReplaySchemaText(is);
  if (!s.ok()) return s;

  s = disk_image_.LoadFromFile(path + ".img");
  if (!s.ok()) return s;
  RecoveryManager recovery(&disk_image_, log_device_.get());
  for (const std::string& name : catalog_.List()) {
    s = recovery.RecoverRelation(catalog_.Get(name));
    if (!s.ok()) return s;
  }
  return recovery.ResolvePointers(catalog_);
}

void Database::Checkpoint() {
  if (durability_ != nullptr) {
    durability_->Checkpoint();
    return;
  }
  for (const std::string& name : catalog_.List()) {
    disk_image_.CheckpointRelation(*catalog_.Get(name));
  }
}

size_t Database::RunLogDevice() {
  if (durability_ != nullptr) {
    // Durable mode: the durability manager is the buffer's single drainer
    // (WAL first, then accumulation); the image itself advances only at
    // checkpoints.
    size_t pumped = 0;
    durability_->Pump(/*sync=*/false, &pumped);
    return pumped;
  }
  return log_device_->RunCycle();
}

Status Database::EnableDurability(DurabilityOptions options) {
  if (durability_ != nullptr) {
    return Status::FailedPrecondition("durability already enabled");
  }
  if (options.mode == DurabilityMode::kOff) {
    return Status::InvalidArgument("use DisableDurability for mode off");
  }
  // Single-drainer rule: the log device's own worker must not race the
  // durability manager for committed records.
  log_device_->StopBackground();
  auto manager = std::make_unique<DurabilityManager>(this, std::move(options));
  Status s = manager->Start();
  if (!s.ok()) return s;
  durability_ = std::move(manager);
  return Status::Ok();
}

Status Database::DisableDurability() {
  if (durability_ == nullptr) return Status::Ok();
  durability_->Stop();
  durability_.reset();
  return Status::Ok();
}

Status Database::WaitDurable(uint64_t lsn) {
  if (durability_ == nullptr) return Status::Ok();
  return durability_->WaitDurable(lsn);
}

Status Database::CheckpointNow() {
  if (durability_ != nullptr) return durability_->Checkpoint();
  Checkpoint();
  log_device_->RunCycle();
  return Status::Ok();
}

Status Database::Recover(const std::string& dir, Env* env,
                         RecoveryManager::Progress* progress,
                         uint64_t upto_lsn) {
  if (catalog_.size() != 0) {
    return Status::FailedPrecondition("Recover needs an empty database");
  }
  if (env == nullptr) env = Env::Posix();
  const auto t0 = std::chrono::steady_clock::now();

  // 1. Schema journal.
  std::string schema;
  Status s = env->ReadFile(dir + "/" + log_format::SchemaFileName(), &schema);
  if (!s.ok()) return s;
  std::istringstream schema_stream(schema);
  s = ReplaySchemaText(schema_stream);
  if (!s.ok()) return s;

  // 2. Newest valid checkpoint (a corrupt or half-written one falls back
  // to the next older, whose WAL segments are still on disk).
  std::vector<std::string> names;
  s = env->ListDir(dir, &names);
  if (!s.ok()) return s;
  std::vector<uint64_t> ckpt_lsns;
  for (const std::string& name : names) {
    uint64_t lsn;
    if (log_format::ParseCheckpointFileName(name, &lsn)) {
      ckpt_lsns.push_back(lsn);
    }
  }
  std::sort(ckpt_lsns.rbegin(), ckpt_lsns.rend());
  uint64_t ckpt_lsn = 0;
  disk_image_.Clear();
  for (uint64_t candidate : ckpt_lsns) {
    // A point-in-time target needs a base at or before it; newer
    // checkpoints already contain effects past the target.
    if (candidate > upto_lsn) continue;
    std::string data;
    if (!env->ReadFile(dir + "/" + log_format::CheckpointFileName(candidate),
                       &data)
             .ok()) {
      continue;
    }
    uint64_t stored_lsn;
    std::string_view image_bytes;
    if (!log_format::DecodeCheckpoint(data, &stored_lsn, &image_bytes).ok() ||
        stored_lsn != candidate) {
      continue;
    }
    if (disk_image_.DeserializeFrom(image_bytes).ok()) {
      ckpt_lsn = candidate;
      break;
    }
    disk_image_.Clear();
  }

  // 3. WAL tail: committed records past the checkpoint (and, for
  // point-in-time recovery, at or below the target), stopping cleanly only
  // at a torn final-segment tail — chain damage is kCorruption.
  WalReplayOptions replay_options;
  replay_options.after_lsn = ckpt_lsn;
  replay_options.upto_lsn = upto_lsn;
  WalReplayResult wal;
  s = ReplayWalDir(env, dir, replay_options, &wal);
  if (!s.ok()) return s;
  const size_t replayed = wal.records.size();
  const uint64_t max_lsn = std::max(wal.max_lsn, ckpt_lsn);
  log_device_->Accumulate(std::move(wal.records));

  // 4. Rebuild every relation: checkpoint image merged with the tail.
  RecoveryManager recovery(&disk_image_, log_device_.get());
  for (const std::string& name : catalog_.List()) {
    s = recovery.RecoverRelation(catalog_.Get(name));
    if (!s.ok()) return s;
  }
  s = recovery.ResolvePointers(catalog_);
  if (!s.ok()) return s;

  // 5. Fresh LSNs must clear everything still on disk, even records of
  // uncommitted transactions (an old segment could otherwise make a reused
  // LSN look like a regression).
  log_buffer_.ResetNextLsn(max_lsn + 1);

  const double micros = std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
  metrics_.GetGauge("mmdb_recovery_records_replayed")
      ->Set(static_cast<int64_t>(replayed));
  metrics_.GetGauge("mmdb_recovery_records_dropped")
      ->Set(static_cast<int64_t>(wal.records_dropped));
  metrics_.GetGauge("mmdb_recovery_micros")->Set(static_cast<int64_t>(micros));
  if (progress != nullptr) {
    *progress = recovery.progress();
    progress->log_records_dropped = wal.records_dropped;
  }
  return Status::Ok();
}

Status Database::SimulateCrashAndRecover(
    const std::vector<std::string>& working_set_tables,
    RecoveryManager::Progress* progress) {
  // Rebuilt relations get fresh partitions: every cached tuple pointer and
  // footprint is stale.
  reuse_cache_->Flush();

  // CRASH: every in-memory relation is gone.  (Drop in reverse dependency
  // order: referencing relations before their targets.)
  std::vector<std::string> names = catalog_.List();
  while (!names.empty()) {
    bool dropped_any = false;
    for (auto it = names.begin(); it != names.end();) {
      if (catalog_.Drop(*it).ok()) {
        it = names.erase(it);
        dropped_any = true;
      } else {
        ++it;
      }
    }
    if (!dropped_any) {
      return Status::Internal("cyclic foreign keys; cannot simulate crash");
    }
  }

  // Replay DDL (schema durability stand-in; the paper's log covers data).
  for (const DdlTable& t : ddl_tables_) {
    if (catalog_.CreateRelation(t.name, Schema(t.fields), t.options) ==
        nullptr) {
      return Status::Internal("DDL replay failed for " + t.name);
    }
  }
  for (const DdlIndex& i : ddl_indexes_) {
    Relation* rel = catalog_.Get(i.table);
    if (rel == nullptr ||
        AttachNewIndex(rel, i.fields, i.kind, i.config,
                       /*record_ddl=*/false) == nullptr) {
      return Status::Internal("index replay failed for " + i.name);
    }
  }
  for (const DdlForeignKey& fk : ddl_fks_) {
    Relation* rel = catalog_.Get(fk.table);
    Relation* target = catalog_.Get(fk.target);
    if (rel == nullptr || target == nullptr) {
      return Status::Internal("foreign key replay failed");
    }
    rel->DeclareForeignKey(*rel->schema().FieldIndex(fk.field), target,
                           *target->schema().FieldIndex(fk.target_field));
  }

  // Recover data: working-set tables first (their partitions are the
  // "working sets of the current transactions"), then the rest.
  RecoveryManager recovery(&disk_image_, log_device_.get());
  std::vector<std::string> ordered = working_set_tables;
  for (const std::string& name : catalog_.List()) {
    if (std::find(ordered.begin(), ordered.end(), name) == ordered.end()) {
      ordered.push_back(name);
    }
  }
  for (const std::string& name : ordered) {
    Relation* rel = catalog_.Get(name);
    if (rel == nullptr) continue;
    Status s = recovery.RecoverRelation(rel);
    if (!s.ok()) return s;
  }
  Status s = recovery.ResolvePointers(catalog_);
  if (!s.ok()) return s;
  if (progress != nullptr) *progress = recovery.progress();
  return Status::Ok();
}

}  // namespace mmdb
