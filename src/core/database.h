// Database: the top-level MM-DBMS facade — catalog + indices + transactions
// + recovery components (Figure 2) behind one object.  This is the public
// API a downstream application uses; the lower layers remain available for
// surgical use (benchmarks drive them directly).

#ifndef MMDB_CORE_DATABASE_H_
#define MMDB_CORE_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "src/cache/reuse_cache.h"
#include "src/core/durability.h"
#include "src/core/planner.h"
#include "src/exec/project.h"
#include "src/index/index.h"
#include "src/storage/catalog.h"
#include "src/txn/disk_image.h"
#include "src/txn/lock_manager.h"
#include "src/txn/log.h"
#include "src/txn/log_device.h"
#include "src/txn/recovery.h"
#include "src/txn/transaction.h"
#include "src/util/metrics.h"

namespace mmdb {

class QueryBuilder;

class Database {
 public:
  Database();
  ~Database();

  // ---- DDL ------------------------------------------------------------------

  /// Creates a table.  Every relation must be reachable through an index
  /// (Section 2.1), so a T Tree primary index on the first field is created
  /// automatically; add further indices with CreateIndex.
  Relation* CreateTable(const std::string& name, std::vector<Field> fields,
                        Relation::Options options = {});

  /// Creates an index on one field.  Returns nullptr if the table or field
  /// does not exist or the name collides.
  TupleIndex* CreateIndex(const std::string& table, const std::string& field,
                          IndexKind kind, IndexConfig config = {});

  /// Multi-attribute ordered index (Section 2.2: tuple pointers make these
  /// need "less in the way of special mechanisms").
  TupleIndex* CreateCompositeIndex(const std::string& table,
                                   const std::vector<std::string>& fields,
                                   IndexKind kind, IndexConfig config = {});

  /// Declares `field` (a kPointer field) as a foreign key to
  /// target(target_field): inserts then store a direct tuple pointer.
  Status DeclareForeignKey(const std::string& table, const std::string& field,
                           const std::string& target,
                           const std::string& target_field);

  Status DropTable(const std::string& name);

  // ---- DML (auto-commit fast path) -------------------------------------------

  /// Auto-commit insert: runs as a single-op mini-transaction, so the
  /// mutation is logged before it is acknowledged (and, under sync
  /// durability, forced to the log device first).  Returns the inserted
  /// tuple, or nullptr on failure (unknown table, unique violation, bad FK,
  /// lock timeout).
  TupleRef Insert(const std::string& table, std::vector<Value> values);
  Status Delete(const std::string& table, TupleRef t);
  Status Update(const std::string& table, TupleRef t,
                const std::string& field, Value v);

  // ---- Query ------------------------------------------------------------------

  /// Fluent query entry point; see QueryBuilder.
  QueryBuilder Query(const std::string& table);

  Relation* GetTable(const std::string& name) const { return catalog_.Get(name); }

  // ---- Transactions (Section 2.4) --------------------------------------------

  std::unique_ptr<Transaction> Begin() { return txn_manager_->Begin(); }

  // ---- Durability (Figure 2) --------------------------------------------------

  /// Checkpoints every relation into the disk image (and, when durability
  /// is enabled, runs the full durable checkpoint protocol).
  void Checkpoint();

  /// One log-device cycle: drain committed records, propagate to disk copy.
  /// When durability is enabled this routes through the durability manager
  /// (the single drainer: records must hit the WAL before the device).
  size_t RunLogDevice();

  /// Simulates a crash: discards all in-memory relations, then rebuilds
  /// them (schemas and indices replayed from recorded DDL, data recovered
  /// from the disk copy merged with unpropagated log records — working-set
  /// partitions of `working_set_tables` first).  Returns the recovery
  /// progress counters.
  Status SimulateCrashAndRecover(
      const std::vector<std::string>& working_set_tables = {},
      RecoveryManager::Progress* progress = nullptr);

  /// Cross-process durability: checkpoints every relation, then writes the
  /// schema journal to `path` and the disk image to `path + ".img"`.
  Status SaveSnapshot(const std::string& path);

  /// Restores a snapshot into this (empty) database: replays the schema
  /// journal, loads the disk image, and recovers every relation.
  Status LoadSnapshot(const std::string& path);

  // ---- Crash-safe durability (file-backed WAL + checkpoints) -----------------

  /// Turns on file-backed durability: writes the schema journal and an
  /// initial checkpoint of the current state to `options.dir`, opens the
  /// WAL, and starts the background flusher/checkpointer.  From the moment
  /// this returns OK, every acknowledged commit survives a crash (sync
  /// mode) or survives up to the flush interval (async mode).
  Status EnableDurability(DurabilityOptions options);

  /// Stops the durability machinery after a final drain + fsync.
  Status DisableDurability();

  /// Rebuilds this (empty) database from a durability directory: schema
  /// journal, newest valid checkpoint, then the WAL tail — stopping
  /// cleanly at a torn record in the final segment, failing with
  /// kCorruption on any damage earlier in the segment chain.  Call
  /// EnableDurability afterwards to resume durable operation on the same
  /// directory.  `upto_lsn` bounds the replay for point-in-time recovery:
  /// the rebuilt state is exactly what a crash at that LSN would have left
  /// (transactions still open there are dropped).  It requires a
  /// checkpoint with lsn <= upto_lsn to still exist — see
  /// DurabilityOptions::wal_retain_segments for how long that window is.
  Status Recover(const std::string& dir, Env* env = nullptr,
                 RecoveryManager::Progress* progress = nullptr,
                 uint64_t upto_lsn = UINT64_MAX);

  /// Blocks until the record with this LSN is crash-durable (sync mode);
  /// no-op otherwise.  The query service calls this with a transaction's
  /// commit_lsn() before acknowledging DML.
  Status WaitDurable(uint64_t lsn);

  /// Durable checkpoint (or the legacy in-memory checkpoint when
  /// durability is off).
  Status CheckpointNow();

  DurabilityMode durability_mode() const {
    return durability_ == nullptr ? DurabilityMode::kOff
                                  : durability_->mode();
  }
  DurabilityManager* durability() { return durability_.get(); }

  /// The schema journal as text (what SaveSnapshot and the durable
  /// checkpointer both persist).
  std::string SchemaText() const;

  Catalog& catalog() { return catalog_; }
  StableLogBuffer& log_buffer() { return log_buffer_; }
  LogDevice& log_device() { return *log_device_; }
  DiskImage& disk_image() { return disk_image_; }
  LockManager& lock_manager() { return lock_manager_; }

  /// Observability: the database-wide metric registry.  The lock manager
  /// records lock-wait histograms here; the query service adds its
  /// counters and latency series; `RenderPrometheus()` is the text
  /// endpoint (also exposed as the shell's METRICS command).
  MetricsRegistry& metrics() { return metrics_; }

  /// Read-replica mode: while set, the query service and shell refuse
  /// non-SELECT operations with StatusCode::kReadOnly (the replication
  /// apply loop writes through the physical layer underneath).  PROMOTE
  /// clears it.
  void SetReadOnly(bool read_only) {
    read_only_.store(read_only, std::memory_order_release);
  }
  bool read_only() const {
    return read_only_.load(std::memory_order_acquire);
  }

  /// The plan-keyed result/intermediate reuse cache (DESIGN.md §4d).
  /// Always constructed; enabled by default unless the MMDB_CACHE=OFF
  /// environment variable is set.  MMDB_CACHE_BYTES overrides the default
  /// 64 MiB budget.  Committing transactions invalidate it through the
  /// transaction manager; the query layers look up and fill; the shell's
  /// CACHE command toggles it at runtime.
  cache::ReuseCache& reuse_cache() { return *reuse_cache_; }

 private:
  struct DdlTable {
    std::string name;
    std::vector<Field> fields;
    Relation::Options options;
  };
  struct DdlIndex {
    std::string table;
    std::vector<std::string> fields;
    IndexKind kind;
    IndexConfig config;
    std::string name;
  };
  struct DdlForeignKey {
    std::string table, field, target, target_field;
  };

  TupleIndex* AttachNewIndex(Relation* rel,
                             const std::vector<std::string>& fields,
                             IndexKind kind, IndexConfig config,
                             bool record_ddl);

  /// Replays a schema journal (the SchemaText format) into this empty
  /// database, recording the DDL for future journals.
  Status ReplaySchemaText(std::istream& is);

  /// Best-effort checkpoint after DDL while durability is enabled: the
  /// schema journal on disk only changes at checkpoints, so a relation
  /// created after the last one would otherwise be invisible to recovery
  /// (its WAL records reference a name the journal does not declare).
  void PersistDdl();

  // Declared before the lock manager, which holds pointers into it.
  MetricsRegistry metrics_;
  Catalog catalog_;
  StableLogBuffer log_buffer_;
  DiskImage disk_image_;
  LockManager lock_manager_;
  // Before txn_manager_, which invalidates it at commit.
  std::unique_ptr<cache::ReuseCache> reuse_cache_;
  std::unique_ptr<LogDevice> log_device_;
  std::unique_ptr<TransactionManager> txn_manager_;
  // Declared after everything its threads touch, so it is destroyed (and
  // its flusher/checkpointer joined) first; ~Database also stops it
  // explicitly before any other teardown.
  std::unique_ptr<DurabilityManager> durability_;

  std::atomic<bool> read_only_{false};

  // DDL journal for crash simulation (schema durability stand-in).
  std::vector<DdlTable> ddl_tables_;
  std::vector<DdlIndex> ddl_indexes_;
  std::vector<DdlForeignKey> ddl_fks_;
};

}  // namespace mmdb

#endif  // MMDB_CORE_DATABASE_H_
