// Database: the top-level MM-DBMS facade — catalog + indices + transactions
// + recovery components (Figure 2) behind one object.  This is the public
// API a downstream application uses; the lower layers remain available for
// surgical use (benchmarks drive them directly).

#ifndef MMDB_CORE_DATABASE_H_
#define MMDB_CORE_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/planner.h"
#include "src/exec/project.h"
#include "src/index/index.h"
#include "src/storage/catalog.h"
#include "src/txn/disk_image.h"
#include "src/txn/lock_manager.h"
#include "src/txn/log.h"
#include "src/txn/log_device.h"
#include "src/txn/recovery.h"
#include "src/txn/transaction.h"
#include "src/util/metrics.h"

namespace mmdb {

class QueryBuilder;

class Database {
 public:
  Database();
  ~Database();

  // ---- DDL ------------------------------------------------------------------

  /// Creates a table.  Every relation must be reachable through an index
  /// (Section 2.1), so a T Tree primary index on the first field is created
  /// automatically; add further indices with CreateIndex.
  Relation* CreateTable(const std::string& name, std::vector<Field> fields,
                        Relation::Options options = {});

  /// Creates an index on one field.  Returns nullptr if the table or field
  /// does not exist or the name collides.
  TupleIndex* CreateIndex(const std::string& table, const std::string& field,
                          IndexKind kind, IndexConfig config = {});

  /// Multi-attribute ordered index (Section 2.2: tuple pointers make these
  /// need "less in the way of special mechanisms").
  TupleIndex* CreateCompositeIndex(const std::string& table,
                                   const std::vector<std::string>& fields,
                                   IndexKind kind, IndexConfig config = {});

  /// Declares `field` (a kPointer field) as a foreign key to
  /// target(target_field): inserts then store a direct tuple pointer.
  Status DeclareForeignKey(const std::string& table, const std::string& field,
                           const std::string& target,
                           const std::string& target_field);

  Status DropTable(const std::string& name);

  // ---- DML (auto-commit fast path) -------------------------------------------

  /// Non-transactional insert (no logging/locking) for loads and examples.
  TupleRef Insert(const std::string& table, std::vector<Value> values);
  Status Delete(const std::string& table, TupleRef t);
  Status Update(const std::string& table, TupleRef t,
                const std::string& field, Value v);

  // ---- Query ------------------------------------------------------------------

  /// Fluent query entry point; see QueryBuilder.
  QueryBuilder Query(const std::string& table);

  Relation* GetTable(const std::string& name) const { return catalog_.Get(name); }

  // ---- Transactions (Section 2.4) --------------------------------------------

  std::unique_ptr<Transaction> Begin() { return txn_manager_->Begin(); }

  // ---- Durability (Figure 2) --------------------------------------------------

  /// Checkpoints every relation into the disk image.
  void Checkpoint();

  /// One log-device cycle: drain committed records, propagate to disk copy.
  size_t RunLogDevice() { return log_device_->RunCycle(); }

  /// Simulates a crash: discards all in-memory relations, then rebuilds
  /// them (schemas and indices replayed from recorded DDL, data recovered
  /// from the disk copy merged with unpropagated log records — working-set
  /// partitions of `working_set_tables` first).  Returns the recovery
  /// progress counters.
  Status SimulateCrashAndRecover(
      const std::vector<std::string>& working_set_tables = {},
      RecoveryManager::Progress* progress = nullptr);

  /// Cross-process durability: checkpoints every relation, then writes the
  /// schema journal to `path` and the disk image to `path + ".img"`.
  Status SaveSnapshot(const std::string& path);

  /// Restores a snapshot into this (empty) database: replays the schema
  /// journal, loads the disk image, and recovers every relation.
  Status LoadSnapshot(const std::string& path);

  Catalog& catalog() { return catalog_; }
  StableLogBuffer& log_buffer() { return log_buffer_; }
  LogDevice& log_device() { return *log_device_; }
  DiskImage& disk_image() { return disk_image_; }
  LockManager& lock_manager() { return lock_manager_; }

  /// Observability: the database-wide metric registry.  The lock manager
  /// records lock-wait histograms here; the query service adds its
  /// counters and latency series; `RenderPrometheus()` is the text
  /// endpoint (also exposed as the shell's METRICS command).
  MetricsRegistry& metrics() { return metrics_; }

 private:
  struct DdlTable {
    std::string name;
    std::vector<Field> fields;
    Relation::Options options;
  };
  struct DdlIndex {
    std::string table;
    std::vector<std::string> fields;
    IndexKind kind;
    IndexConfig config;
    std::string name;
  };
  struct DdlForeignKey {
    std::string table, field, target, target_field;
  };

  TupleIndex* AttachNewIndex(Relation* rel,
                             const std::vector<std::string>& fields,
                             IndexKind kind, IndexConfig config,
                             bool record_ddl);

  // Declared before the lock manager, which holds pointers into it.
  MetricsRegistry metrics_;
  Catalog catalog_;
  StableLogBuffer log_buffer_;
  DiskImage disk_image_;
  LockManager lock_manager_;
  std::unique_ptr<LogDevice> log_device_;
  std::unique_ptr<TransactionManager> txn_manager_;

  // DDL journal for crash simulation (schema durability stand-in).
  std::vector<DdlTable> ddl_tables_;
  std::vector<DdlIndex> ddl_indexes_;
  std::vector<DdlForeignKey> ddl_fks_;
};

}  // namespace mmdb

#endif  // MMDB_CORE_DATABASE_H_
