#include "src/core/durability.h"

#include <algorithm>
#include <cstdlib>
#include <utility>
#include <vector>

#include "src/core/database.h"
#include "src/txn/log_format.h"

namespace mmdb {

const char* DurabilityModeName(DurabilityMode mode) {
  switch (mode) {
    case DurabilityMode::kOff:
      return "off";
    case DurabilityMode::kAsync:
      return "async";
    case DurabilityMode::kSync:
      return "sync";
  }
  return "?";
}

void ApplyDurabilityEnvOverrides(DurabilityOptions* options) {
  if (const char* v = std::getenv("MMDB_WAL_SEGMENT_BYTES")) {
    options->wal_segment_bytes = std::strtoull(v, nullptr, 10);
  }
  if (const char* v = std::getenv("MMDB_WAL_RETAIN_SEGMENTS")) {
    options->wal_retain_segments =
        static_cast<size_t>(std::strtoull(v, nullptr, 10));
  }
}

DurabilityManager::DurabilityManager(Database* db, DurabilityOptions options)
    : db_(db),
      options_(std::move(options)),
      env_(options_.env != nullptr ? options_.env : Env::Posix()),
      wal_(env_, options_.dir) {
  MetricsRegistry& m = db_->metrics();
  bytes_appended_ = m.GetCounter("mmdb_log_bytes_appended_total");
  records_appended_ = m.GetCounter("mmdb_log_records_appended_total");
  fsyncs_ = m.GetCounter("mmdb_fsync_total");
  fsync_micros_ = m.GetHistogram("mmdb_fsync_micros");
  checkpoints_ = m.GetCounter("mmdb_checkpoint_total");
  checkpoint_failures_ = m.GetCounter("mmdb_checkpoint_failures_total");
  checkpoint_micros_ = m.GetHistogram("mmdb_checkpoint_micros");
  checkpoint_bytes_ = m.GetGauge("mmdb_checkpoint_bytes");
  segments_sealed_ = m.GetCounter("mmdb_wal_segments_sealed_total");
  segments_deleted_ = m.GetCounter("mmdb_wal_segments_deleted_total");
  sealed_segments_ = m.GetGauge("mmdb_wal_sealed_segments");
}

DurabilityManager::~DurabilityManager() { Stop(); }

uint64_t DurabilityManager::durable_lsn() const {
  std::lock_guard<std::mutex> lock(wal_mu_);
  return durable_lsn_;
}

uint64_t DurabilityManager::appended_lsn() const {
  std::lock_guard<std::mutex> lock(wal_mu_);
  return appended_lsn_;
}

uint64_t DurabilityManager::checkpoint_lsn() const {
  std::lock_guard<std::mutex> lock(wal_mu_);
  return checkpoint_lsn_;
}

bool DurabilityManager::failed() const {
  std::lock_guard<std::mutex> lock(wal_mu_);
  return failed_;
}

WalShipState DurabilityManager::ShipState() const {
  std::lock_guard<std::mutex> lock(wal_mu_);
  WalShipState state;
  state.active_start = wal_.segment_start();
  state.active_synced_bytes = wal_.synced_bytes();
  state.durable_lsn = durable_lsn_;
  state.checkpoint_lsn = checkpoint_lsn_;
  state.sealed = manifest_.segments();
  state.failed = failed_;
  return state;
}

void DurabilityManager::SetWalRetainFloor(uint64_t floor) {
  std::lock_guard<std::mutex> lock(wal_mu_);
  wal_retain_floor_ = floor;
}

uint64_t DurabilityManager::wal_retain_floor() const {
  std::lock_guard<std::mutex> lock(wal_mu_);
  return wal_retain_floor_;
}

Status DurabilityManager::Start() {
  std::lock_guard<std::mutex> ckpt(checkpoint_mu_);
  if (started_) return Status::FailedPrecondition("durability already started");
  if (options_.mode == DurabilityMode::kOff) {
    return Status::InvalidArgument("durability mode is off");
  }
  if (options_.dir.empty()) {
    return Status::InvalidArgument("durability dir required");
  }
  Status s = env_->CreateDir(options_.dir);
  if (!s.ok()) return s;
  s = CheckpointLocked(/*initial=*/true);
  if (!s.ok()) return s;
  started_ = true;
  running_.store(true);
  flusher_ = std::thread([this] { FlusherLoop(); });
  if (options_.checkpoint_interval.count() > 0) {
    checkpointer_ = std::thread([this] { CheckpointerLoop(); });
  }
  return Status::Ok();
}

void DurabilityManager::Stop() {
  if (running_.exchange(false)) {
    {
      std::lock_guard<std::mutex> lock(stop_mu_);
      stop_cv_.notify_all();
    }
    if (flusher_.joinable()) flusher_.join();
    if (checkpointer_.joinable()) checkpointer_.join();
  }
  std::lock_guard<std::mutex> lock(wal_mu_);
  if (!started_) return;
  started_ = false;
  PumpLocked(/*sync=*/true, nullptr);  // best-effort final drain
  wal_.Close();
}

Status DurabilityManager::PumpLocked(bool sync, size_t* pumped) {
  if (failed_) return Status::Internal("wal failed; durability is down");
  size_t data_records = 0;
  for (;;) {
    std::vector<LogRecord> drained = db_->log_buffer().DrainCommitted(1024);
    if (drained.empty()) break;
    size_t bytes_before = wal_.bytes_appended();
    for (const LogRecord& r : drained) {
      Status s = wal_.Append(r);
      if (!s.ok()) {
        // Records already drained from the buffer but not appended are
        // lost to the WAL — which is exactly why nothing past this point
        // is ever acknowledged: failed_ stays set.
        failed_ = true;
        durable_cv_.notify_all();
        return s;
      }
      appended_lsn_ = std::max(appended_lsn_, r.lsn);
      if (!r.is_commit_marker()) ++data_records;
    }
    bytes_appended_->Add(wal_.bytes_appended() - bytes_before);
    records_appended_->Add(drained.size());
    db_->log_device().Accumulate(std::move(drained));
    if (options_.wal_segment_bytes > 0 &&
        wal_.segment_bytes() >= options_.wal_segment_bytes) {
      Status s = SealSegmentLocked();
      if (!s.ok()) return s;  // SealSegmentLocked latched failed_
    }
  }
  if (pumped != nullptr) *pumped = data_records;
  if (sync && durable_lsn_ < appended_lsn_) {
    const auto t0 = std::chrono::steady_clock::now();
    Status s = wal_.Sync();
    if (!s.ok()) {
      failed_ = true;
      durable_cv_.notify_all();
      return s;
    }
    fsyncs_->Add(1);
    fsync_micros_->Record(
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - t0)
            .count());
    durable_lsn_ = appended_lsn_;
    durable_cv_.notify_all();
  }
  return Status::Ok();
}

Status DurabilityManager::Pump(bool sync, size_t* pumped) {
  std::lock_guard<std::mutex> lock(wal_mu_);
  return PumpLocked(sync, pumped);
}

Status DurabilityManager::WaitDurable(uint64_t lsn) {
  if (lsn == 0) return Status::Ok();
  if (options_.mode != DurabilityMode::kSync) return Status::Ok();
  std::unique_lock<std::mutex> lock(wal_mu_);
  for (;;) {
    if (durable_lsn_ >= lsn) return Status::Ok();
    if (failed_) return Status::Internal("wal failed; write not durable");
    // Group commit: whoever holds the mutex drains and fsyncs for every
    // transaction that committed so far; followers blocked on the mutex
    // find their marker already durable.
    Status s = PumpLocked(/*sync=*/true, nullptr);
    if (!s.ok()) return s;
    if (durable_lsn_ >= lsn) return Status::Ok();
    // Our marker is committed but stuck behind an earlier-LSN record of a
    // transaction still mid-commit; wait for it to finish.
    durable_cv_.wait_for(lock, std::chrono::milliseconds(1));
  }
}

Status DurabilityManager::SealSegmentLocked() {
  Status s = wal_.Sync();
  if (!s.ok()) {
    failed_ = true;
    durable_cv_.notify_all();
    return s;
  }
  fsyncs_->Add(1);
  durable_lsn_ = appended_lsn_;
  durable_cv_.notify_all();
  if (appended_lsn_ <= wal_.segment_start()) return Status::Ok();  // empty
  // Seal order is load-bearing: the segment is fully fsync'd *before* its
  // manifest entry exists, so a manifest-listed segment can never hold a
  // torn frame — which is exactly what lets replay treat corruption in a
  // sealed segment as a hard error instead of crash residue.
  s = manifest_.Append(
      {wal_.segment_start(), appended_lsn_, wal_.segment_bytes()});
  if (s.ok()) s = manifest_.Save(env_, options_.dir);
  if (s.ok()) s = wal_.Rotate(appended_lsn_);
  if (!s.ok()) {
    failed_ = true;
    durable_cv_.notify_all();
    return s;
  }
  segments_sealed_->Add(1);
  sealed_segments_->Set(static_cast<int64_t>(manifest_.segments().size()));
  return Status::Ok();
}

Status DurabilityManager::WriteFileAtomic(const std::string& name,
                                          std::string_view body) {
  const std::string path = options_.dir + "/" + name;
  const std::string tmp = path + ".tmp";
  std::unique_ptr<WritableFile> file;
  Status s = env_->NewWritableFile(tmp, /*truncate=*/true, &file);
  if (!s.ok()) return s;
  s = file->Append(body);
  if (s.ok()) s = file->Sync();
  if (s.ok()) s = file->Close();
  if (!s.ok()) return s;
  return env_->RenameFile(tmp, path);
}

void DurabilityManager::DeleteObsoleteFiles(uint64_t keep_lsn, bool initial) {
  std::vector<std::string> names;
  if (!env_->ListDir(options_.dir, &names).ok()) return;
  if (initial) {
    // The initial checkpoint captures the whole database, so every older
    // checkpoint and segment (from any previous run) is dead and the
    // point-in-time-recovery window restarts here.
    for (const std::string& name : names) {
      uint64_t lsn;
      const bool stale_ckpt =
          log_format::ParseCheckpointFileName(name, &lsn) && lsn != keep_lsn;
      const bool stale_wal =
          log_format::ParseWalFileName(name, &lsn) && lsn != keep_lsn;
      const bool leftover_tmp =
          name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0;
      if (stale_ckpt || stale_wal || leftover_tmp) {
        env_->RemoveFile(options_.dir + "/" + name);  // best effort
      }
    }
    return;
  }

  std::lock_guard<std::mutex> lock(wal_mu_);
  // A sealed segment is prunable once it is below both the newest
  // checkpoint and every connected replica's acked LSN — and even then the
  // newest wal_retain_segments stay behind as the PITR window.  Because the
  // chain is contiguous, "everything before entry[prunable]" is exactly
  // "every wal file with start < entry[prunable].start".
  const uint64_t floor = std::min(keep_lsn, wal_retain_floor_);
  size_t prunable = 0;
  while (prunable < manifest_.segments().size() &&
         manifest_.segments()[prunable].end <= floor &&
         manifest_.segments().size() - prunable >
             options_.wal_retain_segments) {
    ++prunable;
  }
  const uint64_t oldest_keep_start =
      prunable < manifest_.segments().size()
          ? manifest_.segments()[prunable].start
          : wal_.segment_start();

  size_t deleted = 0;
  for (const std::string& name : names) {
    uint64_t lsn;
    bool drop = false;
    if (log_format::ParseWalFileName(name, &lsn)) {
      // Pruned chain members, plus strays from before the retained window
      // (e.g. a crash between file deletion and the manifest save below).
      drop = lsn < oldest_keep_start && lsn != wal_.segment_start();
      if (drop) ++deleted;
    } else if (log_format::ParseCheckpointFileName(name, &lsn)) {
      // A checkpoint older than the retained WAL window can no longer be a
      // PITR base; newer ones stay (they anchor mid-window targets), and
      // the newest always survives.
      drop = lsn < oldest_keep_start && lsn != keep_lsn;
    } else {
      drop = name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0;
    }
    if (drop) env_->RemoveFile(options_.dir + "/" + name);  // best effort
  }
  // Files first, manifest second: a stale manifest entry for a deleted
  // file only ever covers LSNs at or below the checkpoint, which normal
  // recovery skips without reading.
  if (prunable > 0) {
    manifest_.PruneBelow(manifest_.segments()[prunable - 1].end);
    manifest_.Save(env_, options_.dir);  // best effort
  }
  if (deleted > 0) segments_deleted_->Add(deleted);
  sealed_segments_->Set(static_cast<int64_t>(manifest_.segments().size()));
}

Status DurabilityManager::Checkpoint() {
  std::lock_guard<std::mutex> ckpt(checkpoint_mu_);
  if (!started_) return Status::FailedPrecondition("durability not started");
  return CheckpointLocked(/*initial=*/false);
}

Status DurabilityManager::CheckpointLocked(bool initial) {
  const auto t0 = std::chrono::steady_clock::now();

  // 1. Quiesce: share-lock every relation (name order, matching the
  // service's lock protocol).  While these are held no transaction can be
  // inside Commit(), so the stable buffer holds only whole transactions.
  std::unique_ptr<Transaction> txn = db_->Begin();
  txn->set_lock_timeout(options_.checkpoint_lock_timeout);
  for (const std::string& name : db_->catalog().List()) {
    Status s = txn->LockForRead(name);
    if (!s.ok()) {
      txn->Abort();
      checkpoint_failures_->Add(1);
      return Status::Aborted("checkpoint quiesce: " + s.message());
    }
  }

  uint64_t ckpt_lsn = 0;
  std::string image_bytes;
  Status result;
  {
    std::unique_lock<std::mutex> lock(wal_mu_);
    if (initial) {
      // No WAL yet.  Committed records from the pre-durable phase describe
      // updates already live in the relations; the snapshot below captures
      // their effects, so the records themselves are discarded.
      while (!db_->log_buffer().DrainCommitted(1024).empty()) {
      }
    } else {
      // 2. Every committed record reaches the old segment, fsync'd, before
      // the snapshot is cut — a crash mid-checkpoint replays them from it.
      result = PumpLocked(/*sync=*/true, nullptr);
    }
    if (result.ok()) {
      ckpt_lsn = db_->log_buffer().last_lsn();
      // 3. The accumulation (all LSNs <= ckpt_lsn) folds into the image,
      // then every relation is re-snapshotted — this also captures
      // non-transactional DML, which never passes through the log.
      db_->log_device().PropagateAll();
      for (const std::string& name : db_->catalog().List()) {
        db_->disk_image().CheckpointRelation(*db_->catalog().Get(name));
      }
      db_->disk_image().SerializeTo(&image_bytes);
      // 4. Seal the dying segment into the manifest and rotate, all inside
      // the quiesce: the first post-checkpoint commit must land in
      // wal-<ckpt_lsn>.log, not the segment about to die.  ckpt_lsn may
      // exceed the last record actually in the segment (aborted txns burn
      // LSNs without reaching the WAL); the manifest chains on assigned-LSN
      // ranges, so the next segment still starts exactly at this end.
      if (initial) {
        // Fresh durable epoch: the initial checkpoint captures everything,
        // so any previous run's chain is dead.
        manifest_.Clear();
        result = manifest_.Save(env_, options_.dir);
      } else if (ckpt_lsn > wal_.segment_start()) {
        result = manifest_.Append(
            {wal_.segment_start(), ckpt_lsn, wal_.segment_bytes()});
        if (result.ok()) result = manifest_.Save(env_, options_.dir);
        if (result.ok()) segments_sealed_->Add(1);
      }
      if (result.ok()) result = wal_.Rotate(ckpt_lsn);
      if (!result.ok()) failed_ = true;
      sealed_segments_->Set(static_cast<int64_t>(manifest_.segments().size()));
    }
  }

  // 5. Publish the snapshot while still holding the quiesce locks.  (For
  // an initial checkpoint there may be no older checkpoint to fall back
  // on, so no commit may be acknowledged against the new WAL before the
  // checkpoint file exists; steady-state checkpoints just keep the window
  // simple.)
  if (result.ok()) {
    result = WriteFileAtomic(log_format::SchemaFileName(), db_->SchemaText());
  }
  if (result.ok()) {
    result = WriteFileAtomic(
        log_format::CheckpointFileName(ckpt_lsn),
        log_format::EncodeCheckpoint(ckpt_lsn, image_bytes));
  }
  txn->Abort();  // read-only; releases the quiesce locks

  if (!result.ok()) {
    checkpoint_failures_->Add(1);
    return result;
  }

  {
    std::lock_guard<std::mutex> lock(wal_mu_);
    // Everything at or below ckpt_lsn is now durable via the checkpoint
    // file, even LSNs that never reached the WAL (the initial case).
    appended_lsn_ = std::max(appended_lsn_, ckpt_lsn);
    durable_lsn_ = std::max(durable_lsn_, ckpt_lsn);
    checkpoint_lsn_ = ckpt_lsn;
    durable_cv_.notify_all();
  }
  // 6. Older checkpoints and fully-covered WAL segments are dead only now
  // that the new checkpoint is durably in place.
  DeleteObsoleteFiles(ckpt_lsn, initial);

  checkpoints_->Add(1);
  checkpoint_bytes_->Set(static_cast<int64_t>(image_bytes.size()));
  checkpoint_micros_->Record(
      std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                t0)
          .count());
  return Status::Ok();
}

void DurabilityManager::FlusherLoop() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  while (running_.load()) {
    stop_cv_.wait_for(lock, options_.flush_interval,
                      [this] { return !running_.load(); });
    if (!running_.load()) break;
    lock.unlock();
    Pump(/*sync=*/true, nullptr);
    lock.lock();
  }
}

void DurabilityManager::CheckpointerLoop() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  while (running_.load()) {
    stop_cv_.wait_for(lock, options_.checkpoint_interval,
                      [this] { return !running_.load(); });
    if (!running_.load()) break;
    lock.unlock();
    Checkpoint();  // failures are counted in mmdb_checkpoint_failures_total
    lock.lock();
  }
}

}  // namespace mmdb
