// DurabilityManager: the file-backed end of the recovery chain.  The
// paper's Figure 2 assumes stable hardware (battery-backed log buffer,
// active log device); this component makes the same chain crash-safe on an
// ordinary filesystem through an Env:
//
//   StableLogBuffer --drain--> WAL segment (framed, CRC'd, fsync'd)
//                     \------> LogDevice accumulation --checkpoint--> files
//
// In durable mode the manager is the *single drainer* of the stable log
// buffer: every committed record is appended to the write-ahead log before
// it reaches the log device's change accumulation, and the accumulation is
// propagated into the DiskImage only inside Checkpoint() — so the image
// never changes while it is being serialized.
//
// Commit acknowledgement (sync mode) is group commit: a committing session
// calls WaitDurable(marker LSN); the first waiter becomes the flush leader,
// drains the buffer, appends, and fsyncs once for every transaction that
// committed in the meantime.
//
// Checkpoint protocol (crash-safe at every step):
//   1. quiesce: one transaction share-locks every relation (no writer can
//      be mid-commit, so the stable buffer holds only complete txns);
//   2. drain buffer -> WAL, fsync;
//   3. propagate the accumulation, snapshot every relation into the
//      DiskImage, serialize it;  L = last assigned LSN;
//   4. rotate the WAL to wal-<L>.log (still inside the quiesce — a commit
//      after release must land in the new segment);
//   5. write schema + checkpoint-<L>.ckpt via temp+rename, then release
//      the locks (an initial checkpoint has no older one to fall back on,
//      so no commit may be acknowledged before the file exists);
//   6. only then delete older checkpoints and WAL segments.
// A crash before step 5's rename leaves the previous checkpoint plus every
// WAL segment it needs; a crash after leaves the new one.  Either way
// recovery finds a consistent prefix containing every acknowledged commit.

#ifndef MMDB_CORE_DURABILITY_H_
#define MMDB_CORE_DURABILITY_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <string_view>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "src/txn/wal.h"
#include "src/util/env.h"
#include "src/util/metrics.h"
#include "src/util/status.h"

namespace mmdb {

class Database;

enum class DurabilityMode {
  kOff,    ///< no file I/O; the in-memory chain only (the seed behaviour)
  kAsync,  ///< WAL appended + fsync'd by the background flusher; commits
           ///< return immediately (bounded loss window = flush interval)
  kSync,   ///< commit acknowledgement waits for the marker's fsync
};

const char* DurabilityModeName(DurabilityMode mode);

struct DurabilityOptions {
  DurabilityMode mode = DurabilityMode::kSync;
  /// Directory holding schema.mmdb, checkpoint-*.ckpt, wal-*.log and
  /// wal.manifest.
  std::string dir;
  /// Filesystem to write through; nullptr = Env::Posix().
  Env* env = nullptr;
  /// Background flush cadence (drain + append + fsync).
  std::chrono::milliseconds flush_interval{5};
  /// Automatic checkpoint cadence; 0 disables (manual CheckpointNow only).
  std::chrono::milliseconds checkpoint_interval{0};
  /// Lock-wait budget for the checkpoint quiesce transaction.
  std::chrono::milliseconds checkpoint_lock_timeout{1000};
  /// Seal the active WAL segment (fsync, manifest entry, fresh file) once
  /// it reaches this size — log shipping streams sealed segments whole.
  /// 0 rolls only at checkpoints.  Env knob: MMDB_WAL_SEGMENT_BYTES.
  uint64_t wal_segment_bytes = 8ull << 20;
  /// Keep at least this many newest sealed segments across checkpoint GC
  /// (the point-in-time-recovery window).  Env: MMDB_WAL_RETAIN_SEGMENTS.
  size_t wal_retain_segments = 2;
};

/// Applies MMDB_WAL_SEGMENT_BYTES / MMDB_WAL_RETAIN_SEGMENTS from the
/// process environment (used by the shell and tools; tests set the fields
/// directly for determinism).
void ApplyDurabilityEnvOverrides(DurabilityOptions* options);

/// Snapshot of the WAL state a log shipper serves from: the sealed-segment
/// chain plus the durable prefix of the active segment.  Nothing beyond
/// `active_synced_bytes` is ever shipped — unsynced bytes could vanish in
/// a crash, and a replica must never apply state the primary could lose.
struct WalShipState {
  uint64_t active_start = 0;
  uint64_t active_synced_bytes = 0;
  uint64_t durable_lsn = 0;
  uint64_t checkpoint_lsn = 0;
  std::vector<WalSegmentInfo> sealed;
  bool failed = false;
};

class DurabilityManager {
 public:
  DurabilityManager(Database* db, DurabilityOptions options);
  ~DurabilityManager();

  /// Makes the database durable: writes the schema journal, takes the
  /// initial checkpoint of the current in-memory state, opens a fresh WAL,
  /// and starts the background flusher (and checkpointer, if configured).
  /// Nothing is acknowledged durable until this returns OK.
  Status Start();

  /// Stops the background threads after a final drain + fsync.  Idempotent.
  void Stop();

  /// Blocks until every record with LSN <= `lsn` is fsync'd (group commit).
  /// `lsn` 0 returns immediately.  Fails if the WAL writer has failed —
  /// the caller must NOT acknowledge the write in that case.
  Status WaitDurable(uint64_t lsn);

  /// One drain cycle: committed buffer -> WAL append -> accumulation;
  /// fsyncs if `sync`.  Returns the number of data records moved via
  /// `*pumped` (may be null).
  Status Pump(bool sync, size_t* pumped = nullptr);

  /// Runs the checkpoint protocol above.  Fails (leaving the previous
  /// checkpoint authoritative) if the quiesce cannot lock every relation
  /// within the configured timeout or a file write fails.
  Status Checkpoint();

  DurabilityMode mode() const { return options_.mode; }
  const DurabilityOptions& options() const { return options_; }
  uint64_t durable_lsn() const;
  /// Highest LSN appended to the WAL; appended - durable is the fsync lag a
  /// STATUS scrape reports as `wal_lag`.
  uint64_t appended_lsn() const;
  uint64_t checkpoint_lsn() const;
  /// True once a WAL append/fsync has failed; no further write is ever
  /// acknowledged (the torn tail must stay the end of the stream).
  bool failed() const;

  /// Consistent snapshot of what a log shipper may serve right now.
  WalShipState ShipState() const;

  /// Retention floor from replication: GC never deletes a sealed segment
  /// with end > floor, so a connected (possibly slow) replica can always
  /// resume from its acked LSN.  Default UINT64_MAX = no replicas = no
  /// extra retention beyond wal_retain_segments.
  void SetWalRetainFloor(uint64_t floor);
  uint64_t wal_retain_floor() const;

 private:
  Status CheckpointLocked(bool initial);
  Status PumpLocked(bool sync, size_t* pumped);
  /// fsyncs the active segment, records it in the manifest, and opens a
  /// fresh one named by the last appended LSN.  Caller holds wal_mu_.
  Status SealSegmentLocked();
  Status WriteFileAtomic(const std::string& name, std::string_view body);
  void DeleteObsoleteFiles(uint64_t keep_lsn, bool initial);
  void FlusherLoop();
  void CheckpointerLoop();

  Database* db_;
  DurabilityOptions options_;
  Env* env_;

  // Serializes checkpoints against each other (wal_mu_ covers the WAL).
  std::mutex checkpoint_mu_;

  mutable std::mutex wal_mu_;
  std::condition_variable durable_cv_;
  WalWriter wal_;
  WalManifest manifest_;       // sealed-segment chain, mirrored on disk
  uint64_t appended_lsn_ = 0;  // highest LSN appended to the WAL
  uint64_t durable_lsn_ = 0;   // highest LSN covered by an fsync
  uint64_t checkpoint_lsn_ = 0;
  uint64_t wal_retain_floor_ = UINT64_MAX;  // min replica acked LSN
  bool failed_ = false;
  bool started_ = false;

  std::atomic<bool> running_{false};
  std::thread flusher_;
  std::thread checkpointer_;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;

  Counter* bytes_appended_;
  Counter* records_appended_;
  Counter* fsyncs_;
  LatencyHistogram* fsync_micros_;
  Counter* checkpoints_;
  Counter* checkpoint_failures_;
  LatencyHistogram* checkpoint_micros_;
  Gauge* checkpoint_bytes_;
  Counter* segments_sealed_;
  Counter* segments_deleted_;
  Gauge* sealed_segments_;
};

}  // namespace mmdb

#endif  // MMDB_CORE_DURABILITY_H_
