#include "src/core/planner.h"

#include <algorithm>
#include <cmath>

#include "src/util/trace.h"

namespace mmdb {
namespace {

double Log2Of(double n) { return n < 2.0 ? 1.0 : std::log2(n); }

/// First existing ordered index of a relation keyed on `field`.
const OrderedIndex* OrderedIndexOn(const Relation& rel, size_t field) {
  TupleIndex* index = rel.FindIndexOn(field, /*ordered_only=*/true);
  return index == nullptr ? nullptr
                          : static_cast<const OrderedIndex*>(index);
}

/// First existing hash index of a relation keyed on `field`.
const HashIndex* HashIndexOn(const Relation& rel, size_t field) {
  for (const auto& index : rel.indexes()) {
    if (!IndexKindOrdered(index->kind()) &&
        index->key_fields().size() == 1 &&
        index->key_fields()[0] == field) {
      return static_cast<const HashIndex*>(index.get());
    }
  }
  return nullptr;
}

}  // namespace

const char* JoinMethodName(JoinMethod method) {
  switch (method) {
    case JoinMethod::kPrecomputed: return "precomputed (pointer) join";
    case JoinMethod::kTreeMerge: return "tree merge join";
    case JoinMethod::kTreeJoin: return "tree (index) join";
    case JoinMethod::kHashProbe: return "hash join (existing index)";
    case JoinMethod::kHashJoin: return "hash join (build + probe)";
    case JoinMethod::kPartitionedHash:
      return "partitioned hash join (L2-resident builds)";
    case JoinMethod::kHybridHash: return "hybrid hash join";
    case JoinMethod::kSortMerge: return "sort merge join";
    case JoinMethod::kNestedLoops: return "nested loops join";
  }
  return "?";
}

JoinPlan Planner::PlanJoin(const JoinSpec& spec, const JoinStats& stats) {
  trace::Span span("plan_join");
  JoinPlan plan;

  // Rule 0: a precomputed join "would beat each of the join methods in
  // every case, because the joining tuples have already been paired"
  // (Section 3.3.5).  Applies when the outer join field is a materialized
  // foreign key into the inner relation.
  if (spec.outer->schema().field(spec.outer_field).type == Type::kPointer) {
    const ForeignKeyDecl* fk = spec.outer->ForeignKeyOn(spec.outer_field);
    if (fk != nullptr && fk->target == spec.inner) {
      plan.method = JoinMethod::kPrecomputed;
      plan.fk_field = spec.outer_field;
      plan.rationale = "foreign key pointers already pair the tuples";
      return plan;
    }
  }

  const OrderedIndex* outer_tree = OrderedIndexOn(*spec.outer, spec.outer_field);
  const OrderedIndex* inner_tree = OrderedIndexOn(*spec.inner, spec.inner_field);
  const HashIndex* inner_hash = HashIndexOn(*spec.inner, spec.inner_field);
  const double outer_n = static_cast<double>(spec.outer->cardinality());
  const double inner_n = static_cast<double>(spec.inner->cardinality());

  // Exception 2 (Section 3.3.5): very high duplicate percentage with high
  // semijoin selectivity favors Sort Merge — the array scan efficiency
  // dominates once the join output explodes.  Crossovers from Graphs 7/8:
  // ~80% duplicates skewed (~40% against built indices), ~97% uniform.
  const double sort_merge_threshold = stats.skewed ? 80.0 : 97.0;
  if (stats.semijoin_selectivity >= 50.0 &&
      stats.duplicate_pct >= sort_merge_threshold) {
    plan.method = JoinMethod::kSortMerge;
    plan.rationale = "high duplicates + high semijoin selectivity "
                     "(Graphs 7/8 crossover)";
    return plan;
  }

  // Main rule: Tree Merge whenever both ordered indices already exist.
  if (outer_tree != nullptr && inner_tree != nullptr) {
    plan.method = JoinMethod::kTreeMerge;
    plan.outer_index = outer_tree;
    plan.inner_index = inner_tree;
    plan.rationale = "both join columns have existing ordered indices";
    return plan;
  }

  // Exception 1 (Section 3.3.5): an existing index on the larger (inner)
  // relation beats building a hash table when the outer relation is less
  // than ~60% of the inner's size (Graph 6 crossover).
  if (outer_n < 0.6 * inner_n) {
    if (inner_hash != nullptr) {
      plan.method = JoinMethod::kHashProbe;
      plan.inner_hash = inner_hash;
      plan.rationale = "small outer + existing hash index on inner";
      return plan;
    }
    if (inner_tree != nullptr) {
      plan.method = JoinMethod::kTreeJoin;
      plan.inner_index = inner_tree;
      plan.rationale = "small outer + existing tree index on inner "
                       "(Graph 6 crossover at ~60%)";
      return plan;
    }
  }

  // An existing hash index always beats building one.
  if (inner_hash != nullptr) {
    plan.method = JoinMethod::kHashProbe;
    plan.inner_hash = inner_hash;
    plan.rationale = "existing hash index on the inner join column";
    return plan;
  }

  // Default family: build a chained-bucket hash on the inner and probe.
  // The variant is memory-aware (DESIGN.md §4f): a build estimated past
  // MMDB_JOIN_MEM_BYTES goes hybrid (only 1/P of the table resident, the
  // rest staged as bare refs and joined per partition); a build past the
  // L2 target but within budget is partitioned so each piece's chains stay
  // cache-resident during probes; small builds stay monolithic.
  const size_t build_bytes =
      joinmem::EstimateBuildBytes(spec.inner->cardinality());
  if (build_bytes > joinmem::BudgetBytes()) {
    plan.method = JoinMethod::kHybridHash;
    plan.partitions =
        std::max<size_t>(2, joinmem::ChoosePartitions(
                                build_bytes, joinmem::L2TargetBytes()));
    plan.spilled = plan.partitions - 1;
    plan.rationale = "estimated hash build (" +
                     std::to_string(build_bytes >> 20) +
                     " MiB) exceeds MMDB_JOIN_MEM_BYTES; hybrid hash keeps "
                     "1/" + std::to_string(plan.partitions) + " resident";
    return plan;
  }
  if (build_bytes > joinmem::L2TargetBytes()) {
    plan.method = JoinMethod::kPartitionedHash;
    plan.partitions =
        joinmem::ChoosePartitions(build_bytes, joinmem::L2TargetBytes());
    plan.rationale = "no usable existing index; build split into " +
                     std::to_string(plan.partitions) +
                     " L2-resident partitions";
    return plan;
  }
  plan.method = JoinMethod::kHashJoin;
  plan.rationale = "no usable existing index; hash build + probe is the "
                   "best general method (Graphs 4/5)";
  return plan;
}

TempList Planner::ExecuteJoin(const JoinSpec& spec, const JoinPlan& plan) {
  switch (plan.method) {
    case JoinMethod::kPrecomputed:
      return PrecomputedJoin(*spec.outer, plan.fk_field);
    case JoinMethod::kTreeMerge:
      return TreeMergeJoin(spec, *plan.outer_index, *plan.inner_index);
    case JoinMethod::kTreeJoin:
      return TreeJoin(spec, *plan.inner_index);
    case JoinMethod::kHashProbe:
      return HashProbeJoin(spec, *plan.inner_hash);
    case JoinMethod::kHashJoin:
      return HashJoin(spec);
    case JoinMethod::kPartitionedHash:
      return PartitionedHashJoin(spec, plan.partitions);
    case JoinMethod::kHybridHash:
      return HybridHashJoin(spec, plan.partitions);
    case JoinMethod::kSortMerge:
      return SortMergeJoin(spec);
    case JoinMethod::kNestedLoops:
      return NestedLoopsJoin(spec);
  }
  return TempList(ResultDescriptor({spec.outer, spec.inner}));
}

TempList Planner::Join(const JoinSpec& spec, const JoinStats& stats,
                       JoinPlan* plan_out) {
  JoinPlan plan = PlanJoin(spec, stats);
  if (plan_out != nullptr) *plan_out = plan;
  return ExecuteJoin(spec, plan);
}

TempList Planner::InequalityJoin(const JoinSpec& spec, CompareOp op,
                                 bool* used_existing_index) {
  const OrderedIndex* index = OrderedIndexOn(*spec.inner, spec.inner_field);
  if (index != nullptr) {
    if (used_existing_index != nullptr) *used_existing_index = true;
    return TreeInequalityJoin(spec, op, *index);
  }
  if (used_existing_index != nullptr) *used_existing_index = false;
  std::unique_ptr<ArrayIndex> array =
      BuildSortedArray(*spec.inner, spec.inner_field);
  return TreeInequalityJoin(spec, op, *array);
}

AccessPath Planner::PlanSelect(const Relation& rel, const Predicate& pred) {
  trace::Span span("plan_select");
  for (const auto& index : rel.indexes()) {
    if (!IndexKindOrdered(index->kind()) && index->key_fields().size() == 1 &&
        pred.EqualityOn(index->key_fields()[0])) {
      return AccessPath::kHashLookup;
    }
  }
  for (const auto& index : rel.indexes()) {
    if (IndexKindOrdered(index->kind()) && index->key_fields().size() == 1) {
      if (auto sarg = pred.SargableOn(index->key_fields()[0])) {
        return pred.conditions()[*sarg].op == CompareOp::kEq
                   ? AccessPath::kTreeLookup
                   : AccessPath::kTreeRange;
      }
    }
  }
  return AccessPath::kSequentialScan;
}

double Planner::EstimateSelectCost(const Relation& rel, const Predicate& pred,
                                   AccessPath path) {
  const double n = static_cast<double>(rel.cardinality());
  const double conds = static_cast<double>(pred.conditions().size());
  switch (path) {
    case AccessPath::kHashLookup:
      // One hash call plus the expected bucket chain (assume short).
      return 1.0 + 2.0 + std::max(0.0, conds - 1.0);
    case AccessPath::kTreeLookup:
      return Log2Of(n);
    case AccessPath::kTreeRange:
      // Descend once; the scan length depends on selectivity we don't
      // estimate, so charge the descent plus a token linear term.
      return Log2Of(n) + 0.1 * n;
    case AccessPath::kSequentialScan:
      return n * std::max(1.0, conds);
  }
  return n;
}

double Planner::EstimateJoinCost(const JoinSpec& spec, JoinMethod method,
                                 size_t partitions) {
  const double n1 = static_cast<double>(spec.outer->cardinality());
  const double n2 = static_cast<double>(spec.inner->cardinality());
  switch (method) {
    case JoinMethod::kPrecomputed:
      return n1;  // one pointer chase per outer tuple
    case JoinMethod::kTreeMerge:
      return n1 + 2.0 * n2;  // Section 3.3.4 key-join cost
    case JoinMethod::kTreeJoin:
      return n1 * Log2Of(n2);
    case JoinMethod::kHashProbe:
      return n1;  // one hash call per probe, fixed-cost buckets
    case JoinMethod::kHashJoin:
    case JoinMethod::kPartitionedHash:
      // Routing reuses the build/probe hashes, so the partitioned variant
      // costs the same algorithmic work — it only changes memory locality.
      return n1 + n2;
    case JoinMethod::kHybridHash: {
      // The spilled (1 - 1/P) fraction of both inputs is hashed twice:
      // once to route it, once more when its partition is built/probed.
      const double p = partitions < 1 ? 1.0 : static_cast<double>(partitions);
      return (n1 + n2) * (2.0 - 1.0 / p);
    }
    case JoinMethod::kSortMerge:
      return n1 * Log2Of(n1) + n2 * Log2Of(n2) + n1 + n2;
    case JoinMethod::kNestedLoops:
      return n1 * n2;
  }
  return n1 * n2;
}

double Planner::EstimateProbeJoinCost(size_t outer_rows, const Relation& inner,
                                      const TupleIndex* inner_index) {
  const double n1 = static_cast<double>(outer_rows);
  const double n2 = static_cast<double>(inner.cardinality());
  if (inner_index == nullptr) return n2 + n1;  // hash build + probe
  return IndexKindOrdered(inner_index->kind()) ? n1 * Log2Of(n2) : n1;
}

}  // namespace mmdb
