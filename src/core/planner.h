// The Section 4 query "optimizer".  The paper's punchline is that main
// memory makes optimization *simple*: clustering and width-reduction
// vanish, and the remaining choices have a near-total preference order —
//
//   selection: hash lookup (exact match only) > tree lookup > sequential
//              scan through an unrelated index;
//   join:      precomputed (pointer) join > Tree Merge when both T Tree
//              indices already exist > Hash Join, with two exceptions from
//              Section 3.3.5:
//                (1) an existing index on the larger relation + the smaller
//                    relation under ~60% of its size -> index (Tree) Join;
//                (2) high duplicate percentage + high semijoin selectivity
//                    -> Sort Merge (crossover ~40-80% skewed, ~97% uniform);
//   projection: hashing, always.
//
// The planner encodes exactly those rules; JoinStats carries the workload
// knowledge (duplicate percentage, skew, semijoin selectivity) the paper's
// crossovers key off.

#ifndef MMDB_CORE_PLANNER_H_
#define MMDB_CORE_PLANNER_H_

#include <string>

#include "src/exec/join.h"
#include "src/exec/predicate.h"
#include "src/exec/select.h"

namespace mmdb {

enum class JoinMethod {
  kPrecomputed,
  kTreeMerge,
  kTreeJoin,
  kHashProbe,        // existing hash index on the inner join column
  kHashJoin,         // build a chained-bucket hash, then probe
  kPartitionedHash,  // build split into L2-sized partitions (DESIGN.md §4f)
  kHybridHash,       // build exceeds MMDB_JOIN_MEM_BYTES: spill partitions
  kSortMerge,
  kNestedLoops,  // never chosen; present for completeness/benchmarks
};

const char* JoinMethodName(JoinMethod method);

/// Optimizer statistics for a join.  Defaults mirror the paper's base case.
struct JoinStats {
  double duplicate_pct = 0.0;        ///< join-column duplicate percentage
  bool skewed = false;               ///< skewed duplicate distribution?
  double semijoin_selectivity = 100; ///< % of values that participate
};

struct JoinPlan {
  JoinMethod method = JoinMethod::kHashJoin;
  const OrderedIndex* outer_index = nullptr;  // Tree Merge
  const OrderedIndex* inner_index = nullptr;  // Tree Merge / Tree Join
  const HashIndex* inner_hash = nullptr;      // Hash probe
  size_t fk_field = 0;                        // Precomputed
  size_t partitions = 1;   // Partitioned / Hybrid hash partition count
  size_t spilled = 0;      // Hybrid hash: partitions staged past the budget
  std::string rationale;   // why this method won
};

class Planner {
 public:
  /// Chooses the join method per the Section 4 ordering.
  static JoinPlan PlanJoin(const JoinSpec& spec, const JoinStats& stats = {});

  /// Runs a previously planned join.
  static TempList ExecuteJoin(const JoinSpec& spec, const JoinPlan& plan);

  /// Plan + execute in one step.
  static TempList Join(const JoinSpec& spec, const JoinStats& stats = {},
                       JoinPlan* plan_out = nullptr);

  /// Selection access-path choice (delegates to exec::Select's ordering but
  /// reports the decision without running it).
  static AccessPath PlanSelect(const Relation& rel, const Predicate& pred);

  // ---- Cost predictions (Section 3.3.4 formulas) ----------------------------
  //
  // Costs are in the paper's unit of algorithmic work — comparisons plus
  // hash-function calls — the same unit OpCounters observes, so EXPLAIN
  // ANALYZE can print predicted next to actual and make cost-model error
  // directly visible.

  static double EstimateSelectCost(const Relation& rel, const Predicate& pred,
                                   AccessPath path);
  /// `partitions` matters only for kHybridHash, whose spilled partitions pay
  /// a second hash pass (stage + rebuild) over the (1 - 1/P) fraction of
  /// both inputs that is not joined streaming.
  static double EstimateJoinCost(const JoinSpec& spec, JoinMethod method,
                                 size_t partitions = 1);

  /// Select-then-join probe phase (the Query 2 strategy): `outer_rows`
  /// selected tuples probed into `inner` through `inner_index` (nullptr =
  /// a hash table is built first).
  static double EstimateProbeJoinCost(size_t outer_rows, const Relation& inner,
                                      const TupleIndex* inner_index);

  /// Non-equijoin (<, <=, >, >=) per Section 3.3.5: an ordered index on the
  /// inner join column is used when it exists; otherwise a sorted array is
  /// built on the fly (the Sort Merge build discipline) and scanned.
  /// `used_existing_index` (optional) reports which happened.
  static TempList InequalityJoin(const JoinSpec& spec, CompareOp op,
                                 bool* used_existing_index = nullptr);
};

}  // namespace mmdb

#endif  // MMDB_CORE_PLANNER_H_
