#include "src/core/query.h"

#include <cmath>
#include <iomanip>
#include <memory>
#include <sstream>

#include "src/cache/fingerprint.h"
#include "src/cache/reuse_cache.h"
#include "src/core/database.h"
#include "src/exec/sort.h"
#include "src/util/timer.h"
#include "src/util/trace.h"

namespace mmdb {
namespace {

/// Captures one plan node's actuals: wall time from construction, counter
/// delta from construction to Done().  Counter snapshots only happen in
/// analyze mode; the Timer is one clock read.
class StageCapture {
 public:
  explicit StageCapture(bool on) : on_(on) {
    if (on_) before_ = counters::Snapshot();
  }

  PlanNodeStats Done(std::string label, double est_cost,
                     uint64_t rows) const {
    PlanNodeStats node;
    node.label = std::move(label);
    node.est_cost = est_cost;
    node.actual_rows = rows;
    node.wall_micros = timer_.ElapsedMicros();
    if (on_) node.ops = counters::Snapshot() - before_;
    return node;
  }

 private:
  bool on_;
  Timer timer_;
  OpCounters before_;
};

void RenderNode(const PlanNodeStats& node, int depth, std::ostringstream* os) {
  for (int i = 0; i < depth; ++i) *os << "  ";
  if (depth > 0) *os << "-> ";
  *os << node.label << "  (cost=" << std::fixed << std::setprecision(0)
      << node.est_cost << " rows=" << node.actual_rows
      << " time=" << std::setprecision(1) << node.wall_micros << "us | "
      << node.ops.ToString() << ")\n";
  for (const PlanNodeStats& child : node.children) {
    RenderNode(child, depth + 1, os);
  }
}

/// Splits "a.b.c" into segments.
std::vector<std::string> SplitPath(const std::string& path) {
  std::vector<std::string> out;
  std::string seg;
  for (char c : path) {
    if (c == '.') {
      out.push_back(seg);
      seg.clear();
    } else {
      seg += c;
    }
  }
  out.push_back(seg);
  return out;
}

}  // namespace

QueryBuilder::QueryBuilder(Database* db, std::string table)
    : db_(db), table_(std::move(table)) {}

QueryBuilder& QueryBuilder::Where(const std::string& field, CompareOp op,
                                  Value value) {
  Relation* rel = db_->GetTable(table_);
  if (rel != nullptr) {
    if (auto f = rel->schema().FieldIndex(field)) {
      where_.Add(*f, op, std::move(value));
    }
  }
  return *this;
}

QueryBuilder& QueryBuilder::JoinWith(const std::string& table,
                                     const std::string& left_field,
                                     const std::string& right_field) {
  join_table_ = table;
  join_left_ = left_field;
  join_right_ = right_field;
  return *this;
}

QueryBuilder& QueryBuilder::WhereJoined(const std::string& field, CompareOp op,
                                        Value value) {
  if (join_table_.has_value()) {
    Relation* rel = db_->GetTable(*join_table_);
    if (rel != nullptr) {
      if (auto f = rel->schema().FieldIndex(field)) {
        where_joined_.Add(*f, op, std::move(value));
      }
    }
  }
  return *this;
}

QueryBuilder& QueryBuilder::WithStats(const JoinStats& stats) {
  stats_ = stats;
  return *this;
}

QueryBuilder& QueryBuilder::Select(std::vector<std::string> columns) {
  columns_ = std::move(columns);
  return *this;
}

QueryBuilder& QueryBuilder::Distinct() {
  distinct_ = true;
  return *this;
}

QueryBuilder& QueryBuilder::OrderBySelected() {
  ordered_ = true;
  return *this;
}

QueryBuilder& QueryBuilder::Analyze() {
  analyze_ = true;
  return *this;
}

std::string PlanNodeStats::Render() const {
  std::ostringstream os;
  RenderNode(*this, 0, &os);
  return os.str();
}

Status QueryBuilder::ResolveColumn(const std::string& path,
                                   ResultDescriptor* desc) const {
  std::vector<std::string> segments = SplitPath(path);
  if (segments.empty()) return Status::InvalidArgument("empty column path");

  // First segment: a source table name, or a bare field of the driving
  // table.
  uint16_t source = 0;
  size_t start = 0;
  if (segments[0] == table_) {
    start = 1;
  } else if (join_table_.has_value() && segments[0] == *join_table_) {
    source = 1;
    start = 1;
  }
  if (start >= segments.size()) {
    return Status::InvalidArgument("column path names no field: " + path);
  }

  const Relation* rel = desc->source(source);
  std::vector<uint16_t> field_path;
  for (size_t i = start; i < segments.size(); ++i) {
    auto f = rel->schema().FieldIndex(segments[i]);
    if (!f.has_value()) {
      return Status::NotFound("no field " + segments[i] + " in " +
                              rel->name());
    }
    field_path.push_back(static_cast<uint16_t>(*f));
    if (i + 1 < segments.size()) {
      const ForeignKeyDecl* fk = rel->ForeignKeyOn(*f);
      if (fk == nullptr) {
        return Status::InvalidArgument(segments[i] +
                                       " is not a foreign key field");
      }
      rel = fk->target;
    }
  }
  if (!desc->AddColumn(source, std::move(field_path), path)) {
    return Status::InvalidArgument("cannot resolve column " + path);
  }
  return Status::Ok();
}

QueryResult QueryBuilder::Run() {
  QueryResult result;
  result.analyzed = analyze_;
  std::ostringstream plan;
  trace::Span query_span("query_run");
  query_span.AddArgs("\"table\":\"" + table_ + "\"");

  // Root of the analyze tree: whole-query totals across all operators.
  const StageCapture total(analyze_);

  Relation* rel = db_->GetTable(table_);
  if (rel == nullptr) {
    result.plan = "error: no table " + table_;
    result.analyzed = false;
    return result;
  }

  // Reuse cache (DESIGN.md §4d): intermediates are cached at two stages.
  // The *base* entry holds the select/join/filter output (shared across
  // projection variants of the same shape); the *full* entry additionally
  // covers DISTINCT/ORDER BY, and only exists when one of those transforms
  // ran (plain projections are cheap enough to redo from the base rows).
  // Both hold TempLists — pointer-rows, only valid under the read locks the
  // caller holds (the query service runs this inside its LockForRead scope;
  // direct callers are single-threaded).  Footprints are relation-granular
  // here; the partition-precise case lives in the service's result cache.
  cache::ReuseCache& rc = db_->reuse_cache();
  bool cacheable = false;
  const bool want_full = distinct_ || ordered_;
  std::string base_key, full_key;
  if (rc.enabled()) {
    cache::QueryShape shape;
    shape.table = table_;
    shape.distinct = distinct_;
    shape.ordered = ordered_;
    bool shape_ok = true;
    for (const Condition& c : where_.conditions()) {
      shape.where.push_back(cache::ShapeConjunct{
          rel->schema().field(c.field).name, c.op, c.value});
    }
    if (join_table_.has_value()) {
      shape.has_join = true;
      shape.join_table = *join_table_;
      shape.join_left = join_left_;
      shape.join_right = join_right_;
      Relation* j = db_->GetTable(*join_table_);
      if (j == nullptr) {
        shape_ok = false;  // falls through to the error path below
      } else {
        for (const Condition& c : where_joined_.conditions()) {
          shape.join_where.push_back(cache::ShapeConjunct{
              j->schema().field(c.field).name, c.op, c.value});
        }
      }
    }
    shape.columns = columns_;
    if (shape.columns.empty()) {
      for (const Field& f : rel->schema().fields()) {
        shape.columns.push_back(table_ + "." + f.name);
      }
    }
    cache::NormalizeColumns(&shape);
    cacheable = shape_ok && cache::ColumnsCacheable(shape);
    if (cacheable) {
      base_key = "tmpb:" + cache::FingerprintBase(shape);
      if (want_full) full_key = "tmp:" + cache::FingerprintFull(shape);
    }
  }

  // Full hit: the final rows (columns resolved, distinct/sort applied)
  // served straight from the cache.
  if (cacheable && want_full) {
    if (auto hit = rc.LookupTemp(full_key)) {
      result.rows = hit->rows;
      result.plan = hit->plan + "; cache: hit";
      if (analyze_) {
        PlanNodeStats child;
        child.label = "cache(" + table_ + "): hit, rows served from cache";
        child.actual_rows = result.rows.size();
        PlanNodeStats root = total.Done(
            "query(" + table_ + ") [" +
                ExecModeName(DefaultExecMode()) + "]",
            0.0, result.rows.size());
        root.children.push_back(std::move(child));
        result.analyze = std::move(root);
      }
      return result;
    }
  }

  std::shared_ptr<const cache::TempPayload> base_hit;
  if (cacheable) base_hit = rc.LookupTemp(base_key);
  if (base_hit != nullptr) {
    result.rows = base_hit->rows;  // descriptor has sources, no columns yet
    plan << base_hit->plan << "; cache: base hit";
    if (analyze_) {
      PlanNodeStats node;
      node.label = "cache(" + table_ + "): base hit";
      node.actual_rows = result.rows.size();
      result.analyze.children.push_back(std::move(node));
    }
  } else if (!join_table_.has_value()) {
    const StageCapture cap(analyze_);
    trace::Span span("select");
    AccessPath path;
    TempList rows = ::mmdb::Select(*rel, where_, &path);
    span.AddArgs(std::string("\"path\":\"") + AccessPathName(path) + "\"");
    plan << "select(" << table_ << "): " << AccessPathName(path);
    if (analyze_) {
      result.analyze.children.push_back(cap.Done(
          "select(" + table_ + "): " + AccessPathName(path),
          Planner::EstimateSelectCost(*rel, where_, path), rows.size()));
    }
    result.rows = std::move(rows);
  } else {
    Relation* joined = db_->GetTable(*join_table_);
    if (joined == nullptr) {
      result.plan = "error: no table " + *join_table_;
      result.analyzed = false;
      return result;
    }
    auto lf = rel->schema().FieldIndex(join_left_);
    auto rf = joined->schema().FieldIndex(join_right_);
    if (!lf.has_value() || !rf.has_value()) {
      result.plan = "error: bad join fields";
      result.analyzed = false;
      return result;
    }
    JoinSpec spec{rel, *lf, joined, *rf};
    TempList rows((ResultDescriptor({rel, joined})));
    if (!where_.empty()) {
      // The paper's Query 2 strategy: select on the driving relation first,
      // then join only the selected tuples (Section 2.1).
      const StageCapture select_cap(analyze_);
      AccessPath path;
      TempList selected(ResultDescriptor({rel}));
      {
        trace::Span span("select");
        selected = ::mmdb::Select(*rel, where_, &path);
        span.AddArgs(std::string("\"path\":\"") + AccessPathName(path) +
                     "\"");
      }
      if (analyze_) {
        result.analyze.children.push_back(select_cap.Done(
            "select(" + table_ + "): " + AccessPathName(path),
            Planner::EstimateSelectCost(*rel, where_, path),
            selected.size()));
      }

      const StageCapture join_cap(analyze_);
      TupleIndex* inner_index = joined->FindIndexOn(*rf, false);
      {
        trace::Span span("join");
        rows = TempListJoin(selected, *lf, *joined, *rf, inner_index);
      }
      const char* method = inner_index != nullptr ? "probe existing index"
                                                  : "hash build + probe";
      plan << "select(" << table_ << "): " << AccessPathName(path) << " ("
           << selected.size() << " rows); join(" << *join_table_
           << "): " << method;
      if (analyze_) {
        result.analyze.children.push_back(join_cap.Done(
            "join(" + *join_table_ + "): " + method,
            Planner::EstimateProbeJoinCost(selected.size(), *joined,
                                           inner_index),
            rows.size()));
      }
    } else {
      const StageCapture join_cap(analyze_);
      JoinPlan jp;
      {
        trace::Span span("join");
        rows = Planner::Join(spec, stats_, &jp);
        span.AddArgs(std::string("\"method\":\"") + JoinMethodName(jp.method) +
                     "\"");
      }
      std::string method = JoinMethodName(jp.method);
      if (jp.method == JoinMethod::kHybridHash) {
        method += " [hybrid hash: " + std::to_string(jp.spilled) +
                  " spilled partitions]";
      } else if (jp.method == JoinMethod::kPartitionedHash) {
        method += " [" + std::to_string(jp.partitions) + " partitions]";
      }
      plan << "join(" << table_ << ", " << *join_table_ << "): " << method
           << " [" << jp.rationale << "]";
      if (analyze_) {
        result.analyze.children.push_back(join_cap.Done(
            "join(" + table_ + ", " + *join_table_ + "): " + method,
            Planner::EstimateJoinCost(spec, jp.method, jp.partitions),
            rows.size()));
      }
    }

    // Residual predicate on the joined side.
    if (!where_joined_.empty()) {
      const StageCapture filter_cap(analyze_);
      trace::Span span("filter");
      const uint64_t rows_in = rows.size();
      TempList filtered(rows.descriptor());
      const Schema& rs = joined->schema();
      if (DefaultExecMode() == ExecMode::kBatched) {
        // Chunked residual filter: evaluate the predicate over the joined
        // column a chunk at a time, then append the surviving pairs.
        TupleRef refs[kChunkCapacity];
        SelIdx sel[kChunkCapacity];
        for (size_t base = 0; base < rows.size(); base += kChunkCapacity) {
          const size_t n = std::min(kChunkCapacity, rows.size() - base);
          for (size_t i = 0; i < n; ++i) refs[i] = rows.At(base + i, 1);
          const size_t m = where_joined_.MatchChunk(refs, n, rs, sel);
          for (size_t i = 0; i < m; ++i) {
            const size_t r = base + sel[i];
            filtered.Append2(rows.At(r, 0), rows.At(r, 1));
          }
        }
      } else {
        for (size_t r = 0; r < rows.size(); ++r) {
          if (where_joined_.Matches(rows.At(r, 1), rs)) {
            filtered.Append2(rows.At(r, 0), rows.At(r, 1));
          }
        }
      }
      plan << "; filter(" << where_joined_.ToString(rs) << ")";
      rows = std::move(filtered);
      if (analyze_) {
        result.analyze.children.push_back(
            filter_cap.Done("filter(" + where_joined_.ToString(rs) + ")",
                            static_cast<double>(rows_in), rows.size()));
      }
    }
    result.rows = std::move(rows);
  }

  // Fill the base entry while the caller's read locks are still held (the
  // fill-before-unlock half of the invalidation protocol).
  cache::Footprint footprint;
  if (cacheable) {
    footprint.AddAll(table_);
    if (join_table_.has_value()) footprint.AddAll(*join_table_);
    if (base_hit == nullptr) {
      cache::TempPayload payload;
      payload.rows = result.rows;
      payload.plan = plan.str();
      rc.FillTemp(base_key, footprint, std::move(payload));
    }
  }

  // Output columns (result-descriptor projection, Section 2.3).
  std::vector<std::string> columns = columns_;
  if (columns.empty()) {
    for (const Field& f : rel->schema().fields()) {
      columns.push_back(table_ + "." + f.name);
    }
  }
  for (const std::string& c : columns) {
    Status s = ResolveColumn(c, result.rows.mutable_descriptor());
    if (!s.ok()) {
      result.plan = "error: " + s.ToString();
      result.rows.Clear();
      result.analyzed = false;
      return result;
    }
  }

  if (distinct_) {
    const StageCapture cap(analyze_);
    trace::Span span("distinct");
    const uint64_t rows_in = result.rows.size();
    result.rows = ProjectHash(result.rows);
    plan << "; distinct: hashing (Section 3.4)";
    if (analyze_) {
      result.analyze.children.push_back(
          cap.Done("distinct: hashing", static_cast<double>(rows_in),
                   result.rows.size()));
    }
  }
  if (ordered_) {
    const StageCapture cap(analyze_);
    trace::Span span("order_by");
    const double n = static_cast<double>(result.rows.size());
    result.rows = SortTempList(result.rows);
    plan << "; order by: hybrid quicksort";
    if (analyze_) {
      result.analyze.children.push_back(
          cap.Done("order by: hybrid quicksort",
                   n < 2.0 ? n : n * std::log2(n), result.rows.size()));
    }
  }
  result.plan = plan.str();

  // Full entry: rows after projection/distinct/sort, so the repeated query
  // skips those transforms too.
  if (cacheable && want_full) {
    cache::TempPayload payload;
    payload.rows = result.rows;
    payload.plan = result.plan;
    rc.FillTemp(full_key, footprint, std::move(payload));
  }

  if (analyze_) {
    double est_total = 0.0;
    for (const PlanNodeStats& child : result.analyze.children) {
      est_total += child.est_cost;
    }
    PlanNodeStats root = total.Done(
        "query(" + table_ + ") [" + ExecModeName(DefaultExecMode()) + "]",
        est_total, result.rows.size());
    root.children = std::move(result.analyze.children);
    result.analyze = std::move(root);
  }
  return result;
}

}  // namespace mmdb
