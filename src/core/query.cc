#include "src/core/query.h"

#include <sstream>

#include "src/core/database.h"
#include "src/exec/sort.h"

namespace mmdb {
namespace {

/// Splits "a.b.c" into segments.
std::vector<std::string> SplitPath(const std::string& path) {
  std::vector<std::string> out;
  std::string seg;
  for (char c : path) {
    if (c == '.') {
      out.push_back(seg);
      seg.clear();
    } else {
      seg += c;
    }
  }
  out.push_back(seg);
  return out;
}

}  // namespace

QueryBuilder::QueryBuilder(Database* db, std::string table)
    : db_(db), table_(std::move(table)) {}

QueryBuilder& QueryBuilder::Where(const std::string& field, CompareOp op,
                                  Value value) {
  Relation* rel = db_->GetTable(table_);
  if (rel != nullptr) {
    if (auto f = rel->schema().FieldIndex(field)) {
      where_.Add(*f, op, std::move(value));
    }
  }
  return *this;
}

QueryBuilder& QueryBuilder::JoinWith(const std::string& table,
                                     const std::string& left_field,
                                     const std::string& right_field) {
  join_table_ = table;
  join_left_ = left_field;
  join_right_ = right_field;
  return *this;
}

QueryBuilder& QueryBuilder::WhereJoined(const std::string& field, CompareOp op,
                                        Value value) {
  if (join_table_.has_value()) {
    Relation* rel = db_->GetTable(*join_table_);
    if (rel != nullptr) {
      if (auto f = rel->schema().FieldIndex(field)) {
        where_joined_.Add(*f, op, std::move(value));
      }
    }
  }
  return *this;
}

QueryBuilder& QueryBuilder::WithStats(const JoinStats& stats) {
  stats_ = stats;
  return *this;
}

QueryBuilder& QueryBuilder::Select(std::vector<std::string> columns) {
  columns_ = std::move(columns);
  return *this;
}

QueryBuilder& QueryBuilder::Distinct() {
  distinct_ = true;
  return *this;
}

QueryBuilder& QueryBuilder::OrderBySelected() {
  ordered_ = true;
  return *this;
}

Status QueryBuilder::ResolveColumn(const std::string& path,
                                   ResultDescriptor* desc) const {
  std::vector<std::string> segments = SplitPath(path);
  if (segments.empty()) return Status::InvalidArgument("empty column path");

  // First segment: a source table name, or a bare field of the driving
  // table.
  uint16_t source = 0;
  size_t start = 0;
  if (segments[0] == table_) {
    start = 1;
  } else if (join_table_.has_value() && segments[0] == *join_table_) {
    source = 1;
    start = 1;
  }
  if (start >= segments.size()) {
    return Status::InvalidArgument("column path names no field: " + path);
  }

  const Relation* rel = desc->source(source);
  std::vector<uint16_t> field_path;
  for (size_t i = start; i < segments.size(); ++i) {
    auto f = rel->schema().FieldIndex(segments[i]);
    if (!f.has_value()) {
      return Status::NotFound("no field " + segments[i] + " in " +
                              rel->name());
    }
    field_path.push_back(static_cast<uint16_t>(*f));
    if (i + 1 < segments.size()) {
      const ForeignKeyDecl* fk = rel->ForeignKeyOn(*f);
      if (fk == nullptr) {
        return Status::InvalidArgument(segments[i] +
                                       " is not a foreign key field");
      }
      rel = fk->target;
    }
  }
  if (!desc->AddColumn(source, std::move(field_path), path)) {
    return Status::InvalidArgument("cannot resolve column " + path);
  }
  return Status::Ok();
}

QueryResult QueryBuilder::Run() {
  QueryResult result;
  std::ostringstream plan;

  Relation* rel = db_->GetTable(table_);
  if (rel == nullptr) {
    result.plan = "error: no table " + table_;
    return result;
  }

  if (!join_table_.has_value()) {
    AccessPath path;
    TempList rows = ::mmdb::Select(*rel, where_, &path);
    plan << "select(" << table_ << "): " << AccessPathName(path);
    result.rows = std::move(rows);
  } else {
    Relation* joined = db_->GetTable(*join_table_);
    if (joined == nullptr) {
      result.plan = "error: no table " + *join_table_;
      return result;
    }
    auto lf = rel->schema().FieldIndex(join_left_);
    auto rf = joined->schema().FieldIndex(join_right_);
    if (!lf.has_value() || !rf.has_value()) {
      result.plan = "error: bad join fields";
      return result;
    }
    JoinSpec spec{rel, *lf, joined, *rf};
    TempList rows((ResultDescriptor({rel, joined})));
    if (!where_.empty()) {
      // The paper's Query 2 strategy: select on the driving relation first,
      // then join only the selected tuples (Section 2.1).
      AccessPath path;
      TempList selected = ::mmdb::Select(*rel, where_, &path);
      TupleIndex* inner_index = joined->FindIndexOn(*rf, false);
      rows = TempListJoin(selected, *lf, *joined, *rf, inner_index);
      plan << "select(" << table_ << "): " << AccessPathName(path) << " ("
           << selected.size() << " rows); join(" << *join_table_ << "): "
           << (inner_index != nullptr ? "probe existing index"
                                      : "hash build + probe");
    } else {
      JoinPlan jp;
      rows = Planner::Join(spec, stats_, &jp);
      plan << "join(" << table_ << ", " << *join_table_
           << "): " << JoinMethodName(jp.method) << " [" << jp.rationale
           << "]";
    }

    // Residual predicate on the joined side.
    if (!where_joined_.empty()) {
      TempList filtered(rows.descriptor());
      const Schema& rs = joined->schema();
      for (size_t r = 0; r < rows.size(); ++r) {
        if (where_joined_.Matches(rows.At(r, 1), rs)) {
          filtered.Append2(rows.At(r, 0), rows.At(r, 1));
        }
      }
      plan << "; filter(" << where_joined_.ToString(rs) << ")";
      rows = std::move(filtered);
    }
    result.rows = std::move(rows);
  }

  // Output columns (result-descriptor projection, Section 2.3).
  std::vector<std::string> columns = columns_;
  if (columns.empty()) {
    for (const Field& f : rel->schema().fields()) {
      columns.push_back(table_ + "." + f.name);
    }
  }
  for (const std::string& c : columns) {
    Status s = ResolveColumn(c, result.rows.mutable_descriptor());
    if (!s.ok()) {
      result.plan = "error: " + s.ToString();
      result.rows.Clear();
      return result;
    }
  }

  if (distinct_) {
    result.rows = ProjectHash(result.rows);
    plan << "; distinct: hashing (Section 3.4)";
  }
  if (ordered_) {
    result.rows = SortTempList(result.rows);
    plan << "; order by: hybrid quicksort";
  }
  result.plan = plan.str();
  return result;
}

}  // namespace mmdb
