// QueryBuilder: a small fluent layer over the executor, enough to express
// the paper's motivating queries:
//
//   Query 1 — selection + precomputed join through a foreign key:
//     db.Query("emp").Where("age", CompareOp::kGt, 65)
//       .Select({"emp.name", "emp.age", "emp.dept_id.name"}).Run();
//
//   Query 2 — selection then join (pointer or value):
//     db.Query("dept").Where("name", CompareOp::kEq, "Toy")
//       .JoinWith("emp", "id", "dept_id").Select({"emp.name"}).Run();
//
// Column paths are dot-separated: "<table>.<field>" with extra hops through
// declared foreign-key pointer fields ("emp.dept_id.name" reads the
// Department name through the materialized pointer).

#ifndef MMDB_CORE_QUERY_H_
#define MMDB_CORE_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "src/core/planner.h"
#include "src/storage/temp_list.h"
#include "src/util/counters.h"

namespace mmdb {

class Database;

/// One node of an EXPLAIN ANALYZE plan tree: the planner's prediction next
/// to what actually happened.  `est_cost` is in the paper's unit of work
/// (comparisons + hash calls, Section 3.3.4), the same unit `ops` counts —
/// estimated-vs-actual is the cost-model error, visible per operator.
struct PlanNodeStats {
  std::string label;       ///< operator + decision, e.g. "select(emp): hash lookup"
  double est_cost = 0.0;   ///< predicted comparisons + hash calls
  uint64_t actual_rows = 0;  ///< rows this node produced
  double wall_micros = 0.0;
  OpCounters ops;          ///< observed counter deltas for this node
  std::vector<PlanNodeStats> children;

  /// Indented multi-line tree: one node per line with cost / rows / time /
  /// counters annotations.
  std::string Render() const;
};

/// Result of Run(): the rows plus the plan decisions taken.
struct QueryResult {
  TempList rows;
  std::string plan;  ///< human-readable access-path / join-method trace
  bool analyzed = false;    ///< true iff Analyze() was requested (and ran)
  PlanNodeStats analyze;    ///< per-operator stats tree when analyzed

  QueryResult() : rows(ResultDescriptor()) {}
};

class QueryBuilder {
 public:
  QueryBuilder(Database* db, std::string table);

  /// Adds a conjunct on the *driving* table.
  QueryBuilder& Where(const std::string& field, CompareOp op, Value value);

  /// Equijoin with a second table: driving.left_field = other.right_field.
  /// At most one join per query (the paper's workloads are binary joins).
  QueryBuilder& JoinWith(const std::string& table,
                         const std::string& left_field,
                         const std::string& right_field);

  /// Adds a conjunct on the joined table.
  QueryBuilder& WhereJoined(const std::string& field, CompareOp op,
                            Value value);

  /// Optimizer statistics for the join-method choice.
  QueryBuilder& WithStats(const JoinStats& stats);

  /// Output columns as dot-paths; empty = all fields of the driving table.
  QueryBuilder& Select(std::vector<std::string> columns);

  /// Eliminate duplicate output rows (hashing — "the dominant algorithm for
  /// processing projections in main memory").
  QueryBuilder& Distinct();

  /// Sort output rows by the Select() columns, ascending (hybrid quicksort,
  /// Section 3.3.2's algorithm).  Applied after Distinct().
  QueryBuilder& OrderBySelected();

  /// EXPLAIN ANALYZE mode: Run() additionally captures, per plan node, the
  /// OpCounters deltas, output rows, and wall time next to the planner's
  /// cost estimate, into QueryResult::analyze.
  QueryBuilder& Analyze();

  /// Executes and returns rows + plan trace.  On an ill-formed query the
  /// result is empty and `plan` carries the error.
  QueryResult Run();

 private:
  Status ResolveColumn(const std::string& path, ResultDescriptor* desc) const;

  Database* db_;
  std::string table_;
  Predicate where_;
  std::optional<std::string> join_table_;
  std::string join_left_, join_right_;
  Predicate where_joined_;
  JoinStats stats_;
  std::vector<std::string> columns_;
  bool distinct_ = false;
  bool ordered_ = false;
  bool analyze_ = false;
};

}  // namespace mmdb

#endif  // MMDB_CORE_QUERY_H_
