// QueryBuilder: a small fluent layer over the executor, enough to express
// the paper's motivating queries:
//
//   Query 1 — selection + precomputed join through a foreign key:
//     db.Query("emp").Where("age", CompareOp::kGt, 65)
//       .Select({"emp.name", "emp.age", "emp.dept_id.name"}).Run();
//
//   Query 2 — selection then join (pointer or value):
//     db.Query("dept").Where("name", CompareOp::kEq, "Toy")
//       .JoinWith("emp", "id", "dept_id").Select({"emp.name"}).Run();
//
// Column paths are dot-separated: "<table>.<field>" with extra hops through
// declared foreign-key pointer fields ("emp.dept_id.name" reads the
// Department name through the materialized pointer).

#ifndef MMDB_CORE_QUERY_H_
#define MMDB_CORE_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "src/core/planner.h"
#include "src/storage/temp_list.h"

namespace mmdb {

class Database;

/// Result of Run(): the rows plus the plan decisions taken.
struct QueryResult {
  TempList rows;
  std::string plan;  ///< human-readable access-path / join-method trace

  QueryResult() : rows(ResultDescriptor()) {}
};

class QueryBuilder {
 public:
  QueryBuilder(Database* db, std::string table);

  /// Adds a conjunct on the *driving* table.
  QueryBuilder& Where(const std::string& field, CompareOp op, Value value);

  /// Equijoin with a second table: driving.left_field = other.right_field.
  /// At most one join per query (the paper's workloads are binary joins).
  QueryBuilder& JoinWith(const std::string& table,
                         const std::string& left_field,
                         const std::string& right_field);

  /// Adds a conjunct on the joined table.
  QueryBuilder& WhereJoined(const std::string& field, CompareOp op,
                            Value value);

  /// Optimizer statistics for the join-method choice.
  QueryBuilder& WithStats(const JoinStats& stats);

  /// Output columns as dot-paths; empty = all fields of the driving table.
  QueryBuilder& Select(std::vector<std::string> columns);

  /// Eliminate duplicate output rows (hashing — "the dominant algorithm for
  /// processing projections in main memory").
  QueryBuilder& Distinct();

  /// Sort output rows by the Select() columns, ascending (hybrid quicksort,
  /// Section 3.3.2's algorithm).  Applied after Distinct().
  QueryBuilder& OrderBySelected();

  /// Executes and returns rows + plan trace.  On an ill-formed query the
  /// result is empty and `plan` carries the error.
  QueryResult Run();

 private:
  Status ResolveColumn(const std::string& path, ResultDescriptor* desc) const;

  Database* db_;
  std::string table_;
  Predicate where_;
  std::optional<std::string> join_table_;
  std::string join_left_, join_right_;
  Predicate where_joined_;
  JoinStats stats_;
  std::vector<std::string> columns_;
  bool distinct_ = false;
  bool ordered_ = false;
};

}  // namespace mmdb

#endif  // MMDB_CORE_QUERY_H_
