#include "src/core/shell.h"

#include <cctype>
#include <cstdint>
#include <sstream>

#include "src/core/query.h"
#include "src/exec/select.h"
#include "src/net/server.h"
#include "src/server/flight_recorder.h"
#include "src/server/query_service.h"
#include "src/util/counters.h"
#include "src/util/trace.h"

namespace mmdb {
namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' ||
         c == '-' || c == '*';
}

std::string Upper(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::toupper(c));
  return out;
}

bool TokenIs(const CommandShell::Token& token, const std::string& kw) {
  return !token.quoted && Upper(token.text) == kw;
}

bool ParseOp(const std::string& token, CompareOp* op) {
  if (token == "=") {
    *op = CompareOp::kEq;
  } else if (token == "!=" || token == "<>") {
    *op = CompareOp::kNe;
  } else if (token == "<") {
    *op = CompareOp::kLt;
  } else if (token == "<=") {
    *op = CompareOp::kLe;
  } else if (token == ">") {
    *op = CompareOp::kGt;
  } else if (token == ">=") {
    *op = CompareOp::kGe;
  } else {
    return false;
  }
  return true;
}

bool ParseTypeToken(const std::string& token, Type* type) {
  const std::string t = Upper(token);
  if (t == "INT" || t == "INT32") *type = Type::kInt32;
  else if (t == "BIGINT" || t == "INT64") *type = Type::kInt64;
  else if (t == "DOUBLE") *type = Type::kDouble;
  else if (t == "STRING" || t == "TEXT") *type = Type::kString;
  else if (t == "POINTER") *type = Type::kPointer;
  else return false;
  return true;
}

bool ParseKindToken(const std::string& token, IndexKind* kind) {
  const std::string t = Upper(token);
  if (t == "ARRAY") *kind = IndexKind::kArray;
  else if (t == "AVL") *kind = IndexKind::kAvlTree;
  else if (t == "BTREE") *kind = IndexKind::kBTree;
  else if (t == "TTREE") *kind = IndexKind::kTTree;
  else if (t == "CBHASH" || t == "HASH") *kind = IndexKind::kChainedBucketHash;
  else if (t == "EXTHASH") *kind = IndexKind::kExtendibleHash;
  else if (t == "LINHASH") *kind = IndexKind::kLinearHash;
  else if (t == "MLHASH") *kind = IndexKind::kModifiedLinearHash;
  else return false;
  return true;
}

/// Parses a WHERE clause tail (the tokens after the WHERE keyword) into a
/// Predicate over `rel`'s schema; advances *i past the conditions.
bool ParsePredicate(const std::vector<CommandShell::Token>& t, size_t* i,
                    const Relation& rel, Predicate* pred, std::string* error) {
  for (;;) {
    if (*i + 3 > t.size()) {
      *error = "truncated condition (need: field op literal)";
      return false;
    }
    auto f = rel.schema().FieldIndex(t[*i].text);
    if (!f.has_value()) {
      *error = "no field " + t[*i].text + " in " + rel.name();
      return false;
    }
    CompareOp op;
    if (!ParseOp(t[*i + 1].text, &op)) {
      *error = "unknown operator " + t[*i + 1].text;
      return false;
    }
    pred->Add(*f, op, CommandShell::ParseLiteral(t[*i + 2]));
    *i += 3;
    if (*i < t.size() && TokenIs(t[*i], "AND")) {
      ++*i;
      continue;
    }
    return true;
  }
}

/// Parses `field op literal` for the query builder, routing by table
/// prefix: `joined.field` goes to WhereJoined, anything else to Where.
bool ParseBuilderCondition(const std::vector<CommandShell::Token>& t,
                           size_t* i, const std::string& driving,
                           const std::string& joined, QueryBuilder* builder,
                           std::string* error) {
  if (*i + 3 > t.size()) {
    *error = "truncated condition (need: field op literal)";
    return false;
  }
  std::string path = t[*i].text;
  CompareOp op;
  if (!ParseOp(t[*i + 1].text, &op)) {
    *error = "unknown operator " + t[*i + 1].text;
    return false;
  }
  const Value literal = CommandShell::ParseLiteral(t[*i + 2]);
  *i += 3;

  const size_t dot = path.find('.');
  if (dot != std::string::npos) {
    const std::string prefix = path.substr(0, dot);
    const std::string field = path.substr(dot + 1);
    if (!joined.empty() && prefix == joined) {
      builder->WhereJoined(field, op, literal);
      return true;
    }
    if (prefix == driving) {
      builder->Where(field, op, literal);
      return true;
    }
    *error = "unknown table prefix " + prefix;
    return false;
  }
  builder->Where(path, op, literal);
  return true;
}

}  // namespace

std::vector<CommandShell::Token> CommandShell::Tokenize(
    const std::string& statement, std::string* error) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = statement.size();
  while (i < n) {
    const char c = statement[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '\'') {
      std::string s;
      ++i;
      for (;;) {
        if (i >= n) {
          *error = "unterminated string literal";
          return {};
        }
        if (statement[i] == '\'') {
          if (i + 1 < n && statement[i + 1] == '\'') {  // '' escapes a quote
            s += '\'';
            i += 2;
            continue;
          }
          ++i;
          break;
        }
        s += statement[i++];
      }
      out.push_back(Token{std::move(s), /*quoted=*/true});
      continue;
    }
    if (c == '(' || c == ')' || c == ',' || c == ';') {
      out.push_back(Token{std::string(1, c), false});
      ++i;
      continue;
    }
    if (c == '=' || c == '<' || c == '>' || c == '!') {
      std::string op(1, c);
      ++i;
      if (i < n && (statement[i] == '=' ||
                    (op == "<" && statement[i] == '>'))) {
        op += statement[i++];
      }
      out.push_back(Token{std::move(op), false});
      continue;
    }
    if (IsWordChar(c)) {
      std::string word;
      while (i < n && IsWordChar(statement[i])) word += statement[i++];
      out.push_back(Token{std::move(word), false});
      continue;
    }
    *error = std::string("unexpected character '") + c + "'";
    return {};
  }
  return out;
}

Value CommandShell::ParseLiteral(const Token& token) {
  if (token.quoted) return Value(token.text);
  if (token.text.find('.') != std::string::npos) {
    return Value(std::stod(token.text));
  }
  const long long v = std::stoll(token.text);
  if (v >= INT32_MIN && v <= INT32_MAX) {
    return Value(static_cast<int32_t>(v));
  }
  return Value(static_cast<int64_t>(v));
}

std::string CommandShell::ExecuteScript(const std::string& script) {
  std::ostringstream out;
  std::string current;
  bool in_string = false;
  for (char c : script) {
    if (c == '\'') in_string = !in_string;
    if (c == ';' && !in_string) {
      if (current.find_first_not_of(" \t\r\n") != std::string::npos) {
        out << Execute(current) << "\n";
      }
      current.clear();
    } else {
      current += c;
    }
  }
  if (current.find_first_not_of(" \t\r\n") != std::string::npos) {
    out << Execute(current) << "\n";
  }
  return out.str();
}

std::string CommandShell::Execute(const std::string& statement) {
  std::string error;
  std::vector<Token> t = Tokenize(statement, &error);
  if (!error.empty()) return "error: " + error;
  while (!t.empty() && !t.back().quoted && t.back().text == ";") t.pop_back();
  if (t.empty()) return "";

  try {
    const std::string head = Upper(t[0].text);
    // A replica database refuses every state change until PROMOTE; reads
    // and diagnostics stay available.
    if (db_->read_only() &&
        (head == "CREATE" || head == "FOREIGN" || head == "INSERT" ||
         head == "UPDATE" || head == "DELETE" || head == "CHECKPOINT" ||
         head == "DURABILITY" || head == "RECOVER" || head == "CRASH")) {
      return "error: " +
             Status::ReadOnly("replica is read-only until PROMOTE").ToString();
    }
    if (head == "PROMOTE") return RunPromote();
    if (head == "CREATE") return RunCreate(t);
    if (head == "FOREIGN") return RunForeignKey(t);
    if (head == "INSERT") return RunInsert(t);
    if (head == "SELECT") {
      return RunSelect(t, /*explain_only=*/false, /*analyze=*/false);
    }
    if (head == "EXPLAIN") {
      if (t.size() > 1 && TokenIs(t[1], "ANALYZE")) {
        return RunSelect(std::vector<Token>(t.begin() + 2, t.end()),
                         /*explain_only=*/true, /*analyze=*/true);
      }
      return RunSelect(std::vector<Token>(t.begin() + 1, t.end()),
                       /*explain_only=*/true, /*analyze=*/false);
    }
    if (head == "UPDATE") return RunUpdate(t);
    if (head == "DELETE") return RunDelete(t);
    if (head == "SHOW") return RunShowTables();
    if (head == "DESCRIBE") return RunDescribe(t);
    if (head == "METRICS") return RunMetrics();
    if (head == "CACHE") return RunCache(t);
    if (head == "TRACE") return RunTrace(t);
    if (head == "SERVE") return RunServe(t);
    if (head == "SLOWLOG") return RunSlowLog();
    if (head == "FLIGHT") return RunFlight();
    if (head == "STATUS") return RunStatus();
    if (head == "CHECKPOINT") {
      Status s = db_->CheckpointNow();
      if (!s.ok()) return "error: " + s.ToString();
      return "ok: checkpointed";
    }
    if (head == "DURABILITY") {
      // DURABILITY 'dir' SYNC|ASYNC  |  DURABILITY OFF
      if (t.size() == 2 && TokenIs(t[1], "OFF")) {
        Status s = db_->DisableDurability();
        if (!s.ok()) return "error: " + s.ToString();
        return "ok: durability off";
      }
      if (t.size() != 3 || !t[1].quoted) {
        return "error: DURABILITY 'dir' SYNC|ASYNC, or DURABILITY OFF";
      }
      DurabilityOptions options;
      options.dir = t[1].text;
      const std::string mode = Upper(t[2].text);
      if (mode == "SYNC") {
        options.mode = DurabilityMode::kSync;
      } else if (mode == "ASYNC") {
        options.mode = DurabilityMode::kAsync;
      } else {
        return "error: durability mode must be SYNC or ASYNC";
      }
      ApplyDurabilityEnvOverrides(&options);
      Status s = db_->EnableDurability(std::move(options));
      if (!s.ok()) return "error: " + s.ToString();
      return std::string("ok: durability ") +
             DurabilityModeName(db_->durability_mode()) + " in " + t[1].text;
    }
    if (head == "RECOVER") {
      // RECOVER 'dir' — rebuild this (empty) database from a durability dir.
      if (t.size() != 2 || !t[1].quoted) return "error: RECOVER 'dir'";
      RecoveryManager::Progress progress;
      Status s = db_->Recover(t[1].text, nullptr, &progress);
      if (!s.ok()) return "error: " + s.ToString();
      std::ostringstream os;
      os << "ok: recovered " << progress.tuples_loaded << " tuples ("
         << progress.log_records_merged << " log records merged, "
         << progress.log_records_dropped << " dropped)";
      return os.str();
    }
    if (head == "CRASH") {
      RecoveryManager::Progress progress;
      Status s = db_->SimulateCrashAndRecover({}, &progress);
      if (!s.ok()) return "error: " + s.ToString();
      std::ostringstream os;
      os << "ok: crashed and recovered " << progress.tuples_loaded
         << " tuples (" << progress.log_records_merged
         << " log records merged)";
      return os.str();
    }
    return "error: unknown statement '" + t[0].text + "'";
  } catch (const std::exception& e) {
    return std::string("error: ") + e.what();
  }
}

std::string CommandShell::RunCreate(const std::vector<Token>& t) {
  if (t.size() < 3) return "error: malformed CREATE";
  const std::string what = Upper(t[1].text);

  if (what == "TABLE") {
    // CREATE TABLE name ( field TYPE [, field TYPE]* )
    if (t.size() < 7 || t[3].text != "(" || t.back().text != ")") {
      return "error: CREATE TABLE name (field TYPE, ...)";
    }
    const std::string& name = t[2].text;
    std::vector<Field> fields;
    size_t i = 4;
    while (i + 1 < t.size() && t[i].text != ")") {
      Type type;
      if (!ParseTypeToken(t[i + 1].text, &type)) {
        return "error: unknown type " + t[i + 1].text;
      }
      fields.push_back(Field{t[i].text, type});
      i += 2;
      if (i < t.size() && t[i].text == ",") ++i;
    }
    if (fields.empty()) return "error: a table needs at least one field";
    if (db_->CreateTable(name, fields) == nullptr) {
      return "error: cannot create table " + name;
    }
    std::ostringstream os;
    os << "ok: table " << name << " (" << fields.size() << " fields)";
    return os.str();
  }

  if (what == "INDEX") {
    // CREATE INDEX ON table ( field ) USING kind [UNIQUE] [NODESIZE n]
    if (t.size() < 9 || Upper(t[2].text) != "ON" || t[4].text != "(" ||
        t[6].text != ")" || Upper(t[7].text) != "USING") {
      return "error: CREATE INDEX ON table (field) USING kind";
    }
    IndexKind kind;
    if (!ParseKindToken(t[8].text, &kind)) {
      return "error: unknown index kind " + t[8].text;
    }
    IndexConfig config;
    size_t i = 9;
    while (i < t.size()) {
      if (TokenIs(t[i], "UNIQUE")) {
        config.unique = true;
        ++i;
      } else if (TokenIs(t[i], "NODESIZE") && i + 1 < t.size()) {
        config.node_size = std::stoi(t[i + 1].text);
        i += 2;
      } else {
        return "error: unknown index option " + t[i].text;
      }
    }
    TupleIndex* index = db_->CreateIndex(t[3].text, t[5].text, kind, config);
    if (index == nullptr) return "error: cannot create index";
    return "ok: index " + index->name();
  }
  return "error: CREATE " + t[1].text + " not supported";
}

std::string CommandShell::RunForeignKey(const std::vector<Token>& t) {
  // FOREIGN KEY table ( field ) REFERENCES target ( field )
  if (t.size() != 11 || Upper(t[1].text) != "KEY" || t[3].text != "(" ||
      t[5].text != ")" || Upper(t[6].text) != "REFERENCES" ||
      t[8].text != "(" || t[10].text != ")") {
    return "error: FOREIGN KEY table (field) REFERENCES target (field)";
  }
  Status s =
      db_->DeclareForeignKey(t[2].text, t[4].text, t[7].text, t[9].text);
  if (!s.ok()) return "error: " + s.ToString();
  return "ok: foreign key " + t[2].text + "." + t[4].text + " -> " +
         t[7].text + "." + t[9].text;
}

std::string CommandShell::RunInsert(const std::vector<Token>& t) {
  // INSERT INTO table VALUES ( literal [, literal]* )
  if (t.size() < 7 || Upper(t[1].text) != "INTO" ||
      Upper(t[3].text) != "VALUES" || t[4].text != "(" ||
      t.back().text != ")") {
    return "error: INSERT INTO table VALUES (...)";
  }
  std::vector<Value> values;
  size_t i = 5;
  while (i < t.size() && t[i].text != ")") {
    values.push_back(ParseLiteral(t[i]));
    ++i;
    if (i < t.size() && t[i].text == ",") ++i;
  }
  if (db_->Insert(t[2].text, std::move(values)) == nullptr) {
    return "error: insert rejected (arity, unique index, or foreign key)";
  }
  return "ok: 1 row";
}

std::string CommandShell::RunSelect(const std::vector<Token>& t,
                                    bool explain_only, bool analyze) {
  // SELECT cols FROM table [JOIN t2 ON lf = rf] [WHERE cond (AND cond)*]
  //        [DISTINCT] [ORDERED]
  if (t.empty() || Upper(t[0].text) != "SELECT") {
    return "error: expected SELECT";
  }
  size_t i = 1;
  std::vector<std::string> columns;
  while (i < t.size() && !TokenIs(t[i], "FROM")) {
    if (t[i].text != "," && t[i].text != "*") columns.push_back(t[i].text);
    ++i;
  }
  if (i >= t.size()) return "error: expected FROM";
  ++i;
  if (i >= t.size()) return "error: expected table after FROM";
  const std::string table = t[i++].text;

  std::string joined;
  QueryBuilder builder = db_->Query(table);
  if (i < t.size() && TokenIs(t[i], "JOIN")) {
    ++i;
    if (i + 5 > t.size()) return "error: JOIN t2 ON lf = rf";
    joined = t[i++].text;
    if (!TokenIs(t[i], "ON")) return "error: expected ON";
    ++i;
    const std::string lf = t[i++].text;
    if (t[i].text != "=") return "error: join condition must be equality";
    ++i;
    const std::string rf = t[i++].text;
    builder.JoinWith(joined, lf, rf);
  }

  if (i < t.size() && TokenIs(t[i], "WHERE")) {
    ++i;
    for (;;) {
      std::string error;
      if (!ParseBuilderCondition(t, &i, table, joined, &builder, &error)) {
        return "error: " + error;
      }
      if (i < t.size() && TokenIs(t[i], "AND")) {
        ++i;
        continue;
      }
      break;
    }
  }
  while (i < t.size()) {
    if (TokenIs(t[i], "DISTINCT")) {
      builder.Distinct();
      ++i;
    } else if (TokenIs(t[i], "ORDERED")) {
      builder.OrderBySelected();
      ++i;
    } else {
      return "error: unexpected trailing token " + t[i].text;
    }
  }

  if (!columns.empty()) builder.Select(columns);
  if (analyze) builder.Analyze();
  QueryResult result = builder.Run();
  if (result.plan.rfind("error", 0) == 0) return result.plan;
  if (analyze) {
    // EXPLAIN ANALYZE: the query ran; report the per-operator tree, not
    // the rows.
    return result.analyze.Render() + "(" + std::to_string(result.rows.size()) +
           " rows)";
  }
  if (explain_only) return "plan: " + result.plan;

  std::ostringstream os;
  const auto& cols = result.rows.descriptor().columns();
  for (size_t c = 0; c < cols.size(); ++c) {
    os << (c ? " | " : "") << cols[c].label;
  }
  os << "\n";
  for (size_t r = 0; r < result.rows.size(); ++r) {
    os << result.rows.RowToString(r) << "\n";
  }
  os << "(" << result.rows.size() << " rows)  [" << result.plan << "]";
  return os.str();
}

std::string CommandShell::RunUpdate(const std::vector<Token>& t) {
  // UPDATE table SET field = literal [WHERE cond (AND cond)*]
  if (t.size() < 6 || Upper(t[2].text) != "SET" || t[4].text != "=") {
    return "error: UPDATE table SET field = literal [WHERE ...]";
  }
  Relation* rel = db_->GetTable(t[1].text);
  if (rel == nullptr) return "error: no table " + t[1].text;
  const std::string& field = t[3].text;
  if (!rel->schema().FieldIndex(field).has_value()) {
    return "error: no field " + field;
  }
  const Value new_value = ParseLiteral(t[5]);

  Predicate pred;
  size_t i = 6;
  if (i < t.size() && TokenIs(t[i], "WHERE")) {
    ++i;
    std::string error;
    if (!ParsePredicate(t, &i, *rel, &pred, &error)) return "error: " + error;
  }
  if (i != t.size()) return "error: unexpected trailing token " + t[i].text;

  TempList hits = Select(*rel, pred);
  size_t updated = 0;
  for (size_t r = 0; r < hits.size(); ++r) {
    if (db_->Update(t[1].text, hits.At(r, 0), field, new_value).ok()) {
      ++updated;
    }
  }
  std::ostringstream os;
  os << "ok: " << updated << " rows updated";
  return os.str();
}

std::string CommandShell::RunDelete(const std::vector<Token>& t) {
  // DELETE FROM table [WHERE cond (AND cond)*]
  if (t.size() < 3 || Upper(t[1].text) != "FROM") {
    return "error: DELETE FROM table [WHERE ...]";
  }
  Relation* rel = db_->GetTable(t[2].text);
  if (rel == nullptr) return "error: no table " + t[2].text;

  Predicate pred;
  size_t i = 3;
  if (i < t.size() && TokenIs(t[i], "WHERE")) {
    ++i;
    std::string error;
    if (!ParsePredicate(t, &i, *rel, &pred, &error)) return "error: " + error;
  }
  if (i != t.size()) return "error: unexpected trailing token " + t[i].text;

  TempList hits = Select(*rel, pred);
  size_t deleted = 0;
  for (size_t r = 0; r < hits.size(); ++r) {
    if (db_->Delete(t[2].text, hits.At(r, 0)).ok()) ++deleted;
  }
  std::ostringstream os;
  os << "ok: " << deleted << " rows deleted";
  return os.str();
}

std::string CommandShell::RunShowTables() {
  std::ostringstream os;
  const std::vector<std::string> names = db_->catalog().List();
  for (const std::string& name : names) {
    Relation* rel = db_->GetTable(name);
    os << name << " (" << rel->cardinality() << " rows, "
       << rel->indexes().size() << " indexes)\n";
  }
  os << "(" << names.size() << " tables)";
  return os.str();
}

std::string CommandShell::RunDescribe(const std::vector<Token>& t) {
  if (t.size() < 2) return "error: DESCRIBE table";
  Relation* rel = db_->GetTable(t[1].text);
  if (rel == nullptr) return "error: no table " + t[1].text;
  std::ostringstream os;
  os << rel->name() << " (" << rel->schema().ToString() << ")\n";
  for (const auto& index : rel->indexes()) {
    os << "  index " << index->name() << " [" << IndexKindName(index->kind())
       << (index->unique() ? ", unique" : "") << "]\n";
  }
  for (const ForeignKeyDecl& fk : rel->foreign_keys()) {
    os << "  foreign key " << rel->schema().field(fk.field).name << " -> "
       << fk.target->name() << "."
       << fk.target->schema().field(fk.target_field).name << "\n";
  }
  os << "(" << rel->cardinality() << " rows in " << rel->partitions().size()
     << " partitions)";
  return os.str();
}

std::string CommandShell::RunMetrics() {
  // Publish the sampled series (accumulated OpCounters) so the scrape is
  // current, then render everything the registry holds.
  counters::PublishGauges(&db_->metrics());
  return db_->metrics().RenderPrometheus();
}

std::string CommandShell::RunCache(const std::vector<Token>& t) {
  cache::ReuseCache& rc = db_->reuse_cache();
  if (t.size() == 2) {
    const std::string sub = Upper(t[1].text);
    if (sub == "ON") {
      rc.SetEnabled(true);
      return "ok: cache on";
    }
    if (sub == "OFF") {
      // SetEnabled(false) also flushes, so re-enabling starts cold.
      rc.SetEnabled(false);
      return "ok: cache off";
    }
    if (sub == "STATS") {
      const cache::CacheStats s = rc.Stats();
      std::ostringstream os;
      os << "cache: " << (s.enabled ? "on" : "off") << "\n"
         << "hits: " << s.hits << "\n"
         << "misses: " << s.misses << "\n"
         << "fills: " << s.fills << "\n"
         << "invalidations: " << s.invalidations << "\n"
         << "evictions: " << s.evictions << "\n"
         << "entries: " << s.entries << "\n"
         << "bytes: " << s.bytes << " / " << s.budget_bytes;
      return os.str();
    }
  }
  return "error: CACHE ON | CACHE OFF | CACHE STATS";
}

std::string CommandShell::RunTrace(const std::vector<Token>& t) {
  if (t.size() >= 2) {
    const std::string sub = Upper(t[1].text);
    if (sub == "ON" && t.size() == 2) {
      trace::Enable();
      return "ok: tracing on";
    }
    if (sub == "OFF" && t.size() == 2) {
      trace::Disable();
      return "ok: tracing off";
    }
    if (sub == "DUMP" && t.size() == 3) {
      std::string error;
      if (!trace::WriteChromeJson(t[2].text, &error)) {
        return "error: " + error;
      }
      std::ostringstream os;
      os << "ok: wrote " << trace::Snapshot().size() << " spans to "
         << t[2].text;
      return os.str();
    }
  }
  return "error: TRACE ON | TRACE OFF | TRACE DUMP 'path'";
}

CommandShell::CommandShell(Database* db) : db_(db) {}

CommandShell::~CommandShell() {
  // Server before service: the server's Stop() drains in-flight completion
  // callbacks, which still reference the service.
  serve_server_.reset();
  serve_service_.reset();
}

uint16_t CommandShell::serving_port() const {
  return serve_server_ != nullptr ? serve_server_->port() : 0;
}

std::string CommandShell::RunServe(const std::vector<Token>& t) {
  if (t.size() == 2 && TokenIs(t[1], "OFF")) {
    if (serve_server_ == nullptr) return "error: not serving";
    serve_server_.reset();  // Stop() drains before the service goes away
    serve_service_.reset();
    return "ok: serve off";
  }
  if (t.size() != 2 || t[1].quoted) return "error: SERVE <port> | SERVE OFF";
  if (serve_server_ != nullptr) {
    return "error: already serving on port " +
           std::to_string(serve_server_->port());
  }
  unsigned long port;
  try {
    port = std::stoul(t[1].text);
  } catch (const std::exception&) {
    return "error: SERVE <port> | SERVE OFF";
  }
  if (port > 65535) return "error: port out of range";

  auto service = std::make_unique<QueryService>(db_);
  net::ServerOptions options;
  options.port = static_cast<uint16_t>(port);
  auto server = std::make_unique<net::Server>(service.get(), options);
  if (repl_source_ != nullptr) {
    repl::ReplSource* source = repl_source_;
    server->set_repl_handler([source](const std::string& request) {
      return source->HandleRequest(request);
    });
  }
  Status s = server->Start();
  if (!s.ok()) return "error: " + s.ToString();
  serve_service_ = std::move(service);
  serve_server_ = std::move(server);
  return "ok: serving on port " + std::to_string(serve_server_->port());
}

std::string CommandShell::RunSlowLog() { return flight::SlowLogText(); }

std::string CommandShell::RunFlight() { return flight::FlightText(); }

std::string CommandShell::RunStatus() {
  // Replication lines ride along whichever form of STATUS applies.
  std::string repl;
  if (replica_ != nullptr) repl += replica_->StatusText();
  if (repl_source_ != nullptr) repl += repl_source_->StatusText();

  // The full one-pager needs a QueryService (queue depth, workers, WAL
  // lag...); without an active SERVE, report what the process still knows.
  if (serve_service_ != nullptr) {
    return serve_service_->StatusText() + repl +
           "serving_port: " + std::to_string(serve_server_->port());
  }
  std::ostringstream os;
  const cache::CacheStats cs = db_->reuse_cache().Stats();
  os << "serving: off\n"
     << repl << "flight_recorded: " << flight::TotalRecorded() << "\n"
     << "flight_slow: " << flight::TotalSlow() << "\n"
     << "cache_enabled: " << (cs.enabled ? 1 : 0) << "\n"
     << "cache_entries: " << cs.entries << "\n"
     << "cache_bytes: " << cs.bytes;
  return os.str();
}

std::string CommandShell::RunPromote() {
  if (replica_ == nullptr) {
    return "error: PROMOTE only applies to a replica (--replica-of)";
  }
  Status s = replica_->Promote();
  if (!s.ok()) return "error: " + s.ToString();
  return "ok: promoted to primary";
}

}  // namespace mmdb
