// CommandShell: a small textual command language over the Database facade,
// for interactive exploration (examples/mmdb_shell) and scripted use.  Not
// SQL — a deliberately tiny grammar that maps 1:1 onto the public API:
//
//   CREATE TABLE emp (name STRING, id INT, age INT, dept_id POINTER);
//   CREATE INDEX ON emp (age) USING TTREE [UNIQUE] [NODESIZE 16];
//   FOREIGN KEY emp (dept_id) REFERENCES dept (id);
//   INSERT INTO emp VALUES ('Al', 51, 67, 409);
//   SELECT emp.name, emp.dept_id.name FROM emp WHERE age > 65;
//   SELECT emp.name FROM emp JOIN dept ON dept_id = id
//       WHERE dept.name = 'Toy' [DISTINCT] [ORDERED];
//   UPDATE emp SET age = 68 WHERE name = 'Al';
//   DELETE FROM emp WHERE age < 25;
//   SHOW TABLES;         DESCRIBE emp;
//   CHECKPOINT;          CRASH;          -- checkpoint / simulated crash
//   DURABILITY '/data/mmdb' SYNC;        -- file-backed WAL (SYNC|ASYNC|OFF)
//   RECOVER '/data/mmdb';                -- rebuild empty db from that dir
//   EXPLAIN SELECT ...;                  -- plan without rows
//   EXPLAIN ANALYZE SELECT ...;          -- run + per-operator stats tree
//   METRICS;                             -- Prometheus text exposition
//   CACHE ON; CACHE OFF; CACHE STATS;    -- reuse cache toggle / counters
//   TRACE ON; TRACE OFF;                 -- toggle span recording
//   TRACE DUMP 'trace.json';             -- chrome://tracing JSON
//   SLOWLOG;                             -- recent over-threshold requests
//   FLIGHT;                              -- flight-recorder ring snapshot
//   STATUS;                              -- server health one-pager
//   SERVE 7700;                          -- expose this db over TCP
//   SERVE 0;                             -- ... on an ephemeral port
//   SERVE OFF;                           -- stop serving
//   PROMOTE;                             -- replica only: become primary
//
// Strings are single-quoted; numbers with a '.' parse as doubles; WHERE
// conditions are AND-conjunctions of `field op literal` (a `table.` prefix
// routes a condition to the joined table).

#ifndef MMDB_CORE_SHELL_H_
#define MMDB_CORE_SHELL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/database.h"
#include "src/repl/repl_iface.h"

namespace mmdb {

class QueryService;
namespace net {
class Server;
}  // namespace net

class CommandShell {
 public:
  /// Constructor and destructor live in shell.cc where QueryService and
  /// net::Server are complete types (the unique_ptr members need them
  /// even for the constructor's exception-cleanup path).  The destructor
  /// stops an active SERVE: server first, then its query service.
  explicit CommandShell(Database* db);
  ~CommandShell();

  /// Executes one statement (with or without trailing ';'); returns the
  /// printable result, or a line starting with "error:" on failure.
  std::string Execute(const std::string& statement);

  /// Splits on ';' (respecting quotes) and executes each statement;
  /// returns the concatenated outputs.
  std::string ExecuteScript(const std::string& script);

  /// One lexical token of a statement (exposed for the parser helpers).
  struct Token {
    std::string text;
    bool quoted = false;  // was a 'string literal'
  };

  static std::vector<Token> Tokenize(const std::string& statement,
                                     std::string* error);
  static Value ParseLiteral(const Token& token);

  /// Port the active SERVE is bound to, or 0 when not serving (tests that
  /// SERVE with port 0 read the ephemeral port back through this).
  uint16_t serving_port() const;

  /// Wires a log-shipping source (the primary's Shipper) into any SERVE:
  /// the server answers kReplRequest frames by delegating to it.  Not
  /// owned; must outlive the shell.
  void set_repl_source(repl::ReplSource* source) { repl_source_ = source; }

  /// Wires the replica control so PROMOTE works and STATUS reports
  /// replication state.  Not owned; must outlive the shell.
  void set_replica(repl::ReplicaControl* replica) { replica_ = replica; }

 private:
  std::string RunCreate(const std::vector<Token>& t);
  std::string RunForeignKey(const std::vector<Token>& t);
  std::string RunInsert(const std::vector<Token>& t);
  std::string RunSelect(const std::vector<Token>& t, bool explain_only,
                        bool analyze);
  std::string RunUpdate(const std::vector<Token>& t);
  std::string RunDelete(const std::vector<Token>& t);
  std::string RunShowTables();
  std::string RunDescribe(const std::vector<Token>& t);
  std::string RunMetrics();
  std::string RunCache(const std::vector<Token>& t);
  std::string RunTrace(const std::vector<Token>& t);
  std::string RunServe(const std::vector<Token>& t);
  std::string RunSlowLog();
  std::string RunFlight();
  std::string RunStatus();
  std::string RunPromote();

  Database* db_;
  repl::ReplSource* repl_source_ = nullptr;
  repl::ReplicaControl* replica_ = nullptr;
  /// SERVE state: a query service + network front end over db_.  The
  /// server must stop before the service (declaration order handles the
  /// default teardown; RunServe handles explicit SERVE OFF).
  std::unique_ptr<QueryService> serve_service_;
  std::unique_ptr<net::Server> serve_server_;
};

}  // namespace mmdb

#endif  // MMDB_CORE_SHELL_H_
