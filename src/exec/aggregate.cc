#include "src/exec/aggregate.h"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "src/storage/tuple.h"
#include "src/util/counters.h"
#include "src/util/hash.h"

namespace mmdb {
namespace {

/// Running state for one aggregate in one group.
struct Accumulator {
  int64_t count = 0;
  int64_t int_sum = 0;
  double double_sum = 0;
  bool is_double = false;
  bool has_extreme = false;
  Value extreme;  // min or max so far
};

int CompareRowsOn(const TempList& list, size_t r1, size_t r2,
                  const std::vector<size_t>& columns) {
  const ResultDescriptor& desc = list.descriptor();
  for (size_t c : columns) {
    TupleRef t1 = list.ResolveColumnTuple(r1, c);
    TupleRef t2 = list.ResolveColumnTuple(r2, c);
    if (t1 == nullptr || t2 == nullptr) {
      if (t1 != t2) return t1 == nullptr ? -1 : 1;
      continue;
    }
    int cmp = tuple::CompareField(t1, t2, *desc.ColumnSchema(c),
                                  desc.ColumnField(c));
    if (cmp != 0) return cmp;
  }
  return 0;
}

uint64_t HashRowOn(const TempList& list, size_t r,
                   const std::vector<size_t>& columns) {
  const ResultDescriptor& desc = list.descriptor();
  uint64_t h = 0x9E3779B97F4A7C15ULL;
  for (size_t c : columns) {
    TupleRef t = list.ResolveColumnTuple(r, c);
    const uint64_t hc =
        t == nullptr
            ? 0
            : tuple::HashField(t, *desc.ColumnSchema(c), desc.ColumnField(c));
    h = HashMix64(h ^ hc);
  }
  return h;
}

void Accumulate(Accumulator* acc, AggFn fn, const Value& v) {
  ++acc->count;
  switch (fn) {
    case AggFn::kCount:
      break;
    case AggFn::kSum:
    case AggFn::kAvg:
      switch (v.type()) {
        case Type::kInt32: acc->int_sum += v.AsInt32(); break;
        case Type::kInt64: acc->int_sum += v.AsInt64(); break;
        case Type::kDouble:
          acc->double_sum += v.AsDouble();
          acc->is_double = true;
          break;
        default:
          assert(false && "kSum/kAvg need a numeric column");
      }
      break;
    case AggFn::kMin:
      if (!acc->has_extreme || v.Compare(acc->extreme) < 0) {
        acc->extreme = v;
        acc->has_extreme = true;
      }
      break;
    case AggFn::kMax:
      if (!acc->has_extreme || v.Compare(acc->extreme) > 0) {
        acc->extreme = v;
        acc->has_extreme = true;
      }
      break;
  }
}

Value Finalize(const Accumulator& acc, AggFn fn) {
  switch (fn) {
    case AggFn::kCount:
      return Value(acc.count);
    case AggFn::kSum:
      return acc.is_double ? Value(acc.double_sum) : Value(acc.int_sum);
    case AggFn::kAvg: {
      const double total =
          acc.is_double ? acc.double_sum : static_cast<double>(acc.int_sum);
      return Value(acc.count == 0 ? 0.0 : total / acc.count);
    }
    case AggFn::kMin:
    case AggFn::kMax:
      return acc.extreme;
  }
  return Value();
}

}  // namespace

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kCount: return "count";
    case AggFn::kSum: return "sum";
    case AggFn::kMin: return "min";
    case AggFn::kMax: return "max";
    case AggFn::kAvg: return "avg";
  }
  return "?";
}

std::string AggregateResult::RowToString(size_t r) const {
  std::ostringstream os;
  os << "(";
  bool first = true;
  for (const Value& v : rows[r].group) {
    if (!first) os << ", ";
    os << v.ToString();
    first = false;
  }
  for (const Value& v : rows[r].aggregates) {
    if (!first) os << ", ";
    os << v.ToString();
    first = false;
  }
  os << ")";
  return os.str();
}

AggregateResult HashGroupBy(const TempList& in,
                            const std::vector<size_t>& group_columns,
                            const std::vector<AggSpec>& aggregates,
                            ExecMode mode) {
  const ResultDescriptor& desc = in.descriptor();
  AggregateResult result;
  for (size_t c : group_columns) {
    result.group_labels.push_back(desc.columns()[c].label);
  }
  for (const AggSpec& spec : aggregates) {
    if (!spec.label.empty()) {
      result.agg_labels.push_back(spec.label);
    } else if (spec.fn == AggFn::kCount) {
      result.agg_labels.push_back("count(*)");
    } else {
      result.agg_labels.push_back(std::string(AggFnName(spec.fn)) + "(" +
                                  desc.columns()[spec.column].label + ")");
    }
  }

  struct Group {
    size_t representative;  // first row of the group
    std::vector<Accumulator> accs;
    int64_t next = -1;
  };
  const size_t n = in.size();
  const size_t buckets = n / 2 < 1 ? 1 : n / 2;  // the Section 3.4 sizing
  std::vector<int64_t> heads(buckets, -1);
  std::vector<Group> groups;

  auto feed = [&](Group* g, size_t row) {
    for (size_t a = 0; a < aggregates.size(); ++a) {
      const AggSpec& spec = aggregates[a];
      Value v;
      if (spec.fn != AggFn::kCount) v = in.GetValue(row, spec.column);
      Accumulate(&g->accs[a], spec.fn, v);
    }
  };

  auto absorb = [&](size_t r, size_t b) {
    Group* found = nullptr;
    for (int64_t e = heads[b]; e != -1; e = groups[e].next) {
      if (CompareRowsOn(in, groups[e].representative, r, group_columns) == 0) {
        found = &groups[e];
        break;
      }
    }
    if (found == nullptr) {
      Group g;
      g.representative = r;
      g.accs.resize(aggregates.size());
      g.next = heads[b];
      heads[b] = static_cast<int64_t>(groups.size());
      groups.push_back(std::move(g));
      found = &groups.back();
    }
    feed(found, r);
  };
  if (mode == ExecMode::kBatched) {
    // Hash a sub-chunk of rows up front and prefetch their group-table
    // bucket heads, overlapping the chain-walk misses.  Hash calls and key
    // comparisons per row are identical to the scalar loop.
    constexpr size_t kSub = 256;
    size_t bs[kSub];
    for (size_t base = 0; base < n; base += kSub) {
      counters::BumpChunks();
      const size_t m = std::min(kSub, n - base);
      for (size_t i = 0; i < m; ++i) {
        bs[i] = HashRowOn(in, base + i, group_columns) % buckets;
        PrefetchRead(&heads[bs[i]]);
      }
      for (size_t i = 0; i < m; ++i) absorb(base + i, bs[i]);
    }
  } else {
    for (size_t r = 0; r < n; ++r) {
      absorb(r, HashRowOn(in, r, group_columns) % buckets);
    }
  }

  // A global aggregate (no group columns) over empty input still yields one
  // row — COUNT(*) of nothing is 0.
  if (groups.empty() && group_columns.empty() && !aggregates.empty()) {
    Group g;
    g.representative = 0;
    g.accs.resize(aggregates.size());
    groups.push_back(std::move(g));
  }

  result.rows.reserve(groups.size());
  for (const Group& g : groups) {
    AggregateRow row;
    if (!groups.empty() && n > 0) {
      for (size_t c : group_columns) {
        row.group.push_back(in.GetValue(g.representative, c));
      }
    }
    for (size_t a = 0; a < aggregates.size(); ++a) {
      row.aggregates.push_back(Finalize(g.accs[a], aggregates[a].fn));
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

}  // namespace mmdb
