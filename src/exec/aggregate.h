// Hash-based grouping and aggregation over temporary lists.
//
// The paper stops at duplicate elimination, but its argument — "hashing is
// the dominant algorithm for processing projections in main memory" —
// extends directly to GROUP BY: grouping is duplicate elimination that
// keeps accumulators instead of discarding the duplicates.  The group table
// is chained and sized |R|/2 like the Section 3.4 projection table.
//
// Aggregate outputs are computed Values (not tuple pointers), so the result
// is materialized rows rather than a TempList.

#ifndef MMDB_EXEC_AGGREGATE_H_
#define MMDB_EXEC_AGGREGATE_H_

#include <string>
#include <vector>

#include "src/exec/chunk.h"
#include "src/storage/temp_list.h"

namespace mmdb {

enum class AggFn { kCount, kSum, kMin, kMax, kAvg };

const char* AggFnName(AggFn fn);

/// One requested aggregate: fn applied to an output column of the input
/// list (ignored for kCount).
struct AggSpec {
  AggFn fn = AggFn::kCount;
  size_t column = 0;
  std::string label;  ///< optional; defaults to "fn(column-label)"
};

/// One output row: the group's key values followed by its aggregates.
struct AggregateRow {
  std::vector<Value> group;
  std::vector<Value> aggregates;
};

struct AggregateResult {
  std::vector<std::string> group_labels;
  std::vector<std::string> agg_labels;
  std::vector<AggregateRow> rows;

  std::string RowToString(size_t r) const;
};

/// Groups `in` by the given output columns (empty = one global group, which
/// is returned even for empty input when aggregates like COUNT ask for it)
/// and computes the aggregates per group.  Numeric aggregates (kSum, kAvg)
/// require int32/int64/double columns; kMin/kMax accept any comparable
/// column type; kCount accepts anything.
/// In batched mode input rows are hashed a chunk at a time with group-table
/// bucket prefetch; output rows/order and counted work match tuple-at-a-time.
AggregateResult HashGroupBy(const TempList& in,
                            const std::vector<size_t>& group_columns,
                            const std::vector<AggSpec>& aggregates,
                            ExecMode mode = DefaultExecMode());

}  // namespace mmdb

#endif  // MMDB_EXEC_AGGREGATE_H_
