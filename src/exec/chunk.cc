#include "src/exec/chunk.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace mmdb {
namespace {
std::atomic<int> g_exec_mode_override{-1};
}  // namespace

ExecMode DefaultExecMode() {
  const int o = g_exec_mode_override.load(std::memory_order_relaxed);
  if (o >= 0) return static_cast<ExecMode>(o);
  static const ExecMode mode = [] {
    const char* env = std::getenv("MMDB_EXEC");
    if (env != nullptr &&
        (std::strcmp(env, "TUPLE") == 0 || std::strcmp(env, "SCALAR") == 0)) {
      return ExecMode::kTuple;
    }
    return ExecMode::kBatched;
  }();
  return mode;
}

void SetExecModeForTest(ExecMode mode) {
  g_exec_mode_override.store(static_cast<int>(mode),
                             std::memory_order_relaxed);
}

void ClearExecModeForTest() {
  g_exec_mode_override.store(-1, std::memory_order_relaxed);
}

const char* ExecModeName(ExecMode mode) {
  switch (mode) {
    case ExecMode::kBatched: return "batched";
    case ExecMode::kTuple: return "tuple-at-a-time";
  }
  return "?";
}

}  // namespace mmdb
