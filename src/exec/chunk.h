// Batched (vectorized) execution support.  Operators in src/exec/ process
// tuple pointers in *chunks* of up to kChunkCapacity refs at a time instead
// of one at a time: a chunk is a plain TupleRef array plus a *selection
// vector* of uint16_t positions identifying the rows still alive after
// predicate refinement.  Chunking amortizes per-tuple call overhead and —
// the real win in main memory — lets probe loops issue software prefetches
// a full chunk ahead, overlapping the cache misses that dominate pointer-
// chasing operators (cf. the cache-conscious sort/join and dynamic hybrid
// hash join literature in PAPERS.md).
//
// Every batched operator is required to produce *bit-identical output in
// identical order* to its tuple-at-a-time counterpart, and to bump the same
// OpCounters (comparisons/hash calls) it would have bumped scalar — batching
// changes memory access patterns, never semantics.  tests/exec_parity_test.cc
// enforces this differentially.

#ifndef MMDB_EXEC_CHUNK_H_
#define MMDB_EXEC_CHUNK_H_

#include <cstddef>
#include <cstdint>

namespace mmdb {

/// Rows per chunk.  1K tuple pointers = 8 KiB of refs + 2 KiB of selection
/// vector: small enough to stay L1-resident, large enough to amortize the
/// per-chunk bookkeeping (the 1-4K sweet spot from the vectorized-execution
/// literature).
inline constexpr size_t kChunkCapacity = 1024;

/// Selection-vector entry: a position within one chunk.  uint16_t suffices
/// because kChunkCapacity <= 65536.
using SelIdx = uint16_t;

/// Which executor variant to run.  kBatched is the default; kTuple is the
/// retained tuple-at-a-time reference path, kept callable forever so the
/// differential parity test can diff the two and benches can measure the
/// gap.
enum class ExecMode {
  kBatched,
  kTuple,
};

/// Process default, from the MMDB_EXEC environment variable (read once):
/// "TUPLE" or "SCALAR" selects the tuple-at-a-time reference path; anything
/// else (including unset) selects batched execution.
ExecMode DefaultExecMode();

/// Test hook: overrides DefaultExecMode() process-wide until cleared, so
/// the differential parity test can run the same query pipeline under both
/// modes in one process.  Not for production use.
void SetExecModeForTest(ExecMode mode);
void ClearExecModeForTest();

const char* ExecModeName(ExecMode mode);

/// Portable software-prefetch wrapper (read intent, low temporal locality —
/// probe targets are touched once per probe).
inline void PrefetchRead(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/1);
#else
  (void)p;
#endif
}

}  // namespace mmdb

#endif  // MMDB_EXEC_CHUNK_H_
