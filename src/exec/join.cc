#include "src/exec/join.h"

#include <cassert>
#include <cstdlib>
#include <set>
#include <utility>

#include "src/exec/select.h"
#include "src/storage/tuple.h"
#include "src/util/counters.h"

namespace mmdb {

namespace joinmem {
namespace {

size_t EnvBytes(const char* name, size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env || v == 0) return fallback;
  return static_cast<size_t>(v);
}

size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

size_t BudgetBytes() {
  static const size_t bytes =
      EnvBytes("MMDB_JOIN_MEM_BYTES", size_t{64} << 20);
  return bytes;
}

size_t L2TargetBytes() {
  static const size_t bytes =
      EnvBytes("MMDB_JOIN_L2_BYTES", size_t{256} << 10);
  return bytes;
}

size_t EstimateBuildBytes(size_t rows) {
  // One 16-byte chain entry per row plus the pow2-sized slot array.
  return rows * 16 + NextPow2(rows < 1 ? 1 : rows) * sizeof(void*);
}

size_t ChoosePartitions(size_t build_bytes, size_t target) {
  if (target == 0) return 1;
  const size_t need = (build_bytes + target - 1) / target;
  return NextPow2(need < 1 ? 1 : need);
}

}  // namespace joinmem

namespace {

ResultDescriptor JoinSources(const JoinSpec& spec) {
  return ResultDescriptor({spec.outer, spec.inner});
}

/// Partition of a key hash: the *high* 32 bits, masked.  Bucket choice
/// inside each chained-bucket hash uses the low bits (BucketOf = h & mask),
/// so routing by the high bits steals no bucket entropy — low bits stay
/// fully distributed within every partition.
size_t RouteOf(uint64_t hash, size_t partition_mask) {
  return static_cast<size_t>(hash >> 32) & partition_mask;
}

/// Chunked probe driver for chained-bucket hash joins: gathers outer tuple
/// refs into kChunkCapacity chunks, materializes the join keys per chunk,
/// and hands the whole chunk to ChainedBucketHash::FindAllBatch — bucket
/// slots and chain heads are prefetched a batch ahead of the compare work.
/// Emission order (outer scan order; chain order within a key) is identical
/// to per-tuple FindAll probes.
class ChunkedProber {
 public:
  ChunkedProber(const ChainedBucketHash* table, const Schema& outer_schema,
                size_t outer_field, TempList* out)
      : table_(table),
        schema_(outer_schema),
        field_(outer_field),
        out_(out),
        keys_(kChunkCapacity) {}

  void Add(TupleRef ot) {
    refs_[n_++] = ot;
    if (n_ == kChunkCapacity) Flush();
  }

  void Flush() {
    if (n_ == 0) return;
    counters::BumpChunks();
    for (size_t i = 0; i < n_; ++i) {
      keys_[i] = tuple::GetValue(refs_[i], schema_, field_);
    }
    table_->FindAllBatch(keys_.data(), n_, [&](size_t i, TupleRef it) {
      out_->Append2(refs_[i], it);
    });
    n_ = 0;
  }

 private:
  const ChainedBucketHash* table_;
  const Schema& schema_;
  size_t field_;
  TempList* out_;
  std::vector<Value> keys_;
  TupleRef refs_[kChunkCapacity];
  size_t n_ = 0;
};

/// Chunked probe driver for the *partitioned* hash-join family: like
/// ChunkedProber, but each key is routed to its partition's table by the
/// high hash bits.  Works in sub-batches: pass 1 hashes the keys (one
/// counted hash call each, exactly what a scalar probe pays) and prefetches
/// each key's bucket slot in its partition; pass 2 walks the chains in key
/// order, so output order matches the scalar routed loop row for row.
class RoutedProber {
 public:
  RoutedProber(const std::vector<std::unique_ptr<ChainedBucketHash>>* tables,
               size_t partition_mask, const Schema& outer_schema,
               size_t outer_field, TempList* out)
      : tables_(tables),
        mask_(partition_mask),
        schema_(outer_schema),
        field_(outer_field),
        out_(out),
        keys_(kChunkCapacity) {}

  void Add(TupleRef ot) {
    refs_[n_++] = ot;
    if (n_ == kChunkCapacity) Flush();
  }

  void Flush() {
    if (n_ == 0) return;
    counters::BumpChunks();
    const ChainedBucketHash* t0 = (*tables_)[0].get();
    constexpr size_t kSub = 256;
    uint64_t hashes[kSub];
    size_t routes[kSub];
    for (size_t base = 0; base < n_; base += kSub) {
      const size_t m = std::min(kSub, n_ - base);
      for (size_t i = 0; i < m; ++i) {
        keys_[i] = tuple::GetValue(refs_[base + i], schema_, field_);
        hashes[i] = t0->HashOf(keys_[i]);
        routes[i] = RouteOf(hashes[i], mask_);
        (*tables_)[routes[i]]->PrefetchBucket(hashes[i]);
      }
      for (size_t i = 0; i < m; ++i) {
        const TupleRef ot = refs_[base + i];
        (*tables_)[routes[i]]->FindAllHashed(
            keys_[i], hashes[i], [&](TupleRef it) { out_->Append2(ot, it); });
      }
    }
    n_ = 0;
  }

 private:
  const std::vector<std::unique_ptr<ChainedBucketHash>>* tables_;
  size_t mask_;
  const Schema& schema_;
  size_t field_;
  TempList* out_;
  std::vector<Value> keys_;
  TupleRef refs_[kChunkCapacity];
  size_t n_ = 0;
};

/// (key, tuple) pair for the key-extraction sort-merge fast path.
template <typename K>
struct KeyRef {
  K key;
  TupleRef ref;
};

/// Sequence adapter over a sorted TupleRef array.
struct ArraySeq {
  const TupleRef* data;
  size_t n;
  size_t pos = 0;

  bool Valid() const { return pos < n; }
  TupleRef Get() const { return data[pos]; }
  void Next() { ++pos; }
  using Mark = size_t;
  Mark Snapshot() const { return pos; }
  void Restore(Mark m) { pos = m; }
};

/// Sequence adapter over a sorted KeyRef array (batched sort-merge).
template <typename K>
struct KeyedSeq {
  const KeyRef<K>* data;
  size_t n;
  size_t pos = 0;

  bool Valid() const { return pos < n; }
  const KeyRef<K>& Get() const { return data[pos]; }
  void Next() { ++pos; }
  using Mark = size_t;
  Mark Snapshot() const { return pos; }
  void Restore(Mark m) { pos = m; }
};

/// Sequence adapter over an ordered-index cursor.
struct CursorSeq {
  std::unique_ptr<OrderedIndex::Cursor> cursor;

  bool Valid() const { return cursor->Valid(); }
  TupleRef Get() const { return cursor->Get(); }
  void Next() { cursor->Next(); }
  using Mark = std::shared_ptr<OrderedIndex::Cursor>;
  Mark Snapshot() const { return Mark(cursor->Clone()); }
  void Restore(const Mark& m) { cursor = m->Clone(); }
};

/// Merge join core [BlE77]: both sequences ordered on the join key.  The
/// inner sequence is rewound (Restore) across runs of equal outer keys so
/// duplicate x duplicate cross products are emitted.
template <typename SeqA, typename SeqB, typename CmpAB, typename CmpAA,
          typename Emit>
void MergeJoinGeneric(SeqA& a, SeqB& b, const CmpAB& cmp_ab,
                      const CmpAA& cmp_aa, const Emit& emit) {
  while (a.Valid() && b.Valid()) {
    int c = cmp_ab(a.Get(), b.Get());
    if (c < 0) {
      a.Next();
      continue;
    }
    if (c > 0) {
      b.Next();
      continue;
    }
    auto mark = b.Snapshot();
    for (;;) {
      const auto av = a.Get();
      while (b.Valid() && cmp_ab(av, b.Get()) == 0) {
        emit(av, b.Get());
        b.Next();
      }
      a.Next();
      if (!a.Valid() || cmp_aa(a.Get(), av) != 0) break;
      b.Restore(mark);
    }
  }
}

}  // namespace

std::unique_ptr<ArrayIndex> BuildSortedArray(const Relation& rel, size_t field,
                                             int insertion_cutoff) {
  auto ops = std::make_shared<FieldKeyOps>(&rel.schema(), field);
  IndexConfig config;
  config.expected = rel.cardinality();
  auto index = std::make_unique<ArrayIndex>(std::move(ops), config);
  ScanRelation(rel, [&](TupleRef t) {
    index->AppendUnsorted(t);
    return true;
  });
  index->Seal(insertion_cutoff);
  return index;
}

std::unique_ptr<ChainedBucketHash> BuildJoinHash(const Relation& rel,
                                                 size_t field) {
  auto ops = std::make_shared<FieldKeyOps>(&rel.schema(), field);
  IndexConfig config;
  config.expected = rel.cardinality();
  auto index = std::make_unique<ChainedBucketHash>(std::move(ops), config);
  ScanRelation(rel, [&](TupleRef t) {
    index->Insert(t);
    return true;
  });
  return index;
}

TempList NestedLoopsJoin(const JoinSpec& spec) {
  TempList out(JoinSources(spec));
  const Schema& so = spec.outer->schema();
  const Schema& si = spec.inner->schema();
  ScanRelation(*spec.outer, [&](TupleRef ot) {
    ScanRelation(*spec.inner, [&](TupleRef it) {
      if (tuple::CompareFields(ot, so, spec.outer_field, it, si,
                               spec.inner_field) == 0) {
        out.Append2(ot, it);
      }
      return true;
    });
    return true;
  });
  return out;
}

TempList HashJoin(const JoinSpec& spec, ExecMode mode) {
  TempList out(JoinSources(spec));
  // Build phase: hash the inner relation's join column (cost included).
  std::unique_ptr<ChainedBucketHash> table =
      BuildJoinHash(*spec.inner, spec.inner_field);
  // Probe phase.
  const Schema& so = spec.outer->schema();
  if (mode == ExecMode::kBatched) {
    ChunkedProber prober(table.get(), so, spec.outer_field, &out);
    ScanRelation(*spec.outer, [&](TupleRef ot) {
      prober.Add(ot);
      return true;
    });
    prober.Flush();
    return out;
  }
  std::vector<TupleRef> hits;
  ScanRelation(*spec.outer, [&](TupleRef ot) {
    hits.clear();
    table->FindAll(tuple::GetValue(ot, so, spec.outer_field), &hits);
    for (TupleRef it : hits) out.Append2(ot, it);
    return true;
  });
  return out;
}

TempList PartitionedHashJoin(const JoinSpec& spec, size_t partitions,
                             ExecMode mode) {
  assert(partitions > 0 && (partitions & (partitions - 1)) == 0 &&
         "partition count must be a power of two");
  if (partitions <= 1) return HashJoin(spec, mode);
  TempList out(JoinSources(spec));
  const size_t mask = partitions - 1;

  // Build phase: route every inner tuple by the high hash bits into one of
  // `partitions` small tables, reusing the routing hash for the insert —
  // one counted hash call per tuple, exactly the monolithic build's cost.
  auto ops =
      std::make_shared<FieldKeyOps>(&spec.inner->schema(), spec.inner_field);
  IndexConfig config;
  config.expected = spec.inner->cardinality() / partitions + 1;
  std::vector<std::unique_ptr<ChainedBucketHash>> tables;
  tables.reserve(partitions);
  for (size_t p = 0; p < partitions; ++p) {
    tables.push_back(std::make_unique<ChainedBucketHash>(ops, config));
  }
  ScanRelation(*spec.inner, [&](TupleRef t) {
    const uint64_t h = tables[0]->HashTuple(t);
    tables[RouteOf(h, mask)]->InsertHashed(t, h);
    return true;
  });

  // Probe phase: outer tuples route to their partition in scan order, so
  // output is identical to HashJoin row for row.
  const Schema& so = spec.outer->schema();
  if (mode == ExecMode::kBatched) {
    RoutedProber prober(&tables, mask, so, spec.outer_field, &out);
    ScanRelation(*spec.outer, [&](TupleRef ot) {
      prober.Add(ot);
      return true;
    });
    prober.Flush();
    return out;
  }
  ScanRelation(*spec.outer, [&](TupleRef ot) {
    const Value key = tuple::GetValue(ot, so, spec.outer_field);
    const uint64_t h = tables[0]->HashOf(key);
    tables[RouteOf(h, mask)]->FindAllHashed(
        key, h, [&](TupleRef it) { out.Append2(ot, it); });
    return true;
  });
  return out;
}

TempList HybridHashJoin(const JoinSpec& spec, size_t partitions,
                        ExecMode mode) {
  assert(partitions > 0 && (partitions & (partitions - 1)) == 0 &&
         "partition count must be a power of two");
  if (partitions <= 1) return HashJoin(spec, mode);
  TempList out(JoinSources(spec));
  const size_t mask = partitions - 1;

  // Build pass: only partition 0's table is built now; tuples routed to
  // partitions 1..P-1 stage a bare 8-byte ref each, so peak table memory is
  // ~1/P of a monolithic build.
  auto ops =
      std::make_shared<FieldKeyOps>(&spec.inner->schema(), spec.inner_field);
  IndexConfig config;
  config.expected = spec.inner->cardinality() / partitions + 1;
  auto table0 = std::make_unique<ChainedBucketHash>(ops, config);
  std::vector<std::vector<TupleRef>> spill_inner(partitions);
  ScanRelation(*spec.inner, [&](TupleRef t) {
    const uint64_t h = table0->HashTuple(t);
    const size_t p = RouteOf(h, mask);
    if (p == 0) {
      table0->InsertHashed(t, h);
    } else {
      spill_inner[p].push_back(t);
    }
    return true;
  });

  // Probe pass: partition-0 outers probe the resident table streaming (in
  // scan order); the rest stage bare refs for the per-partition passes.
  const Schema& so = spec.outer->schema();
  std::vector<std::vector<TupleRef>> spill_outer(partitions);
  if (mode == ExecMode::kBatched) {
    // Chunked variant of the scalar loop below: hash + route a chunk at a
    // time, prefetching partition-0 bucket slots; spilled refs just append.
    constexpr size_t kSub = 256;
    Value keys[kSub];
    uint64_t hashes[kSub];
    TupleRef refs[kSub];
    size_t n = 0;
    auto flush = [&] {
      if (n == 0) return;
      counters::BumpChunks();
      for (size_t i = 0; i < n; ++i) {
        keys[i] = tuple::GetValue(refs[i], so, spec.outer_field);
        hashes[i] = table0->HashOf(keys[i]);
        if (RouteOf(hashes[i], mask) == 0) table0->PrefetchBucket(hashes[i]);
      }
      for (size_t i = 0; i < n; ++i) {
        const size_t p = RouteOf(hashes[i], mask);
        if (p == 0) {
          const TupleRef ot = refs[i];
          table0->FindAllHashed(keys[i], hashes[i],
                                [&](TupleRef it) { out.Append2(ot, it); });
        } else {
          spill_outer[p].push_back(refs[i]);
        }
      }
      n = 0;
    };
    ScanRelation(*spec.outer, [&](TupleRef ot) {
      refs[n++] = ot;
      if (n == kSub) flush();
      return true;
    });
    flush();
  } else {
    ScanRelation(*spec.outer, [&](TupleRef ot) {
      const Value key = tuple::GetValue(ot, so, spec.outer_field);
      const uint64_t h = table0->HashOf(key);
      const size_t p = RouteOf(h, mask);
      if (p == 0) {
        table0->FindAllHashed(key, h,
                              [&](TupleRef it) { out.Append2(ot, it); });
      } else {
        spill_outer[p].push_back(ot);
      }
      return true;
    });
  }
  table0.reset();  // partition 0 is done; keep peak memory at one table

  // Spilled partitions join one at a time: build a small table over the
  // staged inner refs, probe the staged outer refs.  Output within a
  // partition is staged-order (= outer scan order); partitions are emitted
  // grouped, so the overall row order differs from HashJoin but the row
  // *set* is identical.
  for (size_t p = 1; p < partitions; ++p) {
    if (spill_inner[p].empty() && spill_outer[p].empty()) continue;
    IndexConfig part_config;
    part_config.expected = spill_inner[p].size();
    auto table = std::make_unique<ChainedBucketHash>(ops, part_config);
    for (TupleRef t : spill_inner[p]) table->Insert(t);
    if (mode == ExecMode::kBatched) {
      ChunkedProber prober(table.get(), so, spec.outer_field, &out);
      for (TupleRef ot : spill_outer[p]) prober.Add(ot);
      prober.Flush();
    } else {
      std::vector<TupleRef> hits;
      for (TupleRef ot : spill_outer[p]) {
        hits.clear();
        table->FindAll(tuple::GetValue(ot, so, spec.outer_field), &hits);
        for (TupleRef it : hits) out.Append2(ot, it);
      }
    }
    spill_inner[p].clear();
    spill_inner[p].shrink_to_fit();
    spill_outer[p].clear();
    spill_outer[p].shrink_to_fit();
  }
  return out;
}

TempList TreeJoin(const JoinSpec& spec, const OrderedIndex& inner_index) {
  TempList out(JoinSources(spec));
  const Schema& so = spec.outer->schema();
  std::vector<TupleRef> hits;
  ScanRelation(*spec.outer, [&](TupleRef ot) {
    hits.clear();
    // An unsuccessful search bypasses the scan phase entirely; a successful
    // one scans the logically contiguous duplicates (Section 3.3.4).
    inner_index.FindAll(tuple::GetValue(ot, so, spec.outer_field), &hits);
    for (TupleRef it : hits) out.Append2(ot, it);
    return true;
  });
  return out;
}

TempList HashProbeJoin(const JoinSpec& spec, const HashIndex& inner_index) {
  TempList out(JoinSources(spec));
  const Schema& so = spec.outer->schema();
  std::vector<TupleRef> hits;
  ScanRelation(*spec.outer, [&](TupleRef ot) {
    hits.clear();
    inner_index.FindAll(tuple::GetValue(ot, so, spec.outer_field), &hits);
    for (TupleRef it : hits) out.Append2(ot, it);
    return true;
  });
  return out;
}

namespace {

/// Key-extraction sort-merge (batched mode, numeric join columns): each
/// side's (key, ref) pairs are materialized once, sorted contiguously, and
/// merged without ever dereferencing a tuple pointer per comparison.  The
/// comparator bumps one counted comparison per call and orders by
/// (key, pointer) — exactly the array index's CompareTie — so the sorted
/// sequences, the comparison counts, and the emitted rows are identical to
/// the scalar path's.
template <typename K, typename GetKey>
TempList SortMergeKeyed(const JoinSpec& spec, int insertion_cutoff,
                        const GetKey& outer_key, const GetKey& inner_key,
                        TempList out) {
  auto gather = [](const Relation& rel, const GetKey& get) {
    std::vector<KeyRef<K>> v;
    v.reserve(rel.cardinality());
    ScanRelation(rel, [&](TupleRef t) {
      v.push_back({get(t), t});
      return true;
    });
    return v;
  };
  std::vector<KeyRef<K>> av = gather(*spec.outer, outer_key);
  std::vector<KeyRef<K>> bv = gather(*spec.inner, inner_key);
  const auto less = [](const KeyRef<K>& x, const KeyRef<K>& y) {
    counters::BumpComparisons();
    if (x.key != y.key) return x.key < y.key;
    return x.ref < y.ref;
  };
  HybridSort(av.data(), av.size(), less, insertion_cutoff);
  HybridSort(bv.data(), bv.size(), less, insertion_cutoff);

  const auto cmp = [](const KeyRef<K>& x, const KeyRef<K>& y) {
    counters::BumpComparisons();
    if (x.key < y.key) return -1;
    if (y.key < x.key) return 1;
    return 0;
  };
  KeyedSeq<K> a{av.data(), av.size()};
  KeyedSeq<K> b{bv.data(), bv.size()};
  MergeJoinGeneric(a, b, cmp, cmp,
                   [&](const KeyRef<K>& x, const KeyRef<K>& y) {
                     out.Append2(x.ref, y.ref);
                   });
  return out;
}

}  // namespace

TempList SortMergeJoin(const JoinSpec& spec, int insertion_cutoff,
                       ExecMode mode) {
  TempList out(JoinSources(spec));
  const Schema& so = spec.outer->schema();
  const Schema& si = spec.inner->schema();
  if (mode == ExecMode::kBatched) {
    // Numeric fast paths; other type combinations (strings, pointers,
    // int/double mixes) fall through to the pointer-sorting path below.
    const Type to = so.field(spec.outer_field).type;
    const Type ti = si.field(spec.inner_field).type;
    const bool ints = (to == Type::kInt32 || to == Type::kInt64) &&
                      (ti == Type::kInt32 || ti == Type::kInt64);
    if (ints) {
      // Widened to int64, exactly how CompareFields compares mixed widths.
      auto key_of = [](const Schema& s, size_t f) {
        const size_t off = s.offset(f);
        const bool narrow = s.field(f).type == Type::kInt32;
        return [off, narrow](TupleRef t) {
          return narrow ? static_cast<int64_t>(tuple::GetInt32(t, off))
                        : tuple::GetInt64(t, off);
        };
      };
      return SortMergeKeyed<int64_t>(spec, insertion_cutoff,
                                     key_of(so, spec.outer_field),
                                     key_of(si, spec.inner_field),
                                     std::move(out));
    }
    if (to == Type::kDouble && ti == Type::kDouble) {
      auto key_of = [](const Schema& s, size_t f) {
        const size_t off = s.offset(f);
        return [off](TupleRef t) { return tuple::GetDouble(t, off); };
      };
      return SortMergeKeyed<double>(spec, insertion_cutoff,
                                    key_of(so, spec.outer_field),
                                    key_of(si, spec.inner_field),
                                    std::move(out));
    }
  }
  auto outer = BuildSortedArray(*spec.outer, spec.outer_field, insertion_cutoff);
  auto inner = BuildSortedArray(*spec.inner, spec.inner_field, insertion_cutoff);

  ArraySeq a{outer->items().data(), outer->items().size()};
  ArraySeq b{inner->items().data(), inner->items().size()};
  MergeJoinGeneric(
      a, b,
      [&](TupleRef x, TupleRef y) {
        return tuple::CompareFields(x, so, spec.outer_field, y, si,
                                    spec.inner_field);
      },
      [&](TupleRef x, TupleRef y) {
        return tuple::CompareField(x, y, so, spec.outer_field);
      },
      [&](TupleRef x, TupleRef y) { out.Append2(x, y); });
  return out;
}

TempList TreeMergeJoin(const JoinSpec& spec, const OrderedIndex& outer_index,
                       const OrderedIndex& inner_index) {
  TempList out(JoinSources(spec));
  const Schema& so = spec.outer->schema();
  const Schema& si = spec.inner->schema();
  CursorSeq a{outer_index.First()};
  CursorSeq b{inner_index.First()};
  MergeJoinGeneric(
      a, b,
      [&](TupleRef x, TupleRef y) {
        return tuple::CompareFields(x, so, spec.outer_field, y, si,
                                    spec.inner_field);
      },
      [&](TupleRef x, TupleRef y) {
        return tuple::CompareField(x, y, so, spec.outer_field);
      },
      [&](TupleRef x, TupleRef y) { out.Append2(x, y); });
  return out;
}

TempList TreeInequalityJoin(const JoinSpec& spec, CompareOp op,
                            const OrderedIndex& inner_index) {
  assert(op == CompareOp::kLt || op == CompareOp::kLe ||
         op == CompareOp::kGt || op == CompareOp::kGe);
  TempList out(JoinSources(spec));
  const Schema& so = spec.outer->schema();
  ScanRelation(*spec.outer, [&](TupleRef ot) {
    const Value v = tuple::GetValue(ot, so, spec.outer_field);
    Bound lo, hi;
    switch (op) {
      case CompareOp::kLt:  // outer < inner: inner in (v, +inf)
        lo = {&v, false};
        break;
      case CompareOp::kLe:  // inner in [v, +inf)
        lo = {&v, true};
        break;
      case CompareOp::kGt:  // outer > inner: inner in (-inf, v)
        hi = {&v, false};
        break;
      case CompareOp::kGe:  // inner in (-inf, v]
        hi = {&v, true};
        break;
      default:
        return true;
    }
    inner_index.ScanRange(lo, hi, [&](TupleRef it) {
      out.Append2(ot, it);
      return true;
    });
    return true;
  });
  return out;
}

TempList TempListJoin(const TempList& outer_list, size_t outer_field,
                      const Relation& inner, size_t inner_field,
                      const TupleIndex* inner_index, ExecMode mode) {
  assert(outer_list.width() == 1 && "TempListJoin takes width-1 lists");
  const Relation* outer = outer_list.descriptor().source(0);
  ResultDescriptor desc({outer, &inner});
  TempList out(desc);

  std::unique_ptr<ChainedBucketHash> built;
  if (inner_index == nullptr) {
    built = BuildJoinHash(inner, inner_field);
    inner_index = built.get();
  }
  const Schema& so = outer->schema();
  if (mode == ExecMode::kBatched &&
      inner_index->kind() == IndexKind::kChainedBucketHash) {
    // Batched probing needs the chained-bucket prefetch API; probes against
    // other index kinds (a caller-supplied T Tree, say) stay scalar.
    ChunkedProber prober(static_cast<const ChainedBucketHash*>(inner_index),
                         so, outer_field, &out);
    for (size_t r = 0; r < outer_list.size(); ++r) {
      prober.Add(outer_list.At(r, 0));
    }
    prober.Flush();
    return out;
  }
  std::vector<TupleRef> hits;
  for (size_t r = 0; r < outer_list.size(); ++r) {
    TupleRef ot = outer_list.At(r, 0);
    hits.clear();
    inner_index->FindAll(tuple::GetValue(ot, so, outer_field), &hits);
    for (TupleRef it : hits) out.Append2(ot, it);
  }
  return out;
}

std::unique_ptr<TupleIndex> BuildTempListIndex(const TempList& list,
                                               size_t column, IndexKind kind,
                                               IndexConfig config) {
  const ResultDescriptor& desc = list.descriptor();
  auto ops = std::make_shared<FieldKeyOps>(desc.ColumnSchema(column),
                                           desc.ColumnField(column));
  if (config.expected < list.size()) config.expected = list.size();
  auto index = CreateIndex(kind, std::move(ops), config);
  std::set<TupleRef> seen;  // a tuple referenced by many rows indexes once
  index->BeginBulk();
  for (size_t r = 0; r < list.size(); ++r) {
    TupleRef t = list.ResolveColumnTuple(r, column);
    if (t != nullptr && seen.insert(t).second) index->Insert(t);
  }
  index->EndBulk();
  return index;
}

TempList PrecomputedJoin(const Relation& outer, size_t fk_field) {
  ResultDescriptor desc({&outer, outer.ForeignKeyOn(fk_field)->target});
  TempList out(desc);
  const Schema& so = outer.schema();
  const size_t off = so.offset(fk_field);
  ScanRelation(outer, [&](TupleRef ot) {
    TupleRef it = tuple::GetPointer(ot, off);
    if (it != nullptr) out.Append2(ot, it);
    return true;
  });
  return out;
}

}  // namespace mmdb
