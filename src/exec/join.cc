#include "src/exec/join.h"

#include <cassert>
#include <set>

#include "src/exec/select.h"
#include "src/storage/tuple.h"

namespace mmdb {
namespace {

ResultDescriptor JoinSources(const JoinSpec& spec) {
  return ResultDescriptor({spec.outer, spec.inner});
}

/// Sequence adapter over a sorted TupleRef array.
struct ArraySeq {
  const TupleRef* data;
  size_t n;
  size_t pos = 0;

  bool Valid() const { return pos < n; }
  TupleRef Get() const { return data[pos]; }
  void Next() { ++pos; }
  using Mark = size_t;
  Mark Snapshot() const { return pos; }
  void Restore(Mark m) { pos = m; }
};

/// Sequence adapter over an ordered-index cursor.
struct CursorSeq {
  std::unique_ptr<OrderedIndex::Cursor> cursor;

  bool Valid() const { return cursor->Valid(); }
  TupleRef Get() const { return cursor->Get(); }
  void Next() { cursor->Next(); }
  using Mark = std::shared_ptr<OrderedIndex::Cursor>;
  Mark Snapshot() const { return Mark(cursor->Clone()); }
  void Restore(const Mark& m) { cursor = m->Clone(); }
};

/// Merge join core [BlE77]: both sequences ordered on the join key.  The
/// inner sequence is rewound (Restore) across runs of equal outer keys so
/// duplicate x duplicate cross products are emitted.
template <typename SeqA, typename SeqB, typename CmpAB, typename CmpAA,
          typename Emit>
void MergeJoinGeneric(SeqA& a, SeqB& b, const CmpAB& cmp_ab,
                      const CmpAA& cmp_aa, const Emit& emit) {
  while (a.Valid() && b.Valid()) {
    int c = cmp_ab(a.Get(), b.Get());
    if (c < 0) {
      a.Next();
      continue;
    }
    if (c > 0) {
      b.Next();
      continue;
    }
    auto mark = b.Snapshot();
    for (;;) {
      const TupleRef av = a.Get();
      while (b.Valid() && cmp_ab(av, b.Get()) == 0) {
        emit(av, b.Get());
        b.Next();
      }
      a.Next();
      if (!a.Valid() || cmp_aa(a.Get(), av) != 0) break;
      b.Restore(mark);
    }
  }
}

}  // namespace

std::unique_ptr<ArrayIndex> BuildSortedArray(const Relation& rel, size_t field,
                                             int insertion_cutoff) {
  auto ops = std::make_shared<FieldKeyOps>(&rel.schema(), field);
  IndexConfig config;
  config.expected = rel.cardinality();
  auto index = std::make_unique<ArrayIndex>(std::move(ops), config);
  ScanRelation(rel, [&](TupleRef t) {
    index->AppendUnsorted(t);
    return true;
  });
  index->Seal(insertion_cutoff);
  return index;
}

std::unique_ptr<ChainedBucketHash> BuildJoinHash(const Relation& rel,
                                                 size_t field) {
  auto ops = std::make_shared<FieldKeyOps>(&rel.schema(), field);
  IndexConfig config;
  config.expected = rel.cardinality();
  auto index = std::make_unique<ChainedBucketHash>(std::move(ops), config);
  ScanRelation(rel, [&](TupleRef t) {
    index->Insert(t);
    return true;
  });
  return index;
}

TempList NestedLoopsJoin(const JoinSpec& spec) {
  TempList out(JoinSources(spec));
  const Schema& so = spec.outer->schema();
  const Schema& si = spec.inner->schema();
  ScanRelation(*spec.outer, [&](TupleRef ot) {
    ScanRelation(*spec.inner, [&](TupleRef it) {
      if (tuple::CompareFields(ot, so, spec.outer_field, it, si,
                               spec.inner_field) == 0) {
        out.Append2(ot, it);
      }
      return true;
    });
    return true;
  });
  return out;
}

TempList HashJoin(const JoinSpec& spec) {
  TempList out(JoinSources(spec));
  // Build phase: hash the inner relation's join column (cost included).
  std::unique_ptr<ChainedBucketHash> table =
      BuildJoinHash(*spec.inner, spec.inner_field);
  // Probe phase.
  const Schema& so = spec.outer->schema();
  std::vector<TupleRef> hits;
  ScanRelation(*spec.outer, [&](TupleRef ot) {
    hits.clear();
    table->FindAll(tuple::GetValue(ot, so, spec.outer_field), &hits);
    for (TupleRef it : hits) out.Append2(ot, it);
    return true;
  });
  return out;
}

TempList TreeJoin(const JoinSpec& spec, const OrderedIndex& inner_index) {
  TempList out(JoinSources(spec));
  const Schema& so = spec.outer->schema();
  std::vector<TupleRef> hits;
  ScanRelation(*spec.outer, [&](TupleRef ot) {
    hits.clear();
    // An unsuccessful search bypasses the scan phase entirely; a successful
    // one scans the logically contiguous duplicates (Section 3.3.4).
    inner_index.FindAll(tuple::GetValue(ot, so, spec.outer_field), &hits);
    for (TupleRef it : hits) out.Append2(ot, it);
    return true;
  });
  return out;
}

TempList HashProbeJoin(const JoinSpec& spec, const HashIndex& inner_index) {
  TempList out(JoinSources(spec));
  const Schema& so = spec.outer->schema();
  std::vector<TupleRef> hits;
  ScanRelation(*spec.outer, [&](TupleRef ot) {
    hits.clear();
    inner_index.FindAll(tuple::GetValue(ot, so, spec.outer_field), &hits);
    for (TupleRef it : hits) out.Append2(ot, it);
    return true;
  });
  return out;
}

TempList SortMergeJoin(const JoinSpec& spec, int insertion_cutoff) {
  TempList out(JoinSources(spec));
  auto outer = BuildSortedArray(*spec.outer, spec.outer_field, insertion_cutoff);
  auto inner = BuildSortedArray(*spec.inner, spec.inner_field, insertion_cutoff);

  const Schema& so = spec.outer->schema();
  const Schema& si = spec.inner->schema();
  ArraySeq a{outer->items().data(), outer->items().size()};
  ArraySeq b{inner->items().data(), inner->items().size()};
  MergeJoinGeneric(
      a, b,
      [&](TupleRef x, TupleRef y) {
        return tuple::CompareFields(x, so, spec.outer_field, y, si,
                                    spec.inner_field);
      },
      [&](TupleRef x, TupleRef y) {
        return tuple::CompareField(x, y, so, spec.outer_field);
      },
      [&](TupleRef x, TupleRef y) { out.Append2(x, y); });
  return out;
}

TempList TreeMergeJoin(const JoinSpec& spec, const OrderedIndex& outer_index,
                       const OrderedIndex& inner_index) {
  TempList out(JoinSources(spec));
  const Schema& so = spec.outer->schema();
  const Schema& si = spec.inner->schema();
  CursorSeq a{outer_index.First()};
  CursorSeq b{inner_index.First()};
  MergeJoinGeneric(
      a, b,
      [&](TupleRef x, TupleRef y) {
        return tuple::CompareFields(x, so, spec.outer_field, y, si,
                                    spec.inner_field);
      },
      [&](TupleRef x, TupleRef y) {
        return tuple::CompareField(x, y, so, spec.outer_field);
      },
      [&](TupleRef x, TupleRef y) { out.Append2(x, y); });
  return out;
}

TempList TreeInequalityJoin(const JoinSpec& spec, CompareOp op,
                            const OrderedIndex& inner_index) {
  assert(op == CompareOp::kLt || op == CompareOp::kLe ||
         op == CompareOp::kGt || op == CompareOp::kGe);
  TempList out(JoinSources(spec));
  const Schema& so = spec.outer->schema();
  ScanRelation(*spec.outer, [&](TupleRef ot) {
    const Value v = tuple::GetValue(ot, so, spec.outer_field);
    Bound lo, hi;
    switch (op) {
      case CompareOp::kLt:  // outer < inner: inner in (v, +inf)
        lo = {&v, false};
        break;
      case CompareOp::kLe:  // inner in [v, +inf)
        lo = {&v, true};
        break;
      case CompareOp::kGt:  // outer > inner: inner in (-inf, v)
        hi = {&v, false};
        break;
      case CompareOp::kGe:  // inner in (-inf, v]
        hi = {&v, true};
        break;
      default:
        return true;
    }
    inner_index.ScanRange(lo, hi, [&](TupleRef it) {
      out.Append2(ot, it);
      return true;
    });
    return true;
  });
  return out;
}

TempList TempListJoin(const TempList& outer_list, size_t outer_field,
                      const Relation& inner, size_t inner_field,
                      const TupleIndex* inner_index) {
  assert(outer_list.width() == 1 && "TempListJoin takes width-1 lists");
  const Relation* outer = outer_list.descriptor().source(0);
  ResultDescriptor desc({outer, &inner});
  TempList out(desc);

  std::unique_ptr<ChainedBucketHash> built;
  if (inner_index == nullptr) {
    built = BuildJoinHash(inner, inner_field);
    inner_index = built.get();
  }
  const Schema& so = outer->schema();
  std::vector<TupleRef> hits;
  for (size_t r = 0; r < outer_list.size(); ++r) {
    TupleRef ot = outer_list.At(r, 0);
    hits.clear();
    inner_index->FindAll(tuple::GetValue(ot, so, outer_field), &hits);
    for (TupleRef it : hits) out.Append2(ot, it);
  }
  return out;
}

std::unique_ptr<TupleIndex> BuildTempListIndex(const TempList& list,
                                               size_t column, IndexKind kind,
                                               IndexConfig config) {
  const ResultDescriptor& desc = list.descriptor();
  auto ops = std::make_shared<FieldKeyOps>(desc.ColumnSchema(column),
                                           desc.ColumnField(column));
  if (config.expected < list.size()) config.expected = list.size();
  auto index = CreateIndex(kind, std::move(ops), config);
  std::set<TupleRef> seen;  // a tuple referenced by many rows indexes once
  index->BeginBulk();
  for (size_t r = 0; r < list.size(); ++r) {
    TupleRef t = list.ResolveColumnTuple(r, column);
    if (t != nullptr && seen.insert(t).second) index->Insert(t);
  }
  index->EndBulk();
  return index;
}

TempList PrecomputedJoin(const Relation& outer, size_t fk_field) {
  ResultDescriptor desc({&outer, outer.ForeignKeyOn(fk_field)->target});
  TempList out(desc);
  const Schema& so = outer.schema();
  const size_t off = so.offset(fk_field);
  ScanRelation(outer, [&](TupleRef ot) {
    TupleRef it = tuple::GetPointer(ot, off);
    if (it != nullptr) out.Append2(ot, it);
    return true;
  });
  return out;
}

}  // namespace mmdb
