// The join algorithms of Section 3.3: Nested Loops, Hash Join, Tree Join,
// Sort Merge, Tree Merge, and the precomputed (tuple-pointer) join of
// Section 2.1.  Every algorithm produces a width-2 temporary list of
// (outer tuple, inner tuple) pointers; no data is copied.
//
// Cost conventions follow the paper exactly:
//   * Hash Join *includes* the cost of building a Chained Bucket Hash table
//     on the inner join column ("we always include the cost of building a
//     hash table, because ... a hash table index is less likely to exist
//     than a T Tree index").
//   * Tree Join and Tree Merge *assume* their T Tree indices already exist;
//     callers pass them in.
//   * Sort Merge includes building and sorting array indices on both
//     relations.

#ifndef MMDB_EXEC_JOIN_H_
#define MMDB_EXEC_JOIN_H_

#include "src/exec/chunk.h"
#include "src/exec/predicate.h"
#include "src/index/array_index.h"
#include "src/index/chained_hash.h"
#include "src/index/index.h"
#include "src/storage/relation.h"
#include "src/storage/temp_list.h"
#include "src/util/sort.h"

namespace mmdb {

/// Memory-budget policy for the hash-join family (DESIGN.md §4f).
namespace joinmem {

/// Build-side memory budget in bytes: MMDB_JOIN_MEM_BYTES env (read once),
/// default 64 MiB.  A hash build estimated above this goes hybrid-hash.
size_t BudgetBytes();

/// Per-partition build target: MMDB_JOIN_L2_BYTES env (read once), default
/// 256 KiB — roughly half a modern L2, leaving room for the probe stream.
/// A build above this (but within budget) is split so each partition's
/// chained-bucket hash is L2-resident during its probes.
size_t L2TargetBytes();

/// Estimated bytes of a chained-bucket-hash build over `rows` tuples:
/// one 16-byte chain entry plus one 8-byte table slot per row (the table is
/// sized to the next power of two >= rows).
size_t EstimateBuildBytes(size_t rows);

/// Number of partitions (power of two, >= 1) so that bytes/partitions fits
/// `target`.
size_t ChoosePartitions(size_t build_bytes, size_t target);

}  // namespace joinmem

/// An equijoin between outer.outer_field and inner.inner_field.
struct JoinSpec {
  const Relation* outer = nullptr;
  size_t outer_field = 0;
  const Relation* inner = nullptr;
  size_t inner_field = 0;
};

/// O(|R1| * |R2|) scan-everything join — Graph 10's cautionary tale.
TempList NestedLoopsJoin(const JoinSpec& spec);

/// Builds a Chained Bucket Hash on the inner join column, then probes it
/// once per outer tuple.  The build cost is part of the algorithm.  In
/// batched mode outer tuples are probed a chunk at a time with bucket-slot
/// and chain-node software prefetch; output rows and order are identical to
/// the tuple-at-a-time path.
TempList HashJoin(const JoinSpec& spec, ExecMode mode = DefaultExecMode());

/// Hash join with the build side split into `partitions` (power of two)
/// chained-bucket hashes, routed by the *high* hash bits (the tables' bucket
/// choice uses the low bits, so routing steals no bucket entropy).  Each
/// partition's table is sized to fit the L2 target, so probe chains stay
/// cache-resident.  Probes route each outer tuple to its partition in scan
/// order — output is identical to HashJoin, row for row.
TempList PartitionedHashJoin(const JoinSpec& spec, size_t partitions,
                             ExecMode mode = DefaultExecMode());

/// Hybrid hash join (Section 3.3 lineage; cf. the dynamic hybrid hash join
/// of PAPERS.md 2112.02480): partition 0's table is built immediately and
/// probed streaming, while partitions 1..P-1 stage bare tuple refs (8 B/row
/// on both sides) and are joined one partition at a time afterwards — peak
/// table memory is ~1/P of a monolithic build.  Chosen by the planner when
/// the estimated build exceeds MMDB_JOIN_MEM_BYTES.  Output rows equal
/// HashJoin's as a set, but spilled partitions are emitted grouped, not in
/// outer-scan order.
TempList HybridHashJoin(const JoinSpec& spec, size_t partitions,
                        ExecMode mode = DefaultExecMode());

/// Probes an *existing* ordered index on the inner join column once per
/// outer tuple; duplicates are contiguous in the index so each probe is a
/// lower-bound search plus a short scan.
TempList TreeJoin(const JoinSpec& spec, const OrderedIndex& inner_index);

/// Probes an *existing* hash index on the inner join column (Section 3.3.5:
/// the small-outer exception "would also be true for a hash index if it
/// already existed" — no build cost is paid).
TempList HashProbeJoin(const JoinSpec& spec, const HashIndex& inner_index);

/// Builds array indices on both join columns, sorts them (hybrid quicksort,
/// insertion cutoff per Section 3.3.2), and merge-joins the arrays.  In
/// batched mode, numeric join columns take a key-extraction fast path: the
/// sort and merge run over contiguous (key, ref) pairs instead of
/// dereferencing a tuple pointer per comparison — same comparisons, same
/// output order (keys tie-break by pointer exactly like the array index).
TempList SortMergeJoin(const JoinSpec& spec,
                       int insertion_cutoff = kDefaultInsertionSortCutoff,
                       ExecMode mode = DefaultExecMode());

/// Merge join over two *existing* ordered indices (typically T Trees).
TempList TreeMergeJoin(const JoinSpec& spec, const OrderedIndex& outer_index,
                       const OrderedIndex& inner_index);

/// Precomputed join (Section 2.1): the outer relation's kPointer field
/// `fk_field` already holds the matching inner tuple; emitting the result
/// is a single scan.  Rows with a null pointer are skipped.
TempList PrecomputedJoin(const Relation& outer, size_t fk_field);

/// Non-equijoin (Section 3.3.5): "non-equijoins other than 'not equals' can
/// make use of ordering of the data, so the Tree Join should be used for
/// such (<, <=, >, >=) joins".  Emits every pair where
/// `outer.outer_field op inner.inner_field` holds, by scanning the ordered
/// inner index from the bound implied by each outer tuple.  `op` must be
/// one of kLt/kLe/kGt/kGe.
TempList TreeInequalityJoin(const JoinSpec& spec, CompareOp op,
                            const OrderedIndex& inner_index);

/// Joins a width-1 temporary list (e.g. a selection result) against a base
/// relation — the Query 2 pipeline of Section 2.1.  `outer_field` is a
/// field of the list's source relation.  Probes `inner_index` if given;
/// otherwise builds a chained-bucket hash on the inner join column.
TempList TempListJoin(const TempList& outer_list, size_t outer_field,
                      const Relation& inner, size_t inner_field,
                      const TupleIndex* inner_index = nullptr,
                      ExecMode mode = DefaultExecMode());

/// Section 2.3: "it is also possible to have an index on a temporary
/// list".  Builds an index over the *distinct* tuples that column `column`
/// of the list resolves to (duplicate pointers are indexed once), keyed on
/// the column's final field.
std::unique_ptr<TupleIndex> BuildTempListIndex(const TempList& list,
                                               size_t column, IndexKind kind,
                                               IndexConfig config = {});

/// Helper shared with benches: a sorted array index over one relation's
/// join column, built by append + hybrid sort (the Sort Merge build phase).
std::unique_ptr<ArrayIndex> BuildSortedArray(
    const Relation& rel, size_t field,
    int insertion_cutoff = kDefaultInsertionSortCutoff);

/// Helper shared with benches: a Chained Bucket Hash on `field`, sized to
/// the relation's cardinality (the Hash Join build phase).
std::unique_ptr<ChainedBucketHash> BuildJoinHash(const Relation& rel,
                                                 size_t field);

}  // namespace mmdb

#endif  // MMDB_EXEC_JOIN_H_
