#include "src/exec/predicate.h"

#include <sstream>

#include "src/storage/tuple.h"
#include "src/util/counters.h"

namespace mmdb {
namespace {

/// Compacting refinement of a selection vector by `field op v`, with the
/// field load (`get`), constant, and operator all hoisted out of the loop.
/// The body is branch-predictable: write-then-advance, no data-dependent
/// control flow.
template <typename T, typename Get>
size_t RefineWith(CompareOp op, T v, const Get& get, SelIdx* sel, size_t m) {
  size_t out = 0;
  auto apply = [&](auto keep) {
    for (size_t i = 0; i < m; ++i) {
      const SelIdx s = sel[i];
      sel[out] = s;
      out += keep(get(s)) ? 1 : 0;
    }
  };
  switch (op) {
    case CompareOp::kEq: apply([v](T f) { return f == v; }); break;
    case CompareOp::kNe: apply([v](T f) { return f != v; }); break;
    case CompareOp::kLt: apply([v](T f) { return f < v; }); break;
    case CompareOp::kLe: apply([v](T f) { return f <= v; }); break;
    case CompareOp::kGt: apply([v](T f) { return f > v; }); break;
    case CompareOp::kGe: apply([v](T f) { return f >= v; }); break;
  }
  return out;
}

}  // namespace

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "!=";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

bool Condition::Matches(TupleRef t, const Schema& schema) const {
  const int c = tuple::CompareValueField(value, t, schema, field);
  // c compares value against the field: c < 0 means value < field.
  switch (op) {
    case CompareOp::kEq: return c == 0;
    case CompareOp::kNe: return c != 0;
    case CompareOp::kLt: return c > 0;   // field < value
    case CompareOp::kLe: return c >= 0;
    case CompareOp::kGt: return c < 0;   // field > value
    case CompareOp::kGe: return c <= 0;
  }
  return false;
}

size_t Predicate::MatchChunk(const TupleRef* refs, size_t n,
                             const Schema& schema, SelIdx* sel,
                             size_t skip) const {
  counters::BumpChunks();
  for (size_t i = 0; i < n; ++i) sel[i] = static_cast<SelIdx>(i);
  size_t m = n;
  for (size_t ci = 0; ci < conditions_.size() && m > 0; ++ci) {
    if (ci == skip) continue;
    const Condition& cond = conditions_[ci];
    const Type ft = schema.field(cond.field).type;
    const size_t off = schema.offset(cond.field);
    const Type vt = cond.value.type();
    const bool int_const = vt == Type::kInt32 || vt == Type::kInt64;
    // The kernels charge one comparison per row they inspect — the same
    // count the scalar path's CompareValueField would have bumped.
    if (ft == Type::kInt32 && int_const) {
      // Either constant width is accepted; compare widened, exactly as
      // CompareValueField does.
      const int64_t v =
          vt == Type::kInt32 ? cond.value.AsInt32() : cond.value.AsInt64();
      counters::BumpComparisons(m);
      m = RefineWith<int64_t>(
          cond.op, v,
          [refs, off](SelIdx s) {
            return static_cast<int64_t>(tuple::GetInt32(refs[s], off));
          },
          sel, m);
    } else if (ft == Type::kInt64 && int_const) {
      const int64_t v =
          vt == Type::kInt32 ? cond.value.AsInt32() : cond.value.AsInt64();
      counters::BumpComparisons(m);
      m = RefineWith<int64_t>(
          cond.op, v,
          [refs, off](SelIdx s) { return tuple::GetInt64(refs[s], off); },
          sel, m);
    } else if (ft == Type::kDouble && vt == Type::kDouble) {
      counters::BumpComparisons(m);
      m = RefineWith<double>(
          cond.op, cond.value.AsDouble(),
          [refs, off](SelIdx s) { return tuple::GetDouble(refs[s], off); },
          sel, m);
    } else {
      // Generic fallback (strings, pointers, type-rank mismatches):
      // Condition::Matches bumps the comparison counter itself.
      size_t out = 0;
      for (size_t i = 0; i < m; ++i) {
        const SelIdx s = sel[i];
        if (cond.Matches(refs[s], schema)) sel[out++] = s;
      }
      m = out;
    }
  }
  return m;
}

std::optional<size_t> Predicate::EqualityOn(size_t field) const {
  for (size_t i = 0; i < conditions_.size(); ++i) {
    if (conditions_[i].field == field && conditions_[i].op == CompareOp::kEq) {
      return i;
    }
  }
  return std::nullopt;
}

std::optional<size_t> Predicate::SargableOn(size_t field) const {
  for (size_t i = 0; i < conditions_.size(); ++i) {
    if (conditions_[i].field == field && conditions_[i].op != CompareOp::kNe) {
      return i;
    }
  }
  return std::nullopt;
}

std::string Predicate::ToString(const Schema& schema) const {
  if (conditions_.empty()) return "true";
  std::ostringstream os;
  for (size_t i = 0; i < conditions_.size(); ++i) {
    if (i) os << " and ";
    const Condition& c = conditions_[i];
    os << schema.field(c.field).name << " " << CompareOpName(c.op) << " "
       << c.value.ToString();
  }
  return os.str();
}

}  // namespace mmdb
