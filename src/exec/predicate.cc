#include "src/exec/predicate.h"

#include <sstream>

#include "src/storage/tuple.h"

namespace mmdb {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "!=";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

bool Condition::Matches(TupleRef t, const Schema& schema) const {
  const int c = tuple::CompareValueField(value, t, schema, field);
  // c compares value against the field: c < 0 means value < field.
  switch (op) {
    case CompareOp::kEq: return c == 0;
    case CompareOp::kNe: return c != 0;
    case CompareOp::kLt: return c > 0;   // field < value
    case CompareOp::kLe: return c >= 0;
    case CompareOp::kGt: return c < 0;   // field > value
    case CompareOp::kGe: return c <= 0;
  }
  return false;
}

std::optional<size_t> Predicate::EqualityOn(size_t field) const {
  for (size_t i = 0; i < conditions_.size(); ++i) {
    if (conditions_[i].field == field && conditions_[i].op == CompareOp::kEq) {
      return i;
    }
  }
  return std::nullopt;
}

std::optional<size_t> Predicate::SargableOn(size_t field) const {
  for (size_t i = 0; i < conditions_.size(); ++i) {
    if (conditions_[i].field == field && conditions_[i].op != CompareOp::kNe) {
      return i;
    }
  }
  return std::nullopt;
}

std::string Predicate::ToString(const Schema& schema) const {
  if (conditions_.empty()) return "true";
  std::ostringstream os;
  for (size_t i = 0; i < conditions_.size(); ++i) {
    if (i) os << " and ";
    const Condition& c = conditions_[i];
    os << schema.field(c.field).name << " " << CompareOpName(c.op) << " "
       << c.value.ToString();
  }
  return os.str();
}

}  // namespace mmdb
