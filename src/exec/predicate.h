// Predicates: conjunctions of (field op constant) conditions over a single
// relation, the selection language of Section 3.2.  Equality and range
// conditions are what access-path selection (Section 4) keys off: "a hash
// lookup (exact match only) is always faster than a tree lookup which is
// always faster than a sequential scan".

#ifndef MMDB_EXEC_PREDICATE_H_
#define MMDB_EXEC_PREDICATE_H_

#include <optional>
#include <string>
#include <vector>

#include "src/exec/chunk.h"
#include "src/storage/schema.h"
#include "src/storage/value.h"

namespace mmdb {

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpName(CompareOp op);

/// One conjunct: tuple.field `op` value.
struct Condition {
  size_t field = 0;
  CompareOp op = CompareOp::kEq;
  Value value;

  /// Evaluates against a tuple of `schema`.
  bool Matches(TupleRef t, const Schema& schema) const;
};

/// Conjunction of conditions (empty = always true).
class Predicate {
 public:
  Predicate() = default;

  Predicate& Add(size_t field, CompareOp op, Value value) {
    conditions_.push_back(Condition{field, op, std::move(value)});
    return *this;
  }

  bool Matches(TupleRef t, const Schema& schema) const {
    for (const Condition& c : conditions_) {
      if (!c.Matches(t, schema)) return false;
    }
    return true;
  }

  /// Batched evaluation over a chunk of tuple pointers.  Writes the
  /// positions (0..n) of the rows satisfying the conjunction into `sel`
  /// (caller provides >= n slots) and returns the survivor count; row order
  /// is preserved.  Condition `skip` is not applied (SIZE_MAX = apply all) —
  /// the batched analogue of the access paths' residual filtering.
  ///
  /// Refinement is conjunct-at-a-time: conjunct i only ever sees the
  /// survivors of conjuncts 0..i-1, so the comparison count equals the
  /// scalar short-circuit count exactly (OpCounters parity with Matches).
  /// Numeric single-type conjuncts run through tight kernels that hoist the
  /// field offset and operator out of the loop; everything else falls back
  /// to Condition::Matches per survivor.
  size_t MatchChunk(const TupleRef* refs, size_t n, const Schema& schema,
                    SelIdx* sel, size_t skip = static_cast<size_t>(-1)) const;

  const std::vector<Condition>& conditions() const { return conditions_; }
  bool empty() const { return conditions_.empty(); }

  /// Index of the first equality condition on `field`, or nullopt.
  std::optional<size_t> EqualityOn(size_t field) const;
  /// Index of the first range-compatible condition (anything but kNe) on
  /// `field`, or nullopt.
  std::optional<size_t> SargableOn(size_t field) const;

  std::string ToString(const Schema& schema) const;

 private:
  std::vector<Condition> conditions_;
};

}  // namespace mmdb

#endif  // MMDB_EXEC_PREDICATE_H_
