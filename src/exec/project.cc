#include "src/exec/project.h"

#include <numeric>
#include <vector>

#include "src/storage/tuple.h"
#include "src/util/hash.h"

namespace mmdb {

int CompareRows(const TempList& list, size_t r1, size_t r2) {
  const ResultDescriptor& desc = list.descriptor();
  for (size_t c = 0; c < desc.columns().size(); ++c) {
    TupleRef t1 = list.ResolveColumnTuple(r1, c);
    TupleRef t2 = list.ResolveColumnTuple(r2, c);
    if (t1 == nullptr || t2 == nullptr) {
      if (t1 != t2) return t1 == nullptr ? -1 : 1;
      continue;
    }
    int cmp = tuple::CompareField(t1, t2, *desc.ColumnSchema(c),
                                  desc.ColumnField(c));
    if (cmp != 0) return cmp;
  }
  return 0;
}

uint64_t HashRow(const TempList& list, size_t r) {
  const ResultDescriptor& desc = list.descriptor();
  uint64_t h = 0x9E3779B97F4A7C15ULL;
  for (size_t c = 0; c < desc.columns().size(); ++c) {
    TupleRef t = list.ResolveColumnTuple(r, c);
    const uint64_t hc =
        t == nullptr ? 0
                     : tuple::HashField(t, *desc.ColumnSchema(c),
                                        desc.ColumnField(c));
    h = HashMix64(h ^ hc);
  }
  return h;
}

TempList ProjectSortScan(const TempList& in, int insertion_cutoff) {
  const size_t n = in.size();
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  HybridSort(
      order.data(), n,
      [&](uint32_t a, uint32_t b) { return CompareRows(in, a, b) < 0; },
      insertion_cutoff);

  TempList out(in.descriptor());
  const size_t w = in.width();
  std::vector<TupleRef> row(w);
  for (size_t i = 0; i < n; ++i) {
    if (i > 0 && CompareRows(in, order[i - 1], order[i]) == 0) continue;
    for (size_t s = 0; s < w; ++s) row[s] = in.At(order[i], s);
    out.Append(row);
  }
  return out;
}

TempList ProjectHash(const TempList& in) {
  const size_t n = in.size();
  // "The hash table size was always chosen to be |R|/2."
  const size_t buckets = n / 2 < 1 ? 1 : n / 2;
  std::vector<int64_t> heads(buckets, -1);
  std::vector<int64_t> next;
  std::vector<uint32_t> kept;  // rows admitted, parallel to `next`
  next.reserve(n / 2);
  kept.reserve(n / 2);

  TempList out(in.descriptor());
  const size_t w = in.width();
  std::vector<TupleRef> row(w);
  for (size_t r = 0; r < n; ++r) {
    const size_t b = HashRow(in, r) % buckets;
    bool duplicate = false;
    for (int64_t e = heads[b]; e != -1; e = next[e]) {
      if (CompareRows(in, kept[e], r) == 0) {
        duplicate = true;  // discarded as encountered (Section 3.4)
        break;
      }
    }
    if (duplicate) continue;
    next.push_back(heads[b]);
    kept.push_back(static_cast<uint32_t>(r));
    heads[b] = static_cast<int64_t>(kept.size()) - 1;
    for (size_t s = 0; s < w; ++s) row[s] = in.At(r, s);
    out.Append(row);
  }
  return out;
}

}  // namespace mmdb
