#include "src/exec/project.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "src/storage/tuple.h"
#include "src/util/hash.h"

namespace mmdb {

int CompareRows(const TempList& list, size_t r1, size_t r2) {
  const ResultDescriptor& desc = list.descriptor();
  for (size_t c = 0; c < desc.columns().size(); ++c) {
    TupleRef t1 = list.ResolveColumnTuple(r1, c);
    TupleRef t2 = list.ResolveColumnTuple(r2, c);
    if (t1 == nullptr || t2 == nullptr) {
      if (t1 != t2) return t1 == nullptr ? -1 : 1;
      continue;
    }
    int cmp = tuple::CompareField(t1, t2, *desc.ColumnSchema(c),
                                  desc.ColumnField(c));
    if (cmp != 0) return cmp;
  }
  return 0;
}

uint64_t HashRow(const TempList& list, size_t r) {
  const ResultDescriptor& desc = list.descriptor();
  uint64_t h = 0x9E3779B97F4A7C15ULL;
  for (size_t c = 0; c < desc.columns().size(); ++c) {
    TupleRef t = list.ResolveColumnTuple(r, c);
    const uint64_t hc =
        t == nullptr ? 0
                     : tuple::HashField(t, *desc.ColumnSchema(c),
                                        desc.ColumnField(c));
    h = HashMix64(h ^ hc);
  }
  return h;
}

TempList ProjectSortScan(const TempList& in, int insertion_cutoff) {
  const size_t n = in.size();
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  HybridSort(
      order.data(), n,
      [&](uint32_t a, uint32_t b) { return CompareRows(in, a, b) < 0; },
      insertion_cutoff);

  TempList out(in.descriptor());
  const size_t w = in.width();
  std::vector<TupleRef> row(w);
  for (size_t i = 0; i < n; ++i) {
    if (i > 0 && CompareRows(in, order[i - 1], order[i]) == 0) continue;
    for (size_t s = 0; s < w; ++s) row[s] = in.At(order[i], s);
    out.Append(row);
  }
  return out;
}

TempList ProjectHash(const TempList& in, ExecMode mode) {
  const size_t n = in.size();
  // "The hash table size was always chosen to be |R|/2."
  const size_t buckets = n / 2 < 1 ? 1 : n / 2;
  std::vector<int64_t> heads(buckets, -1);
  std::vector<int64_t> next;
  std::vector<uint32_t> kept;  // rows admitted, parallel to `next`
  next.reserve(n / 2);
  kept.reserve(n / 2);

  TempList out(in.descriptor());
  const size_t w = in.width();
  std::vector<TupleRef> row(w);
  auto admit = [&](size_t r, size_t b) {
    bool duplicate = false;
    for (int64_t e = heads[b]; e != -1; e = next[e]) {
      if (CompareRows(in, kept[e], r) == 0) {
        duplicate = true;  // discarded as encountered (Section 3.4)
        break;
      }
    }
    if (duplicate) return;
    next.push_back(heads[b]);
    kept.push_back(static_cast<uint32_t>(r));
    heads[b] = static_cast<int64_t>(kept.size()) - 1;
    for (size_t s = 0; s < w; ++s) row[s] = in.At(r, s);
    out.Append(row);
  };
  if (mode == ExecMode::kBatched) {
    // Hash a sub-chunk of rows up front and prefetch their bucket heads;
    // the chain walks of row i then overlap the head misses of row i+k.
    // Hash calls and chain comparisons per row are unchanged.
    constexpr size_t kSub = 256;
    size_t bs[kSub];
    for (size_t base = 0; base < n; base += kSub) {
      counters::BumpChunks();
      const size_t m = std::min(kSub, n - base);
      for (size_t i = 0; i < m; ++i) {
        bs[i] = HashRow(in, base + i) % buckets;
        PrefetchRead(&heads[bs[i]]);
      }
      for (size_t i = 0; i < m; ++i) admit(base + i, bs[i]);
    }
    return out;
  }
  for (size_t r = 0; r < n; ++r) {
    admit(r, HashRow(in, r) % buckets);
  }
  return out;
}

}  // namespace mmdb
