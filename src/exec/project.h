// Projection (Section 3.4).  Width reduction is free in the MM-DBMS — the
// result descriptor already names the output columns and tuples are never
// copied — so the only real work is *duplicate elimination*.  Two
// algorithms were studied: Sort Scan [BBD83] (sort the rows on the output
// columns, drop adjacent equals during the scan) and Hashing [DKO84] (a
// chained hash table sized |R|/2; duplicates are discarded as they are
// encountered).  Hashing wins everywhere (Graphs 11 and 12).

#ifndef MMDB_EXEC_PROJECT_H_
#define MMDB_EXEC_PROJECT_H_

#include "src/exec/chunk.h"
#include "src/storage/temp_list.h"
#include "src/util/sort.h"

namespace mmdb {

/// Compares rows r1, r2 of `list` column-wise per its descriptor.
int CompareRows(const TempList& list, size_t r1, size_t r2);

/// Hash of row r over the descriptor columns, consistent with CompareRows.
uint64_t HashRow(const TempList& list, size_t r);

/// Sort Scan duplicate elimination: returns a TempList with one row per
/// distinct column-value combination (first occurrence in sort order).
TempList ProjectSortScan(const TempList& in,
                         int insertion_cutoff = kDefaultInsertionSortCutoff);

/// Hashing duplicate elimination, table sized |R|/2 as in the paper.  In
/// batched mode rows are hashed a chunk at a time with bucket-head software
/// prefetch; admitted rows, their order, and the counted hash calls and
/// comparisons are identical to the tuple-at-a-time path.
TempList ProjectHash(const TempList& in, ExecMode mode = DefaultExecMode());

}  // namespace mmdb

#endif  // MMDB_EXEC_PROJECT_H_
