#include "src/exec/select.h"

#include <cassert>

namespace mmdb {
namespace {

ResultDescriptor SingleSource(const Relation& rel) {
  return ResultDescriptor({&rel});
}

/// Applies all conditions except `skip` (use SIZE_MAX to apply all).
bool Residual(const Predicate& pred, size_t skip, TupleRef t,
              const Schema& schema) {
  const auto& conds = pred.conditions();
  for (size_t i = 0; i < conds.size(); ++i) {
    if (i == skip) continue;
    if (!conds[i].Matches(t, schema)) return false;
  }
  return true;
}

/// Gathers candidate refs into kChunkCapacity chunks and filters each chunk
/// through MatchChunk (conditions except `skip`), appending survivors in
/// order.  Shared core of every batched access path.
class ChunkFilter {
 public:
  ChunkFilter(const Predicate& pred, size_t skip, const Schema& schema,
              TempList* out)
      : pred_(pred), skip_(skip), schema_(schema), out_(out) {}

  void Add(TupleRef t) {
    refs_[n_++] = t;
    if (n_ == kChunkCapacity) Flush();
  }

  void Flush() {
    if (n_ == 0) return;
    const size_t m = pred_.MatchChunk(refs_, n_, schema_, sel_, skip_);
    out_->AppendBatch1(refs_, sel_, m);
    n_ = 0;
  }

 private:
  const Predicate& pred_;
  size_t skip_;
  const Schema& schema_;
  TempList* out_;
  TupleRef refs_[kChunkCapacity];
  SelIdx sel_[kChunkCapacity];
  size_t n_ = 0;
};

}  // namespace

const char* AccessPathName(AccessPath path) {
  switch (path) {
    case AccessPath::kHashLookup: return "hash lookup";
    case AccessPath::kTreeLookup: return "tree lookup";
    case AccessPath::kTreeRange: return "tree range scan";
    case AccessPath::kSequentialScan: return "sequential scan";
  }
  return "?";
}

void ScanRelation(const Relation& rel, const ScanFn& fn) {
  TupleIndex* primary = rel.primary_index();
  assert(primary != nullptr && "relations must have at least one index");
  if (primary == nullptr) {
    // Defensive release-mode fallback; Section 2.1 requires an index, but a
    // raw partition walk beats undefined behavior.
    rel.ForEachTuple([&](TupleRef t) { fn(t); });
    return;
  }
  if (IndexKindOrdered(primary->kind())) {
    static_cast<const OrderedIndex*>(primary)->ScanAll(fn);
  } else {
    static_cast<const HashIndex*>(primary)->ScanAll(fn);
  }
}

TempList SelectScan(const Relation& rel, const Predicate& pred,
                    ExecMode mode) {
  TempList out(SingleSource(rel));
  const Schema& schema = rel.schema();
  if (mode == ExecMode::kBatched) {
    ChunkFilter filter(pred, /*skip=*/static_cast<size_t>(-1), schema, &out);
    ScanRelation(rel, [&](TupleRef t) {
      filter.Add(t);
      return true;
    });
    filter.Flush();
    return out;
  }
  ScanRelation(rel, [&](TupleRef t) {
    if (pred.Matches(t, schema)) out.Append1(t);
    return true;
  });
  return out;
}

TempList SelectHash(const Relation& rel, const Predicate& pred, size_t eq,
                    const HashIndex& index, ExecMode mode) {
  TempList out(SingleSource(rel));
  const Condition& cond = pred.conditions()[eq];
  assert(cond.op == CompareOp::kEq);
  std::vector<TupleRef> hits;
  index.FindAll(cond.value, &hits);
  const Schema& schema = rel.schema();
  if (mode == ExecMode::kBatched) {
    ChunkFilter filter(pred, /*skip=*/eq, schema, &out);
    for (TupleRef t : hits) filter.Add(t);
    filter.Flush();
    return out;
  }
  for (TupleRef t : hits) {
    if (Residual(pred, eq, t, schema)) out.Append1(t);
  }
  return out;
}

TempList SelectTree(const Relation& rel, const Predicate& pred, size_t sarg,
                    const OrderedIndex& index, ExecMode mode) {
  TempList out(SingleSource(rel));
  const size_t key_field = pred.conditions()[sarg].field;
  const Schema& schema = rel.schema();

  // Combine *every* sargable condition on the key field into the tightest
  // [lo, hi] window, so `k >= 1000 and k < 1010` scans ten items, not the
  // tail of the index.  All conditions still run as residual filters (the
  // redundant re-check of the bounds is a comparison, not a scan).
  Bound lo, hi;
  auto tighten_lo = [&](const Value* v, bool inclusive) {
    // Stricter = larger value, or same value but exclusive.
    if (lo.value == nullptr || lo.value->Compare(*v) < 0 ||
        (lo.value->Compare(*v) == 0 && !inclusive)) {
      lo = {v, inclusive};
    }
  };
  auto tighten_hi = [&](const Value* v, bool inclusive) {
    if (hi.value == nullptr || hi.value->Compare(*v) > 0 ||
        (hi.value->Compare(*v) == 0 && !inclusive)) {
      hi = {v, inclusive};
    }
  };
  for (const Condition& cond : pred.conditions()) {
    if (cond.field != key_field) continue;
    switch (cond.op) {
      case CompareOp::kEq:
        tighten_lo(&cond.value, true);
        tighten_hi(&cond.value, true);
        break;
      case CompareOp::kLt:
        tighten_hi(&cond.value, false);
        break;
      case CompareOp::kLe:
        tighten_hi(&cond.value, true);
        break;
      case CompareOp::kGt:
        tighten_lo(&cond.value, false);
        break;
      case CompareOp::kGe:
        tighten_lo(&cond.value, true);
        break;
      case CompareOp::kNe:
        break;  // not sargable; handled residually
    }
  }
  if (mode == ExecMode::kBatched) {
    ChunkFilter filter(pred, /*skip=*/static_cast<size_t>(-1), schema, &out);
    index.ScanRange(lo, hi, [&](TupleRef t) {
      filter.Add(t);
      return true;
    });
    filter.Flush();
    return out;
  }
  index.ScanRange(lo, hi, [&](TupleRef t) {
    if (Residual(pred, /*skip=*/static_cast<size_t>(-1), t, schema)) {
      out.Append1(t);
    }
    return true;
  });
  return out;
}

TempList Select(const Relation& rel, const Predicate& pred,
                AccessPath* path_used, ExecMode mode) {
  // Section 4 ordering: hash lookup (exact match only) beats tree lookup
  // beats sequential scan.
  for (const auto& index : rel.indexes()) {
    if (IndexKindOrdered(index->kind()) || index->key_fields().size() != 1) {
      continue;
    }
    if (auto eq = pred.EqualityOn(index->key_fields()[0])) {
      if (path_used != nullptr) *path_used = AccessPath::kHashLookup;
      return SelectHash(rel, pred, *eq,
                        *static_cast<const HashIndex*>(index.get()), mode);
    }
  }
  for (const auto& index : rel.indexes()) {
    if (!IndexKindOrdered(index->kind()) || index->key_fields().size() != 1) {
      continue;
    }
    if (auto sarg = pred.SargableOn(index->key_fields()[0])) {
      if (path_used != nullptr) {
        *path_used = pred.conditions()[*sarg].op == CompareOp::kEq
                         ? AccessPath::kTreeLookup
                         : AccessPath::kTreeRange;
      }
      return SelectTree(rel, pred, *sarg,
                        *static_cast<const OrderedIndex*>(index.get()), mode);
    }
  }
  if (path_used != nullptr) *path_used = AccessPath::kSequentialScan;
  return SelectScan(rel, pred, mode);
}

}  // namespace mmdb
