// Selection operators (Section 3.2 / Section 4).  Three access paths exist
// in the MM-DBMS: hash lookup (exact match only), ordered-index lookup /
// range scan, and a sequential scan "through an unrelated index".  The
// result is always a width-1 temporary list of tuple pointers.
//
// The index an access path probes may be a partition-local composite
// (src/index/partitioned_index.h): probes fan out to per-partition shards
// and ordered scans run over a merged cursor, so every operator here — and
// the planner's path choice — is oblivious to the sharding.  The query
// service also routes DML target *finding* through Select, so a keyed
// UPDATE/DELETE costs the same index probe as the equivalent read.

#ifndef MMDB_EXEC_SELECT_H_
#define MMDB_EXEC_SELECT_H_

#include "src/exec/chunk.h"
#include "src/exec/predicate.h"
#include "src/index/index.h"
#include "src/storage/relation.h"
#include "src/storage/temp_list.h"

namespace mmdb {

enum class AccessPath { kHashLookup, kTreeLookup, kTreeRange, kSequentialScan };

const char* AccessPathName(AccessPath path);

/// Scans every tuple of `rel` through an index (Section 2.1 forbids direct
/// relation traversal).  Works with either index family.
void ScanRelation(const Relation& rel, const ScanFn& fn);

/// Sequential-scan selection: filters every tuple against `pred`.  In
/// batched mode tuples are gathered into kChunkCapacity chunks and filtered
/// through Predicate::MatchChunk with a selection vector; output rows,
/// their order, and OpCounters are identical to the tuple-at-a-time path.
TempList SelectScan(const Relation& rel, const Predicate& pred,
                    ExecMode mode = DefaultExecMode());

/// Hash-lookup selection: the equality condition `eq` (index into
/// pred.conditions()) probes `index`; remaining conditions filter residually
/// (chunk-wise in batched mode).
TempList SelectHash(const Relation& rel, const Predicate& pred, size_t eq,
                    const HashIndex& index, ExecMode mode = DefaultExecMode());

/// Ordered-index selection: the sargable condition `sarg` bounds a range
/// scan of `index`; remaining conditions filter residually (chunk-wise in
/// batched mode).
TempList SelectTree(const Relation& rel, const Predicate& pred, size_t sarg,
                    const OrderedIndex& index,
                    ExecMode mode = DefaultExecMode());

/// Chooses the best access path for `pred` per the Section 4 preference
/// order (hash lookup > tree lookup > sequential scan) and runs it.
/// If `path_used` is non-null it receives the chosen path.
TempList Select(const Relation& rel, const Predicate& pred,
                AccessPath* path_used = nullptr,
                ExecMode mode = DefaultExecMode());

}  // namespace mmdb

#endif  // MMDB_EXEC_SELECT_H_
