#include "src/exec/sort.h"

#include <numeric>

#include "src/exec/project.h"
#include "src/storage/tuple.h"

namespace mmdb {
namespace {

/// Key-extraction sort (batched mode, single numeric output column): the
/// keys are materialized once into a contiguous (key, row) array, so the
/// sort's comparisons touch no tuple memory.  The comparator bumps one
/// counted comparison per call and returns exactly what CompareRows would
/// (same single column, same type), so the swap sequence — and therefore
/// the output permutation and the data-move count — is identical to the
/// order-vector path.
template <typename K, typename GetKey>
bool SortKeyed(const TempList& in, int insertion_cutoff, const GetKey& get,
               TempList* out) {
  const size_t n = in.size();
  struct KeyRow {
    K key;
    uint32_t row;
  };
  std::vector<KeyRow> keys;
  keys.reserve(n);
  for (size_t r = 0; r < n; ++r) {
    TupleRef t = in.ResolveColumnTuple(r, 0);
    if (t == nullptr) return false;  // null resolves: generic path orders them
    keys.push_back({get(t), static_cast<uint32_t>(r)});
  }
  HybridSort(
      keys.data(), n,
      [](const KeyRow& a, const KeyRow& b) {
        counters::BumpComparisons();
        return a.key < b.key;
      },
      insertion_cutoff);
  out->Reserve(n);
  const size_t w = in.width();
  std::vector<TupleRef> row(w);
  for (size_t i = 0; i < n; ++i) {
    for (size_t s = 0; s < w; ++s) row[s] = in.At(keys[i].row, s);
    out->Append(row);
  }
  return true;
}

}  // namespace

TempList SortTempList(const TempList& in, int insertion_cutoff,
                      ExecMode mode) {
  const size_t n = in.size();
  const ResultDescriptor& desc = in.descriptor();
  if (mode == ExecMode::kBatched && desc.columns().size() == 1) {
    TempList out(in.descriptor());
    const Schema* cs = desc.ColumnSchema(0);
    const size_t cf = desc.ColumnField(0);
    const size_t off = cs->offset(cf);
    switch (cs->field(cf).type) {
      case Type::kInt32:
        if (SortKeyed<int32_t>(
                in, insertion_cutoff,
                [off](TupleRef t) { return tuple::GetInt32(t, off); }, &out)) {
          return out;
        }
        break;
      case Type::kInt64:
        if (SortKeyed<int64_t>(
                in, insertion_cutoff,
                [off](TupleRef t) { return tuple::GetInt64(t, off); }, &out)) {
          return out;
        }
        break;
      case Type::kDouble:
        if (SortKeyed<double>(
                in, insertion_cutoff,
                [off](TupleRef t) { return tuple::GetDouble(t, off); }, &out)) {
          return out;
        }
        break;
      default:
        break;  // strings/pointers: generic path below
    }
  }
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  HybridSort(
      order.data(), n,
      [&](uint32_t a, uint32_t b) { return CompareRows(in, a, b) < 0; },
      insertion_cutoff);

  TempList out(in.descriptor());
  out.Reserve(n);
  const size_t w = in.width();
  std::vector<TupleRef> row(w);
  for (size_t i = 0; i < n; ++i) {
    for (size_t s = 0; s < w; ++s) row[s] = in.At(order[i], s);
    out.Append(row);
  }
  return out;
}

void SortTupleRefs(std::vector<TupleRef>* refs, const Schema& schema,
                   size_t field, int insertion_cutoff) {
  HybridSort(
      refs->data(), refs->size(),
      [&](TupleRef a, TupleRef b) {
        return tuple::CompareField(a, b, schema, field) < 0;
      },
      insertion_cutoff);
}

}  // namespace mmdb
