#include "src/exec/sort.h"

#include <numeric>

#include "src/exec/project.h"
#include "src/storage/tuple.h"

namespace mmdb {

TempList SortTempList(const TempList& in, int insertion_cutoff) {
  const size_t n = in.size();
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  HybridSort(
      order.data(), n,
      [&](uint32_t a, uint32_t b) { return CompareRows(in, a, b) < 0; },
      insertion_cutoff);

  TempList out(in.descriptor());
  out.Reserve(n);
  const size_t w = in.width();
  std::vector<TupleRef> row(w);
  for (size_t i = 0; i < n; ++i) {
    for (size_t s = 0; s < w; ++s) row[s] = in.At(order[i], s);
    out.Append(row);
  }
  return out;
}

void SortTupleRefs(std::vector<TupleRef>* refs, const Schema& schema,
                   size_t field, int insertion_cutoff) {
  HybridSort(
      refs->data(), refs->size(),
      [&](TupleRef a, TupleRef b) {
        return tuple::CompareField(a, b, schema, field) < 0;
      },
      insertion_cutoff);
}

}  // namespace mmdb
