// Sorting entry points for query processing: sorting temporary lists on
// their output columns, used by ORDER BY-style consumers and by the sort
// tuning ablation bench.  The underlying algorithm is the hybrid quicksort
// of util/sort.h (the paper's quicksort + insertion-sort-cutoff-10).

#ifndef MMDB_EXEC_SORT_H_
#define MMDB_EXEC_SORT_H_

#include "src/exec/chunk.h"
#include "src/storage/temp_list.h"
#include "src/util/sort.h"

namespace mmdb {

/// Returns a copy of `in` with rows ordered by the descriptor's columns
/// (lexicographic, ascending).  In batched mode a single-numeric-column
/// descriptor takes a key-extraction fast path: keys are materialized once
/// and the sort runs over a contiguous (key, row) array instead of chasing
/// a tuple pointer per comparison — same comparison results, so the same
/// counted comparisons and the same output permutation.
TempList SortTempList(const TempList& in,
                      int insertion_cutoff = kDefaultInsertionSortCutoff,
                      ExecMode mode = DefaultExecMode());

/// Sorts raw tuple pointers by a single field.  Exposed for benches that
/// time the Sort Merge build phase in isolation.
void SortTupleRefs(std::vector<TupleRef>* refs, const Schema& schema,
                   size_t field,
                   int insertion_cutoff = kDefaultInsertionSortCutoff);

}  // namespace mmdb

#endif  // MMDB_EXEC_SORT_H_
