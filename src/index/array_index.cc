#include "src/index/array_index.h"

#include <cassert>
#include <cstring>

#include "src/util/counters.h"
#include "src/util/sort.h"

namespace mmdb {

class ArrayIndex::CursorImpl : public OrderedIndex::Cursor {
 public:
  CursorImpl(const ArrayIndex* index, size_t pos, bool valid)
      : index_(index), pos_(pos), valid_(valid) {}

  bool Valid() const override { return valid_; }
  TupleRef Get() const override { return index_->items_[pos_]; }

  void Next() override {
    if (!valid_) return;
    if (++pos_ >= index_->items_.size()) valid_ = false;
  }

  void Prev() override {
    if (!valid_) return;
    if (pos_ == 0) {
      valid_ = false;
    } else {
      --pos_;
    }
  }

  std::unique_ptr<Cursor> Clone() const override {
    return std::make_unique<CursorImpl>(index_, pos_, valid_);
  }

 private:
  const ArrayIndex* index_;
  size_t pos_;
  bool valid_;
};

ArrayIndex::ArrayIndex(std::shared_ptr<const KeyOps> ops,
                       const IndexConfig& config)
    : ops_(std::move(ops)) {
  set_unique(config.unique);
  if (config.expected > 0) items_.reserve(config.expected);
}

size_t ArrayIndex::LowerBoundTie(TupleRef t) const {
  size_t lo = 0, hi = items_.size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (ops_->CompareTie(items_[mid], t) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

size_t ArrayIndex::LowerBoundValue(const Value& v) const {
  size_t lo = 0, hi = items_.size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    // CompareValue(v, t) > 0 means v > key(t), i.e. key(t) < v.
    if (ops_->CompareValue(v, items_[mid]) > 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

bool ArrayIndex::Insert(TupleRef t) {
  if (!sorted_) {  // bulk-load bracket: append now, sort in EndBulk()
    items_.push_back(t);
    return true;
  }
  size_t pos = LowerBoundTie(t);
  if (pos < items_.size() && items_[pos] == t) return false;  // already here
  if (unique()) {
    // A duplicate key sits at pos (same key, larger ptr) or pos-1.
    if (pos < items_.size() && ops_->Compare(items_[pos], t) == 0) return false;
    if (pos > 0 && ops_->Compare(items_[pos - 1], t) == 0) return false;
  }
  counters::BumpDataMoves(items_.size() - pos);
  items_.insert(items_.begin() + pos, t);
  return true;
}

bool ArrayIndex::Erase(TupleRef t) {
  assert(sorted_ && "cannot Erase from an unsealed array index");
  size_t pos = LowerBoundTie(t);
  if (pos >= items_.size() || items_[pos] != t) return false;
  counters::BumpDataMoves(items_.size() - pos - 1);
  items_.erase(items_.begin() + pos);
  return true;
}

size_t ArrayIndex::StorageBytes() const {
  return sizeof(*this) + items_.capacity() * sizeof(TupleRef);
}

std::unique_ptr<OrderedIndex::Cursor> ArrayIndex::First() const {
  return std::make_unique<CursorImpl>(this, 0, !items_.empty());
}

std::unique_ptr<OrderedIndex::Cursor> ArrayIndex::Last() const {
  return std::make_unique<CursorImpl>(
      this, items_.empty() ? 0 : items_.size() - 1, !items_.empty());
}

std::unique_ptr<OrderedIndex::Cursor> ArrayIndex::Seek(const Value& v) const {
  size_t pos = LowerBoundValue(v);
  return std::make_unique<CursorImpl>(this, pos, pos < items_.size());
}

void ArrayIndex::Seal(int insertion_cutoff) {
  HybridSort(items_.data(), items_.size(),
             [this](TupleRef a, TupleRef b) { return ops_->CompareTie(a, b) < 0; },
             insertion_cutoff);
  sorted_ = true;
}

}  // namespace mmdb
