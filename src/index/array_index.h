// Array index [AHK85]: a sorted, contiguous array of tuple pointers with
// pure binary search.  The paper's verdict (Table 1): good search, *poor*
// update — "every update requires moving half of the array, on the average"
// — good storage (it is the storage-factor baseline, 1.0).
//
// It is nevertheless the workhorse of the Sort Merge join: cheap to build
// unsorted (AppendUnsorted) and then Seal(), and ~1.5x faster to scan than a
// T Tree because the elements are contiguous.

#ifndef MMDB_INDEX_ARRAY_INDEX_H_
#define MMDB_INDEX_ARRAY_INDEX_H_

#include <memory>
#include <vector>

#include "src/index/index.h"
#include "src/util/sort.h"

namespace mmdb {

class ArrayIndex : public OrderedIndex {
 public:
  ArrayIndex(std::shared_ptr<const KeyOps> ops, const IndexConfig& config);

  IndexKind kind() const override { return IndexKind::kArray; }
  const KeyOps& key_ops() const override { return *ops_; }

  bool Insert(TupleRef t) override;
  bool Erase(TupleRef t) override;
  size_t size() const override { return items_.size(); }
  size_t StorageBytes() const override;
  void BeginBulk() override { sorted_ = false; }
  void EndBulk() override { Seal(); }

  std::unique_ptr<Cursor> First() const override;
  std::unique_ptr<Cursor> Last() const override;
  std::unique_ptr<Cursor> Seek(const Value& v) const override;

  // ---- Bulk-build path for Sort Merge (Section 3.3.2) ----------------------

  /// Appends without maintaining order; the index is unusable for searches
  /// until Seal() runs.
  void AppendUnsorted(TupleRef t) { items_.push_back(t); }
  /// Sorts the appended items (hybrid quicksort, insertion cutoff below).
  void Seal(int insertion_cutoff = kDefaultInsertionSortCutoff);
  bool sealed() const { return sorted_; }

  /// Direct positional access (contiguous scan path of the merge join).
  TupleRef at(size_t i) const { return items_[i]; }
  const std::vector<TupleRef>& items() const { return items_; }

 private:
  /// First position whose element is >= (key(t), t) in tie-broken order.
  size_t LowerBoundTie(TupleRef t) const;
  /// First position whose element's key is >= v.
  size_t LowerBoundValue(const Value& v) const;

  class CursorImpl;

  std::shared_ptr<const KeyOps> ops_;
  std::vector<TupleRef> items_;
  bool sorted_ = true;
};

}  // namespace mmdb

#endif  // MMDB_INDEX_ARRAY_INDEX_H_
