#include "src/index/avl_tree.h"

#include <cassert>

#include "src/util/counters.h"

namespace mmdb {

class AvlTree::CursorImpl : public OrderedIndex::Cursor {
 public:
  explicit CursorImpl(Node* node) : node_(node) {}

  bool Valid() const override { return node_ != nullptr; }
  TupleRef Get() const override { return node_->item; }
  void Next() override {
    if (node_ != nullptr) node_ = Successor(node_);
  }
  void Prev() override {
    if (node_ != nullptr) node_ = Predecessor(node_);
  }
  std::unique_ptr<Cursor> Clone() const override {
    return std::make_unique<CursorImpl>(node_);
  }

 private:
  Node* node_;
};

AvlTree::AvlTree(std::shared_ptr<const KeyOps> ops, const IndexConfig& config)
    : ops_(std::move(ops)), pool_(&arena_) {
  set_unique(config.unique);
}

AvlTree::~AvlTree() = default;  // arena frees all nodes at once

AvlTree::Node* AvlTree::NewNode(TupleRef t, Node* parent) {
  Node* n = static_cast<Node*>(pool_.Allocate());
  n->item = t;
  n->left = n->right = nullptr;
  n->parent = parent;
  n->height = 1;
  return n;
}

void AvlTree::FreeNode(Node* n) { pool_.Free(n); }

int AvlTree::BalanceOf(const Node* n) {
  return NodeHeight(n->right) - NodeHeight(n->left);
}

bool AvlTree::UpdateHeight(Node* n) {
  int lh = NodeHeight(n->left), rh = NodeHeight(n->right);
  int8_t h = static_cast<int8_t>((lh > rh ? lh : rh) + 1);
  if (h == n->height) return false;
  n->height = h;
  return true;
}

void AvlTree::Replace(Node* parent, Node* child, Node* with) {
  if (parent == nullptr) {
    root_ = with;
  } else if (parent->left == child) {
    parent->left = with;
  } else {
    parent->right = with;
  }
  if (with != nullptr) with->parent = parent;
}

AvlTree::Node* AvlTree::RotateLeft(Node* n) {
  counters::BumpRotations();
  Node* r = n->right;
  Replace(n->parent, n, r);
  n->right = r->left;
  if (n->right != nullptr) n->right->parent = n;
  r->left = n;
  n->parent = r;
  UpdateHeight(n);
  UpdateHeight(r);
  return r;
}

AvlTree::Node* AvlTree::RotateRight(Node* n) {
  counters::BumpRotations();
  Node* l = n->left;
  Replace(n->parent, n, l);
  n->left = l->right;
  if (n->left != nullptr) n->left->parent = n;
  l->right = n;
  n->parent = l;
  UpdateHeight(n);
  UpdateHeight(l);
  return l;
}

void AvlTree::RebalanceUp(Node* n) {
  while (n != nullptr) {
    UpdateHeight(n);
    int bf = BalanceOf(n);
    if (bf > 1) {
      if (BalanceOf(n->right) < 0) RotateRight(n->right);
      n = RotateLeft(n);
    } else if (bf < -1) {
      if (BalanceOf(n->left) > 0) RotateLeft(n->left);
      n = RotateRight(n);
    }
    n = n->parent;
  }
}

AvlTree::Node* AvlTree::Minimum(Node* n) const {
  while (n != nullptr && n->left != nullptr) n = n->left;
  return n;
}

AvlTree::Node* AvlTree::Maximum(Node* n) const {
  while (n != nullptr && n->right != nullptr) n = n->right;
  return n;
}

AvlTree::Node* AvlTree::Successor(Node* n) {
  if (n->right != nullptr) {
    n = n->right;
    while (n->left != nullptr) n = n->left;
    return n;
  }
  Node* p = n->parent;
  while (p != nullptr && p->right == n) {
    n = p;
    p = p->parent;
  }
  return p;
}

AvlTree::Node* AvlTree::Predecessor(Node* n) {
  if (n->left != nullptr) {
    n = n->left;
    while (n->right != nullptr) n = n->right;
    return n;
  }
  Node* p = n->parent;
  while (p != nullptr && p->left == n) {
    n = p;
    p = p->parent;
  }
  return p;
}

AvlTree::Node* AvlTree::FindNode(TupleRef t) const {
  Node* n = root_;
  while (n != nullptr) {
    counters::BumpNodeVisits();
    int c = ops_->CompareTie(t, n->item);
    if (c == 0) return n;
    n = c < 0 ? n->left : n->right;
  }
  return nullptr;
}

bool AvlTree::Insert(TupleRef t) {
  if (root_ == nullptr) {
    root_ = NewNode(t, nullptr);
    size_ = 1;
    return true;
  }
  Node* n = root_;
  for (;;) {
    counters::BumpNodeVisits();
    if (unique() && ops_->Compare(t, n->item) == 0) return false;
    int c = ops_->CompareTie(t, n->item);
    if (c == 0) return false;  // same pointer inserted twice
    Node*& child = c < 0 ? n->left : n->right;
    if (child == nullptr) {
      child = NewNode(t, n);
      ++size_;
      RebalanceUp(n);
      return true;
    }
    n = child;
  }
}

bool AvlTree::Erase(TupleRef t) {
  Node* n = FindNode(t);
  if (n == nullptr) return false;

  if (n->left != nullptr && n->right != nullptr) {
    // Two children: move the successor's item here, then unlink the
    // successor node (which has at most a right child).
    Node* s = n->right;
    while (s->left != nullptr) s = s->left;
    n->item = s->item;
    counters::BumpDataMoves();
    n = s;
  }
  Node* child = n->left != nullptr ? n->left : n->right;
  Node* parent = n->parent;
  Replace(parent, n, child);
  FreeNode(n);
  --size_;
  RebalanceUp(parent);
  return true;
}

size_t AvlTree::StorageBytes() const {
  return sizeof(*this) + pool_.live() * NodePool<Node>::SlotBytes();
}

std::unique_ptr<OrderedIndex::Cursor> AvlTree::First() const {
  return std::make_unique<CursorImpl>(Minimum(root_));
}

std::unique_ptr<OrderedIndex::Cursor> AvlTree::Last() const {
  return std::make_unique<CursorImpl>(Maximum(root_));
}

std::unique_ptr<OrderedIndex::Cursor> AvlTree::Seek(const Value& v) const {
  Node* n = root_;
  Node* candidate = nullptr;
  while (n != nullptr) {
    counters::BumpNodeVisits();
    if (ops_->CompareValue(v, n->item) <= 0) {  // key(n) >= v
      candidate = n;
      n = n->left;
    } else {
      n = n->right;
    }
  }
  return std::make_unique<CursorImpl>(candidate);
}

int AvlTree::Height() const { return NodeHeight(root_); }

bool AvlTree::CheckSubtree(const Node* n, const Node* parent,
                           int* height) const {
  if (n == nullptr) {
    *height = 0;
    return true;
  }
  if (n->parent != parent) return false;
  int lh = 0, rh = 0;
  if (!CheckSubtree(n->left, n, &lh)) return false;
  if (!CheckSubtree(n->right, n, &rh)) return false;
  if (n->height != (lh > rh ? lh : rh) + 1) return false;
  if (rh - lh > 1 || lh - rh > 1) return false;
  if (n->left != nullptr && ops_->CompareTie(n->left->item, n->item) >= 0) {
    return false;
  }
  if (n->right != nullptr && ops_->CompareTie(n->right->item, n->item) <= 0) {
    return false;
  }
  *height = n->height;
  return true;
}

bool AvlTree::CheckInvariants() const {
  int h = 0;
  return CheckSubtree(root_, nullptr, &h);
}

}  // namespace mmdb
