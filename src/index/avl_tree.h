// AVL Tree [AHU74]: the classic balanced binary search tree, one element per
// node.  Paper's verdict (Table 1): good search ("no arithmetic
// calculations, ... just does one compare and then follows a pointer"),
// fair update, *poor* storage — two pointers and control information per
// single data item (storage factor ~3).
//
// Included as a comparison structure for the index study; the T Tree
// inherits its binary-search character and rotation discipline.

#ifndef MMDB_INDEX_AVL_TREE_H_
#define MMDB_INDEX_AVL_TREE_H_

#include <memory>

#include "src/index/index.h"
#include "src/util/arena.h"

namespace mmdb {

class AvlTree : public OrderedIndex {
 public:
  AvlTree(std::shared_ptr<const KeyOps> ops, const IndexConfig& config);
  ~AvlTree() override;

  IndexKind kind() const override { return IndexKind::kAvlTree; }
  const KeyOps& key_ops() const override { return *ops_; }

  bool Insert(TupleRef t) override;
  bool Erase(TupleRef t) override;
  size_t size() const override { return size_; }
  size_t StorageBytes() const override;

  std::unique_ptr<Cursor> First() const override;
  std::unique_ptr<Cursor> Last() const override;
  std::unique_ptr<Cursor> Seek(const Value& v) const override;

  /// Height of the root (0 = empty); exposed for balance tests.
  int Height() const;

  /// Verifies ordering, parent links, and AVL balance everywhere.
  /// Returns false (and stops) on the first violation.  Test hook.
  bool CheckInvariants() const;

 private:
  struct Node {
    TupleRef item;
    Node* left;
    Node* right;
    Node* parent;
    int8_t height;  // height of subtree rooted here, >= 1
  };

  class CursorImpl;

  Node* NewNode(TupleRef t, Node* parent);
  void FreeNode(Node* n);
  static int NodeHeight(const Node* n) { return n == nullptr ? 0 : n->height; }
  static int BalanceOf(const Node* n);
  static bool UpdateHeight(Node* n);
  /// Replaces `child` in `parent` (or root) with `with`.
  void Replace(Node* parent, Node* child, Node* with);
  Node* RotateLeft(Node* n);
  Node* RotateRight(Node* n);
  /// Rebalances from `n` to the root, updating heights.
  void RebalanceUp(Node* n);
  Node* Minimum(Node* n) const;
  Node* Maximum(Node* n) const;
  static Node* Successor(Node* n);
  static Node* Predecessor(Node* n);
  /// Node containing exactly pointer t (tie-broken search), or nullptr.
  Node* FindNode(TupleRef t) const;

  bool CheckSubtree(const Node* n, const Node* parent, int* height) const;

  std::shared_ptr<const KeyOps> ops_;
  Arena arena_;
  NodePool<Node> pool_;
  Node* root_ = nullptr;
  size_t size_ = 0;
};

}  // namespace mmdb

#endif  // MMDB_INDEX_AVL_TREE_H_
