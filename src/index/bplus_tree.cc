#include "src/index/bplus_tree.h"

#include <cassert>
#include <cstring>
#include <vector>

#include "src/util/counters.h"

namespace mmdb {

// Cursor: a (leaf, position) pair; the leaf chain makes stepping O(1).
class BPlusTree::CursorImpl : public OrderedIndex::Cursor {
 public:
  CursorImpl(const BPlusTree* tree, const Node* leaf, int pos)
      : tree_(tree), leaf_(leaf), pos_(pos) {}

  bool Valid() const override { return leaf_ != nullptr; }
  TupleRef Get() const override { return tree_->Items(leaf_)[pos_]; }

  void Next() override {
    if (leaf_ == nullptr) return;
    if (pos_ + 1 < leaf_->count) {
      ++pos_;
      return;
    }
    leaf_ = tree_->Links(leaf_)->next;
    pos_ = 0;
  }

  void Prev() override {
    if (leaf_ == nullptr) return;
    if (pos_ > 0) {
      --pos_;
      return;
    }
    leaf_ = tree_->Links(leaf_)->prev;
    pos_ = leaf_ == nullptr ? 0 : leaf_->count - 1;
  }

  std::unique_ptr<Cursor> Clone() const override {
    return std::make_unique<CursorImpl>(tree_, leaf_, pos_);
  }

 private:
  const BPlusTree* tree_;
  const Node* leaf_;
  int pos_;
};

BPlusTree::BPlusTree(std::shared_ptr<const KeyOps> ops,
                     const IndexConfig& config)
    : ops_(std::move(ops)),
      max_entries_(config.node_size < 2 ? 2 : config.node_size),
      min_entries_(max_entries_ / 2) {
  set_unique(config.unique);
}

BPlusTree::~BPlusTree() = default;

size_t BPlusTree::NodeBytes(bool leaf) const {
  size_t bytes = sizeof(Node) + max_entries_ * sizeof(TupleRef);
  bytes += leaf ? sizeof(LeafLinks) : (max_entries_ + 1) * sizeof(Node*);
  return bytes;
}

BPlusTree::Node* BPlusTree::NewNode(bool leaf, Node* parent) {
  void** free_list = leaf ? &free_leaves_ : &free_internal_;
  Node* n;
  if (*free_list != nullptr) {
    n = static_cast<Node*>(*free_list);
    *free_list = *static_cast<void**>(*free_list);
  } else {
    n = static_cast<Node*>(arena_.Allocate(NodeBytes(leaf)));
  }
  n->parent = parent;
  n->count = 0;
  n->leaf = leaf;
  if (leaf) {
    Links(n)->prev = Links(n)->next = nullptr;
    ++leaf_count_;
  } else {
    ++internal_count_;
  }
  return n;
}

void BPlusTree::FreeNode(Node* n) {
  void** free_list = n->leaf ? &free_leaves_ : &free_internal_;
  if (n->leaf) {
    --leaf_count_;
  } else {
    --internal_count_;
  }
  *reinterpret_cast<void**>(n) = *free_list;
  *free_list = n;
}

int BPlusTree::LowerBoundTie(const Node* n, TupleRef t) const {
  const TupleRef* items = Items(n);
  int lo = 0, hi = n->count;
  while (lo < hi) {
    int mid = lo + (hi - lo) / 2;
    if (ops_->CompareTie(items[mid], t) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

int BPlusTree::ChildIndexFor(const Node* n, TupleRef t) const {
  // Separator keys[i] is the smallest tie-key of subtree children[i+1]:
  // descend into children[upper_bound] = first separator tie-> t... i.e.
  // number of separators <= t.
  const TupleRef* keys = Items(n);
  int lo = 0, hi = n->count;
  while (lo < hi) {
    int mid = lo + (hi - lo) / 2;
    if (ops_->CompareTie(keys[mid], t) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

int BPlusTree::ChildSlotOf(const Node* parent, const Node* child) const {
  Node* const* ch = Children(parent);
  for (int i = 0; i <= parent->count; ++i) {
    if (ch[i] == child) return i;
  }
  assert(false && "child not under parent");
  return -1;
}

BPlusTree::Node* BPlusTree::LeafFor(TupleRef t) const {
  Node* n = root_;
  while (n != nullptr && !n->leaf) {
    counters::BumpNodeVisits();
    n = Children(n)[ChildIndexFor(n, t)];
  }
  return n;
}

BPlusTree::Node* BPlusTree::LeftmostLeaf() const {
  Node* n = root_;
  while (n != nullptr && !n->leaf) n = Children(n)[0];
  return n;
}

BPlusTree::Node* BPlusTree::RightmostLeaf() const {
  Node* n = root_;
  while (n != nullptr && !n->leaf) n = Children(n)[n->count];
  return n;
}

void BPlusTree::InsertSeparator(Node* n, int slot, TupleRef key, Node* right) {
  TupleRef* keys = Items(n);
  Node** ch = Children(n);
  if (n->count < max_entries_) {
    std::memmove(keys + slot + 1, keys + slot,
                 (n->count - slot) * sizeof(TupleRef));
    std::memmove(ch + slot + 2, ch + slot + 1,
                 (n->count - slot) * sizeof(Node*));
    counters::BumpDataMoves(n->count - slot + 1);
    keys[slot] = key;
    ch[slot + 1] = right;
    right->parent = n;
    ++n->count;
    return;
  }

  // Split: assemble the max+1 keys / max+2 children, push the middle key up.
  counters::BumpSplits();
  const int total = max_entries_ + 1;
  std::vector<TupleRef> all(total);
  std::vector<Node*> kids(total + 1);
  std::memcpy(all.data(), keys, slot * sizeof(TupleRef));
  all[slot] = key;
  std::memcpy(all.data() + slot + 1, keys + slot,
              (max_entries_ - slot) * sizeof(TupleRef));
  std::memcpy(kids.data(), ch, (slot + 1) * sizeof(Node*));
  kids[slot + 1] = right;
  std::memcpy(kids.data() + slot + 2, ch + slot + 1,
              (max_entries_ - slot) * sizeof(Node*));
  counters::BumpDataMoves(total);

  const int mid = total / 2;
  const TupleRef up_key = all[mid];
  Node* sibling = NewNode(/*leaf=*/false, n->parent);

  n->count = static_cast<int16_t>(mid);
  std::memcpy(keys, all.data(), mid * sizeof(TupleRef));
  std::memcpy(ch, kids.data(), (mid + 1) * sizeof(Node*));
  sibling->count = static_cast<int16_t>(total - mid - 1);
  std::memcpy(Items(sibling), all.data() + mid + 1,
              sibling->count * sizeof(TupleRef));
  std::memcpy(Children(sibling), kids.data() + mid + 1,
              (sibling->count + 1) * sizeof(Node*));
  for (int i = 0; i <= n->count; ++i) Children(n)[i]->parent = n;
  for (int i = 0; i <= sibling->count; ++i) {
    Children(sibling)[i]->parent = sibling;
  }

  if (n == root_) {
    Node* new_root = NewNode(/*leaf=*/false, nullptr);
    new_root->count = 1;
    Items(new_root)[0] = up_key;
    Children(new_root)[0] = n;
    Children(new_root)[1] = sibling;
    n->parent = new_root;
    sibling->parent = new_root;
    root_ = new_root;
    return;
  }
  InsertSeparator(n->parent, ChildSlotOf(n->parent, n), up_key, sibling);
}

bool BPlusTree::Insert(TupleRef t) {
  if (root_ == nullptr) {
    root_ = NewNode(/*leaf=*/true, nullptr);
    Items(root_)[0] = t;
    root_->count = 1;
    size_ = 1;
    return true;
  }
  Node* leaf = LeafFor(t);
  TupleRef* items = Items(leaf);
  const int pos = LowerBoundTie(leaf, t);
  if (pos < leaf->count && items[pos] == t) return false;
  if (unique()) {
    if (pos < leaf->count && ops_->Compare(t, items[pos]) == 0) return false;
    if (pos > 0 && ops_->Compare(t, items[pos - 1]) == 0) return false;
    // Duplicates are contiguous under tie order, but the equal-key run can
    // end at a leaf boundary: check the previous leaf's last item too.
    if (pos == 0 && Links(leaf)->prev != nullptr) {
      Node* prev = Links(leaf)->prev;
      if (ops_->Compare(t, Items(prev)[prev->count - 1]) == 0) return false;
    }
  }

  if (leaf->count < max_entries_) {
    std::memmove(items + pos + 1, items + pos,
                 (leaf->count - pos) * sizeof(TupleRef));
    counters::BumpDataMoves(leaf->count - pos + 1);
    items[pos] = t;
    ++leaf->count;
    ++size_;
    return true;
  }

  // Leaf split: left keeps ceil(total/2), right's first item is copied up
  // as the separator.
  counters::BumpSplits();
  const int total = max_entries_ + 1;
  std::vector<TupleRef> all(total);
  std::memcpy(all.data(), items, pos * sizeof(TupleRef));
  all[pos] = t;
  std::memcpy(all.data() + pos + 1, items + pos,
              (max_entries_ - pos) * sizeof(TupleRef));
  counters::BumpDataMoves(total);

  const int left_n = (total + 1) / 2;
  Node* right = NewNode(/*leaf=*/true, leaf->parent);
  leaf->count = static_cast<int16_t>(left_n);
  std::memcpy(items, all.data(), left_n * sizeof(TupleRef));
  right->count = static_cast<int16_t>(total - left_n);
  std::memcpy(Items(right), all.data() + left_n,
              right->count * sizeof(TupleRef));

  // Chain the new leaf in.
  Links(right)->next = Links(leaf)->next;
  Links(right)->prev = leaf;
  if (Links(leaf)->next != nullptr) Links(Links(leaf)->next)->prev = right;
  Links(leaf)->next = right;

  const TupleRef separator = Items(right)[0];
  ++size_;
  if (leaf == root_) {
    Node* new_root = NewNode(/*leaf=*/false, nullptr);
    new_root->count = 1;
    Items(new_root)[0] = separator;
    Children(new_root)[0] = leaf;
    Children(new_root)[1] = right;
    leaf->parent = new_root;
    right->parent = new_root;
    root_ = new_root;
    return true;
  }
  InsertSeparator(leaf->parent, ChildSlotOf(leaf->parent, leaf), separator,
                  right);
  return true;
}

void BPlusTree::RefreshSeparator(Node* leaf) {
  if (leaf->count == 0 || leaf->parent == nullptr) return;
  Node* child = leaf;
  Node* up = leaf->parent;
  while (up != nullptr && ChildSlotOf(up, child) == 0) {
    child = up;
    up = up->parent;
  }
  if (up != nullptr) {
    Items(up)[ChildSlotOf(up, child) - 1] = Items(leaf)[0];
  }
}

bool BPlusTree::Erase(TupleRef t) {
  Node* leaf = LeafFor(t);
  if (leaf == nullptr) return false;
  TupleRef* items = Items(leaf);
  const int pos = LowerBoundTie(leaf, t);
  if (pos >= leaf->count || items[pos] != t) return false;

  std::memmove(items + pos, items + pos + 1,
               (leaf->count - pos - 1) * sizeof(TupleRef));
  counters::BumpDataMoves(leaf->count - pos - 1);
  --leaf->count;
  --size_;

  // Separators must stay live pointers: if the leaf's smallest item
  // changed, refresh the ancestor separator that names this subtree.
  if (pos == 0) RefreshSeparator(leaf);

  if (leaf == root_) {
    if (leaf->count == 0) {
      FreeNode(leaf);
      root_ = nullptr;
    }
    return true;
  }
  if (leaf->count < min_entries_) FixLeafUnderflow(leaf);
  return true;
}

void BPlusTree::FixLeafUnderflow(Node* leaf) {
  Node* p = leaf->parent;
  const int slot = ChildSlotOf(p, leaf);
  Node** pch = Children(p);
  TupleRef* pkeys = Items(p);
  Node* left = slot > 0 ? pch[slot - 1] : nullptr;
  Node* right = slot < p->count ? pch[slot + 1] : nullptr;
  TupleRef* items = Items(leaf);

  if (left != nullptr && left->count > min_entries_) {
    // Borrow left's largest; it becomes this leaf's new smallest, so the
    // separator between them is exactly that item.
    std::memmove(items + 1, items, leaf->count * sizeof(TupleRef));
    items[0] = Items(left)[left->count - 1];
    counters::BumpDataMoves(leaf->count + 1);
    --left->count;
    const bool was_empty = leaf->count == 0;
    ++leaf->count;
    pkeys[slot - 1] = items[0];
    if (was_empty) RefreshSeparator(leaf);  // higher ancestor may name it
    return;
  }
  if (right != nullptr && right->count > min_entries_) {
    const bool was_empty = leaf->count == 0;
    items[leaf->count] = Items(right)[0];
    std::memmove(Items(right), Items(right) + 1,
                 (right->count - 1) * sizeof(TupleRef));
    counters::BumpDataMoves(right->count);
    --right->count;
    ++leaf->count;
    pkeys[slot] = Items(right)[0];
    if (was_empty) RefreshSeparator(leaf);
    return;
  }

  // Merge with a sibling and drop the separator between them.
  counters::BumpMerges();
  Node* dst;
  Node* src;
  int sep;
  if (left != nullptr) {
    dst = left;
    src = leaf;
    sep = slot - 1;
  } else {
    dst = leaf;
    src = right;
    sep = slot;
  }
  const bool dst_was_empty = dst->count == 0;
  std::memcpy(Items(dst) + dst->count, Items(src),
              src->count * sizeof(TupleRef));
  counters::BumpDataMoves(src->count);
  dst->count = static_cast<int16_t>(dst->count + src->count);
  // Unchain src.
  Links(dst)->next = Links(src)->next;
  if (Links(src)->next != nullptr) Links(Links(src)->next)->prev = dst;
  FreeNode(src);
  if (dst_was_empty) RefreshSeparator(dst);
  // Remove separator `sep` and child `sep+1` from the parent.
  std::memmove(pkeys + sep, pkeys + sep + 1,
               (p->count - sep - 1) * sizeof(TupleRef));
  std::memmove(pch + sep + 1, pch + sep + 2,
               (p->count - sep - 1) * sizeof(Node*));
  --p->count;
  if (p == root_) {
    if (p->count == 0) {
      root_ = pch[0];
      root_->parent = nullptr;
      FreeNode(p);
    }
    return;
  }
  if (p->count < min_entries_) FixInternalUnderflow(p);
}

void BPlusTree::FixInternalUnderflow(Node* n) {
  Node* p = n->parent;
  const int slot = ChildSlotOf(p, n);
  Node** pch = Children(p);
  TupleRef* pkeys = Items(p);
  Node* left = slot > 0 ? pch[slot - 1] : nullptr;
  Node* right = slot < p->count ? pch[slot + 1] : nullptr;
  TupleRef* keys = Items(n);
  Node** ch = Children(n);

  if (left != nullptr && left->count > min_entries_) {
    // Rotate right through the separator.
    std::memmove(keys + 1, keys, n->count * sizeof(TupleRef));
    std::memmove(ch + 1, ch, (n->count + 1) * sizeof(Node*));
    counters::BumpDataMoves(n->count + 1);
    keys[0] = pkeys[slot - 1];
    ch[0] = Children(left)[left->count];
    ch[0]->parent = n;
    pkeys[slot - 1] = Items(left)[left->count - 1];
    --left->count;
    ++n->count;
    return;
  }
  if (right != nullptr && right->count > min_entries_) {
    keys[n->count] = pkeys[slot];
    ch[n->count + 1] = Children(right)[0];
    ch[n->count + 1]->parent = n;
    pkeys[slot] = Items(right)[0];
    std::memmove(Items(right), Items(right) + 1,
                 (right->count - 1) * sizeof(TupleRef));
    std::memmove(Children(right), Children(right) + 1,
                 right->count * sizeof(Node*));
    counters::BumpDataMoves(right->count + 1);
    --right->count;
    ++n->count;
    return;
  }

  counters::BumpMerges();
  Node* dst;
  Node* src;
  int sep;
  if (left != nullptr) {
    dst = left;
    src = n;
    sep = slot - 1;
  } else {
    dst = n;
    src = right;
    sep = slot;
  }
  TupleRef* dkeys = Items(dst);
  dkeys[dst->count] = pkeys[sep];
  std::memcpy(dkeys + dst->count + 1, Items(src),
              src->count * sizeof(TupleRef));
  std::memcpy(Children(dst) + dst->count + 1, Children(src),
              (src->count + 1) * sizeof(Node*));
  counters::BumpDataMoves(src->count + 1);
  for (int i = 0; i <= src->count; ++i) {
    Children(dst)[dst->count + 1 + i]->parent = dst;
  }
  dst->count = static_cast<int16_t>(dst->count + 1 + src->count);
  FreeNode(src);
  std::memmove(pkeys + sep, pkeys + sep + 1,
               (p->count - sep - 1) * sizeof(TupleRef));
  std::memmove(pch + sep + 1, pch + sep + 2,
               (p->count - sep - 1) * sizeof(Node*));
  --p->count;
  if (p == root_) {
    if (p->count == 0) {
      root_ = pch[0];
      root_->parent = nullptr;
      FreeNode(p);
    }
    return;
  }
  if (p->count < min_entries_) FixInternalUnderflow(p);
}

size_t BPlusTree::StorageBytes() const {
  return sizeof(*this) + leaf_count_ * NodeBytes(true) +
         internal_count_ * NodeBytes(false);
}

std::unique_ptr<OrderedIndex::Cursor> BPlusTree::First() const {
  Node* leaf = LeftmostLeaf();
  return std::make_unique<CursorImpl>(this, leaf, 0);
}

std::unique_ptr<OrderedIndex::Cursor> BPlusTree::Last() const {
  Node* leaf = RightmostLeaf();
  return std::make_unique<CursorImpl>(this, leaf,
                                      leaf == nullptr ? 0 : leaf->count - 1);
}

std::unique_ptr<OrderedIndex::Cursor> BPlusTree::Seek(const Value& v) const {
  Node* n = root_;
  while (n != nullptr && !n->leaf) {
    counters::BumpNodeVisits();
    // Descend into the first child whose separator key is >= v... the
    // number of separators with key < v.
    const TupleRef* keys = Items(n);
    int lo = 0, hi = n->count;
    while (lo < hi) {
      int mid = lo + (hi - lo) / 2;
      // CompareValue(v, key) > 0 means v > key.
      if (ops_->CompareValue(v, keys[mid]) > 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    n = Children(n)[lo];
  }
  if (n == nullptr) return std::make_unique<CursorImpl>(this, nullptr, 0);
  // Lower bound within the leaf; spill to the next leaf if past the end.
  const TupleRef* items = Items(n);
  int lo = 0, hi = n->count;
  while (lo < hi) {
    int mid = lo + (hi - lo) / 2;
    if (ops_->CompareValue(v, items[mid]) > 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == n->count) {
    Node* next = Links(n)->next;
    return std::make_unique<CursorImpl>(this, next, 0);
  }
  return std::make_unique<CursorImpl>(this, n, lo);
}

int BPlusTree::Height() const {
  int h = 0;
  for (const Node* n = root_; n != nullptr;
       n = n->leaf ? nullptr : Children(n)[0]) {
    ++h;
  }
  return h;
}

bool BPlusTree::CheckSubtree(const Node* n, const Node* parent, int depth,
                             int* leaf_depth, size_t* items, TupleRef* lo,
                             TupleRef* hi) const {
  if (n->parent != parent) return false;
  if (n != root_ && n->count < min_entries_) return false;
  if (n->count < 1 || n->count > max_entries_) return false;
  const TupleRef* its = Items(n);
  if (n->leaf) {
    for (int i = 1; i < n->count; ++i) {
      if (ops_->CompareTie(its[i - 1], its[i]) >= 0) return false;
    }
    if (*leaf_depth == -1) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      return false;
    }
    *items += n->count;
    *lo = its[0];
    *hi = its[n->count - 1];
    return true;
  }
  Node* const* ch = Children(n);
  TupleRef first_lo = nullptr, last_hi = nullptr;
  for (int i = 0; i <= n->count; ++i) {
    TupleRef clo = nullptr, chi = nullptr;
    if (!CheckSubtree(ch[i], n, depth + 1, leaf_depth, items, &clo, &chi)) {
      return false;
    }
    if (i == 0) first_lo = clo;
    if (i == n->count) last_hi = chi;
    // Separator i must equal the smallest key of subtree i+1 and exceed
    // everything in subtree i.
    if (i < n->count && ops_->CompareTie(chi, its[i]) >= 0) return false;
    if (i > 0 && its[i - 1] != clo) return false;
  }
  *items += n->count == 0 ? 0 : 0;
  *lo = first_lo;
  *hi = last_hi;
  return true;
}

bool BPlusTree::CheckInvariants() const {
  if (root_ == nullptr) return size_ == 0;
  int leaf_depth = -1;
  size_t items = 0;
  TupleRef lo = nullptr, hi = nullptr;
  if (!CheckSubtree(root_, nullptr, 0, &leaf_depth, &items, &lo, &hi)) {
    return false;
  }
  if (items != size_) return false;
  // Leaf chain must cover everything in order.
  size_t chained = 0;
  TupleRef prev = nullptr;
  for (const Node* leaf = LeftmostLeaf(); leaf != nullptr;
       leaf = Links(leaf)->next) {
    if (!leaf->leaf) return false;
    for (int i = 0; i < leaf->count; ++i) {
      TupleRef cur = Items(leaf)[i];
      if (prev != nullptr && ops_->CompareTie(prev, cur) >= 0) return false;
      prev = cur;
      ++chained;
    }
    if (Links(leaf)->next != nullptr &&
        Links(Links(leaf)->next)->prev != leaf) {
      return false;
    }
  }
  return chained == size_;
}

}  // namespace mmdb
