// B+ Tree: the disk-era workhorse the paper deliberately did NOT use.
// Footnote 3: "We refer to the original B Tree, not the commonly used
// B+ Tree.  Tests reported in [LeC85] showed that the B+ Tree uses more
// storage than the B Tree and does not perform any better in main memory."
//
// It is implemented here so that claim is reproducible
// (bench_extra_bplus_vs_b): all data items live in linked leaves; internal
// nodes hold *duplicated* separator keys — pure routing overhead in main
// memory, which is exactly the storage cost the footnote complains about.
// The leaf chain does give it the cheapest ordered scan of the tree
// structures, the property disk systems keep it for.

#ifndef MMDB_INDEX_BPLUS_TREE_H_
#define MMDB_INDEX_BPLUS_TREE_H_

#include <memory>

#include "src/index/index.h"
#include "src/util/arena.h"

namespace mmdb {

class BPlusTree : public OrderedIndex {
 public:
  /// node_size = max items per leaf and max separator keys per internal
  /// node (>= 2); non-root nodes keep at least node_size / 2 entries.
  BPlusTree(std::shared_ptr<const KeyOps> ops, const IndexConfig& config);
  ~BPlusTree() override;

  IndexKind kind() const override { return IndexKind::kBPlusTree; }
  const KeyOps& key_ops() const override { return *ops_; }

  bool Insert(TupleRef t) override;
  bool Erase(TupleRef t) override;
  size_t size() const override { return size_; }
  size_t StorageBytes() const override;

  std::unique_ptr<Cursor> First() const override;
  std::unique_ptr<Cursor> Last() const override;
  std::unique_ptr<Cursor> Seek(const Value& v) const override;

  int max_entries() const { return max_entries_; }
  size_t leaf_count() const { return leaf_count_; }
  size_t internal_count() const { return internal_count_; }
  int Height() const;

  /// Verifies ordering, occupancy bounds, uniform leaf depth, separator
  /// correctness, parent links, and the leaf chain.  Test hook.
  bool CheckInvariants() const;

 private:
  struct Node {
    Node* parent;
    int16_t count;
    bool leaf;
  };
  // Layout after the Node header:
  //   leaf:     TupleRef items[max]; LeafLinks {prev, next}
  //   internal: TupleRef keys[max];  Node* children[max+1]
  struct LeafLinks {
    Node* prev;
    Node* next;
  };

  TupleRef* Items(Node* n) const {
    return reinterpret_cast<TupleRef*>(n + 1);
  }
  const TupleRef* Items(const Node* n) const {
    return reinterpret_cast<const TupleRef*>(n + 1);
  }
  char* TailOf(Node* n) const {
    return reinterpret_cast<char*>(n + 1) + max_entries_ * sizeof(TupleRef);
  }
  const char* TailOf(const Node* n) const {
    return reinterpret_cast<const char*>(n + 1) +
           max_entries_ * sizeof(TupleRef);
  }
  LeafLinks* Links(Node* n) const {
    return reinterpret_cast<LeafLinks*>(TailOf(n));
  }
  const LeafLinks* Links(const Node* n) const {
    return reinterpret_cast<const LeafLinks*>(TailOf(n));
  }
  Node** Children(Node* n) const {
    return reinterpret_cast<Node**>(TailOf(n));
  }
  Node* const* Children(const Node* n) const {
    return reinterpret_cast<Node* const*>(TailOf(n));
  }

  class CursorImpl;

  size_t NodeBytes(bool leaf) const;
  Node* NewNode(bool leaf, Node* parent);
  void FreeNode(Node* n);

  int LowerBoundTie(const Node* n, TupleRef t) const;
  /// First child to descend into for tie-key t: index of the first
  /// separator > t... children[UpperBound].
  int ChildIndexFor(const Node* n, TupleRef t) const;
  int ChildSlotOf(const Node* parent, const Node* child) const;

  Node* LeafFor(TupleRef t) const;
  Node* LeftmostLeaf() const;
  Node* RightmostLeaf() const;

  /// Inserts separator `key` with right child `right` into internal node
  /// `n` after child slot `slot`; splits upward on overflow.
  void InsertSeparator(Node* n, int slot, TupleRef key, Node* right);
  /// Re-points the ancestor separator that names `leaf`'s subtree at the
  /// leaf's current smallest item.  Separators must stay live tuple
  /// pointers (a dangling one could alias a recycled slot), so this runs
  /// whenever a leaf's first item changes.
  void RefreshSeparator(Node* leaf);
  void FixLeafUnderflow(Node* leaf);
  void FixInternalUnderflow(Node* n);

  bool CheckSubtree(const Node* n, const Node* parent, int depth,
                    int* leaf_depth, size_t* items, TupleRef* lo,
                    TupleRef* hi) const;

  std::shared_ptr<const KeyOps> ops_;
  int max_entries_;
  int min_entries_;
  Arena arena_;
  void* free_leaves_ = nullptr;
  void* free_internal_ = nullptr;
  Node* root_ = nullptr;
  size_t size_ = 0;
  size_t leaf_count_ = 0;
  size_t internal_count_ = 0;
};

}  // namespace mmdb

#endif  // MMDB_INDEX_BPLUS_TREE_H_
