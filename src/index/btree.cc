#include "src/index/btree.h"

#include <cassert>
#include <cstring>
#include <vector>

#include "src/util/counters.h"

namespace mmdb {

class BTree::CursorImpl : public OrderedIndex::Cursor {
 public:
  CursorImpl(const BTree* tree, const Node* node, int pos)
      : tree_(tree), node_(node), pos_(pos) {}

  bool Valid() const override { return node_ != nullptr; }
  TupleRef Get() const override { return node_->Items()[pos_]; }

  void Next() override {
    if (node_ == nullptr) return;
    if (!node_->leaf) {
      // Successor = leftmost item of the subtree right of this item.
      const Node* n = node_->Children(tree_->max_items_)[pos_ + 1];
      while (!n->leaf) n = n->Children(tree_->max_items_)[0];
      node_ = n;
      pos_ = 0;
      return;
    }
    if (pos_ + 1 < node_->count) {
      ++pos_;
      return;
    }
    // Walk up until we come out of a left-side subtree.
    const Node* n = node_;
    const Node* p = n->parent;
    while (p != nullptr) {
      int idx = tree_->ChildIndex(p, n);
      if (idx < p->count) {
        node_ = p;
        pos_ = idx;
        return;
      }
      n = p;
      p = p->parent;
    }
    node_ = nullptr;
    pos_ = 0;
  }

  void Prev() override {
    if (node_ == nullptr) return;
    if (!node_->leaf) {
      const Node* n = node_->Children(tree_->max_items_)[pos_];
      while (!n->leaf) n = n->Children(tree_->max_items_)[n->count];
      node_ = n;
      pos_ = n->count - 1;
      return;
    }
    if (pos_ > 0) {
      --pos_;
      return;
    }
    const Node* n = node_;
    const Node* p = n->parent;
    while (p != nullptr) {
      int idx = tree_->ChildIndex(p, n);
      if (idx > 0) {
        node_ = p;
        pos_ = idx - 1;
        return;
      }
      n = p;
      p = p->parent;
    }
    node_ = nullptr;
    pos_ = 0;
  }

  std::unique_ptr<Cursor> Clone() const override {
    return std::make_unique<CursorImpl>(tree_, node_, pos_);
  }

 private:
  const BTree* tree_;
  const Node* node_;
  int pos_;
};

BTree::BTree(std::shared_ptr<const KeyOps> ops, const IndexConfig& config)
    : ops_(std::move(ops)),
      max_items_(config.node_size < 2 ? 2 : config.node_size),
      min_items_(max_items_ / 2) {
  set_unique(config.unique);
}

BTree::~BTree() = default;

size_t BTree::NodeBytes(bool leaf) const {
  size_t bytes = sizeof(Node) + max_items_ * sizeof(TupleRef);
  if (!leaf) bytes += (max_items_ + 1) * sizeof(Node*);
  return bytes;
}

BTree::Node* BTree::NewNode(bool leaf, Node* parent) {
  void** free_list = leaf ? &free_leaves_ : &free_internal_;
  Node* n;
  if (*free_list != nullptr) {
    n = static_cast<Node*>(*free_list);
    *free_list = *static_cast<void**>(*free_list);
  } else {
    n = static_cast<Node*>(arena_.Allocate(NodeBytes(leaf)));
  }
  n->parent = parent;
  n->count = 0;
  n->leaf = leaf;
  ++node_count_;
  if (leaf) ++leaf_count_;
  return n;
}

void BTree::FreeNode(Node* n) {
  void** free_list = n->leaf ? &free_leaves_ : &free_internal_;
  --node_count_;
  if (n->leaf) --leaf_count_;
  *reinterpret_cast<void**>(n) = *free_list;
  *free_list = n;
}

int BTree::LowerBoundTie(const Node* n, TupleRef t) const {
  const TupleRef* items = n->Items();
  int lo = 0, hi = n->count;
  while (lo < hi) {
    int mid = lo + (hi - lo) / 2;
    if (ops_->CompareTie(items[mid], t) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

int BTree::LowerBoundValue(const Node* n, const Value& v) const {
  const TupleRef* items = n->Items();
  int lo = 0, hi = n->count;
  while (lo < hi) {
    int mid = lo + (hi - lo) / 2;
    if (ops_->CompareValue(v, items[mid]) > 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

int BTree::ChildIndex(const Node* parent, const Node* child) const {
  Node* const* ch = parent->Children(max_items_);
  for (int i = 0; i <= parent->count; ++i) {
    if (ch[i] == child) return i;
  }
  assert(false && "child not found in parent");
  return -1;
}

void BTree::InsertAt(Node* n, int pos, TupleRef t, Node* right_child) {
  TupleRef* items = n->Items();
  if (n->count < max_items_) {
    std::memmove(items + pos + 1, items + pos,
                 (n->count - pos) * sizeof(TupleRef));
    counters::BumpDataMoves(n->count - pos + 1);
    items[pos] = t;
    if (!n->leaf) {
      Node** ch = n->Children(max_items_);
      std::memmove(ch + pos + 2, ch + pos + 1,
                   (n->count - pos) * sizeof(Node*));
      ch[pos + 1] = right_child;
      right_child->parent = n;
    }
    ++n->count;
    return;
  }

  // Split around the median of the max_items_+1 virtual item sequence.
  counters::BumpSplits();
  const int total = max_items_ + 1;
  std::vector<TupleRef> all(total);
  std::vector<Node*> kids(total + 1, nullptr);
  std::memcpy(all.data(), items, pos * sizeof(TupleRef));
  all[pos] = t;
  std::memcpy(all.data() + pos + 1, items + pos,
              (max_items_ - pos) * sizeof(TupleRef));
  if (!n->leaf) {
    Node** ch = n->Children(max_items_);
    std::memcpy(kids.data(), ch, (pos + 1) * sizeof(Node*));
    kids[pos + 1] = right_child;
    std::memcpy(kids.data() + pos + 2, ch + pos + 1,
                (max_items_ - pos) * sizeof(Node*));
  }
  counters::BumpDataMoves(total);

  const int m = total / 2;
  const TupleRef median = all[m];
  Node* right = NewNode(n->leaf, n->parent);

  n->count = static_cast<int16_t>(m);
  std::memcpy(items, all.data(), m * sizeof(TupleRef));
  right->count = static_cast<int16_t>(total - m - 1);
  std::memcpy(right->Items(), all.data() + m + 1,
              right->count * sizeof(TupleRef));
  if (!n->leaf) {
    Node** lch = n->Children(max_items_);
    Node** rch = right->Children(max_items_);
    std::memcpy(lch, kids.data(), (m + 1) * sizeof(Node*));
    std::memcpy(rch, kids.data() + m + 1, (right->count + 1) * sizeof(Node*));
    for (int i = 0; i <= n->count; ++i) lch[i]->parent = n;
    for (int i = 0; i <= right->count; ++i) rch[i]->parent = right;
  }

  if (n == root_) {
    Node* new_root = NewNode(/*leaf=*/false, nullptr);
    new_root->count = 1;
    new_root->Items()[0] = median;
    new_root->Children(max_items_)[0] = n;
    new_root->Children(max_items_)[1] = right;
    n->parent = new_root;
    right->parent = new_root;
    root_ = new_root;
    return;
  }
  InsertAt(n->parent, ChildIndex(n->parent, n), median, right);
}

bool BTree::Insert(TupleRef t) {
  if (root_ == nullptr) {
    root_ = NewNode(/*leaf=*/true, nullptr);
    root_->Items()[0] = t;
    root_->count = 1;
    size_ = 1;
    return true;
  }
  Node* n = root_;
  for (;;) {
    counters::BumpNodeVisits();
    int pos = LowerBoundTie(n, t);
    const TupleRef* items = n->Items();
    if (pos < n->count && items[pos] == t) return false;
    if (unique()) {
      if (pos < n->count && ops_->Compare(t, items[pos]) == 0) return false;
      if (pos > 0 && ops_->Compare(t, items[pos - 1]) == 0) return false;
    }
    if (n->leaf) {
      InsertAt(n, pos, t, nullptr);
      ++size_;
      return true;
    }
    n = n->Children(max_items_)[pos];
  }
}

bool BTree::Erase(TupleRef t) {
  Node* n = root_;
  while (n != nullptr) {
    counters::BumpNodeVisits();
    int pos = LowerBoundTie(n, t);
    TupleRef* items = n->Items();
    if (pos < n->count && items[pos] == t) {
      if (n->leaf) {
        std::memmove(items + pos, items + pos + 1,
                     (n->count - pos - 1) * sizeof(TupleRef));
        counters::BumpDataMoves(n->count - pos - 1);
        --n->count;
        --size_;
        FixUnderflow(n);
        return true;
      }
      // Interior item: replace with its in-order predecessor, then fix the
      // donating leaf.
      Node* pred = n->Children(max_items_)[pos];
      while (!pred->leaf) pred = pred->Children(max_items_)[pred->count];
      items[pos] = pred->Items()[pred->count - 1];
      counters::BumpDataMoves();
      --pred->count;
      --size_;
      FixUnderflow(pred);
      return true;
    }
    if (n->leaf) return false;
    n = n->Children(max_items_)[pos];
  }
  return false;
}

void BTree::FixUnderflow(Node* n) {
  if (n == root_) {
    if (n->count == 0) {
      if (n->leaf) {
        FreeNode(n);
        root_ = nullptr;
      } else {
        root_ = n->Children(max_items_)[0];
        root_->parent = nullptr;
        FreeNode(n);
      }
    }
    return;
  }
  if (n->count >= min_items_) return;

  Node* p = n->parent;
  const int idx = ChildIndex(p, n);
  Node** pch = p->Children(max_items_);
  TupleRef* pitems = p->Items();
  Node* left = idx > 0 ? pch[idx - 1] : nullptr;
  Node* right = idx < p->count ? pch[idx + 1] : nullptr;

  if (left != nullptr && left->count > min_items_) {
    // Rotate one item right through the separator.
    TupleRef* items = n->Items();
    std::memmove(items + 1, items, n->count * sizeof(TupleRef));
    items[0] = pitems[idx - 1];
    pitems[idx - 1] = left->Items()[left->count - 1];
    counters::BumpDataMoves(n->count + 2);
    if (!n->leaf) {
      Node** ch = n->Children(max_items_);
      std::memmove(ch + 1, ch, (n->count + 1) * sizeof(Node*));
      ch[0] = left->Children(max_items_)[left->count];
      ch[0]->parent = n;
    }
    --left->count;
    ++n->count;
    return;
  }
  if (right != nullptr && right->count > min_items_) {
    TupleRef* items = n->Items();
    items[n->count] = pitems[idx];
    pitems[idx] = right->Items()[0];
    std::memmove(right->Items(), right->Items() + 1,
                 (right->count - 1) * sizeof(TupleRef));
    counters::BumpDataMoves(right->count + 1);
    if (!n->leaf) {
      Node** ch = n->Children(max_items_);
      Node** rch = right->Children(max_items_);
      ch[n->count + 1] = rch[0];
      ch[n->count + 1]->parent = n;
      std::memmove(rch, rch + 1, right->count * sizeof(Node*));
    }
    --right->count;
    ++n->count;
    return;
  }

  // Merge with a sibling: (left, separator, n) or (n, separator, right).
  counters::BumpMerges();
  Node* dst;
  Node* src;
  int sep;
  if (left != nullptr) {
    dst = left;
    src = n;
    sep = idx - 1;
  } else {
    dst = n;
    src = right;
    sep = idx;
  }
  TupleRef* ditems = dst->Items();
  ditems[dst->count] = pitems[sep];
  std::memcpy(ditems + dst->count + 1, src->Items(),
              src->count * sizeof(TupleRef));
  counters::BumpDataMoves(src->count + 1);
  if (!dst->leaf) {
    Node** dch = dst->Children(max_items_);
    Node** sch = src->Children(max_items_);
    std::memcpy(dch + dst->count + 1, sch, (src->count + 1) * sizeof(Node*));
    for (int i = 0; i <= src->count; ++i) {
      dch[dst->count + 1 + i]->parent = dst;
    }
  }
  dst->count = static_cast<int16_t>(dst->count + 1 + src->count);

  // Drop the separator and the src child from the parent.
  std::memmove(pitems + sep, pitems + sep + 1,
               (p->count - sep - 1) * sizeof(TupleRef));
  std::memmove(pch + sep + 1, pch + sep + 2,
               (p->count - sep - 1) * sizeof(Node*));
  --p->count;
  FreeNode(src);
  FixUnderflow(p);
}

size_t BTree::StorageBytes() const {
  const size_t internal = node_count_ - leaf_count_;
  return sizeof(*this) + leaf_count_ * NodeBytes(true) +
         internal * NodeBytes(false);
}

BTree::Node* BTree::LeftmostLeaf(Node* n) const {
  while (n != nullptr && !n->leaf) n = n->Children(max_items_)[0];
  return n;
}

BTree::Node* BTree::RightmostLeaf(Node* n) const {
  while (n != nullptr && !n->leaf) n = n->Children(max_items_)[n->count];
  return n;
}

std::unique_ptr<OrderedIndex::Cursor> BTree::First() const {
  Node* n = LeftmostLeaf(root_);
  return std::make_unique<CursorImpl>(this, n, 0);
}

std::unique_ptr<OrderedIndex::Cursor> BTree::Last() const {
  Node* n = RightmostLeaf(root_);
  return std::make_unique<CursorImpl>(this, n, n == nullptr ? 0 : n->count - 1);
}

std::unique_ptr<OrderedIndex::Cursor> BTree::Seek(const Value& v) const {
  const Node* n = root_;
  const Node* cand_node = nullptr;
  int cand_pos = 0;
  while (n != nullptr) {
    counters::BumpNodeVisits();
    int pos = LowerBoundValue(n, v);
    if (pos < n->count) {
      cand_node = n;
      cand_pos = pos;
    }
    if (n->leaf) break;
    n = n->Children(max_items_)[pos];
  }
  return std::make_unique<CursorImpl>(this, cand_node, cand_pos);
}

int BTree::Height() const {
  int h = 0;
  for (const Node* n = root_; n != nullptr;
       n = n->leaf ? nullptr : n->Children(max_items_)[0]) {
    ++h;
  }
  return h;
}

bool BTree::CheckSubtree(const Node* n, const Node* parent, int depth,
                         int* leaf_depth, size_t* items, TupleRef* lo,
                         TupleRef* hi) const {
  if (n->parent != parent) return false;
  if (n->count < 1 || n->count > max_items_) return false;
  if (n != root_ && n->count < min_items_) return false;
  const TupleRef* its = n->Items();
  for (int i = 1; i < n->count; ++i) {
    if (ops_->CompareTie(its[i - 1], its[i]) >= 0) return false;
  }
  if (n->leaf) {
    if (*leaf_depth == -1) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      return false;
    }
    *items += n->count;
    *lo = its[0];
    *hi = its[n->count - 1];
    return true;
  }
  Node* const* ch = n->Children(max_items_);
  TupleRef first_lo = nullptr, last_hi = nullptr;
  for (int i = 0; i <= n->count; ++i) {
    TupleRef clo = nullptr, chi = nullptr;
    if (!CheckSubtree(ch[i], n, depth + 1, leaf_depth, items, &clo, &chi)) {
      return false;
    }
    if (i == 0) first_lo = clo;
    if (i == n->count) last_hi = chi;
    if (i > 0 && ops_->CompareTie(its[i - 1], clo) >= 0) return false;
    if (i < n->count && ops_->CompareTie(chi, its[i]) >= 0) return false;
  }
  *items += n->count;
  *lo = first_lo;
  *hi = last_hi;
  return true;
}

bool BTree::CheckInvariants() const {
  if (root_ == nullptr) return size_ == 0;
  int leaf_depth = -1;
  size_t items = 0;
  TupleRef lo = nullptr, hi = nullptr;
  if (!CheckSubtree(root_, nullptr, 0, &leaf_depth, &items, &lo, &hi)) {
    return false;
  }
  return items == size_;
}

}  // namespace mmdb
