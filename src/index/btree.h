// B Tree [Com79]: the *original* B Tree, carrying data items in internal
// nodes as well as leaves.  The paper deliberately avoids the B+ Tree
// (footnote 3: it "uses more storage ... and does not perform any better in
// main memory").  Verdict (Table 1): fair search (several binary searches,
// one per node on the path), good update, good storage — leaf nodes, which
// dominate, hold only data items (footnote 4).
//
// Node capacity (max items per node) is the "Node Size" axis of the study.

#ifndef MMDB_INDEX_BTREE_H_
#define MMDB_INDEX_BTREE_H_

#include <memory>

#include "src/index/index.h"
#include "src/util/arena.h"

namespace mmdb {

class BTree : public OrderedIndex {
 public:
  /// node_size = max items per node (>= 2); non-root nodes keep at least
  /// node_size / 2 items.
  BTree(std::shared_ptr<const KeyOps> ops, const IndexConfig& config);
  ~BTree() override;

  IndexKind kind() const override { return IndexKind::kBTree; }
  const KeyOps& key_ops() const override { return *ops_; }

  bool Insert(TupleRef t) override;
  bool Erase(TupleRef t) override;
  size_t size() const override { return size_; }
  size_t StorageBytes() const override;

  std::unique_ptr<Cursor> First() const override;
  std::unique_ptr<Cursor> Last() const override;
  std::unique_ptr<Cursor> Seek(const Value& v) const override;

  int max_items() const { return max_items_; }
  size_t node_count() const { return node_count_; }
  int Height() const;

  /// Verifies ordering, item-count bounds, uniform leaf depth, and parent
  /// links.  Test hook.
  bool CheckInvariants() const;

 private:
  struct Node {
    Node* parent;
    int16_t count;
    bool leaf;
    // Layout: TupleRef items[max_items_], then (internal nodes only)
    // Node* children[max_items_ + 1].
    TupleRef* Items() { return reinterpret_cast<TupleRef*>(this + 1); }
    const TupleRef* Items() const {
      return reinterpret_cast<const TupleRef*>(this + 1);
    }
    Node** Children(int max_items) {
      return reinterpret_cast<Node**>(reinterpret_cast<char*>(this + 1) +
                                      max_items * sizeof(TupleRef));
    }
    Node* const* Children(int max_items) const {
      return reinterpret_cast<Node* const*>(
          reinterpret_cast<const char*>(this + 1) +
          max_items * sizeof(TupleRef));
    }
  };

  class CursorImpl;

  Node* NewNode(bool leaf, Node* parent);
  void FreeNode(Node* n);
  size_t NodeBytes(bool leaf) const;

  int LowerBoundTie(const Node* n, TupleRef t) const;
  int LowerBoundValue(const Node* n, const Value& v) const;
  /// Position of `child` within parent's child array.
  int ChildIndex(const Node* parent, const Node* child) const;

  /// Inserts (t, right_child) into `n` at item position `pos`; splits upward
  /// on overflow.
  void InsertAt(Node* n, int pos, TupleRef t, Node* right_child);
  /// Repairs an underflowing node by borrowing from or merging with a
  /// sibling, recursing upward.
  void FixUnderflow(Node* n);

  Node* LeftmostLeaf(Node* n) const;
  Node* RightmostLeaf(Node* n) const;

  bool CheckSubtree(const Node* n, const Node* parent, int depth,
                    int* leaf_depth, size_t* items, TupleRef* lo,
                    TupleRef* hi) const;

  std::shared_ptr<const KeyOps> ops_;
  int max_items_;
  int min_items_;
  Arena arena_;
  void* free_leaves_ = nullptr;
  void* free_internal_ = nullptr;
  Node* root_ = nullptr;
  size_t size_ = 0;
  size_t node_count_ = 0;
  size_t leaf_count_ = 0;
};

}  // namespace mmdb

#endif  // MMDB_INDEX_BTREE_H_
