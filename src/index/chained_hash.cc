#include "src/index/chained_hash.h"

#include "src/util/counters.h"

namespace mmdb {
namespace {

size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

ChainedBucketHash::ChainedBucketHash(std::shared_ptr<const KeyOps> ops,
                                     const IndexConfig& config)
    : ops_(std::move(ops)),
      pool_(&arena_),
      table_(NextPow2(config.expected < 1 ? 1 : config.expected), nullptr),
      mask_(table_.size() - 1) {
  set_unique(config.unique);
}

ChainedBucketHash::~ChainedBucketHash() = default;

bool ChainedBucketHash::Insert(TupleRef t) {
  return InsertHashed(t, ops_->Hash(t));
}

bool ChainedBucketHash::InsertHashed(TupleRef t, uint64_t hash) {
  const size_t b = BucketOf(hash);
  for (Entry* e = table_[b]; e != nullptr; e = e->next) {
    if (e->item == t) return false;
    if (unique() && ops_->Compare(t, e->item) == 0) return false;
  }
  Entry* e = static_cast<Entry*>(pool_.Allocate());
  e->item = t;
  e->next = table_[b];
  table_[b] = e;
  ++size_;
  return true;
}

bool ChainedBucketHash::Erase(TupleRef t) {
  const size_t b = BucketOf(ops_->Hash(t));
  for (Entry** link = &table_[b]; *link != nullptr; link = &(*link)->next) {
    if ((*link)->item == t) {
      Entry* victim = *link;
      *link = victim->next;
      pool_.Free(victim);
      --size_;
      return true;
    }
  }
  return false;
}

TupleRef ChainedBucketHash::Find(const Value& key) const {
  const size_t b = BucketOf(ops_->HashValue(key));
  for (Entry* e = table_[b]; e != nullptr; e = e->next) {
    if (ops_->CompareValue(key, e->item) == 0) return e->item;
  }
  return nullptr;
}

void ChainedBucketHash::FindAll(const Value& key,
                                std::vector<TupleRef>* out) const {
  const size_t b = BucketOf(ops_->HashValue(key));
  for (Entry* e = table_[b]; e != nullptr; e = e->next) {
    if (ops_->CompareValue(key, e->item) == 0) out->push_back(e->item);
  }
}

size_t ChainedBucketHash::StorageBytes() const {
  return sizeof(*this) + table_.capacity() * sizeof(Entry*) +
         pool_.live() * NodePool<Entry>::SlotBytes();
}

void ChainedBucketHash::ScanAll(const ScanFn& fn) const {
  for (Entry* head : table_) {
    for (Entry* e = head; e != nullptr; e = e->next) {
      if (!fn(e->item)) return;
    }
  }
}

HashIndex::HashStats ChainedBucketHash::Stats() const {
  HashStats s;
  s.buckets = table_.size();
  s.overflow_nodes = size_;  // every element lives in a chained node
  s.avg_chain_length =
      table_.empty() ? 0.0 : static_cast<double>(size_) / table_.size();
  return s;
}

}  // namespace mmdb
