// Chained Bucket Hashing [AHU74, Knu73]: a fixed-size bucket table with
// per-bucket chains.  Paper's verdict (Table 1): great search and update,
// fair storage, but it is a *static* structure — the table cannot grow, so
// chains lengthen if the element count outgrows the table.  The paper uses
// it as the temporary-index structure for unordered data, and the Hash Join
// builds one on the inner relation's join column.

#ifndef MMDB_INDEX_CHAINED_HASH_H_
#define MMDB_INDEX_CHAINED_HASH_H_

#include <algorithm>
#include <memory>
#include <vector>

#include "src/index/index.h"
#include "src/util/arena.h"
#include "src/util/counters.h"

namespace mmdb {

class ChainedBucketHash : public HashIndex {
 public:
  /// The table is sized to the next power of two >= config.expected at
  /// construction and never resized.
  ChainedBucketHash(std::shared_ptr<const KeyOps> ops,
                    const IndexConfig& config);
  ~ChainedBucketHash() override;

  IndexKind kind() const override { return IndexKind::kChainedBucketHash; }
  const KeyOps& key_ops() const override { return *ops_; }

  bool Insert(TupleRef t) override;
  /// Insert against a pre-computed key hash.  Partitioned hash-join builds
  /// hash each tuple once to route it, then reuse the hash here instead of
  /// paying a second hash call.
  bool InsertHashed(TupleRef t, uint64_t hash);
  /// Hash of a tuple's key (one counted hash-function call).
  uint64_t HashTuple(TupleRef t) const { return ops_->Hash(t); }
  bool Erase(TupleRef t) override;
  TupleRef Find(const Value& key) const override;
  void FindAll(const Value& key, std::vector<TupleRef>* out) const override;
  size_t size() const override { return size_; }
  size_t StorageBytes() const override;

  void ScanAll(const ScanFn& fn) const override;
  HashStats Stats() const override;

  size_t table_size() const { return table_.size(); }

  /// Hash of a probe key (one counted hash-function call, same as the one
  /// FindAll would make).  Exposed so batched probes can hash a whole chunk
  /// up front and route/prefetch before any chain walk.
  uint64_t HashOf(const Value& key) const { return ops_->HashValue(key); }

  /// Prefetches the bucket-head slot for a key hash.  Batched probe loops
  /// issue these a chunk ahead, overlapping the slot misses with the chain
  /// walks of earlier keys.
  void PrefetchBucket(uint64_t hash) const { Prefetch(&table_[BucketOf(hash)]); }

  /// FindAll against a pre-computed hash: walks the chain emitting every
  /// match, prefetching the next chain node one step ahead.  Comparison
  /// counts are identical to FindAll (one CompareValue per chain entry).
  template <typename Emit>
  void FindAllHashed(const Value& key, uint64_t hash, Emit&& emit) const {
    for (Entry* e = table_[BucketOf(hash)]; e != nullptr; e = e->next) {
      if (e->next != nullptr) Prefetch(e->next);
      if (ops_->CompareValue(key, e->item) == 0) emit(e->item);
    }
  }

  /// Batched probe: for every key, calls emit(key_index, item) for each
  /// matching item, in ascending key order (output order identical to n
  /// scalar FindAll calls).  Runs in sub-batches: pass 1 hashes the keys and
  /// prefetches their bucket slots; pass 2 walks the chains with the head
  /// entry of a later key prefetched ahead — the cache misses of probe i+k
  /// overlap the compare work of probe i.  Per-key hash-call and comparison
  /// counts match the scalar loop exactly.
  template <typename Emit>
  void FindAllBatch(const Value* keys, size_t n, Emit&& emit) const {
    constexpr size_t kSub = 256;     // 2 KiB of hashes: L1-resident
    constexpr size_t kAhead = 8;     // head-entry prefetch distance
    uint64_t hashes[kSub];
    for (size_t base = 0; base < n; base += kSub) {
      const size_t m = std::min(kSub, n - base);
      for (size_t i = 0; i < m; ++i) {
        hashes[i] = ops_->HashValue(keys[base + i]);
        PrefetchBucket(hashes[i]);
      }
      for (size_t i = 0; i < m; ++i) {
        if (i + kAhead < m) {
          // The slot itself is cached from pass 1, so peeking at the head
          // pointer is cheap; prefetching it hides the first chain miss.
          Entry* head = table_[BucketOf(hashes[i + kAhead])];
          if (head != nullptr) Prefetch(head);
        }
        const Value& key = keys[base + i];
        for (Entry* e = table_[BucketOf(hashes[i])]; e != nullptr;
             e = e->next) {
          if (e->next != nullptr) Prefetch(e->next);
          if (ops_->CompareValue(key, e->item) == 0) emit(base + i, e->item);
        }
      }
    }
  }

 private:
  struct Entry {
    TupleRef item;
    Entry* next;
  };

  static void Prefetch(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(p, /*rw=*/0, /*locality=*/1);
#else
    (void)p;
#endif
    counters::BumpPrefetches();
  }

  size_t BucketOf(uint64_t hash) const { return hash & mask_; }

  std::shared_ptr<const KeyOps> ops_;
  Arena arena_;
  NodePool<Entry> pool_;
  std::vector<Entry*> table_;
  size_t mask_;
  size_t size_ = 0;
};

}  // namespace mmdb

#endif  // MMDB_INDEX_CHAINED_HASH_H_
