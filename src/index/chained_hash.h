// Chained Bucket Hashing [AHU74, Knu73]: a fixed-size bucket table with
// per-bucket chains.  Paper's verdict (Table 1): great search and update,
// fair storage, but it is a *static* structure — the table cannot grow, so
// chains lengthen if the element count outgrows the table.  The paper uses
// it as the temporary-index structure for unordered data, and the Hash Join
// builds one on the inner relation's join column.

#ifndef MMDB_INDEX_CHAINED_HASH_H_
#define MMDB_INDEX_CHAINED_HASH_H_

#include <memory>
#include <vector>

#include "src/index/index.h"
#include "src/util/arena.h"

namespace mmdb {

class ChainedBucketHash : public HashIndex {
 public:
  /// The table is sized to the next power of two >= config.expected at
  /// construction and never resized.
  ChainedBucketHash(std::shared_ptr<const KeyOps> ops,
                    const IndexConfig& config);
  ~ChainedBucketHash() override;

  IndexKind kind() const override { return IndexKind::kChainedBucketHash; }
  const KeyOps& key_ops() const override { return *ops_; }

  bool Insert(TupleRef t) override;
  bool Erase(TupleRef t) override;
  TupleRef Find(const Value& key) const override;
  void FindAll(const Value& key, std::vector<TupleRef>* out) const override;
  size_t size() const override { return size_; }
  size_t StorageBytes() const override;

  void ScanAll(const ScanFn& fn) const override;
  HashStats Stats() const override;

  size_t table_size() const { return table_.size(); }

 private:
  struct Entry {
    TupleRef item;
    Entry* next;
  };

  size_t BucketOf(uint64_t hash) const { return hash & mask_; }

  std::shared_ptr<const KeyOps> ops_;
  Arena arena_;
  NodePool<Entry> pool_;
  std::vector<Entry*> table_;
  size_t mask_;
  size_t size_ = 0;
};

}  // namespace mmdb

#endif  // MMDB_INDEX_CHAINED_HASH_H_
