#include "src/index/extendible_hash.h"

#include <cassert>
#include <cstring>

#include "src/util/counters.h"

namespace mmdb {

ExtendibleHash::ExtendibleHash(std::shared_ptr<const KeyOps> ops,
                               const IndexConfig& config)
    : ops_(std::move(ops)),
      capacity_(config.node_size < 1 ? 1 : config.node_size) {
  set_unique(config.unique);
  dir_.push_back(NewBucket(0));
}

ExtendibleHash::~ExtendibleHash() = default;

size_t ExtendibleHash::BucketBytes() const {
  return sizeof(Bucket) + (capacity_ - 1) * sizeof(TupleRef);
}

ExtendibleHash::Bucket* ExtendibleHash::NewBucket(int local_depth) {
  Bucket* b;
  if (free_list_ != nullptr) {
    b = static_cast<Bucket*>(free_list_);
    free_list_ = *static_cast<void**>(free_list_);
  } else {
    b = static_cast<Bucket*>(arena_.Allocate(BucketBytes()));
  }
  b->overflow = nullptr;
  b->local_depth = static_cast<int16_t>(local_depth);
  b->count = 0;
  ++bucket_count_;
  return b;
}

void ExtendibleHash::FreeBucket(Bucket* b) {
  *reinterpret_cast<void**>(b) = free_list_;
  free_list_ = b;
  --bucket_count_;
}

void ExtendibleHash::AppendToChain(Bucket* b, TupleRef t) {
  while (b->count == capacity_) {
    if (b->overflow == nullptr) {
      b->overflow = NewBucket(b->local_depth);
      --bucket_count_;
      ++overflow_count_;
    }
    b = b->overflow;
  }
  b->items[b->count++] = t;
  counters::BumpDataMoves();
}

size_t ExtendibleHash::ChainCount(const Bucket* b) const {
  size_t n = 0;
  for (; b != nullptr; b = b->overflow) n += b->count;
  return n;
}

bool ExtendibleHash::SplitWouldSeparate(const Bucket* b,
                                        uint64_t new_hash) const {
  const int depth = b->local_depth;
  const uint64_t want = (new_hash >> depth) & 1;
  for (const Bucket* c = b; c != nullptr; c = c->overflow) {
    for (int i = 0; i < c->count; ++i) {
      if (((ops_->Hash(c->items[i]) >> depth) & 1) != want) return true;
    }
  }
  return false;
}

void ExtendibleHash::Split(uint64_t hash) {
  Bucket* b = BucketFor(hash);
  if (b->local_depth == global_depth_) {
    counters::BumpSplits();
    const size_t old_size = dir_.size();
    dir_.resize(old_size * 2);
    for (size_t i = 0; i < old_size; ++i) dir_[old_size + i] = dir_[i];
    ++global_depth_;
  }
  counters::BumpSplits();
  const int depth = b->local_depth;
  Bucket* buddy = NewBucket(depth + 1);

  // Redirect the buddy's directory run before re-threading items.
  const size_t stride = size_t{1} << (depth + 1);
  const size_t start =
      (hash & ((size_t{1} << depth) - 1)) | (size_t{1} << depth);
  for (size_t i = start; i < dir_.size(); i += stride) dir_[i] = buddy;

  // Detach the whole chain and re-append every item to its new home.
  Bucket* chain = b->overflow;
  b->overflow = nullptr;
  b->local_depth = static_cast<int16_t>(depth + 1);
  std::vector<TupleRef> keep(b->items, b->items + b->count);
  b->count = 0;
  for (TupleRef t : keep) {
    AppendToChain(((ops_->Hash(t) >> depth) & 1) ? buddy : b, t);
  }
  while (chain != nullptr) {
    for (int i = 0; i < chain->count; ++i) {
      TupleRef t = chain->items[i];
      AppendToChain(((ops_->Hash(t) >> depth) & 1) ? buddy : b, t);
    }
    Bucket* next = chain->overflow;
    --overflow_count_;
    ++bucket_count_;  // balance FreeBucket's decrement
    FreeBucket(chain);
    chain = next;
  }
}

bool ExtendibleHash::Insert(TupleRef t) {
  const uint64_t h = ops_->Hash(t);
  for (;;) {
    Bucket* b = BucketFor(h);
    for (Bucket* c = b; c != nullptr; c = c->overflow) {
      for (int i = 0; i < c->count; ++i) {
        if (c->items[i] == t) return false;
        if (unique() && ops_->Compare(t, c->items[i]) == 0) return false;
      }
    }
    if (b->count < capacity_) {
      b->items[b->count++] = t;
      ++size_;
      return true;
    }
    if (global_depth_ < kMaxGlobalDepth && SplitWouldSeparate(b, h)) {
      Split(h);
      continue;
    }
    // Unsplittable pile-up (duplicate keys / identical hash prefixes):
    // overflow chain.
    AppendToChain(b, t);
    ++size_;
    return true;
  }
}

void ExtendibleHash::MaybeMerge(uint64_t hash) {
  for (;;) {
    Bucket* b = BucketFor(hash);
    const int depth = b->local_depth;
    if (depth == 0) break;
    const size_t idx = hash & ((size_t{1} << global_depth_) - 1);
    const size_t buddy_idx = idx ^ (size_t{1} << (depth - 1));
    Bucket* buddy = dir_[buddy_idx];
    if (buddy == b || buddy->local_depth != depth) break;
    if (b->overflow != nullptr || buddy->overflow != nullptr) break;
    if (b->count + buddy->count > capacity_) break;

    counters::BumpMerges();
    std::memcpy(&b->items[b->count], &buddy->items[0],
                buddy->count * sizeof(TupleRef));
    counters::BumpDataMoves(buddy->count);
    b->count = static_cast<int16_t>(b->count + buddy->count);
    b->local_depth = static_cast<int16_t>(depth - 1);
    const size_t stride = size_t{1} << (depth - 1);
    const size_t start = buddy_idx & (stride - 1);
    for (size_t i = start; i < dir_.size(); i += stride) {
      if (dir_[i] == buddy) dir_[i] = b;
    }
    FreeBucket(buddy);

    // Halving is only possible once no bucket sits at the full global
    // depth, which can only change when a top-depth pair merges — checking
    // the (O(directory)) mirror condition on other merges is wasted work.
    while (depth == global_depth_ && global_depth_ > 0) {
      const size_t half = dir_.size() / 2;
      bool mirrored = true;
      for (size_t i = 0; i < half; ++i) {
        if (dir_[i] != dir_[half + i]) {
          mirrored = false;
          break;
        }
      }
      if (!mirrored) break;
      dir_.resize(half);
      --global_depth_;
    }
  }
}

bool ExtendibleHash::Erase(TupleRef t) {
  const uint64_t h = ops_->Hash(t);
  Bucket* head = BucketFor(h);
  for (Bucket* c = head; c != nullptr; c = c->overflow) {
    for (int i = 0; i < c->count; ++i) {
      if (c->items[i] != t) continue;
      // Fill the hole with the last item of the chain tail.
      Bucket* tail = c;
      while (tail->overflow != nullptr && tail->overflow->count > 0) {
        tail = tail->overflow;
      }
      c->items[i] = tail->items[tail->count - 1];
      counters::BumpDataMoves();
      --tail->count;
      if (tail->count == 0 && tail != head) {
        Bucket* parent = head;
        while (parent->overflow != tail) parent = parent->overflow;
        parent->overflow = tail->overflow;
        --overflow_count_;
        ++bucket_count_;  // balance FreeBucket's decrement
        FreeBucket(tail);
      }
      --size_;
      MaybeMerge(h);
      return true;
    }
  }
  return false;
}

TupleRef ExtendibleHash::Find(const Value& key) const {
  for (Bucket* b = BucketFor(ops_->HashValue(key)); b != nullptr;
       b = b->overflow) {
    for (int i = 0; i < b->count; ++i) {
      if (ops_->CompareValue(key, b->items[i]) == 0) return b->items[i];
    }
  }
  return nullptr;
}

void ExtendibleHash::FindAll(const Value& key,
                             std::vector<TupleRef>* out) const {
  for (Bucket* b = BucketFor(ops_->HashValue(key)); b != nullptr;
       b = b->overflow) {
    for (int i = 0; i < b->count; ++i) {
      if (ops_->CompareValue(key, b->items[i]) == 0) {
        out->push_back(b->items[i]);
      }
    }
  }
}

size_t ExtendibleHash::StorageBytes() const {
  return sizeof(*this) + dir_.capacity() * sizeof(Bucket*) +
         (bucket_count_ + overflow_count_) * BucketBytes();
}

void ExtendibleHash::ScanAll(const ScanFn& fn) const {
  bool stop = false;
  ForEachBucket([&](Bucket* head) {
    if (stop) return;
    for (Bucket* b = head; b != nullptr; b = b->overflow) {
      for (int i = 0; i < b->count; ++i) {
        if (!fn(b->items[i])) {
          stop = true;
          return;
        }
      }
    }
  });
}

HashIndex::HashStats ExtendibleHash::Stats() const {
  HashStats s;
  s.buckets = bucket_count_;
  s.overflow_nodes = overflow_count_;
  s.avg_chain_length =
      bucket_count_ == 0 ? 0.0 : static_cast<double>(size_) / bucket_count_;
  return s;
}

}  // namespace mmdb
