// Extendible Hashing [FNP79]: a directory of 2^global_depth pointers into
// shared buckets; a full bucket splits by local depth, doubling the
// directory when local depth catches up with global depth.  Paper's verdict
// (Table 1): great search and update but *poor* storage — "a small node size
// increased the probability that some nodes would get more values than
// others, causing the directory to double repeatedly".
//
// Bucket capacity is the "Node Size" axis of Graphs 1 and 2.  Duplicate
// keys hash identically and can never be separated by splitting, so a
// bucket whose chain cannot benefit from a split (all hashes equal, or the
// directory is at its depth cap) grows an overflow chain instead — the
// standard engineering fix.

#ifndef MMDB_INDEX_EXTENDIBLE_HASH_H_
#define MMDB_INDEX_EXTENDIBLE_HASH_H_

#include <memory>
#include <vector>

#include "src/index/index.h"
#include "src/util/arena.h"

namespace mmdb {

class ExtendibleHash : public HashIndex {
 public:
  ExtendibleHash(std::shared_ptr<const KeyOps> ops, const IndexConfig& config);
  ~ExtendibleHash() override;

  IndexKind kind() const override { return IndexKind::kExtendibleHash; }
  const KeyOps& key_ops() const override { return *ops_; }

  bool Insert(TupleRef t) override;
  bool Erase(TupleRef t) override;
  TupleRef Find(const Value& key) const override;
  void FindAll(const Value& key, std::vector<TupleRef>* out) const override;
  size_t size() const override { return size_; }
  size_t StorageBytes() const override;

  void ScanAll(const ScanFn& fn) const override;
  HashStats Stats() const override;

  int global_depth() const { return global_depth_; }
  size_t bucket_count() const { return bucket_count_; }

 private:
  /// Directory growth stops here; further overflow goes to chains.
  static constexpr int kMaxGlobalDepth = 24;

  struct Bucket {
    Bucket* overflow;
    int16_t local_depth;
    int16_t count;
    TupleRef items[1];  // capacity_ entries
  };

  size_t BucketBytes() const;
  Bucket* NewBucket(int local_depth);
  void FreeBucket(Bucket* b);
  Bucket* BucketFor(uint64_t hash) const {
    return dir_[hash & ((size_t{1} << global_depth_) - 1)];
  }
  /// Appends to the chain headed by b (growing an overflow bucket at the
  /// tail if needed).
  void AppendToChain(Bucket* b, TupleRef t);
  /// Total items across the chain headed by b.
  size_t ChainCount(const Bucket* b) const;
  /// True if some pair of (chain items + t) differ in hash bit
  /// local_depth — i.e. a split would actually separate them.
  bool SplitWouldSeparate(const Bucket* b, uint64_t new_hash) const;
  /// Splits the bucket holding `hash`, doubling the directory if necessary.
  void Split(uint64_t hash);
  /// After a removal, merges the bucket with its buddy when both are
  /// chain-free and fit in one, halving the directory when possible.
  void MaybeMerge(uint64_t hash);

  /// Walks every distinct primary bucket once (a bucket's lowest directory
  /// index is below 2^local_depth).
  template <typename Fn>
  void ForEachBucket(Fn&& fn) const {
    for (size_t i = 0; i < dir_.size(); ++i) {
      Bucket* b = dir_[i];
      if ((i >> b->local_depth) == 0) fn(b);
    }
  }

  std::shared_ptr<const KeyOps> ops_;
  int capacity_;
  Arena arena_;
  void* free_list_ = nullptr;
  std::vector<Bucket*> dir_;
  int global_depth_ = 0;
  size_t bucket_count_ = 0;    // primary buckets
  size_t overflow_count_ = 0;  // overflow buckets
  size_t size_ = 0;
};

}  // namespace mmdb

#endif  // MMDB_INDEX_EXTENDIBLE_HASH_H_
