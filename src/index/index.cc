#include "src/index/index.h"

#include "src/index/array_index.h"
#include "src/index/avl_tree.h"
#include "src/index/bplus_tree.h"
#include "src/index/btree.h"
#include "src/index/chained_hash.h"
#include "src/index/extendible_hash.h"
#include "src/index/linear_hash.h"
#include "src/index/modified_linear_hash.h"
#include "src/index/ttree.h"

namespace mmdb {

TupleRef OrderedIndex::Find(const Value& key) const {
  auto cursor = Seek(key);
  if (!cursor->Valid()) return nullptr;
  TupleRef t = cursor->Get();
  // Seek() is a lower bound; an unsuccessful search bypasses any scanning,
  // the fast path Section 3.3.4 relies on.
  return key_ops().CompareValue(key, t) == 0 ? t : nullptr;
}

void OrderedIndex::FindAll(const Value& key, std::vector<TupleRef>* out) const {
  // Duplicates are logically contiguous in the tree (Section 3.3.4): find
  // one, then scan forward while the key matches.
  for (auto cursor = Seek(key); cursor->Valid(); cursor->Next()) {
    TupleRef t = cursor->Get();
    if (key_ops().CompareValue(key, t) != 0) break;
    out->push_back(t);
  }
}

void OrderedIndex::ScanAll(const ScanFn& fn) const {
  for (auto cursor = First(); cursor->Valid(); cursor->Next()) {
    if (!fn(cursor->Get())) return;
  }
}

void OrderedIndex::ScanRange(const Bound& lo, const Bound& hi,
                             const ScanFn& fn) const {
  std::unique_ptr<Cursor> cursor = lo.value == nullptr ? First() : Seek(*lo.value);
  if (lo.value != nullptr && !lo.inclusive) {
    // Skip the items equal to the lower bound.
    while (cursor->Valid() &&
           key_ops().CompareValue(*lo.value, cursor->Get()) == 0) {
      cursor->Next();
    }
  }
  for (; cursor->Valid(); cursor->Next()) {
    TupleRef t = cursor->Get();
    if (hi.value != nullptr) {
      const int c = key_ops().CompareValue(*hi.value, t);  // hi vs key(t)
      if (c < 0 || (c == 0 && !hi.inclusive)) return;
    }
    if (!fn(t)) return;
  }
}

std::unique_ptr<TupleIndex> CreateIndex(IndexKind kind,
                                        std::shared_ptr<const KeyOps> ops,
                                        const IndexConfig& config) {
  switch (kind) {
    case IndexKind::kArray:
      return std::make_unique<ArrayIndex>(std::move(ops), config);
    case IndexKind::kAvlTree:
      return std::make_unique<AvlTree>(std::move(ops), config);
    case IndexKind::kBTree:
      return std::make_unique<BTree>(std::move(ops), config);
    case IndexKind::kTTree:
      return std::make_unique<TTree>(std::move(ops), config);
    case IndexKind::kChainedBucketHash:
      return std::make_unique<ChainedBucketHash>(std::move(ops), config);
    case IndexKind::kExtendibleHash:
      return std::make_unique<ExtendibleHash>(std::move(ops), config);
    case IndexKind::kLinearHash:
      return std::make_unique<LinearHash>(std::move(ops), config);
    case IndexKind::kModifiedLinearHash:
      return std::make_unique<ModifiedLinearHash>(std::move(ops), config);
    case IndexKind::kBPlusTree:
      return std::make_unique<BPlusTree>(std::move(ops), config);
  }
  return nullptr;
}

}  // namespace mmdb
