// OrderedIndex / HashIndex: the two index families of Section 2.2 (ordered
// data vs unordered data), refining the storage-layer TupleIndex interface
// with scans.  Ordered indices expose bidirectional cursors — the T Tree was
// designed to "be scanned in either direction" — which the merge joins and
// range selections build on.

#ifndef MMDB_INDEX_INDEX_H_
#define MMDB_INDEX_INDEX_H_

#include <functional>
#include <memory>

#include "src/index/key_ops.h"
#include "src/storage/index_iface.h"

namespace mmdb {

/// Tuning knobs shared by the index structures.  `node_size` is the
/// "Node Size" axis of Graphs 1 and 2: elements per tree node, bucket
/// capacity for Extendible/Linear Hashing, and the target average chain
/// length for Modified Linear Hashing.
struct IndexConfig {
  int node_size = 16;
  /// T Tree: internal-node occupancy floor is node_size - min_slack; the
  /// paper recommends slack of "one or two items".
  int min_slack = 2;
  /// Hash structures: expected cardinality (sizes the initial table for
  /// Chained Bucket Hashing, which is static).
  size_t expected = 1024;
  bool unique = false;
};

/// Callback scan protocol: return true to continue, false to stop early.
using ScanFn = std::function<bool(TupleRef)>;

/// Bound for range scans.
struct Bound {
  const Value* value = nullptr;  ///< nullptr = unbounded
  bool inclusive = true;
};

class OrderedIndex : public TupleIndex {
 public:
  /// Bidirectional cursor over the index in key order (pointer tie-break).
  /// Cursors are invalidated by any mutation of the index.
  class Cursor {
   public:
    virtual ~Cursor() = default;
    virtual bool Valid() const = 0;
    virtual TupleRef Get() const = 0;
    virtual void Next() = 0;
    /// Steps backwards; an invalid cursor stays invalid (use Last()).
    virtual void Prev() = 0;
    virtual std::unique_ptr<Cursor> Clone() const = 0;
  };

  /// Cursor at the smallest element (invalid if empty).
  virtual std::unique_ptr<Cursor> First() const = 0;
  /// Cursor at the largest element (invalid if empty).
  virtual std::unique_ptr<Cursor> Last() const = 0;
  /// Cursor at the first element with key >= v (lower bound); invalid if
  /// every key is smaller.
  virtual std::unique_ptr<Cursor> Seek(const Value& v) const = 0;

  // Defaults built on the cursor protocol.
  TupleRef Find(const Value& key) const override;
  void FindAll(const Value& key, std::vector<TupleRef>* out) const override;
  /// In-order scan of the whole index.
  virtual void ScanAll(const ScanFn& fn) const;
  /// In-order scan of [lo, hi] with per-bound inclusivity.
  virtual void ScanRange(const Bound& lo, const Bound& hi,
                         const ScanFn& fn) const;
};

class HashIndex : public TupleIndex {
 public:
  /// Unordered scan of every element (used by index-build paths and tests).
  virtual void ScanAll(const ScanFn& fn) const = 0;

  /// Structural statistics for the storage study.
  struct HashStats {
    size_t buckets = 0;          ///< addressable buckets / directory entries
    size_t overflow_nodes = 0;   ///< chained overflow nodes
    double avg_chain_length = 0; ///< mean elements probed per bucket
  };
  virtual HashStats Stats() const = 0;
};

/// Factory covering all eight structures of the index study.
/// `ops` must outlive the index and is shared among structures in tests.
std::unique_ptr<TupleIndex> CreateIndex(IndexKind kind,
                                        std::shared_ptr<const KeyOps> ops,
                                        const IndexConfig& config = {});

}  // namespace mmdb

#endif  // MMDB_INDEX_INDEX_H_
