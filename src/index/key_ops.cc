#include "src/index/key_ops.h"

#include "src/storage/tuple.h"
#include "src/util/counters.h"
#include "src/util/hash.h"

namespace mmdb {

// ---- FieldKeyOps ------------------------------------------------------------

int FieldKeyOps::Compare(TupleRef a, TupleRef b) const {
  return tuple::CompareField(a, b, *schema_, field_);
}

int FieldKeyOps::CompareValue(const Value& v, TupleRef t) const {
  return tuple::CompareValueField(v, t, *schema_, field_);
}

uint64_t FieldKeyOps::Hash(TupleRef t) const {
  return tuple::HashField(t, *schema_, field_);
}

uint64_t FieldKeyOps::HashValue(const Value& v) const {
  counters::BumpHashCalls();
  return v.Hash();
}

Value FieldKeyOps::ExtractValue(TupleRef t) const {
  return tuple::GetValue(t, *schema_, field_);
}

// ---- CompositeKeyOps --------------------------------------------------------

int CompositeKeyOps::Compare(TupleRef a, TupleRef b) const {
  for (size_t f : fields_) {
    int c = tuple::CompareField(a, b, *schema_, f);
    if (c != 0) return c;
  }
  return 0;
}

int CompositeKeyOps::CompareValue(const Value& v, TupleRef t) const {
  return tuple::CompareValueField(v, t, *schema_, fields_.front());
}

uint64_t CompositeKeyOps::Hash(TupleRef t) const {
  uint64_t h = 0;
  for (size_t f : fields_) {
    h = HashMix64(h ^ tuple::HashField(t, *schema_, f));
  }
  return h;
}

uint64_t CompositeKeyOps::HashValue(const Value& v) const {
  counters::BumpHashCalls();
  return HashMix64(0 ^ v.Hash());
}

Value CompositeKeyOps::ExtractValue(TupleRef t) const {
  return tuple::GetValue(t, *schema_, fields_.front());
}

// ---- SelfPointerKeyOps ------------------------------------------------------

int SelfPointerKeyOps::Compare(TupleRef a, TupleRef b) const {
  counters::BumpComparisons();
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}

int SelfPointerKeyOps::CompareValue(const Value& v, TupleRef t) const {
  counters::BumpComparisons();
  TupleRef p = v.AsPointer();
  if (p < t) return -1;
  if (t < p) return 1;
  return 0;
}

uint64_t SelfPointerKeyOps::Hash(TupleRef t) const {
  counters::BumpHashCalls();
  return HashMix64(reinterpret_cast<uintptr_t>(t));
}

uint64_t SelfPointerKeyOps::HashValue(const Value& v) const {
  counters::BumpHashCalls();
  return HashMix64(reinterpret_cast<uintptr_t>(v.AsPointer()));
}

Value SelfPointerKeyOps::ExtractValue(TupleRef t) const { return Value(t); }

// ---- RawInt32KeyOps ---------------------------------------------------------

namespace {
inline int32_t RawInt(TupleRef t) {
  int32_t v;
  std::memcpy(&v, t, sizeof(v));
  return v;
}
}  // namespace

int RawInt32KeyOps::Compare(TupleRef a, TupleRef b) const {
  counters::BumpComparisons();
  int32_t x = RawInt(a), y = RawInt(b);
  return x < y ? -1 : (y < x ? 1 : 0);
}

int RawInt32KeyOps::CompareValue(const Value& v, TupleRef t) const {
  counters::BumpComparisons();
  int32_t x = v.AsInt32(), y = RawInt(t);
  return x < y ? -1 : (y < x ? 1 : 0);
}

uint64_t RawInt32KeyOps::Hash(TupleRef t) const {
  counters::BumpHashCalls();
  return HashMix64(static_cast<uint64_t>(RawInt(t)));
}

uint64_t RawInt32KeyOps::HashValue(const Value& v) const {
  counters::BumpHashCalls();
  return HashMix64(static_cast<uint64_t>(v.AsInt32()));
}

Value RawInt32KeyOps::ExtractValue(TupleRef t) const {
  return Value(RawInt(t));
}

}  // namespace mmdb
