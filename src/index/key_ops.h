// KeyOps: how an index extracts, compares, and hashes keys.
//
// Section 2.2: main-memory indices store *tuple pointers*, not key values —
// "a single tuple pointer provides the index with access to both the
// attribute value of a tuple and the tuple itself".  Every index therefore
// stores raw TupleRefs, and all key semantics are funneled through a KeyOps
// implementation that dereferences the pointers on demand.
//
// Ordered indices need total order; to make duplicate keys well-behaved
// (contiguous, erasable by exact pointer), ordered structures break key ties
// by the tuple pointer itself via CompareTie().

#ifndef MMDB_INDEX_KEY_OPS_H_
#define MMDB_INDEX_KEY_OPS_H_

#include <memory>
#include <vector>

#include "src/storage/schema.h"
#include "src/storage/value.h"

namespace mmdb {

class KeyOps {
 public:
  virtual ~KeyOps() = default;

  /// Three-way key comparison between two tuples.
  virtual int Compare(TupleRef a, TupleRef b) const = 0;

  /// Three-way comparison of a constant against a tuple's key:
  /// <0 if v < key(t), 0 if equal, >0 if v > key(t).
  virtual int CompareValue(const Value& v, TupleRef t) const = 0;

  /// Hash of a tuple's key; HashValue(v) must agree whenever
  /// CompareValue(v, t) == 0.
  virtual uint64_t Hash(TupleRef t) const = 0;
  virtual uint64_t HashValue(const Value& v) const = 0;

  /// Materializes the key for diagnostics (single-field keys only; composite
  /// implementations may return the first field).
  virtual Value ExtractValue(TupleRef t) const = 0;

  /// Key comparison with pointer tie-break: a strict total order even among
  /// duplicate keys.  Ordered indices sort by this.
  int CompareTie(TupleRef a, TupleRef b) const {
    int c = Compare(a, b);
    if (c != 0) return c;
    if (a < b) return -1;
    if (b < a) return 1;
    return 0;
  }
};

/// Key = one field of a schema.  The common case.
class FieldKeyOps : public KeyOps {
 public:
  FieldKeyOps(const Schema* schema, size_t field)
      : schema_(schema), field_(field) {}

  int Compare(TupleRef a, TupleRef b) const override;
  int CompareValue(const Value& v, TupleRef t) const override;
  uint64_t Hash(TupleRef t) const override;
  uint64_t HashValue(const Value& v) const override;
  Value ExtractValue(TupleRef t) const override;

  size_t field() const { return field_; }
  const Schema* schema() const { return schema_; }

 private:
  const Schema* schema_;
  size_t field_;
};

/// Key = lexicographic tuple of several fields.  Section 2.2 notes that
/// pointer-based indices make multi-attribute keys need "less in the way of
/// special mechanisms" — this is that mechanism.  CompareValue/HashValue
/// operate on the *first* field only and are meant for prefix probes.
class CompositeKeyOps : public KeyOps {
 public:
  CompositeKeyOps(const Schema* schema, std::vector<size_t> fields)
      : schema_(schema), fields_(std::move(fields)) {}

  int Compare(TupleRef a, TupleRef b) const override;
  int CompareValue(const Value& v, TupleRef t) const override;
  uint64_t Hash(TupleRef t) const override;
  uint64_t HashValue(const Value& v) const override;
  Value ExtractValue(TupleRef t) const override;

  const std::vector<size_t>& fields() const { return fields_; }

 private:
  const Schema* schema_;
  std::vector<size_t> fields_;
};

/// Key = the tuple pointer itself.  Used for joining on materialized
/// foreign-key pointer fields (Query 2 in the paper joins on Department
/// tuple pointers rather than data values) — pair with a FieldKeyOps on a
/// kPointer field for the referencing side; this is for the referenced side,
/// where the tuple's own address is the key.
class SelfPointerKeyOps : public KeyOps {
 public:
  int Compare(TupleRef a, TupleRef b) const override;
  int CompareValue(const Value& v, TupleRef t) const override;
  uint64_t Hash(TupleRef t) const override;
  uint64_t HashValue(const Value& v) const override;
  Value ExtractValue(TupleRef t) const override;
};

/// Test/bench helper: TupleRef points directly at an int32 (no schema).
class RawInt32KeyOps : public KeyOps {
 public:
  int Compare(TupleRef a, TupleRef b) const override;
  int CompareValue(const Value& v, TupleRef t) const override;
  uint64_t Hash(TupleRef t) const override;
  uint64_t HashValue(const Value& v) const override;
  Value ExtractValue(TupleRef t) const override;
};

}  // namespace mmdb

#endif  // MMDB_INDEX_KEY_OPS_H_
