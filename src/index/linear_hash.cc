#include "src/index/linear_hash.h"

#include <cassert>
#include <cstring>

#include "src/util/counters.h"

namespace mmdb {

LinearHash::LinearHash(std::shared_ptr<const KeyOps> ops,
                       const IndexConfig& config, const Tuning& tuning)
    : ops_(std::move(ops)),
      capacity_(config.node_size < 1 ? 1 : config.node_size),
      tuning_(tuning),
      base_size_(4) {
  set_unique(config.unique);
  primary_.resize(base_size_, nullptr);
  for (auto& b : primary_) b = NewBucket();
}

LinearHash::~LinearHash() = default;

size_t LinearHash::BucketBytes() const {
  return sizeof(Bucket) + (capacity_ - 1) * sizeof(TupleRef);
}

LinearHash::Bucket* LinearHash::NewBucket() {
  Bucket* b;
  if (free_list_ != nullptr) {
    b = static_cast<Bucket*>(free_list_);
    free_list_ = *static_cast<void**>(free_list_);
  } else {
    b = static_cast<Bucket*>(arena_.Allocate(BucketBytes()));
  }
  b->overflow = nullptr;
  b->count = 0;
  ++total_buckets_;
  return b;
}

void LinearHash::FreeBucket(Bucket* b) {
  *reinterpret_cast<void**>(b) = free_list_;
  free_list_ = b;
  --total_buckets_;
}

size_t LinearHash::AddressOf(uint64_t hash) const {
  const size_t round = base_size_ << level_;
  size_t slot = hash % round;
  if (slot < split_next_) slot = hash % (round * 2);
  return slot;
}

double LinearHash::Utilization() const {
  const size_t slots = TotalSlots();
  return slots == 0 ? 0.0 : static_cast<double>(size_) / slots;
}

void LinearHash::AppendToChain(size_t slot, TupleRef t) {
  Bucket* b = primary_[slot];
  for (;;) {
    if (b->count < capacity_) {
      b->items[b->count++] = t;
      counters::BumpDataMoves();
      return;
    }
    if (b->overflow == nullptr) b->overflow = NewBucket();
    b = b->overflow;
  }
}

void LinearHash::SplitOne() {
  counters::BumpSplits();
  const size_t round = base_size_ << level_;
  const size_t old_slot = split_next_;
  const size_t new_slot = split_next_ + round;
  primary_.push_back(NewBucket());
  assert(primary_.size() == new_slot + 1);

  // Detach the old chain and redistribute with the next-level function.
  Bucket* chain = primary_[old_slot];
  primary_[old_slot] = NewBucket();
  ++split_next_;
  if (split_next_ == round) {
    ++level_;
    split_next_ = 0;
  }
  while (chain != nullptr) {
    for (int i = 0; i < chain->count; ++i) {
      TupleRef t = chain->items[i];
      const size_t dst = ops_->Hash(t) % (round * 2);
      AppendToChain(dst == old_slot ? old_slot : new_slot, t);
    }
    Bucket* next = chain->overflow;
    FreeBucket(chain);
    chain = next;
  }
}

void LinearHash::ContractOne() {
  if (split_next_ == 0) {
    if (level_ == 0) return;
    --level_;
    split_next_ = base_size_ << level_;
  }
  --split_next_;
  counters::BumpMerges();
  const size_t low = split_next_;
  const size_t high = low + (base_size_ << level_);

  Bucket* chain = primary_[high];
  primary_.pop_back();
  while (chain != nullptr) {
    for (int i = 0; i < chain->count; ++i) {
      AppendToChain(low, chain->items[i]);
    }
    Bucket* next = chain->overflow;
    FreeBucket(chain);
    chain = next;
  }
}

bool LinearHash::Insert(TupleRef t) {
  const uint64_t h = ops_->Hash(t);
  const size_t slot = AddressOf(h);
  for (Bucket* b = primary_[slot]; b != nullptr; b = b->overflow) {
    for (int i = 0; i < b->count; ++i) {
      if (b->items[i] == t) return false;
      if (unique() && ops_->Compare(t, b->items[i]) == 0) return false;
    }
  }
  AppendToChain(slot, t);
  ++size_;
  // Maintain the storage-utilization band: one reorganization step per
  // operation (this steady churn is the paper's main criticism).
  if (Utilization() > tuning_.upper) SplitOne();
  return true;
}

bool LinearHash::Erase(TupleRef t) {
  const uint64_t h = ops_->Hash(t);
  const size_t slot = AddressOf(h);
  for (Bucket* b = primary_[slot]; b != nullptr; b = b->overflow) {
    for (int i = 0; i < b->count; ++i) {
      if (b->items[i] != t) continue;
      // Fill the hole with the last element of the chain's tail bucket.
      Bucket* tail = b;
      Bucket* tail_parent = nullptr;
      while (tail->overflow != nullptr && tail->overflow->count > 0) {
        tail_parent = tail;
        tail = tail->overflow;
      }
      b->items[i] = tail->items[tail->count - 1];
      counters::BumpDataMoves();
      --tail->count;
      if (tail->count == 0 && tail != primary_[slot]) {
        // Drop the emptied overflow bucket.
        if (tail_parent != nullptr) {
          tail_parent->overflow = tail->overflow;
        } else {
          // b itself is the parent of tail.
          Bucket* parent = primary_[slot];
          while (parent->overflow != tail) parent = parent->overflow;
          parent->overflow = tail->overflow;
        }
        FreeBucket(tail);
      }
      --size_;
      if (primary_.size() > base_size_ && Utilization() < tuning_.lower) {
        ContractOne();
      }
      return true;
    }
  }
  return false;
}

TupleRef LinearHash::Find(const Value& key) const {
  const size_t slot = AddressOf(ops_->HashValue(key));
  for (Bucket* b = primary_[slot]; b != nullptr; b = b->overflow) {
    for (int i = 0; i < b->count; ++i) {
      if (ops_->CompareValue(key, b->items[i]) == 0) return b->items[i];
    }
  }
  return nullptr;
}

void LinearHash::FindAll(const Value& key, std::vector<TupleRef>* out) const {
  const size_t slot = AddressOf(ops_->HashValue(key));
  for (Bucket* b = primary_[slot]; b != nullptr; b = b->overflow) {
    for (int i = 0; i < b->count; ++i) {
      if (ops_->CompareValue(key, b->items[i]) == 0) {
        out->push_back(b->items[i]);
      }
    }
  }
}

size_t LinearHash::StorageBytes() const {
  return sizeof(*this) + primary_.capacity() * sizeof(Bucket*) +
         total_buckets_ * BucketBytes();
}

void LinearHash::ScanAll(const ScanFn& fn) const {
  for (Bucket* head : primary_) {
    for (Bucket* b = head; b != nullptr; b = b->overflow) {
      for (int i = 0; i < b->count; ++i) {
        if (!fn(b->items[i])) return;
      }
    }
  }
}

HashIndex::HashStats LinearHash::Stats() const {
  HashStats s;
  s.buckets = primary_.size();
  s.overflow_nodes = total_buckets_ - primary_.size();
  s.avg_chain_length =
      primary_.empty() ? 0.0 : static_cast<double>(size_) / primary_.size();
  return s;
}

}  // namespace mmdb
