// Linear Hashing [Lit80]: buckets split in fixed order driven by a split
// pointer; addressing uses h mod 2^L*M, re-hashed with the next level for
// already-split buckets.  Growth/shrinkage is driven by a storage-
// utilization band, which is exactly why the paper found it "just too slow
// to use in main memory": keeping utilization inside the band causes
// constant data reorganization even when the element count is static
// (Graph 2's worst curve among the hash methods).
//
// Bucket capacity (primary and overflow) is the "Node Size" axis.

#ifndef MMDB_INDEX_LINEAR_HASH_H_
#define MMDB_INDEX_LINEAR_HASH_H_

#include <memory>
#include <vector>

#include "src/index/index.h"
#include "src/util/arena.h"

namespace mmdb {

/// Utilization band: split while used/total > upper, contract while
/// < lower.  Defaults follow the tight band the paper's behavior implies.
struct LinearHashTuning {
  double upper = 0.80;
  double lower = 0.70;
};

class LinearHash : public HashIndex {
 public:
  using Tuning = LinearHashTuning;

  LinearHash(std::shared_ptr<const KeyOps> ops, const IndexConfig& config,
             const Tuning& tuning = Tuning());
  ~LinearHash() override;

  IndexKind kind() const override { return IndexKind::kLinearHash; }
  const KeyOps& key_ops() const override { return *ops_; }

  bool Insert(TupleRef t) override;
  bool Erase(TupleRef t) override;
  TupleRef Find(const Value& key) const override;
  void FindAll(const Value& key, std::vector<TupleRef>* out) const override;
  size_t size() const override { return size_; }
  size_t StorageBytes() const override;

  void ScanAll(const ScanFn& fn) const override;
  HashStats Stats() const override;

  size_t bucket_count() const { return primary_.size(); }
  double Utilization() const;

 private:
  struct Bucket {
    Bucket* overflow;
    int16_t count;
    TupleRef items[1];  // capacity_ entries
  };

  size_t BucketBytes() const;
  Bucket* NewBucket();
  void FreeBucket(Bucket* b);
  /// Primary bucket number for a hash under the current level/split state.
  size_t AddressOf(uint64_t hash) const;
  /// Appends to a chain, adding an overflow bucket if needed.
  void AppendToChain(size_t slot, TupleRef t);
  /// Splits the bucket at split_next_, extending the table by one.
  void SplitOne();
  /// Undoes the most recent split, folding the last bucket back.
  void ContractOne();
  size_t TotalSlots() const { return total_buckets_ * capacity_; }

  std::shared_ptr<const KeyOps> ops_;
  int capacity_;
  Tuning tuning_;
  Arena arena_;
  void* free_list_ = nullptr;
  std::vector<Bucket*> primary_;
  size_t base_size_;     // M: buckets at level 0
  size_t level_ = 0;     // L
  size_t split_next_ = 0;
  size_t total_buckets_ = 0;  // primary + overflow, for utilization
  size_t size_ = 0;
};

}  // namespace mmdb

#endif  // MMDB_INDEX_LINEAR_HASH_H_
