#include "src/index/modified_linear_hash.h"

#include "src/util/counters.h"

namespace mmdb {

ModifiedLinearHash::ModifiedLinearHash(std::shared_ptr<const KeyOps> ops,
                                       const IndexConfig& config)
    : ops_(std::move(ops)),
      max_avg_(config.node_size < 1 ? 1.0 : config.node_size),
      pool_(&arena_),
      base_size_(4) {
  set_unique(config.unique);
  dir_.resize(base_size_, nullptr);
}

ModifiedLinearHash::~ModifiedLinearHash() = default;

size_t ModifiedLinearHash::AddressOf(uint64_t hash) const {
  const size_t round = base_size_ << level_;
  size_t slot = hash % round;
  if (slot < split_next_) slot = hash % (round * 2);
  return slot;
}

void ModifiedLinearHash::SplitOne() {
  counters::BumpSplits();
  const size_t round = base_size_ << level_;
  const size_t old_slot = split_next_;
  const size_t new_slot = split_next_ + round;
  dir_.push_back(nullptr);
  ++split_next_;
  if (split_next_ == round) {
    ++level_;
    split_next_ = 0;
  }
  // Re-thread the chain across the two slots; nodes are reused in place.
  Node* chain = dir_[old_slot];
  dir_[old_slot] = nullptr;
  while (chain != nullptr) {
    Node* next = chain->next;
    const size_t dst = ops_->Hash(chain->item) % (round * 2);
    Node** head = dst == old_slot ? &dir_[old_slot] : &dir_[new_slot];
    chain->next = *head;
    *head = chain;
    counters::BumpDataMoves();
    chain = next;
  }
}

void ModifiedLinearHash::ContractOne() {
  if (split_next_ == 0) {
    if (level_ == 0) return;
    --level_;
    split_next_ = base_size_ << level_;
  }
  --split_next_;
  counters::BumpMerges();
  const size_t low = split_next_;
  Node* chain = dir_.back();
  dir_.pop_back();
  while (chain != nullptr) {
    Node* next = chain->next;
    chain->next = dir_[low];
    dir_[low] = chain;
    counters::BumpDataMoves();
    chain = next;
  }
}

bool ModifiedLinearHash::Insert(TupleRef t) {
  const uint64_t h = ops_->Hash(t);
  const size_t slot = AddressOf(h);
  for (Node* n = dir_[slot]; n != nullptr; n = n->next) {
    if (n->item == t) return false;
    if (unique() && ops_->Compare(t, n->item) == 0) return false;
  }
  Node* n = static_cast<Node*>(pool_.Allocate());
  n->item = t;
  n->next = dir_[slot];
  dir_[slot] = n;
  ++size_;
  // Growth criterion: average chain length (Section 3.2) — a static
  // population never reorganizes.
  if (AvgChainLength() > max_avg_) SplitOne();
  return true;
}

bool ModifiedLinearHash::Erase(TupleRef t) {
  const uint64_t h = ops_->Hash(t);
  const size_t slot = AddressOf(h);
  for (Node** link = &dir_[slot]; *link != nullptr; link = &(*link)->next) {
    if ((*link)->item == t) {
      Node* victim = *link;
      *link = victim->next;
      pool_.Free(victim);
      --size_;
      if (dir_.size() > base_size_ &&
          AvgChainLength() < max_avg_ / 2.0) {
        ContractOne();
      }
      return true;
    }
  }
  return false;
}

TupleRef ModifiedLinearHash::Find(const Value& key) const {
  const size_t slot = AddressOf(ops_->HashValue(key));
  for (Node* n = dir_[slot]; n != nullptr; n = n->next) {
    if (ops_->CompareValue(key, n->item) == 0) return n->item;
  }
  return nullptr;
}

void ModifiedLinearHash::FindAll(const Value& key,
                                 std::vector<TupleRef>* out) const {
  const size_t slot = AddressOf(ops_->HashValue(key));
  for (Node* n = dir_[slot]; n != nullptr; n = n->next) {
    if (ops_->CompareValue(key, n->item) == 0) out->push_back(n->item);
  }
}

size_t ModifiedLinearHash::StorageBytes() const {
  return sizeof(*this) + dir_.capacity() * sizeof(Node*) +
         pool_.live() * NodePool<Node>::SlotBytes();
}

void ModifiedLinearHash::ScanAll(const ScanFn& fn) const {
  for (Node* head : dir_) {
    for (Node* n = head; n != nullptr; n = n->next) {
      if (!fn(n->item)) return;
    }
  }
}

HashIndex::HashStats ModifiedLinearHash::Stats() const {
  HashStats s;
  s.buckets = dir_.size();
  s.overflow_nodes = size_;
  s.avg_chain_length = AvgChainLength();
  return s;
}

}  // namespace mmdb
