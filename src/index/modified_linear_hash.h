// Modified Linear Hashing [LeC85]: the paper's main-memory adaptation of
// Linear Hashing and its recommended index for unordered data.  Differences
// from Litwin's scheme (Section 3.2): a contiguous in-memory directory of
// chain heads, *single-item* nodes instead of multi-slot buckets, and
// directory growth controlled by the *average chain length* rather than
// storage utilization — so a static element population causes no
// reorganization at all.
//
// The "Node Size" axis of Graphs 1 and 2 is the target average chain length.

#ifndef MMDB_INDEX_MODIFIED_LINEAR_HASH_H_
#define MMDB_INDEX_MODIFIED_LINEAR_HASH_H_

#include <memory>
#include <vector>

#include "src/index/index.h"
#include "src/util/arena.h"

namespace mmdb {

class ModifiedLinearHash : public HashIndex {
 public:
  /// config.node_size = maximum tolerated average chain length.
  ModifiedLinearHash(std::shared_ptr<const KeyOps> ops,
                     const IndexConfig& config);
  ~ModifiedLinearHash() override;

  IndexKind kind() const override { return IndexKind::kModifiedLinearHash; }
  const KeyOps& key_ops() const override { return *ops_; }

  bool Insert(TupleRef t) override;
  bool Erase(TupleRef t) override;
  TupleRef Find(const Value& key) const override;
  void FindAll(const Value& key, std::vector<TupleRef>* out) const override;
  size_t size() const override { return size_; }
  size_t StorageBytes() const override;

  void ScanAll(const ScanFn& fn) const override;
  HashStats Stats() const override;

  size_t bucket_count() const { return dir_.size(); }
  double AvgChainLength() const {
    return dir_.empty() ? 0.0 : static_cast<double>(size_) / dir_.size();
  }

 private:
  struct Node {
    TupleRef item;
    Node* next;
  };

  size_t AddressOf(uint64_t hash) const;
  void SplitOne();
  void ContractOne();

  std::shared_ptr<const KeyOps> ops_;
  double max_avg_;
  Arena arena_;
  NodePool<Node> pool_;
  std::vector<Node*> dir_;
  size_t base_size_;
  size_t level_ = 0;
  size_t split_next_ = 0;
  size_t size_ = 0;
};

}  // namespace mmdb

#endif  // MMDB_INDEX_MODIFIED_LINEAR_HASH_H_
