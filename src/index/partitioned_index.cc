#include "src/index/partitioned_index.h"

#include <cassert>

#include "src/storage/relation.h"

namespace mmdb {
namespace internal {

PartitionShards::PartitionShards(const Relation* rel, IndexKind kind,
                                 std::shared_ptr<const KeyOps> ops,
                                 IndexConfig config)
    : rel_(rel), kind_(kind), ops_(std::move(ops)), config_(config) {
  // Partition-local shards cannot enforce uniqueness (see header).
  assert(!config_.unique);
  config_.unique = false;
  for (const auto& p : rel_->partitions()) EnsureShard(p->id());
}

void PartitionShards::EnsureShard(uint32_t partition_id) {
  if (partition_id >= shards_.size()) shards_.resize(partition_id + 1);
  if (shards_[partition_id] != nullptr) return;
  shards_[partition_id] = CreateIndex(kind_, ops_, config_);
  if (bulk_) shards_[partition_id]->BeginBulk();
}

TupleIndex* PartitionShards::Route(TupleRef t) const {
  Partition* p = rel_->PartitionOf(t);
  if (p == nullptr || p->id() >= shards_.size()) return nullptr;
  return shards_[p->id()].get();
}

size_t PartitionShards::TotalSize() const {
  size_t n = 0;
  for (const auto& s : shards_) {
    if (s != nullptr) n += s->size();
  }
  return n;
}

size_t PartitionShards::TotalBytes() const {
  size_t n = sizeof(*this) + shards_.capacity() * sizeof(shards_[0]);
  for (const auto& s : shards_) {
    if (s != nullptr) n += s->StorageBytes();
  }
  return n;
}

void PartitionShards::BeginBulk() {
  bulk_ = true;
  for (const auto& s : shards_) {
    if (s != nullptr) s->BeginBulk();
  }
}

void PartitionShards::EndBulk() {
  bulk_ = false;
  for (const auto& s : shards_) {
    if (s != nullptr) s->EndBulk();
  }
}

}  // namespace internal

namespace {

/// Merged cursor over the ordered shards.
///
/// Invariant: let P be the merged position (the element of subs_[current_]).
/// Every slot with a valid cursor is parked at the smallest element of its
/// shard that is >= P in the (key, tuple-pointer) total order; a slot whose
/// cursor is null or invalid has no element >= P.  Next() advances only the
/// current slot; Prev() materializes each shard's largest element < P and
/// takes the maximum — both preserve the invariant (each shard's elements
/// below its parked position are < P).
class MergedCursor : public OrderedIndex::Cursor {
 public:
  MergedCursor(const std::vector<std::unique_ptr<TupleIndex>>* shards,
               const KeyOps* ops)
      : shards_(shards), ops_(ops), subs_(shards->size()) {}

  bool Valid() const override { return current_ >= 0; }

  TupleRef Get() const override { return subs_[current_]->Get(); }

  void Next() override {
    if (current_ < 0) return;
    subs_[current_]->Next();
    Reselect();
  }

  void Prev() override {
    if (current_ < 0) return;  // invalid stays invalid (cursor contract)
    int best = -1;
    std::vector<std::unique_ptr<Cursor>> cand(subs_.size());
    for (size_t i = 0; i < subs_.size(); ++i) {
      const OrderedIndex* shard = ShardAt(i);
      if (shard == nullptr) continue;
      if (subs_[i] != nullptr && subs_[i]->Valid()) {
        cand[i] = subs_[i]->Clone();
        cand[i]->Prev();
      } else {
        // Exhausted shard: its whole content is < P, so its largest
        // element is the candidate.
        cand[i] = shard->Last();
      }
      if (cand[i] != nullptr && cand[i]->Valid() &&
          (best < 0 ||
           ops_->CompareTie(cand[i]->Get(), cand[best]->Get()) > 0)) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) {
      current_ = -1;  // stepped before the first element
      return;
    }
    subs_[best] = std::move(cand[best]);
    current_ = best;
  }

  std::unique_ptr<Cursor> Clone() const override {
    auto copy = std::make_unique<MergedCursor>(shards_, ops_);
    for (size_t i = 0; i < subs_.size(); ++i) {
      if (subs_[i] != nullptr) copy->subs_[i] = subs_[i]->Clone();
    }
    copy->current_ = current_;
    return copy;
  }

  // ---- Positioning (called by the composite) -------------------------------

  void SetFirst() {
    ForEachShard([&](size_t i, const OrderedIndex& s) { subs_[i] = s.First(); });
    Reselect();
  }

  void SetSeek(const Value& v) {
    ForEachShard(
        [&](size_t i, const OrderedIndex& s) { subs_[i] = s.Seek(v); });
    Reselect();
  }

  void SetLast() {
    int best = -1;
    ForEachShard([&](size_t i, const OrderedIndex& s) {
      subs_[i] = s.Last();
      if (subs_[i] != nullptr && subs_[i]->Valid() &&
          (best < 0 ||
           ops_->CompareTie(subs_[i]->Get(), subs_[best]->Get()) > 0)) {
        best = static_cast<int>(i);
      }
    });
    // Non-winners sit below the merged position: mark them exhausted so the
    // invariant ("valid slots are at their smallest element >= P") holds.
    for (size_t i = 0; i < subs_.size(); ++i) {
      if (static_cast<int>(i) != best) subs_[i].reset();
    }
    current_ = best;
  }

 private:
  const OrderedIndex* ShardAt(size_t i) const {
    return static_cast<const OrderedIndex*>((*shards_)[i].get());
  }

  template <typename Fn>
  void ForEachShard(Fn&& fn) {
    for (size_t i = 0; i < shards_->size(); ++i) {
      const OrderedIndex* s = ShardAt(i);
      if (s != nullptr) fn(i, *s);
    }
  }

  void Reselect() {
    current_ = -1;
    for (size_t i = 0; i < subs_.size(); ++i) {
      if (subs_[i] == nullptr || !subs_[i]->Valid()) continue;
      if (current_ < 0 ||
          ops_->CompareTie(subs_[i]->Get(), subs_[current_]->Get()) < 0) {
        current_ = static_cast<int>(i);
      }
    }
  }

  const std::vector<std::unique_ptr<TupleIndex>>* shards_;
  const KeyOps* ops_;
  std::vector<std::unique_ptr<Cursor>> subs_;  // parallel to *shards_
  int current_ = -1;
};

}  // namespace

// ---- PartitionedOrderedIndex ------------------------------------------------

PartitionedOrderedIndex::PartitionedOrderedIndex(
    const Relation* rel, IndexKind kind, std::shared_ptr<const KeyOps> ops,
    IndexConfig config)
    : shards_(rel, kind, std::move(ops), config) {
  assert(IndexKindOrdered(kind));
}

bool PartitionedOrderedIndex::Insert(TupleRef t) {
  TupleIndex* shard = shards_.Route(t);
  assert(shard != nullptr && "tuple outside every partition shard");
  return shard != nullptr && shard->Insert(t);
}

bool PartitionedOrderedIndex::Erase(TupleRef t) {
  TupleIndex* shard = shards_.Route(t);
  return shard != nullptr && shard->Erase(t);
}

TupleRef PartitionedOrderedIndex::Find(const Value& key) const {
  for (const auto& s : shards_.shards()) {
    if (s == nullptr) continue;
    TupleRef t = s->Find(key);
    if (t != nullptr) return t;
  }
  return nullptr;
}

void PartitionedOrderedIndex::FindAll(const Value& key,
                                      std::vector<TupleRef>* out) const {
  for (const auto& s : shards_.shards()) {
    if (s != nullptr) s->FindAll(key, out);
  }
}

std::unique_ptr<OrderedIndex::Cursor> PartitionedOrderedIndex::First() const {
  auto c = std::make_unique<MergedCursor>(&shards_.shards(), &key_ops());
  c->SetFirst();
  return c;
}

std::unique_ptr<OrderedIndex::Cursor> PartitionedOrderedIndex::Last() const {
  auto c = std::make_unique<MergedCursor>(&shards_.shards(), &key_ops());
  c->SetLast();
  return c;
}

std::unique_ptr<OrderedIndex::Cursor> PartitionedOrderedIndex::Seek(
    const Value& v) const {
  auto c = std::make_unique<MergedCursor>(&shards_.shards(), &key_ops());
  c->SetSeek(v);
  return c;
}

// ---- PartitionedHashIndex ---------------------------------------------------

PartitionedHashIndex::PartitionedHashIndex(const Relation* rel, IndexKind kind,
                                           std::shared_ptr<const KeyOps> ops,
                                           IndexConfig config)
    : shards_(rel, kind, std::move(ops), config) {
  assert(!IndexKindOrdered(kind));
}

bool PartitionedHashIndex::Insert(TupleRef t) {
  TupleIndex* shard = shards_.Route(t);
  assert(shard != nullptr && "tuple outside every partition shard");
  return shard != nullptr && shard->Insert(t);
}

bool PartitionedHashIndex::Erase(TupleRef t) {
  TupleIndex* shard = shards_.Route(t);
  return shard != nullptr && shard->Erase(t);
}

TupleRef PartitionedHashIndex::Find(const Value& key) const {
  for (const auto& s : shards_.shards()) {
    if (s == nullptr) continue;
    TupleRef t = s->Find(key);
    if (t != nullptr) return t;
  }
  return nullptr;
}

void PartitionedHashIndex::FindAll(const Value& key,
                                   std::vector<TupleRef>* out) const {
  for (const auto& s : shards_.shards()) {
    if (s != nullptr) s->FindAll(key, out);
  }
}

void PartitionedHashIndex::ScanAll(const ScanFn& fn) const {
  for (const auto& s : shards_.shards()) {
    if (s == nullptr) continue;
    bool stop = false;
    static_cast<const HashIndex*>(s.get())->ScanAll([&](TupleRef t) {
      if (!fn(t)) {
        stop = true;
        return false;
      }
      return true;
    });
    if (stop) return;
  }
}

HashIndex::HashStats PartitionedHashIndex::Stats() const {
  HashStats total;
  double weighted_chain = 0;
  for (const auto& s : shards_.shards()) {
    if (s == nullptr) continue;
    HashStats hs = static_cast<const HashIndex*>(s.get())->Stats();
    total.buckets += hs.buckets;
    total.overflow_nodes += hs.overflow_nodes;
    weighted_chain += hs.avg_chain_length * static_cast<double>(hs.buckets);
  }
  if (total.buckets > 0) {
    total.avg_chain_length = weighted_chain / static_cast<double>(total.buckets);
  }
  return total;
}

}  // namespace mmdb
