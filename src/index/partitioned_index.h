// Partition-local index composites.
//
// A PartitionedOrderedIndex / PartitionedHashIndex looks like one index of
// the underlying kind (kind() reports the shard kind, so planner casts and
// access-path selection are unchanged) but internally keeps one concrete
// index instance — a *shard* — per relation partition.  Mutations route to
// the shard of the tuple's partition, so a transaction holding a partition
// X lock rewrites only that partition's shards and concurrent writers on
// disjoint partitions no longer contend on shared index structure.  Reads
// (which hold every partition's S lock) probe all shards; ordered scans
// merge the shards' cursors in key order (pointer tie-break), preserving
// the single-index scan order exactly.
//
// Shards are created at construction (one per existing partition) and on
// OnPartitionAdded(), which the relation delivers under the structure X
// lock — so the shard vector itself is never resized while readers or
// partition-level writers are active.
//
// Uniqueness cannot be enforced partition-locally (a duplicate may live in
// another partition's shard), so unique indices stay relation-global and
// their relations keep the structure-X DML path; both composites reject
// config.unique.

#ifndef MMDB_INDEX_PARTITIONED_INDEX_H_
#define MMDB_INDEX_PARTITIONED_INDEX_H_

#include <memory>
#include <vector>

#include "src/index/index.h"
#include "src/index/key_ops.h"

namespace mmdb {

class Relation;

namespace internal {

/// The shared shard plumbing of both composites: shard storage (indexed by
/// partition id; gaps are null), tuple-to-shard routing via the owning
/// relation, and aggregate statistics.
class PartitionShards {
 public:
  PartitionShards(const Relation* rel, IndexKind kind,
                  std::shared_ptr<const KeyOps> ops, IndexConfig config);

  /// Creates the shard for a (new) partition id if absent.  Called from the
  /// composite's OnPartitionAdded under the relation-structure X lock.
  void EnsureShard(uint32_t partition_id);

  /// Shard holding tuples of `t`'s partition, or nullptr if `t` is not in
  /// any partition of the relation.
  TupleIndex* Route(TupleRef t) const;

  size_t TotalSize() const;
  size_t TotalBytes() const;
  void BeginBulk();
  void EndBulk();

  const KeyOps& key_ops() const { return *ops_; }
  IndexKind kind() const { return kind_; }
  const std::vector<std::unique_ptr<TupleIndex>>& shards() const {
    return shards_;
  }

 private:
  const Relation* rel_;
  IndexKind kind_;
  std::shared_ptr<const KeyOps> ops_;
  IndexConfig config_;
  std::vector<std::unique_ptr<TupleIndex>> shards_;  // by partition id
  bool bulk_ = false;  // propagate the bulk bracket to shards created mid-load
};

}  // namespace internal

/// Partition-local composite over an ordered shard kind (array / trees).
/// The full cursor protocol is implemented by merging the shards' cursors,
/// so every OrderedIndex default (Find, FindAll, ScanAll, ScanRange) and
/// every merge-join consumer works against it unchanged.
class PartitionedOrderedIndex : public OrderedIndex {
 public:
  PartitionedOrderedIndex(const Relation* rel, IndexKind kind,
                          std::shared_ptr<const KeyOps> ops,
                          IndexConfig config);

  IndexKind kind() const override { return shards_.kind(); }
  const KeyOps& key_ops() const override { return shards_.key_ops(); }
  bool partition_local() const override { return true; }
  void OnPartitionAdded(uint32_t partition_id) override {
    shards_.EnsureShard(partition_id);
  }

  bool Insert(TupleRef t) override;
  bool Erase(TupleRef t) override;
  size_t size() const override { return shards_.TotalSize(); }
  size_t StorageBytes() const override { return shards_.TotalBytes(); }
  void BeginBulk() override { shards_.BeginBulk(); }
  void EndBulk() override { shards_.EndBulk(); }

  // Probe every shard directly (cheaper than a merged-cursor walk).
  TupleRef Find(const Value& key) const override;
  void FindAll(const Value& key, std::vector<TupleRef>* out) const override;

  std::unique_ptr<Cursor> First() const override;
  std::unique_ptr<Cursor> Last() const override;
  std::unique_ptr<Cursor> Seek(const Value& v) const override;

  /// Shard introspection for tests (per-shard invariant checks).
  const std::vector<std::unique_ptr<TupleIndex>>& shards() const {
    return shards_.shards();
  }

 private:
  internal::PartitionShards shards_;
};

/// Partition-local composite over a hash shard kind.
class PartitionedHashIndex : public HashIndex {
 public:
  PartitionedHashIndex(const Relation* rel, IndexKind kind,
                       std::shared_ptr<const KeyOps> ops, IndexConfig config);

  IndexKind kind() const override { return shards_.kind(); }
  const KeyOps& key_ops() const override { return shards_.key_ops(); }
  bool partition_local() const override { return true; }
  void OnPartitionAdded(uint32_t partition_id) override {
    shards_.EnsureShard(partition_id);
  }

  bool Insert(TupleRef t) override;
  bool Erase(TupleRef t) override;
  TupleRef Find(const Value& key) const override;
  void FindAll(const Value& key, std::vector<TupleRef>* out) const override;
  size_t size() const override { return shards_.TotalSize(); }
  size_t StorageBytes() const override { return shards_.TotalBytes(); }
  void BeginBulk() override { shards_.BeginBulk(); }
  void EndBulk() override { shards_.EndBulk(); }

  void ScanAll(const ScanFn& fn) const override;
  HashStats Stats() const override;

  const std::vector<std::unique_ptr<TupleIndex>>& shards() const {
    return shards_.shards();
  }

 private:
  internal::PartitionShards shards_;
};

}  // namespace mmdb

#endif  // MMDB_INDEX_PARTITIONED_INDEX_H_
