#include "src/index/ttree.h"

#include <cassert>
#include <cstring>

#include "src/util/counters.h"

namespace mmdb {

class TTree::CursorImpl : public OrderedIndex::Cursor {
 public:
  CursorImpl(const Node* node, int pos) : node_(node), pos_(pos) {}

  bool Valid() const override { return node_ != nullptr; }
  TupleRef Get() const override { return node_->items[pos_]; }

  void Next() override {
    if (node_ == nullptr) return;
    if (pos_ + 1 < node_->count) {
      ++pos_;
      return;
    }
    node_ = NextNode(node_);
    pos_ = 0;
  }

  void Prev() override {
    if (node_ == nullptr) return;
    if (pos_ > 0) {
      --pos_;
      return;
    }
    node_ = PrevNode(node_);
    pos_ = node_ == nullptr ? 0 : node_->count - 1;
  }

  std::unique_ptr<Cursor> Clone() const override {
    return std::make_unique<CursorImpl>(node_, pos_);
  }

 private:
  const Node* node_;
  int pos_;
};

TTree::TTree(std::shared_ptr<const KeyOps> ops, const IndexConfig& config)
    : ops_(std::move(ops)),
      max_count_(config.node_size < 1 ? 1 : config.node_size),
      min_count_(max_count_ - config.min_slack < 1 ? 1
                                                   : max_count_ - config.min_slack) {
  set_unique(config.unique);
}

TTree::~TTree() = default;  // nodes live in the arena

size_t TTree::NodeBytes() const {
  return sizeof(Node) + (max_count_ - 1) * sizeof(TupleRef);
}

TTree::Node* TTree::NewNode(Node* parent) {
  Node* n;
  if (free_list_ != nullptr) {
    n = static_cast<Node*>(free_list_);
    free_list_ = *static_cast<void**>(free_list_);
  } else {
    n = static_cast<Node*>(arena_.Allocate(NodeBytes()));
  }
  n->left = n->right = nullptr;
  n->parent = parent;
  n->count = 0;
  n->height = 1;
  ++node_count_;
  return n;
}

void TTree::FreeNode(Node* n) {
  *reinterpret_cast<void**>(n) = free_list_;
  free_list_ = n;
  --node_count_;
}

int TTree::BalanceOf(const Node* n) {
  return NodeHeight(n->right) - NodeHeight(n->left);
}

void TTree::UpdateHeight(Node* n) {
  int lh = NodeHeight(n->left), rh = NodeHeight(n->right);
  n->height = static_cast<int8_t>((lh > rh ? lh : rh) + 1);
}

void TTree::Replace(Node* parent, Node* child, Node* with) {
  if (parent == nullptr) {
    root_ = with;
  } else if (parent->left == child) {
    parent->left = with;
  } else {
    parent->right = with;
  }
  if (with != nullptr) with->parent = parent;
}

TTree::Node* TTree::RotateLeft(Node* n) {
  counters::BumpRotations();
  Node* r = n->right;
  Replace(n->parent, n, r);
  n->right = r->left;
  if (n->right != nullptr) n->right->parent = n;
  r->left = n;
  n->parent = r;
  UpdateHeight(n);
  UpdateHeight(r);
  return r;
}

TTree::Node* TTree::RotateRight(Node* n) {
  counters::BumpRotations();
  Node* l = n->left;
  Replace(n->parent, n, l);
  n->left = l->right;
  if (n->left != nullptr) n->left->parent = n;
  l->right = n;
  n->parent = l;
  UpdateHeight(n);
  UpdateHeight(l);
  return l;
}

void TTree::SlideFromLeft(Node* c) {
  Node* b = c->left;
  if (b == nullptr || b->right != nullptr) return;
  while (c->count < min_count_ && b->count > 1) {
    std::memmove(&c->items[1], &c->items[0], c->count * sizeof(TupleRef));
    c->items[0] = b->items[b->count - 1];
    counters::BumpDataMoves(c->count + 1);
    ++c->count;
    --b->count;
  }
}

void TTree::SlideFromRight(Node* c) {
  Node* d = c->right;
  if (d == nullptr || d->left != nullptr) return;
  while (c->count < min_count_ && d->count > 1) {
    c->items[c->count] = d->items[0];
    std::memmove(&d->items[0], &d->items[1], (d->count - 1) * sizeof(TupleRef));
    counters::BumpDataMoves(d->count);
    ++c->count;
    --d->count;
  }
}

void TTree::RebalanceUp(Node* n) {
  while (n != nullptr) {
    UpdateHeight(n);
    int bf = BalanceOf(n);
    if (bf > 1) {
      if (BalanceOf(n->right) < 0) {
        RotateRight(n->right);
        n = RotateLeft(n);
        SlideFromRight(n);
      } else {
        n = RotateLeft(n);
      }
    } else if (bf < -1) {
      if (BalanceOf(n->left) > 0) {
        RotateLeft(n->left);
        n = RotateRight(n);
        SlideFromLeft(n);
      } else {
        n = RotateRight(n);
      }
    }
    n = n->parent;
  }
}

int TTree::LowerBoundValue(const Node* n, const Value& v) const {
  int lo = 0, hi = n->count;
  while (lo < hi) {
    int mid = lo + (hi - lo) / 2;
    if (ops_->CompareValue(v, n->items[mid]) > 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

int TTree::LowerBoundTie(const Node* n, TupleRef t) const {
  int lo = 0, hi = n->count;
  while (lo < hi) {
    int mid = lo + (hi - lo) / 2;
    if (ops_->CompareTie(n->items[mid], t) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void TTree::InsertIntoNode(Node* n, TupleRef t) {
  int pos = LowerBoundTie(n, t);
  std::memmove(&n->items[pos + 1], &n->items[pos],
               (n->count - pos) * sizeof(TupleRef));
  counters::BumpDataMoves(n->count - pos + 1);
  n->items[pos] = t;
  ++n->count;
}

void TTree::RemoveFromNode(Node* n, int pos) {
  std::memmove(&n->items[pos], &n->items[pos + 1],
               (n->count - pos - 1) * sizeof(TupleRef));
  counters::BumpDataMoves(n->count - pos - 1);
  --n->count;
}

TTree::Node* TTree::GlbNode(Node* n) const {
  Node* l = n->left;
  while (l->right != nullptr) l = l->right;
  return l;
}

void TTree::UnlinkNode(Node* n) {
  Node* child = n->left != nullptr ? n->left : n->right;
  Node* parent = n->parent;
  Replace(parent, n, child);
  FreeNode(n);
  RebalanceUp(parent);
}

TTree::Node* TTree::LeftmostNode(Node* n) {
  while (n != nullptr && n->left != nullptr) n = n->left;
  return n;
}

TTree::Node* TTree::RightmostNode(Node* n) {
  while (n != nullptr && n->right != nullptr) n = n->right;
  return n;
}

TTree::Node* TTree::NextNode(const Node* n) {
  if (n->right != nullptr) return LeftmostNode(n->right);
  const Node* p = n->parent;
  while (p != nullptr && p->right == n) {
    n = p;
    p = p->parent;
  }
  return const_cast<Node*>(p);
}

TTree::Node* TTree::PrevNode(const Node* n) {
  if (n->left != nullptr) return RightmostNode(n->left);
  const Node* p = n->parent;
  while (p != nullptr && p->left == n) {
    n = p;
    p = p->parent;
  }
  return const_cast<Node*>(p);
}

bool TTree::Insert(TupleRef t) {
  if (root_ == nullptr) {
    root_ = NewNode(nullptr);
    root_->items[0] = t;
    root_->count = 1;
    size_ = 1;
    return true;
  }
  Node* n = root_;
  for (;;) {
    counters::BumpNodeVisits();
    const int cmin = ops_->CompareTie(t, n->items[0]);
    if (cmin == 0) return false;  // identical pointer already present
    if (cmin < 0) {
      if (unique() && ops_->Compare(t, n->items[0]) == 0) return false;
      if (n->left != nullptr) {
        n = n->left;
        continue;
      }
      // Search ended here: no bounding node, t precedes this node.
      if (n->count < max_count_) {
        InsertIntoNode(n, t);
        ++size_;
        return true;
      }
      Node* leaf = NewNode(n);
      leaf->items[0] = t;
      leaf->count = 1;
      n->left = leaf;
      ++size_;
      RebalanceUp(n);
      return true;
    }
    const int cmax = ops_->CompareTie(t, n->items[n->count - 1]);
    if (cmax == 0) return false;
    if (cmax > 0) {
      if (unique() && ops_->Compare(t, n->items[n->count - 1]) == 0) {
        return false;
      }
      if (n->right != nullptr) {
        n = n->right;
        continue;
      }
      if (n->count < max_count_) {
        InsertIntoNode(n, t);
        ++size_;
        return true;
      }
      Node* leaf = NewNode(n);
      leaf->items[0] = t;
      leaf->count = 1;
      n->right = leaf;
      ++size_;
      RebalanceUp(n);
      return true;
    }

    // n bounds t.
    int pos = LowerBoundTie(n, t);
    if (pos < n->count && n->items[pos] == t) return false;
    if (unique()) {
      if (pos < n->count && ops_->Compare(t, n->items[pos]) == 0) return false;
      if (pos > 0 && ops_->Compare(t, n->items[pos - 1]) == 0) return false;
    }
    if (n->count < max_count_) {
      std::memmove(&n->items[pos + 1], &n->items[pos],
                   (n->count - pos) * sizeof(TupleRef));
      counters::BumpDataMoves(n->count - pos + 1);
      n->items[pos] = t;
      ++n->count;
      ++size_;
      return true;
    }

    // Overflow: the minimum element leaves the node and becomes the new
    // greatest lower bound (Section 3.2.1); t takes its sorted position.
    TupleRef old_min = n->items[0];
    std::memmove(&n->items[0], &n->items[1], (pos - 1) * sizeof(TupleRef));
    counters::BumpDataMoves(pos);
    n->items[pos - 1] = t;
    ++size_;

    if (n->left == nullptr) {
      Node* leaf = NewNode(n);
      leaf->items[0] = old_min;
      leaf->count = 1;
      n->left = leaf;
      RebalanceUp(n);
      return true;
    }
    Node* glb = GlbNode(n);
    if (glb->count < max_count_) {
      glb->items[glb->count++] = old_min;  // becomes glb's new maximum
      counters::BumpDataMoves();
      return true;
    }
    Node* leaf = NewNode(glb);
    leaf->items[0] = old_min;
    leaf->count = 1;
    glb->right = leaf;
    RebalanceUp(glb);
    return true;
  }
}

bool TTree::Erase(TupleRef t) {
  Node* n = root_;
  while (n != nullptr) {
    counters::BumpNodeVisits();
    if (ops_->CompareTie(t, n->items[0]) < 0) {
      n = n->left;
      continue;
    }
    if (ops_->CompareTie(t, n->items[n->count - 1]) > 0) {
      n = n->right;
      continue;
    }
    int pos = LowerBoundTie(n, t);
    if (pos >= n->count || n->items[pos] != t) return false;
    RemoveFromNode(n, pos);
    --size_;

    const bool is_internal = n->left != nullptr && n->right != nullptr;
    if (is_internal) {
      if (n->count < min_count_) {
        // Borrow the greatest lower bound back from its leaf.
        Node* glb = GlbNode(n);
        TupleRef x = glb->items[glb->count - 1];
        --glb->count;
        std::memmove(&n->items[1], &n->items[0], n->count * sizeof(TupleRef));
        counters::BumpDataMoves(n->count + 1);
        n->items[0] = x;
        ++n->count;
        if (glb->count == 0) UnlinkNode(glb);
      }
      return true;
    }
    Node* child = n->left != nullptr ? n->left : n->right;
    if (child != nullptr) {
      // Half-leaf.  The child must be a leaf (AVL balance); fold it in when
      // the node underflows and the merge fits.
      if (n->count < min_count_ && n->count + child->count <= max_count_) {
        if (child == n->left) {
          std::memmove(&n->items[child->count], &n->items[0],
                       n->count * sizeof(TupleRef));
          std::memcpy(&n->items[0], &child->items[0],
                      child->count * sizeof(TupleRef));
        } else {
          std::memcpy(&n->items[n->count], &child->items[0],
                      child->count * sizeof(TupleRef));
        }
        counters::BumpDataMoves(n->count + child->count);
        n->count = static_cast<int16_t>(n->count + child->count);
        counters::BumpMerges();
        Replace(n, child, nullptr);
        FreeNode(child);
        RebalanceUp(n);
      }
      return true;
    }
    // Leaf.
    if (n->count == 0) UnlinkNode(n);
    return true;
  }
  return false;
}

size_t TTree::StorageBytes() const {
  return sizeof(*this) + node_count_ * NodeBytes();
}

std::unique_ptr<OrderedIndex::Cursor> TTree::First() const {
  Node* n = LeftmostNode(root_);
  return std::make_unique<CursorImpl>(n, 0);
}

std::unique_ptr<OrderedIndex::Cursor> TTree::Last() const {
  Node* n = RightmostNode(root_);
  return std::make_unique<CursorImpl>(n, n == nullptr ? 0 : n->count - 1);
}

std::unique_ptr<OrderedIndex::Cursor> TTree::Seek(const Value& v) const {
  const Node* n = root_;
  const Node* cand_node = nullptr;
  int cand_pos = 0;
  while (n != nullptr) {
    counters::BumpNodeVisits();
    if (ops_->CompareValue(v, n->items[0]) <= 0) {
      cand_node = n;
      cand_pos = 0;
      n = n->left;
    } else if (ops_->CompareValue(v, n->items[n->count - 1]) > 0) {
      n = n->right;
    } else {
      cand_node = n;
      cand_pos = LowerBoundValue(n, v);
      break;
    }
  }
  return std::make_unique<CursorImpl>(cand_node, cand_pos);
}

int TTree::Height() const { return NodeHeight(root_); }

bool TTree::CheckSubtree(const Node* n, const Node* parent, int* height,
                         size_t* items, TupleRef* lo, TupleRef* hi) const {
  if (n == nullptr) {
    *height = 0;
    return true;
  }
  if (n->parent != parent) return false;
  if (n->count < 1 || n->count > max_count_) return false;
  for (int i = 1; i < n->count; ++i) {
    if (ops_->CompareTie(n->items[i - 1], n->items[i]) >= 0) return false;
  }
  int lh = 0, rh = 0;
  size_t li = 0, ri = 0;
  TupleRef llo = nullptr, lhi = nullptr, rlo = nullptr, rhi = nullptr;
  if (!CheckSubtree(n->left, n, &lh, &li, &llo, &lhi)) return false;
  if (!CheckSubtree(n->right, n, &rh, &ri, &rlo, &rhi)) return false;
  if (n->height != (lh > rh ? lh : rh) + 1) return false;
  if (rh - lh > 1 || lh - rh > 1) return false;
  if (n->left != nullptr && ops_->CompareTie(lhi, n->items[0]) >= 0) {
    return false;
  }
  if (n->right != nullptr &&
      ops_->CompareTie(n->items[n->count - 1], rlo) >= 0) {
    return false;
  }
  *height = n->height;
  *items = li + ri + n->count;
  *lo = n->left != nullptr ? llo : n->items[0];
  *hi = n->right != nullptr ? rhi : n->items[n->count - 1];
  return true;
}

bool TTree::CheckInvariants() const {
  if (root_ == nullptr) return size_ == 0;
  int h = 0;
  size_t items = 0;
  TupleRef lo = nullptr, hi = nullptr;
  if (!CheckSubtree(root_, nullptr, &h, &items, &lo, &hi)) return false;
  return items == size_;
}

}  // namespace mmdb
