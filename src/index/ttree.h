// T Tree [LeC85]: the paper's new index structure — a balanced binary tree
// whose nodes hold many elements (Figures 3 and 4).  It keeps the AVL Tree's
// intrinsic binary-search navigation (compare, follow a pointer) while
// getting the B Tree's storage density and cheap intra-node updates.
//
// Terminology from Section 3.2.1:
//   * internal node  — two children;
//   * half-leaf      — exactly one child;
//   * leaf           — no children;
//   * node N "bounds" value X when min(N) <= X <= max(N);
//   * the greatest lower bound (GLB) of an internal node A is the
//     predecessor of min(A), held by a leaf/half-leaf in A's left subtree.
//
// Internal nodes keep their occupancy in [min_count, max_count]; the paper
// recommends a slack of one or two items, which "significantly reduce[s] the
// need for tree rotations".  Leaves and half-leaves range 0..max_count.
//
// Insert: find the bounding node; insert there, and on overflow transfer the
// node's minimum element toward the GLB leaf.  If no node bounds the value,
// it goes into the node where the search ended (new leaf on overflow).
// Delete: remove from the bounding node; an underflowing internal node
// borrows its GLB back from a leaf; empty leaves are unlinked and the tree
// rebalanced with AVL-style rotations.  LR/RL rotations that promote a
// nearly-empty leaf to an internal position slide elements from the old
// child to keep occupancy up (the T Tree "special rotation").

#ifndef MMDB_INDEX_TTREE_H_
#define MMDB_INDEX_TTREE_H_

#include <memory>

#include "src/index/index.h"
#include "src/util/arena.h"

namespace mmdb {

class TTree : public OrderedIndex {
 public:
  /// node_size = max_count (elements per node); min_count = max(1,
  /// node_size - config.min_slack).
  TTree(std::shared_ptr<const KeyOps> ops, const IndexConfig& config);
  ~TTree() override;

  IndexKind kind() const override { return IndexKind::kTTree; }
  const KeyOps& key_ops() const override { return *ops_; }

  bool Insert(TupleRef t) override;
  bool Erase(TupleRef t) override;
  size_t size() const override { return size_; }
  size_t StorageBytes() const override;

  std::unique_ptr<Cursor> First() const override;
  std::unique_ptr<Cursor> Last() const override;
  std::unique_ptr<Cursor> Seek(const Value& v) const override;

  int max_count() const { return max_count_; }
  int min_count() const { return min_count_; }
  size_t node_count() const { return node_count_; }
  int Height() const;

  /// Verifies ordering (tie-broken, across node boundaries), parent links,
  /// AVL balance, occupancy bounds, and the element count.  Test hook.
  bool CheckInvariants() const;

 private:
  struct Node {
    Node* left;
    Node* right;
    Node* parent;
    int16_t count;
    int8_t height;
    // Flexible item area, capacity max_count_, kept sorted by CompareTie.
    TupleRef items[1];
  };

  class CursorImpl;

  size_t NodeBytes() const;
  Node* NewNode(Node* parent);
  void FreeNode(Node* n);

  static int NodeHeight(const Node* n) { return n == nullptr ? 0 : n->height; }
  static int BalanceOf(const Node* n);
  static void UpdateHeight(Node* n);
  void Replace(Node* parent, Node* child, Node* with);
  Node* RotateLeft(Node* n);
  Node* RotateRight(Node* n);
  /// Post-LR fix: new subtree root `c` underfull, left child has no right
  /// subtree -> move the left child's largest items into c's front.
  void SlideFromLeft(Node* c);
  /// Post-RL mirror image.
  void SlideFromRight(Node* c);
  void RebalanceUp(Node* n);

  /// First position in n with item key >= v.
  int LowerBoundValue(const Node* n, const Value& v) const;
  /// First position in n with item tie->= t.
  int LowerBoundTie(const Node* n, TupleRef t) const;
  /// Inserts t into n at sorted position (n has room).
  void InsertIntoNode(Node* n, TupleRef t);
  /// Removes item at position pos from n.
  void RemoveFromNode(Node* n, int pos);
  /// Rightmost node of n's left subtree (the GLB holder).  n->left != null.
  Node* GlbNode(Node* n) const;
  /// Unlinks an empty node, splicing its single child (if any) upward.
  void UnlinkNode(Node* n);

  static Node* LeftmostNode(Node* n);
  static Node* RightmostNode(Node* n);
  static Node* NextNode(const Node* n);
  static Node* PrevNode(const Node* n);

  bool CheckSubtree(const Node* n, const Node* parent, int* height,
                    size_t* items, TupleRef* lo, TupleRef* hi) const;

  std::shared_ptr<const KeyOps> ops_;
  int max_count_;
  int min_count_;
  Arena arena_;
  void* free_list_ = nullptr;
  Node* root_ = nullptr;
  size_t size_ = 0;
  size_t node_count_ = 0;
};

}  // namespace mmdb

#endif  // MMDB_INDEX_TTREE_H_
