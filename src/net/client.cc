#include "src/net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "src/util/hash.h"

namespace mmdb {
namespace net {

Status Client::Connect(const std::string& host, uint16_t port) {
  if (fd_ >= 0) return Status::FailedPrecondition("already connected");
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s =
        Status::Internal(std::string("connect: ") + std::strerror(errno));
    ::close(fd);
    return s;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  // Per-connection salt so generated trace ids from different clients (or
  // reconnects) don't collide even though each counts requests from 1.
  trace_base_ = HashMix64(
      static_cast<uint64_t>(std::chrono::steady_clock::now()
                                .time_since_epoch()
                                .count()) ^
      (static_cast<uint64_t>(fd) << 48) ^
      reinterpret_cast<uintptr_t>(this));
  return Status::Ok();
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// ---- Send side --------------------------------------------------------------

Status Client::SendFrame(FrameType type, const std::string& payload,
                         uint64_t* request_id, uint64_t trace_id,
                         uint64_t* trace_id_out) {
  std::lock_guard<std::mutex> lock(send_mu_);
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  const uint64_t id = next_id_++;
  if (request_id != nullptr) *request_id = id;
  if (trace_id == 0 && type == FrameType::kRequest) {
    trace_id = HashMix64(trace_base_ + id);
    if (trace_id == 0) trace_id = 1;
  }
  if (trace_id_out != nullptr) *trace_id_out = trace_id;
  std::string frame;
  EncodeFrame(type, id, trace_id, payload, &frame);
  size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + off, frame.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::Internal(std::string("send: ") + std::strerror(errno));
  }
  if (type == FrameType::kRequest) ++sent_;
  return Status::Ok();
}

Status Client::Send(const Operation& op, uint64_t* request_id,
                    uint64_t trace_id, uint64_t* trace_id_out) {
  std::string payload;
  if (!EncodeOperation(op, &payload)) {
    return Status::InvalidArgument("operation not encodable (pointer value?)");
  }
  return SendFrame(FrameType::kRequest, payload, request_id, trace_id,
                   trace_id_out);
}

// ---- Receive side -----------------------------------------------------------

Status Client::ReadFrame(Frame* frame) {
  // recv_mu_ is held by the caller.
  for (;;) {
    std::string error;
    switch (in_.Next(frame, &error)) {
      case FrameBuffer::Result::kFrame:
        return Status::Ok();
      case FrameBuffer::Result::kCorrupt:
        return Status::Internal("corrupt frame from server: " + error);
      case FrameBuffer::Result::kUnsupportedVersion:
        return Status::Internal("unsupported frame version from server: " +
                                error);
      case FrameBuffer::Result::kNeedMore:
        break;
    }
    if (fd_ < 0) return Status::FailedPrecondition("not connected");
    if (recv_timeout_.count() > 0) {
      pollfd p{fd_, POLLIN, 0};
      const int r = ::poll(&p, 1, static_cast<int>(recv_timeout_.count()));
      if (r == 0) return Status::ResourceExhausted("receive timeout");
      if (r < 0 && errno != EINTR) {
        return Status::Internal(std::string("poll: ") + std::strerror(errno));
      }
      if (r < 0) continue;
    }
    char buf[16 * 1024];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      in_.Append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) return Status::Aborted("connection closed by server");
    if (errno == EINTR) continue;
    return Status::Internal(std::string("recv: ") + std::strerror(errno));
  }
}

bool Client::FrameToResponse(const Frame& frame, Response* out) {
  out->request_id = frame.request_id;
  out->trace_id = frame.trace_id;
  switch (frame.type) {
    case FrameType::kResponse:
      out->is_error = false;
      return DecodeOpResult(frame.payload, &out->result);
    case FrameType::kError:
      out->is_error = true;
      return DecodeError(frame.payload, &out->error_code,
                         &out->error_message);
    default:
      return false;  // pings/pongs are not responses
  }
}

Status Client::Receive(Response* out) {
  std::lock_guard<std::mutex> lock(recv_mu_);
  if (!parked_.empty()) {
    *out = std::move(parked_.front());
    parked_.pop_front();
    return Status::Ok();
  }
  for (;;) {
    Frame frame;
    Status s = ReadFrame(&frame);
    if (!s.ok()) return s;
    if (frame.type == FrameType::kPong) continue;  // stray pong: drop
    if (!FrameToResponse(frame, out)) {
      return Status::Internal("malformed response payload");
    }
    if (out->request_id != 0) ++received_;
    return Status::Ok();
  }
}

Response Client::Call(const Operation& op, uint64_t trace_id) {
  Response resp;
  uint64_t id = 0;
  Status s = Send(op, &id, trace_id);
  if (!s.ok()) {
    resp.result.status = s;
    return resp;
  }
  std::lock_guard<std::mutex> lock(recv_mu_);
  // Deliver parked responses for *this* id first (possible when Call and
  // Receive interleave on one thread).
  for (auto it = parked_.begin(); it != parked_.end(); ++it) {
    if (it->request_id == id) {
      resp = std::move(*it);
      parked_.erase(it);
      return resp;
    }
  }
  for (;;) {
    Frame frame;
    s = ReadFrame(&frame);
    if (!s.ok()) {
      resp.result.status = s;
      return resp;
    }
    if (frame.type == FrameType::kPong) continue;
    Response r;
    if (!FrameToResponse(frame, &r)) {
      resp.result.status = Status::Internal("malformed response payload");
      return resp;
    }
    if (r.request_id != 0) ++received_;
    if (r.request_id == id ||
        (r.is_error && r.request_id == 0)) {
      // A connection-level error (id 0, e.g. kTooManyConnections) answers
      // whatever we were waiting on.
      return r;
    }
    parked_.push_back(std::move(r));  // out-of-order pipelined completion
  }
}

Status Client::Admin(AdminKind kind, std::string* text) {
  uint64_t id = 0;
  const std::string payload(1, static_cast<char>(kind));
  Status s = SendFrame(FrameType::kAdminRequest, payload, &id);
  if (!s.ok()) return s;
  std::lock_guard<std::mutex> lock(recv_mu_);
  for (;;) {
    Frame frame;
    s = ReadFrame(&frame);
    if (!s.ok()) return s;
    if (frame.type == FrameType::kAdminResponse && frame.request_id == id) {
      *text = std::move(frame.payload);
      return Status::Ok();
    }
    if (frame.type == FrameType::kError && frame.request_id == id) {
      WireErrorCode code = WireErrorCode::kProtocolError;
      std::string message;
      DecodeError(frame.payload, &code, &message);
      return Status::InvalidArgument("admin request refused: " + message);
    }
    if (frame.type == FrameType::kPong) continue;
    Response r;
    if (FrameToResponse(frame, &r)) {
      if (r.request_id != 0) ++received_;
      parked_.push_back(std::move(r));
    }
  }
}

Status Client::Repl(const std::string& request, std::string* response) {
  uint64_t id = 0;
  Status s = SendFrame(FrameType::kReplRequest, request, &id);
  if (!s.ok()) return s;
  std::lock_guard<std::mutex> lock(recv_mu_);
  for (;;) {
    Frame frame;
    s = ReadFrame(&frame);
    if (!s.ok()) return s;
    if (frame.type == FrameType::kReplResponse && frame.request_id == id) {
      *response = std::move(frame.payload);
      return Status::Ok();
    }
    if (frame.type == FrameType::kError && frame.request_id == id) {
      WireErrorCode code = WireErrorCode::kProtocolError;
      std::string message;
      DecodeError(frame.payload, &code, &message);
      return Status::InvalidArgument("repl request refused: " + message);
    }
    if (frame.type == FrameType::kPong) continue;
    Response r;
    if (FrameToResponse(frame, &r)) {
      if (r.request_id != 0) ++received_;
      parked_.push_back(std::move(r));
    }
  }
}

Status Client::Ping() {
  uint64_t id = 0;
  Status s = SendFrame(FrameType::kPing, {}, &id);
  if (!s.ok()) return s;
  std::lock_guard<std::mutex> lock(recv_mu_);
  for (;;) {
    Frame frame;
    s = ReadFrame(&frame);
    if (!s.ok()) return s;
    if (frame.type == FrameType::kPong && frame.request_id == id) {
      return Status::Ok();
    }
    Response r;
    if (FrameToResponse(frame, &r)) {
      if (r.request_id != 0) ++received_;
      parked_.push_back(std::move(r));
    }
  }
}

uint64_t Client::inflight() const {
  std::lock_guard<std::mutex> send_lock(send_mu_);
  std::lock_guard<std::mutex> recv_lock(recv_mu_);
  return sent_ - received_;
}

}  // namespace net
}  // namespace mmdb
