// C++ client for the network front end: blocking TCP socket speaking the
// src/net/wire_format.h protocol, with a synchronous convenience API
// (Call) and a pipelined asynchronous one (Send / Receive).
//
// Pipelining: Send() writes a request frame without waiting; the server
// may complete pipelined requests out of order (its workers are a pool),
// so every Response carries the request id it answers.  Call() internally
// receives until its own id shows up, parking other responses for later
// Receive() calls.
//
// Thread-safety: a Client may be driven by at most one sending thread and
// one receiving thread concurrently (the open-loop load generator pairs a
// paced sender with a drain thread per connection).  Send/Call take the
// write lock, Receive/Call the read lock; Call holds both roles briefly
// and must then be the only caller.

#ifndef MMDB_NET_CLIENT_H_
#define MMDB_NET_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>

#include "src/net/wire_format.h"
#include "src/util/status.h"

namespace mmdb {
namespace net {

/// One server reply: either the executed operation's OpResult (kResponse)
/// or a typed error frame (kError — shed load / protocol violation).
struct Response {
  uint64_t request_id = 0;
  uint64_t trace_id = 0;  ///< echoed from the request's wire header
  bool is_error = false;
  WireErrorCode error_code = WireErrorCode::kProtocolError;  ///< when is_error
  std::string error_message;                                 ///< when is_error
  OpResult result;  ///< when !is_error

  /// True when the operation executed and reported OK.
  bool ok() const { return !is_error && result.ok(); }
};

class Client {
 public:
  Client() = default;
  ~Client() { Close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Receive-side timeout for Receive/Call; 0 = block forever.  Expiry
  /// surfaces as kResourceExhausted("receive timeout").
  void set_receive_timeout(std::chrono::milliseconds t) { recv_timeout_ = t; }

  /// Synchronous round trip: Send + Receive until this request's response
  /// arrives (other pipelined responses are parked for later Receive).
  /// `trace_id` is the end-to-end identity carried in the wire header,
  /// echoed in the response, and stamped on every server-side span /
  /// flight record; 0 = the client picks a fresh one.
  Response Call(const Operation& op, uint64_t trace_id = 0);

  /// Pipelined send; returns the assigned request id via *request_id and
  /// the trace id actually used via *trace_id_out (either may be null).
  /// Does not wait for any response.
  Status Send(const Operation& op, uint64_t* request_id = nullptr,
              uint64_t trace_id = 0, uint64_t* trace_id_out = nullptr);

  /// Admin round trip: fetches METRICS / STATUS / SLOWLOG / FLIGHT text
  /// over the binary protocol (kAdminRequest/kAdminResponse).  Pipelined
  /// query responses arriving meanwhile are parked for later Receive.
  Status Admin(AdminKind kind, std::string* text);

  /// Replication round trip (kReplRequest/kReplResponse): sends an opaque
  /// repl-codec payload and returns the server's response payload.  The
  /// replica's poll/fetch loop is built on this.
  Status Repl(const std::string& request, std::string* response);

  /// Blocks for the next response on the wire (or a parked one), in server
  /// completion order — not necessarily send order.
  Status Receive(Response* out);

  /// Liveness round trip (kPing/kPong).
  Status Ping();

  /// In-flight request count (sent minus received); the open-loop load
  /// generator uses it to bound its own pipeline.
  uint64_t inflight() const;

 private:
  Status SendFrame(FrameType type, const std::string& payload,
                   uint64_t* request_id, uint64_t trace_id = 0,
                   uint64_t* trace_id_out = nullptr);
  /// Reads one frame off the socket into *frame.
  Status ReadFrame(Frame* frame);
  static bool FrameToResponse(const Frame& frame, Response* out);

  int fd_ = -1;
  std::chrono::milliseconds recv_timeout_{0};

  mutable std::mutex send_mu_;
  uint64_t next_id_ = 1;
  uint64_t sent_ = 0;
  uint64_t trace_base_ = 0;  ///< per-connection salt for generated trace ids

  mutable std::mutex recv_mu_;
  FrameBuffer in_;
  std::deque<Response> parked_;  ///< responses read while waiting for an id
  uint64_t received_ = 0;
};

}  // namespace net
}  // namespace mmdb

#endif  // MMDB_NET_CLIENT_H_
