#include "src/net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "src/core/database.h"
#include "src/server/flight_recorder.h"
#include "src/server/query_service.h"
#include "src/util/metrics.h"
#include "src/util/timer.h"
#include "src/util/trace.h"

namespace mmdb {
namespace net {

namespace {
using SteadyClock = std::chrono::steady_clock;

/// Read buffer chunk; the loop keeps reading chunks until EAGAIN, so this
/// bounds syscall granularity, not message size.
constexpr size_t kReadChunk = 64 * 1024;

/// HTTP shim request cap: a scrape GET is a few hundred bytes; anything
/// bigger is not a scraper.
constexpr size_t kMaxHttpRequest = 8 * 1024;
}  // namespace

// ---- Metrics ----------------------------------------------------------------

struct Server::Metrics {
  Counter* accepted;
  Counter* rejected_connections;   ///< shed at accept (connection cap)
  Counter* rejected_pipeline;      ///< shed: per-connection pipeline bound
  Counter* rejected_queue;         ///< shed: service queue full
  Counter* rejected_shutdown;      ///< shed: request arrived while stopping
  Counter* frames_in;
  Counter* frames_out;
  Counter* bytes_in;
  Counter* bytes_out;
  Counter* protocol_errors;
  Counter* unsupported_version;  ///< wire-v1 frames answered with the typed error
  Counter* idle_closed;
  Counter* requests;
  Counter* responses;
  Counter* admin_requests;  ///< METRICS/STATUS/SLOWLOG/FLIGHT over binary
  Counter* http_requests;   ///< GETs served by the plaintext scrape shim
  Gauge* connections;
  Gauge* connections_hwm;
  Gauge* pipeline_depth_hwm;
  LatencyHistogram* decode_micros;
  LatencyHistogram* request_micros;

  explicit Metrics(MetricsRegistry* r)
      : accepted(r->GetCounter("mmdb_net_accepted_total")),
        rejected_connections(
            r->GetCounter("mmdb_net_rejected_connections_total")),
        rejected_pipeline(
            r->GetCounter("mmdb_net_rejected_total{reason=\"pipeline\"}")),
        rejected_queue(
            r->GetCounter("mmdb_net_rejected_total{reason=\"queue\"}")),
        rejected_shutdown(
            r->GetCounter("mmdb_net_rejected_total{reason=\"shutdown\"}")),
        frames_in(r->GetCounter("mmdb_net_frames_in_total")),
        frames_out(r->GetCounter("mmdb_net_frames_out_total")),
        bytes_in(r->GetCounter("mmdb_net_bytes_in_total")),
        bytes_out(r->GetCounter("mmdb_net_bytes_out_total")),
        protocol_errors(r->GetCounter("mmdb_net_protocol_errors_total")),
        unsupported_version(
            r->GetCounter("mmdb_net_unsupported_version_total")),
        idle_closed(r->GetCounter("mmdb_net_idle_closed_total")),
        requests(r->GetCounter("mmdb_net_requests_total")),
        responses(r->GetCounter("mmdb_net_responses_total")),
        admin_requests(r->GetCounter("mmdb_net_admin_requests_total")),
        http_requests(r->GetCounter("mmdb_net_http_requests_total")),
        connections(r->GetGauge("mmdb_net_connections")),
        connections_hwm(r->GetGauge("mmdb_net_connections_hwm")),
        pipeline_depth_hwm(r->GetGauge("mmdb_net_pipeline_depth_hwm")),
        decode_micros(r->GetHistogram("mmdb_net_decode_micros")),
        request_micros(r->GetHistogram("mmdb_net_request_micros")) {}
};

// ---- Connection -------------------------------------------------------------

struct Server::Connection {
  explicit Connection(int fd_in) : fd(fd_in) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  const int fd;
  Session* session = nullptr;  ///< per-connection service session

  // Loop-thread-only state.
  /// Protocol sniffed from the connection's first bytes: the "MMDB" magic
  /// (or anything that is not an HTTP method — it then fails CRC with a
  /// typed error) selects the binary protocol; "GET "/"HEAD" selects the
  /// plaintext-HTTP scrape shim.
  enum class Proto : uint8_t { kUnknown, kBinary, kHttp };
  Proto proto = Proto::kUnknown;
  std::string sniff;     ///< first bytes held until the protocol is known
  std::string http_buf;  ///< accumulated HTTP request (kHttp only)
  FrameBuffer in;
  uint32_t interest = 0;       ///< events currently armed in epoll
  bool registered = false;     ///< fd is (still) in the epoll set
  SteadyClock::time_point last_activity{};

  // Shared state: the loop and worker completion callbacks both touch the
  // outbound buffer and flags under `mu`.
  std::mutex mu;
  std::string out;
  size_t out_pos = 0;
  bool closed = false;            ///< loop closed the socket; drop output
  bool close_after_flush = false; ///< protocol error: flush, then close
  bool session_released = false;
  size_t in_flight = 0;           ///< submitted ops awaiting callbacks
  size_t pipeline_hwm = 0;
};

// ---- Lifecycle --------------------------------------------------------------

Server::Server(QueryService* service, ServerOptions options)
    : service_(service),
      options_(std::move(options)),
      metrics_(new Metrics(&service->database()->metrics())) {
  options_.max_pipeline = std::max<size_t>(1, options_.max_pipeline);
  options_.max_connections = std::max<size_t>(1, options_.max_connections);
}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (running_.load(std::memory_order_acquire) || loop_.joinable()) {
    return Status::FailedPrecondition("server already started");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad host " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status s = Status::Internal(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    Status s = Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    Status s = Status::Internal("epoll/eventfd setup failed");
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    ::close(listen_fd_);
    epoll_fd_ = wake_fd_ = listen_fd_ = -1;
    return s;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  // Heartbeat for the loop thread: a wedged epoll loop is reported by the
  // service's watchdog exactly like a stalled worker.
  if (loop_beat_ == nullptr && service_->watchdog() != nullptr) {
    loop_beat_ = service_->watchdog()->RegisterLoop("net_loop");
  } else if (loop_beat_ != nullptr) {
    loop_beat_->Resume();  // restarted server: re-arm from now
  }

  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  loop_ = std::thread([this] { Loop(); });
  return Status::Ok();
}

void Server::Stop() {
  if (!loop_.joinable()) return;
  stopping_.store(true, std::memory_order_release);
  Wake();
  // Drain: every in-flight Submit callback must finish touching connection
  // and server state before we let the loop tear sockets down (and before
  // the caller may destroy the QueryService/Database behind us).  The
  // callback decrements and notifies *under* drain_mu_, so when this wait
  // returns no callback can still be inside server code.
  {
    std::unique_lock<std::mutex> lock(drain_mu_);
    drain_cv_.wait(lock, [this] { return in_flight_total_ == 0; });
  }
  Wake();
  loop_.join();
  running_.store(false, std::memory_order_release);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  wake_fd_ = epoll_fd_ = -1;
}

void Server::Wake() {
  if (wake_fd_ < 0) return;
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void Server::DrainWakePipe() {
  uint64_t value;
  while (::read(wake_fd_, &value, sizeof(value)) > 0) {
  }
}

size_t Server::InFlightTotal() {
  std::lock_guard<std::mutex> lock(drain_mu_);
  return in_flight_total_;
}

// ---- Event loop -------------------------------------------------------------

void Server::Loop() {
  constexpr int kMaxEvents = 128;
  epoll_event events[kMaxEvents];
  bool listen_closed = false;

  for (;;) {
    if (loop_beat_ != nullptr) loop_beat_->Pulse();
    const bool stopping = stopping_.load(std::memory_order_acquire);
    if (stopping && !listen_closed) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
      ::close(listen_fd_);
      listen_fd_ = -1;
      listen_closed = true;
    }
    if (stopping && InFlightTotal() == 0) break;

    int timeout_ms = 500;
    if (stopping) {
      timeout_ms = 10;
    } else if (options_.idle_timeout.count() > 0) {
      timeout_ms = static_cast<int>(std::clamp<int64_t>(
          options_.idle_timeout.count() / 2, 1, 50));
    }
    if (loop_beat_ != nullptr) {
      // An idle wait must stay well inside the watchdog deadline, or a
      // healthy-but-eventless loop reads as wedged.
      const int64_t cap = std::max<int64_t>(
          service_->watchdog()->options().deadline.count() / 4, 1);
      timeout_ms = static_cast<int>(std::min<int64_t>(timeout_ms, cap));
    }
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
    if (n < 0 && errno != EINTR) break;

    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        DrainWakePipe();
        continue;
      }
      if (fd == listen_fd_ && !listen_closed) {
        HandleListen();
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // closed earlier this batch
      HandleEvent(events[i].events, it->second);
    }

    // Completion callbacks queued responses; flush them on this thread.
    std::vector<std::shared_ptr<Connection>> pending;
    {
      std::lock_guard<std::mutex> lock(flush_mu_);
      pending.swap(flush_queue_);
    }
    for (const auto& conn : pending) {
      bool is_open;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        is_open = !conn->closed;
      }
      if (is_open && !Flush(conn)) CloseConnection(conn);
    }

    if (!stopping && options_.idle_timeout.count() > 0) SweepIdle();
  }

  // Drained: no callback will queue output again.  Give every connection a
  // final flush so pipelined clients see the responses the service already
  // produced, then close everything.
  std::vector<std::shared_ptr<Connection>> remaining;
  remaining.reserve(conns_.size());
  for (auto& [fd, conn] : conns_) remaining.push_back(conn);
  for (const auto& conn : remaining) {
    Flush(conn);
    CloseConnection(conn);
  }
  conns_.clear();
  if (loop_beat_ != nullptr) loop_beat_->Retire();
}

void Server::HandleListen() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: wait for next event

    if (conns_.size() >= options_.max_connections) {
      // Shed with a typed frame: the client learns *why* instead of seeing
      // a silent RST.  Best-effort single write — the frame is small enough
      // to fit any socket buffer.
      metrics_->rejected_connections->Add();
      std::string payload, frame;
      EncodeError(WireErrorCode::kTooManyConnections,
                  "connection cap reached", &payload);
      EncodeFrame(FrameType::kError, 0, 0, payload, &frame);
      [[maybe_unused]] ssize_t n = ::write(fd, frame.data(), frame.size());
      ::close(fd);
      continue;
    }

    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>(fd);
    conn->session = service_->OpenSession();
    conn->last_activity = SteadyClock::now();
    conn->interest = EPOLLIN;
    epoll_event ev{};
    ev.events = conn->interest |
                (options_.edge_triggered ? EPOLLET : 0u) |
                (options_.oneshot ? EPOLLONESHOT : 0u);
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      service_->CloseSession(conn->session);
      continue;  // conn destructor closes fd
    }
    conn->registered = true;
    conns_.emplace(fd, std::move(conn));
    metrics_->accepted->Add();
    metrics_->connections->Set(static_cast<int64_t>(conns_.size()));
    conns_hwm_ = std::max(conns_hwm_, conns_.size());
    metrics_->connections_hwm->Set(static_cast<int64_t>(conns_hwm_));
  }
}

void Server::UpdateInterest(Connection* conn) {
  if (!conn->registered) return;
  epoll_event ev{};
  ev.events = conn->interest |
              (options_.edge_triggered ? EPOLLET : 0u) |
              (options_.oneshot ? EPOLLONESHOT : 0u);
  ev.data.fd = conn->fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

// By value for the same map-erase reason as CloseConnection.
void Server::HandleEvent(uint32_t events, std::shared_ptr<Connection> conn) {
  conn->last_activity = SteadyClock::now();
  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    CloseConnection(conn);
    return;
  }
  bool alive = true;
  if ((events & EPOLLIN) != 0) alive = ReadAndDispatch(conn);
  if (alive && (events & EPOLLOUT) != 0) alive = Flush(conn);
  if (!alive) {
    CloseConnection(conn);
    return;
  }
  // EPOLLONESHOT disarms the fd on delivery; rearm with current interest.
  // (Also refreshes EPOLLOUT, which Flush may have toggled.)
  if (options_.oneshot) UpdateInterest(conn.get());
}

void Server::IngestBytes(Connection* conn, const char* data, size_t n) {
  switch (conn->proto) {
    case Connection::Proto::kBinary:
      conn->in.Append(data, n);
      return;
    case Connection::Proto::kHttp:
      conn->http_buf.append(data, n);
      return;
    case Connection::Proto::kUnknown:
      break;
  }
  conn->sniff.append(data, n);
  if (conn->sniff.size() < 4) return;  // not enough to sniff yet
  if (conn->sniff.compare(0, 4, "GET ") == 0 ||
      conn->sniff.compare(0, 4, "HEAD") == 0) {
    conn->proto = Connection::Proto::kHttp;
    conn->http_buf = std::move(conn->sniff);
  } else {
    // "MMDB" magic — or garbage, which the frame decoder then rejects
    // with the usual typed protocol error.
    conn->proto = Connection::Proto::kBinary;
    conn->in.Append(conn->sniff.data(), conn->sniff.size());
  }
  conn->sniff.clear();
  conn->sniff.shrink_to_fit();
}

bool Server::ReadAndDispatch(const std::shared_ptr<Connection>& conn) {
  trace::Span span("net_read");
  char buf[kReadChunk];
  for (;;) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      metrics_->bytes_in->Add(static_cast<uint64_t>(n));
      IngestBytes(conn.get(), buf, static_cast<size_t>(n));
      if (static_cast<size_t>(n) < sizeof(buf) && !options_.edge_triggered) {
        break;  // short read: level-triggered epoll will re-notify
      }
      continue;
    }
    if (n == 0) return false;  // peer closed
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;  // hard error
  }

  if (conn->proto == Connection::Proto::kUnknown) return true;  // < 4 bytes
  if (conn->proto == Connection::Proto::kHttp) {
    if (!HandleHttp(conn)) return false;
    return Flush(conn);
  }

  // Carve and dispatch every complete frame that arrived.
  for (;;) {
    Frame frame;
    std::string error;
    Timer decode_timer;
    const FrameBuffer::Result r = conn->in.Next(&frame, &error);
    if (r == FrameBuffer::Result::kNeedMore) break;
    if (r == FrameBuffer::Result::kCorrupt) {
      // The stream is unusable (framing lost): answer with a typed
      // protocol error, flush it, then close.
      metrics_->protocol_errors->Add();
      SendError(conn, 0, 0, WireErrorCode::kProtocolError, error);
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->close_after_flush = true;
      break;
    }
    if (r == FrameBuffer::Result::kUnsupportedVersion) {
      // A well-formed frame in the old wire version: answer with a typed
      // kUnsupportedVersion error *in the sender's own framing* (v1), with
      // its request id attached, so the old client reads a clean refusal
      // instead of a CRC failure or a silent close.  Then close.
      metrics_->unsupported_version->Add();
      std::string payload, v1frame;
      EncodeError(WireErrorCode::kUnsupportedVersion, error, &payload);
      EncodeFrameV1(FrameType::kError, frame.request_id, payload, &v1frame);
      std::lock_guard<std::mutex> lock(conn->mu);
      if (!conn->closed) {
        conn->out += v1frame;
        metrics_->frames_out->Add();
      }
      conn->close_after_flush = true;
      break;
    }
    metrics_->decode_micros->Record(decode_timer.ElapsedMicros());
    metrics_->frames_in->Add();
    DispatchFrame(conn, std::move(frame));
    bool closing;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      closing = conn->close_after_flush;
    }
    if (closing) break;  // protocol error mid-pipeline: stop decoding
  }
  return Flush(conn);
}

// ---- HTTP scrape shim -------------------------------------------------------

std::string Server::AdminText(AdminKind kind) {
  switch (kind) {
    case AdminKind::kMetrics:
      return service_->MetricsText();
    case AdminKind::kStatus: {
      std::string text = service_->StatusText();
      // Net-layer lines the service cannot see (loop-thread state).
      text += "net_connections: " + std::to_string(conns_.size()) + "\n";
      text += "net_connections_hwm: " + std::to_string(conns_hwm_) + "\n";
      return text;
    }
    case AdminKind::kSlowLog:
      return flight::SlowLogText();
    case AdminKind::kFlight:
      return flight::FlightText();
  }
  return "";
}

bool Server::HandleHttp(const std::shared_ptr<Connection>& conn) {
  const size_t header_end = conn->http_buf.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    if (conn->http_buf.size() > kMaxHttpRequest) return false;  // not a scraper
    return true;  // headers still arriving
  }
  metrics_->http_requests->Add();

  const size_t line_end = conn->http_buf.find("\r\n");
  const std::string line = conn->http_buf.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.find(' ', sp1 + 1);
  const std::string method =
      sp1 == std::string::npos ? line : line.substr(0, sp1);
  std::string path = sp1 == std::string::npos || sp2 == std::string::npos
                         ? std::string()
                         : line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  int code = 200;
  std::string body;
  if (path == "/metrics") {
    body = AdminText(AdminKind::kMetrics);
  } else if (path == "/status") {
    body = AdminText(AdminKind::kStatus);
  } else if (path == "/slowlog") {
    body = AdminText(AdminKind::kSlowLog);
  } else if (path == "/flight") {
    body = AdminText(AdminKind::kFlight);
  } else {
    code = 404;
    body = "not found; try /metrics /status /slowlog /flight\n";
  }

  std::string resp;
  resp.reserve(body.size() + 160);
  resp += code == 200 ? "HTTP/1.0 200 OK\r\n" : "HTTP/1.0 404 Not Found\r\n";
  resp += "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n";
  resp += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  resp += "Connection: close\r\n\r\n";
  if (method != "HEAD") resp += body;

  std::lock_guard<std::mutex> lock(conn->mu);
  if (conn->closed) return false;
  conn->out += resp;
  conn->http_buf.clear();
  conn->close_after_flush = true;  // one scrape per connection
  return true;
}

void Server::DispatchFrame(const std::shared_ptr<Connection>& conn,
                           Frame frame) {
  switch (frame.type) {
    case FrameType::kPing:
      QueueFrame(conn, FrameType::kPong, frame.request_id, frame.trace_id, {});
      return;
    case FrameType::kAdminRequest: {
      // Scrape endpoints answered inline on the loop thread: the text is
      // assembled from lock-free snapshots, so this cannot stall the loop.
      if (frame.payload.size() != 1 ||
          frame.payload[0] < static_cast<char>(AdminKind::kMetrics) ||
          frame.payload[0] > static_cast<char>(AdminKind::kFlight)) {
        metrics_->protocol_errors->Add();
        SendError(conn, frame.request_id, frame.trace_id,
                  WireErrorCode::kProtocolError, "malformed admin payload");
        return;
      }
      metrics_->admin_requests->Add();
      QueueFrame(conn, FrameType::kAdminResponse, frame.request_id,
                 frame.trace_id,
                 AdminText(static_cast<AdminKind>(frame.payload[0])));
      return;
    }
    case FrameType::kReplRequest: {
      if (!repl_handler_) {
        metrics_->protocol_errors->Add();
        SendError(conn, frame.request_id, frame.trace_id,
                  WireErrorCode::kProtocolError,
                  "replication not enabled on this server");
        return;
      }
      QueueFrame(conn, FrameType::kReplResponse, frame.request_id,
                 frame.trace_id, repl_handler_(frame.payload));
      return;
    }
    case FrameType::kRequest:
      break;
    default: {
      // Clients must not send responses/errors/pongs.
      metrics_->protocol_errors->Add();
      SendError(conn, frame.request_id, frame.trace_id,
                WireErrorCode::kProtocolError,
                std::string("unexpected frame type ") +
                    FrameTypeName(frame.type));
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->close_after_flush = true;
      return;
    }
  }

  metrics_->requests->Add();
  if (stopping_.load(std::memory_order_acquire)) {
    metrics_->rejected_shutdown->Add();
    SendError(conn, frame.request_id, frame.trace_id,
              WireErrorCode::kShuttingDown, "server is stopping");
    return;
  }

  Operation op;
  {
    trace::Span span("net_decode");
    if (!DecodeOperation(frame.payload, &op)) {
      // The frame passed its CRC, so this is a malformed payload from a
      // confused client, not line noise; the framing is still intact and
      // the connection stays usable.
      metrics_->protocol_errors->Add();
      SendError(conn, frame.request_id, frame.trace_id,
                WireErrorCode::kProtocolError, "malformed request payload");
      return;
    }
  }

  // Admission: bounded per-connection pipeline.  Shedding here (instead of
  // buffering) keeps worst-case memory per connection proportional to the
  // bound and tells the client to back off, with its request id attached.
  bool admitted = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->in_flight < options_.max_pipeline) {
      ++conn->in_flight;
      conn->pipeline_hwm = std::max(conn->pipeline_hwm, conn->in_flight);
      if (static_cast<int64_t>(conn->pipeline_hwm) >
          metrics_->pipeline_depth_hwm->Value()) {
        metrics_->pipeline_depth_hwm->Set(
            static_cast<int64_t>(conn->pipeline_hwm));
      }
      admitted = true;
    }
  }
  if (!admitted) {
    metrics_->rejected_pipeline->Add();
    SendError(conn, frame.request_id, frame.trace_id,
              WireErrorCode::kOverloaded, "pipeline limit reached");
    return;
  }
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    ++in_flight_total_;
  }

  const uint64_t request_id = frame.request_id;
  const uint64_t trace_id = frame.trace_id;
  const auto received = trace::Clock::now();
  const Timer request_timer;
  Status s = service_->Submit(
      conn->session, std::move(op),
      [this, conn, request_id, trace_id, received,
       request_timer](OpResult result) {
        // Worker-thread completion: encode, append to the connection's
        // outbound buffer, wake the loop to flush.  Everything this
        // callback touches (conn state, metrics, flush queue, eventfd)
        // happens *before* the drain decrement below — that ordering is
        // the graceful-shutdown contract.
        std::string payload;
        EncodeOpResult(result, &payload);
        bool queue_flush = false;
        bool release_session = false;
        {
          std::lock_guard<std::mutex> lock(conn->mu);
          if (!conn->closed) {
            EncodeFrame(FrameType::kResponse, request_id, trace_id, payload,
                        &conn->out);
            queue_flush = true;
          }
          --conn->in_flight;
          if (conn->closed && conn->in_flight == 0 &&
              !conn->session_released) {
            conn->session_released = true;
            release_session = true;
          }
        }
        metrics_->responses->Add();
        metrics_->frames_out->Add();
        metrics_->request_micros->Record(request_timer.ElapsedMicros());
        trace::RecordSpan("net_request", received, trace::Clock::now());
        if (release_session) service_->CloseSession(conn->session);
        if (queue_flush) {
          {
            std::lock_guard<std::mutex> lock(flush_mu_);
            flush_queue_.push_back(conn);
          }
          Wake();
        }
        // Last touch: let Stop() proceed.  Notify under the mutex so the
        // waiter cannot destroy the server between decrement and notify.
        {
          std::lock_guard<std::mutex> lock(drain_mu_);
          --in_flight_total_;
          drain_cv_.notify_all();
        }
      },
      trace_id);

  if (!s.ok()) {
    // Submission failed — undo the admission accounting and shed with the
    // matching typed error.
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      --conn->in_flight;
    }
    {
      std::lock_guard<std::mutex> lock(drain_mu_);
      --in_flight_total_;
      drain_cv_.notify_all();
    }
    if (s.code() == StatusCode::kResourceExhausted) {
      metrics_->rejected_queue->Add();
      SendError(conn, request_id, trace_id, WireErrorCode::kOverloaded,
                s.message());
    } else {
      metrics_->rejected_shutdown->Add();
      SendError(conn, request_id, trace_id, WireErrorCode::kShuttingDown,
                s.message());
    }
  }
}

void Server::SendError(const std::shared_ptr<Connection>& conn,
                       uint64_t request_id, uint64_t trace_id,
                       WireErrorCode code, std::string_view message) {
  std::string payload;
  EncodeError(code, message, &payload);
  QueueFrame(conn, FrameType::kError, request_id, trace_id, payload);
}

void Server::QueueFrame(const std::shared_ptr<Connection>& conn,
                        FrameType type, uint64_t request_id, uint64_t trace_id,
                        std::string_view payload) {
  std::lock_guard<std::mutex> lock(conn->mu);
  if (conn->closed) return;
  EncodeFrame(type, request_id, trace_id, payload, &conn->out);
  metrics_->frames_out->Add();
}

bool Server::Flush(const std::shared_ptr<Connection>& conn) {
  trace::Span span("net_flush");
  bool want_write = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed) return true;
    while (conn->out_pos < conn->out.size()) {
      const ssize_t n = ::write(conn->fd, conn->out.data() + conn->out_pos,
                                conn->out.size() - conn->out_pos);
      if (n > 0) {
        conn->out_pos += static_cast<size_t>(n);
        metrics_->bytes_out->Add(static_cast<uint64_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        // Partial write: keep position, wait for EPOLLOUT.
        want_write = true;
        break;
      }
      if (n < 0 && errno == EINTR) continue;
      return false;  // peer gone / hard error
    }
    if (conn->out_pos == conn->out.size()) {
      conn->out.clear();
      conn->out_pos = 0;
      if (conn->close_after_flush) return false;  // error frame delivered
    }
  }
  // Interest is loop-thread-only state: Flush runs exclusively on the loop
  // (worker callbacks only append bytes and enqueue the conn for flushing).
  const uint32_t desired = EPOLLIN | (want_write ? EPOLLOUT : 0u);
  if (desired != conn->interest) {
    conn->interest = desired;
    UpdateInterest(conn.get());
  }
  return true;
}

// Takes the shared_ptr by value: callers may hand us the reference stored
// in conns_, which the erase below would otherwise invalidate mid-call.
void Server::CloseConnection(std::shared_ptr<Connection> conn) {
  bool release_session = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed) return;
    conn->closed = true;
    if (conn->in_flight == 0 && !conn->session_released) {
      conn->session_released = true;
      release_session = true;
    }
    // else: the last in-flight callback releases the session.
  }
  if (release_session) service_->CloseSession(conn->session);
  if (conn->registered) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
    conn->registered = false;
  }
  ::shutdown(conn->fd, SHUT_RDWR);
  conns_.erase(conn->fd);  // destructor closes the fd when callbacks drop it
  metrics_->connections->Set(static_cast<int64_t>(conns_.size()));
}

void Server::SweepIdle() {
  const auto now = SteadyClock::now();
  std::vector<std::shared_ptr<Connection>> idle;
  for (auto& [fd, conn] : conns_) {
    bool busy;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      busy = conn->in_flight > 0 || conn->out_pos < conn->out.size();
    }
    if (!busy && now - conn->last_activity > options_.idle_timeout) {
      idle.push_back(conn);
    }
  }
  for (const auto& conn : idle) {
    metrics_->idle_closed->Add();
    CloseConnection(conn);
  }
}

}  // namespace net
}  // namespace mmdb
