// Network front end: a nonblocking epoll TCP server that speaks the
// src/net/wire_format.h framed protocol and feeds decoded operations into
// the existing QueryService work queue.
//
//   clients --TCP--> epoll loop (1 thread) --Submit--> QueryService workers
//                        ^                                     |
//                        |   eventfd wake + flush queue        |
//                        +---- completion callbacks <----------+
//
// One event-loop thread owns every socket: it accepts, reads, decodes
// frames, and submits requests; QueryService worker callbacks encode the
// response, append it to the connection's outbound buffer, and wake the
// loop through an eventfd to flush.  Partial writes keep their position in
// the buffer and arm EPOLLOUT until drained.
//
// Per-connection state machine:
//
//   kOpen --(protocol error)--> kClosing (flush error frame) --> closed
//     |--(idle timeout / EOF / write error)-----------------------> closed
//     |--(server Stop: drain in-flight, flush)-------------------> closed
//
// Admission control (never silent drops, never unbounded buffering):
//   * global connection cap: excess accepts get one kTooManyConnections
//     error frame and an immediate close;
//   * per-connection pipeline bound: a request arriving with
//     max_pipeline ops already in flight is shed with a typed kOverloaded
//     error frame carrying its request id (the pipeline can never exceed
//     the bound, so the outbound buffer stays proportional to it);
//   * service queue full: Submit's kResourceExhausted becomes kOverloaded;
//   * idle connections are closed after idle_timeout.
//
// Graceful shutdown (mirrors the PR 5 durability-thread ordering fix):
// Stop() ends intake, then *waits for every in-flight Submit callback to
// finish touching connection state* before the loop closes sockets and
// Stop returns — so destroying the QueryService/Database right after
// Stop() can never race a completion callback (regression-tested under
// TSan/ASan by NetServerTest.StopUnderLoad).
//
// Observability: mmdb_net_* counters/gauges/histograms registered in the
// database's MetricsRegistry (so QueryService::MetricsText() scrapes them)
// and trace spans (net_read / net_decode / net_request / net_flush) in the
// PR 2 trace layer — chrome://tracing shows the socket-to-commit path.
//
// Trace propagation: the v2 wire header carries a client-chosen 64-bit
// trace id; the server hands it to QueryService::Submit (so every span,
// flight record and slow-log line downstream carries it) and echoes it in
// the response header.  Wire-version-1 frames are answered with a typed
// kUnsupportedVersion error instead of a CRC failure.
//
// Scrape endpoints: kAdminRequest frames (METRICS / STATUS / SLOWLOG /
// FLIGHT) are answered inline on the loop thread; additionally a minimal
// plaintext-HTTP GET shim rides the same port — the first bytes of each
// connection pick the protocol ("MMDB" magic = binary, "GET "/"HEAD" =
// HTTP) — so `curl http://host:port/metrics` and a stock Prometheus
// scraper work with no second listener.  HTTP responses always close.
//
// The net loop also registers a LOOP heartbeat with the service's
// watchdog (when enabled): a wedged epoll loop is detected and reported
// like a stalled worker.

#ifndef MMDB_NET_SERVER_H_
#define MMDB_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/net/wire_format.h"
#include "src/server/watchdog.h"
#include "src/util/status.h"

namespace mmdb {

class QueryService;
class Counter;
class Gauge;
class LatencyHistogram;
class Session;

namespace net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; Server::port() reports the actual one.
  uint16_t port = 0;
  int backlog = 128;
  /// Global cap on live connections; excess accepts are shed with a typed
  /// kTooManyConnections frame.
  size_t max_connections = 1024;
  /// Per-connection in-flight pipeline bound; requests beyond it are shed
  /// with kOverloaded.
  size_t max_pipeline = 64;
  /// Close connections with no traffic for this long (0 = never).
  std::chrono::milliseconds idle_timeout{0};
  /// Edge-triggered epoll (EPOLLET).  The loop always reads/writes until
  /// EAGAIN, so level vs. edge is behaviorally identical — both are tested.
  bool edge_triggered = false;
  /// EPOLLONESHOT on connection sockets: every delivered event disarms the
  /// fd until the loop explicitly rearms it after handling.  With a single
  /// loop thread this buys nothing, but the rearm discipline is what a
  /// multi-loop server needs, and the option proves the code path is safe.
  bool oneshot = false;
};

class Server {
 public:
  /// The service (and its database) must outlive the server; call Stop()
  /// (or destroy the server) before shutting the service down.
  explicit Server(QueryService* service, ServerOptions options = {});
  ~Server();  // implies Stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the event loop.  Fails if the address is
  /// unusable or the server was already started.
  Status Start();

  /// Stops intake, drains every in-flight operation's completion callback,
  /// flushes what can be flushed, closes all sockets, and joins the loop
  /// thread.  After Stop returns no server code runs on any thread.
  /// Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Port actually bound (differs from options.port when that was 0).
  uint16_t port() const { return port_; }

  const ServerOptions& options() const { return options_; }

  /// Installs the log-shipping endpoint: kReplRequest payloads are passed
  /// to `handler` and its return value is sent back as kReplResponse.
  /// Runs inline on the loop thread (file reads of already-sealed
  /// segments — no locks shared with the query path), so shipping works
  /// even when the worker queue is wedged.  Set before Start().
  void set_repl_handler(std::function<std::string(const std::string&)> h) {
    repl_handler_ = std::move(h);
  }

 private:
  struct Connection;
  struct Metrics;

  void Loop();
  void HandleListen();
  void HandleEvent(uint32_t events, std::shared_ptr<Connection> conn);
  /// Reads until EAGAIN/EOF, decodes and dispatches frames.  Returns false
  /// if the connection must close.
  bool ReadAndDispatch(const std::shared_ptr<Connection>& conn);
  /// Routes freshly read bytes by the connection's sniffed protocol.
  void IngestBytes(Connection* conn, const char* data, size_t n);
  /// Serves one plaintext-HTTP GET (the curl/Prometheus shim).  Returns
  /// false if the connection must close immediately.
  bool HandleHttp(const std::shared_ptr<Connection>& conn);
  /// The scrape text behind both the admin frames and the HTTP shim.
  std::string AdminText(AdminKind kind);
  void DispatchFrame(const std::shared_ptr<Connection>& conn, Frame frame);
  /// Queues a typed error frame on the connection.
  void SendError(const std::shared_ptr<Connection>& conn, uint64_t request_id,
                 uint64_t trace_id, WireErrorCode code,
                 std::string_view message);
  void QueueFrame(const std::shared_ptr<Connection>& conn, FrameType type,
                  uint64_t request_id, uint64_t trace_id,
                  std::string_view payload);
  /// Flushes the outbound buffer; arms/disarms EPOLLOUT.  Returns false if
  /// the connection must close (write error, or close-after-flush drained).
  bool Flush(const std::shared_ptr<Connection>& conn);
  void UpdateInterest(Connection* conn);
  void CloseConnection(std::shared_ptr<Connection> conn);
  void SweepIdle();
  void Wake();
  void DrainWakePipe();
  size_t InFlightTotal();

  QueryService* service_;
  ServerOptions options_;
  std::function<std::string(const std::string&)> repl_handler_;
  std::unique_ptr<Metrics> metrics_;
  /// Event-loop heartbeat with the service's watchdog (null when the
  /// watchdog is disabled).  Pulsed at each loop-top, retired at exit.
  Watchdog::Beat* loop_beat_ = nullptr;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd: completion callbacks wake the loop
  uint16_t port_ = 0;
  std::thread loop_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  /// Loop-thread-only connection table.
  std::unordered_map<int, std::shared_ptr<Connection>> conns_;
  size_t conns_hwm_ = 0;

  /// Connections with freshly queued responses, posted by worker callbacks.
  std::mutex flush_mu_;
  std::vector<std::shared_ptr<Connection>> flush_queue_;

  /// Global in-flight submit count; Stop() waits for it to reach zero
  /// while callbacks decrement it as their very last server-state touch
  /// (notify under the mutex, so a waiter can never outrun the callback).
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  size_t in_flight_total_ = 0;
};

}  // namespace net
}  // namespace mmdb

#endif  // MMDB_NET_SERVER_H_
