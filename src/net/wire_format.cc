#include "src/net/wire_format.h"

#include <cstring>

#include "src/util/crc32c.h"

namespace mmdb {
namespace net {
namespace {

// ---- Little-endian primitives ----------------------------------------------

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU16(std::string* out, uint16_t v) {
  PutU8(out, static_cast<uint8_t>(v));
  PutU8(out, static_cast<uint8_t>(v >> 8));
}

void PutU32(std::string* out, uint32_t v) {
  PutU16(out, static_cast<uint16_t>(v));
  PutU16(out, static_cast<uint16_t>(v >> 16));
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

uint32_t ReadU32At(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  // The codebase targets little-endian Linux; memcpy keeps it alias-safe.
  return v;
}

uint64_t ReadU64At(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// Bounds-checked sequential reader over a payload.  Every Get* returns
/// false once the payload is exhausted; decoders propagate that as corrupt.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

  bool GetU8(uint8_t* v) {
    if (remaining() < 1) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }
  bool GetU16(uint16_t* v) {
    uint8_t a, b;
    if (!GetU8(&a) || !GetU8(&b)) return false;
    *v = static_cast<uint16_t>(a | (uint16_t{b} << 8));
    return true;
  }
  bool GetU32(uint32_t* v) {
    uint16_t a, b;
    if (!GetU16(&a) || !GetU16(&b)) return false;
    *v = a | (uint32_t{b} << 16);
    return true;
  }
  bool GetU64(uint64_t* v) {
    uint32_t a, b;
    if (!GetU32(&a) || !GetU32(&b)) return false;
    *v = a | (uint64_t{b} << 32);
    return true;
  }
  bool GetString(std::string* v) {
    uint32_t n;
    if (!GetU32(&n) || remaining() < n) return false;
    v->assign(data_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  /// Vector-count guard: a decoded count is plausible only if at least
  /// `min_elem_size` bytes per element remain — garbage counts fail here
  /// instead of driving a huge reserve().
  bool GetCount(uint32_t* n, size_t min_elem_size) {
    if (!GetU32(n)) return false;
    return remaining() >= static_cast<size_t>(*n) * min_elem_size;
  }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

// ---- Value / clause codecs --------------------------------------------------

bool PutValue(std::string* out, const Value& v) {
  switch (v.type()) {
    case Type::kInt32:
      PutU8(out, 0);
      PutU32(out, static_cast<uint32_t>(v.AsInt32()));
      return true;
    case Type::kInt64:
      PutU8(out, 1);
      PutU64(out, static_cast<uint64_t>(v.AsInt64()));
      return true;
    case Type::kDouble: {
      PutU8(out, 2);
      uint64_t bits;
      double d = v.AsDouble();
      std::memcpy(&bits, &d, sizeof(bits));
      PutU64(out, bits);
      return true;
    }
    case Type::kString:
      PutU8(out, 3);
      PutString(out, v.AsString());
      return true;
    case Type::kPointer:
      // Raw tuple addresses are meaningless in another process.
      return false;
  }
  return false;
}

bool GetValue(ByteReader* r, Value* out) {
  uint8_t tag;
  if (!r->GetU8(&tag)) return false;
  switch (tag) {
    case 0: {
      uint32_t v;
      if (!r->GetU32(&v)) return false;
      *out = Value(static_cast<int32_t>(v));
      return true;
    }
    case 1: {
      uint64_t v;
      if (!r->GetU64(&v)) return false;
      *out = Value(static_cast<int64_t>(v));
      return true;
    }
    case 2: {
      uint64_t bits;
      if (!r->GetU64(&bits)) return false;
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      *out = Value(d);
      return true;
    }
    case 3: {
      std::string s;
      if (!r->GetString(&s)) return false;
      *out = Value(std::move(s));
      return true;
    }
    default:
      return false;  // unknown tag (kPointer is never encoded)
  }
}

constexpr uint8_t kMaxCompareOp = static_cast<uint8_t>(CompareOp::kGe);

void PutWhere(std::string* out, const WhereClause& w, bool* ok) {
  PutString(out, w.field);
  PutU8(out, static_cast<uint8_t>(w.op));
  if (!PutValue(out, w.value)) *ok = false;
}

bool GetWhere(ByteReader* r, WhereClause* out) {
  uint8_t op;
  if (!r->GetString(&out->field) || !r->GetU8(&op) || op > kMaxCompareOp) {
    return false;
  }
  out->op = static_cast<CompareOp>(op);
  return GetValue(r, &out->value);
}

void PutWheres(std::string* out, const std::vector<WhereClause>& ws,
               bool* ok) {
  PutU32(out, static_cast<uint32_t>(ws.size()));
  for (const WhereClause& w : ws) PutWhere(out, w, ok);
}

bool GetWheres(ByteReader* r, std::vector<WhereClause>* out) {
  uint32_t n;
  // field len(4) + op(1) + value tag(1) + 1 byte payload minimum
  if (!r->GetCount(&n, 6)) return false;
  out->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    WhereClause w;
    if (!GetWhere(r, &w)) return false;
    out->push_back(std::move(w));
  }
  return true;
}

}  // namespace

const char* FrameTypeName(FrameType t) {
  switch (t) {
    case FrameType::kRequest: return "request";
    case FrameType::kResponse: return "response";
    case FrameType::kError: return "error";
    case FrameType::kPing: return "ping";
    case FrameType::kPong: return "pong";
    case FrameType::kAdminRequest: return "admin_request";
    case FrameType::kAdminResponse: return "admin_response";
    case FrameType::kReplRequest: return "repl_request";
    case FrameType::kReplResponse: return "repl_response";
  }
  return "?";
}

const char* WireErrorCodeName(WireErrorCode c) {
  switch (c) {
    case WireErrorCode::kProtocolError: return "protocol_error";
    case WireErrorCode::kOverloaded: return "overloaded";
    case WireErrorCode::kTooManyConnections: return "too_many_connections";
    case WireErrorCode::kShuttingDown: return "shutting_down";
    case WireErrorCode::kUnsupportedVersion: return "unsupported_version";
  }
  return "?";
}

const char* AdminKindName(AdminKind k) {
  switch (k) {
    case AdminKind::kMetrics: return "metrics";
    case AdminKind::kStatus: return "status";
    case AdminKind::kSlowLog: return "slowlog";
    case AdminKind::kFlight: return "flight";
  }
  return "?";
}

// ---- Frames -----------------------------------------------------------------

void EncodeFrame(FrameType type, uint64_t request_id, uint64_t trace_id,
                 std::string_view payload, std::string* out) {
  const size_t base = out->size();
  out->reserve(base + kHeaderSize + payload.size());
  PutU32(out, kMagic);
  PutU8(out, kWireVersion);
  PutU8(out, static_cast<uint8_t>(type));
  PutU16(out, 0);  // reserved
  PutU64(out, request_id);
  PutU64(out, trace_id);
  PutU32(out, static_cast<uint32_t>(payload.size()));
  // CRC over header bytes [4, 28) + payload, then masked so a stored CRC
  // of zeros never verifies a zeroed frame.
  uint32_t crc = crc32c::Extend(0, out->data() + base + 4, 24);
  crc = crc32c::Extend(crc, payload.data(), payload.size());
  PutU32(out, crc32c::Mask(crc));
  out->append(payload.data(), payload.size());
}

void EncodeFrameV1(FrameType type, uint64_t request_id,
                   std::string_view payload, std::string* out) {
  const size_t base = out->size();
  out->reserve(base + kHeaderSizeV1 + payload.size());
  PutU32(out, kMagic);
  PutU8(out, kWireVersion1);
  PutU8(out, static_cast<uint8_t>(type));
  PutU16(out, 0);  // reserved
  PutU64(out, request_id);
  PutU32(out, static_cast<uint32_t>(payload.size()));
  uint32_t crc = crc32c::Extend(0, out->data() + base + 4, 16);
  crc = crc32c::Extend(crc, payload.data(), payload.size());
  PutU32(out, crc32c::Mask(crc));
  out->append(payload.data(), payload.size());
}

void FrameBuffer::Append(const void* data, size_t n) {
  // Compact once the consumed prefix dominates, so long-lived pipelined
  // connections don't grow the buffer without bound.
  if (pos_ > 4096 && pos_ > data_.size() / 2) {
    data_.erase(0, pos_);
    pos_ = 0;
  }
  data_.append(static_cast<const char*>(data), n);
}

FrameBuffer::Result FrameBuffer::Next(Frame* out, std::string* error) {
  const size_t avail = data_.size() - pos_;
  if (avail < 5) return Result::kNeedMore;  // magic + version
  const char* h = data_.data() + pos_;
  if (ReadU32At(h) != kMagic) {
    if (error != nullptr) *error = "bad magic";
    return Result::kCorrupt;
  }
  const uint8_t version = static_cast<uint8_t>(h[4]);
  if (version == kWireVersion1) {
    // A retired-version peer.  Validate against the *v1* layout including
    // its CRC: only a genuinely well-formed v1 frame earns the typed
    // kUnsupportedVersion outcome (and surrenders its request id for the
    // error reply) — line noise that happens to read "version 1" still
    // fails the v1 checksum and stays kCorrupt.
    if (avail < kHeaderSizeV1) return Result::kNeedMore;
    const uint32_t payload_len = ReadU32At(h + 16);
    if (payload_len > kMaxPayload) {
      if (error != nullptr) *error = "oversized payload";
      return Result::kCorrupt;
    }
    if (avail < kHeaderSizeV1 + payload_len) return Result::kNeedMore;
    uint32_t crc = crc32c::Extend(0, h + 4, 16);
    crc = crc32c::Extend(crc, h + kHeaderSizeV1, payload_len);
    if (crc32c::Mask(crc) != ReadU32At(h + 20)) {
      if (error != nullptr) *error = "frame checksum mismatch";
      return Result::kCorrupt;
    }
    out->type = FrameType::kRequest;  // v1 payloads are not decoded further
    out->request_id = ReadU64At(h + 8);
    out->trace_id = 0;
    out->payload.clear();
    pos_ += kHeaderSizeV1 + payload_len;
    if (error != nullptr) {
      *error = "wire version 1 no longer supported";
    }
    return Result::kUnsupportedVersion;
  }
  if (version != kWireVersion) {
    if (error != nullptr) {
      *error = "unsupported version " + std::to_string(version);
    }
    return Result::kCorrupt;
  }
  if (avail < kHeaderSize) return Result::kNeedMore;
  const uint8_t type = static_cast<uint8_t>(h[5]);
  if (type < static_cast<uint8_t>(FrameType::kRequest) ||
      type > static_cast<uint8_t>(FrameType::kReplResponse)) {
    if (error != nullptr) *error = "unknown frame type";
    return Result::kCorrupt;
  }
  const uint32_t payload_len = ReadU32At(h + 24);
  if (payload_len > kMaxPayload) {
    if (error != nullptr) *error = "oversized payload";
    return Result::kCorrupt;
  }
  if (avail < kHeaderSize + payload_len) return Result::kNeedMore;
  uint32_t crc = crc32c::Extend(0, h + 4, 24);
  crc = crc32c::Extend(crc, h + kHeaderSize, payload_len);
  if (crc32c::Mask(crc) != ReadU32At(h + 28)) {
    if (error != nullptr) *error = "frame checksum mismatch";
    return Result::kCorrupt;
  }
  out->type = static_cast<FrameType>(type);
  out->request_id = ReadU64At(h + 8);
  out->trace_id = ReadU64At(h + 16);
  out->payload.assign(h + kHeaderSize, payload_len);
  pos_ += kHeaderSize + payload_len;
  return Result::kFrame;
}

// ---- Operation codec --------------------------------------------------------

bool EncodeOperation(const Operation& op, std::string* out) {
  bool ok = true;
  PutU8(out, static_cast<uint8_t>(op.index()));
  switch (KindOf(op)) {
    case OpKind::kSelect: {
      const auto& s = std::get<SelectSpec>(op);
      PutString(out, s.table);
      PutWheres(out, s.where, &ok);
      PutU8(out, s.join.has_value() ? 1 : 0);
      if (s.join.has_value()) {
        PutString(out, s.join->table);
        PutString(out, s.join->left_field);
        PutString(out, s.join->right_field);
        PutWheres(out, s.join->where, &ok);
      }
      PutU32(out, static_cast<uint32_t>(s.columns.size()));
      for (const std::string& c : s.columns) PutString(out, c);
      PutU8(out, static_cast<uint8_t>((s.distinct ? 1 : 0) |
                                      (s.ordered ? 2 : 0) |
                                      (s.analyze ? 4 : 0)));
      break;
    }
    case OpKind::kInsert: {
      const auto& s = std::get<InsertSpec>(op);
      PutString(out, s.table);
      PutU32(out, static_cast<uint32_t>(s.values.size()));
      for (const Value& v : s.values) {
        if (!PutValue(out, v)) ok = false;
      }
      break;
    }
    case OpKind::kUpdate: {
      const auto& s = std::get<UpdateSpec>(op);
      PutString(out, s.table);
      PutWhere(out, s.match, &ok);
      PutString(out, s.set_field);
      if (!PutValue(out, s.set_value)) ok = false;
      break;
    }
    case OpKind::kIncrement: {
      const auto& s = std::get<IncrementSpec>(op);
      PutString(out, s.table);
      PutWhere(out, s.match, &ok);
      PutString(out, s.field);
      PutU64(out, static_cast<uint64_t>(s.delta));
      break;
    }
    case OpKind::kDelete: {
      const auto& s = std::get<DeleteSpec>(op);
      PutString(out, s.table);
      PutWhere(out, s.match, &ok);
      break;
    }
  }
  return ok;
}

bool DecodeOperation(std::string_view payload, Operation* out) {
  ByteReader r(payload);
  uint8_t kind;
  if (!r.GetU8(&kind)) return false;
  switch (kind) {
    case static_cast<uint8_t>(OpKind::kSelect): {
      SelectSpec s;
      uint8_t has_join;
      if (!r.GetString(&s.table) || !GetWheres(&r, &s.where) ||
          !r.GetU8(&has_join) || has_join > 1) {
        return false;
      }
      if (has_join == 1) {
        JoinClause j;
        if (!r.GetString(&j.table) || !r.GetString(&j.left_field) ||
            !r.GetString(&j.right_field) || !GetWheres(&r, &j.where)) {
          return false;
        }
        s.join = std::move(j);
      }
      uint32_t ncols;
      if (!r.GetCount(&ncols, 4)) return false;
      s.columns.reserve(ncols);
      for (uint32_t i = 0; i < ncols; ++i) {
        std::string c;
        if (!r.GetString(&c)) return false;
        s.columns.push_back(std::move(c));
      }
      uint8_t flags;
      if (!r.GetU8(&flags) || flags > 7) return false;
      s.distinct = (flags & 1) != 0;
      s.ordered = (flags & 2) != 0;
      s.analyze = (flags & 4) != 0;
      if (!r.done()) return false;
      *out = std::move(s);
      return true;
    }
    case static_cast<uint8_t>(OpKind::kInsert): {
      InsertSpec s;
      uint32_t n;
      if (!r.GetString(&s.table) || !r.GetCount(&n, 2)) return false;
      s.values.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        Value v;
        if (!GetValue(&r, &v)) return false;
        s.values.push_back(std::move(v));
      }
      if (!r.done()) return false;
      *out = std::move(s);
      return true;
    }
    case static_cast<uint8_t>(OpKind::kUpdate): {
      UpdateSpec s;
      if (!r.GetString(&s.table) || !GetWhere(&r, &s.match) ||
          !r.GetString(&s.set_field) || !GetValue(&r, &s.set_value) ||
          !r.done()) {
        return false;
      }
      *out = std::move(s);
      return true;
    }
    case static_cast<uint8_t>(OpKind::kIncrement): {
      IncrementSpec s;
      uint64_t delta;
      if (!r.GetString(&s.table) || !GetWhere(&r, &s.match) ||
          !r.GetString(&s.field) || !r.GetU64(&delta) || !r.done()) {
        return false;
      }
      s.delta = static_cast<int64_t>(delta);
      *out = std::move(s);
      return true;
    }
    case static_cast<uint8_t>(OpKind::kDelete): {
      DeleteSpec s;
      if (!r.GetString(&s.table) || !GetWhere(&r, &s.match) || !r.done()) {
        return false;
      }
      *out = std::move(s);
      return true;
    }
    default:
      return false;
  }
}

// ---- OpResult codec ---------------------------------------------------------

constexpr uint8_t kMaxStatusCode = static_cast<uint8_t>(StatusCode::kInternal);

bool EncodeOpResult(const OpResult& result, std::string* out) {
  bool ok = true;
  PutU8(out, static_cast<uint8_t>(result.status.code()));
  PutString(out, result.status.message());
  PutU64(out, result.rows_affected);
  PutU32(out, static_cast<uint32_t>(result.attempts));
  PutU32(out, static_cast<uint32_t>(result.columns.size()));
  for (const std::string& c : result.columns) PutString(out, c);
  PutU32(out, static_cast<uint32_t>(result.rows.size()));
  for (const auto& row : result.rows) {
    PutU32(out, static_cast<uint32_t>(row.size()));
    for (const Value& v : row) {
      if (!PutValue(out, v)) {
        // kPointer columns (materialized foreign keys) have no wire form;
        // ship them as their textual rendering rather than failing the row.
        PutU8(out, 3);
        PutString(out, v.ToString());
      }
    }
  }
  PutString(out, result.plan);
  PutString(out, result.analyze);
  // Server-side micros breakdown + cache outcome (v2 additions): the
  // client-vs-server latency decomposition rides on every response.
  PutU32(out, result.queue_us);
  PutU32(out, result.lock_us);
  PutU32(out, result.exec_us);
  PutU32(out, result.commit_us);
  PutU8(out, static_cast<uint8_t>(result.cache_outcome));
  return ok;
}

bool DecodeOpResult(std::string_view payload, OpResult* out) {
  ByteReader r(payload);
  uint8_t code;
  std::string message;
  uint64_t rows_affected;
  uint32_t attempts, ncols, nrows;
  if (!r.GetU8(&code) || code > kMaxStatusCode || !r.GetString(&message) ||
      !r.GetU64(&rows_affected) || !r.GetU32(&attempts)) {
    return false;
  }
  out->status = Status(static_cast<StatusCode>(code), std::move(message));
  out->rows_affected = rows_affected;
  out->attempts = static_cast<int>(attempts);
  if (!r.GetCount(&ncols, 4)) return false;
  out->columns.clear();
  out->columns.reserve(ncols);
  for (uint32_t i = 0; i < ncols; ++i) {
    std::string c;
    if (!r.GetString(&c)) return false;
    out->columns.push_back(std::move(c));
  }
  if (!r.GetCount(&nrows, 4)) return false;
  out->rows.clear();
  out->rows.reserve(nrows);
  for (uint32_t i = 0; i < nrows; ++i) {
    uint32_t width;
    if (!r.GetCount(&width, 2)) return false;
    std::vector<Value> row;
    row.reserve(width);
    for (uint32_t c = 0; c < width; ++c) {
      Value v;
      if (!GetValue(&r, &v)) return false;
      row.push_back(std::move(v));
    }
    out->rows.push_back(std::move(row));
  }
  if (!r.GetString(&out->plan) || !r.GetString(&out->analyze)) {
    return false;
  }
  uint8_t cache;
  if (!r.GetU32(&out->queue_us) || !r.GetU32(&out->lock_us) ||
      !r.GetU32(&out->exec_us) || !r.GetU32(&out->commit_us) ||
      !r.GetU8(&cache) ||
      cache > static_cast<uint8_t>(CacheOutcome::kMiss) || !r.done()) {
    return false;
  }
  out->cache_outcome = static_cast<CacheOutcome>(cache);
  return true;
}

// ---- Error codec ------------------------------------------------------------

void EncodeError(WireErrorCode code, std::string_view message,
                 std::string* out) {
  PutU16(out, static_cast<uint16_t>(code));
  PutString(out, message);
}

bool DecodeError(std::string_view payload, WireErrorCode* code,
                 std::string* message) {
  ByteReader r(payload);
  uint16_t c;
  if (!r.GetU16(&c) || c < 1 ||
      c > static_cast<uint16_t>(WireErrorCode::kUnsupportedVersion) ||
      !r.GetString(message) || !r.done()) {
    return false;
  }
  *code = static_cast<WireErrorCode>(c);
  return true;
}

}  // namespace net
}  // namespace mmdb
