// Binary wire protocol for the network front end.  Everything that crosses
// a socket is a *frame*:
//
//   offset  size  field
//        0     4  magic      "MMDB" (0x4d 0x4d 0x44 0x42 on the wire)
//        4     1  version    kWireVersion
//        5     1  type       FrameType
//        6     2  reserved   zero on send, ignored on receive
//        8     8  request id little-endian; echoes the request in responses
//       16     4  payload length, little-endian (<= kMaxPayload)
//       20     4  masked CRC32C over bytes [4, 20) + payload (LevelDB-style
//                 masking via crc32c::Mask, reusing src/util/crc32c)
//       24     n  payload
//
// The CRC covers the header tail as well as the payload, so a flipped bit
// anywhere except the magic is detected by the checksum and a flipped magic
// byte is detected by the magic itself — the every-byte-flip test in
// net_wire_test relies on this.
//
// Payloads:
//   kRequest    an encoded Operation (op-kind tag + spec fields)
//   kResponse   an encoded OpResult (status, columns, rows, plan, ...)
//   kError      u16 WireErrorCode + length-prefixed message.  Typed shed
//               load: kOverloaded / kTooManyConnections are load shedding,
//               kProtocolError precedes a server-initiated close.
//   kPing/kPong empty (liveness probe; the server echoes the request id)
//
// Decoding is defensive by construction: every read is bounds-checked
// through ByteReader, vector counts are validated against the bytes that
// remain (a garbage count cannot over-allocate), and any violation turns
// into kCorrupt — never a crash or over-read.

#ifndef MMDB_NET_WIRE_FORMAT_H_
#define MMDB_NET_WIRE_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/server/operation.h"

namespace mmdb {
namespace net {

inline constexpr uint32_t kMagic = 0x4244'4d4du;  // "MMDB" little-endian
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kHeaderSize = 24;
/// Upper bound on a frame payload; a length field beyond this is a protocol
/// error, so a corrupt length can never make a peer buffer gigabytes.
inline constexpr uint32_t kMaxPayload = 16u << 20;

enum class FrameType : uint8_t {
  kRequest = 1,
  kResponse = 2,
  kError = 3,
  kPing = 4,
  kPong = 5,
};

/// Typed error frames.  The first three are the admission-control contract:
/// a shed request/connection always learns *why* it was shed.
enum class WireErrorCode : uint16_t {
  kProtocolError = 1,       ///< malformed frame; the sender closes after this
  kOverloaded = 2,          ///< pipeline bound or service queue full
  kTooManyConnections = 3,  ///< global connection cap
  kShuttingDown = 4,        ///< server stopping; request was not executed
};

const char* FrameTypeName(FrameType t);
const char* WireErrorCodeName(WireErrorCode c);

/// One decoded frame.  `payload` is an owned copy (frames outlive the
/// receive buffer they were carved from).
struct Frame {
  FrameType type = FrameType::kRequest;
  uint64_t request_id = 0;
  std::string payload;
};

/// Appends a complete frame (header + payload) to `*out`.
void EncodeFrame(FrameType type, uint64_t request_id, std::string_view payload,
                 std::string* out);

/// Incremental frame decoder over a connection's receive stream.  Append
/// raw bytes as they arrive; Next() carves complete frames off the front.
class FrameBuffer {
 public:
  enum class Result {
    kFrame,     ///< *out filled, bytes consumed
    kNeedMore,  ///< prefix of a valid frame; append more bytes
    kCorrupt,   ///< bad magic/version/length/CRC — the stream is unusable
  };

  void Append(const void* data, size_t n);
  Result Next(Frame* out, std::string* error);

  size_t buffered() const { return data_.size() - pos_; }

 private:
  std::string data_;
  size_t pos_ = 0;  ///< consumed prefix, compacted opportunistically
};

// ---- Payload codecs ---------------------------------------------------------

/// Encodes an Operation as a kRequest payload.  Returns false for values a
/// wire client cannot legally carry (Type::kPointer — tuple addresses never
/// leave the process).
bool EncodeOperation(const Operation& op, std::string* out);
bool DecodeOperation(std::string_view payload, Operation* out);

/// Encodes the service's OpResult as a kResponse payload (status code +
/// message, columns, materialized rows, plan/analyze text, rows_affected,
/// attempts).
bool EncodeOpResult(const OpResult& result, std::string* out);
bool DecodeOpResult(std::string_view payload, OpResult* out);

/// kError payload.
void EncodeError(WireErrorCode code, std::string_view message,
                 std::string* out);
bool DecodeError(std::string_view payload, WireErrorCode* code,
                 std::string* message);

}  // namespace net
}  // namespace mmdb

#endif  // MMDB_NET_WIRE_FORMAT_H_
