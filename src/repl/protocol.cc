#include "src/repl/protocol.h"

#include <cstring>

namespace mmdb {
namespace repl {
namespace {

template <typename T>
void Put(std::string* out, T v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool Get(const std::string& in, size_t* pos, T* v) {
  if (*pos + sizeof(T) > in.size()) return false;
  std::memcpy(v, in.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

// Response envelope: u8 kind echo | u8 status | u32 msg_len | msg | body.
void PutEnvelope(std::string* out, ReqKind kind, RespStatus status,
                 const std::string& message) {
  Put<uint8_t>(out, static_cast<uint8_t>(kind));
  Put<uint8_t>(out, static_cast<uint8_t>(status));
  Put<uint32_t>(out, static_cast<uint32_t>(message.size()));
  out->append(message);
}

bool GetEnvelope(const std::string& in, size_t* pos, ReqKind expect,
                 RespStatus* status, std::string* message) {
  uint8_t kind, st;
  uint32_t msg_len;
  if (!Get(in, pos, &kind) || !Get(in, pos, &st) || !Get(in, pos, &msg_len)) {
    return false;
  }
  if (kind != static_cast<uint8_t>(expect)) return false;
  if (st > static_cast<uint8_t>(RespStatus::kError)) return false;
  if (*pos + msg_len > in.size()) return false;
  message->assign(in.data() + *pos, msg_len);
  *pos += msg_len;
  *status = static_cast<RespStatus>(st);
  return true;
}

}  // namespace

std::string EncodePollRequest(const PollRequest& req) {
  std::string out;
  Put<uint8_t>(&out, static_cast<uint8_t>(ReqKind::kPoll));
  Put<uint64_t>(&out, req.replica_id);
  Put<uint64_t>(&out, req.applied_lsn);
  return out;
}

std::string EncodeFetchRequest(const FetchRequest& req) {
  std::string out;
  Put<uint8_t>(&out, static_cast<uint8_t>(ReqKind::kFetch));
  Put<uint8_t>(&out, static_cast<uint8_t>(req.kind));
  Put<uint64_t>(&out, req.id);
  Put<uint64_t>(&out, req.offset);
  Put<uint32_t>(&out, req.max_bytes);
  return out;
}

bool DecodeRequest(const std::string& payload, ReqKind* kind,
                   PollRequest* poll, FetchRequest* fetch) {
  size_t pos = 0;
  uint8_t k;
  if (!Get(payload, &pos, &k)) return false;
  if (k == static_cast<uint8_t>(ReqKind::kPoll)) {
    *kind = ReqKind::kPoll;
    return Get(payload, &pos, &poll->replica_id) &&
           Get(payload, &pos, &poll->applied_lsn) && pos == payload.size();
  }
  if (k == static_cast<uint8_t>(ReqKind::kFetch)) {
    *kind = ReqKind::kFetch;
    uint8_t file_kind;
    if (!Get(payload, &pos, &file_kind) ||
        file_kind < static_cast<uint8_t>(FileKind::kSchema) ||
        file_kind > static_cast<uint8_t>(FileKind::kSegment)) {
      return false;
    }
    fetch->kind = static_cast<FileKind>(file_kind);
    return Get(payload, &pos, &fetch->id) && Get(payload, &pos, &fetch->offset) &&
           Get(payload, &pos, &fetch->max_bytes) && pos == payload.size();
  }
  return false;
}

std::string EncodePollResponse(const PollResponse& resp) {
  std::string out;
  PutEnvelope(&out, ReqKind::kPoll, RespStatus::kOk, {});
  Put<uint64_t>(&out, resp.durable_lsn);
  Put<uint64_t>(&out, resp.checkpoint_lsn);
  Put<uint64_t>(&out, resp.active_start);
  Put<uint64_t>(&out, resp.active_synced_bytes);
  Put<uint32_t>(&out, static_cast<uint32_t>(resp.sealed.size()));
  for (const WalSegmentInfo& info : resp.sealed) {
    Put<uint64_t>(&out, info.start);
    Put<uint64_t>(&out, info.end);
    Put<uint64_t>(&out, info.bytes);
  }
  return out;
}

std::string EncodeFetchResponse(const FetchResponse& resp) {
  std::string out;
  PutEnvelope(&out, ReqKind::kFetch, RespStatus::kOk, {});
  Put<uint64_t>(&out, resp.total_bytes);
  Put<uint32_t>(&out, static_cast<uint32_t>(resp.data.size()));
  out.append(resp.data);
  return out;
}

std::string EncodeErrorResponse(ReqKind kind, RespStatus status,
                                const std::string& message) {
  std::string out;
  PutEnvelope(&out, kind, status, message);
  return out;
}

bool DecodePollResponse(const std::string& payload, RespStatus* status,
                        std::string* message, PollResponse* resp) {
  size_t pos = 0;
  if (!GetEnvelope(payload, &pos, ReqKind::kPoll, status, message)) {
    return false;
  }
  if (*status != RespStatus::kOk) return true;
  uint32_t n;
  if (!Get(payload, &pos, &resp->durable_lsn) ||
      !Get(payload, &pos, &resp->checkpoint_lsn) ||
      !Get(payload, &pos, &resp->active_start) ||
      !Get(payload, &pos, &resp->active_synced_bytes) ||
      !Get(payload, &pos, &n)) {
    return false;
  }
  // Each entry is 24 bytes; validate the count against what remains so a
  // corrupt count cannot over-allocate.
  if (static_cast<size_t>(n) * 24 != payload.size() - pos) return false;
  resp->sealed.resize(n);
  for (WalSegmentInfo& info : resp->sealed) {
    if (!Get(payload, &pos, &info.start) || !Get(payload, &pos, &info.end) ||
        !Get(payload, &pos, &info.bytes)) {
      return false;
    }
  }
  return pos == payload.size();
}

bool DecodeFetchResponse(const std::string& payload, RespStatus* status,
                         std::string* message, FetchResponse* resp) {
  size_t pos = 0;
  if (!GetEnvelope(payload, &pos, ReqKind::kFetch, status, message)) {
    return false;
  }
  if (*status != RespStatus::kOk) return true;
  uint32_t data_len;
  if (!Get(payload, &pos, &resp->total_bytes) ||
      !Get(payload, &pos, &data_len)) {
    return false;
  }
  if (pos + data_len != payload.size()) return false;
  resp->data.assign(payload.data() + pos, data_len);
  return true;
}

}  // namespace repl
}  // namespace mmdb
