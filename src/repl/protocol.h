// The log-shipping codec carried in kReplRequest/kReplResponse frames.
//
// Shipping is pull-based and file-granular: the replica polls the
// primary's segment manifest and fetches byte ranges of the files it is
// missing.  Pull keeps all cursor state on the replica (the primary only
// remembers acks, for retention), so a replica can crash, restart, and
// resume from whatever its local mirror holds — the poll *is* the
// handshake, carrying the replica's last applied LSN every round.
//
//   kPoll   replica -> primary   "here is where I am"
//           response: durable/checkpoint LSNs, the sealed-segment chain,
//           and how much of the active segment is fsync'd (never more —
//           a replica must not apply bytes the primary could still lose).
//   kFetch  replica -> primary   "give me bytes [offset, offset+max) of
//           schema / checkpoint-<lsn> / wal-<start>"
//
// Integrity: the wire layer CRCs every frame, and each shipped WAL byte
// range is re-validated record-by-record (log_format CRCs) on the replica
// before anything is applied — corruption is detected end to end.

#ifndef MMDB_REPL_PROTOCOL_H_
#define MMDB_REPL_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/txn/wal.h"

namespace mmdb {
namespace repl {

enum class ReqKind : uint8_t {
  kPoll = 1,
  kFetch = 2,
};

enum class FileKind : uint8_t {
  kSchema = 1,      ///< the schema journal (id ignored)
  kCheckpoint = 2,  ///< checkpoint-<id>.ckpt
  kSegment = 3,     ///< wal-<id>.log
};

enum class RespStatus : uint8_t {
  kOk = 0,
  kNotFound = 1,  ///< file GC'd or never existed; replica must re-poll
  kError = 2,     ///< primary-side failure, message attached
};

struct PollRequest {
  uint64_t replica_id = 0;
  /// The replica's replication cursor (last LSN applied); doubles as the
  /// ack that drives the primary's WAL retention floor.
  uint64_t applied_lsn = 0;
};

struct PollResponse {
  uint64_t durable_lsn = 0;
  uint64_t checkpoint_lsn = 0;
  uint64_t active_start = 0;
  uint64_t active_synced_bytes = 0;
  std::vector<WalSegmentInfo> sealed;
};

struct FetchRequest {
  FileKind kind = FileKind::kSegment;
  uint64_t id = 0;  ///< checkpoint LSN or segment start LSN
  uint64_t offset = 0;
  uint32_t max_bytes = 1u << 20;
};

struct FetchResponse {
  /// Size the primary will serve of this file right now (for the active
  /// segment: its synced prefix, which only grows).
  uint64_t total_bytes = 0;
  std::string data;  ///< bytes [offset, offset + data.size())
};

std::string EncodePollRequest(const PollRequest& req);
std::string EncodeFetchRequest(const FetchRequest& req);
/// Decodes either request kind; exactly one output is filled, per *kind.
bool DecodeRequest(const std::string& payload, ReqKind* kind,
                   PollRequest* poll, FetchRequest* fetch);

std::string EncodePollResponse(const PollResponse& resp);
std::string EncodeFetchResponse(const FetchResponse& resp);
std::string EncodeErrorResponse(ReqKind kind, RespStatus status,
                                const std::string& message);
/// Returns false on a malformed payload.  On RespStatus != kOk the body
/// outputs are untouched and *message holds the primary's explanation.
bool DecodePollResponse(const std::string& payload, RespStatus* status,
                        std::string* message, PollResponse* resp);
bool DecodeFetchResponse(const std::string& payload, RespStatus* status,
                         std::string* message, FetchResponse* resp);

}  // namespace repl
}  // namespace mmdb

#endif  // MMDB_REPL_PROTOCOL_H_
