// Header-only seams between the shell (which lives in mmdb_net) and the
// replication library (mmdb_repl, which links *against* mmdb_net).  The
// shell cannot depend on mmdb_repl without a link cycle, so it talks to
// the shipper and the replica through these two pure interfaces; the
// process entry point (examples/mmdb_shell.cpp, tests) wires the concrete
// objects in.

#ifndef MMDB_REPL_REPL_IFACE_H_
#define MMDB_REPL_REPL_IFACE_H_

#include <string>

#include "src/util/status.h"

namespace mmdb {
namespace repl {

/// Primary side: answers one opaque kReplRequest payload (the repl codec,
/// src/repl/protocol.h) with a kReplResponse payload.  Implemented by
/// Shipper; installed into net::Server::set_repl_handler.
class ReplSource {
 public:
  virtual ~ReplSource() = default;
  virtual std::string HandleRequest(const std::string& request) = 0;
  /// Human-readable replica roster for STATUS.
  virtual std::string StatusText() const = 0;
};

/// Replica side: what the shell needs to drive a replica — PROMOTE and a
/// status block.  Implemented by Replica.
class ReplicaControl {
 public:
  virtual ~ReplicaControl() = default;
  /// Stops replay and turns this replica into a standalone primary: the
  /// database starts accepting writes and opens a fresh durable epoch in
  /// the local mirror directory.  Idempotent once succeeded.
  virtual Status Promote() = 0;
  virtual std::string StatusText() const = 0;
};

}  // namespace repl
}  // namespace mmdb

#endif  // MMDB_REPL_REPL_IFACE_H_
