#include "src/repl/replica.h"

#include <algorithm>
#include <set>
#include <utility>

#include "src/core/database.h"
#include "src/txn/disk_image.h"
#include "src/txn/log_format.h"

namespace mmdb {
namespace repl {

namespace {
/// Consecutive corrupt-frame rounds (each = discard + refetch) before the
/// replica concludes the primary's copy itself is bad and halts replay.
constexpr int kMaxCorruptRounds = 5;
}  // namespace

Replica::Replica(ReplicaOptions options)
    : options_(std::move(options)),
      env_(options_.env != nullptr ? options_.env : Env::Posix()),
      db_(std::make_unique<Database>()),
      client_(std::make_unique<net::Client>()) {
  MetricsRegistry& m = db_->metrics();
  polls_ = m.GetCounter("mmdb_repl_polls_total");
  fetched_bytes_ = m.GetCounter("mmdb_repl_fetched_bytes_total");
  applied_records_ = m.GetCounter("mmdb_repl_applied_records_total");
  applied_txns_ = m.GetCounter("mmdb_repl_applied_txns_total");
  refetches_ = m.GetCounter("mmdb_repl_refetches_total");
  apply_errors_ = m.GetCounter("mmdb_repl_apply_errors_total");
  applied_lsn_gauge_ = m.GetGauge("mmdb_repl_applied_lsn");
  lag_lsn_gauge_ = m.GetGauge("mmdb_repl_lag_lsn");
}

Replica::~Replica() { Stop(); }

Status Replica::Start() {
  Status s = env_->CreateDir(options_.dir);
  if (!s.ok()) return s;

  const auto deadline =
      std::chrono::steady_clock::now() + options_.connect_timeout;
  for (;;) {
    s = client_->Connect(options_.primary_host, options_.primary_port);
    if (s.ok()) break;
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::ResourceExhausted("primary unreachable: " + s.message());
    }
    std::this_thread::sleep_for(options_.reconnect_backoff);
  }
  connected_ = true;

  s = Bootstrap();
  if (!s.ok()) return s;
  db_->SetReadOnly(true);

  EnterSegment(cur_start_);
  running_.store(true);
  apply_thread_ = std::thread([this] { ApplyLoop(); });
  return Status::Ok();
}

void Replica::Stop() {
  if (running_.exchange(false)) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      cv_.notify_all();
    }
    if (apply_thread_.joinable()) apply_thread_.join();
  }
  if (local_file_ != nullptr) {
    local_file_->Sync();
    local_file_->Close();
    local_file_.reset();
  }
}

Status Replica::Bootstrap() {
  // A valid local mirror resumes without re-shipping history: recover from
  // it, then restage the stream from the newest local checkpoint (batch
  // application is idempotent, so re-applying the overlap is harmless —
  // and restaging is what rebuilds transactions whose commit marker had
  // not arrived yet).
  std::vector<std::string> names;
  uint64_t local_ckpt = 0;
  bool have_ckpt = false;
  if (env_->ListDir(options_.dir, &names).ok()) {
    for (const std::string& name : names) {
      uint64_t lsn;
      if (log_format::ParseCheckpointFileName(name, &lsn)) {
        local_ckpt = std::max(local_ckpt, lsn);
        have_ckpt = true;
      }
    }
  }
  if (have_ckpt &&
      env_->FileExists(options_.dir + "/" + log_format::SchemaFileName())) {
    Status s = db_->Recover(options_.dir, env_);
    if (!s.ok()) {
      // Never silently resync over damage the operator should see.
      return Status::Corruption("local mirror " + options_.dir +
                                " failed recovery (" + s.message() +
                                "); delete it to force a full resync");
    }
    s = WalManifest::Load(env_, options_.dir, &local_manifest_);
    if (!s.ok()) return s;
    cur_start_ = local_ckpt;
    applied_lsn_ = local_ckpt;
    return Status::Ok();
  }
  return BootstrapFromPrimary();
}

Status Replica::BootstrapFromPrimary() {
  // The checkpoint may be superseded between poll and fetch (the primary
  // keeps checkpointing); a kNotFound simply means "poll again".
  Status s;
  for (int attempt = 0; attempt < 5; ++attempt) {
    PollResponse p;
    s = Poll(&p);
    if (!s.ok()) return s;
    s = FetchFileAtomic(FileKind::kSchema, 0, log_format::SchemaFileName());
    if (!s.ok()) continue;
    s = FetchFileAtomic(FileKind::kCheckpoint, p.checkpoint_lsn,
                        log_format::CheckpointFileName(p.checkpoint_lsn));
    if (!s.ok()) continue;
    local_manifest_.Clear();
    s = local_manifest_.Save(env_, options_.dir);
    if (!s.ok()) return s;
    s = db_->Recover(options_.dir, env_);
    if (!s.ok()) return s;
    cur_start_ = p.checkpoint_lsn;
    applied_lsn_ = p.checkpoint_lsn;
    return Status::Ok();
  }
  return Status::ResourceExhausted("bootstrap kept racing primary checkpoints: " +
                             s.message());
}

Status Replica::FetchFileAtomic(FileKind kind, uint64_t id,
                                const std::string& name) {
  std::string body;
  for (;;) {
    FetchRequest req;
    req.kind = kind;
    req.id = id;
    req.offset = body.size();
    req.max_bytes = options_.fetch_chunk_bytes;
    FetchResponse resp;
    std::string refusal;
    Status s = Fetch(req, &resp, &refusal);
    if (!s.ok()) return s;
    if (!refusal.empty()) return Status::NotFound(refusal);
    body += resp.data;
    if (body.size() >= resp.total_bytes) break;
    if (resp.data.empty()) {
      return Status::ResourceExhausted(name + ": fetch stalled");
    }
  }
  const std::string path = options_.dir + "/" + name;
  const std::string tmp = path + ".tmp";
  std::unique_ptr<WritableFile> file;
  Status s = env_->NewWritableFile(tmp, /*truncate=*/true, &file);
  if (!s.ok()) return s;
  s = file->Append(body);
  if (s.ok()) s = file->Sync();
  if (s.ok()) s = file->Close();
  if (!s.ok()) return s;
  return env_->RenameFile(tmp, path);
}

Status Replica::Poll(PollResponse* resp) {
  PollRequest req;
  req.replica_id = options_.replica_id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    req.applied_lsn = applied_lsn_;
  }
  std::string wire;
  Status s = client_->Repl(EncodePollRequest(req), &wire);
  if (!s.ok()) return s;
  polls_->Add();
  RespStatus status;
  std::string message;
  if (!DecodePollResponse(wire, &status, &message, resp)) {
    return Status::Internal("malformed poll response");
  }
  if (status != RespStatus::kOk) {
    return Status::ResourceExhausted("primary refused poll: " + message);
  }
  return Status::Ok();
}

Status Replica::Fetch(const FetchRequest& req, FetchResponse* resp,
                      std::string* refusal) {
  refusal->clear();
  std::string wire;
  Status s = client_->Repl(EncodeFetchRequest(req), &wire);
  if (!s.ok()) return s;
  RespStatus status;
  std::string message;
  if (!DecodeFetchResponse(wire, &status, &message, resp)) {
    return Status::Internal("malformed fetch response");
  }
  if (status == RespStatus::kError) {
    return Status::ResourceExhausted("primary refused fetch: " + message);
  }
  if (status == RespStatus::kNotFound) *refusal = message;
  fetched_bytes_->Add(resp->data.size());
  return Status::Ok();
}

void Replica::ApplyLoop() {
  while (running_.load()) {
    const bool progressed = RunOnce();
    if (!health().ok()) return;  // halted on a typed error
    if (progressed) continue;    // keep draining while there is data
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, options_.poll_interval,
                 [this] { return !running_.load(); });
  }
}

bool Replica::RunOnce() {
  if (!connected_) {
    if (!client_->Connect(options_.primary_host, options_.primary_port).ok()) {
      std::this_thread::sleep_for(options_.reconnect_backoff);
      return false;
    }
    connected_ = true;
  }

  PollResponse p;
  Status s = Poll(&p);
  if (!s.ok()) {
    client_->Close();
    connected_ = false;
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    primary_durable_lsn_ = p.durable_lsn;
    lag_lsn_gauge_->Set(static_cast<int64_t>(
        p.durable_lsn > applied_lsn_ ? p.durable_lsn - applied_lsn_ : 0));
  }

  // Locate the cursor segment in the primary's chain.
  const WalSegmentInfo* sealed = nullptr;
  for (const WalSegmentInfo& info : p.sealed) {
    if (info.start == cur_start_) sealed = &info;
  }
  uint64_t target;
  if (sealed != nullptr) {
    target = sealed->bytes;
  } else if (cur_start_ == p.active_start) {
    target = p.active_synced_bytes;
  } else {
    // Our segment is neither sealed nor active: the primary opened a new
    // epoch (restart / re-initialization) or GC ran past us despite the
    // ack floor.  Either way continuing would apply a different timeline.
    SetHealth(Status::Corruption(
        "replica lost sync: " + log_format::WalFileName(cur_start_) +
        " is gone from the primary; delete " + options_.dir +
        " and restart to resync"));
    return false;
  }

  // Drain anything already buffered (restart restaging enters here).
  if (!DrainCursor(sealed != nullptr, sealed != nullptr ? sealed->end : 0)) {
    return false;
  }

  bool progressed = false;
  int corrupt_rounds = 0;
  while (running_.load() && seg_data_.size() < target) {
    FetchRequest req;
    req.kind = FileKind::kSegment;
    req.id = cur_start_;
    req.offset = seg_data_.size();
    req.max_bytes = options_.fetch_chunk_bytes;
    FetchResponse resp;
    std::string refusal;
    s = Fetch(req, &resp, &refusal);
    if (!s.ok()) {
      client_->Close();
      connected_ = false;
      return progressed;
    }
    if (!refusal.empty() || resp.data.empty()) return progressed;  // re-poll
    seg_data_ += resp.data;
    if (local_file_ != nullptr) local_file_->Append(resp.data);
    progressed = true;
    const size_t before = apply_pos_;
    if (!DrainCursor(sealed != nullptr, sealed != nullptr ? sealed->end : 0)) {
      return false;
    }
    if (apply_pos_ == before && seg_data_.size() < target) {
      // No frame completed from a non-empty fetch: either a frame larger
      // than the chunk (keep fetching) or a corrupt prefix was discarded
      // (DiscardUnappliedTail shrank seg_data_; count the retry).
      if (seg_data_.size() == before) {
        if (++corrupt_rounds >= kMaxCorruptRounds) {
          SetHealth(Status::Corruption(
              log_format::WalFileName(cur_start_) +
              ": frame at offset " + std::to_string(apply_pos_) +
              " stays corrupt after " + std::to_string(corrupt_rounds) +
              " refetches from the primary"));
          return false;
        }
      }
    } else {
      corrupt_rounds = 0;
    }
  }
  if (local_file_ != nullptr && progressed) local_file_->Sync();

  if (sealed != nullptr && seg_data_.size() >= target) {
    if (apply_pos_ != seg_data_.size()) {
      // A sealed segment must decode exactly to its last byte; a torn
      // frame here means a bad shipped copy — discard and refetch.
      refetches_->Add();
      DiscardUnappliedTail();
      return progressed;
    }
    // Segment complete: record it in the local manifest so the mirror is
    // a self-describing durability dir, then move to the next one.
    if (local_file_ != nullptr) {
      local_file_->Sync();
      local_file_->Close();
      local_file_.reset();
    }
    if (local_manifest_.Find(cur_start_) == nullptr) {  // restart restage
      Status ms =
          local_manifest_.Append({cur_start_, sealed->end, sealed->bytes});
      if (ms.ok()) ms = local_manifest_.Save(env_, options_.dir);
      if (!ms.ok()) {
        SetHealth(ms);
        return false;
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      applied_lsn_ = std::max(applied_lsn_, sealed->end);
      applied_lsn_gauge_->Set(static_cast<int64_t>(applied_lsn_));
      cv_.notify_all();
    }
    EnterSegment(sealed->end);
    return true;
  }
  return progressed;
}

void Replica::EnterSegment(uint64_t start) {
  cur_start_ = start;
  seg_data_.clear();
  apply_pos_ = 0;
  local_file_.reset();

  const std::string path =
      options_.dir + "/" + log_format::WalFileName(start);
  std::string existing;
  if (env_->ReadFile(path, &existing).ok() && !existing.empty()) {
    // Keep only the clean frame prefix of the local mirror; a torn or
    // flipped tail (crash mid-append, disk damage) is truncated here and
    // re-requested from the primary — never applied.
    size_t pos = 0;
    uint64_t last = start;
    for (;;) {
      LogRecord rec;
      const log_format::DecodeResult r =
          log_format::DecodeRecord(existing, &pos, &rec);
      if (r != log_format::DecodeResult::kOk) break;
      if (rec.lsn <= last) break;
      last = rec.lsn;
    }
    if (pos < existing.size()) {
      refetches_->Add();
      existing.resize(pos);
    }
    seg_data_ = std::move(existing);
  }
  std::unique_ptr<WritableFile> file;
  if (env_->NewWritableFile(path, /*truncate=*/true, &file).ok()) {
    if (!seg_data_.empty()) file->Append(seg_data_);
    file->Sync();
    local_file_ = std::move(file);
  }
}

bool Replica::DrainCursor(bool sealed_complete, uint64_t sealed_end) {
  for (;;) {
    LogRecord rec;
    const log_format::DecodeResult r =
        log_format::DecodeRecord(seg_data_, &apply_pos_, &rec);
    if (r == log_format::DecodeResult::kEnd ||
        r == log_format::DecodeResult::kTruncated) {
      return true;  // wait for more bytes
    }
    uint64_t applied;
    {
      std::lock_guard<std::mutex> lock(mu_);
      applied = applied_lsn_;
    }
    const bool lsn_bad =
        r == log_format::DecodeResult::kOk &&
        (rec.lsn <= cur_start_ || rec.lsn <= applied ||
         (sealed_complete && rec.lsn > sealed_end));
    if (r == log_format::DecodeResult::kCorrupt || lsn_bad) {
      // Stop at the bad frame, drop everything unapplied after it, and
      // re-request the range from the primary.  Nothing past corruption
      // is ever applied.
      refetches_->Add();
      DiscardUnappliedTail();
      return true;
    }
    const uint64_t lsn = rec.lsn;
    if (rec.is_commit_marker()) {
      auto it = pending_.find(rec.txn_id);
      if (it != pending_.end()) {
        Status s = ApplyBatch(it->second);
        if (!s.ok()) {
          apply_errors_->Add();
          SetHealth(s);
          return false;
        }
        applied_records_->Add(it->second.size());
        pending_.erase(it);
      }
      applied_txns_->Add();
    } else {
      pending_[rec.txn_id].push_back(std::move(rec));
    }
    std::lock_guard<std::mutex> lock(mu_);
    applied_lsn_ = std::max(applied_lsn_, lsn);
    applied_lsn_gauge_->Set(static_cast<int64_t>(applied_lsn_));
    cv_.notify_all();
  }
}

void Replica::DiscardUnappliedTail() {
  seg_data_.resize(apply_pos_);
  local_file_.reset();
  const std::string path =
      options_.dir + "/" + log_format::WalFileName(cur_start_);
  std::unique_ptr<WritableFile> file;
  if (env_->NewWritableFile(path, /*truncate=*/true, &file).ok()) {
    if (!seg_data_.empty()) file->Append(seg_data_);
    file->Sync();
    local_file_ = std::move(file);
  }
}

Status Replica::ApplyBatch(const std::vector<LogRecord>& records) {
  std::set<std::string> touched;
  for (const LogRecord& rec : records) touched.insert(rec.relation);

  struct Fixup {
    Relation* relation;
    TupleId tuple;
    serialize::PointerFixup fixup;
  };

  Status last;
  for (int attempt = 0; attempt < 3; ++attempt) {
    std::unique_ptr<Transaction> txn = db_->Begin();
    txn->set_lock_timeout(options_.apply_lock_timeout);
    bool locked = true;
    for (const std::string& name : touched) {  // std::set: name order
      Status s = txn->LockRelationExclusive(name);
      if (!s.ok()) {
        last = s;
        locked = false;
        break;
      }
    }
    if (!locked) {
      txn->Abort();
      continue;  // lock timeout: batches are idempotent, retry whole
    }

    // Physical application, exactly the recovery path's idiom: replace by
    // TupleId, decode pointer fields as fixups, resolve after the batch
    // (a pointer may target a tuple inserted later in the same batch).
    std::vector<Fixup> fixups;
    Status s;
    for (const LogRecord& rec : records) {
      Relation* rel = db_->GetTable(rec.relation);
      if (rel == nullptr) {
        s = Status::Corruption("wal record references unknown relation " +
                               rec.relation);
        break;
      }
      TupleRef existing = rel->RefOf(rec.tid);
      if (existing != nullptr) rel->Delete(existing);
      if (rec.op == LogOp::kDelete) continue;
      std::vector<Value> values;
      std::vector<serialize::PointerFixup> tuple_fixups;
      s = serialize::DecodeTuple(*rel, rec.payload, &values, &tuple_fixups);
      if (!s.ok()) {
        s = Status::Corruption("undecodable tuple image in " + rec.relation +
                               " at lsn " + std::to_string(rec.lsn) + ": " +
                               s.message());
        break;
      }
      TupleRef t = rel->InsertAt(rec.tid, values);
      if (t == nullptr) {
        s = Status::Corruption("replayed insert rejected by " + rec.relation +
                               " at lsn " + std::to_string(rec.lsn));
        break;
      }
      for (serialize::PointerFixup& f : tuple_fixups) {
        fixups.push_back({rel, rec.tid, std::move(f)});
      }
    }
    for (const Fixup& f : fixups) {
      if (!s.ok()) break;
      Relation* target = db_->GetTable(f.fixup.target_relation);
      TupleRef target_ref =
          target == nullptr ? nullptr : target->RefOf(f.fixup.target);
      TupleRef t = f.relation->RefOf(f.tuple);
      if (target_ref == nullptr || t == nullptr) {
        s = Status::Corruption("dangling pointer fixup into " +
                               f.fixup.target_relation);
        break;
      }
      s = f.relation->UpdateField(t, f.fixup.field, Value(target_ref));
    }
    txn->Abort();  // nothing was logged; this only releases the X locks
    if (!s.ok()) return s;
    for (const std::string& name : touched) {
      db_->reuse_cache().InvalidateRelation(name);
    }
    return Status::Ok();
  }
  return Status::Aborted("apply batch could not lock: " + last.message());
}

Status Replica::Promote() {
  std::lock_guard<std::mutex> lock(promote_mu_);
  if (promoted()) return Status::Ok();
  Stop();
  pending_.clear();  // transactions without a marker die, as in a crash

  uint64_t next;
  {
    std::lock_guard<std::mutex> state(mu_);
    next = applied_lsn_ + 1;
  }
  db_->log_buffer().ResetNextLsn(next);
  db_->SetReadOnly(false);

  DurabilityOptions opts;
  opts.mode = DurabilityMode::kSync;
  opts.dir = options_.dir;
  opts.env = options_.env;  // nullptr selects Posix inside the manager
  ApplyDurabilityEnvOverrides(&opts);
  Status s = db_->EnableDurability(opts);
  if (!s.ok()) {
    SetHealth(s);
    return Status::Internal("promoted but durability failed to start: " +
                            s.message());
  }
  client_->Close();
  {
    std::lock_guard<std::mutex> state(mu_);
    promoted_ = true;
  }
  return Status::Ok();
}

uint64_t Replica::applied_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return applied_lsn_;
}

uint64_t Replica::primary_durable_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return primary_durable_lsn_;
}

bool Replica::promoted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return promoted_;
}

Status Replica::health() const {
  std::lock_guard<std::mutex> lock(mu_);
  return health_;
}

void Replica::SetHealth(Status s) {
  std::lock_guard<std::mutex> lock(mu_);
  if (health_.ok()) health_ = std::move(s);  // first error wins
  cv_.notify_all();
}

Status Replica::WaitForLsn(uint64_t lsn, std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  const bool reached = cv_.wait_for(lock, timeout, [&] {
    return applied_lsn_ >= lsn || !health_.ok();
  });
  if (!health_.ok()) return health_;
  if (!reached) {
    return Status::ResourceExhausted(
        "replica stuck at lsn " + std::to_string(applied_lsn_) +
        " waiting for " + std::to_string(lsn));
  }
  return Status::Ok();
}

std::string Replica::StatusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out += promoted_ ? "role: primary (promoted)\n" : "role: replica\n";
  out += "primary: " + options_.primary_host + ":" +
         std::to_string(options_.primary_port) + "\n";
  out += "repl_applied_lsn: " + std::to_string(applied_lsn_) + "\n";
  out += "repl_primary_durable_lsn: " + std::to_string(primary_durable_lsn_) +
         "\n";
  out += "repl_lag_lsn: " +
         std::to_string(primary_durable_lsn_ > applied_lsn_
                            ? primary_durable_lsn_ - applied_lsn_
                            : 0) +
         "\n";
  out += "repl_health: " + (health_.ok() ? std::string("ok")
                                         : health_.ToString()) +
         "\n";
  return out;
}

}  // namespace repl
}  // namespace mmdb
