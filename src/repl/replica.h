// Replica: a read replica continuously replaying a primary's WAL.
//
// Lifecycle:
//   Start()    bootstrap — reuse a valid local mirror (Database::Recover),
//              or fetch schema + newest checkpoint from the primary and
//              recover from those; then mark the database read-only and
//              launch the apply thread.
//   apply loop poll the primary's segment manifest; fetch missing byte
//              ranges of the current segment (sealed segments whole, the
//              active one up to its fsync'd prefix); validate every frame
//              locally (CRC + LSN monotonicity) before persisting it to
//              the local mirror; stage records per transaction and apply
//              each batch at its commit marker under relation X locks.
//   Promote()  stop replay, drop still-uncommitted staged records (crash
//              semantics), accept writes, open a fresh durable epoch in
//              the mirror directory.
//
// Corruption policy mirrors recovery's: a torn frame in the data most
// recently fetched (or in the unsealed tail of the local mirror at
// restart) is re-requested from the primary; a bad frame anywhere a seal
// says none may be is a typed kCorruption error that halts replay — the
// replica never applies past corruption and never guesses.
//
// The local mirror is a real durability directory (schema + checkpoint +
// segments + wal.manifest), so Database::Recover and mmdb_pitr both work
// against it unchanged.

#ifndef MMDB_REPL_REPLICA_H_
#define MMDB_REPL_REPLICA_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/net/client.h"
#include "src/repl/protocol.h"
#include "src/repl/repl_iface.h"
#include "src/txn/log.h"
#include "src/txn/wal.h"
#include "src/util/env.h"
#include "src/util/metrics.h"
#include "src/util/status.h"

namespace mmdb {

class Database;

namespace repl {

struct ReplicaOptions {
  std::string primary_host = "127.0.0.1";
  uint16_t primary_port = 0;
  /// Local mirror directory (schema, checkpoints, segments, manifest).
  std::string dir;
  Env* env = nullptr;  ///< nullptr = Env::Posix()
  /// Identity in the primary's ack table (drives its retention floor).
  uint64_t replica_id = 1;
  std::chrono::milliseconds poll_interval{20};
  std::chrono::milliseconds reconnect_backoff{200};
  /// Give up Start() if the primary stays unreachable this long.
  std::chrono::milliseconds connect_timeout{10000};
  uint32_t fetch_chunk_bytes = 1u << 20;
  /// Lock budget for one apply batch (retried: application is idempotent).
  std::chrono::milliseconds apply_lock_timeout{2000};
};

class Replica : public ReplicaControl {
 public:
  explicit Replica(ReplicaOptions options);
  ~Replica() override;  // implies Stop()

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  /// Bootstraps (local mirror or over the wire) and starts the apply
  /// thread.  On return the database is recovered, read-only, and
  /// catching up in the background.
  Status Start();

  /// Stops the apply thread; the database stays read-only and serveable.
  void Stop();

  /// ReplicaControl: becomes a standalone primary (see file comment).
  Status Promote() override;
  std::string StatusText() const override;

  /// The replica database: wrap in a QueryService to serve SELECTs.
  Database* db() { return db_.get(); }

  uint64_t applied_lsn() const;
  uint64_t primary_durable_lsn() const;
  bool promoted() const;
  /// First typed replay error, if replay has halted (e.g. kCorruption on
  /// a sealed segment).  Ok while healthy.
  Status health() const;

  /// Test/benchmark convenience: blocks until applied_lsn() >= lsn.
  Status WaitForLsn(uint64_t lsn, std::chrono::milliseconds timeout);

 private:
  Status Bootstrap();
  Status BootstrapFromPrimary();
  /// Fetches one whole file via chunked kFetch and writes it locally via
  /// temp+rename.
  Status FetchFileAtomic(FileKind kind, uint64_t id, const std::string& name);
  Status Poll(PollResponse* resp);
  Status Fetch(const FetchRequest& req, FetchResponse* resp,
               std::string* refusal);
  void ApplyLoop();
  /// One poll + catch-up round.  Returns false if the loop should back
  /// off (no progress possible right now).
  bool RunOnce();
  /// Loads the local mirror of segment `start` into the in-memory cursor,
  /// keeping only the clean frame prefix (a torn local tail is truncated
  /// and re-fetched; corruption is counted and reported).
  void EnterSegment(uint64_t start);
  /// Decodes newly arrived bytes from apply_pos_ on: stages records and
  /// applies commit batches.  Returns false when replay must halt.
  bool DrainCursor(bool sealed_complete, uint64_t sealed_end);
  /// Applies one committed transaction's records under relation X locks;
  /// idempotent, retried on lock timeouts.
  Status ApplyBatch(const std::vector<LogRecord>& records);
  /// Truncates the in-memory cursor and the local mirror file back to
  /// apply_pos_ so the suffix is re-requested from the primary.
  void DiscardUnappliedTail();
  void SetHealth(Status s);

  ReplicaOptions options_;
  Env* env_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<net::Client> client_;
  bool connected_ = false;

  std::thread apply_thread_;
  std::atomic<bool> running_{false};
  std::mutex promote_mu_;  ///< serializes Promote against itself
  mutable std::mutex mu_;
  std::condition_variable cv_;

  // Stream cursor (apply thread only, except where noted).
  uint64_t cur_start_ = 0;       ///< start LSN of the segment being applied
  std::string seg_data_;         ///< bytes of the current segment so far
  size_t apply_pos_ = 0;         ///< next undecoded frame offset
  std::unique_ptr<WritableFile> local_file_;
  WalManifest local_manifest_;
  std::map<uint64_t, std::vector<LogRecord>> pending_;  ///< txn -> records

  // Shared with readers (guarded by mu_).
  uint64_t applied_lsn_ = 0;
  uint64_t primary_durable_lsn_ = 0;
  bool promoted_ = false;
  Status health_ = Status::Ok();

  Counter* polls_;
  Counter* fetched_bytes_;
  Counter* applied_records_;
  Counter* applied_txns_;
  Counter* refetches_;
  Counter* apply_errors_;
  Gauge* applied_lsn_gauge_;
  Gauge* lag_lsn_gauge_;
};

}  // namespace repl
}  // namespace mmdb

#endif  // MMDB_REPL_REPLICA_H_
