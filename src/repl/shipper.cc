#include "src/repl/shipper.h"

#include <algorithm>
#include <limits>

#include "src/core/database.h"
#include "src/txn/log_format.h"

namespace mmdb {
namespace repl {

Shipper::Shipper(Database* db, ShipperOptions options)
    : db_(db), options_(options) {
  MetricsRegistry& m = db_->metrics();
  polls_ = m.GetCounter("mmdb_repl_polls_total");
  fetches_ = m.GetCounter("mmdb_repl_fetches_total");
  bytes_shipped_ = m.GetCounter("mmdb_repl_bytes_shipped_total");
  fetch_misses_ = m.GetCounter("mmdb_repl_fetch_misses_total");
  connected_ = m.GetGauge("mmdb_repl_connected_replicas");
  min_acked_ = m.GetGauge("mmdb_repl_min_acked_lsn");
}

std::string Shipper::HandleRequest(const std::string& request) {
  ReqKind kind;
  PollRequest poll;
  FetchRequest fetch;
  if (!DecodeRequest(request, &kind, &poll, &fetch)) {
    return EncodeErrorResponse(ReqKind::kPoll, RespStatus::kError,
                               "malformed repl request");
  }
  return kind == ReqKind::kPoll ? HandlePoll(poll) : HandleFetch(fetch);
}

void Shipper::RecordAck(uint64_t replica_id, uint64_t applied_lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  ReplicaState& state = replicas_[replica_id];
  // Acks only move forward; a replica that resyncs from a checkpoint
  // re-announces a lower LSN, which is legitimate — accept it so
  // retention covers what it actually needs.
  state.applied_lsn = applied_lsn;
  state.last_seen = std::chrono::steady_clock::now();
  RefreshRetainFloorLocked();
}

void Shipper::RefreshRetainFloorLocked() {
  const auto now = std::chrono::steady_clock::now();
  uint64_t floor = std::numeric_limits<uint64_t>::max();
  for (auto it = replicas_.begin(); it != replicas_.end();) {
    if (now - it->second.last_seen > options_.replica_ttl) {
      it = replicas_.erase(it);
      continue;
    }
    floor = std::min(floor, it->second.applied_lsn);
    ++it;
  }
  if (db_->durability() != nullptr) {
    db_->durability()->SetWalRetainFloor(floor);
  }
  connected_->Set(static_cast<int64_t>(replicas_.size()));
  min_acked_->Set(floor == std::numeric_limits<uint64_t>::max()
                      ? -1
                      : static_cast<int64_t>(floor));
}

size_t Shipper::connected_replicas() const {
  std::lock_guard<std::mutex> lock(mu_);
  return replicas_.size();
}

std::string Shipper::HandlePoll(const PollRequest& req) {
  polls_->Add();
  RecordAck(req.replica_id, req.applied_lsn);
  DurabilityManager* dur = db_->durability();
  if (dur == nullptr) {
    return EncodeErrorResponse(ReqKind::kPoll, RespStatus::kError,
                               "primary has durability disabled");
  }
  const WalShipState state = dur->ShipState();
  if (state.failed) {
    return EncodeErrorResponse(ReqKind::kPoll, RespStatus::kError,
                               "primary wal failed");
  }
  PollResponse resp;
  resp.durable_lsn = state.durable_lsn;
  resp.checkpoint_lsn = state.checkpoint_lsn;
  resp.active_start = state.active_start;
  resp.active_synced_bytes = state.active_synced_bytes;
  resp.sealed = state.sealed;
  return EncodePollResponse(resp);
}

std::string Shipper::HandleFetch(const FetchRequest& req) {
  fetches_->Add();
  DurabilityManager* dur = db_->durability();
  if (dur == nullptr) {
    return EncodeErrorResponse(ReqKind::kFetch, RespStatus::kError,
                               "primary has durability disabled");
  }
  const DurabilityOptions& opts = dur->options();
  Env* env = opts.env != nullptr ? opts.env : Env::Posix();

  std::string name;
  uint64_t servable = std::numeric_limits<uint64_t>::max();
  switch (req.kind) {
    case FileKind::kSchema:
      name = log_format::SchemaFileName();
      break;
    case FileKind::kCheckpoint:
      name = log_format::CheckpointFileName(req.id);
      break;
    case FileKind::kSegment: {
      // Serve only what is provably stable: a sealed segment whole, the
      // active segment up to its fsync'd prefix.  Anything else was GC'd
      // (or never existed) — the replica re-polls and resyncs.
      name = log_format::WalFileName(req.id);
      const WalShipState state = dur->ShipState();
      if (req.id == state.active_start) {
        servable = state.active_synced_bytes;
      } else {
        const WalSegmentInfo* sealed = nullptr;
        for (const WalSegmentInfo& info : state.sealed) {
          if (info.start == req.id) sealed = &info;
        }
        if (sealed == nullptr) {
          fetch_misses_->Add();
          return EncodeErrorResponse(ReqKind::kFetch, RespStatus::kNotFound,
                                     name + " is not sealed or active");
        }
        servable = sealed->bytes;
      }
      break;
    }
  }

  std::string data;
  Status s = env->ReadFile(opts.dir + "/" + name, &data);
  if (!s.ok()) {
    fetch_misses_->Add();
    return EncodeErrorResponse(ReqKind::kFetch, RespStatus::kNotFound,
                               name + ": " + s.message());
  }
  FetchResponse resp;
  resp.total_bytes = std::min<uint64_t>(servable, data.size());
  if (req.offset < resp.total_bytes) {
    const uint64_t n = std::min<uint64_t>(req.max_bytes,
                                          resp.total_bytes - req.offset);
    resp.data = data.substr(req.offset, n);
  }
  bytes_shipped_->Add(resp.data.size());
  return EncodeFetchResponse(resp);
}

std::string Shipper::StatusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto now = std::chrono::steady_clock::now();
  std::string out =
      "repl: " + std::to_string(replicas_.size()) + " replica(s)\n";
  for (const auto& [id, state] : replicas_) {
    const auto age = std::chrono::duration_cast<std::chrono::milliseconds>(
        now - state.last_seen);
    out += "  replica " + std::to_string(id) +
           ": acked_lsn=" + std::to_string(state.applied_lsn) +
           " last_poll_ms=" + std::to_string(age.count()) + "\n";
  }
  return out;
}

}  // namespace repl
}  // namespace mmdb
