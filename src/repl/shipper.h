// Shipper: the primary's end of log shipping.  Stateless per request
// (every cursor lives on the replica) except for the ack table, which
// remembers each replica's last applied LSN so checkpoint GC never
// deletes a segment a connected replica still needs
// (DurabilityManager::SetWalRetainFloor).
//
// Runs inline on the net server's loop thread: every request is a couple
// of map operations plus at most one whole-file read of an already-sealed
// segment — no locks shared with the query path, so shipping keeps
// working even when the worker pool is wedged.

#ifndef MMDB_REPL_SHIPPER_H_
#define MMDB_REPL_SHIPPER_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "src/repl/protocol.h"
#include "src/repl/repl_iface.h"
#include "src/util/metrics.h"

namespace mmdb {

class Database;

namespace repl {

struct ShipperOptions {
  /// A replica that has not polled for this long stops pinning WAL
  /// retention (it can still reconnect and resync from a checkpoint).
  std::chrono::milliseconds replica_ttl{60000};
};

class Shipper : public ReplSource {
 public:
  /// The database must have durability enabled before requests arrive.
  explicit Shipper(Database* db, ShipperOptions options = {});

  std::string HandleRequest(const std::string& request) override;
  std::string StatusText() const override;

  /// Records a replica ack and refreshes the retention floor.  Called by
  /// every poll; exposed so tests can pin retention deterministically.
  void RecordAck(uint64_t replica_id, uint64_t applied_lsn);

  /// Replicas currently within TTL.
  size_t connected_replicas() const;

 private:
  std::string HandlePoll(const PollRequest& req);
  std::string HandleFetch(const FetchRequest& req);
  /// Drops expired acks and pushes min(acked) into the durability manager.
  void RefreshRetainFloorLocked();

  Database* db_;
  ShipperOptions options_;

  mutable std::mutex mu_;
  struct ReplicaState {
    uint64_t applied_lsn = 0;
    std::chrono::steady_clock::time_point last_seen;
  };
  std::map<uint64_t, ReplicaState> replicas_;

  Counter* polls_;
  Counter* fetches_;
  Counter* bytes_shipped_;
  Counter* fetch_misses_;
  Gauge* connected_;
  Gauge* min_acked_;
};

}  // namespace repl
}  // namespace mmdb

#endif  // MMDB_REPL_SHIPPER_H_
