#include "src/server/flight_recorder.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>

#include "src/util/hash.h"
#include "src/util/log.h"

namespace mmdb {
namespace flight {
namespace {

// ---- Seqlock ring -----------------------------------------------------------
//
// One writer (the owning thread), any number of readers.  The classic
// seqlock protocol expressed entirely in atomics so TSan sees every access:
//   writer: version <- odd (relaxed); fence(release); words (relaxed);
//           version <- even (release)
//   reader: v1 <- version (acquire); words (relaxed); fence(acquire);
//           v2 <- version (relaxed); keep iff v1 == v2 and even
// The release fence orders the odd store before the word stores (a reader
// that sees new words must see the odd version), and the final release
// store pairs with the reader's acquire load to make the words visible.

constexpr size_t kWords = 7;

struct Slot {
  std::atomic<uint32_t> version{0};
  std::array<std::atomic<uint64_t>, kWords> words{};
};

void Pack(const Record& r, uint64_t* w) {
  w[0] = r.trace_id;
  w[1] = r.fingerprint;
  w[2] = static_cast<uint64_t>(r.end_wall_micros);
  w[3] = static_cast<uint64_t>(r.total_us) |
         (static_cast<uint64_t>(r.queue_us) << 32);
  w[4] = static_cast<uint64_t>(r.lock_us) |
         (static_cast<uint64_t>(r.exec_us) << 32);
  w[5] = static_cast<uint64_t>(r.commit_us) |
         (static_cast<uint64_t>(r.rows) << 32);
  w[6] = static_cast<uint64_t>(r.kind) |
         (static_cast<uint64_t>(r.status) << 8) |
         (static_cast<uint64_t>(r.cache) << 16) |
         (static_cast<uint64_t>(r.admission) << 24) |
         (static_cast<uint64_t>(r.attempts) << 32);
}

void Unpack(const uint64_t* w, Record* r) {
  r->trace_id = w[0];
  r->fingerprint = w[1];
  r->end_wall_micros = static_cast<int64_t>(w[2]);
  r->total_us = static_cast<uint32_t>(w[3]);
  r->queue_us = static_cast<uint32_t>(w[3] >> 32);
  r->lock_us = static_cast<uint32_t>(w[4]);
  r->exec_us = static_cast<uint32_t>(w[4] >> 32);
  r->commit_us = static_cast<uint32_t>(w[5]);
  r->rows = static_cast<uint32_t>(w[5] >> 32);
  r->kind = static_cast<uint8_t>(w[6]);
  r->status = static_cast<uint8_t>(w[6] >> 8);
  r->cache = static_cast<uint8_t>(w[6] >> 16);
  r->admission = static_cast<uint8_t>(w[6] >> 24);
  r->attempts = static_cast<uint32_t>(w[6] >> 32);
}

struct Ring {
  std::array<Slot, kRingSlots> slots;
  /// Next slot the owner writes; also the owner's record count.  Written
  /// by the owner, read by snapshots.
  std::atomic<uint64_t> next{0};
};

struct Registry {
  std::mutex mu;
  std::vector<Ring*> rings;  ///< never freed: readers may walk at any time
};

Registry& GlobalRegistry() {
  static Registry* r = new Registry();
  return *r;
}

thread_local Ring* tls_ring = nullptr;

Ring* ThisThreadRing() {
  if (tls_ring == nullptr) {
    tls_ring = new Ring();  // leaked by design (see Registry)
    Registry& reg = GlobalRegistry();
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.rings.push_back(tls_ring);
  }
  return tls_ring;
}

std::atomic<uint64_t> g_total_recorded{0};
std::atomic<uint64_t> g_total_slow{0};
std::atomic<bool> g_dump_requested{false};

// ---- Enable / threshold state ----------------------------------------------

bool InitialEnabled() {
  const char* env = std::getenv("MMDB_TRACE");
  return env == nullptr ||
         (std::strcmp(env, "OFF") != 0 && std::strcmp(env, "off") != 0 &&
          std::strcmp(env, "0") != 0);
}

uint64_t InitialSlowThreshold() {
  const char* env = std::getenv("MMDB_SLOW_US");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env) return static_cast<uint64_t>(v);
  }
  return 10'000;  // 10 ms
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> flag{InitialEnabled()};
  return flag;
}

std::atomic<uint64_t>& SlowThreshold() {
  static std::atomic<uint64_t> micros{InitialSlowThreshold()};
  return micros;
}

// ---- Slow-query log ---------------------------------------------------------

struct SlowLog {
  std::mutex mu;
  std::deque<std::pair<uint64_t, std::string>> lines;  ///< (trace_id, line)
  static constexpr size_t kCap = 128;
};

SlowLog& GlobalSlowLog() {
  static SlowLog* s = new SlowLog();
  return *s;
}

void AppendSlowLine(uint64_t trace_id, std::string line) {
  SlowLog& sl = GlobalSlowLog();
  std::lock_guard<std::mutex> lock(sl.mu);
  if (sl.lines.size() >= SlowLog::kCap) sl.lines.pop_front();
  sl.lines.emplace_back(trace_id, std::move(line));
}

void AppendHex(std::string* out, uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(v));
  *out += buf;
}

}  // namespace

const char* AdmissionName(Admission a) {
  switch (a) {
    case Admission::kAdmitted: return "admitted";
    case Admission::kShedQueue: return "shed_queue";
    case Admission::kShedShutdown: return "shed_shutdown";
  }
  return "?";
}

bool Enabled() { return EnabledFlag().load(std::memory_order_relaxed); }

void SetEnabledForTest(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

uint64_t SlowThresholdMicros() {
  return SlowThreshold().load(std::memory_order_relaxed);
}

void SetSlowThresholdMicros(uint64_t micros) {
  SlowThreshold().store(micros, std::memory_order_relaxed);
}

uint64_t Fingerprint(const Operation& op) {
  // Shape only — field names and comparison ops, never literal values, so
  // "the same statement with different constants" aggregates to one hash.
  uint64_t h = HashMix64(static_cast<uint64_t>(op.index()) + 0x9E37);
  auto mix_str = [&h](const std::string& s) {
    h = HashMix64(h ^ HashString(s));
  };
  auto mix_where = [&](const WhereClause& w) {
    mix_str(w.field);
    h = HashMix64(h ^ static_cast<uint64_t>(w.op));
  };
  switch (KindOf(op)) {
    case OpKind::kSelect: {
      const auto& s = std::get<SelectSpec>(op);
      mix_str(s.table);
      for (const WhereClause& w : s.where) mix_where(w);
      if (s.join.has_value()) {
        mix_str(s.join->table);
        mix_str(s.join->left_field);
        mix_str(s.join->right_field);
        for (const WhereClause& w : s.join->where) mix_where(w);
      }
      for (const std::string& c : s.columns) mix_str(c);
      h = HashMix64(h ^ ((s.distinct ? 1u : 0u) | (s.ordered ? 2u : 0u)));
      break;
    }
    case OpKind::kInsert: {
      const auto& s = std::get<InsertSpec>(op);
      mix_str(s.table);
      h = HashMix64(h ^ s.values.size());
      break;
    }
    case OpKind::kUpdate: {
      const auto& s = std::get<UpdateSpec>(op);
      mix_str(s.table);
      mix_where(s.match);
      mix_str(s.set_field);
      break;
    }
    case OpKind::kIncrement: {
      const auto& s = std::get<IncrementSpec>(op);
      mix_str(s.table);
      mix_where(s.match);
      mix_str(s.field);
      break;
    }
    case OpKind::kDelete: {
      const auto& s = std::get<DeleteSpec>(op);
      mix_str(s.table);
      mix_where(s.match);
      break;
    }
  }
  return h == 0 ? 1 : h;
}

std::string FormatRecord(const Record& rec) {
  std::string line;
  line.reserve(160);
  line += "trace=";
  AppendHex(&line, rec.trace_id);
  line += " kind=";
  line += OpKindName(static_cast<OpKind>(rec.kind));
  line += " fingerprint=";
  AppendHex(&line, rec.fingerprint);
  line += " total_us=" + std::to_string(rec.total_us);
  line += " queue_us=" + std::to_string(rec.queue_us);
  line += " lock_us=" + std::to_string(rec.lock_us);
  line += " exec_us=" + std::to_string(rec.exec_us);
  line += " commit_us=" + std::to_string(rec.commit_us);
  line += " rows=" + std::to_string(rec.rows);
  line += " attempts=" + std::to_string(rec.attempts);
  line += " status=" + std::to_string(rec.status);
  line += " cache=";
  line += CacheOutcomeName(static_cast<CacheOutcome>(rec.cache));
  line += " admission=";
  line += AdmissionName(static_cast<Admission>(rec.admission));
  return line;
}

void Note(const Record& rec) {
  if (!Enabled()) return;
  Ring* ring = ThisThreadRing();
  const uint64_t n = ring->next.load(std::memory_order_relaxed);
  Slot& slot = ring->slots[n % kRingSlots];

  uint64_t words[kWords];
  Pack(rec, words);
  const uint32_t v = slot.version.load(std::memory_order_relaxed);
  slot.version.store(v + 1, std::memory_order_relaxed);  // odd: in progress
  std::atomic_thread_fence(std::memory_order_release);
  for (size_t i = 0; i < kWords; ++i) {
    slot.words[i].store(words[i], std::memory_order_relaxed);
  }
  slot.version.store(v + 2, std::memory_order_release);  // even: readable
  ring->next.store(n + 1, std::memory_order_release);

  g_total_recorded.fetch_add(1, std::memory_order_relaxed);

  if (rec.total_us >= SlowThresholdMicros() ||
      rec.admission != static_cast<uint8_t>(Admission::kAdmitted)) {
    g_total_slow.fetch_add(1, std::memory_order_relaxed);
    std::string line = "slow query " + FormatRecord(rec);
    logging::Warn("slowlog", line);
    AppendSlowLine(rec.trace_id, std::move(line));
  }
}

namespace {

/// Seqlock-read one slot into *out.  False on a torn or never-written slot.
bool ReadSlot(const Slot& slot, Record* out) {
  const uint32_t v1 = slot.version.load(std::memory_order_acquire);
  if (v1 == 0 || (v1 & 1u) != 0) return false;
  uint64_t words[kWords];
  for (size_t i = 0; i < kWords; ++i) {
    words[i] = slot.words[i].load(std::memory_order_relaxed);
  }
  std::atomic_thread_fence(std::memory_order_acquire);
  if (slot.version.load(std::memory_order_relaxed) != v1) return false;
  Unpack(words, out);
  return true;
}

}  // namespace

std::vector<Record> Snapshot() {
  std::vector<Ring*> rings;
  {
    Registry& reg = GlobalRegistry();
    std::lock_guard<std::mutex> lock(reg.mu);
    rings = reg.rings;
  }
  std::vector<Record> out;
  for (Ring* ring : rings) {
    const uint64_t n = ring->next.load(std::memory_order_acquire);
    const size_t count = static_cast<size_t>(std::min<uint64_t>(n, kRingSlots));
    for (size_t i = 0; i < count; ++i) {
      Record rec;
      if (ReadSlot(ring->slots[i], &rec)) out.push_back(rec);
    }
  }
  std::sort(out.begin(), out.end(), [](const Record& a, const Record& b) {
    return a.end_wall_micros < b.end_wall_micros;
  });
  return out;
}

bool FindByTraceId(uint64_t trace_id, Record* out) {
  const std::vector<Record> all = Snapshot();
  // Newest match wins (retried/shed entries may share an id with a later
  // completion; the operator wants the final word).
  for (auto it = all.rbegin(); it != all.rend(); ++it) {
    if (it->trace_id == trace_id) {
      *out = *it;
      return true;
    }
  }
  return false;
}

std::string FlightText(size_t limit) {
  std::vector<Record> all = Snapshot();
  const size_t n = std::min(limit, all.size());
  std::string out = "flight recorder: " + std::to_string(all.size()) +
                    " readable records (showing newest " + std::to_string(n) +
                    "; " + std::to_string(TotalRecorded()) +
                    " recorded since start)\n";
  for (size_t i = all.size() - n; i < all.size(); ++i) {
    out += FormatRecord(all[i]);
    out += '\n';
  }
  return out;
}

std::string SlowLogText(size_t limit) {
  SlowLog& sl = GlobalSlowLog();
  std::lock_guard<std::mutex> lock(sl.mu);
  const size_t n = std::min(limit, sl.lines.size());
  std::string out = "slow-query log: " + std::to_string(sl.lines.size()) +
                    " entries (threshold " +
                    std::to_string(SlowThresholdMicros()) + " us; " +
                    std::to_string(TotalSlow()) + " slow since start)\n";
  for (size_t i = sl.lines.size() - n; i < sl.lines.size(); ++i) {
    out += sl.lines[i].second;
    out += '\n';
  }
  return out;
}

void NoteStall(uint64_t trace_id, const std::string& line) {
  g_total_slow.fetch_add(1, std::memory_order_relaxed);
  AppendSlowLine(trace_id, line);
}

uint64_t TotalRecorded() {
  return g_total_recorded.load(std::memory_order_relaxed);
}

uint64_t TotalSlow() { return g_total_slow.load(std::memory_order_relaxed); }

void RequestDump() {
  g_dump_requested.store(true, std::memory_order_relaxed);
}

bool ConsumePendingDump() {
  return g_dump_requested.exchange(false, std::memory_order_relaxed);
}

void ClearSlowLogForTest() {
  SlowLog& sl = GlobalSlowLog();
  std::lock_guard<std::mutex> lock(sl.mu);
  sl.lines.clear();
}

}  // namespace flight
}  // namespace mmdb
