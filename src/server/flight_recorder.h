// Flight recorder + slow-query log: always-on, lock-free visibility into
// the most recent completed requests, and a pushed, rate-limited record of
// the slow ones.
//
// Span tracing (src/util/trace.h) answers "where did the microseconds of
// one traced run go" but must be switched on and drains quickly under
// load.  The flight recorder answers the production question — "what was
// this server doing just now, and what was request 0x7f3a... specifically"
// — at all times, for ~zero cost:
//
//   * each thread that completes requests owns a fixed ring of
//     kRingSlots summary records (trace id, kind, fingerprint, the
//     queue/lock/exec/commit micros breakdown, rows, cache + admission
//     outcome).  Writing is a handful of relaxed atomic stores behind a
//     seqlock version word — no locks, no allocation, no contention;
//   * readers (SLOWLOG/FLIGHT shell commands, admin scrape endpoints, the
//     SIGUSR1 dump) walk every registered ring and drop records whose
//     version changed mid-copy — a torn read is skipped, never returned;
//   * a request whose total time crosses the slow threshold additionally
//     lands in a small mutex-guarded slow-query log and emits one
//     structured WARN line through the rate-limited src/util/log (so a
//     pathological workload cannot turn the log into the bottleneck).
//
// Gating: MMDB_TRACE=OFF disables recording entirely (the overhead-guard
// baseline in CI); anything else leaves it on.  The slow threshold comes
// from MMDB_SLOW_US (default 10ms).  Rings are process-global and never
// freed, so a reader can always walk them safely.

#ifndef MMDB_SERVER_FLIGHT_RECORDER_H_
#define MMDB_SERVER_FLIGHT_RECORDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/server/operation.h"

namespace mmdb {
namespace flight {

/// Admission outcome of a request (shed requests are recorded too — an
/// operator asking "what happened to trace X" must see rejections).
enum class Admission : uint8_t {
  kAdmitted = 0,
  kShedQueue = 1,     ///< service queue full
  kShedShutdown = 2,  ///< service stopping
};

const char* AdmissionName(Admission a);

/// One completed (or shed) request summary.  Plain POD — it is packed into
/// seven 64-bit words inside the ring slots.
struct Record {
  uint64_t trace_id = 0;
  uint64_t fingerprint = 0;      ///< statement-shape hash (kind+table+fields)
  int64_t end_wall_micros = 0;   ///< completion wall-clock (µs since epoch)
  uint32_t total_us = 0;
  uint32_t queue_us = 0;
  uint32_t lock_us = 0;
  uint32_t exec_us = 0;
  uint32_t commit_us = 0;
  uint32_t rows = 0;
  uint32_t attempts = 1;
  uint8_t kind = 0;       ///< OpKind
  uint8_t status = 0;     ///< StatusCode
  uint8_t cache = 0;      ///< CacheOutcome
  uint8_t admission = 0;  ///< Admission
};

inline constexpr size_t kRingSlots = 256;

/// Whether recording is on (first call reads MMDB_TRACE; "OFF" disables).
bool Enabled();
void SetEnabledForTest(bool enabled);

/// Requests slower than this many micros (total) enter the slow-query log.
uint64_t SlowThresholdMicros();
void SetSlowThresholdMicros(uint64_t micros);

/// Statement-shape hash for a service operation: kind + table(s) + field
/// names/ops — NOT literal values, so reoccurring shapes share a
/// fingerprint an operator can aggregate on.
uint64_t Fingerprint(const Operation& op);

/// Records one completed/shed request into the calling thread's ring (and
/// the slow log if it crossed the threshold).  Lock-free; no-op when
/// disabled.
void Note(const Record& rec);

/// Copies out every readable record from every thread's ring, newest
/// last (sorted by completion wall time).  Torn slots are skipped.
std::vector<Record> Snapshot();

/// Finds the most recent record with this trace id.  Returns false if no
/// ring holds it (evicted or never recorded).
bool FindByTraceId(uint64_t trace_id, Record* out);

/// Human/scrape text: the newest `limit` flight records, one per line.
std::string FlightText(size_t limit = 64);

/// The newest `limit` slow-query log lines (structured key=value text).
std::string SlowLogText(size_t limit = 64);

/// Appends a watchdog observation to the slow-query log (stalled worker /
/// wedged loop); `line` is the preformatted key=value text.
void NoteStall(uint64_t trace_id, const std::string& line);

/// Total records ever written (including shed entries); slow entries only.
uint64_t TotalRecorded();
uint64_t TotalSlow();

/// SIGUSR1 support: RequestDump is async-signal-safe (one relaxed store);
/// a service thread (watchdog tick / shell loop) consumes the flag and
/// performs the actual dump.
void RequestDump();
bool ConsumePendingDump();

/// Formats one record as the structured key=value line used by the slow
/// log and FlightText.
std::string FormatRecord(const Record& rec);

/// Testing hook: drops every slow-log entry (rings are append-only and
/// shared across tests; the slow log is assertable state).
void ClearSlowLogForTest();

}  // namespace flight
}  // namespace mmdb

#endif  // MMDB_SERVER_FLIGHT_RECORDER_H_
