// The unit of work a session submits to the query service: a declarative
// operation spec (no pointers into the database) plus the materialized
// result handed back.  Specs are plain values so they can cross the work
// queue between client and worker threads; tuple addresses never leave the
// lock scope that makes them safe to dereference.
//
// Reads mirror QueryBuilder (table / where / join / columns / distinct /
// order); writes address their targets by a match predicate, not by
// TupleRef, because a client-held TupleRef could dangle by the time a
// worker executes the op.

#ifndef MMDB_SERVER_OPERATION_H_
#define MMDB_SERVER_OPERATION_H_

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "src/exec/predicate.h"
#include "src/server/service_stats.h"
#include "src/storage/value.h"
#include "src/util/status.h"

namespace mmdb {

/// One conjunct by field *name* (resolved against the schema at execution
/// time, on the worker).
struct WhereClause {
  std::string field;
  CompareOp op = CompareOp::kEq;
  Value value;
};

/// Equijoin clause of a SelectSpec, with optional conjuncts on the joined
/// table.
struct JoinClause {
  std::string table;
  std::string left_field;
  std::string right_field;
  std::vector<WhereClause> where;
};

/// Read query: executes through QueryBuilder/planner under shared
/// partition locks on every involved relation.
struct SelectSpec {
  std::string table;
  std::vector<WhereClause> where;
  std::optional<JoinClause> join;
  std::vector<std::string> columns;  ///< dot-paths; empty = all driving fields
  bool distinct = false;
  bool ordered = false;
  /// EXPLAIN ANALYZE: fill OpResult::analyze with the per-operator plan
  /// tree (estimated cost vs. actual rows / OpCounters / wall time).
  bool analyze = false;
};

/// Transactional insert of one row.
struct InsertSpec {
  std::string table;
  std::vector<Value> values;
};

/// Sets `set_field` to `set_value` on every row matching `match`.
struct UpdateSpec {
  std::string table;
  WhereClause match;
  std::string set_field;
  Value set_value;
};

/// Read-modify-write: adds `delta` to integer field `field` of every row
/// matching `match`.  The read happens under the exclusive lock, so
/// concurrent increments never lose updates.
struct IncrementSpec {
  std::string table;
  WhereClause match;
  std::string field;
  int64_t delta = 1;
};

/// Deletes every row matching `match`.
struct DeleteSpec {
  std::string table;
  WhereClause match;
};

/// The variant a session submits.  Alternative order matches OpKind.
using Operation =
    std::variant<SelectSpec, InsertSpec, UpdateSpec, IncrementSpec, DeleteSpec>;

inline OpKind KindOf(const Operation& op) {
  return static_cast<OpKind>(op.index());
}

/// Where a select's rows came from (reuse cache vs. execution).
enum class CacheOutcome : uint8_t {
  kNone = 0,  ///< not a cacheable read (DML, cache off, uncacheable shape)
  kHit = 1,   ///< served from the reuse cache without locking
  kMiss = 2,  ///< cacheable shape, executed (and possibly filled)
};

inline const char* CacheOutcomeName(CacheOutcome c) {
  switch (c) {
    case CacheOutcome::kNone: return "none";
    case CacheOutcome::kHit: return "hit";
    case CacheOutcome::kMiss: return "miss";
  }
  return "?";
}

/// What the worker hands back.  Select rows are materialized Values copied
/// out while the read locks were still held — they stay valid after the
/// locks are gone, unlike tuple pointers.
struct OpResult {
  Status status;
  std::vector<std::string> columns;            ///< select: output labels
  std::vector<std::vector<Value>> rows;        ///< select: materialized rows
  std::string plan;                            ///< select: plan trace
  std::string analyze;                         ///< select: EXPLAIN ANALYZE tree
  size_t rows_affected = 0;                    ///< DML: rows written/removed
  int attempts = 1;                            ///< 1 = no deadlock retries

  /// Server-side micros breakdown, filled by the worker and shipped on the
  /// wire: where inside the server this request's time went.  exec_us
  /// excludes the lock and commit waits (total ≈ queue+lock+exec+commit).
  uint32_t queue_us = 0;   ///< Submit -> worker dequeue
  uint32_t lock_us = 0;    ///< summed lock-manager waits (all attempts)
  uint32_t exec_us = 0;    ///< execution minus lock/commit waits
  uint32_t commit_us = 0;  ///< WaitDurable (WAL fsync acknowledgement)
  CacheOutcome cache_outcome = CacheOutcome::kNone;

  bool ok() const { return status.ok(); }
};

}  // namespace mmdb

#endif  // MMDB_SERVER_OPERATION_H_
