#include "src/server/query_service.h"

#include <algorithm>
#include <future>
#include <limits>
#include <utility>

#include "src/cache/fingerprint.h"
#include "src/cache/reuse_cache.h"
#include "src/core/database.h"
#include "src/core/query.h"
#include "src/exec/select.h"
#include "src/storage/tuple.h"
#include "src/util/counters.h"
#include "src/util/trace.h"

namespace mmdb {
namespace {

/// Distinguishes the retryable abort (lock-wait timeout = presumed
/// deadlock) from terminal aborts like unique violations, which retrying
/// cannot fix.  AcquireOrDie stamps its status with this prefix.
bool IsDeadlockTimeout(const Status& s) {
  return s.code() == StatusCode::kAborted &&
         s.message().rfind("lock timeout", 0) == 0;
}

/// QueryBuilder reports ill-formed queries through the plan string.
bool IsErrorPlan(const std::string& plan) {
  return plan.rfind("error:", 0) == 0;
}

/// Adapts a (pre-validated) SelectSpec to the cache's canonical shape.
cache::QueryShape ShapeFromSpec(const SelectSpec& spec, const Relation& rel) {
  cache::QueryShape shape;
  shape.table = spec.table;
  shape.distinct = spec.distinct;
  shape.ordered = spec.ordered;
  for (const WhereClause& w : spec.where) {
    shape.where.push_back(cache::ShapeConjunct{w.field, w.op, w.value});
  }
  if (spec.join.has_value()) {
    shape.has_join = true;
    shape.join_table = spec.join->table;
    shape.join_left = spec.join->left_field;
    shape.join_right = spec.join->right_field;
    for (const WhereClause& w : spec.join->where) {
      shape.join_where.push_back(cache::ShapeConjunct{w.field, w.op, w.value});
    }
  }
  shape.columns = spec.columns;
  if (shape.columns.empty()) {
    for (const Field& f : rel.schema().fields()) {
      shape.columns.push_back(spec.table + "." + f.name);
    }
  }
  cache::NormalizeColumns(&shape);
  return shape;
}

}  // namespace

// ---- Session convenience wrappers -------------------------------------------

OpResult Session::Select(SelectSpec spec) {
  return service_->Execute(this, Operation(std::move(spec)));
}
OpResult Session::Insert(InsertSpec spec) {
  return service_->Execute(this, Operation(std::move(spec)));
}
OpResult Session::Update(UpdateSpec spec) {
  return service_->Execute(this, Operation(std::move(spec)));
}
OpResult Session::Increment(IncrementSpec spec) {
  return service_->Execute(this, Operation(std::move(spec)));
}
OpResult Session::Delete(DeleteSpec spec) {
  return service_->Execute(this, Operation(std::move(spec)));
}

// ---- Service lifecycle ------------------------------------------------------

QueryService::QueryService(Database* db, ServiceOptions options)
    : db_(db),
      options_(options),
      queue_(options.queue_depth),
      metrics_(&db->metrics()) {
  workers_.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

QueryService::~QueryService() { Shutdown(); }

void QueryService::Shutdown() {
  std::call_once(shutdown_once_, [this] {
    accepting_.store(false, std::memory_order_relaxed);
    queue_.Close();  // intake stops; workers drain what was admitted
    for (std::thread& w : workers_) w.join();
    workers_.clear();
    // Zero-worker mode (admission tests): admitted tasks never ran — fail
    // them so every accepted Submit still gets its callback exactly once.
    Task task;
    while (queue_.TryPop(&task)) {
      metrics_.started->Add();
      OpResult result;
      result.status = Status::Aborted("service shut down before execution");
      Finish(task, std::move(result));
    }
  });
}

Session* QueryService::OpenSession() {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  sessions_.emplace_back(new Session(this, next_session_id_++));
  metrics_.sessions_opened->Add();
  return sessions_.back().get();
}

void QueryService::CloseSession(Session* session) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = std::find_if(
      sessions_.begin(), sessions_.end(),
      [session](const std::unique_ptr<Session>& s) { return s.get() == session; });
  if (it != sessions_.end()) {
    sessions_.erase(it);
    metrics_.sessions_closed->Add();
  }
}

// ---- Submission -------------------------------------------------------------

Status QueryService::Submit(Session* session, Operation op, Callback done) {
  metrics_.submitted->Add();
  if (!accepting_.load(std::memory_order_relaxed)) {
    metrics_.rejected->Add();
    return Status::FailedPrecondition("query service is shut down");
  }
  Task task;
  task.session = session;
  task.op = std::move(op);
  task.done = std::move(done);
  task.latency.Restart();
  if (!queue_.TryPush(std::move(task))) {
    metrics_.rejected->Add();
    return Status::ResourceExhausted("query service queue is full");
  }
  if (session != nullptr) {
    session->submitted_.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::Ok();
}

OpResult QueryService::Execute(Session* session, Operation op) {
  auto promise = std::make_shared<std::promise<OpResult>>();
  std::future<OpResult> future = promise->get_future();
  Status s = Submit(session, std::move(op),
                    [promise](OpResult r) { promise->set_value(std::move(r)); });
  if (!s.ok()) {
    OpResult result;
    result.status = s;
    return result;
  }
  return future.get();
}

ServiceStats QueryService::Stats() const {
  return metrics_.Snapshot(queue_.size(), queue_.high_water());
}

std::string QueryService::MetricsText() const {
  // Refresh the sampled series (queue gauges, accumulated OpCounters)
  // before rendering so the scrape is point-in-time consistent.
  metrics_.Snapshot(queue_.size(), queue_.high_water());
  counters::PublishGauges(&db_->metrics());
  return db_->metrics().RenderPrometheus();
}

// ---- Workers ----------------------------------------------------------------

void QueryService::WorkerLoop(size_t index) {
  WorkerContext ctx;
  ctx.index = index;
  ctx.rng = Rng(0x5eedULL + index * 0x9E3779B97F4A7C15ULL);
  Task task;
  while (queue_.Pop(&task)) {
    metrics_.started->Add();
    // The interval from Submit to this dequeue is the queue wait; emit it
    // as a span on *this* thread (the one that paid for the waiting) and
    // feed the queue-wait histogram.
    const auto dequeued = trace::Clock::now();
    trace::RecordSpan("queue_wait", task.latency.start_time(), dequeued);
    metrics_.queue_wait->Record(
        std::chrono::duration<double, std::micro>(dequeued -
                                                  task.latency.start_time())
            .count());
    ctx.arena.Reset();  // per-task scratch
    OpResult result;
    {
      trace::Span span("execute");
      span.AddArgs(std::string("\"op\":\"") + OpKindName(KindOf(task.op)) +
                   "\"");
      result = RunWithRetry(ctx, task.op);
    }
    Finish(task, std::move(result));
    // Fold this thread's OpCounters into the process-wide accumulator per
    // completed query — not only at worker exit — so a metrics scrape
    // mid-run sees the work already done (fix for the stale-accumulator
    // window; see the fold regression test).
    counters::FoldIntoGlobal();
  }
}

void QueryService::Finish(Task& task, OpResult result) {
  metrics_.latency(KindOf(task.op)).Record(task.latency.ElapsedMicros());
  if (result.ok()) {
    metrics_.completed->Add();
  } else if (result.status.code() == StatusCode::kAborted) {
    metrics_.aborted->Add();
  } else {
    metrics_.failed->Add();
  }
  if (task.session != nullptr) {
    if (result.ok()) {
      task.session->completed_.fetch_add(1, std::memory_order_relaxed);
    } else if (result.status.code() == StatusCode::kAborted) {
      task.session->aborted_.fetch_add(1, std::memory_order_relaxed);
    } else {
      task.session->failed_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (task.done) task.done(std::move(result));
}

OpResult QueryService::RunWithRetry(WorkerContext& ctx, const Operation& op) {
  OpResult result;
  for (int attempt = 1;; ++attempt) {
    result = RunOnce(ctx, op);
    result.attempts = attempt;
    if (!IsDeadlockTimeout(result.status)) break;
    if (attempt >= options_.max_attempts) break;
    metrics_.retries->Add();
    // Capped exponential backoff with jitter: the victim waits out the
    // presumed deadlock before retrying from scratch.
    const int shift = std::min(attempt - 1, 20);
    auto backoff = std::min(options_.backoff_base * (int64_t{1} << shift),
                            options_.backoff_cap);
    const int64_t cap = std::max<int64_t>(backoff.count(), 1);
    const int64_t jittered =
        cap / 2 + static_cast<int64_t>(ctx.rng.NextBounded(
                      static_cast<uint64_t>(cap - cap / 2 + 1)));
    std::this_thread::sleep_for(std::chrono::milliseconds(jittered));
  }
  return result;
}

OpResult QueryService::RunOnce(WorkerContext& ctx, const Operation& op) {
  switch (KindOf(op)) {
    case OpKind::kSelect:
      return RunSelect(std::get<SelectSpec>(op));
    case OpKind::kInsert:
      return RunInsert(std::get<InsertSpec>(op));
    case OpKind::kUpdate:
    case OpKind::kIncrement:
    case OpKind::kDelete:
      return RunMutation(ctx, op);
  }
  OpResult result;
  result.status = Status::Internal("unknown operation kind");
  return result;
}

// ---- Reads ------------------------------------------------------------------

OpResult QueryService::RunSelect(const SelectSpec& spec) {
  OpResult out;

  // Validate names up front: QueryBuilder::Where silently drops unknown
  // fields, which a service must not do (the predicate would vanish and
  // the query return everything).
  Relation* rel = db_->GetTable(spec.table);
  if (rel == nullptr) {
    out.status = Status::NotFound("no table " + spec.table);
    return out;
  }
  for (const WhereClause& w : spec.where) {
    if (!rel->schema().FieldIndex(w.field).has_value()) {
      out.status =
          Status::NotFound("no field " + w.field + " in " + spec.table);
      return out;
    }
  }
  if (spec.join.has_value()) {
    Relation* joined = db_->GetTable(spec.join->table);
    if (joined == nullptr) {
      out.status = Status::NotFound("no table " + spec.join->table);
      return out;
    }
    for (const WhereClause& w : spec.join->where) {
      if (!joined->schema().FieldIndex(w.field).has_value()) {
        out.status = Status::NotFound("no field " + w.field + " in " +
                                      spec.join->table);
        return out;
      }
    }
  }

  // Result cache (DESIGN.md §4d): a hit is served without beginning a
  // transaction or taking any lock.  This is linearizable because writers
  // invalidate overlapping entries *before* their commit is acknowledged
  // (Transaction::Commit, while still holding the X locks): any entry
  // still present reflects every acknowledged write.
  cache::ReuseCache& rc = db_->reuse_cache();
  bool cacheable = false;
  std::string result_key;
  if (rc.enabled()) {
    const cache::QueryShape shape = ShapeFromSpec(spec, *rel);
    cacheable = cache::ColumnsCacheable(shape);
    if (cacheable) {
      result_key = "res:" + cache::FingerprintFull(shape);
      if (auto hit = rc.LookupResult(result_key)) {
        out.columns = hit->columns;
        out.rows = hit->rows;
        out.plan = hit->plan + "; cache: hit";
        if (spec.analyze) {
          out.analyze = "query(" + spec.table + ")  (cache hit: " +
                        std::to_string(out.rows.size()) +
                        " rows served from cache, 0 executed)\n";
        }
        out.rows_affected = out.rows.size();
        out.status = Status::Ok();
        return out;
      }
    }
  }

  std::unique_ptr<Transaction> txn = db_->Begin();
  txn->set_lock_timeout(options_.lock_timeout);

  // Share-lock every involved relation, in name order so concurrent
  // readers and writers cannot form cross-relation lock cycles.
  std::vector<std::string> tables{spec.table};
  if (spec.join.has_value() && spec.join->table != spec.table) {
    tables.push_back(spec.join->table);
  }
  std::sort(tables.begin(), tables.end());
  for (const std::string& t : tables) {
    Status s = txn->LockForRead(t);
    if (!s.ok()) {
      out.status = s;  // txn already aborted on lock timeout
      return out;
    }
  }

  QueryBuilder qb = db_->Query(spec.table);
  for (const WhereClause& w : spec.where) qb.Where(w.field, w.op, w.value);
  if (spec.join.has_value()) {
    qb.JoinWith(spec.join->table, spec.join->left_field,
                spec.join->right_field);
    for (const WhereClause& w : spec.join->where) {
      qb.WhereJoined(w.field, w.op, w.value);
    }
  }
  if (!spec.columns.empty()) qb.Select(spec.columns);
  if (spec.distinct) qb.Distinct();
  if (spec.ordered) qb.OrderBySelected();
  if (spec.analyze) qb.Analyze();

  QueryResult qr = qb.Run();
  if (IsErrorPlan(qr.plan)) {
    txn->Abort();
    out.status = Status::InvalidArgument(qr.plan);
    return out;
  }

  // Materialize while the read locks are still held: the TempList holds
  // raw tuple pointers, which a concurrent writer could invalidate the
  // moment the shared locks are released.
  const auto& columns = qr.rows.descriptor().columns();
  out.columns.reserve(columns.size());
  for (const ColumnRef& c : columns) out.columns.push_back(c.label);
  out.rows.reserve(qr.rows.size());
  for (size_t r = 0; r < qr.rows.size(); ++r) {
    std::vector<Value> row;
    row.reserve(columns.size());
    for (size_t c = 0; c < columns.size(); ++c) {
      row.push_back(qr.rows.GetValue(r, c));
    }
    out.rows.push_back(std::move(row));
  }
  out.plan = std::move(qr.plan);
  if (qr.analyzed) out.analyze = qr.analyze.Render();
  out.rows_affected = out.rows.size();

  // Fill the result cache while the S locks are still held (fills after
  // unlock could cache a result a concurrent committed write already made
  // stale).  The footprint is partition-precise only in the one provably
  // sound case: a single-table, single-conjunct, non-DISTINCT query on a
  // relation-globally-indexed field.  There, every write that can change
  // the *matching set* (any insert or delete — the relation has a global
  // index — and any update of the predicate field) escalates to the
  // structure X lock and so invalidates relation-wide, while content
  // updates of matching tuples hit the footprint partitions; writes to
  // other partitions provably cannot affect this entry.  Everything else
  // records an all-partitions footprint per involved relation.
  if (cacheable && rc.enabled()) {
    cache::Footprint footprint;
    bool precise = !spec.join.has_value() && spec.where.size() == 1 &&
                   !spec.distinct;
    if (precise) {
      auto f = rel->schema().FieldIndex(spec.where.front().field);
      precise = f.has_value() && rel->HasGlobalIndexKeyedOn(*f);
    }
    if (precise) {
      std::vector<uint32_t> pids;
      pids.reserve(qr.rows.size());
      for (size_t r = 0; r < qr.rows.size(); ++r) {
        Partition* p = rel->PartitionOf(qr.rows.At(r, 0));
        if (p == nullptr) {
          precise = false;
          break;
        }
        pids.push_back(p->id());
      }
      if (precise) footprint.AddPartitions(spec.table, pids);
    }
    if (!precise) {
      footprint.AddAll(spec.table);
      if (spec.join.has_value()) footprint.AddAll(spec.join->table);
    }
    cache::ResultPayload payload;
    payload.columns = out.columns;
    payload.rows = out.rows;
    payload.plan = out.plan;
    rc.FillResult(result_key, footprint, std::move(payload));
  }

  // Read-only: nothing was logged, so releasing the locks via Abort() is
  // the cheap correct exit (Commit would register the txn id with the log
  // buffer for nothing).
  txn->Abort();
  out.status = Status::Ok();
  return out;
}

// ---- Writes -----------------------------------------------------------------

OpResult QueryService::RunInsert(const InsertSpec& spec) {
  OpResult out;
  std::unique_ptr<Transaction> txn = db_->Begin();
  txn->set_lock_timeout(options_.lock_timeout);
  // Structure S + reserved-partition X (escalates to structure X only for
  // global indices / foreign keys / full relation); see Transaction::Insert.
  Status s = txn->Insert(spec.table, spec.values);
  if (!s.ok()) {
    if (txn->state() == Transaction::State::kActive) txn->Abort();
    out.status = s;
    return out;
  }
  s = txn->Commit();
  if (s.ok()) {
    // Sync durability: the insert is acknowledged only once its commit
    // marker is fsync'd (no-op when durability is off or async).
    s = db_->WaitDurable(txn->commit_lsn());
  }
  out.status = s;
  out.rows_affected = s.ok() ? 1 : 0;
  return out;
}

OpResult QueryService::RunMutation(WorkerContext& ctx, const Operation& op) {
  OpResult out;
  const OpKind kind = KindOf(op);

  // Common pieces of the three mutation specs.
  const std::string* table = nullptr;
  const WhereClause* match = nullptr;
  if (kind == OpKind::kUpdate) {
    const auto& s = std::get<UpdateSpec>(op);
    table = &s.table;
    match = &s.match;
  } else if (kind == OpKind::kIncrement) {
    const auto& s = std::get<IncrementSpec>(op);
    table = &s.table;
    match = &s.match;
  } else {
    const auto& s = std::get<DeleteSpec>(op);
    table = &s.table;
    match = &s.match;
  }

  Relation* rel = db_->GetTable(*table);
  if (rel == nullptr) {
    out.status = Status::NotFound("no table " + *table);
    return out;
  }
  auto match_field = rel->schema().FieldIndex(match->field);
  if (!match_field.has_value()) {
    out.status =
        Status::NotFound("no field " + match->field + " in " + *table);
    return out;
  }
  size_t write_field = 0;
  if (kind == OpKind::kUpdate || kind == OpKind::kIncrement) {
    const std::string& name = kind == OpKind::kUpdate
                                  ? std::get<UpdateSpec>(op).set_field
                                  : std::get<IncrementSpec>(op).field;
    auto f = rel->schema().FieldIndex(name);
    if (!f.has_value()) {
      out.status = Status::NotFound("no field " + name + " in " + *table);
      return out;
    }
    write_field = *f;
    if (kind == OpKind::kIncrement) {
      const Type t = rel->schema().fields()[write_field].type;
      if (t != Type::kInt32 && t != Type::kInt64) {
        out.status = Status::InvalidArgument("increment needs an int field");
        return out;
      }
    }
  }

  // Lock-scope decision (mirrors the policy Transaction enforces op by op):
  // partition-local DML runs under structure S + target-partition X locks;
  // the escalation cases take the structure X lock up front so the find
  // phase does not first acquire shared locks it would then have to upgrade.
  bool relation_wide;
  if (kind == OpKind::kDelete) {
    relation_wide = rel->HasGlobalIndex();
  } else {
    relation_wide = rel->schema().field(write_field).type == Type::kString ||
                    rel->HasGlobalIndexKeyedOn(write_field);
  }

  std::unique_ptr<Transaction> txn = db_->Begin();
  txn->set_lock_timeout(options_.lock_timeout);

  Status s = relation_wide ? txn->LockRelationExclusive(*table)
                           : txn->LockForRead(*table);
  if (!s.ok()) {
    out.status = s;  // txn already aborted on lock timeout
    return out;
  }

  // Find targets through the planner's access-path pick (hash lookup >
  // tree lookup > sequential scan) — DML target discovery costs the same
  // as the equivalent read — then stage their addresses in the worker's
  // scratch arena: TupleRef is trivially copyable, and the arena recycles
  // between tasks without touching the heap.
  Predicate pred;
  pred.Add(*match_field, match->op, match->value);
  AccessPath path = AccessPath::kSequentialScan;
  TempList matches = ::mmdb::Select(*rel, pred, &path);
  out.plan = std::string("dml match: ") + AccessPathName(path);
  size_t n = matches.size();
  auto* targets =
      static_cast<TupleRef*>(ctx.arena.Allocate(n * sizeof(TupleRef)));
  for (size_t i = 0; i < n; ++i) targets[i] = matches.At(i, 0);

  if (!relation_wide) {
    // Swap the partition S locks for X locks on just the partitions that
    // hold targets.  Fresh acquisitions (release-then-lock, ascending id
    // order) rather than in-place upgrades: two writers upgrading the same
    // partition would deadlock on each other's shared hold, while fresh
    // requests simply queue FIFO.  The structure S lock is kept throughout,
    // so tuples cannot relocate and partitions cannot appear or vanish in
    // the unlocked window; targets are revalidated under X below.
    std::vector<uint32_t> pids;
    pids.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      Partition* p = rel->PartitionOf(targets[i]);
      if (p != nullptr) pids.push_back(p->id());
    }
    std::sort(pids.begin(), pids.end());
    pids.erase(std::unique(pids.begin(), pids.end()), pids.end());
    for (const auto& p : rel->partitions()) {
      txn->ReleasePartitionLock(*table, p->id());
    }
    for (uint32_t pid : pids) {
      s = txn->LockPartitionExclusive(*table, pid);
      if (!s.ok()) {
        out.status = s;  // txn already aborted on lock timeout
        return out;
      }
    }
    // Revalidate: a concurrent partition-local writer may have deleted or
    // rewritten a staged target (or recycled its slot) in the window.
    size_t kept = 0;
    for (size_t i = 0; i < n; ++i) {
      Partition* p = rel->PartitionOf(targets[i]);
      if (p == nullptr ||
          p->slot_state(p->SlotOf(targets[i])) !=
              Partition::SlotState::kLive ||
          !pred.Matches(targets[i], rel->schema())) {
        continue;
      }
      targets[kept++] = targets[i];
    }
    n = kept;
  }

  for (size_t i = 0; i < n && s.ok(); ++i) {
    switch (kind) {
      case OpKind::kUpdate:
        s = txn->Update(*table, targets[i], write_field,
                        std::get<UpdateSpec>(op).set_value);
        break;
      case OpKind::kIncrement: {
        // Read-modify-write under the exclusive lock — this is where a
        // lockless service would lose updates.  Compute in 64 bits and
        // range-check: int32 + int64 delta silently wrapped before.
        const auto& inc = std::get<IncrementSpec>(op);
        const Value current =
            tuple::GetValue(targets[i], rel->schema(), write_field);
        Value next;
        if (current.type() == Type::kInt32) {
          const int64_t wide = int64_t{current.AsInt32()} + inc.delta;
          if (wide < std::numeric_limits<int32_t>::min() ||
              wide > std::numeric_limits<int32_t>::max()) {
            s = Status::InvalidArgument("increment overflows int32 field " +
                                        inc.field);
            break;
          }
          next = Value(static_cast<int32_t>(wide));
        } else {
          int64_t wide = 0;
          if (__builtin_add_overflow(current.AsInt64(), inc.delta, &wide)) {
            s = Status::InvalidArgument("increment overflows int64 field " +
                                        inc.field);
            break;
          }
          next = Value(wide);
        }
        s = txn->Update(*table, targets[i], write_field, std::move(next));
        break;
      }
      case OpKind::kDelete:
        s = txn->Delete(*table, targets[i]);
        break;
      default:
        s = Status::Internal("not a mutation");
        break;
    }
  }
  if (!s.ok()) {
    if (txn->state() == Transaction::State::kActive) txn->Abort();
    out.status = s;
    return out;
  }

  s = txn->Commit();
  if (s.ok()) {
    // Sync durability: ack only after the commit marker is fsync'd.
    s = db_->WaitDurable(txn->commit_lsn());
  }
  out.status = s;
  out.rows_affected = s.ok() ? n : 0;
  return out;
}

}  // namespace mmdb
