#include "src/server/query_service.h"

#include <algorithm>
#include <cstdio>
#include <future>
#include <limits>
#include <utility>

#include "src/cache/fingerprint.h"
#include "src/cache/reuse_cache.h"
#include "src/core/database.h"
#include "src/core/query.h"
#include "src/exec/select.h"
#include "src/server/flight_recorder.h"
#include "src/storage/tuple.h"
#include "src/util/counters.h"
#include "src/util/hash.h"
#include "src/util/trace.h"

namespace mmdb {
namespace {

/// Saturating micros -> uint32 (a breakdown field caps at ~71 minutes).
uint32_t SatMicros(double micros) {
  if (micros <= 0) return 0;
  if (micros >= static_cast<double>(std::numeric_limits<uint32_t>::max())) {
    return std::numeric_limits<uint32_t>::max();
  }
  return static_cast<uint32_t>(micros);
}

uint32_t SatCount(size_t n) {
  return n > std::numeric_limits<uint32_t>::max()
             ? std::numeric_limits<uint32_t>::max()
             : static_cast<uint32_t>(n);
}

/// Completion wall-clock in micros since the epoch (flight records use
/// wall time so an operator can line entries up with external logs).
int64_t WallMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// Distinguishes the retryable abort (lock-wait timeout = presumed
/// deadlock) from terminal aborts like unique violations, which retrying
/// cannot fix.  AcquireOrDie stamps its status with this prefix.
bool IsDeadlockTimeout(const Status& s) {
  return s.code() == StatusCode::kAborted &&
         s.message().rfind("lock timeout", 0) == 0;
}

/// QueryBuilder reports ill-formed queries through the plan string.
bool IsErrorPlan(const std::string& plan) {
  return plan.rfind("error:", 0) == 0;
}

/// Adapts a (pre-validated) SelectSpec to the cache's canonical shape.
cache::QueryShape ShapeFromSpec(const SelectSpec& spec, const Relation& rel) {
  cache::QueryShape shape;
  shape.table = spec.table;
  shape.distinct = spec.distinct;
  shape.ordered = spec.ordered;
  for (const WhereClause& w : spec.where) {
    shape.where.push_back(cache::ShapeConjunct{w.field, w.op, w.value});
  }
  if (spec.join.has_value()) {
    shape.has_join = true;
    shape.join_table = spec.join->table;
    shape.join_left = spec.join->left_field;
    shape.join_right = spec.join->right_field;
    for (const WhereClause& w : spec.join->where) {
      shape.join_where.push_back(cache::ShapeConjunct{w.field, w.op, w.value});
    }
  }
  shape.columns = spec.columns;
  if (shape.columns.empty()) {
    for (const Field& f : rel.schema().fields()) {
      shape.columns.push_back(spec.table + "." + f.name);
    }
  }
  cache::NormalizeColumns(&shape);
  return shape;
}

}  // namespace

// ---- Session convenience wrappers -------------------------------------------

OpResult Session::Select(SelectSpec spec) {
  return service_->Execute(this, Operation(std::move(spec)));
}
OpResult Session::Insert(InsertSpec spec) {
  return service_->Execute(this, Operation(std::move(spec)));
}
OpResult Session::Update(UpdateSpec spec) {
  return service_->Execute(this, Operation(std::move(spec)));
}
OpResult Session::Increment(IncrementSpec spec) {
  return service_->Execute(this, Operation(std::move(spec)));
}
OpResult Session::Delete(DeleteSpec spec) {
  return service_->Execute(this, Operation(std::move(spec)));
}

// ---- Service lifecycle ------------------------------------------------------

QueryService::QueryService(Database* db, ServiceOptions options)
    : db_(db),
      options_(options),
      queue_(options.queue_depth),
      metrics_(&db->metrics()),
      started_at_(std::chrono::steady_clock::now()) {
  if (options_.watchdog_enabled) {
    WatchdogOptions wd;
    wd.interval = options_.watchdog_interval;
    wd.deadline = options_.watchdog_deadline;
    watchdog_.reset(new Watchdog(&db->metrics(), wd));
    watchdog_->Start();
  }
  workers_.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

QueryService::~QueryService() { Shutdown(); }

void QueryService::Shutdown() {
  std::call_once(shutdown_once_, [this] {
    accepting_.store(false, std::memory_order_relaxed);
    queue_.Close();  // intake stops; workers drain what was admitted
    for (std::thread& w : workers_) w.join();
    workers_.clear();
    if (watchdog_ != nullptr) watchdog_->Stop();
    // Zero-worker mode (admission tests): admitted tasks never ran — fail
    // them so every accepted Submit still gets its callback exactly once.
    Task task;
    while (queue_.TryPop(&task)) {
      metrics_.started->Add();
      OpResult result;
      result.status = Status::Aborted("service shut down before execution");
      Finish(task, std::move(result));
    }
  });
}

Session* QueryService::OpenSession() {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  sessions_.emplace_back(new Session(this, next_session_id_++));
  metrics_.sessions_opened->Add();
  return sessions_.back().get();
}

void QueryService::CloseSession(Session* session) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = std::find_if(
      sessions_.begin(), sessions_.end(),
      [session](const std::unique_ptr<Session>& s) { return s.get() == session; });
  if (it != sessions_.end()) {
    sessions_.erase(it);
    metrics_.sessions_closed->Add();
  }
}

// ---- Submission -------------------------------------------------------------

void QueryService::NoteShed(uint64_t trace_id, uint64_t fingerprint,
                            uint8_t kind, uint8_t admission, StatusCode code) {
  if (!flight::Enabled()) return;
  flight::Record rec;
  rec.trace_id = trace_id;
  rec.fingerprint = fingerprint;
  rec.end_wall_micros = WallMicros();
  rec.attempts = 0;  // never reached a worker
  rec.kind = kind;
  rec.status = static_cast<uint8_t>(code);
  rec.admission = admission;
  flight::Note(rec);
}

Status QueryService::Submit(Session* session, Operation op, Callback done,
                            uint64_t trace_id) {
  metrics_.submitted->Add();
  if (trace_id == 0) {
    // Scramble a counter so service-assigned ids don't collide with the
    // small literal ids tests and clients tend to pick.
    trace_id = HashMix64(next_trace_.fetch_add(1, std::memory_order_relaxed) ^
                         0x6d6d64625f747261ULL);
    if (trace_id == 0) trace_id = 1;
  }
  // Fingerprint up front: the shed paths below need it after `op` has been
  // moved into the queue (or refused), and the completion path reuses it
  // so the shape is hashed exactly once per request.
  const uint8_t kind = static_cast<uint8_t>(KindOf(op));
  const uint64_t fingerprint =
      flight::Enabled() ? flight::Fingerprint(op) : 0;
  if (!accepting_.load(std::memory_order_relaxed)) {
    metrics_.rejected->Add();
    NoteShed(trace_id, fingerprint, kind,
             static_cast<uint8_t>(flight::Admission::kShedShutdown),
             StatusCode::kFailedPrecondition);
    return Status::FailedPrecondition("query service is shut down");
  }
  Task task;
  task.session = session;
  task.op = std::move(op);
  task.done = std::move(done);
  task.trace_id = trace_id;
  task.fingerprint = fingerprint;
  task.latency.Restart();
  if (!queue_.TryPush(std::move(task))) {
    metrics_.rejected->Add();
    NoteShed(trace_id, fingerprint, kind,
             static_cast<uint8_t>(flight::Admission::kShedQueue),
             StatusCode::kResourceExhausted);
    return Status::ResourceExhausted("query service queue is full");
  }
  if (session != nullptr) {
    session->submitted_.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::Ok();
}

OpResult QueryService::Execute(Session* session, Operation op,
                               uint64_t trace_id) {
  auto promise = std::make_shared<std::promise<OpResult>>();
  std::future<OpResult> future = promise->get_future();
  Status s = Submit(session, std::move(op),
                    [promise](OpResult r) { promise->set_value(std::move(r)); },
                    trace_id);
  if (!s.ok()) {
    OpResult result;
    result.status = s;
    return result;
  }
  return future.get();
}

ServiceStats QueryService::Stats() const {
  return metrics_.Snapshot(queue_.size(), queue_.high_water());
}

std::string QueryService::StatusText() const {
  const ServiceStats st = Stats();
  const double uptime_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_at_)
          .count();
  char buf[160];
  std::string out;
  out.reserve(1024);
  std::snprintf(buf, sizeof(buf), "uptime_s: %.1f\n", uptime_s);
  out += buf;
  out += std::string("role: ") + (db_->read_only() ? "replica" : "primary") +
         "\n";
  out += "workers: " + std::to_string(options_.workers) + "\n";
  out += "queue_depth: " + std::to_string(st.queue_depth) + "\n";
  out += "queue_depth_hwm: " + std::to_string(st.queue_depth_hwm) + "\n";
  out += "queue_capacity: " + std::to_string(options_.queue_depth) + "\n";
  out += "sessions_open: " +
         std::to_string(st.sessions_opened - st.sessions_closed) + "\n";
  out += "ops_submitted: " + std::to_string(st.submitted) + "\n";
  out += "ops_completed: " + std::to_string(st.completed) + "\n";
  out += "ops_rejected: " + std::to_string(st.rejected) + "\n";
  out += "ops_aborted: " + std::to_string(st.aborted) + "\n";
  out += "ops_failed: " + std::to_string(st.failed) + "\n";

  DurabilityManager* dur = db_->durability();
  if (dur != nullptr) {
    const uint64_t appended = dur->appended_lsn();
    const uint64_t durable = dur->durable_lsn();
    out += "wal_appended_lsn: " + std::to_string(appended) + "\n";
    out += "wal_durable_lsn: " + std::to_string(durable) + "\n";
    out += "wal_lag: " +
           std::to_string(appended > durable ? appended - durable : 0) + "\n";
  } else {
    out += "wal: off\n";
  }

  const cache::CacheStats cs = db_->reuse_cache().Stats();
  out += std::string("cache_enabled: ") + (cs.enabled ? "1" : "0") + "\n";
  out += "cache_entries: " + std::to_string(cs.entries) + "\n";
  out += "cache_bytes: " + std::to_string(cs.bytes) + "\n";
  out += "cache_budget_bytes: " + std::to_string(cs.budget_bytes) + "\n";
  out += "cache_hits: " + std::to_string(cs.hits) + "\n";
  out += "cache_misses: " + std::to_string(cs.misses) + "\n";

  if (watchdog_ != nullptr) {
    out += "watchdog_alerts: " + std::to_string(watchdog_->alerts()) + "\n";
    out += "watchdog_stalled_workers: " +
           std::to_string(watchdog_->stalled_workers()) + "\n";
    out += "watchdog_wedged_loops: " +
           std::to_string(watchdog_->wedged_loops()) + "\n";
  } else {
    out += "watchdog: off\n";
  }

  out += "flight_recorded: " + std::to_string(flight::TotalRecorded()) + "\n";
  out += "flight_slow: " + std::to_string(flight::TotalSlow()) + "\n";
  return out;
}

std::string QueryService::MetricsText() const {
  // Refresh the sampled series (queue gauges, accumulated OpCounters)
  // before rendering so the scrape is point-in-time consistent.
  metrics_.Snapshot(queue_.size(), queue_.high_water());
  counters::PublishGauges(&db_->metrics());
  return db_->metrics().RenderPrometheus();
}

// ---- Workers ----------------------------------------------------------------

void QueryService::WorkerLoop(size_t index) {
  WorkerContext ctx;
  ctx.index = index;
  ctx.rng = Rng(0x5eedULL + index * 0x9E3779B97F4A7C15ULL);
  Watchdog::Beat* beat =
      watchdog_ != nullptr
          ? watchdog_->RegisterWorker("worker-" + std::to_string(index))
          : nullptr;
  Task task;
  while (queue_.Pop(&task)) {
    metrics_.started->Add();
    // Enter the request context first: every span this task produces from
    // here on (queue_wait included) carries the wire-visible trace id, and
    // the lock/commit wait accumulators start from zero.
    trace::BeginRequest(task.trace_id);
    if (beat != nullptr) beat->Busy(task.trace_id);
    // The interval from Submit to this dequeue is the queue wait; emit it
    // as a span on *this* thread (the one that paid for the waiting) and
    // feed the queue-wait histogram.
    const auto dequeued = trace::Clock::now();
    trace::RecordSpan("queue_wait", task.latency.start_time(), dequeued);
    const double queue_micros =
        std::chrono::duration<double, std::micro>(dequeued -
                                                  task.latency.start_time())
            .count();
    metrics_.queue_wait->Record(queue_micros);
    ctx.arena.Reset();  // per-task scratch
    OpResult result;
    const auto exec_start = trace::Clock::now();
    {
      trace::Span span("execute");
      span.AddArgs(std::string("\"op\":\"") + OpKindName(KindOf(task.op)) +
                   "\"");
      result = RunWithRetry(ctx, task.op);
    }
    // Server-side breakdown shipped with the result: queue wait, summed
    // lock waits (every attempt), WAL-fsync wait, and exec = wall time in
    // RunWithRetry minus the waits it contains (backoff sleeps count as
    // exec — the retries are work the request cost the server).
    const double exec_micros =
        std::chrono::duration<double, std::micro>(trace::Clock::now() -
                                                  exec_start)
            .count();
    const double lock_micros =
        static_cast<double>(trace::LockWaitNanos()) / 1e3;
    const double commit_micros =
        static_cast<double>(trace::CommitWaitNanos()) / 1e3;
    result.queue_us = SatMicros(queue_micros);
    result.lock_us = SatMicros(lock_micros);
    result.commit_us = SatMicros(commit_micros);
    result.exec_us = SatMicros(exec_micros - lock_micros - commit_micros);
    Finish(task, std::move(result));
    if (beat != nullptr) beat->Idle();
    trace::BeginRequest(0);  // leave the request context
    // Fold this thread's OpCounters into the process-wide accumulator per
    // completed query — not only at worker exit — so a metrics scrape
    // mid-run sees the work already done (fix for the stale-accumulator
    // window; see the fold regression test).
    counters::FoldIntoGlobal();
  }
  if (beat != nullptr) beat->Retire();
}

void QueryService::Finish(Task& task, OpResult result) {
  const double total_micros = task.latency.ElapsedMicros();
  metrics_.latency(KindOf(task.op)).Record(total_micros);
  if (flight::Enabled()) {
    flight::Record rec;
    rec.trace_id = task.trace_id;
    rec.fingerprint = task.fingerprint != 0 ? task.fingerprint
                                            : flight::Fingerprint(task.op);
    rec.end_wall_micros = WallMicros();
    rec.total_us = SatMicros(total_micros);
    rec.queue_us = result.queue_us;
    rec.lock_us = result.lock_us;
    rec.exec_us = result.exec_us;
    rec.commit_us = result.commit_us;
    rec.rows = SatCount(result.rows_affected);
    rec.attempts = result.attempts < 0
                       ? 0
                       : static_cast<uint32_t>(result.attempts);
    rec.kind = static_cast<uint8_t>(KindOf(task.op));
    rec.status = static_cast<uint8_t>(result.status.code());
    rec.cache = static_cast<uint8_t>(result.cache_outcome);
    rec.admission = static_cast<uint8_t>(flight::Admission::kAdmitted);
    flight::Note(rec);
  }
  if (result.ok()) {
    metrics_.completed->Add();
  } else if (result.status.code() == StatusCode::kAborted) {
    metrics_.aborted->Add();
  } else {
    metrics_.failed->Add();
  }
  if (task.session != nullptr) {
    if (result.ok()) {
      task.session->completed_.fetch_add(1, std::memory_order_relaxed);
    } else if (result.status.code() == StatusCode::kAborted) {
      task.session->aborted_.fetch_add(1, std::memory_order_relaxed);
    } else {
      task.session->failed_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (task.done) task.done(std::move(result));
}

OpResult QueryService::RunWithRetry(WorkerContext& ctx, const Operation& op) {
  OpResult result;
  for (int attempt = 1;; ++attempt) {
    result = RunOnce(ctx, op);
    result.attempts = attempt;
    if (!IsDeadlockTimeout(result.status)) break;
    if (attempt >= options_.max_attempts) break;
    metrics_.retries->Add();
    // Capped exponential backoff with jitter: the victim waits out the
    // presumed deadlock before retrying from scratch.
    const int shift = std::min(attempt - 1, 20);
    auto backoff = std::min(options_.backoff_base * (int64_t{1} << shift),
                            options_.backoff_cap);
    const int64_t cap = std::max<int64_t>(backoff.count(), 1);
    const int64_t jittered =
        cap / 2 + static_cast<int64_t>(ctx.rng.NextBounded(
                      static_cast<uint64_t>(cap - cap / 2 + 1)));
    std::this_thread::sleep_for(std::chrono::milliseconds(jittered));
  }
  return result;
}

OpResult QueryService::RunOnce(WorkerContext& ctx, const Operation& op) {
  if (db_->read_only() && KindOf(op) != OpKind::kSelect) {
    OpResult result;
    result.status = Status::ReadOnly("replica is read-only until PROMOTE");
    return result;
  }
  switch (KindOf(op)) {
    case OpKind::kSelect:
      return RunSelect(std::get<SelectSpec>(op));
    case OpKind::kInsert:
      return RunInsert(std::get<InsertSpec>(op));
    case OpKind::kUpdate:
    case OpKind::kIncrement:
    case OpKind::kDelete:
      return RunMutation(ctx, op);
  }
  OpResult result;
  result.status = Status::Internal("unknown operation kind");
  return result;
}

// ---- Reads ------------------------------------------------------------------

OpResult QueryService::RunSelect(const SelectSpec& spec) {
  OpResult out;

  // Validate names up front: QueryBuilder::Where silently drops unknown
  // fields, which a service must not do (the predicate would vanish and
  // the query return everything).
  Relation* rel = db_->GetTable(spec.table);
  if (rel == nullptr) {
    out.status = Status::NotFound("no table " + spec.table);
    return out;
  }
  for (const WhereClause& w : spec.where) {
    if (!rel->schema().FieldIndex(w.field).has_value()) {
      out.status =
          Status::NotFound("no field " + w.field + " in " + spec.table);
      return out;
    }
  }
  if (spec.join.has_value()) {
    Relation* joined = db_->GetTable(spec.join->table);
    if (joined == nullptr) {
      out.status = Status::NotFound("no table " + spec.join->table);
      return out;
    }
    for (const WhereClause& w : spec.join->where) {
      if (!joined->schema().FieldIndex(w.field).has_value()) {
        out.status = Status::NotFound("no field " + w.field + " in " +
                                      spec.join->table);
        return out;
      }
    }
  }

  // Result cache (DESIGN.md §4d): a hit is served without beginning a
  // transaction or taking any lock.  This is linearizable because writers
  // invalidate overlapping entries *before* their commit is acknowledged
  // (Transaction::Commit, while still holding the X locks): any entry
  // still present reflects every acknowledged write.
  cache::ReuseCache& rc = db_->reuse_cache();
  bool cacheable = false;
  std::string result_key;
  if (rc.enabled()) {
    const cache::QueryShape shape = ShapeFromSpec(spec, *rel);
    cacheable = cache::ColumnsCacheable(shape);
    if (cacheable) {
      result_key = "res:" + cache::FingerprintFull(shape);
      if (auto hit = rc.LookupResult(result_key)) {
        out.cache_outcome = CacheOutcome::kHit;
        out.columns = hit->columns;
        out.rows = hit->rows;
        out.plan = hit->plan + "; cache: hit";
        if (spec.analyze) {
          out.analyze = "query(" + spec.table + ")  (cache hit: " +
                        std::to_string(out.rows.size()) +
                        " rows served from cache, 0 executed)\n";
        }
        out.rows_affected = out.rows.size();
        out.status = Status::Ok();
        return out;
      }
    }
  }
  // A cacheable shape that was not served above executes below: a miss.
  if (cacheable) out.cache_outcome = CacheOutcome::kMiss;

  std::unique_ptr<Transaction> txn = db_->Begin();
  txn->set_lock_timeout(options_.lock_timeout);

  // Share-lock every involved relation, in name order so concurrent
  // readers and writers cannot form cross-relation lock cycles.
  std::vector<std::string> tables{spec.table};
  if (spec.join.has_value() && spec.join->table != spec.table) {
    tables.push_back(spec.join->table);
  }
  std::sort(tables.begin(), tables.end());
  for (const std::string& t : tables) {
    Status s = txn->LockForRead(t);
    if (!s.ok()) {
      out.status = s;  // txn already aborted on lock timeout
      return out;
    }
  }

  QueryBuilder qb = db_->Query(spec.table);
  for (const WhereClause& w : spec.where) qb.Where(w.field, w.op, w.value);
  if (spec.join.has_value()) {
    qb.JoinWith(spec.join->table, spec.join->left_field,
                spec.join->right_field);
    for (const WhereClause& w : spec.join->where) {
      qb.WhereJoined(w.field, w.op, w.value);
    }
  }
  if (!spec.columns.empty()) qb.Select(spec.columns);
  if (spec.distinct) qb.Distinct();
  if (spec.ordered) qb.OrderBySelected();
  if (spec.analyze) qb.Analyze();

  QueryResult qr = qb.Run();
  if (IsErrorPlan(qr.plan)) {
    txn->Abort();
    out.status = Status::InvalidArgument(qr.plan);
    return out;
  }

  // Materialize while the read locks are still held: the TempList holds
  // raw tuple pointers, which a concurrent writer could invalidate the
  // moment the shared locks are released.
  const auto& columns = qr.rows.descriptor().columns();
  out.columns.reserve(columns.size());
  for (const ColumnRef& c : columns) out.columns.push_back(c.label);
  out.rows.reserve(qr.rows.size());
  for (size_t r = 0; r < qr.rows.size(); ++r) {
    std::vector<Value> row;
    row.reserve(columns.size());
    for (size_t c = 0; c < columns.size(); ++c) {
      row.push_back(qr.rows.GetValue(r, c));
    }
    out.rows.push_back(std::move(row));
  }
  out.plan = std::move(qr.plan);
  if (qr.analyzed) out.analyze = qr.analyze.Render();
  out.rows_affected = out.rows.size();

  // Fill the result cache while the S locks are still held (fills after
  // unlock could cache a result a concurrent committed write already made
  // stale).  The footprint is partition-precise only in the one provably
  // sound case: a single-table, single-conjunct, non-DISTINCT query on a
  // relation-globally-indexed field.  There, every write that can change
  // the *matching set* (any insert or delete — the relation has a global
  // index — and any update of the predicate field) escalates to the
  // structure X lock and so invalidates relation-wide, while content
  // updates of matching tuples hit the footprint partitions; writes to
  // other partitions provably cannot affect this entry.  Everything else
  // records an all-partitions footprint per involved relation.
  if (cacheable && rc.enabled()) {
    cache::Footprint footprint;
    bool precise = false;
    if (!spec.join.has_value() && !spec.distinct && spec.where.size() == 1) {
      // Single conjunct: the result rows ARE the conjunct's matching set,
      // so their partitions are the footprint (works for ranges too).
      auto f = rel->schema().FieldIndex(spec.where.front().field);
      if (f.has_value() && rel->HasGlobalIndexKeyedOn(*f)) {
        precise = true;
        std::vector<uint32_t> pids;
        pids.reserve(qr.rows.size());
        for (size_t r = 0; r < qr.rows.size(); ++r) {
          Partition* p = rel->PartitionOf(qr.rows.At(r, 0));
          if (p == nullptr) {
            precise = false;
            break;
          }
          pids.push_back(p->id());
        }
        if (precise) footprint.AddPartitions(spec.table, pids);
      }
    } else if (!spec.join.has_value() && !spec.distinct) {
      // Multi-conjunct: precise when any single conjunct alone is a point
      // predicate on a relation-globally-indexed field (of matching type,
      // so the index probe sees exactly what the executor's compare
      // matches).  The footprint must cover the partitions of EVERY tuple
      // matching that conjunct alone — not just the result rows: a
      // partition-local update to a tuple that matches f=v but fails
      // another conjunct can flip it INTO the result, so that partition
      // must invalidate this entry.  The f=v matching set itself is pinned
      // between relation-wide invalidations: inserts and deletes on a
      // relation with a global index, and updates of the indexed field,
      // all escalate to the structure X lock and invalidate relation-wide.
      // For the same reason an empty matching set (empty footprint) is
      // sound — a tuple can only start matching f=v via one of those
      // escalating writes.
      for (const WhereClause& w : spec.where) {
        if (w.op != CompareOp::kEq) continue;
        auto f = rel->schema().FieldIndex(w.field);
        if (!f.has_value()) continue;
        if (rel->schema().field(*f).type != w.value.type()) continue;
        TupleIndex* gi = rel->GlobalIndexKeyedOn(*f);
        if (gi == nullptr) continue;
        std::vector<TupleRef> hits;
        gi->FindAll(w.value, &hits);
        bool ok = true;
        std::vector<uint32_t> pids;
        pids.reserve(hits.size());
        for (TupleRef t : hits) {
          Partition* p = rel->PartitionOf(t);
          if (p == nullptr) {
            ok = false;
            break;
          }
          pids.push_back(p->id());
        }
        if (!ok) break;
        footprint.AddPartitions(spec.table, pids);
        precise = true;
        break;
      }
    }
    if (!precise) {
      footprint.AddAll(spec.table);
      if (spec.join.has_value()) footprint.AddAll(spec.join->table);
    }
    cache::ResultPayload payload;
    payload.columns = out.columns;
    payload.rows = out.rows;
    payload.plan = out.plan;
    rc.FillResult(result_key, footprint, std::move(payload));
  }

  // Read-only: nothing was logged, so releasing the locks via Abort() is
  // the cheap correct exit (Commit would register the txn id with the log
  // buffer for nothing).
  txn->Abort();
  out.status = Status::Ok();
  return out;
}

// ---- Writes -----------------------------------------------------------------

OpResult QueryService::RunInsert(const InsertSpec& spec) {
  OpResult out;
  std::unique_ptr<Transaction> txn = db_->Begin();
  txn->set_lock_timeout(options_.lock_timeout);
  // Structure S + reserved-partition X (escalates to structure X only for
  // global indices / foreign keys / full relation); see Transaction::Insert.
  Status s = txn->Insert(spec.table, spec.values);
  if (!s.ok()) {
    if (txn->state() == Transaction::State::kActive) txn->Abort();
    out.status = s;
    return out;
  }
  s = txn->Commit();
  if (s.ok()) {
    // Sync durability: the insert is acknowledged only once its commit
    // marker is fsync'd (no-op when durability is off or async).  The wait
    // is the request's commit_us in the breakdown.
    const auto t0 = std::chrono::steady_clock::now();
    s = db_->WaitDurable(txn->commit_lsn());
    trace::AddCommitWaitNanos(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
  }
  out.status = s;
  out.rows_affected = s.ok() ? 1 : 0;
  return out;
}

OpResult QueryService::RunMutation(WorkerContext& ctx, const Operation& op) {
  OpResult out;
  const OpKind kind = KindOf(op);

  // Common pieces of the three mutation specs.
  const std::string* table = nullptr;
  const WhereClause* match = nullptr;
  if (kind == OpKind::kUpdate) {
    const auto& s = std::get<UpdateSpec>(op);
    table = &s.table;
    match = &s.match;
  } else if (kind == OpKind::kIncrement) {
    const auto& s = std::get<IncrementSpec>(op);
    table = &s.table;
    match = &s.match;
  } else {
    const auto& s = std::get<DeleteSpec>(op);
    table = &s.table;
    match = &s.match;
  }

  Relation* rel = db_->GetTable(*table);
  if (rel == nullptr) {
    out.status = Status::NotFound("no table " + *table);
    return out;
  }
  auto match_field = rel->schema().FieldIndex(match->field);
  if (!match_field.has_value()) {
    out.status =
        Status::NotFound("no field " + match->field + " in " + *table);
    return out;
  }
  size_t write_field = 0;
  if (kind == OpKind::kUpdate || kind == OpKind::kIncrement) {
    const std::string& name = kind == OpKind::kUpdate
                                  ? std::get<UpdateSpec>(op).set_field
                                  : std::get<IncrementSpec>(op).field;
    auto f = rel->schema().FieldIndex(name);
    if (!f.has_value()) {
      out.status = Status::NotFound("no field " + name + " in " + *table);
      return out;
    }
    write_field = *f;
    if (kind == OpKind::kIncrement) {
      const Type t = rel->schema().fields()[write_field].type;
      if (t != Type::kInt32 && t != Type::kInt64) {
        out.status = Status::InvalidArgument("increment needs an int field");
        return out;
      }
    }
  }

  // Lock-scope decision (mirrors the policy Transaction enforces op by op):
  // partition-local DML runs under structure S + target-partition X locks;
  // the escalation cases take the structure X lock up front so the find
  // phase does not first acquire shared locks it would then have to upgrade.
  bool relation_wide;
  if (kind == OpKind::kDelete) {
    relation_wide = rel->HasGlobalIndex();
  } else {
    relation_wide = rel->schema().field(write_field).type == Type::kString ||
                    rel->HasGlobalIndexKeyedOn(write_field);
  }

  std::unique_ptr<Transaction> txn = db_->Begin();
  txn->set_lock_timeout(options_.lock_timeout);

  Status s = relation_wide ? txn->LockRelationExclusive(*table)
                           : txn->LockForRead(*table);
  if (!s.ok()) {
    out.status = s;  // txn already aborted on lock timeout
    return out;
  }

  // Find targets through the planner's access-path pick (hash lookup >
  // tree lookup > sequential scan) — DML target discovery costs the same
  // as the equivalent read — then stage their addresses in the worker's
  // scratch arena: TupleRef is trivially copyable, and the arena recycles
  // between tasks without touching the heap.
  Predicate pred;
  pred.Add(*match_field, match->op, match->value);
  AccessPath path = AccessPath::kSequentialScan;
  TempList matches = ::mmdb::Select(*rel, pred, &path);
  out.plan = std::string("dml match: ") + AccessPathName(path);
  size_t n = matches.size();
  auto* targets =
      static_cast<TupleRef*>(ctx.arena.Allocate(n * sizeof(TupleRef)));
  for (size_t i = 0; i < n; ++i) targets[i] = matches.At(i, 0);

  if (!relation_wide) {
    // Swap the partition S locks for X locks on just the partitions that
    // hold targets.  Fresh acquisitions (release-then-lock, ascending id
    // order) rather than in-place upgrades: two writers upgrading the same
    // partition would deadlock on each other's shared hold, while fresh
    // requests simply queue FIFO.  The structure S lock is kept throughout,
    // so tuples cannot relocate and partitions cannot appear or vanish in
    // the unlocked window; targets are revalidated under X below.
    std::vector<uint32_t> pids;
    pids.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      Partition* p = rel->PartitionOf(targets[i]);
      if (p != nullptr) pids.push_back(p->id());
    }
    std::sort(pids.begin(), pids.end());
    pids.erase(std::unique(pids.begin(), pids.end()), pids.end());
    for (const auto& p : rel->partitions()) {
      txn->ReleasePartitionLock(*table, p->id());
    }
    for (uint32_t pid : pids) {
      s = txn->LockPartitionExclusive(*table, pid);
      if (!s.ok()) {
        out.status = s;  // txn already aborted on lock timeout
        return out;
      }
    }
    // Revalidate: a concurrent partition-local writer may have deleted or
    // rewritten a staged target (or recycled its slot) in the window.
    size_t kept = 0;
    for (size_t i = 0; i < n; ++i) {
      Partition* p = rel->PartitionOf(targets[i]);
      if (p == nullptr ||
          p->slot_state(p->SlotOf(targets[i])) !=
              Partition::SlotState::kLive ||
          !pred.Matches(targets[i], rel->schema())) {
        continue;
      }
      targets[kept++] = targets[i];
    }
    n = kept;
  }

  for (size_t i = 0; i < n && s.ok(); ++i) {
    switch (kind) {
      case OpKind::kUpdate:
        s = txn->Update(*table, targets[i], write_field,
                        std::get<UpdateSpec>(op).set_value);
        break;
      case OpKind::kIncrement: {
        // Read-modify-write under the exclusive lock — this is where a
        // lockless service would lose updates.  Compute in 64 bits and
        // range-check: int32 + int64 delta silently wrapped before.
        const auto& inc = std::get<IncrementSpec>(op);
        const Value current =
            tuple::GetValue(targets[i], rel->schema(), write_field);
        Value next;
        if (current.type() == Type::kInt32) {
          const int64_t wide = int64_t{current.AsInt32()} + inc.delta;
          if (wide < std::numeric_limits<int32_t>::min() ||
              wide > std::numeric_limits<int32_t>::max()) {
            s = Status::InvalidArgument("increment overflows int32 field " +
                                        inc.field);
            break;
          }
          next = Value(static_cast<int32_t>(wide));
        } else {
          int64_t wide = 0;
          if (__builtin_add_overflow(current.AsInt64(), inc.delta, &wide)) {
            s = Status::InvalidArgument("increment overflows int64 field " +
                                        inc.field);
            break;
          }
          next = Value(wide);
        }
        s = txn->Update(*table, targets[i], write_field, std::move(next));
        break;
      }
      case OpKind::kDelete:
        s = txn->Delete(*table, targets[i]);
        break;
      default:
        s = Status::Internal("not a mutation");
        break;
    }
  }
  if (!s.ok()) {
    if (txn->state() == Transaction::State::kActive) txn->Abort();
    out.status = s;
    return out;
  }

  s = txn->Commit();
  if (s.ok()) {
    // Sync durability: ack only after the commit marker is fsync'd.
    const auto t0 = std::chrono::steady_clock::now();
    s = db_->WaitDurable(txn->commit_lsn());
    trace::AddCommitWaitNanos(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
  }
  out.status = s;
  out.rows_affected = s.ok() ? n : 0;
  return out;
}

}  // namespace mmdb
