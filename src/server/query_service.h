// QueryService: the concurrent front door of the MM-DBMS.  Many sessions
// submit declarative operations; a fixed pool of worker threads executes
// them against one shared Database, wiring the paper's partition-level
// S/X locks (Section 2.4) around every index read and DML so concurrent
// read/write sessions stay correct.
//
//   sessions --Submit/Execute--> bounded MPMC queue --> worker pool
//                                                         |  per-worker
//                                                         |  arena + rng
//                                                         v
//                                    LockManager --- Database (shared)
//
// Locking protocol.  Secondary indices are partition-local (one shard per
// partition, src/index/partitioned_index.h), so DML that touches one
// partition rewrites only that partition's shards.  Every operation holds
// the relation-structure lock at least SHARED, which freezes the partition
// set: no partition creation, no cross-partition tuple relocation.
//   * reads   take the structure lock + every partition SHARED;
//   * inserts take structure SHARED and reserve one partition EXCLUSIVE
//     (lock-free room probe, lock, re-check — Transaction::Insert);
//   * updates/deletes/increments take structure SHARED + every partition
//     SHARED to find targets via the planner's access-path pick, then drop
//     the partition S locks and freshly X-lock just the partitions holding
//     targets, in ascending id order, revalidating targets under X;
//   * escalation to structure EXCLUSIVE happens only where partition
//     locality breaks: string-field updates (relocation risk), writes
//     through a relation-global index (unique indices stay global),
//     deletes on relations with a global index, inserts needing a new
//     partition or resolving foreign keys.
// Deadlock ordering: structure lock before partition locks, partitions in
// ascending id, relations in name order.  The find phase re-acquires
// partition X locks fresh instead of upgrading S->X in place — two writers
// upgrading the same partition would deadlock on each other's shared hold,
// whereas fresh requests queue FIFO behind the lock.  The revalidation
// step makes the release window safe: a target deleted or rewritten by a
// concurrent partition-local writer is skipped, exactly as if this
// operation had run after it.
// A lock-wait timeout is treated as a deadlock: the transaction aborts and
// the worker retries the whole operation with capped exponential backoff
// (plus jitter) up to ServiceOptions::max_attempts.
//
// Admission control: the queue is bounded; Submit fails fast with
// kResourceExhausted instead of building unbounded backlog.  Shutdown
// stops intake, drains every admitted operation, and joins the workers.

#ifndef MMDB_SERVER_QUERY_SERVICE_H_
#define MMDB_SERVER_QUERY_SERVICE_H_

#include <chrono>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/server/operation.h"
#include "src/server/service_stats.h"
#include "src/server/session.h"
#include "src/server/watchdog.h"
#include "src/server/work_queue.h"
#include "src/util/arena.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace mmdb {

class Database;

struct ServiceOptions {
  /// Worker threads.  0 is permitted (nothing executes until Shutdown
  /// fails the queued ops) — useful for deterministic admission tests.
  size_t workers = 4;
  /// Work-queue capacity; Submit beyond this is rejected.
  size_t queue_depth = 256;
  /// Lock-wait budget per acquisition; expiry = presumed deadlock.
  std::chrono::milliseconds lock_timeout{100};
  /// Total tries per operation (1 initial + max_attempts-1 retries).
  int max_attempts = 8;
  /// Backoff before retry k is min(backoff_base * 2^(k-1), backoff_cap),
  /// jittered to [1/2, 1] of that by the worker's private rng.
  std::chrono::milliseconds backoff_base{1};
  std::chrono::milliseconds backoff_cap{64};
  /// Stall watchdog over the worker pool (and any registered event loop).
  /// A worker busy on one task for longer than watchdog_deadline raises a
  /// one-shot alert (metrics + slow log); an idle server never alarms.
  bool watchdog_enabled = true;
  std::chrono::milliseconds watchdog_interval{100};
  std::chrono::milliseconds watchdog_deadline{2000};
};

class QueryService {
 public:
  using Callback = std::function<void(OpResult)>;

  /// The database must outlive the service.  DDL (CreateTable/CreateIndex)
  /// is not serviced and must happen before concurrent traffic starts.
  explicit QueryService(Database* db, ServiceOptions options = {});
  ~QueryService();  // implies Shutdown()

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Opens a session.  The returned pointer is owned by the service and
  /// valid until CloseSession or service destruction.
  Session* OpenSession();

  /// Closes a session.  The caller must not have operations in flight on
  /// it.
  void CloseSession(Session* session);

  /// Asynchronous submission.  `done` runs on a worker thread exactly once
  /// if (and only if) this returns OK.  Fails with kResourceExhausted when
  /// the queue is full and kFailedPrecondition after Shutdown.
  ///
  /// `trace_id` is the request's end-to-end identity: every span, flight
  /// record, and slow-log line this operation produces carries it, so a
  /// client (or the wire protocol) can hand one in and later ask "what
  /// happened to 0x7f3a...".  0 = service assigns a fresh nonzero id.
  /// Shed submissions are recorded in the flight ring too.
  Status Submit(Session* session, Operation op, Callback done,
                uint64_t trace_id = 0);

  /// Synchronous submission: blocks the calling thread until the operation
  /// completes (or admission fails).  Must not be called from a worker
  /// callback — the waiting would deadlock the pool.
  OpResult Execute(Session* session, Operation op, uint64_t trace_id = 0);

  /// Stops intake, drains every admitted operation, joins the workers.
  /// Idempotent; also run by the destructor.
  void Shutdown();

  ServiceStats Stats() const;

  /// Prometheus text exposition of the whole process: every former
  /// ServiceStats field (as `mmdb_service_*` series), the lock manager's
  /// wait histograms, queue-depth gauges, and the accumulated OpCounters
  /// gauges.  Scrape-friendly; also behind the shell's METRICS command.
  std::string MetricsText() const;

  /// Human-readable one-screen status: uptime, queue depth / high-water,
  /// session and worker counts, WAL appended/durable lag, reuse-cache
  /// footprint, watchdog state.  Behind the shell's STATUS command and the
  /// net server's admin endpoint.
  std::string StatusText() const;

  /// The stall watchdog (null when ServiceOptions::watchdog_enabled is
  /// false).  The net server registers its event-loop beat here.
  Watchdog* watchdog() const { return watchdog_.get(); }

  const ServiceOptions& options() const { return options_; }
  Database* database() const { return db_; }

 private:
  struct Task {
    Session* session = nullptr;
    Operation op;
    Callback done;
    uint64_t trace_id = 0;
    uint64_t fingerprint = 0;  ///< statement-shape hash, computed at Submit
    Timer latency;  ///< started at Submit; spans queue wait + execution
  };

  /// Per-worker execution state: a scratch arena recycled between tasks
  /// and a private rng for backoff jitter.
  struct WorkerContext {
    size_t index = 0;
    Arena arena;
    Rng rng;
  };

  void WorkerLoop(size_t index);
  void Finish(Task& task, OpResult result);
  /// Records a shed submission in the flight ring / slow log.
  void NoteShed(uint64_t trace_id, uint64_t fingerprint, uint8_t kind,
                uint8_t admission, StatusCode code);
  OpResult RunWithRetry(WorkerContext& ctx, const Operation& op);
  OpResult RunOnce(WorkerContext& ctx, const Operation& op);
  OpResult RunSelect(const SelectSpec& spec);
  OpResult RunInsert(const InsertSpec& spec);
  /// Shared executor for update / increment / delete.
  OpResult RunMutation(WorkerContext& ctx, const Operation& op);

  Database* db_;
  ServiceOptions options_;
  BoundedWorkQueue<Task> queue_;
  ServiceMetrics metrics_;
  std::unique_ptr<Watchdog> watchdog_;
  std::chrono::steady_clock::time_point started_at_;
  std::atomic<uint64_t> next_trace_{1};
  std::vector<std::thread> workers_;

  std::mutex sessions_mu_;
  std::vector<std::unique_ptr<Session>> sessions_;
  uint64_t next_session_id_ = 1;

  std::atomic<bool> accepting_{true};
  std::once_flag shutdown_once_;
};

}  // namespace mmdb

#endif  // MMDB_SERVER_QUERY_SERVICE_H_
