#include "src/server/service_stats.h"

#include <sstream>

namespace mmdb {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kSelect: return "select";
    case OpKind::kInsert: return "insert";
    case OpKind::kUpdate: return "update";
    case OpKind::kIncrement: return "increment";
    case OpKind::kDelete: return "delete";
  }
  return "?";
}

ServiceMetrics::ServiceMetrics(MetricsRegistry* registry)
    : submitted(registry->GetCounter("mmdb_service_submitted_total")),
      rejected(registry->GetCounter("mmdb_service_rejected_total")),
      started(registry->GetCounter("mmdb_service_started_total")),
      completed(registry->GetCounter("mmdb_service_completed_total")),
      failed(registry->GetCounter("mmdb_service_failed_total")),
      aborted(registry->GetCounter("mmdb_service_aborted_total")),
      retries(registry->GetCounter("mmdb_service_retries_total")),
      sessions_opened(registry->GetCounter("mmdb_service_sessions_opened_total")),
      sessions_closed(registry->GetCounter("mmdb_service_sessions_closed_total")),
      queue_wait(registry->GetHistogram("mmdb_service_queue_wait_micros")),
      queue_depth_(registry->GetGauge("mmdb_service_queue_depth")),
      queue_depth_hwm_(registry->GetGauge("mmdb_service_queue_depth_hwm")) {
  for (size_t i = 0; i < kOpKindCount; ++i) {
    latency_[i] = registry->GetHistogram(
        std::string("mmdb_service_latency_micros{op=\"") +
        OpKindName(static_cast<OpKind>(i)) + "\"}");
  }
}

ServiceStats ServiceMetrics::Snapshot(size_t queue_depth,
                                      size_t queue_depth_hwm) const {
  queue_depth_->Set(static_cast<int64_t>(queue_depth));
  queue_depth_hwm_->Set(static_cast<int64_t>(queue_depth_hwm));
  ServiceStats s;
  s.submitted = submitted->Value();
  s.rejected = rejected->Value();
  s.started = started->Value();
  s.completed = completed->Value();
  s.failed = failed->Value();
  s.aborted = aborted->Value();
  s.retries = retries->Value();
  s.sessions_opened = sessions_opened->Value();
  s.sessions_closed = sessions_closed->Value();
  s.queue_depth = queue_depth;
  s.queue_depth_hwm = queue_depth_hwm;
  for (size_t i = 0; i < kOpKindCount; ++i) s.latency[i] = latency_[i]->Snap();
  s.queue_wait = queue_wait->Snap();
  return s;
}

std::string ServiceStats::ToString() const {
  std::ostringstream os;
  os << "submitted=" << submitted << " rejected=" << rejected
     << " started=" << started << " completed=" << completed
     << " failed=" << failed << " aborted=" << aborted
     << " retries=" << retries << "\n"
     << "sessions=" << sessions_opened << " (closed " << sessions_closed
     << ") queue_depth=" << queue_depth << " hwm=" << queue_depth_hwm << "\n";
  if (queue_wait.count > 0) {
    os << "  queue wait: " << queue_wait.ToString() << "\n";
  }
  for (size_t i = 0; i < kOpKindCount; ++i) {
    if (latency[i].count == 0) continue;
    os << "  " << OpKindName(static_cast<OpKind>(i)) << ": "
       << latency[i].ToString() << "\n";
  }
  return os.str();
}

}  // namespace mmdb
