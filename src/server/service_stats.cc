#include "src/server/service_stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

namespace mmdb {
namespace {

/// Bucket index for a microsecond value: 0 for <1µs, else 1 + floor(log2),
/// clamped to the open-ended last bucket.
size_t BucketOf(uint64_t micros) {
  if (micros == 0) return 0;
  const size_t idx = static_cast<size_t>(std::bit_width(micros));
  return std::min(idx, LatencyHistogram::kBuckets - 1);
}

/// Upper bound (µs) of bucket i.
uint64_t BucketUpper(size_t i) { return uint64_t{1} << i; }

}  // namespace

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kSelect: return "select";
    case OpKind::kInsert: return "insert";
    case OpKind::kUpdate: return "update";
    case OpKind::kIncrement: return "increment";
    case OpKind::kDelete: return "delete";
  }
  return "?";
}

void LatencyHistogram::Record(double micros) {
  const uint64_t us =
      micros <= 0 ? 0 : static_cast<uint64_t>(std::llround(micros));
  buckets_[BucketOf(us)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  total_micros_.fetch_add(us, std::memory_order_relaxed);
  uint64_t prev = max_micros_.load(std::memory_order_relaxed);
  while (us > prev &&
         !max_micros_.compare_exchange_weak(prev, us,
                                            std::memory_order_relaxed)) {
  }
}

LatencyHistogram::Snapshot LatencyHistogram::Snap() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.total_micros = total_micros_.load(std::memory_order_relaxed);
  s.max_micros = max_micros_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

double LatencyHistogram::Snapshot::MeanMicros() const {
  return count == 0 ? 0.0
                    : static_cast<double>(total_micros) /
                          static_cast<double>(count);
}

uint64_t LatencyHistogram::Snapshot::PercentileMicros(double p) const {
  if (count == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  const uint64_t rank = static_cast<uint64_t>(std::ceil(p * count));
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      // The open last bucket has no upper bound; report the observed max.
      return i + 1 == kBuckets ? max_micros : BucketUpper(i);
    }
  }
  return max_micros;
}

std::string LatencyHistogram::Snapshot::ToString() const {
  std::ostringstream os;
  os << "n=" << count << " mean=" << MeanMicros() << "us"
     << " p50<=" << PercentileMicros(0.50) << "us"
     << " p99<=" << PercentileMicros(0.99) << "us"
     << " max=" << max_micros << "us";
  return os.str();
}

ServiceStats ServiceMetrics::Snapshot(size_t queue_depth,
                                      size_t queue_depth_hwm) const {
  ServiceStats s;
  s.submitted = submitted.load(std::memory_order_relaxed);
  s.rejected = rejected.load(std::memory_order_relaxed);
  s.started = started.load(std::memory_order_relaxed);
  s.completed = completed.load(std::memory_order_relaxed);
  s.failed = failed.load(std::memory_order_relaxed);
  s.aborted = aborted.load(std::memory_order_relaxed);
  s.retries = retries.load(std::memory_order_relaxed);
  s.sessions_opened = sessions_opened.load(std::memory_order_relaxed);
  s.sessions_closed = sessions_closed.load(std::memory_order_relaxed);
  s.queue_depth = queue_depth;
  s.queue_depth_hwm = queue_depth_hwm;
  for (size_t i = 0; i < kOpKindCount; ++i) s.latency[i] = latency_[i].Snap();
  return s;
}

std::string ServiceStats::ToString() const {
  std::ostringstream os;
  os << "submitted=" << submitted << " rejected=" << rejected
     << " started=" << started << " completed=" << completed
     << " failed=" << failed << " aborted=" << aborted
     << " retries=" << retries << "\n"
     << "sessions=" << sessions_opened << " (closed " << sessions_closed
     << ") queue_depth=" << queue_depth << " hwm=" << queue_depth_hwm << "\n";
  for (size_t i = 0; i < kOpKindCount; ++i) {
    if (latency[i].count == 0) continue;
    os << "  " << OpKindName(static_cast<OpKind>(i)) << ": "
       << latency[i].ToString() << "\n";
  }
  return os.str();
}

}  // namespace mmdb
