// Service observability: operation counters and per-operation latency
// histograms for the concurrent query service.  Mirrors the spirit of the
// paper's Section 3.1 instrumentation ("recording and examining the number
// of comparisons ... to ensure that the algorithms were doing what they
// were supposed to") at the service layer: queries started / completed /
// aborted / retried, queue depth high-water mark, and latency distribution
// per operation kind, all built on the repo's steady-clock Timer.
//
// The live counters are atomics bumped by worker threads; ServiceStats is
// the plain-struct snapshot handed to callers.

#ifndef MMDB_SERVER_SERVICE_STATS_H_
#define MMDB_SERVER_SERVICE_STATS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace mmdb {

/// The operation kinds the service executes (indices into the per-kind
/// latency histograms).
enum class OpKind : uint8_t {
  kSelect = 0,
  kInsert = 1,
  kUpdate = 2,
  kIncrement = 3,
  kDelete = 4,
};
inline constexpr size_t kOpKindCount = 5;

const char* OpKindName(OpKind kind);

/// Lock-free latency histogram: power-of-two microsecond buckets
/// (bucket i counts samples in [2^(i-1), 2^i) µs; bucket 0 is < 1 µs,
/// the last bucket is open-ended).  Record() is a couple of relaxed
/// atomic increments, cheap enough to leave on in production.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 22;  // open bucket starts at ~2.1 s

  /// Plain-value snapshot of one histogram.
  struct Snapshot {
    uint64_t count = 0;
    uint64_t total_micros = 0;
    uint64_t max_micros = 0;
    std::array<uint64_t, kBuckets> buckets{};

    double MeanMicros() const;
    /// Upper-bound estimate of the p-quantile (p in [0,1]) in µs.
    uint64_t PercentileMicros(double p) const;
    /// One-line rendering: count/mean/p50/p99/max.
    std::string ToString() const;
  };

  void Record(double micros);
  Snapshot Snap() const;

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> total_micros_{0};
  std::atomic<uint64_t> max_micros_{0};
};

/// Point-in-time snapshot of the whole service, returned by
/// QueryService::Stats().
struct ServiceStats {
  uint64_t submitted = 0;   ///< Submit() calls (accepted + rejected)
  uint64_t rejected = 0;    ///< refused by admission control / shutdown
  uint64_t started = 0;     ///< dequeued by a worker
  uint64_t completed = 0;   ///< finished with an OK status
  uint64_t failed = 0;      ///< finished with a non-OK, non-abort status
  uint64_t aborted = 0;     ///< gave up after deadlock-timeout retries
  uint64_t retries = 0;     ///< individual retry attempts across all ops
  uint64_t sessions_opened = 0;
  uint64_t sessions_closed = 0;
  size_t queue_depth = 0;      ///< queued (not yet started) right now
  size_t queue_depth_hwm = 0;  ///< deepest backlog ever observed
  std::array<LatencyHistogram::Snapshot, kOpKindCount> latency{};

  /// Multi-line human-readable rendering.
  std::string ToString() const;
};

/// The live (atomic) counterpart of ServiceStats, owned by the service and
/// bumped from worker and client threads.
class ServiceMetrics {
 public:
  std::atomic<uint64_t> submitted{0};
  std::atomic<uint64_t> rejected{0};
  std::atomic<uint64_t> started{0};
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> failed{0};
  std::atomic<uint64_t> aborted{0};
  std::atomic<uint64_t> retries{0};
  std::atomic<uint64_t> sessions_opened{0};
  std::atomic<uint64_t> sessions_closed{0};

  LatencyHistogram& latency(OpKind kind) {
    return latency_[static_cast<size_t>(kind)];
  }

  /// Queue depth / high-water are owned by the queue; the caller passes
  /// them in.
  ServiceStats Snapshot(size_t queue_depth, size_t queue_depth_hwm) const;

 private:
  std::array<LatencyHistogram, kOpKindCount> latency_;
};

}  // namespace mmdb

#endif  // MMDB_SERVER_SERVICE_STATS_H_
