// Service observability: operation counters and per-operation latency
// histograms for the concurrent query service.  Mirrors the spirit of the
// paper's Section 3.1 instrumentation ("recording and examining the number
// of comparisons ... to ensure that the algorithms were doing what they
// were supposed to") at the service layer: queries started / completed /
// aborted / retried, queue depth high-water mark, and latency distribution
// per operation kind.
//
// All live series are owned by the Database's MetricsRegistry under
// `mmdb_service_*` names, so the Prometheus endpoint and the ServiceStats
// snapshot read the same atomics; ServiceMetrics is just the cached-pointer
// view workers bump without a registry lookup.  ServiceStats remains the
// plain-struct snapshot handed to callers.

#ifndef MMDB_SERVER_SERVICE_STATS_H_
#define MMDB_SERVER_SERVICE_STATS_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "src/util/metrics.h"

namespace mmdb {

/// The operation kinds the service executes (indices into the per-kind
/// latency histograms).
enum class OpKind : uint8_t {
  kSelect = 0,
  kInsert = 1,
  kUpdate = 2,
  kIncrement = 3,
  kDelete = 4,
};
inline constexpr size_t kOpKindCount = 5;

const char* OpKindName(OpKind kind);

/// Point-in-time snapshot of the whole service, returned by
/// QueryService::Stats().
struct ServiceStats {
  uint64_t submitted = 0;   ///< Submit() calls (accepted + rejected)
  uint64_t rejected = 0;    ///< refused by admission control / shutdown
  uint64_t started = 0;     ///< dequeued by a worker
  uint64_t completed = 0;   ///< finished with an OK status
  uint64_t failed = 0;      ///< finished with a non-OK, non-abort status
  uint64_t aborted = 0;     ///< gave up after deadlock-timeout retries
  uint64_t retries = 0;     ///< individual retry attempts across all ops
  uint64_t sessions_opened = 0;
  uint64_t sessions_closed = 0;
  size_t queue_depth = 0;      ///< queued (not yet started) right now
  size_t queue_depth_hwm = 0;  ///< deepest backlog ever observed
  std::array<LatencyHistogram::Snapshot, kOpKindCount> latency{};
  LatencyHistogram::Snapshot queue_wait{};  ///< Submit -> worker dequeue

  /// Multi-line human-readable rendering.
  std::string ToString() const;
};

/// The live counterpart of ServiceStats: cached pointers into the
/// registry's `mmdb_service_*` series, bumped from worker and client
/// threads.  The registry must outlive this object.
class ServiceMetrics {
 public:
  explicit ServiceMetrics(MetricsRegistry* registry);

  Counter* submitted;
  Counter* rejected;
  Counter* started;
  Counter* completed;
  Counter* failed;
  Counter* aborted;
  Counter* retries;
  Counter* sessions_opened;
  Counter* sessions_closed;
  LatencyHistogram* queue_wait;

  LatencyHistogram& latency(OpKind kind) {
    return *latency_[static_cast<size_t>(kind)];
  }

  /// Queue depth / high-water are owned by the queue; the caller passes
  /// them in.  Also publishes them to the registry's gauges so a metrics
  /// scrape sees the same numbers.
  ServiceStats Snapshot(size_t queue_depth, size_t queue_depth_hwm) const;

 private:
  std::array<LatencyHistogram*, kOpKindCount> latency_{};
  Gauge* queue_depth_;
  Gauge* queue_depth_hwm_;
};

}  // namespace mmdb

#endif  // MMDB_SERVER_SERVICE_STATS_H_
