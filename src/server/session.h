// Session: one client's handle on the query service.  A session carries
// per-session transaction statistics (every submitted op runs as its own
// transaction on a worker; the session is how a client's work is grouped
// and accounted) and offers blocking convenience wrappers over
// QueryService::Execute.
//
// Sessions are created and owned by the service (OpenSession /
// CloseSession) and may be driven from exactly one client thread at a
// time; different sessions are fully independent and concurrent.

#ifndef MMDB_SERVER_SESSION_H_
#define MMDB_SERVER_SESSION_H_

#include <atomic>
#include <cstdint>

#include "src/server/operation.h"

namespace mmdb {

class QueryService;

class Session {
 public:
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  uint64_t id() const { return id_; }

  /// Per-session accounting, maintained by the service's workers.
  struct Counts {
    uint64_t submitted = 0;
    uint64_t completed = 0;  ///< finished OK
    uint64_t aborted = 0;    ///< gave up after deadlock-timeout retries
    uint64_t failed = 0;     ///< other non-OK outcomes
  };
  Counts counts() const {
    return Counts{submitted_.load(std::memory_order_relaxed),
                  completed_.load(std::memory_order_relaxed),
                  aborted_.load(std::memory_order_relaxed),
                  failed_.load(std::memory_order_relaxed)};
  }

  // Blocking convenience wrappers: submit and wait for the result.
  OpResult Select(SelectSpec spec);
  OpResult Insert(InsertSpec spec);
  OpResult Update(UpdateSpec spec);
  OpResult Increment(IncrementSpec spec);
  OpResult Delete(DeleteSpec spec);

 private:
  friend class QueryService;
  Session(QueryService* service, uint64_t id) : service_(service), id_(id) {}

  QueryService* service_;
  uint64_t id_;
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> aborted_{0};
  std::atomic<uint64_t> failed_{0};
};

}  // namespace mmdb

#endif  // MMDB_SERVER_SESSION_H_
