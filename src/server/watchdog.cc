#include "src/server/watchdog.h"

#include <cinttypes>
#include <cstdio>

#include "src/server/flight_recorder.h"
#include "src/util/log.h"
#include "src/util/metrics.h"

namespace mmdb {

int64_t Watchdog::Beat::NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Watchdog::Watchdog(MetricsRegistry* registry, WatchdogOptions options)
    : options_(options),
      checks_total_(registry->GetCounter("mmdb_watchdog_checks_total")),
      alerts_total_(registry->GetCounter("mmdb_watchdog_alerts_total")),
      stalled_gauge_(registry->GetGauge("mmdb_watchdog_stalled_workers")),
      wedged_gauge_(registry->GetGauge("mmdb_watchdog_wedged_loops")) {}

Watchdog::~Watchdog() { Stop(); }

Watchdog::Beat* Watchdog::Register(Beat::Kind kind, std::string name) {
  std::lock_guard<std::mutex> lock(beats_mu_);
  beats_.emplace_back(new Beat(kind, std::move(name)));
  return beats_.back().get();
}

Watchdog::Beat* Watchdog::RegisterWorker(std::string name) {
  return Register(Beat::Kind::kWork, std::move(name));
}

Watchdog::Beat* Watchdog::RegisterLoop(std::string name) {
  Beat* beat = Register(Beat::Kind::kLoop, std::move(name));
  beat->Pulse();  // armed from "now", not from the epoch
  return beat;
}

void Watchdog::Start() {
  std::lock_guard<std::mutex> lock(run_mu_);
  if (thread_.joinable()) return;
  stop_ = false;
  thread_ = std::thread([this] { ThreadMain(); });
}

void Watchdog::Stop() {
  {
    std::lock_guard<std::mutex> lock(run_mu_);
    if (!thread_.joinable()) return;
    stop_ = true;
    run_cv_.notify_all();
  }
  thread_.join();
}

void Watchdog::ThreadMain() {
  std::unique_lock<std::mutex> lock(run_mu_);
  for (;;) {
    if (run_cv_.wait_for(lock, options_.interval, [this] { return stop_; })) {
      return;
    }
    lock.unlock();
    CheckNow();
    lock.lock();
  }
}

void Watchdog::CheckNow() {
  checks_total_->Add();

  // A SIGUSR1 dump request is serviced here: the signal handler only sets
  // a flag (async-signal-safe); this thread does the real work.
  if (flight::ConsumePendingDump()) {
    logging::Info("flight", "dump requested (SIGUSR1)");
    logging::Info("flight", flight::SlowLogText());
    logging::Info("flight", flight::FlightText());
  }

  const int64_t now = Beat::NowNanos();
  const int64_t deadline_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(options_.deadline)
          .count();

  size_t stalled = 0;
  size_t wedged = 0;
  std::lock_guard<std::mutex> lock(beats_mu_);
  for (const auto& beat : beats_) {
    if (!beat->active_.load(std::memory_order_acquire)) {
      beat->alerted = false;
      continue;
    }
    bool over = false;
    int64_t age_ns = 0;
    if (beat->kind_ == Beat::Kind::kWork) {
      if (beat->busy_.load(std::memory_order_acquire)) {
        age_ns = now - beat->stamp_ns_.load(std::memory_order_acquire);
        over = age_ns > deadline_ns;
      }
      if (over) ++stalled;
    } else {
      age_ns = now - beat->stamp_ns_.load(std::memory_order_acquire);
      over = age_ns > deadline_ns;
      if (over) ++wedged;
    }

    if (over && !beat->alerted) {
      beat->alerted = true;
      alerts_total_->Add();
      alerts_.fetch_add(1, std::memory_order_relaxed);
      const uint64_t trace_id =
          beat->trace_id_.load(std::memory_order_relaxed);
      char line[192];
      std::snprintf(line, sizeof(line),
                    "%s %s for %" PRId64 " ms (deadline %" PRId64
                    " ms) trace=0x%llx",
                    beat->name_.c_str(),
                    beat->kind_ == Beat::Kind::kWork ? "stalled" : "wedged",
                    age_ns / 1'000'000,
                    static_cast<int64_t>(options_.deadline.count()),
                    static_cast<unsigned long long>(trace_id));
      logging::Error("watchdog", line);
      flight::NoteStall(trace_id, std::string("watchdog ") + line);
    } else if (!over && beat->alerted) {
      beat->alerted = false;
      logging::Info("watchdog", beat->name_ + " recovered");
    }
  }
  stalled_.store(stalled, std::memory_order_relaxed);
  wedged_.store(wedged, std::memory_order_relaxed);
  stalled_gauge_->Set(static_cast<int64_t>(stalled));
  wedged_gauge_->Set(static_cast<int64_t>(wedged));
}

}  // namespace mmdb
