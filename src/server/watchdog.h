// Watchdog: detects stalled workers and wedged event loops and *reports*
// them (metrics + slow-query log + ERROR line) instead of letting the
// process die silently or hang unobserved.
//
// The monitored threads publish heartbeats through Beat objects — a few
// relaxed atomic stores per unit of work, cheap enough for the hottest
// paths:
//
//   * a WORK beat brackets request execution: Busy(trace_id) when a worker
//     picks a task up, Idle() when it finishes.  A worker busy on the same
//     task for longer than the deadline is *stalled* (typically parked in
//     a lock-manager wait or wedged in an operator);
//   * a LOOP beat is pulsed every loop iteration (net::Server's epoll
//     loop).  A pulse older than the deadline while the beat is active
//     means the loop is *wedged* — it is not even reaching its top.
//
// An idle worker (waiting in the queue Pop) is not busy, so an idle server
// never alarms.  Alerts are edge-triggered: one alert when a beat crosses
// the deadline, re-armed only after it recovers — the watchdog itself can
// never flood the log (and the slow-log line carries the stuck request's
// trace id, linking the alert back to the flight recorder).
//
// Exported series: mmdb_watchdog_checks_total, mmdb_watchdog_alerts_total,
// mmdb_watchdog_stalled_workers (gauge), mmdb_watchdog_wedged_loops
// (gauge).

#ifndef MMDB_SERVER_WATCHDOG_H_
#define MMDB_SERVER_WATCHDOG_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace mmdb {

class MetricsRegistry;
class Counter;
class Gauge;

struct WatchdogOptions {
  /// Check cadence.
  std::chrono::milliseconds interval{100};
  /// A beat busy/stale for longer than this raises an alert.
  std::chrono::milliseconds deadline{2000};
};

class Watchdog {
 public:
  /// One monitored thread's heartbeat.  Registered once, owned by the
  /// watchdog forever (threads may exit; Retire() deactivates).
  class Beat {
   public:
    /// WORK beats: entering / leaving a unit of work.
    void Busy(uint64_t trace_id) {
      trace_id_.store(trace_id, std::memory_order_relaxed);
      stamp_ns_.store(NowNanos(), std::memory_order_release);
      busy_.store(true, std::memory_order_release);
    }
    void Idle() {
      busy_.store(false, std::memory_order_release);
      trace_id_.store(0, std::memory_order_relaxed);
    }

    /// LOOP beats: "I reached the top of my loop again."
    void Pulse() { stamp_ns_.store(NowNanos(), std::memory_order_release); }

    /// Deactivates the beat (thread exiting); never alarms afterwards.
    void Retire() { active_.store(false, std::memory_order_release); }

    /// Re-activates a retired beat, armed from now (restarted loop).
    void Resume() {
      stamp_ns_.store(NowNanos(), std::memory_order_release);
      busy_.store(false, std::memory_order_release);
      active_.store(true, std::memory_order_release);
    }

    const std::string& name() const { return name_; }

   private:
    friend class Watchdog;
    enum class Kind : uint8_t { kWork, kLoop };

    Beat(Kind kind, std::string name) : kind_(kind), name_(std::move(name)) {}
    static int64_t NowNanos();

    const Kind kind_;
    const std::string name_;
    std::atomic<int64_t> stamp_ns_{0};   ///< busy-since (work) / last pulse
    std::atomic<uint64_t> trace_id_{0};  ///< work beats: the stuck request
    std::atomic<bool> busy_{false};      ///< work beats only
    std::atomic<bool> active_{true};
    bool alerted = false;  ///< watchdog-thread-only: edge trigger state
  };

  Watchdog(MetricsRegistry* registry, WatchdogOptions options);
  ~Watchdog();  // implies Stop()

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Registers a heartbeat for a worker thread / an event loop.  The
  /// returned Beat stays valid for the watchdog's lifetime.
  Beat* RegisterWorker(std::string name);
  Beat* RegisterLoop(std::string name);

  /// Starts / stops the checker thread.  Start is idempotent.
  void Start();
  void Stop();

  /// Runs one check pass synchronously (deterministic tests).
  void CheckNow();

  uint64_t alerts() const { return alerts_.load(std::memory_order_relaxed); }
  /// Currently-over-deadline beats, as of the last check pass.
  size_t stalled_workers() const {
    return stalled_.load(std::memory_order_relaxed);
  }
  size_t wedged_loops() const {
    return wedged_.load(std::memory_order_relaxed);
  }

  const WatchdogOptions& options() const { return options_; }

 private:
  Beat* Register(Beat::Kind kind, std::string name);
  void ThreadMain();

  WatchdogOptions options_;
  Counter* checks_total_;
  Counter* alerts_total_;
  Gauge* stalled_gauge_;
  Gauge* wedged_gauge_;

  std::mutex beats_mu_;
  std::vector<std::unique_ptr<Beat>> beats_;

  std::atomic<uint64_t> alerts_{0};
  std::atomic<size_t> stalled_{0};
  std::atomic<size_t> wedged_{0};

  std::mutex run_mu_;
  std::condition_variable run_cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace mmdb

#endif  // MMDB_SERVER_WATCHDOG_H_
