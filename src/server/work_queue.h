// Bounded MPMC work queue for the query service (mutex + condition
// variable; the queue hands whole operations between session threads and
// workers, so a lock-free design would buy nothing over the Database's own
// locking costs).
//
// Admission control is the point: TryPush never blocks and fails when the
// queue is at capacity, so the service can reject work with a Status
// instead of building an unbounded backlog.  Close() stops intake while
// letting consumers drain what was already admitted — the graceful-shutdown
// half of the contract.

#ifndef MMDB_SERVER_WORK_QUEUE_H_
#define MMDB_SERVER_WORK_QUEUE_H_

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace mmdb {

template <typename T>
class BoundedWorkQueue {
 public:
  explicit BoundedWorkQueue(size_t capacity)
      : capacity_(std::max<size_t>(1, capacity)) {}

  BoundedWorkQueue(const BoundedWorkQueue&) = delete;
  BoundedWorkQueue& operator=(const BoundedWorkQueue&) = delete;

  /// Non-blocking enqueue.  Returns false if the queue is full (admission
  /// control) or closed (shutdown).
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      high_water_ = std::max(high_water_, items_.size());
    }
    cv_.notify_one();
    return true;
  }

  /// Blocking dequeue.  Returns false only when the queue is closed *and*
  /// drained — consumers finish every admitted item before exiting.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Non-blocking dequeue (shutdown cleanup when no consumers exist).
  bool TryPop(T* out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Stops intake; queued items remain poppable.  Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  /// Deepest the queue has ever been (service metric).
  size_t high_water() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_water_;
  }

  size_t capacity() const { return capacity_; }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  size_t high_water_ = 0;
  bool closed_ = false;
};

}  // namespace mmdb

#endif  // MMDB_SERVER_WORK_QUEUE_H_
