#include "src/storage/catalog.h"

namespace mmdb {

Relation* Catalog::CreateRelation(const std::string& name, Schema schema,
                                  Relation::Options options) {
  if (relations_.contains(name)) return nullptr;
  auto rel = std::make_unique<Relation>(name, std::move(schema), options);
  Relation* raw = rel.get();
  relations_[name] = std::move(rel);
  return raw;
}

Relation* Catalog::Get(const std::string& name) const {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : it->second.get();
}

Status Catalog::Drop(const std::string& name) {
  auto it = relations_.find(name);
  if (it == relations_.end()) return Status::NotFound("no relation " + name);
  for (const auto& [other_name, other] : relations_) {
    if (other_name == name) continue;
    for (const ForeignKeyDecl& fk : other->foreign_keys()) {
      if (fk.target == it->second.get()) {
        return Status::FailedPrecondition(
            "relation " + other_name + " holds tuple pointers into " + name);
      }
    }
  }
  relations_.erase(it);
  return Status::Ok();
}

std::vector<std::string> Catalog::List() const {
  std::vector<std::string> out;
  out.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) out.push_back(name);
  return out;
}

}  // namespace mmdb
