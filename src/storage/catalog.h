// Catalog: name -> relation registry owning all base relations.

#ifndef MMDB_STORAGE_CATALOG_H_
#define MMDB_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/storage/relation.h"
#include "src/util/status.h"

namespace mmdb {

class Catalog {
 public:
  /// Creates a relation; fails with kAlreadyExists on a name collision.
  /// Returns the relation (owned by the catalog) or nullptr on failure.
  Relation* CreateRelation(const std::string& name, Schema schema,
                           Relation::Options options = {});

  /// Looks up by name; nullptr if absent.
  Relation* Get(const std::string& name) const;

  /// Drops a relation.  Fails if another relation declares a foreign key
  /// into it (dangling tuple pointers would result).
  Status Drop(const std::string& name);

  /// All relation names, sorted.
  std::vector<std::string> List() const;

  size_t size() const { return relations_.size(); }

 private:
  std::map<std::string, std::unique_ptr<Relation>> relations_;
};

}  // namespace mmdb

#endif  // MMDB_STORAGE_CATALOG_H_
