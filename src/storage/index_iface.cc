#include "src/storage/index_iface.h"

namespace mmdb {

const char* IndexKindName(IndexKind kind) {
  switch (kind) {
    case IndexKind::kArray: return "Array";
    case IndexKind::kAvlTree: return "AVL Tree";
    case IndexKind::kBTree: return "B Tree";
    case IndexKind::kTTree: return "T Tree";
    case IndexKind::kChainedBucketHash: return "Chained Bucket Hash";
    case IndexKind::kExtendibleHash: return "Extendible Hash";
    case IndexKind::kLinearHash: return "Linear Hash";
    case IndexKind::kModifiedLinearHash: return "Modified Linear Hash";
    case IndexKind::kBPlusTree: return "B+ Tree";
  }
  return "?";
}

bool IndexKindOrdered(IndexKind kind) {
  switch (kind) {
    case IndexKind::kArray:
    case IndexKind::kAvlTree:
    case IndexKind::kBTree:
    case IndexKind::kTTree:
    case IndexKind::kBPlusTree:
      return true;
    case IndexKind::kChainedBucketHash:
    case IndexKind::kExtendibleHash:
    case IndexKind::kLinearHash:
    case IndexKind::kModifiedLinearHash:
      return false;
  }
  return false;
}

}  // namespace mmdb
