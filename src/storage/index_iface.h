// Abstract index interface seen by the storage layer.
//
// Section 2.1: "all access to a relation is through an index", so a Relation
// maintains a set of indices and keeps them consistent on insert / delete /
// update.  The concrete structures (T Tree, hashes, ...) live in src/index;
// the storage layer only needs the maintenance surface below.

#ifndef MMDB_STORAGE_INDEX_IFACE_H_
#define MMDB_STORAGE_INDEX_IFACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/storage/value.h"

namespace mmdb {

class KeyOps;  // defined in src/index/key_ops.h

/// The eight index structures studied in Section 3.2, in paper order, plus
/// the B+ Tree that footnote 3 dismisses ("uses more storage than the
/// B Tree and does not perform any better in main memory") — included so
/// the footnote's comparison is reproducible.
enum class IndexKind : uint8_t {
  kArray,
  kAvlTree,
  kBTree,
  kTTree,
  kChainedBucketHash,
  kExtendibleHash,
  kLinearHash,
  kModifiedLinearHash,
  kBPlusTree,
};

/// Human-readable structure name ("T Tree", "Linear Hash", ...).
const char* IndexKindName(IndexKind kind);

/// True for the order-preserving structures (array + trees).
bool IndexKindOrdered(IndexKind kind);

/// Maintenance interface every index implements.  Indices store tuple
/// pointers only (Section 2.2); keys are extracted through KeyOps.
class TupleIndex {
 public:
  virtual ~TupleIndex() = default;

  virtual IndexKind kind() const = 0;
  virtual const KeyOps& key_ops() const = 0;

  /// Adds a tuple.  Returns false if the index is unique and an equal key is
  /// already present (the tuple is not added).
  virtual bool Insert(TupleRef t) = 0;

  /// Removes this exact tuple pointer (not merely any equal key).
  /// Returns false if the pointer is not in the index.
  virtual bool Erase(TupleRef t) = 0;

  /// Returns some tuple whose key equals `key`, or nullptr.
  virtual TupleRef Find(const Value& key) const = 0;

  /// Appends every tuple whose key equals `key` to *out.
  virtual void FindAll(const Value& key, std::vector<TupleRef>* out) const = 0;

  /// Number of tuples currently indexed.
  virtual size_t size() const = 0;

  /// Total bytes of memory the structure occupies (nodes + directories +
  /// control), for the Section 3.2.2 storage-cost measurements.
  virtual size_t StorageBytes() const = 0;

  /// Bulk-load bracket: Insert() calls between BeginBulk() and EndBulk()
  /// may defer structural maintenance (the array index appends then sorts
  /// once — the Sort Merge build discipline).  Default: no-op.
  virtual void BeginBulk() {}
  virtual void EndBulk() {}

  /// True for partition-local composites (one index instance per relation
  /// partition, see src/index/partitioned_index.h).  The transaction layer
  /// keys its lock-scope policy off this: a relation whose indices are all
  /// partition-local can run DML under per-partition X locks; any
  /// relation-global index forces the relation-structure X lock.
  virtual bool partition_local() const { return false; }

  /// Notification that the owning relation grew a new partition.  Delivered
  /// only to attached indices, always under the relation-structure X lock
  /// (partition creation is a structure change).  Default: no-op.
  virtual void OnPartitionAdded(uint32_t partition_id) { (void)partition_id; }

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  bool unique() const { return unique_; }
  void set_unique(bool unique) { unique_ = unique; }

  /// Schema field numbers this index is keyed on (metadata used by the
  /// relation's update path and the planner's access-path selection).
  const std::vector<size_t>& key_fields() const { return key_fields_; }
  void set_key_fields(std::vector<size_t> fields) {
    key_fields_ = std::move(fields);
  }
  bool KeyedOnField(size_t field) const {
    for (size_t f : key_fields_) {
      if (f == field) return true;
    }
    return false;
  }

 private:
  std::string name_;
  bool unique_ = false;
  std::vector<size_t> key_fields_;
};

}  // namespace mmdb

#endif  // MMDB_STORAGE_INDEX_IFACE_H_
