#include "src/storage/partition.h"

#include <cassert>
#include <cstring>

namespace mmdb {

Partition::Partition(uint32_t id, const Schema* schema, const Options& options)
    : id_(id),
      schema_(schema),
      slot_capacity_(options.slot_capacity),
      stride_(schema->tuple_bytes() < 8 ? 8 : schema->tuple_bytes()),
      heap_bytes_(options.heap_bytes),
      slots_(new std::byte[size_t{slot_capacity_} * stride_]),
      heap_(heap_bytes_ > 0 ? new std::byte[heap_bytes_] : nullptr),
      states_(slot_capacity_, SlotState::kFree) {
  free_slots_.store(slot_capacity_, std::memory_order_relaxed);
}

size_t Partition::HeapNeeded(const std::vector<Value>& values) const {
  size_t need = 0;
  const size_t n = std::min(values.size(), schema_->field_count());
  for (size_t i = 0; i < n; ++i) {
    if (schema_->field(i).type == Type::kString &&
        values[i].type() == Type::kString && !values[i].AsString().empty()) {
      need += sizeof(uint32_t) + values[i].AsString().size();
    }
  }
  return need;
}

bool Partition::HasRoomFor(const std::vector<Value>& values) const {
  if (free_slots_.load(std::memory_order_relaxed) == 0) return false;
  return heap_used_.load(std::memory_order_relaxed) + HeapNeeded(values) <=
         heap_bytes_;
}

std::byte* Partition::HeapAlloc(size_t n) {
  const size_t used = heap_used_.load(std::memory_order_relaxed);
  if (used + n > heap_bytes_) return nullptr;
  std::byte* out = heap_.get() + used;
  heap_used_.store(used + n, std::memory_order_relaxed);
  return out;
}

bool Partition::WriteField(std::byte* rec, size_t i, const Value& v) {
  const size_t off = schema_->offset(i);
  switch (schema_->field(i).type) {
    case Type::kInt32: {
      int32_t x = v.type() == Type::kInt64 ? static_cast<int32_t>(v.AsInt64())
                                           : v.AsInt32();
      std::memcpy(rec + off, &x, sizeof(x));
      return true;
    }
    case Type::kInt64: {
      int64_t x = v.type() == Type::kInt32 ? v.AsInt32() : v.AsInt64();
      std::memcpy(rec + off, &x, sizeof(x));
      return true;
    }
    case Type::kDouble: {
      double x = v.AsDouble();
      std::memcpy(rec + off, &x, sizeof(x));
      return true;
    }
    case Type::kString: {
      const std::string& s = v.AsString();
      const std::byte* blob = nullptr;
      if (!s.empty()) {
        std::byte* b = HeapAlloc(sizeof(uint32_t) + s.size());
        if (b == nullptr) return false;
        uint32_t len = static_cast<uint32_t>(s.size());
        std::memcpy(b, &len, sizeof(len));
        std::memcpy(b + sizeof(len), s.data(), s.size());
        blob = b;
      }
      std::memcpy(rec + off, &blob, sizeof(blob));
      return true;
    }
    case Type::kPointer: {
      TupleRef p = v.type() == Type::kPointer ? v.AsPointer() : nullptr;
      std::memcpy(rec + off, &p, sizeof(p));
      return true;
    }
  }
  return false;
}

TupleRef Partition::Insert(const std::vector<Value>& values) {
  assert(values.size() == schema_->field_count());
  if (!HasRoomFor(values)) return nullptr;
  uint32_t slot;
  for (;;) {
    if (!free_list_.empty()) {
      slot = free_list_.back();
      free_list_.pop_back();
      // InsertIntoSlot may have claimed this slot out of band; skip it.
      if (states_[slot] != SlotState::kFree) continue;
    } else {
      if (next_fresh_slot_ >= slot_capacity_) return nullptr;
      slot = next_fresh_slot_++;
    }
    break;
  }
  std::byte* rec = const_cast<std::byte*>(RefOf(slot));
  std::memset(rec, 0, stride_);
  for (size_t i = 0; i < values.size(); ++i) {
    // HasRoomFor pre-checked the aggregate heap need, so this cannot fail.
    bool ok = WriteField(rec, i, values[i]);
    assert(ok);
    (void)ok;
  }
  states_[slot] = SlotState::kLive;
  free_slots_.fetch_sub(1, std::memory_order_relaxed);
  ++live_count_;
  return rec;
}

TupleRef Partition::InsertIntoSlot(uint32_t slot,
                                   const std::vector<Value>& values) {
  assert(values.size() == schema_->field_count());
  if (slot >= slot_capacity_ || states_[slot] != SlotState::kFree) {
    return nullptr;
  }
  if (heap_used_.load(std::memory_order_relaxed) + HeapNeeded(values) >
      heap_bytes_) {
    return nullptr;
  }
  if (slot >= next_fresh_slot_) {
    // Slots skipped over become reusable free slots.
    for (uint32_t s = next_fresh_slot_; s < slot; ++s) free_list_.push_back(s);
    next_fresh_slot_ = slot + 1;
  }
  std::byte* rec = const_cast<std::byte*>(RefOf(slot));
  std::memset(rec, 0, stride_);
  for (size_t i = 0; i < values.size(); ++i) {
    bool ok = WriteField(rec, i, values[i]);
    assert(ok);
    (void)ok;
  }
  states_[slot] = SlotState::kLive;
  free_slots_.fetch_sub(1, std::memory_order_relaxed);
  ++live_count_;
  return rec;
}

bool Partition::Erase(TupleRef t) {
  if (!Contains(t)) return false;
  const uint32_t slot = SlotOf(t);
  if (states_[slot] != SlotState::kLive) return false;
  states_[slot] = SlotState::kFree;
  free_list_.push_back(slot);
  free_slots_.fetch_add(1, std::memory_order_relaxed);
  --live_count_;
  return true;
}

bool Partition::UpdateField(TupleRef t, size_t i, const Value& v) {
  assert(Contains(t) && states_[SlotOf(t)] == SlotState::kLive);
  // Old string blobs are abandoned in the heap; the heap is bump-allocated
  // and reclaimed only when the tuple moves out (paper footnote 1 behavior).
  return WriteField(MutableRef(t), i, v);
}

void Partition::SetForward(TupleRef t, TupleRef to) {
  assert(Contains(t));
  const uint32_t slot = SlotOf(t);
  assert(states_[slot] == SlotState::kLive);
  std::byte* rec = MutableRef(t);
  std::memcpy(rec, &to, sizeof(to));
  states_[slot] = SlotState::kForward;
  --live_count_;
}

TupleRef Partition::GetForward(TupleRef t) const {
  if (!Contains(t) || states_[SlotOf(t)] != SlotState::kForward) return nullptr;
  TupleRef to;
  std::memcpy(&to, t, sizeof(to));
  return to;
}

}  // namespace mmdb
