// Partition: the unit of recovery (Section 2.1).  A partition owns
//   * a fixed-width slot area holding tuple records, and
//   * a heap area holding variable-length (string) field blobs.
//
// Tuples never move once inserted; a tuple's address (TupleRef) is its
// identity for indices and for the tuple-pointer foreign keys of Section 2.1.
// If an update outgrows the heap, the *relation* moves the tuple to another
// partition and this partition keeps a forwarding address in the old slot,
// exactly as the paper's footnote 1 describes.
//
// The paper sizes partitions at one or two disk tracks; the default here
// (1024 slots / 64 KiB heap) is of that order.

#ifndef MMDB_STORAGE_PARTITION_H_
#define MMDB_STORAGE_PARTITION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/storage/schema.h"
#include "src/storage/value.h"

namespace mmdb {

/// Stable logical address of a tuple: (partition id, slot).  Used by the log
/// and the disk image, which cannot rely on raw memory addresses surviving a
/// crash.
struct TupleId {
  uint32_t partition = 0;
  uint32_t slot = 0;
  bool operator==(const TupleId&) const = default;
};

class Partition {
 public:
  enum class SlotState : uint8_t { kFree = 0, kLive = 1, kForward = 2 };

  struct Options {
    uint32_t slot_capacity = 1024;
    size_t heap_bytes = 64 * 1024;
  };

  Partition(uint32_t id, const Schema* schema, const Options& options);

  Partition(const Partition&) = delete;
  Partition& operator=(const Partition&) = delete;

  uint32_t id() const { return id_; }
  const Schema& schema() const { return *schema_; }
  uint32_t slot_capacity() const { return slot_capacity_; }
  size_t live_count() const { return live_count_; }
  size_t heap_used() const { return heap_used_.load(std::memory_order_relaxed); }
  size_t heap_bytes() const { return heap_bytes_; }

  /// True if a record built from `values` fits (free slot + heap room).
  /// Reads only the atomic room counters, so it may be probed by a
  /// transaction planning an insert *without* holding this partition's
  /// lock; the answer can be stale and must be re-checked once the
  /// partition X lock is held (Relation::PlanInsert discipline).
  bool HasRoomFor(const std::vector<Value>& values) const;

  /// Writes a new tuple; returns its address, or nullptr if out of slot or
  /// heap space.  `values` must match the schema's field types (kPointer
  /// fields accept either a Value pointer or int32 0 for "null").
  TupleRef Insert(const std::vector<Value>& values);

  /// Recovery path: writes a tuple into a specific slot (which must not be
  /// live).  Returns nullptr on heap exhaustion or a bad slot.
  TupleRef InsertIntoSlot(uint32_t slot, const std::vector<Value>& values);

  /// Frees the slot holding `t`.  Returns false if `t` is not a live tuple
  /// of this partition.
  bool Erase(TupleRef t);

  /// Overwrites field `i` of `t` in place.  For string fields a new heap
  /// blob is allocated; returns false if the heap is exhausted (the caller
  /// should relocate the tuple and call SetForward).
  bool UpdateField(TupleRef t, size_t i, const Value& v);

  /// Replaces the slot of `t` with a forwarding address to `to`.
  void SetForward(TupleRef t, TupleRef to);

  /// Follows a forwarding slot; returns nullptr if `t` is not forwarded.
  TupleRef GetForward(TupleRef t) const;

  /// True if `t` points into this partition's slot area (any state).
  bool Contains(TupleRef t) const {
    return t >= slots_.get() &&
           t < slots_.get() + size_t{slot_capacity_} * stride_ &&
           (t - slots_.get()) % stride_ == 0;
  }

  SlotState slot_state(uint32_t slot) const { return states_[slot]; }
  uint32_t SlotOf(TupleRef t) const {
    return static_cast<uint32_t>((t - slots_.get()) / stride_);
  }
  TupleRef RefOf(uint32_t slot) const {
    return slots_.get() + size_t{slot} * stride_;
  }
  const std::byte* base() const { return slots_.get(); }

  /// Calls fn(TupleRef) for every live tuple, in slot order.
  template <typename Fn>
  void ForEachLive(Fn&& fn) const {
    for (uint32_t s = 0; s < slot_capacity_; ++s) {
      if (states_[s] == SlotState::kLive) fn(RefOf(s));
    }
  }

  /// Bytes of heap needed to store the string payloads of `values`.
  size_t HeapNeeded(const std::vector<Value>& values) const;

 private:
  std::byte* MutableRef(TupleRef t) { return const_cast<std::byte*>(t); }
  /// Allocates `n` bytes from the heap, or nullptr.
  std::byte* HeapAlloc(size_t n);
  /// Writes `v` into field `i` at record `rec`; uses heap for strings.
  /// Returns false on heap exhaustion.
  bool WriteField(std::byte* rec, size_t i, const Value& v);

  uint32_t id_;
  const Schema* schema_;
  uint32_t slot_capacity_;
  size_t stride_;  // bytes per slot (>= 8 so a forwarding pointer fits)
  size_t heap_bytes_;
  std::unique_ptr<std::byte[]> slots_;
  std::unique_ptr<std::byte[]> heap_;
  std::vector<SlotState> states_;
  std::vector<uint32_t> free_list_;  // slot numbers available for reuse
  uint32_t next_fresh_slot_ = 0;     // never-used slot watermark
  // Room counters are atomics (relaxed): lock-free insert planning probes
  // them from other threads while the partition's X-lock holder mutates.
  // All *mutations* happen under the partition X lock; the atomics only
  // make the unlocked reads well-defined, not the writes concurrent.
  std::atomic<size_t> heap_used_{0};
  std::atomic<uint32_t> free_slots_{0};  // free-list + untouched fresh slots
  size_t live_count_ = 0;
};

}  // namespace mmdb

#endif  // MMDB_STORAGE_PARTITION_H_
