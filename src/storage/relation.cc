#include "src/storage/relation.h"

#include <cassert>

#include "src/storage/tuple.h"

namespace mmdb {

Relation::Relation(std::string name, Schema schema, Options options)
    : name_(std::move(name)), schema_(std::move(schema)), options_(options) {}

Partition* Relation::AddPartition() {
  partitions_.push_back(std::make_unique<Partition>(
      next_partition_id_++, &schema_, options_.partition));
  Partition* p = partitions_.back().get();
  by_base_[p->base()] = p;
  // Partition-local composites grow a shard for the new partition.
  for (auto& index : indexes_) index->OnPartitionAdded(p->id());
  return p;
}

Partition* Relation::PartitionWithRoom(const std::vector<Value>& values) {
  // Last-partition-first: inserts are overwhelmingly appended to the newest
  // partition; older partitions regain room only via deletions.
  for (auto it = partitions_.rbegin(); it != partitions_.rend(); ++it) {
    if ((*it)->HasRoomFor(values)) return it->get();
  }
  return AddPartition();
}

Partition* Relation::PlanInsert(const std::vector<Value>& values) const {
  for (auto it = partitions_.rbegin(); it != partitions_.rend(); ++it) {
    if ((*it)->HasRoomFor(values)) return it->get();
  }
  return nullptr;
}

bool Relation::ResolveForeignKeys(std::vector<Value>* values) const {
  // Materialize foreign keys as tuple pointers (Section 2.1).
  for (const ForeignKeyDecl& fk : fks_) {
    Value& v = (*values)[fk.field];
    if (v.type() == Type::kPointer) continue;  // caller supplied the pointer
    TupleIndex* target_index = fk.target->FindIndexOn(fk.target_field, false);
    TupleRef hit = nullptr;
    if (target_index != nullptr) {
      hit = target_index->Find(v);
    } else {
      // No index on the referenced field: fall back to a scan.
      const Schema& ts = fk.target->schema();
      fk.target->ForEachTuple([&](TupleRef cand) {
        if (hit == nullptr &&
            tuple::CompareValueField(v, cand, ts, fk.target_field) == 0) {
          hit = cand;
        }
      });
    }
    if (hit == nullptr) return false;  // dangling foreign key
    v = Value(hit);
  }
  return true;
}

TupleRef Relation::InsertResolved(Partition* p,
                                  const std::vector<Value>& resolved) {
  TupleRef t = p->Insert(resolved);
  if (t == nullptr) return nullptr;  // record larger than a whole partition

  for (size_t i = 0; i < indexes_.size(); ++i) {
    if (!indexes_[i]->Insert(t)) {
      // Unique violation: roll back the partial insert.
      for (size_t j = 0; j < i; ++j) indexes_[j]->Erase(t);
      p->Erase(t);
      return nullptr;
    }
  }
  cardinality_.fetch_add(1, std::memory_order_relaxed);
  return t;
}

TupleRef Relation::Insert(const std::vector<Value>& values) {
  assert(values.size() == schema_.field_count());
  std::vector<Value> resolved = values;
  if (!ResolveForeignKeys(&resolved)) return nullptr;
  return InsertResolved(PartitionWithRoom(resolved), resolved);
}

TupleRef Relation::InsertInto(uint32_t partition_id,
                              const std::vector<Value>& values) {
  assert(values.size() == schema_.field_count());
  std::vector<Value> resolved = values;
  if (!ResolveForeignKeys(&resolved)) return nullptr;
  Partition* p = PartitionById(partition_id);
  if (p == nullptr || !p->HasRoomFor(resolved)) return nullptr;
  return InsertResolved(p, resolved);
}

Status Relation::Delete(TupleRef t) {
  t = Resolve(t);
  Partition* p = PartitionOf(t);
  if (p == nullptr || p->slot_state(p->SlotOf(t)) != Partition::SlotState::kLive) {
    return Status::NotFound("tuple not in relation " + name_);
  }
  for (auto& index : indexes_) index->Erase(t);
  p->Erase(t);
  cardinality_.fetch_sub(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status Relation::UpdateField(TupleRef t, size_t field, const Value& v) {
  if (field >= schema_.field_count()) {
    return Status::InvalidArgument("no such field");
  }
  t = Resolve(t);
  Partition* p = PartitionOf(t);
  if (p == nullptr || p->slot_state(p->SlotOf(t)) != Partition::SlotState::kLive) {
    return Status::NotFound("tuple not in relation " + name_);
  }

  // Unique-key pre-check so we never have to undo a half-applied update.
  for (auto& index : indexes_) {
    if (index->unique() && index->KeyedOnField(field)) {
      TupleRef existing = index->Find(v);
      if (existing != nullptr && existing != t) {
        return Status::AlreadyExists("unique index " + index->name());
      }
    }
  }

  // Pull the tuple out of the indices keyed on the changing field.
  for (auto& index : indexes_) {
    if (index->KeyedOnField(field)) index->Erase(t);
  }

  if (p->UpdateField(t, field, v)) {
    for (auto& index : indexes_) {
      if (index->KeyedOnField(field)) index->Insert(t);
    }
    return Status::Ok();
  }

  // Heap overflow: relocate the tuple to another partition, leaving a
  // forwarding address behind (paper footnote 1).
  std::vector<Value> values = Snapshot(t);
  values[field] = v;
  Partition* q = PartitionWithRoom(values);
  if (q == p) {
    // p reported room generically but could not hold the grown payload;
    // force a fresh partition.
    q = AddPartition();
  }
  TupleRef moved = q->Insert(values);
  if (moved == nullptr) {
    return Status::ResourceExhausted("record exceeds partition capacity");
  }
  // Rewrite every index entry to the new address.
  for (auto& index : indexes_) {
    if (!index->KeyedOnField(field)) index->Erase(t);
    index->Insert(moved);
  }
  p->SetForward(t, moved);
  return Status::Ok();
}

TupleIndex* Relation::AttachIndex(std::unique_ptr<TupleIndex> index) {
  TupleIndex* raw = index.get();
  indexes_.push_back(std::move(index));
  raw->BeginBulk();
  ForEachTuple([raw](TupleRef t) { raw->Insert(t); });
  raw->EndBulk();
  return raw;
}

Status Relation::DetachIndex(const std::string& name) {
  for (size_t i = 0; i < indexes_.size(); ++i) {
    if (indexes_[i]->name() == name) {
      if (i == 0 && cardinality_ > 0 && indexes_.size() > 1) {
        return Status::FailedPrecondition(
            "primary index cannot be detached while secondary indices exist");
      }
      if (i == 0 && indexes_.size() == 1 && cardinality_ > 0) {
        return Status::FailedPrecondition(
            "a relation must keep at least one index (Section 2.1)");
      }
      indexes_.erase(indexes_.begin() + i);
      return Status::Ok();
    }
  }
  return Status::NotFound("no index named " + name);
}

TupleIndex* Relation::FindIndex(std::string_view name) const {
  for (const auto& index : indexes_) {
    if (index->name() == name) return index.get();
  }
  return nullptr;
}

TupleIndex* Relation::FindIndexOn(size_t field, bool ordered_only) const {
  for (const auto& index : indexes_) {
    if (index->key_fields().size() == 1 && index->key_fields()[0] == field &&
        (!ordered_only || IndexKindOrdered(index->kind()))) {
      return index.get();
    }
  }
  return nullptr;
}

bool Relation::HasGlobalIndex() const {
  for (const auto& index : indexes_) {
    if (!index->partition_local()) return true;
  }
  return false;
}

bool Relation::HasGlobalIndexKeyedOn(size_t field) const {
  return GlobalIndexKeyedOn(field) != nullptr;
}

TupleIndex* Relation::GlobalIndexKeyedOn(size_t field) const {
  for (const auto& index : indexes_) {
    if (!index->partition_local() && index->KeyedOnField(field)) {
      return index.get();
    }
  }
  return nullptr;
}

Status Relation::DeclareForeignKey(size_t field, Relation* target,
                                   size_t target_field) {
  if (field >= schema_.field_count() ||
      schema_.field(field).type != Type::kPointer) {
    return Status::InvalidArgument(
        "foreign key field must be a kPointer field");
  }
  if (target == nullptr || target_field >= target->schema().field_count()) {
    return Status::InvalidArgument("bad foreign key target");
  }
  for (const ForeignKeyDecl& fk : fks_) {
    if (fk.field == field) {
      return Status::AlreadyExists("foreign key already declared on field");
    }
  }
  fks_.push_back(ForeignKeyDecl{field, target, target_field});
  return Status::Ok();
}

const ForeignKeyDecl* Relation::ForeignKeyOn(size_t field) const {
  for (const ForeignKeyDecl& fk : fks_) {
    if (fk.field == field) return &fk;
  }
  return nullptr;
}

TupleRef Relation::Resolve(TupleRef t) const {
  for (;;) {
    Partition* p = PartitionOf(t);
    if (p == nullptr) return t;
    TupleRef fwd = p->GetForward(t);
    if (fwd == nullptr) return t;
    t = fwd;
  }
}

Partition* Relation::PartitionById(uint32_t id) const {
  for (const auto& p : partitions_) {
    if (p->id() == id) return p.get();
  }
  return nullptr;
}

Partition* Relation::GetOrCreatePartition(uint32_t id) {
  while (next_partition_id_ <= id) AddPartition();
  return PartitionById(id);
}

TupleRef Relation::InsertAt(TupleId tid, const std::vector<Value>& values) {
  Partition* p = GetOrCreatePartition(tid.partition);
  TupleRef t = p->InsertIntoSlot(tid.slot, values);
  if (t == nullptr) return nullptr;
  for (size_t i = 0; i < indexes_.size(); ++i) {
    if (!indexes_[i]->Insert(t)) {
      for (size_t j = 0; j < i; ++j) indexes_[j]->Erase(t);
      p->Erase(t);
      return nullptr;
    }
  }
  cardinality_.fetch_add(1, std::memory_order_relaxed);
  return t;
}

TupleId Relation::IdOf(TupleRef t) const {
  Partition* p = PartitionOf(t);
  assert(p != nullptr);
  return TupleId{p->id(), p->SlotOf(t)};
}

TupleRef Relation::RefOf(TupleId tid) const {
  Partition* p = PartitionById(tid.partition);
  if (p == nullptr || tid.slot >= p->slot_capacity() ||
      p->slot_state(tid.slot) != Partition::SlotState::kLive) {
    return nullptr;
  }
  return p->RefOf(tid.slot);
}

Partition* Relation::PartitionOf(TupleRef t) const {
  if (by_base_.empty()) return nullptr;
  auto it = by_base_.upper_bound(t);
  if (it == by_base_.begin()) return nullptr;
  --it;
  Partition* p = it->second;
  return p->Contains(t) ? p : nullptr;
}

std::vector<Value> Relation::Snapshot(TupleRef t) const {
  std::vector<Value> out;
  out.reserve(schema_.field_count());
  for (size_t i = 0; i < schema_.field_count(); ++i) {
    out.push_back(tuple::GetValue(t, schema_, i));
  }
  return out;
}

}  // namespace mmdb
