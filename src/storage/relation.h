// Relation: a schema, a set of partitions, and the indices that provide all
// access to it (Section 2.1 requires at least one index; traversal is only
// through indices).  The relation keeps its indices consistent across
// insert / delete / update, performs tuple relocation with forwarding
// addresses when a partition heap overflows, and materializes foreign keys
// as tuple pointers for precomputed joins.

#ifndef MMDB_STORAGE_RELATION_H_
#define MMDB_STORAGE_RELATION_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/storage/index_iface.h"
#include "src/storage/partition.h"
#include "src/storage/schema.h"
#include "src/util/status.h"

namespace mmdb {

/// Declares that a kPointer field of this relation references tuples of
/// `target` (matched on `target_field` at insert time).  This is the
/// Section 2.1 foreign-key-as-tuple-pointer mechanism.
struct ForeignKeyDecl {
  size_t field = 0;                 ///< kPointer field in this relation
  class Relation* target = nullptr; ///< referenced relation
  size_t target_field = 0;          ///< field of target used to resolve inserts
};

class Relation {
 public:
  struct Options {
    Partition::Options partition;
  };

  Relation(std::string name, Schema schema, Options options = {});

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t cardinality() const {
    return cardinality_.load(std::memory_order_relaxed);
  }

  // ---- Tuple lifecycle ----------------------------------------------------

  /// Inserts a tuple.  kPointer fields may be given directly as pointers; if
  /// a foreign key is declared for the field and the supplied value is not a
  /// pointer, it is resolved by looking up `value` in the target relation
  /// (via its primary index) and storing the resulting tuple pointer.
  /// Returns nullptr if a unique index rejected the tuple or a foreign key
  /// failed to resolve.
  TupleRef Insert(const std::vector<Value>& values);

  /// Insert-planning probe: the partition that currently has room for
  /// `values`, or nullptr if none does.  Reads only atomic room counters,
  /// so a transaction may call it without partition locks; the answer can
  /// go stale and must be re-validated (HasRoomFor) once the partition's
  /// X lock is held.  Never allocates a partition.
  Partition* PlanInsert(const std::vector<Value>& values) const;

  /// Inserts into a specific partition (a transaction's reserved insert
  /// target).  Never creates partitions; returns nullptr if the partition
  /// does not exist, has no room, a unique index rejected the tuple, or a
  /// foreign key failed to resolve — callers fall back to the generic
  /// Insert under the structure X lock.
  TupleRef InsertInto(uint32_t partition_id, const std::vector<Value>& values);

  /// Removes a tuple from all indices and frees its slot.
  Status Delete(TupleRef t);

  /// Updates one field.  If the containing partition's heap cannot hold a
  /// grown string payload, the tuple is relocated to another partition and a
  /// forwarding address is left behind; indices are rewritten to the new
  /// address.  Fields indexed by a unique index reject duplicate new keys.
  Status UpdateField(TupleRef t, size_t field, const Value& v);

  // ---- Indices --------------------------------------------------------------

  /// Attaches an index and bulk-loads every existing tuple into it.  The
  /// first index attached becomes the primary index.  Returns the raw
  /// pointer for convenience.
  TupleIndex* AttachIndex(std::unique_ptr<TupleIndex> index);

  /// Detaches (and destroys) the named index.  The primary index cannot be
  /// detached while other tuples exist.
  Status DetachIndex(const std::string& name);

  TupleIndex* primary_index() const {
    return indexes_.empty() ? nullptr : indexes_.front().get();
  }
  TupleIndex* FindIndex(std::string_view name) const;
  /// First index of the given kind on `field`, or nullptr.
  TupleIndex* FindIndexOn(size_t field, bool ordered_only) const;
  const std::vector<std::unique_ptr<TupleIndex>>& indexes() const {
    return indexes_;
  }

  /// True if any attached index is relation-global (not partition-local).
  /// Such an index is rewritten by inserts/deletes on *any* partition, so
  /// DML on this relation must serialize behind the structure X lock.
  bool HasGlobalIndex() const;

  /// True if a relation-global index is keyed on `field` — single-field
  /// updates then need the structure X lock; otherwise the touched
  /// partition's X lock suffices.
  bool HasGlobalIndexKeyedOn(size_t field) const;

  /// The relation-global index keyed on `field`, or nullptr.  Point probes
  /// through it see every live tuple with that key, regardless of
  /// partition (the reuse cache uses this to compute partition-precise
  /// footprints for point conjuncts).
  TupleIndex* GlobalIndexKeyedOn(size_t field) const;

  // ---- Foreign keys ---------------------------------------------------------

  /// Declares `field` (must be kPointer) as a foreign key to
  /// target(target_field).  Existing tuples are not re-resolved.
  Status DeclareForeignKey(size_t field, Relation* target, size_t target_field);
  const std::vector<ForeignKeyDecl>& foreign_keys() const { return fks_; }
  const ForeignKeyDecl* ForeignKeyOn(size_t field) const;

  // ---- Addressing -----------------------------------------------------------

  /// Follows forwarding addresses until reaching a live tuple.  Returns the
  /// input unchanged if it is not a forwarded slot of this relation.
  TupleRef Resolve(TupleRef t) const;

  /// Partition containing `t`, or nullptr.
  Partition* PartitionOf(TupleRef t) const;

  /// Partition with the given id, or nullptr.
  Partition* PartitionById(uint32_t id) const;

  /// Recovery path: ensures a partition with this id exists (creating empty
  /// lower-id partitions as needed) and returns it.
  Partition* GetOrCreatePartition(uint32_t id);

  /// Recovery path: inserts a tuple at an exact (partition, slot) address,
  /// maintaining indices.  Returns nullptr if the slot is occupied.
  TupleRef InsertAt(TupleId tid, const std::vector<Value>& values);

  /// Logical address of a live tuple (for logging / disk imaging).
  TupleId IdOf(TupleRef t) const;
  /// Reverse mapping; nullptr if the slot is not live.
  TupleRef RefOf(TupleId tid) const;

  const std::vector<std::unique_ptr<Partition>>& partitions() const {
    return partitions_;
  }

  /// Internal full scan, in partition/slot order.  Used for index bulk
  /// loads, recovery and tests; query execution goes through indices, per
  /// Section 2.1.
  template <typename Fn>
  void ForEachTuple(Fn&& fn) const {
    for (const auto& p : partitions_) p->ForEachLive(fn);
  }

 private:
  /// Allocates the next partition, registers it for address lookup, and
  /// notifies every attached index (partition-local composites grow a new
  /// shard).  The single choke point for partition creation — callers must
  /// hold the relation-structure X lock under concurrency.
  Partition* AddPartition();
  /// A partition with room for `values`, allocating a new one if needed.
  Partition* PartitionWithRoom(const std::vector<Value>& values);
  /// Materializes foreign keys as tuple pointers; false on a dangling key.
  bool ResolveForeignKeys(std::vector<Value>* values) const;
  /// Inserts FK-resolved values into `p` and maintains every index.
  TupleRef InsertResolved(Partition* p, const std::vector<Value>& resolved);
  /// Reads current values of `t` (pointer fields as raw pointers).
  std::vector<Value> Snapshot(TupleRef t) const;

  std::string name_;
  Schema schema_;
  Options options_;
  std::vector<std::unique_ptr<Partition>> partitions_;
  // Partition lookup by slot-area base address (upper_bound - 1 probing).
  std::map<const std::byte*, Partition*> by_base_;
  std::vector<std::unique_ptr<TupleIndex>> indexes_;
  std::vector<ForeignKeyDecl> fks_;
  // Atomic (relaxed): transactions on disjoint partitions bump it without
  // the structure X lock; readers (planner cost model) probe it lock-free.
  std::atomic<size_t> cardinality_{0};
  uint32_t next_partition_id_ = 0;
};

}  // namespace mmdb

#endif  // MMDB_STORAGE_RELATION_H_
