#include "src/storage/schema.h"

#include <sstream>

namespace mmdb {
namespace {

size_t AlignUp(size_t n, size_t a) { return (n + a - 1) & ~(a - 1); }

}  // namespace

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  offsets_.reserve(fields_.size());
  size_t off = 0;
  for (const Field& f : fields_) {
    const size_t w = TypeWidth(f.type);
    off = AlignUp(off, w);  // widths are 4 or 8, so width == alignment
    offsets_.push_back(off);
    off += w;
  }
  tuple_bytes_ = AlignUp(off, 8);
  if (tuple_bytes_ == 0) tuple_bytes_ = 8;  // degenerate empty schema
}

std::optional<size_t> Schema::FieldIndex(std::string_view name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return std::nullopt;
}

std::string Schema::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i) os << ", ";
    os << fields_[i].name << ":" << TypeName(fields_[i].type);
  }
  return os.str();
}

bool Schema::operator==(const Schema& other) const {
  if (fields_.size() != other.fields_.size()) return false;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name != other.fields_[i].name ||
        fields_[i].type != other.fields_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace mmdb
