// Schema: ordered list of typed, named fields plus the computed fixed-width
// record layout.  Variable-length (string) fields occupy a fixed 8-byte
// pointer slot in the record pointing into the partition heap, exactly as in
// Section 2.1 of the paper ("the tuple itself will contain a pointer to the
// field in the partition's heap space").

#ifndef MMDB_STORAGE_SCHEMA_H_
#define MMDB_STORAGE_SCHEMA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/storage/value.h"

namespace mmdb {

/// One column definition.
struct Field {
  std::string name;
  Type type = Type::kInt32;
};

/// Field list + record layout.  Immutable once constructed.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  size_t field_count() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Byte offset of field i within the fixed-width record.
  size_t offset(size_t i) const { return offsets_[i]; }

  /// Total fixed-width record size in bytes (8-byte aligned).
  size_t tuple_bytes() const { return tuple_bytes_; }

  /// Index of the field with the given name, or nullopt.
  std::optional<size_t> FieldIndex(std::string_view name) const;

  /// "name:type, name:type, ..." rendering.
  std::string ToString() const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<Field> fields_;
  std::vector<size_t> offsets_;
  size_t tuple_bytes_ = 8;  // even an empty schema has a nonzero stride
};

}  // namespace mmdb

#endif  // MMDB_STORAGE_SCHEMA_H_
