#include "src/storage/temp_list.h"

#include <cassert>
#include <sstream>

#include "src/storage/tuple.h"

namespace mmdb {

bool ResultDescriptor::AddColumn(uint16_t source, std::vector<uint16_t> path,
                                 std::string label) {
  if (source >= sources_.size() || path.empty()) return false;
  const Relation* rel = sources_[source];
  // Walk every hop but the last through declared foreign keys.
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    const Schema& s = rel->schema();
    if (path[i] >= s.field_count() || s.field(path[i]).type != Type::kPointer) {
      return false;
    }
    const ForeignKeyDecl* fk = rel->ForeignKeyOn(path[i]);
    if (fk == nullptr) return false;
    rel = fk->target;
  }
  const Schema& final_schema = rel->schema();
  const uint16_t final_field = path.back();
  if (final_field >= final_schema.field_count()) return false;

  if (label.empty()) {
    label = rel->name() + "." + final_schema.field(final_field).name;
  }
  columns_.push_back(ColumnRef{source, std::move(path), std::move(label)});
  column_schemas_.push_back(&final_schema);
  column_fields_.push_back(final_field);
  return true;
}

void TempList::Append(std::span<const TupleRef> row) {
  assert(row.size() == descriptor_.width());
  rows_.insert(rows_.end(), row.begin(), row.end());
}

void TempList::Append1(TupleRef t) {
  assert(descriptor_.width() == 1);
  rows_.push_back(t);
}

void TempList::Append2(TupleRef outer, TupleRef inner) {
  assert(descriptor_.width() == 2);
  rows_.push_back(outer);
  rows_.push_back(inner);
}

TupleRef TempList::ResolveColumnTuple(size_t r, size_t c) const {
  const ColumnRef& col = descriptor_.columns()[c];
  TupleRef t = At(r, col.source);
  const Relation* rel = descriptor_.source(col.source);
  for (size_t i = 0; i + 1 < col.path.size(); ++i) {
    const Schema& s = rel->schema();
    t = tuple::GetPointer(t, s.offset(col.path[i]));
    rel = rel->ForeignKeyOn(col.path[i])->target;
    if (t == nullptr) return nullptr;  // unresolved foreign key
  }
  return t;
}

Value TempList::GetValue(size_t r, size_t c) const {
  TupleRef t = ResolveColumnTuple(r, c);
  if (t == nullptr) return Value();
  return tuple::GetValue(t, *descriptor_.ColumnSchema(c),
                         descriptor_.ColumnField(c));
}

std::string TempList::RowToString(size_t r) const {
  std::ostringstream os;
  os << "(";
  for (size_t c = 0; c < descriptor_.columns().size(); ++c) {
    if (c) os << ", ";
    os << GetValue(r, c).ToString();
  }
  os << ")";
  return os.str();
}

}  // namespace mmdb
