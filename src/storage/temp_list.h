// Temporary lists (Section 2.3): the MM-DBMS representation of intermediate
// and final query results.  A temporary list is a list of tuple-pointer rows
// plus a *result descriptor* identifying which fields of which source
// relations the list logically contains.  No data is ever copied — "no width
// reduction is ever done" — so projection is just descriptor bookkeeping
// until duplicate elimination is requested.
//
// Unlike base relations, a temporary list may be traversed directly.

#ifndef MMDB_STORAGE_TEMP_LIST_H_
#define MMDB_STORAGE_TEMP_LIST_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/storage/relation.h"
#include "src/storage/value.h"

namespace mmdb {

/// One logical output column: a source slot (position within the row of
/// tuple pointers) plus a field path.  A path longer than one element walks
/// kPointer (foreign key) fields: each intermediate hop reads a tuple
/// pointer and continues in the referenced relation's schema — this is how
/// Query 1 of the paper emits Department.Name from an Employee row.
struct ColumnRef {
  uint16_t source = 0;
  std::vector<uint16_t> path;
  std::string label;  ///< display name, e.g. "emp.name"
};

/// Describes what a TempList's rows mean: the source relations (one per
/// tuple pointer in a row) and the output columns.
class ResultDescriptor {
 public:
  ResultDescriptor() = default;
  explicit ResultDescriptor(std::vector<const Relation*> sources)
      : sources_(std::move(sources)) {}

  size_t width() const { return sources_.size(); }
  const std::vector<const Relation*>& sources() const { return sources_; }
  const Relation* source(size_t i) const { return sources_[i]; }

  /// Appends an output column; returns false if the path does not resolve
  /// (bad field number, or an intermediate hop is not a kPointer field with
  /// a declared foreign key).
  bool AddColumn(uint16_t source, std::vector<uint16_t> path,
                 std::string label = {});

  /// Convenience: single-hop column.
  bool AddColumn(uint16_t source, uint16_t field, std::string label = {}) {
    return AddColumn(source, std::vector<uint16_t>{field}, std::move(label));
  }

  const std::vector<ColumnRef>& columns() const { return columns_; }

  /// Schema of column `c` (resolved through foreign-key hops).
  const Schema* ColumnSchema(size_t c) const { return column_schemas_[c]; }
  /// Final field number of column `c` within ColumnSchema(c).
  size_t ColumnField(size_t c) const { return column_fields_[c]; }

 private:
  std::vector<const Relation*> sources_;
  std::vector<ColumnRef> columns_;
  std::vector<const Schema*> column_schemas_;
  std::vector<size_t> column_fields_;
};

/// A materialized list of tuple-pointer rows with a shared descriptor.
class TempList {
 public:
  explicit TempList(ResultDescriptor descriptor)
      : descriptor_(std::move(descriptor)) {}

  const ResultDescriptor& descriptor() const { return descriptor_; }
  /// Output columns may be added after the rows are produced (projection is
  /// descriptor bookkeeping, Section 2.3).  Sources must not be changed.
  ResultDescriptor* mutable_descriptor() { return &descriptor_; }
  size_t width() const { return descriptor_.width(); }
  size_t size() const {
    return descriptor_.width() == 0 ? 0 : rows_.size() / descriptor_.width();
  }

  /// Appends one row; `row` must have exactly width() pointers.
  void Append(std::span<const TupleRef> row);
  /// Appends a single-pointer row (selection results).
  void Append1(TupleRef t);
  /// Appends `m` single-pointer rows — the survivors of a batched predicate
  /// chunk, identified by selection-vector positions into `refs`.  Identical
  /// to calling Append1(refs[sel[i]]) for i in [0, m).
  void AppendBatch1(const TupleRef* refs, const uint16_t* sel, size_t m) {
    for (size_t i = 0; i < m; ++i) rows_.push_back(refs[sel[i]]);
  }
  /// Appends a two-pointer row (binary join results).
  void Append2(TupleRef outer, TupleRef inner);

  /// Row accessor: pointer `s` of row `r`.
  TupleRef At(size_t r, size_t s) const {
    return rows_[r * descriptor_.width() + s];
  }

  /// Evaluates output column `c` of row `r` (follows foreign-key hops).
  Value GetValue(size_t r, size_t c) const;

  /// Raw tuple of output column `c` of row `r` after following all but the
  /// final hop (i.e. the tuple that physically holds the column's field).
  TupleRef ResolveColumnTuple(size_t r, size_t c) const;

  /// Renders row `r` per the descriptor's columns, for examples/tests.
  std::string RowToString(size_t r) const;

  void Reserve(size_t rows) { rows_.reserve(rows * descriptor_.width()); }
  void Clear() { rows_.clear(); }

  const std::vector<TupleRef>& raw_rows() const { return rows_; }

 private:
  ResultDescriptor descriptor_;
  std::vector<TupleRef> rows_;  // width() pointers per row, flattened
};

}  // namespace mmdb

#endif  // MMDB_STORAGE_TEMP_LIST_H_
