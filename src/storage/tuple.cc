#include "src/storage/tuple.h"

#include <sstream>

#include "src/util/counters.h"
#include "src/util/hash.h"

namespace mmdb {
namespace tuple {
namespace {

template <typename T>
int Cmp3(T a, T b) {
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}

// Cross-type comparisons order by type rank, so mismatched operands compare
// deterministically unequal instead of being undefined (a join of an int
// column against a pointer column simply matches nothing).
int TypeRank(Type t) {
  switch (t) {
    case Type::kInt32:
    case Type::kInt64:
      return 0;  // the integer widths are mutually comparable
    case Type::kDouble: return 1;
    case Type::kString: return 2;
    case Type::kPointer: return 3;
  }
  return 4;
}

}  // namespace

Value GetValue(TupleRef t, const Schema& schema, size_t i) {
  const size_t off = schema.offset(i);
  switch (schema.field(i).type) {
    case Type::kInt32: return Value(GetInt32(t, off));
    case Type::kInt64: return Value(GetInt64(t, off));
    case Type::kDouble: return Value(GetDouble(t, off));
    case Type::kString: return Value(GetString(t, off));
    case Type::kPointer: return Value(GetPointer(t, off));
  }
  return Value();
}

int CompareField(TupleRef a, TupleRef b, const Schema& schema, size_t i) {
  counters::BumpComparisons();
  const size_t off = schema.offset(i);
  switch (schema.field(i).type) {
    case Type::kInt32: return Cmp3(GetInt32(a, off), GetInt32(b, off));
    case Type::kInt64: return Cmp3(GetInt64(a, off), GetInt64(b, off));
    case Type::kDouble: return Cmp3(GetDouble(a, off), GetDouble(b, off));
    case Type::kString: return Cmp3(GetString(a, off), GetString(b, off));
    case Type::kPointer: return Cmp3(GetPointer(a, off), GetPointer(b, off));
  }
  return 0;
}

int CompareFields(TupleRef a, const Schema& sa, size_t fa, TupleRef b,
                  const Schema& sb, size_t fb) {
  counters::BumpComparisons();
  const size_t off_a = sa.offset(fa), off_b = sb.offset(fb);
  const Type ta = sa.field(fa).type, tb = sb.field(fb).type;
  if (ta == tb) {
    switch (ta) {
      case Type::kInt32: return Cmp3(GetInt32(a, off_a), GetInt32(b, off_b));
      case Type::kInt64: return Cmp3(GetInt64(a, off_a), GetInt64(b, off_b));
      case Type::kDouble: return Cmp3(GetDouble(a, off_a), GetDouble(b, off_b));
      case Type::kString: return Cmp3(GetString(a, off_a), GetString(b, off_b));
      case Type::kPointer:
        return Cmp3(GetPointer(a, off_a), GetPointer(b, off_b));
    }
    return 0;
  }
  // Mixed integer widths.
  auto widen = [](TupleRef t, size_t off, Type ty) -> int64_t {
    return ty == Type::kInt32 ? GetInt32(t, off) : GetInt64(t, off);
  };
  if ((ta == Type::kInt32 || ta == Type::kInt64) &&
      (tb == Type::kInt32 || tb == Type::kInt64)) {
    return Cmp3(widen(a, off_a, ta), widen(b, off_b, tb));
  }
  return Cmp3(TypeRank(ta), TypeRank(tb));  // incomparable: never equal
}

int CompareValueField(const Value& v, TupleRef t, const Schema& schema,
                      size_t i) {
  counters::BumpComparisons();
  const size_t off = schema.offset(i);
  if (TypeRank(v.type()) != TypeRank(schema.field(i).type)) {
    return Cmp3(TypeRank(v.type()), TypeRank(schema.field(i).type));
  }
  switch (schema.field(i).type) {
    case Type::kInt32:
      // Accept either integer width as the constant.
      if (v.type() == Type::kInt64) {
        return Cmp3<int64_t>(v.AsInt64(), GetInt32(t, off));
      }
      return Cmp3(v.AsInt32(), GetInt32(t, off));
    case Type::kInt64:
      if (v.type() == Type::kInt32) {
        return Cmp3<int64_t>(v.AsInt32(), GetInt64(t, off));
      }
      return Cmp3(v.AsInt64(), GetInt64(t, off));
    case Type::kDouble: return Cmp3(v.AsDouble(), GetDouble(t, off));
    case Type::kString:
      return Cmp3<std::string_view>(v.AsString(), GetString(t, off));
    case Type::kPointer: return Cmp3(v.AsPointer(), GetPointer(t, off));
  }
  return 0;
}

uint64_t HashField(TupleRef t, const Schema& schema, size_t i) {
  counters::BumpHashCalls();
  const size_t off = schema.offset(i);
  switch (schema.field(i).type) {
    case Type::kInt32:
      return HashMix64(static_cast<uint64_t>(GetInt32(t, off)));
    case Type::kInt64:
      return HashMix64(static_cast<uint64_t>(GetInt64(t, off)));
    case Type::kDouble: return HashDouble(GetDouble(t, off));
    case Type::kString: return HashString(GetString(t, off));
    case Type::kPointer:
      return HashMix64(reinterpret_cast<uintptr_t>(GetPointer(t, off)));
  }
  return 0;
}

std::string ToString(TupleRef t, const Schema& schema) {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < schema.field_count(); ++i) {
    if (i) os << ", ";
    os << GetValue(t, schema, i).ToString();
  }
  os << ")";
  return os.str();
}

}  // namespace tuple
}  // namespace mmdb
