// Raw tuple accessors.  A tuple is a fixed-width record (layout given by a
// Schema) living inside a Partition's slot area.  String fields hold a
// pointer to a {uint32 length, bytes} blob in the partition heap; pointer
// fields hold a TupleRef into another relation (precomputed joins).
//
// These are free functions over TupleRef because indices and join operators
// touch millions of fields and must not pay for any wrapper object.

#ifndef MMDB_STORAGE_TUPLE_H_
#define MMDB_STORAGE_TUPLE_H_

#include <cstring>
#include <string_view>

#include "src/storage/schema.h"
#include "src/storage/value.h"

namespace mmdb {
namespace tuple {

inline int32_t GetInt32(TupleRef t, size_t offset) {
  int32_t v;
  std::memcpy(&v, t + offset, sizeof(v));
  return v;
}

inline int64_t GetInt64(TupleRef t, size_t offset) {
  int64_t v;
  std::memcpy(&v, t + offset, sizeof(v));
  return v;
}

inline double GetDouble(TupleRef t, size_t offset) {
  double v;
  std::memcpy(&v, t + offset, sizeof(v));
  return v;
}

/// Reads the heap pointer stored in a string field and returns a view of the
/// blob it addresses.  Empty strings are stored as a null heap pointer.
inline std::string_view GetString(TupleRef t, size_t offset) {
  const std::byte* blob;
  std::memcpy(&blob, t + offset, sizeof(blob));
  if (blob == nullptr) return {};
  uint32_t len;
  std::memcpy(&len, blob, sizeof(len));
  return {reinterpret_cast<const char*>(blob + sizeof(len)), len};
}

inline TupleRef GetPointer(TupleRef t, size_t offset) {
  TupleRef v;
  std::memcpy(&v, t + offset, sizeof(v));
  return v;
}

/// Materializes field `i` of `t` as a Value (boundary representation).
Value GetValue(TupleRef t, const Schema& schema, size_t i);

/// Three-way comparison of the same field in two tuples, without
/// materializing Values.  Bumps the comparison counter.
int CompareField(TupleRef a, TupleRef b, const Schema& schema, size_t i);

/// Three-way comparison of field `fa` of tuple `a` against field `fb` of
/// tuple `b`, possibly from different relations (join comparisons).  The
/// fields must have comparable types (integer widths may mix).
int CompareFields(TupleRef a, const Schema& sa, size_t fa, TupleRef b,
                  const Schema& sb, size_t fb);

/// Three-way comparison of a constant against a tuple field:
/// <0 if v < field, 0 if equal, >0 if v > field.  Bumps the counter.
int CompareValueField(const Value& v, TupleRef t, const Schema& schema, size_t i);

/// Hash of a tuple field, consistent with CompareField equality.
uint64_t HashField(TupleRef t, const Schema& schema, size_t i);

/// "(<v0>, <v1>, ...)" rendering for diagnostics.
std::string ToString(TupleRef t, const Schema& schema);

}  // namespace tuple
}  // namespace mmdb

#endif  // MMDB_STORAGE_TUPLE_H_
