#include "src/storage/value.h"

#include <cassert>
#include <sstream>

#include "src/util/hash.h"

namespace mmdb {

size_t TypeWidth(Type t) {
  switch (t) {
    case Type::kInt32: return 4;
    case Type::kInt64: return 8;
    case Type::kDouble: return 8;
    case Type::kString: return 8;   // pointer to {uint32 len, bytes} heap blob
    case Type::kPointer: return 8;  // raw tuple pointer
  }
  return 0;
}

const char* TypeName(Type t) {
  switch (t) {
    case Type::kInt32: return "int32";
    case Type::kInt64: return "int64";
    case Type::kDouble: return "double";
    case Type::kString: return "string";
    case Type::kPointer: return "pointer";
  }
  return "?";
}

Type Value::type() const {
  switch (v_.index()) {
    case 0: return Type::kInt32;
    case 1: return Type::kInt64;
    case 2: return Type::kDouble;
    case 3: return Type::kString;
    case 4: return Type::kPointer;
  }
  return Type::kInt32;
}

namespace {

template <typename T>
int Cmp3(T a, T b) {
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}

}  // namespace

int Value::Compare(const Value& other) const {
  const Type a = type(), b = other.type();
  // Numeric cross-width comparisons (int32 vs int64) widen to int64.
  if ((a == Type::kInt32 || a == Type::kInt64) &&
      (b == Type::kInt32 || b == Type::kInt64)) {
    int64_t x = a == Type::kInt32 ? AsInt32() : AsInt64();
    int64_t y = b == Type::kInt32 ? other.AsInt32() : other.AsInt64();
    return Cmp3(x, y);
  }
  assert(a == b && "Value::Compare across incompatible types");
  switch (a) {
    case Type::kInt32: return Cmp3(AsInt32(), other.AsInt32());
    case Type::kInt64: return Cmp3(AsInt64(), other.AsInt64());
    case Type::kDouble: return Cmp3(AsDouble(), other.AsDouble());
    case Type::kString: return Cmp3<std::string_view>(AsString(), other.AsString());
    case Type::kPointer: return Cmp3(AsPointer(), other.AsPointer());
  }
  return 0;
}

uint64_t Value::Hash() const {
  switch (type()) {
    case Type::kInt32: return HashMix64(static_cast<uint64_t>(AsInt32()));
    case Type::kInt64: return HashMix64(static_cast<uint64_t>(AsInt64()));
    case Type::kDouble: return HashDouble(AsDouble());
    case Type::kString: return HashString(AsString());
    case Type::kPointer:
      return HashMix64(reinterpret_cast<uintptr_t>(AsPointer()));
  }
  return 0;
}

std::string Value::ToString() const {
  std::ostringstream os;
  switch (type()) {
    case Type::kInt32: os << AsInt32(); break;
    case Type::kInt64: os << AsInt64(); break;
    case Type::kDouble: os << AsDouble(); break;
    case Type::kString: os << '"' << AsString() << '"'; break;
    case Type::kPointer: os << "@" << static_cast<const void*>(AsPointer()); break;
  }
  return os.str();
}

}  // namespace mmdb
