// Value: the typed scalar used on the public API surface (inserts, predicate
// constants, query results).  Inside the engine, data lives in fixed-width
// tuple records (see tuple.h) and is compared through KeyOps without ever
// materializing a Value; Value is the boundary representation.

#ifndef MMDB_STORAGE_VALUE_H_
#define MMDB_STORAGE_VALUE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

namespace mmdb {

/// A pointer to a tuple's fixed-width record inside some partition.
/// Tuples never move once inserted (Section 2.1), so these are stable.
using TupleRef = const std::byte*;

/// Column types supported by the storage engine.
enum class Type : uint8_t {
  kInt32 = 0,
  kInt64 = 1,
  kDouble = 2,
  kString = 3,   ///< variable length; tuple stores a pointer into partition heap
  kPointer = 4,  ///< tuple pointer: foreign keys materialized per Section 2.1
};

/// Number of bytes a field of this type occupies in the fixed-width record.
size_t TypeWidth(Type t);

/// Human-readable type name ("int32", "string", ...).
const char* TypeName(Type t);

/// Tagged scalar.  String payloads are owned copies.
class Value {
 public:
  Value() : v_(int32_t{0}) {}
  Value(int32_t v) : v_(v) {}                      // NOLINT(runtime/explicit)
  Value(int64_t v) : v_(v) {}                      // NOLINT(runtime/explicit)
  Value(double v) : v_(v) {}                       // NOLINT(runtime/explicit)
  Value(std::string v) : v_(std::move(v)) {}       // NOLINT(runtime/explicit)
  Value(const char* v) : v_(std::string(v)) {}     // NOLINT(runtime/explicit)
  Value(std::string_view v) : v_(std::string(v)) {}  // NOLINT(runtime/explicit)
  Value(TupleRef v) : v_(v) {}                     // NOLINT(runtime/explicit)

  Type type() const;

  int32_t AsInt32() const { return std::get<int32_t>(v_); }
  int64_t AsInt64() const { return std::get<int64_t>(v_); }
  double AsDouble() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }
  TupleRef AsPointer() const { return std::get<TupleRef>(v_); }

  /// Three-way comparison.  Both values must have the same type, except that
  /// integer widths (int32/int64) compare numerically against each other.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Hash consistent with Compare()==0 (numeric cross-width included).
  uint64_t Hash() const;

  /// Rendering for examples and test diagnostics.
  std::string ToString() const;

 private:
  std::variant<int32_t, int64_t, double, std::string, TupleRef> v_;
};

}  // namespace mmdb

#endif  // MMDB_STORAGE_VALUE_H_
