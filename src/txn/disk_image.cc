#include "src/txn/disk_image.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iterator>

#include "src/storage/tuple.h"

namespace mmdb {
namespace serialize {
namespace {

template <typename T>
void Put(TupleImage* out, T v) {
  const size_t n = out->size();
  out->resize(n + sizeof(T));
  std::memcpy(out->data() + n, &v, sizeof(T));
}

template <typename T>
bool Get(const TupleImage& in, size_t* pos, T* v) {
  if (*pos + sizeof(T) > in.size()) return false;
  std::memcpy(v, in.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

void PutString(TupleImage* out, std::string_view s) {
  Put<uint32_t>(out, static_cast<uint32_t>(s.size()));
  const size_t n = out->size();
  out->resize(n + s.size());
  std::memcpy(out->data() + n, s.data(), s.size());
}

bool GetString(const TupleImage& in, size_t* pos, std::string* s) {
  uint32_t len;
  if (!Get(in, pos, &len)) return false;
  if (*pos + len > in.size()) return false;
  s->assign(reinterpret_cast<const char*>(in.data() + *pos), len);
  *pos += len;
  return true;
}

}  // namespace

TupleImage EncodeTuple(const Relation& rel, TupleRef t) {
  const Schema& schema = rel.schema();
  TupleImage out;
  for (size_t i = 0; i < schema.field_count(); ++i) {
    const size_t off = schema.offset(i);
    switch (schema.field(i).type) {
      case Type::kInt32:
        Put(&out, tuple::GetInt32(t, off));
        break;
      case Type::kInt64:
        Put(&out, tuple::GetInt64(t, off));
        break;
      case Type::kDouble:
        Put(&out, tuple::GetDouble(t, off));
        break;
      case Type::kString:
        PutString(&out, tuple::GetString(t, off));
        break;
      case Type::kPointer: {
        // Stable representation: the target's TupleId, resolvable because a
        // declared foreign key names the target relation.
        TupleRef p = tuple::GetPointer(t, off);
        const ForeignKeyDecl* fk = rel.ForeignKeyOn(i);
        if (p == nullptr || fk == nullptr) {
          Put<uint8_t>(&out, 0);
        } else {
          Put<uint8_t>(&out, 1);
          TupleId tid = fk->target->IdOf(p);
          Put<uint32_t>(&out, tid.partition);
          Put<uint32_t>(&out, tid.slot);
        }
        break;
      }
    }
  }
  return out;
}

Status DecodeTuple(const Relation& rel, const TupleImage& image,
                   std::vector<Value>* values,
                   std::vector<PointerFixup>* fixups) {
  const Schema& schema = rel.schema();
  values->clear();
  values->reserve(schema.field_count());
  size_t pos = 0;
  for (size_t i = 0; i < schema.field_count(); ++i) {
    switch (schema.field(i).type) {
      case Type::kInt32: {
        int32_t v;
        if (!Get(image, &pos, &v)) return Status::Internal("truncated image");
        values->push_back(Value(v));
        break;
      }
      case Type::kInt64: {
        int64_t v;
        if (!Get(image, &pos, &v)) return Status::Internal("truncated image");
        values->push_back(Value(v));
        break;
      }
      case Type::kDouble: {
        double v;
        if (!Get(image, &pos, &v)) return Status::Internal("truncated image");
        values->push_back(Value(v));
        break;
      }
      case Type::kString: {
        std::string s;
        if (!GetString(image, &pos, &s)) {
          return Status::Internal("truncated image");
        }
        values->push_back(Value(std::move(s)));
        break;
      }
      case Type::kPointer: {
        uint8_t has;
        if (!Get(image, &pos, &has)) return Status::Internal("truncated image");
        values->push_back(Value(TupleRef{nullptr}));
        if (has != 0) {
          uint32_t partition, slot;
          if (!Get(image, &pos, &partition) || !Get(image, &pos, &slot)) {
            return Status::Internal("truncated image");
          }
          const ForeignKeyDecl* fk = rel.ForeignKeyOn(i);
          if (fk == nullptr) {
            return Status::Internal("pointer field without foreign key");
          }
          if (fixups != nullptr) {
            fixups->push_back(serialize::PointerFixup{
                i, fk->target->name(), TupleId{partition, slot}});
          }
        }
        break;
      }
    }
  }
  if (pos != image.size()) return Status::Internal("trailing bytes in image");
  return Status::Ok();
}

}  // namespace serialize

void DiskImage::CheckpointRelation(const Relation& rel) {
  auto& partitions = data_[rel.name()];
  partitions.clear();
  for (const auto& p : rel.partitions()) {
    PartitionImage image;
    p->ForEachLive([&](TupleRef t) {
      image[p->SlotOf(t)] = serialize::EncodeTuple(rel, t);
    });
    partitions[p->id()] = std::move(image);
  }
}

void DiskImage::StorePartition(const std::string& relation, uint32_t partition,
                               PartitionImage image) {
  data_[relation][partition] = std::move(image);
}

const PartitionImage* DiskImage::ReadPartition(const std::string& relation,
                                               uint32_t partition) const {
  auto rit = data_.find(relation);
  if (rit == data_.end()) return nullptr;
  auto pit = rit->second.find(partition);
  return pit == rit->second.end() ? nullptr : &pit->second;
}

PartitionImage* DiskImage::MutablePartition(const std::string& relation,
                                            uint32_t partition) {
  return &data_[relation][partition];
}

std::vector<uint32_t> DiskImage::PartitionsOf(
    const std::string& relation) const {
  std::vector<uint32_t> out;
  auto rit = data_.find(relation);
  if (rit == data_.end()) return out;
  out.reserve(rit->second.size());
  for (const auto& [id, image] : rit->second) out.push_back(id);
  return out;
}

std::vector<std::string> DiskImage::Relations() const {
  std::vector<std::string> out;
  out.reserve(data_.size());
  for (const auto& [name, partitions] : data_) out.push_back(name);
  return out;
}

size_t DiskImage::TotalBytes() const {
  size_t total = 0;
  for (const auto& [name, partitions] : data_) {
    for (const auto& [id, image] : partitions) {
      for (const auto& [slot, bytes] : image) total += bytes.size();
    }
  }
  return total;
}

namespace {

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool GetU32(std::string_view in, size_t* pos, uint32_t* v) {
  if (*pos + sizeof(*v) > in.size()) return false;
  std::memcpy(v, in.data() + *pos, sizeof(*v));
  *pos += sizeof(*v);
  return true;
}

}  // namespace

void DiskImage::SerializeTo(std::string* out) const {
  out->clear();
  PutU32(out, static_cast<uint32_t>(data_.size()));
  for (const auto& [name, partitions] : data_) {
    PutU32(out, static_cast<uint32_t>(name.size()));
    out->append(name);
    PutU32(out, static_cast<uint32_t>(partitions.size()));
    for (const auto& [id, image] : partitions) {
      PutU32(out, id);
      PutU32(out, static_cast<uint32_t>(image.size()));
      for (const auto& [slot, bytes] : image) {
        PutU32(out, slot);
        PutU32(out, static_cast<uint32_t>(bytes.size()));
        out->append(reinterpret_cast<const char*>(bytes.data()),
                    bytes.size());
      }
    }
  }
}

Status DiskImage::DeserializeFrom(std::string_view data) {
  data_.clear();
  size_t pos = 0;
  uint32_t relations;
  if (!GetU32(data, &pos, &relations)) {
    return Status::Internal("truncated image data");
  }
  for (uint32_t r = 0; r < relations; ++r) {
    uint32_t name_len;
    if (!GetU32(data, &pos, &name_len) || pos + name_len > data.size()) {
      return Status::Internal("truncated image data");
    }
    std::string name(data.substr(pos, name_len));
    pos += name_len;
    uint32_t partitions;
    if (!GetU32(data, &pos, &partitions)) {
      return Status::Internal("truncated image data");
    }
    for (uint32_t p = 0; p < partitions; ++p) {
      uint32_t id, tuples;
      if (!GetU32(data, &pos, &id) || !GetU32(data, &pos, &tuples)) {
        return Status::Internal("truncated image data");
      }
      PartitionImage image;
      for (uint32_t t = 0; t < tuples; ++t) {
        uint32_t slot, len;
        if (!GetU32(data, &pos, &slot) || !GetU32(data, &pos, &len) ||
            pos + len > data.size()) {
          return Status::Internal("truncated image data");
        }
        TupleImage bytes(len);
        std::memcpy(bytes.data(), data.data() + pos, len);
        pos += len;
        image[slot] = std::move(bytes);
      }
      data_[name][id] = std::move(image);
    }
  }
  if (pos != data.size()) return Status::Internal("trailing image data");
  return Status::Ok();
}

Status DiskImage::SaveToFile(const std::string& path) const {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return Status::Internal("cannot open " + path);
  std::string bytes;
  SerializeTo(&bytes);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return os ? Status::Ok() : Status::Internal("write failed: " + path);
}

Status DiskImage::LoadFromFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::NotFound("cannot open " + path);
  std::string bytes((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
  return DeserializeFrom(bytes);
}

}  // namespace mmdb
