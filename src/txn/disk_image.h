// DiskImage: the "disk copy of the database" of Figure 2.  Partitions are
// the unit of recovery (Section 2.1); the image stores one serialized
// snapshot per (relation, partition), which the log device keeps close to
// current by propagating committed updates, and which recovery reads back
// partition-by-partition.
//
// Serialization is *logical*: each live slot's field values, with
// variable-length strings inlined and tuple-pointer (foreign key) fields
// rewritten as stable TupleIds.  Raw memory addresses cannot survive a
// crash; TupleIds can, because recovery reloads every tuple into its
// original (partition, slot).
//
// The image lives in memory (it stands in for the paper's disk hardware)
// and can be saved to / loaded from a file for cross-process durability.

#ifndef MMDB_TXN_DISK_IMAGE_H_
#define MMDB_TXN_DISK_IMAGE_H_

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/storage/relation.h"
#include "src/util/status.h"

namespace mmdb {

/// Serialized field values of one tuple.
using TupleImage = std::vector<std::byte>;

/// Serialized live slots of one partition: slot -> tuple image.
using PartitionImage = std::map<uint32_t, TupleImage>;

namespace serialize {

/// Encodes a live tuple of `rel` (pointer fields become TupleIds resolved
/// through the relation's foreign-key declarations).
TupleImage EncodeTuple(const Relation& rel, TupleRef t);

/// A pointer field awaiting resolution after all relations are reloaded.
struct PointerFixup {
  size_t field = 0;
  std::string target_relation;
  TupleId target;
};

/// Decodes a tuple image into insertable values; pointer fields come back
/// as null pointers plus a PointerFixup entry each.
Status DecodeTuple(const Relation& rel, const TupleImage& image,
                   std::vector<Value>* values,
                   std::vector<PointerFixup>* fixups);

}  // namespace serialize

class DiskImage {
 public:
  /// Checkpoints every partition of `rel` into the image (replacing any
  /// previous snapshot of the relation).
  void CheckpointRelation(const Relation& rel);

  /// Writes one partition snapshot (used by the log device's propagation).
  void StorePartition(const std::string& relation, uint32_t partition,
                      PartitionImage image);

  /// Reads one partition snapshot; nullptr if absent.
  const PartitionImage* ReadPartition(const std::string& relation,
                                      uint32_t partition) const;

  /// Mutable access for in-place log propagation; creates if absent.
  PartitionImage* MutablePartition(const std::string& relation,
                                   uint32_t partition);

  /// Partition ids present for a relation, ascending.
  std::vector<uint32_t> PartitionsOf(const std::string& relation) const;

  /// Relations present in the image.
  std::vector<std::string> Relations() const;

  /// Byte-exact serialization (the checkpoint file payload; SaveToFile /
  /// LoadFromFile wrap the same format in a file).
  void SerializeTo(std::string* out) const;
  Status DeserializeFrom(std::string_view data);

  /// Byte-exact save/load for cross-process durability.
  Status SaveToFile(const std::string& path) const;
  Status LoadFromFile(const std::string& path);

  void Clear() { data_.clear(); }
  size_t TotalBytes() const;

 private:
  // relation -> partition id -> image
  std::map<std::string, std::map<uint32_t, PartitionImage>> data_;
};

}  // namespace mmdb

#endif  // MMDB_TXN_DISK_IMAGE_H_
