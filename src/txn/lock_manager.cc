#include "src/txn/lock_manager.h"

#include <algorithm>

namespace mmdb {

bool LockManager::HoldsShared(const LockState& s, uint64_t txn_id) const {
  return std::find(s.shared_holders.begin(), s.shared_holders.end(), txn_id) !=
         s.shared_holders.end();
}

bool LockManager::Acquire(uint64_t txn_id, const LockId& id, LockMode mode,
                          std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock<std::mutex> lock(mu_);
  LockState& s = table_[id];

  if (mode == LockMode::kShared) {
    if (s.exclusive_holder == txn_id) return true;  // X covers S
    if (HoldsShared(s, txn_id)) return true;
    for (;;) {
      if (s.exclusive_holder == 0 && s.waiting_exclusive == 0) {
        s.shared_holders.push_back(txn_id);
        return true;
      }
      ++s.waiting_shared;
      const auto wait = cv_.wait_until(lock, deadline);
      --s.waiting_shared;
      if (wait == std::cv_status::timeout) {
        if (s.Erasable()) table_.erase(id);
        return false;
      }
    }
  }

  // Exclusive.
  if (s.exclusive_holder == txn_id) return true;
  const bool upgrading = HoldsShared(s, txn_id);
  ++s.waiting_exclusive;
  for (;;) {
    const bool others_shared =
        s.shared_holders.size() > (upgrading ? 1u : 0u) ||
        (!upgrading && s.shared_holders.size() > 0);
    if (s.exclusive_holder == 0 && !others_shared) {
      if (upgrading) {
        s.shared_holders.erase(std::find(s.shared_holders.begin(),
                                         s.shared_holders.end(), txn_id));
      }
      s.exclusive_holder = txn_id;
      --s.waiting_exclusive;
      return true;
    }
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      --s.waiting_exclusive;
      if (s.Erasable()) table_.erase(id);
      cv_.notify_all();
      return false;
    }
  }
}

void LockManager::Release(uint64_t txn_id, const LockId& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = table_.find(id);
  if (it == table_.end()) return;
  LockState& s = it->second;
  if (s.exclusive_holder == txn_id) s.exclusive_holder = 0;
  std::erase(s.shared_holders, txn_id);
  if (s.Erasable()) table_.erase(it);
  cv_.notify_all();
}

void LockManager::ReleaseAll(uint64_t txn_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = table_.begin(); it != table_.end();) {
    LockState& s = it->second;
    if (s.exclusive_holder == txn_id) s.exclusive_holder = 0;
    std::erase(s.shared_holders, txn_id);
    if (s.Erasable()) {
      it = table_.erase(it);
    } else {
      ++it;
    }
  }
  cv_.notify_all();
}

std::vector<LockId> LockManager::HeldBy(uint64_t txn_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LockId> out;
  for (const auto& [id, s] : table_) {
    if (s.exclusive_holder == txn_id || HoldsShared(s, txn_id)) {
      out.push_back(id);
    }
  }
  return out;
}

size_t LockManager::GrantedCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [id, s] : table_) {
    n += s.shared_holders.size() + (s.exclusive_holder != 0 ? 1 : 0);
  }
  return n;
}

}  // namespace mmdb
