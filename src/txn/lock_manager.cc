#include "src/txn/lock_manager.h"

#include <algorithm>

#include "src/util/metrics.h"
#include "src/util/trace.h"

namespace mmdb {
namespace {

/// JSON args fragment for a lock_wait span ("mode":"S","scope":"partition",
/// "relation":"emp","granted":true).  Built only when tracing is enabled.
std::string LockSpanArgs(const LockId& id, LockMode mode, bool granted) {
  std::string args = "\"mode\":\"";
  args += mode == LockMode::kShared ? "S" : "X";
  args += "\",\"scope\":\"";
  args += id.partition == LockId::kRelationLock ? "structure" : "partition";
  args += "\",\"relation\":\"" + id.relation + "\"";
  if (id.partition != LockId::kRelationLock) {
    args += ",\"partition\":" + std::to_string(id.partition);
  }
  args += ",\"granted\":";
  args += granted ? "true" : "false";
  return args;
}

}  // namespace

bool LockManager::HoldsShared(const LockState& s, uint64_t txn_id) const {
  return std::find(s.shared_holders.begin(), s.shared_holders.end(), txn_id) !=
         s.shared_holders.end();
}

void LockManager::set_metrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    wait_hist_[0][0] = wait_hist_[0][1] = nullptr;
    wait_hist_[1][0] = wait_hist_[1][1] = nullptr;
    timeouts_ = nullptr;
    return;
  }
  const char* modes[2] = {"shared", "exclusive"};
  const char* scopes[2] = {"partition", "structure"};
  for (int m = 0; m < 2; ++m) {
    for (int s = 0; s < 2; ++s) {
      wait_hist_[m][s] = registry->GetHistogram(
          std::string("mmdb_lock_wait_micros{mode=\"") + modes[m] +
          "\",scope=\"" + scopes[s] + "\"}");
    }
  }
  timeouts_ = registry->GetCounter("mmdb_lock_timeouts_total");
}

bool LockManager::Acquire(uint64_t txn_id, const LockId& id, LockMode mode,
                          std::chrono::milliseconds timeout) {
  const auto start = std::chrono::steady_clock::now();
  const bool traced = trace::Enabled();
  const bool metered = timeouts_ != nullptr;
  // A worker inside a request scope always times the wait: the per-request
  // lock_us breakdown (flight recorder / wire response) needs it even when
  // span tracing and metrics are off.
  const bool in_request = trace::CurrentTraceId() != 0;
  if (!traced && !metered && !in_request) {
    return AcquireImpl(txn_id, id, mode, start + timeout);
  }

  const bool granted = AcquireImpl(txn_id, id, mode, start + timeout);
  const auto end = std::chrono::steady_clock::now();
  if (in_request) {
    trace::AddLockWaitNanos(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count()));
  }
  if (metered) {
    const int m = mode == LockMode::kExclusive ? 1 : 0;
    const int s = id.partition == LockId::kRelationLock ? 1 : 0;
    wait_hist_[m][s]->Record(
        std::chrono::duration<double, std::micro>(end - start).count());
    if (!granted) timeouts_->Add(1);
  }
  if (traced) {
    trace::RecordSpan("lock_wait", start, end,
                      LockSpanArgs(id, mode, granted));
  }
  return granted;
}

bool LockManager::AcquireImpl(uint64_t txn_id, const LockId& id,
                              LockMode mode,
                              std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mu_);
  LockState& s = table_[id];

  if (mode == LockMode::kShared) {
    if (s.exclusive_holder == txn_id) return true;  // X covers S
    if (HoldsShared(s, txn_id)) return true;
    for (;;) {
      if (s.exclusive_holder == 0 && s.waiting_exclusive == 0) {
        s.shared_holders.push_back(txn_id);
        return true;
      }
      ++s.waiting_shared;
      const auto wait = cv_.wait_until(lock, deadline);
      --s.waiting_shared;
      if (wait == std::cv_status::timeout) {
        if (s.Erasable()) table_.erase(id);
        return false;
      }
    }
  }

  // Exclusive.
  if (s.exclusive_holder == txn_id) return true;
  const bool upgrading = HoldsShared(s, txn_id);
  ++s.waiting_exclusive;
  for (;;) {
    const bool others_shared =
        s.shared_holders.size() > (upgrading ? 1u : 0u) ||
        (!upgrading && s.shared_holders.size() > 0);
    if (s.exclusive_holder == 0 && !others_shared) {
      if (upgrading) {
        s.shared_holders.erase(std::find(s.shared_holders.begin(),
                                         s.shared_holders.end(), txn_id));
      }
      s.exclusive_holder = txn_id;
      --s.waiting_exclusive;
      return true;
    }
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      --s.waiting_exclusive;
      if (s.Erasable()) table_.erase(id);
      cv_.notify_all();
      return false;
    }
  }
}

void LockManager::Release(uint64_t txn_id, const LockId& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = table_.find(id);
  if (it == table_.end()) return;
  LockState& s = it->second;
  if (s.exclusive_holder == txn_id) s.exclusive_holder = 0;
  std::erase(s.shared_holders, txn_id);
  if (s.Erasable()) table_.erase(it);
  cv_.notify_all();
}

void LockManager::ReleaseAll(uint64_t txn_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = table_.begin(); it != table_.end();) {
    LockState& s = it->second;
    if (s.exclusive_holder == txn_id) s.exclusive_holder = 0;
    std::erase(s.shared_holders, txn_id);
    if (s.Erasable()) {
      it = table_.erase(it);
    } else {
      ++it;
    }
  }
  cv_.notify_all();
}

std::vector<LockId> LockManager::HeldBy(uint64_t txn_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LockId> out;
  for (const auto& [id, s] : table_) {
    if (s.exclusive_holder == txn_id || HoldsShared(s, txn_id)) {
      out.push_back(id);
    }
  }
  return out;
}

std::vector<LockId> LockManager::ExclusiveHeldBy(uint64_t txn_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LockId> out;
  for (const auto& [id, s] : table_) {
    if (s.exclusive_holder == txn_id) out.push_back(id);
  }
  return out;
}

size_t LockManager::GrantedCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [id, s] : table_) {
    n += s.shared_holders.size() + (s.exclusive_holder != 0 ? 1 : 0);
  }
  return n;
}

}  // namespace mmdb
