// Partition-level locking (Section 2.4).  "It will be reasonable to lock
// large items, as locks will be held for only a short time ... We expect to
// set locks at the partition level, a fairly coarse level of granularity,
// as tuple-level locking would be prohibitively expensive here" — a lock
// table is itself a hashed relation, so a tuple lock would double the cost
// of every tuple access.
//
// Shared/exclusive locks with FIFO-fair waiting; deadlocks are broken by a
// wait timeout (the transaction manager aborts the timed-out transaction).
// Lock upgrade (S -> X by the sole shared holder) is supported.

#ifndef MMDB_TXN_LOCK_MANAGER_H_
#define MMDB_TXN_LOCK_MANAGER_H_

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace mmdb {

class MetricsRegistry;

/// What gets locked: one partition of one relation.  The sentinel partition
/// kRelationLock covers relation-structure changes (growing a new
/// partition during inserts).
struct LockId {
  std::string relation;
  uint32_t partition = 0;

  static constexpr uint32_t kRelationLock = 0xFFFFFFFFu;

  bool operator<(const LockId& o) const {
    if (relation != o.relation) return relation < o.relation;
    return partition < o.partition;
  }
  bool operator==(const LockId& o) const = default;
};

enum class LockMode : uint8_t { kShared, kExclusive };

class LockManager {
 public:
  /// Blocks until granted or `timeout` elapses.  Returns false on timeout
  /// (the caller should treat its transaction as deadlock victim).
  /// Re-acquiring a held lock is a no-op; S->X upgrade waits for other
  /// sharers to drain.
  bool Acquire(uint64_t txn_id, const LockId& id, LockMode mode,
               std::chrono::milliseconds timeout =
                   std::chrono::milliseconds(200));

  /// Releases one lock held by txn.
  void Release(uint64_t txn_id, const LockId& id);

  /// Releases everything txn holds (commit/abort).
  void ReleaseAll(uint64_t txn_id);

  /// Locks currently held by txn (diagnostics/tests).
  std::vector<LockId> HeldBy(uint64_t txn_id) const;

  /// Exclusive locks currently held by txn — a committing transaction's
  /// write footprint (partition X locks for partition-local DML, the
  /// kRelationLock sentinel for escalated relation-wide writes).  The
  /// reuse cache invalidates overlapping entries from exactly this set,
  /// before the locks are released.
  std::vector<LockId> ExclusiveHeldBy(uint64_t txn_id) const;

  /// Total number of held (granted) locks.
  size_t GrantedCount() const;

  /// Wires lock observability into `registry` (pass nullptr to disconnect):
  /// every Acquire records its wait time into one of four
  /// `mmdb_lock_wait_micros{mode=...,scope=...}` histograms (mode S/X,
  /// scope partition/structure) and counts timeouts in
  /// `mmdb_lock_timeouts_total`.  When tracing is enabled, each call also
  /// emits a "lock_wait" span tagged the same way.
  void set_metrics(MetricsRegistry* registry);

 private:
  struct LockState {
    // Granted holders; exclusive_holder != 0 means one X holder.
    std::vector<uint64_t> shared_holders;
    uint64_t exclusive_holder = 0;
    // Writers waiting; new readers queue behind them (no writer starvation).
    size_t waiting_exclusive = 0;
    // Readers blocked in Acquire.  Any waiter (S or X) pins the table entry:
    // blocked acquirers hold a reference into table_ across cv_ waits, so
    // Release/ReleaseAll must not erase the entry while waiters exist.
    size_t waiting_shared = 0;

    bool Free() const {
      return shared_holders.empty() && exclusive_holder == 0;
    }
    bool Erasable() const {
      return Free() && waiting_exclusive == 0 && waiting_shared == 0;
    }
  };

  bool HoldsShared(const LockState& s, uint64_t txn_id) const;
  bool AcquireImpl(uint64_t txn_id, const LockId& id, LockMode mode,
                   std::chrono::steady_clock::time_point deadline);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<LockId, LockState> table_;

  // Observability (optional): wait-time histograms indexed
  // [mode][scope], scope 0 = partition, 1 = structure.  Cached pointers so
  // the hot path never touches the registry map.
  class LatencyHistogram* wait_hist_[2][2] = {};
  class Counter* timeouts_ = nullptr;
};

}  // namespace mmdb

#endif  // MMDB_TXN_LOCK_MANAGER_H_
