#include "src/txn/log.h"

#include <algorithm>

namespace mmdb {

const char* LogOpName(LogOp op) {
  switch (op) {
    case LogOp::kInsert: return "insert";
    case LogOp::kDelete: return "delete";
    case LogOp::kUpdate: return "update";
    case LogOp::kCommit: return "commit";
  }
  return "?";
}

uint64_t StableLogBuffer::Append(LogRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  record.lsn = next_lsn_++;
  const uint64_t lsn = record.lsn;
  records_.push_back(std::move(record));
  return lsn;
}

bool StableLogBuffer::IsCommitted(uint64_t txn_id) const {
  return std::find(committed_txns_.begin(), committed_txns_.end(), txn_id) !=
         committed_txns_.end();
}

bool StableLogBuffer::HasRecords(uint64_t txn_id) const {
  for (const LogRecord& r : records_) {
    if (r.txn_id == txn_id) return true;
  }
  return false;
}

uint64_t StableLogBuffer::Commit(uint64_t txn_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (IsCommitted(txn_id)) return 0;
  // A transaction that wrote nothing needs neither registration nor a
  // marker; registering it would leak an entry that no drain ever removes.
  if (!HasRecords(txn_id)) return 0;
  committed_txns_.push_back(txn_id);
  LogRecord marker;
  marker.txn_id = txn_id;
  marker.op = LogOp::kCommit;
  marker.lsn = next_lsn_++;
  const uint64_t lsn = marker.lsn;
  records_.push_back(std::move(marker));
  return lsn;
}

void StableLogBuffer::Abort(uint64_t txn_id) {
  std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(records_,
                [txn_id](const LogRecord& r) { return r.txn_id == txn_id; });
}

void StableLogBuffer::Patch(uint64_t lsn, TupleId tid,
                            const TupleImage* payload) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    if (it->lsn == lsn) {
      it->tid = tid;
      if (payload != nullptr) it->payload = *payload;
      return;
    }
  }
}

std::vector<LogRecord> StableLogBuffer::DrainCommitted(size_t max) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LogRecord> out;
  // Pop from the front while the head record belongs to a committed
  // transaction; an in-flight head blocks draining (records must reach the
  // log device in LSN order for the change accumulation to be correct).
  while (out.size() < max && !records_.empty() &&
         IsCommitted(records_.front().txn_id)) {
    // The commit marker is a transaction's last record; draining it means
    // the transaction is fully out of the buffer, so its id can be
    // forgotten (the committed-txns list stays bounded by in-flight txns).
    if (records_.front().is_commit_marker()) {
      std::erase(committed_txns_, records_.front().txn_id);
    }
    out.push_back(std::move(records_.front()));
    records_.pop_front();
  }
  return out;
}

void StableLogBuffer::ResetNextLsn(uint64_t next) {
  std::lock_guard<std::mutex> lock(mu_);
  next_lsn_ = next;
}

size_t StableLogBuffer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

size_t StableLogBuffer::committed_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const LogRecord& r : records_) {
    if (IsCommitted(r.txn_id)) ++n;
  }
  return n;
}

uint64_t StableLogBuffer::last_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_ - 1;
}

}  // namespace mmdb
