// Write-ahead logging, IMS FASTPATH style (Section 2.4): "The MM-DBMS
// writes all log information directly into a stable log buffer before the
// actual update is done to the database.  If the transaction aborts, then
// the log entry is removed and no undo is needed.  If the transaction
// commits, then the updates are propagated to the database."
//
// Records are redo-only after-images addressed by stable TupleIds; the
// StableLogBuffer is the battery-backed staging area between transactions
// and the LogDevice.

#ifndef MMDB_TXN_LOG_H_
#define MMDB_TXN_LOG_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "src/txn/disk_image.h"

namespace mmdb {

/// kCommit is a transaction's commit marker: appended by Commit() after the
/// transaction's data records, it is what makes the transaction durable —
/// WAL replay applies only records of transactions whose marker survives in
/// the valid log prefix, so a torn tail can never expose a partial batch.
enum class LogOp : uint8_t { kInsert, kDelete, kUpdate, kCommit };

const char* LogOpName(LogOp op);

struct LogRecord {
  uint64_t lsn = 0;
  uint64_t txn_id = 0;
  LogOp op = LogOp::kInsert;
  std::string relation;
  TupleId tid;
  /// Full-tuple after-image (EncodeTuple format); empty for deletes.
  TupleImage payload;

  bool is_commit_marker() const { return op == LogOp::kCommit; }
};

/// The stable log buffer of Figure 2.  Transactions append records before
/// applying updates; commit makes a transaction's records visible to the
/// log device; abort removes them outright.  Thread-safe.
class StableLogBuffer {
 public:
  /// Appends a record (assigning its LSN) and returns that LSN.
  uint64_t Append(LogRecord record);

  /// Makes all of txn's records eligible for the log device, appending a
  /// kCommit marker after them.  Returns the marker's LSN — the durability
  /// watermark a sync-mode commit waits on — or 0 if the transaction wrote
  /// nothing (no marker is appended).
  uint64_t Commit(uint64_t txn_id);

  /// Removes txn's records ("the log entry is removed and no undo is
  /// needed").
  void Abort(uint64_t txn_id);

  /// Fills in the TupleId (and, if non-null, the payload) of an existing
  /// record.  Inserts log their intent before the update (WAL order) but
  /// only learn their slot when the update is applied; this closes the gap.
  void Patch(uint64_t lsn, TupleId tid, const TupleImage* payload);

  /// Pops up to `max` committed records in LSN order (log device intake).
  std::vector<LogRecord> DrainCommitted(size_t max);

  /// Records still sitting in the buffer (committed + in-flight).
  size_t size() const;
  size_t committed_size() const;

  /// Latest LSN assigned so far.
  uint64_t last_lsn() const;

  /// Restarts LSN assignment at `next` (recovery: max replayed LSN + 1, so
  /// fresh records never collide with LSNs already on disk).
  void ResetNextLsn(uint64_t next);

 private:
  mutable std::mutex mu_;
  std::deque<LogRecord> records_;          // in-flight + committed, LSN order
  std::vector<uint64_t> committed_txns_;   // txns whose records may drain
  uint64_t next_lsn_ = 1;

  bool IsCommitted(uint64_t txn_id) const;
  bool HasRecords(uint64_t txn_id) const;
};

}  // namespace mmdb

#endif  // MMDB_TXN_LOG_H_
