#include "src/txn/log_device.h"

namespace mmdb {

size_t LogDevice::Pump(size_t max) {
  std::vector<LogRecord> drained = buffer_->DrainCommitted(max);
  std::lock_guard<std::mutex> lock(mu_);
  size_t data_records = 0;
  for (LogRecord& r : drained) {
    if (r.is_commit_marker()) continue;  // no data to accumulate
    Key key{r.relation, r.tid.partition};
    accumulation_[key].push_back(std::move(r));
    ++data_records;
  }
  return data_records;
}

void LogDevice::Accumulate(std::vector<LogRecord> records) {
  std::lock_guard<std::mutex> lock(mu_);
  for (LogRecord& r : records) {
    if (r.is_commit_marker()) continue;
    Key key{r.relation, r.tid.partition};
    accumulation_[key].push_back(std::move(r));
  }
}

void LogDevice::ApplyToImage(const LogRecord& record, PartitionImage* image) {
  switch (record.op) {
    case LogOp::kInsert:
    case LogOp::kUpdate:
      (*image)[record.tid.slot] = record.payload;
      break;
    case LogOp::kDelete:
      image->erase(record.tid.slot);
      break;
  }
}

size_t LogDevice::PropagatePartition(const std::string& relation,
                                     uint32_t partition) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = accumulation_.find(Key{relation, partition});
  if (it == accumulation_.end()) return 0;
  PartitionImage* image = disk_->MutablePartition(relation, partition);
  for (const LogRecord& r : it->second) ApplyToImage(r, image);
  const size_t applied = it->second.size();
  accumulation_.erase(it);
  return applied;
}

size_t LogDevice::PropagateAll() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t applied = 0;
  for (auto& [key, records] : accumulation_) {
    PartitionImage* image = disk_->MutablePartition(key.first, key.second);
    for (const LogRecord& r : records) ApplyToImage(r, image);
    applied += records.size();
  }
  accumulation_.clear();
  return applied;
}

std::vector<LogRecord> LogDevice::PendingFor(const std::string& relation,
                                             uint32_t partition) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = accumulation_.find(Key{relation, partition});
  if (it == accumulation_.end()) return {};
  return it->second;
}

std::vector<uint32_t> LogDevice::PendingPartitions(
    const std::string& relation) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint32_t> out;
  for (const auto& [key, records] : accumulation_) {
    if (key.first == relation) out.push_back(key.second);
  }
  return out;
}

size_t LogDevice::accumulated() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [key, records] : accumulation_) n += records.size();
  return n;
}

size_t LogDevice::Drain() {
  size_t total = 0;
  for (;;) {
    total += RunCycle();
    if (buffer_->committed_size() == 0 && accumulated() == 0) return total;
    std::this_thread::yield();  // head-of-buffer txn still in flight
  }
}

void LogDevice::StartBackground(std::chrono::milliseconds interval) {
  if (running_.exchange(true)) return;  // already running
  worker_ = std::thread([this, interval] {
    std::unique_lock<std::mutex> lock(stop_mu_);
    while (running_.load()) {
      lock.unlock();
      RunCycle();
      lock.lock();
      stop_cv_.wait_for(lock, interval, [this] { return !running_.load(); });
    }
  });
}

void LogDevice::StopBackground() {
  if (!running_.exchange(false)) return;
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_cv_.notify_all();
  }
  if (worker_.joinable()) worker_.join();
  Drain();  // full final drain so nothing committed is left behind
}

}  // namespace mmdb
