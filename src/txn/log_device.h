// LogDevice: the "active log device" of Figure 2.  "During normal
// operation, the log device reads the updates of committed transactions
// from the stable log buffer and updates the disk copy of the database.
// The log device holds a change accumulation log, so it does not need to
// update the disk version of the database every time a partition is
// modified."
//
// The paper envisions hardware; here it is a software component the
// application pumps (or runs on a background thread).  Recovery asks it for
// the accumulated-but-unpropagated records of each partition so they can be
// "merged with the partition on the fly".

#ifndef MMDB_TXN_LOG_DEVICE_H_
#define MMDB_TXN_LOG_DEVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/txn/disk_image.h"
#include "src/txn/log.h"

namespace mmdb {

class LogDevice {
 public:
  LogDevice(StableLogBuffer* buffer, DiskImage* disk)
      : buffer_(buffer), disk_(disk) {}
  ~LogDevice() { StopBackground(); }

  /// Moves up to `max` committed records from the stable log buffer into
  /// the change-accumulation log.  Commit markers are consumed but not
  /// accumulated (they carry no data); the return value counts only data
  /// records.
  size_t Pump(size_t max = 1024);

  /// Adds already-drained records to the accumulation log.  This is how the
  /// durability manager feeds the device in durable mode (it is the single
  /// drainer of the stable buffer: WAL append first, then accumulation),
  /// and how recovery injects the replayed WAL tail so LoadPartition can
  /// merge it with the checkpoint image.  Markers are skipped.
  void Accumulate(std::vector<LogRecord> records);

  /// Applies the accumulated records for one partition to the disk copy and
  /// forgets them.  Returns the number of records applied.
  size_t PropagatePartition(const std::string& relation, uint32_t partition);

  /// Propagates everything accumulated.  Returns total records applied.
  size_t PropagateAll();

  /// Pump-then-propagate convenience (one "device cycle").
  size_t RunCycle(size_t max = 1024) {
    const size_t pumped = Pump(max);
    PropagateAll();
    return pumped;
  }

  /// Loops RunCycle() until both the stable buffer's committed backlog and
  /// the accumulation log are empty — unlike a single pump, this cannot
  /// leave records behind.  Spins (yielding) past a head-of-buffer
  /// in-flight transaction; callers run it where none can exist (shutdown,
  /// checkpoint quiesce).  Returns total data records moved.
  size_t Drain();

  /// Accumulated records for a partition that have NOT yet reached the disk
  /// copy — recovery merges these with the on-disk partition on the fly.
  std::vector<LogRecord> PendingFor(const std::string& relation,
                                    uint32_t partition) const;

  /// Number of accumulated (unpropagated) records.
  size_t accumulated() const;

  /// Partition ids of `relation` with accumulated records (recovery unions
  /// these with the disk copy's partitions — a partition created after the
  /// last checkpoint exists only here).
  std::vector<uint32_t> PendingPartitions(const std::string& relation) const;

  // ---- Background operation ---------------------------------------------
  // The paper's log device is *active* hardware running alongside the CPU
  // (Figure 2); these run RunCycle() on a dedicated thread at the given
  // interval, the software equivalent.

  void StartBackground(std::chrono::milliseconds interval =
                           std::chrono::milliseconds(10));
  void StopBackground();
  bool background_running() const { return running_.load(); }

 private:
  using Key = std::pair<std::string, uint32_t>;

  /// Applies one record to a partition image.
  static void ApplyToImage(const LogRecord& record, PartitionImage* image);

  StableLogBuffer* buffer_;
  DiskImage* disk_;
  mutable std::mutex mu_;
  std::map<Key, std::vector<LogRecord>> accumulation_;

  std::atomic<bool> running_{false};
  std::thread worker_;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
};

}  // namespace mmdb

#endif  // MMDB_TXN_LOG_DEVICE_H_
