#include "src/txn/log_format.h"

#include <cstdio>
#include <cstring>

#include "src/util/crc32c.h"

namespace mmdb {
namespace log_format {
namespace {

template <typename T>
void Put(std::string* out, T v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool Get(std::string_view in, size_t* pos, T* v) {
  if (*pos + sizeof(T) > in.size()) return false;
  std::memcpy(v, in.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

std::string EncodePayload(const LogRecord& record) {
  std::string payload;
  Put<uint8_t>(&payload, static_cast<uint8_t>(record.op));
  Put<uint64_t>(&payload, record.lsn);
  Put<uint64_t>(&payload, record.txn_id);
  Put<uint32_t>(&payload, static_cast<uint32_t>(record.relation.size()));
  payload.append(record.relation);
  Put<uint32_t>(&payload, record.tid.partition);
  Put<uint32_t>(&payload, record.tid.slot);
  Put<uint32_t>(&payload, static_cast<uint32_t>(record.payload.size()));
  payload.append(reinterpret_cast<const char*>(record.payload.data()),
                 record.payload.size());
  return payload;
}

bool DecodePayload(std::string_view payload, LogRecord* record) {
  size_t pos = 0;
  uint8_t op;
  if (!Get(payload, &pos, &op)) return false;
  if (op > static_cast<uint8_t>(LogOp::kCommit)) return false;
  record->op = static_cast<LogOp>(op);
  if (!Get(payload, &pos, &record->lsn)) return false;
  if (!Get(payload, &pos, &record->txn_id)) return false;
  uint32_t rel_len;
  if (!Get(payload, &pos, &rel_len)) return false;
  if (pos + rel_len > payload.size()) return false;
  record->relation.assign(payload.data() + pos, rel_len);
  pos += rel_len;
  if (!Get(payload, &pos, &record->tid.partition)) return false;
  if (!Get(payload, &pos, &record->tid.slot)) return false;
  uint32_t image_len;
  if (!Get(payload, &pos, &image_len)) return false;
  if (pos + image_len > payload.size()) return false;
  record->payload.resize(image_len);
  std::memcpy(record->payload.data(), payload.data() + pos, image_len);
  pos += image_len;
  return pos == payload.size();
}

}  // namespace

void EncodeRecord(const LogRecord& record, std::string* out) {
  const std::string payload = EncodePayload(record);
  Put<uint32_t>(out, static_cast<uint32_t>(payload.size()));
  Put<uint32_t>(out,
                crc32c::Mask(crc32c::Value(payload.data(), payload.size())));
  out->append(payload);
}

DecodeResult DecodeRecord(std::string_view data, size_t* pos,
                          LogRecord* record) {
  if (*pos == data.size()) return DecodeResult::kEnd;
  const size_t start = *pos;
  size_t p = *pos;
  uint32_t len, masked_crc;
  if (!Get(data, &p, &len) || !Get(data, &p, &masked_crc) ||
      p + len > data.size()) {
    *pos = start;
    return DecodeResult::kTruncated;  // frame extends past end of data
  }
  const std::string_view payload = data.substr(p, len);
  if (crc32c::Unmask(masked_crc) !=
      crc32c::Value(payload.data(), payload.size())) {
    *pos = start;
    return DecodeResult::kCorrupt;
  }
  if (!DecodePayload(payload, record)) {
    *pos = start;
    return DecodeResult::kCorrupt;
  }
  *pos = p + len;
  return DecodeResult::kOk;
}

std::string EncodeCheckpoint(uint64_t lsn, std::string_view image_bytes) {
  std::string out;
  Put<uint64_t>(&out, kCheckpointMagic);
  Put<uint32_t>(&out, kCheckpointVersion);
  Put<uint64_t>(&out, lsn);
  Put<uint64_t>(&out, static_cast<uint64_t>(image_bytes.size()));
  Put<uint32_t>(&out, crc32c::Mask(crc32c::Value(image_bytes.data(),
                                                 image_bytes.size())));
  out.append(image_bytes);
  return out;
}

Status DecodeCheckpoint(std::string_view data, uint64_t* lsn,
                        std::string_view* image_bytes) {
  size_t pos = 0;
  uint64_t magic, payload_len;
  uint32_t version, masked_crc;
  if (!Get(data, &pos, &magic) || magic != kCheckpointMagic) {
    return Status::Internal("checkpoint: bad magic");
  }
  if (!Get(data, &pos, &version) || version != kCheckpointVersion) {
    return Status::Internal("checkpoint: unsupported version");
  }
  if (!Get(data, &pos, lsn) || !Get(data, &pos, &payload_len) ||
      !Get(data, &pos, &masked_crc)) {
    return Status::Internal("checkpoint: truncated header");
  }
  if (pos + payload_len != data.size()) {
    return Status::Internal("checkpoint: truncated payload");
  }
  *image_bytes = data.substr(pos, payload_len);
  if (crc32c::Unmask(masked_crc) !=
      crc32c::Value(image_bytes->data(), image_bytes->size())) {
    return Status::Internal("checkpoint: CRC mismatch");
  }
  return Status::Ok();
}

std::string CheckpointFileName(uint64_t lsn) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "checkpoint-%020llu.ckpt",
                static_cast<unsigned long long>(lsn));
  return buf;
}

std::string WalFileName(uint64_t start_lsn) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "wal-%020llu.log",
                static_cast<unsigned long long>(start_lsn));
  return buf;
}

namespace {

bool ParseNumbered(const std::string& name, const std::string& prefix,
                   const std::string& suffix, uint64_t* value) {
  if (name.size() != prefix.size() + 20 + suffix.size()) return false;
  if (name.rfind(prefix, 0) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  uint64_t v = 0;
  for (size_t i = prefix.size(); i < prefix.size() + 20; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    v = v * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *value = v;
  return true;
}

}  // namespace

bool ParseCheckpointFileName(const std::string& name, uint64_t* lsn) {
  return ParseNumbered(name, "checkpoint-", ".ckpt", lsn);
}

bool ParseWalFileName(const std::string& name, uint64_t* start_lsn) {
  return ParseNumbered(name, "wal-", ".log", start_lsn);
}

}  // namespace log_format
}  // namespace mmdb
