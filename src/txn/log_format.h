// Durable serialized form of the recovery chain (Section 2.4 made real):
//
//   WAL record frame   [u32 payload_len][u32 masked_crc32c][payload]
//   record payload     u8 op | u64 lsn | u64 txn_id
//                      | u32 rel_len | rel bytes
//                      | u32 partition | u32 slot
//                      | u32 image_len | image bytes
//   checkpoint file    [u64 magic][u32 version][u64 lsn]
//                      [u64 payload_len][u32 masked_crc32c][DiskImage bytes]
//
// LSNs are monotonic across the record stream; a decoder stops cleanly at
// the first truncated frame, CRC mismatch, or LSN regression — the torn
// tail a crash leaves behind is data loss only for transactions that were
// never acknowledged.
//
// File naming inside a durability directory:
//   schema.mmdb                 DDL journal (text, temp+rename)
//   checkpoint-<lsn,20d>.ckpt   atomic snapshot of the disk image at <lsn>
//   wal-<lsn,20d>.log           records with lsn > <lsn>, ascending

#ifndef MMDB_TXN_LOG_FORMAT_H_
#define MMDB_TXN_LOG_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/txn/log.h"

namespace mmdb {
namespace log_format {

inline constexpr uint64_t kCheckpointMagic = 0x4d4d44424b505431ull;  // "MMDBKPT1"
inline constexpr uint32_t kCheckpointVersion = 1;

/// Appends one framed record to `*out`.
void EncodeRecord(const LogRecord& record, std::string* out);

enum class DecodeResult {
  kOk,         ///< one record decoded, *pos advanced
  kEnd,        ///< clean end of data (nothing left at *pos)
  kCorrupt,    ///< complete frame with CRC mismatch / malformed payload
  /// The frame extends past the end of `data`: either a torn tail a crash
  /// left behind, or (for a replica tailing a live segment) simply bytes
  /// that have not arrived yet.  Replay treats it like kCorrupt (stop);
  /// the replication apply loop waits for more bytes instead.
  kTruncated,
};

/// Decodes the frame at `*pos`; on kOk fills `*record` and advances `*pos`.
/// On kCorrupt, `*pos` is left at the bad frame.
DecodeResult DecodeRecord(std::string_view data, size_t* pos,
                          LogRecord* record);

/// Wraps a serialized DiskImage into a checkpoint file body.
std::string EncodeCheckpoint(uint64_t lsn, std::string_view image_bytes);

/// Validates a checkpoint file; on success fills the lsn and the image
/// payload (a view into `data` — keep `data` alive).
Status DecodeCheckpoint(std::string_view data, uint64_t* lsn,
                        std::string_view* image_bytes);

// ---- Durability-directory file names ------------------------------------

std::string CheckpointFileName(uint64_t lsn);
std::string WalFileName(uint64_t start_lsn);
inline const char* SchemaFileName() { return "schema.mmdb"; }
/// Text manifest of sealed WAL segments (see WalManifest in src/txn/wal.h).
inline const char* ManifestFileName() { return "wal.manifest"; }

/// Parses "checkpoint-<lsn>.ckpt" / "wal-<lsn>.log"; false if `name` is not
/// of that shape.
bool ParseCheckpointFileName(const std::string& name, uint64_t* lsn);
bool ParseWalFileName(const std::string& name, uint64_t* start_lsn);

}  // namespace log_format
}  // namespace mmdb

#endif  // MMDB_TXN_LOG_FORMAT_H_
