#include "src/txn/recovery.h"

#include <algorithm>

namespace mmdb {

Status RecoveryManager::LoadPartition(Relation* rel, uint32_t partition_id) {
  if (!loaded_.insert({rel->name(), partition_id}).second) {
    return Status::Ok();  // already loaded (e.g. as working set)
  }
  // Start from the disk copy...
  PartitionImage merged;
  if (const PartitionImage* image = disk_->ReadPartition(rel->name(), partition_id)) {
    merged = *image;
  }
  // ...and merge unpropagated committed updates on the fly.
  const std::vector<LogRecord> pending =
      device_->PendingFor(rel->name(), partition_id);
  for (const LogRecord& r : pending) {
    switch (r.op) {
      case LogOp::kInsert:
      case LogOp::kUpdate:
        merged[r.tid.slot] = r.payload;
        break;
      case LogOp::kDelete:
        merged.erase(r.tid.slot);
        break;
    }
  }
  progress_.log_records_merged += pending.size();

  rel->GetOrCreatePartition(partition_id);
  std::vector<Value> values;
  std::vector<serialize::PointerFixup> fixups;
  for (const auto& [slot, image] : merged) {
    fixups.clear();
    Status s = serialize::DecodeTuple(*rel, image, &values, &fixups);
    if (!s.ok()) return s;
    TupleRef t = rel->InsertAt(TupleId{partition_id, slot}, values);
    if (t == nullptr) {
      return Status::Internal("slot collision during recovery of " +
                              rel->name());
    }
    for (const serialize::PointerFixup& f : fixups) {
      fixups_.push_back(DeferredFixup{rel, TupleId{partition_id, slot}, f});
    }
    ++progress_.tuples_loaded;
  }
  ++progress_.partitions_loaded;
  return Status::Ok();
}

std::vector<uint32_t> RecoveryManager::KnownPartitions(
    const std::string& relation) const {
  std::vector<uint32_t> ids = disk_->PartitionsOf(relation);
  for (uint32_t id : device_->PendingPartitions(relation)) {
    if (std::find(ids.begin(), ids.end(), id) == ids.end()) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

Status RecoveryManager::RecoverRelation(
    Relation* rel, const std::vector<uint32_t>& working_set) {
  std::vector<uint32_t> ids = KnownPartitions(rel->name());
  // Working-set partitions first (transactions resume against these), the
  // remainder standing in for the background reload.
  std::vector<uint32_t> ordered;
  for (uint32_t id : working_set) {
    if (std::find(ids.begin(), ids.end(), id) != ids.end()) {
      ordered.push_back(id);
    }
  }
  for (uint32_t id : ids) {
    if (std::find(ordered.begin(), ordered.end(), id) == ordered.end()) {
      ordered.push_back(id);
    }
  }
  for (uint32_t id : ordered) {
    Status s = LoadPartition(rel, id);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

Status RecoveryManager::ResolvePointers(const Catalog& catalog) {
  for (const DeferredFixup& f : fixups_) {
    Relation* target = catalog.Get(f.fixup.target_relation);
    if (target == nullptr) {
      return Status::Internal("missing foreign relation " +
                              f.fixup.target_relation);
    }
    TupleRef target_ref = target->RefOf(f.fixup.target);
    if (target_ref == nullptr) {
      return Status::Internal("dangling foreign key into " +
                              f.fixup.target_relation);
    }
    TupleRef t = f.relation->RefOf(f.tuple);
    if (t == nullptr) {
      return Status::Internal("fixup source vanished in " +
                              f.relation->name());
    }
    Status s = f.relation->UpdateField(t, f.fixup.field, Value(target_ref));
    if (!s.ok()) return s;
    ++progress_.pointers_resolved;
  }
  fixups_.clear();
  return Status::Ok();
}

}  // namespace mmdb
