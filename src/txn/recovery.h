// Crash recovery (Section 2.4).  "Each partition that participates in the
// working set is read from the disk copy of the database.  The log device
// is checked for any updates to that partition that have not yet been
// propagated to the disk copy.  Any updates that exist are merged with the
// partition on the fly and the updated partition is placed in memory.  Once
// the working set has been read in, the MM-DBMS should be able to run at
// close to its normal rate while the remainder of the database is read in
// by a background process."
//
// The caller recreates each relation's *shape* (schema, indexes, foreign
// key declarations) — DDL durability is out of scope — then RecoveryManager
// restores the data: working-set partitions first, then the rest, and
// finally one pointer-resolution pass once every relation's tuples are back
// at their original (partition, slot) addresses.

#ifndef MMDB_TXN_RECOVERY_H_
#define MMDB_TXN_RECOVERY_H_

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/storage/catalog.h"
#include "src/txn/disk_image.h"
#include "src/txn/log_device.h"

namespace mmdb {

class RecoveryManager {
 public:
  RecoveryManager(const DiskImage* disk, const LogDevice* device)
      : disk_(disk), device_(device) {}

  struct Progress {
    size_t partitions_loaded = 0;
    size_t tuples_loaded = 0;
    size_t log_records_merged = 0;
    size_t pointers_resolved = 0;
    /// WAL records discarded during file-backed recovery: transactions with
    /// no commit marker in the valid prefix, plus frames past the first
    /// corruption.  Filled by Database::Recover, not by this manager.
    size_t log_records_dropped = 0;
  };

  /// Loads one partition: disk snapshot merged with the log device's
  /// unpropagated records, tuples re-inserted at their original slots.
  /// Idempotent: a partition already loaded by this manager is skipped.
  Status LoadPartition(Relation* rel, uint32_t partition_id);

  /// All partitions of a relation, `working_set` ids first (the rest stand
  /// in for the background reload).
  Status RecoverRelation(Relation* rel,
                         const std::vector<uint32_t>& working_set = {});

  /// All partition ids known for a relation (disk copy plus partitions that
  /// exist only as accumulated log records).
  std::vector<uint32_t> KnownPartitions(const std::string& relation) const;

  /// Resolves every deferred tuple-pointer (foreign key) field recorded
  /// during loading.  Call once, after every relation has been recovered.
  Status ResolvePointers(const Catalog& catalog);

  const Progress& progress() const { return progress_; }

 private:
  struct DeferredFixup {
    Relation* relation;
    TupleId tuple;
    serialize::PointerFixup fixup;
  };

  const DiskImage* disk_;
  const LogDevice* device_;
  std::vector<DeferredFixup> fixups_;
  std::set<std::pair<std::string, uint32_t>> loaded_;
  Progress progress_;
};

}  // namespace mmdb

#endif  // MMDB_TXN_RECOVERY_H_
