#include "src/txn/transaction.h"

#include "src/cache/reuse_cache.h"
#include "src/storage/tuple.h"

namespace mmdb {

std::unique_ptr<Transaction> TransactionManager::Begin() {
  const uint64_t id = next_txn_id_.fetch_add(1);
  return std::unique_ptr<Transaction>(new Transaction(this, id));
}

Status Transaction::AcquireOrDie(const LockId& lock_id, LockMode mode) {
  if (!mgr_->locks()->Acquire(id_, lock_id, mode, lock_timeout_)) {
    // Timeout = presumed deadlock; this transaction is the victim.
    Abort();
    return Status::Aborted("lock timeout (deadlock victim) on " +
                           lock_id.relation);
  }
  return Status::Ok();
}

Status Transaction::Insert(const std::string& relation,
                           std::vector<Value> values) {
  if (state_ != State::kActive) return Status::FailedPrecondition("not active");
  Relation* rel = mgr_->catalog()->Get(relation);
  if (rel == nullptr) return Status::NotFound("no relation " + relation);
  if (values.size() != rel->schema().field_count()) {
    return Status::InvalidArgument("arity mismatch");
  }
  // Structure S pins the partition set while we reserve a target.
  Status s = AcquireOrDie(LockId{relation, LockId::kRelationLock},
                          LockMode::kShared);
  if (!s.ok()) return s;

  uint32_t reserved = LockId::kRelationLock;
  if (rel->HasGlobalIndex() || !rel->foreign_keys().empty()) {
    // A global (e.g. unique) index is rewritten by this insert, and foreign
    // key resolution probes other relations: serialize relation-wide.
    s = AcquireOrDie(LockId{relation, LockId::kRelationLock},
                     LockMode::kExclusive);
    if (!s.ok()) return s;
  } else {
    // Reservation loop: probe lock-free, lock the candidate partition, then
    // re-check (the probe may have gone stale while we waited for the lock).
    for (int attempt = 0; attempt < 4; ++attempt) {
      Partition* p = rel->PlanInsert(values);
      if (p == nullptr) break;
      s = AcquireOrDie(LockId{relation, p->id()}, LockMode::kExclusive);
      if (!s.ok()) return s;
      if (p->HasRoomFor(values)) {
        reserved = p->id();
        break;
      }
      mgr_->locks()->Release(id_, LockId{relation, p->id()});
    }
    if (reserved == LockId::kRelationLock) {
      // Every partition is full: escalate so Commit may create one.
      s = AcquireOrDie(LockId{relation, LockId::kRelationLock},
                       LockMode::kExclusive);
      if (!s.ok()) return s;
    }
  }
  ops_.push_back(PendingOp{LogOp::kInsert, rel, nullptr, std::move(values), 0,
                           Value(), reserved});
  return Status::Ok();
}

Status Transaction::Delete(const std::string& relation, TupleRef t) {
  if (state_ != State::kActive) return Status::FailedPrecondition("not active");
  Relation* rel = mgr_->catalog()->Get(relation);
  if (rel == nullptr) return Status::NotFound("no relation " + relation);
  // A delete erases the tuple from *every* index, so any global index makes
  // it relation-wide; otherwise structure S + partition X suffices.
  Status s = AcquireOrDie(LockId{relation, LockId::kRelationLock},
                          rel->HasGlobalIndex() ? LockMode::kExclusive
                                                : LockMode::kShared);
  if (!s.ok()) return s;
  Partition* p = rel->PartitionOf(rel->Resolve(t));
  if (p == nullptr) return Status::NotFound("tuple not in " + relation);
  s = AcquireOrDie(LockId{relation, p->id()}, LockMode::kExclusive);
  if (!s.ok()) return s;
  ops_.push_back(PendingOp{LogOp::kDelete, rel, rel->Resolve(t), {}, 0, Value()});
  return Status::Ok();
}

Status Transaction::Update(const std::string& relation, TupleRef t,
                           size_t field, Value v) {
  if (state_ != State::kActive) return Status::FailedPrecondition("not active");
  Relation* rel = mgr_->catalog()->Get(relation);
  if (rel == nullptr) return Status::NotFound("no relation " + relation);
  if (field >= rel->schema().field_count()) {
    return Status::InvalidArgument("no such field");
  }
  // String updates may relocate the tuple across partitions; global-index
  // keys are rewritten relation-wide.  Both escalate to structure X, every
  // other update runs under structure S + the tuple's partition X.
  const bool relation_wide =
      rel->schema().field(field).type == Type::kString ||
      rel->HasGlobalIndexKeyedOn(field);
  Status s = AcquireOrDie(
      LockId{relation, LockId::kRelationLock},
      relation_wide ? LockMode::kExclusive : LockMode::kShared);
  if (!s.ok()) return s;
  Partition* p = rel->PartitionOf(rel->Resolve(t));
  if (p == nullptr) return Status::NotFound("tuple not in " + relation);
  s = AcquireOrDie(LockId{relation, p->id()}, LockMode::kExclusive);
  if (!s.ok()) return s;
  ops_.push_back(PendingOp{LogOp::kUpdate, rel, rel->Resolve(t), {}, field,
                           std::move(v)});
  return Status::Ok();
}

Status Transaction::LockForRead(const std::string& relation) {
  if (state_ != State::kActive) return Status::FailedPrecondition("not active");
  Relation* rel = mgr_->catalog()->Get(relation);
  if (rel == nullptr) return Status::NotFound("no relation " + relation);
  Status s = AcquireOrDie(LockId{relation, LockId::kRelationLock},
                          LockMode::kShared);
  if (!s.ok()) return s;
  for (const auto& p : rel->partitions()) {
    s = AcquireOrDie(LockId{relation, p->id()}, LockMode::kShared);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

Status Transaction::LockRelationExclusive(const std::string& relation) {
  if (state_ != State::kActive) return Status::FailedPrecondition("not active");
  if (mgr_->catalog()->Get(relation) == nullptr) {
    return Status::NotFound("no relation " + relation);
  }
  return AcquireOrDie(LockId{relation, LockId::kRelationLock},
                      LockMode::kExclusive);
}

Status Transaction::LockPartitionExclusive(const std::string& relation,
                                           uint32_t pid) {
  if (state_ != State::kActive) return Status::FailedPrecondition("not active");
  return AcquireOrDie(LockId{relation, pid}, LockMode::kExclusive);
}

void Transaction::ReleasePartitionLock(const std::string& relation,
                                       uint32_t pid) {
  mgr_->locks()->Release(id_, LockId{relation, pid});
}

Status Transaction::Commit() {
  if (state_ != State::kActive) return Status::FailedPrecondition("not active");
  StableLogBuffer* log = mgr_->log();

  // Undo information for mid-commit failures only; a clean run never reads
  // these again (redo-only recovery).
  struct Applied {
    LogOp op;
    Relation* relation;
    TupleRef ref = nullptr;         // inserted tuple (to delete on rollback)
    TupleId tid;                    // deleted tuple's address (to restore)
    std::vector<Value> old_values;  // delete: full row; update: one value
    size_t field = 0;
  };
  std::vector<Applied> applied;

  auto rollback = [&]() {
    for (auto it = applied.rbegin(); it != applied.rend(); ++it) {
      switch (it->op) {
        case LogOp::kInsert:
          it->relation->Delete(it->ref);
          break;
        case LogOp::kDelete:
          it->relation->InsertAt(it->tid, it->old_values);
          break;
        case LogOp::kUpdate:
          it->relation->UpdateField(it->ref, it->field, it->old_values[0]);
          break;
      }
    }
    log->Abort(id_);
    state_ = State::kAborted;
    inserted_.clear();
    mgr_->locks()->ReleaseAll(id_);
  };

  for (PendingOp& op : ops_) {
    switch (op.op) {
      case LogOp::kInsert: {
        // WAL order: record the intent, apply, then patch in the location
        // and resolved after-image.
        LogRecord record;
        record.txn_id = id_;
        record.op = LogOp::kInsert;
        record.relation = op.relation->name();
        const uint64_t lsn = log->Append(std::move(record));
        TupleRef t = nullptr;
        if (op.reserved_partition != LockId::kRelationLock) {
          // Reserved path: the partition's X lock has been held since the
          // reservation, so the re-checked room can only have been consumed
          // by this transaction's own earlier inserts.
          t = op.relation->InsertInto(op.reserved_partition, op.values);
          if (t == nullptr) {
            // Stale reservation — escalate to the structure X lock so the
            // generic path may pick (or create) another partition.  Must
            // not go through AcquireOrDie: its Abort() would discard lock
            // state while `applied` ops still need the rollback below.
            if (!mgr_->locks()->Acquire(
                    id_, LockId{op.relation->name(), LockId::kRelationLock},
                    LockMode::kExclusive, lock_timeout_)) {
              rollback();
              return Status::Aborted("lock timeout (deadlock victim) on " +
                                     op.relation->name());
            }
          }
        }
        if (t == nullptr) t = op.relation->Insert(op.values);
        if (t == nullptr) {
          rollback();
          return Status::Aborted("insert failed (unique violation or bad FK)");
        }
        TupleImage payload = serialize::EncodeTuple(*op.relation, t);
        log->Patch(lsn, op.relation->IdOf(t), &payload);
        applied.push_back({LogOp::kInsert, op.relation, t, {}, {}, 0});
        inserted_.push_back(t);
        break;
      }
      case LogOp::kDelete: {
        TupleRef t = op.relation->Resolve(op.target);
        Partition* p = op.relation->PartitionOf(t);
        if (p == nullptr ||
            p->slot_state(p->SlotOf(t)) != Partition::SlotState::kLive) {
          rollback();
          return Status::Aborted("delete target vanished");
        }
        const TupleId tid = op.relation->IdOf(t);
        std::vector<Value> old_values;
        old_values.reserve(op.relation->schema().field_count());
        for (size_t i = 0; i < op.relation->schema().field_count(); ++i) {
          old_values.push_back(tuple::GetValue(t, op.relation->schema(), i));
        }
        LogRecord record;
        record.txn_id = id_;
        record.op = LogOp::kDelete;
        record.relation = op.relation->name();
        record.tid = tid;
        log->Append(std::move(record));
        Status s = op.relation->Delete(t);
        if (!s.ok()) {
          rollback();
          return Status::Aborted("delete failed: " + s.message());
        }
        applied.push_back(
            {LogOp::kDelete, op.relation, nullptr, tid, std::move(old_values), 0});
        break;
      }
      case LogOp::kUpdate: {
        TupleRef t = op.relation->Resolve(op.target);
        Partition* p = op.relation->PartitionOf(t);
        if (p == nullptr ||
            p->slot_state(p->SlotOf(t)) != Partition::SlotState::kLive) {
          rollback();
          return Status::Aborted("update target vanished");
        }
        Value old_value =
            tuple::GetValue(t, op.relation->schema(), op.field);
        LogRecord record;
        record.txn_id = id_;
        record.op = LogOp::kUpdate;
        record.relation = op.relation->name();
        record.tid = op.relation->IdOf(t);
        const uint64_t lsn = log->Append(std::move(record));
        Status s = op.relation->UpdateField(t, op.field, op.field_value);
        if (!s.ok()) {
          rollback();
          return Status::Aborted("update failed: " + s.message());
        }
        // The tuple may have moved (heap overflow forwarding); re-resolve
        // and log the final location + full after-image.
        TupleRef now = op.relation->Resolve(t);
        TupleImage payload = serialize::EncodeTuple(*op.relation, now);
        log->Patch(lsn, op.relation->IdOf(now), &payload);
        applied.push_back(
            {LogOp::kUpdate, op.relation, now, {}, {std::move(old_value)},
             op.field});
        break;
      }
    }
  }

  // Publish the write footprint to the reuse cache *while the X locks are
  // still held* and before the commit is acknowledged: any cache fill of an
  // overlapping entry is ordered against this write by the lock manager
  // (the filling reader holds S locks on its footprint), so no entry can
  // survive that predates this write, and no acknowledged write can be
  // missing from a served entry.
  if (cache::ReuseCache* rc = mgr_->reuse_cache();
      rc != nullptr && !ops_.empty()) {
    cache::Footprint writes;
    for (const LockId& id : mgr_->locks()->ExclusiveHeldBy(id_)) {
      if (id.partition == LockId::kRelationLock) {
        writes.AddAll(id.relation);
      } else {
        writes.AddPartitions(id.relation, {id.partition});
      }
    }
    rc->Invalidate(writes);
  }

  commit_lsn_ = log->Commit(id_);
  state_ = State::kCommitted;
  mgr_->locks()->ReleaseAll(id_);
  return Status::Ok();
}

void Transaction::Abort() {
  if (state_ != State::kActive) return;
  mgr_->log()->Abort(id_);  // no records exist pre-commit, but be thorough
  ops_.clear();
  state_ = State::kAborted;
  mgr_->locks()->ReleaseAll(id_);
}

}  // namespace mmdb
