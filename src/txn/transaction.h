// Transactions over the MM-DBMS (Section 2.4): deferred-update with
// redo-only logging.  Writes are buffered in the transaction; at commit,
// each operation's log record is appended to the stable log buffer *before*
// the update touches the database (IMS FASTPATH discipline), so an abort
// merely discards the buffer — no undo pass exists.
//
// Locking is at partition granularity through the LockManager.  Every
// relation-touching operation holds the relation-structure lock at least
// SHARED (which pins the partition set: no partition creation, no tuple
// relocation).  On top of that:
//   * updates/deletes of fixed-width, non-globally-indexed fields take only
//     the tuple's partition EXCLUSIVE — disjoint partitions proceed in
//     parallel because secondary indices are partition-local;
//   * inserts reserve a target partition (lock-free PlanInsert probe, then
//     partition X, then re-check) and commit into it; if no partition has
//     room the insert escalates to the structure X lock so a partition may
//     be created;
//   * string-field updates (relocation risk), writes touching a
//     relation-global index (unique indices stay global), deletes on
//     relations with a global index, and inserts into relations with a
//     global index or foreign keys escalate to the structure X lock.
// Readers share-lock the structure plus every partition they scan.

#ifndef MMDB_TXN_TRANSACTION_H_
#define MMDB_TXN_TRANSACTION_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/storage/catalog.h"
#include "src/txn/lock_manager.h"
#include "src/txn/log.h"

namespace mmdb {

namespace cache {
class ReuseCache;
}

class Transaction;

class TransactionManager {
 public:
  TransactionManager(Catalog* catalog, StableLogBuffer* log,
                     LockManager* locks,
                     cache::ReuseCache* reuse_cache = nullptr)
      : catalog_(catalog),
        log_(log),
        locks_(locks),
        reuse_cache_(reuse_cache) {}

  std::unique_ptr<Transaction> Begin();

  Catalog* catalog() const { return catalog_; }
  StableLogBuffer* log() const { return log_; }
  LockManager* locks() const { return locks_; }
  cache::ReuseCache* reuse_cache() const { return reuse_cache_; }

 private:
  Catalog* catalog_;
  StableLogBuffer* log_;
  LockManager* locks_;
  cache::ReuseCache* reuse_cache_;
  std::atomic<uint64_t> next_txn_id_{1};
};

class Transaction {
 public:
  enum class State { kActive, kCommitted, kAborted };

  uint64_t id() const { return id_; }
  State state() const { return state_; }

  /// Buffers an insert.  The write is invisible (even to this transaction)
  /// until Commit().  Takes the structure lock SHARED and reserves a target
  /// partition under its X lock; escalates to the structure X lock when the
  /// relation has a global index / foreign keys or no partition has room.
  Status Insert(const std::string& relation, std::vector<Value> values);

  /// Buffers a delete of a live tuple.  Structure S + the tuple's partition
  /// X; escalates to structure X if the relation has a global index (the
  /// delete would rewrite it).
  Status Delete(const std::string& relation, TupleRef t);

  /// Buffers a single-field update.  Structure S + the tuple's partition X;
  /// escalates to structure X for string fields (the tuple may relocate
  /// across partitions) and fields keyed by a relation-global index.
  Status Update(const std::string& relation, TupleRef t, size_t field,
                Value v);

  /// Share-locks every current partition of the relation (plus the
  /// structure lock) so the caller may run selections against it.
  Status LockForRead(const std::string& relation);

  /// Exclusively locks the relation-structure lock, serializing this
  /// transaction against every reader (LockForRead takes the structure
  /// lock shared first) and every other writer of the relation.  The query
  /// service's DML path takes this only for the escalation cases above;
  /// partition-local DML stays under structure S + partition X.
  Status LockRelationExclusive(const std::string& relation);

  /// Exclusively locks one partition (the query service's DML path, after
  /// target discovery, X-locks the partitions it will touch in ascending id
  /// order).  Re-acquiring a lock already held exclusive is a no-op.
  Status LockPartitionExclusive(const std::string& relation, uint32_t pid);

  /// Drops this transaction's hold (shared *and* exclusive) on one
  /// partition lock.  Used by the service to shed the partition S locks of
  /// partitions that turned out to hold no DML targets.  Must not be called
  /// for a partition with buffered writes.
  void ReleasePartitionLock(const std::string& relation, uint32_t pid);

  /// Lock-wait budget for this transaction's acquisitions.  On expiry the
  /// transaction aborts as the presumed deadlock victim (Section 2.4's
  /// timeout-based deadlock resolution); the query service retries the
  /// whole operation with capped exponential backoff.
  void set_lock_timeout(std::chrono::milliseconds timeout) {
    lock_timeout_ = timeout;
  }
  std::chrono::milliseconds lock_timeout() const { return lock_timeout_; }

  /// Logs then applies every buffered write; releases locks.  If an apply
  /// step fails (e.g. unique violation), already-applied steps are rolled
  /// back, the log entries are removed, and the transaction aborts.
  Status Commit();

  /// Discards buffered writes and releases locks.
  void Abort();

  size_t pending_ops() const { return ops_.size(); }

  /// LSN of this transaction's commit marker (0 until Commit(), and 0 after
  /// a commit that wrote nothing).  In sync durability mode the caller
  /// passes this to Database::WaitDurable before acknowledging the write.
  uint64_t commit_lsn() const { return commit_lsn_; }

  /// Tuples created by this transaction's inserts, in op order (empty until
  /// Commit() succeeds).  The auto-commit fast path returns the ref of its
  /// single insert from here.
  const std::vector<TupleRef>& inserted() const { return inserted_; }

 private:
  friend class TransactionManager;
  Transaction(TransactionManager* mgr, uint64_t id) : mgr_(mgr), id_(id) {}

  struct PendingOp {
    LogOp op;
    Relation* relation;
    TupleRef target = nullptr;      // delete/update
    std::vector<Value> values;      // insert values
    size_t field = 0;               // update
    Value field_value;              // update
    // Insert: partition reserved (X-locked) for the apply; kRelationLock
    // means no reservation — apply under the structure X lock instead.
    uint32_t reserved_partition = LockId::kRelationLock;
  };

  Status AcquireOrDie(const LockId& lock_id, LockMode mode);

  TransactionManager* mgr_;
  uint64_t id_;
  State state_ = State::kActive;
  std::chrono::milliseconds lock_timeout_{200};
  uint64_t commit_lsn_ = 0;
  std::vector<PendingOp> ops_;
  std::vector<TupleRef> inserted_;
};

}  // namespace mmdb

#endif  // MMDB_TXN_TRANSACTION_H_
