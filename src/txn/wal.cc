#include "src/txn/wal.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <utility>

#include "src/txn/log_format.h"

namespace mmdb {

// ---- WalManifest ------------------------------------------------------------

namespace {
constexpr const char* kManifestHeader = "mmdb-wal-manifest 1";
}  // namespace

Status WalManifest::Load(Env* env, const std::string& dir, WalManifest* out) {
  *out = WalManifest{};
  std::string data;
  Status s = env->ReadFile(dir + "/" + log_format::ManifestFileName(), &data);
  if (!s.ok()) return Status::Ok();  // no manifest yet: legacy / fresh dir
  size_t pos = 0;
  bool saw_header = false;
  while (pos < data.size()) {
    size_t eol = data.find('\n', pos);
    if (eol == std::string::npos) eol = data.size();
    const std::string line = data.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (!saw_header) {
      if (line != kManifestHeader) {
        return Status::Corruption("wal.manifest: bad header: " + line);
      }
      saw_header = true;
      continue;
    }
    WalSegmentInfo info;
    if (std::sscanf(line.c_str(), "segment %" SCNu64 " %" SCNu64 " %" SCNu64,
                    &info.start, &info.end, &info.bytes) != 3) {
      return Status::Corruption("wal.manifest: malformed line: " + line);
    }
    s = out->Append(info);
    if (!s.ok()) return s;
  }
  if (!saw_header) {
    return Status::Corruption("wal.manifest: empty file (missing header)");
  }
  return Status::Ok();
}

Status WalManifest::Save(Env* env, const std::string& dir) const {
  std::string body(kManifestHeader);
  body += '\n';
  char buf[96];
  for (const WalSegmentInfo& info : segments_) {
    std::snprintf(buf, sizeof(buf),
                  "segment %llu %llu %llu\n",
                  static_cast<unsigned long long>(info.start),
                  static_cast<unsigned long long>(info.end),
                  static_cast<unsigned long long>(info.bytes));
    body += buf;
  }
  const std::string path = dir + "/" + log_format::ManifestFileName();
  const std::string tmp = path + ".tmp";
  std::unique_ptr<WritableFile> file;
  Status s = env->NewWritableFile(tmp, /*truncate=*/true, &file);
  if (!s.ok()) return s;
  s = file->Append(body);
  if (s.ok()) s = file->Sync();
  if (s.ok()) s = file->Close();
  if (!s.ok()) return s;
  return env->RenameFile(tmp, path);
}

Status WalManifest::Append(const WalSegmentInfo& info) {
  if (info.end < info.start) {
    return Status::Corruption("wal.manifest: segment end below start");
  }
  if (!segments_.empty()) {
    const WalSegmentInfo& last = segments_.back();
    if (info.start != last.end) {
      return Status::Corruption(
          "wal.manifest: segment chain broken (expected start " +
          std::to_string(last.end) + ", got " + std::to_string(info.start) +
          ")");
    }
  }
  segments_.push_back(info);
  return Status::Ok();
}

void WalManifest::PruneBelow(uint64_t floor) {
  size_t keep = 0;
  while (keep < segments_.size() && segments_[keep].end <= floor) ++keep;
  segments_.erase(segments_.begin(), segments_.begin() + keep);
}

const WalSegmentInfo* WalManifest::Find(uint64_t start) const {
  for (const WalSegmentInfo& info : segments_) {
    if (info.start == start) return &info;
  }
  return nullptr;
}

// ---- WalWriter --------------------------------------------------------------

std::string WalWriter::segment_path() const {
  return dir_ + "/" + log_format::WalFileName(segment_start_);
}

Status WalWriter::Open(uint64_t start_lsn, bool truncate) {
  segment_start_ = start_lsn;
  segment_bytes_ = 0;
  synced_bytes_ = 0;
  failed_ = false;
  Status s = env_->NewWritableFile(segment_path(), truncate, &file_);
  if (!s.ok()) failed_ = true;
  return s;
}

Status WalWriter::Append(const LogRecord& record) {
  if (failed_) return Status::Internal("wal writer failed earlier");
  if (file_ == nullptr) return Status::FailedPrecondition("wal not open");
  std::string frame;
  log_format::EncodeRecord(record, &frame);
  Status s = file_->Append(frame);
  if (!s.ok()) {
    // A torn frame may now sit at the segment tail; latch so no valid
    // frame can ever be appended after it.
    failed_ = true;
    return s;
  }
  bytes_appended_ += frame.size();
  segment_bytes_ += frame.size();
  ++records_appended_;
  return Status::Ok();
}

Status WalWriter::Sync() {
  if (failed_) return Status::Internal("wal writer failed earlier");
  if (file_ == nullptr) return Status::FailedPrecondition("wal not open");
  Status s = file_->Sync();
  if (!s.ok()) {
    failed_ = true;
    return s;
  }
  synced_bytes_ = segment_bytes_;
  return Status::Ok();
}

Status WalWriter::Rotate(uint64_t start_lsn) {
  if (file_ != nullptr) {
    Status s = Close();
    if (!s.ok()) return s;
  }
  return Open(start_lsn, /*truncate=*/true);
}

Status WalWriter::Close() {
  if (file_ == nullptr) return Status::Ok();
  Status s = file_->Close();
  file_.reset();
  return s;
}

// ---- ReplayWalDir -----------------------------------------------------------

Status ReplayWalDir(Env* env, const std::string& dir, uint64_t after_lsn,
                    WalReplayResult* result) {
  WalReplayOptions options;
  options.after_lsn = after_lsn;
  return ReplayWalDir(env, dir, options, result);
}

Status ReplayWalDir(Env* env, const std::string& dir,
                    const WalReplayOptions& options, WalReplayResult* result) {
  *result = WalReplayResult{};

  std::vector<std::string> names;
  Status s = env->ListDir(dir, &names);
  if (!s.ok()) return s;
  std::vector<std::pair<uint64_t, std::string>> segments;
  for (const std::string& name : names) {
    uint64_t start;
    if (log_format::ParseWalFileName(name, &start)) {
      segments.emplace_back(start, dir + "/" + name);
    }
  }
  std::sort(segments.begin(), segments.end());
  for (size_t i = 1; i < segments.size(); ++i) {
    if (segments[i].first == segments[i - 1].first) {
      return Status::Corruption("duplicate wal segment start lsn " +
                                std::to_string(segments[i].first));
    }
  }

  WalManifest manifest;
  s = WalManifest::Load(env, dir, &manifest);
  if (!s.ok()) return s;

  // Every sealed segment the replay range needs must exist on disk; a hole
  // in the middle of the chain means GC or shipping lost a segment and a
  // silent partial replay would resurrect a state that never existed.
  const uint64_t upto = options.upto_lsn;
  for (const WalSegmentInfo& info : manifest.segments()) {
    if (info.end <= options.after_lsn) continue;  // covered by checkpoint
    if (info.start >= upto) continue;             // past the PITR target
    const bool present =
        std::any_of(segments.begin(), segments.end(),
                    [&](const auto& seg) { return seg.first == info.start; });
    if (!present) {
      return Status::Corruption("wal segment gap: " +
                                log_format::WalFileName(info.start) +
                                " listed in wal.manifest but missing");
    }
  }
  // A segment file the manifest chain does not account for, yet starting
  // inside the chain's range, is an overlap (e.g. shipped out of order).
  if (!manifest.empty()) {
    const uint64_t chain_end = manifest.segments().back().end;
    for (const auto& [start, path] : segments) {
      if (start < chain_end && manifest.Find(start) == nullptr) {
        return Status::Corruption(
            "wal segment " + log_format::WalFileName(start) +
            " overlaps the manifest chain (not a chain member)");
      }
    }
  }

  // The retained chain must reach back to the replay base.  A history
  // pruned past the base (old segments GC'd after newer checkpoints) can
  // not reproduce the requested state; replaying just the surviving suffix
  // would silently fabricate a state that never existed — typical trigger:
  // a point-in-time target older than every retained checkpoint.
  if (!segments.empty() && options.after_lsn < upto &&
      segments.front().first > options.after_lsn) {
    return Status::Corruption(
        "wal history begins at " +
        log_format::WalFileName(segments.front().first) +
        " but replay needs records after lsn " +
        std::to_string(options.after_lsn) +
        " (earlier segments were pruned; the target predates retained "
        "history)");
  }

  // Pass over every segment in start-LSN order, collecting the valid
  // record prefix and the set of committed transactions.
  std::vector<LogRecord> valid;
  std::vector<uint64_t> committed;
  uint64_t last_lsn = 0;
  bool done = false;
  for (size_t i = 0; i < segments.size() && !done; ++i) {
    const auto& [start, path] = segments[i];
    const WalSegmentInfo* sealed = manifest.Find(start);
    if (sealed != nullptr && sealed->end <= options.after_lsn) {
      // Entirely covered by the checkpoint: skip the read, but keep the
      // LSN cursor honest for the overlap check on the next segment.
      last_lsn = std::max(last_lsn, sealed->end);
      continue;
    }
    if (start >= upto) break;  // records there are all past the target
    if (last_lsn > start) {
      return Status::Corruption("overlapping wal segments: " +
                                log_format::WalFileName(start) +
                                " starts below replayed lsn " +
                                std::to_string(last_lsn));
    }
    std::string data;
    s = env->ReadFile(path, &data);
    if (!s.ok()) return s;
    ++result->segments_read;
    if (sealed != nullptr && data.size() != sealed->bytes) {
      return Status::Corruption(
          log_format::WalFileName(start) + " is " +
          std::to_string(data.size()) + " bytes; wal.manifest sealed it at " +
          std::to_string(sealed->bytes));
    }
    // Corruption in a sealed or non-final segment can never be crash
    // residue (seals fsync before the manifest entry exists); only the
    // very tail of the stream may legally be torn.
    const bool tail_may_tear = (sealed == nullptr) && (i + 1 == segments.size());
    size_t pos = 0;
    for (;;) {
      LogRecord record;
      const log_format::DecodeResult r =
          log_format::DecodeRecord(data, &pos, &record);
      if (r == log_format::DecodeResult::kEnd) break;
      const bool frame_bad = (r != log_format::DecodeResult::kOk);
      const bool lsn_bad =
          !frame_bad && (record.lsn <= last_lsn || record.lsn <= start ||
                         (sealed != nullptr && record.lsn > sealed->end));
      if (frame_bad || lsn_bad) {
        if (!tail_may_tear) {
          return Status::Corruption(
              log_format::WalFileName(start) + ": " +
              (frame_bad ? "corrupt frame" : "lsn out of segment range") +
              " at offset " + std::to_string(pos) +
              " in a sealed/non-final segment");
        }
        result->tail_corrupt = true;
        // Best-effort count of the frames lost after the corruption (the
        // bad frame plus any well-framed successors) so Progress can
        // report how much was dropped.  None of them are applied.
        while (pos + 8 <= data.size()) {
          uint32_t len;
          std::memcpy(&len, data.data() + pos, sizeof(len));
          if (pos + 8 + len > data.size()) break;
          pos += 8 + len;
          ++result->records_dropped;
        }
        if (pos < data.size()) ++result->records_dropped;  // torn tail frame
        done = true;
        break;
      }
      if (record.lsn > upto) {
        // Point-in-time bound: commit markers past the target must not
        // count, so transactions open at the target drop out below.
        done = true;
        break;
      }
      last_lsn = record.lsn;
      result->max_lsn = std::max(result->max_lsn, record.lsn);
      if (record.is_commit_marker()) {
        committed.push_back(record.txn_id);
      }
      valid.push_back(std::move(record));
    }
  }

  // Keep only data records of committed transactions past the checkpoint.
  auto is_committed = [&committed](uint64_t txn_id) {
    return std::find(committed.begin(), committed.end(), txn_id) !=
           committed.end();
  };
  for (LogRecord& record : valid) {
    if (record.is_commit_marker()) continue;
    if (!is_committed(record.txn_id)) {
      ++result->records_dropped;
      continue;
    }
    if (record.lsn <= options.after_lsn) continue;  // covered by checkpoint
    result->records.push_back(std::move(record));
  }
  return Status::Ok();
}

}  // namespace mmdb
