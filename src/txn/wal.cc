#include "src/txn/wal.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "src/txn/log_format.h"

namespace mmdb {

std::string WalWriter::segment_path() const {
  return dir_ + "/" + log_format::WalFileName(segment_start_);
}

Status WalWriter::Open(uint64_t start_lsn, bool truncate) {
  segment_start_ = start_lsn;
  failed_ = false;
  Status s = env_->NewWritableFile(segment_path(), truncate, &file_);
  if (!s.ok()) failed_ = true;
  return s;
}

Status WalWriter::Append(const LogRecord& record) {
  if (failed_) return Status::Internal("wal writer failed earlier");
  if (file_ == nullptr) return Status::FailedPrecondition("wal not open");
  std::string frame;
  log_format::EncodeRecord(record, &frame);
  Status s = file_->Append(frame);
  if (!s.ok()) {
    // A torn frame may now sit at the segment tail; latch so no valid
    // frame can ever be appended after it.
    failed_ = true;
    return s;
  }
  bytes_appended_ += frame.size();
  ++records_appended_;
  return Status::Ok();
}

Status WalWriter::Sync() {
  if (failed_) return Status::Internal("wal writer failed earlier");
  if (file_ == nullptr) return Status::FailedPrecondition("wal not open");
  Status s = file_->Sync();
  if (!s.ok()) failed_ = true;
  return s;
}

Status WalWriter::Rotate(uint64_t start_lsn) {
  if (file_ != nullptr) {
    Status s = Close();
    if (!s.ok()) return s;
  }
  return Open(start_lsn, /*truncate=*/true);
}

Status WalWriter::Close() {
  if (file_ == nullptr) return Status::Ok();
  Status s = file_->Close();
  file_.reset();
  return s;
}

Status ReplayWalDir(Env* env, const std::string& dir, uint64_t after_lsn,
                    WalReplayResult* result) {
  *result = WalReplayResult{};

  std::vector<std::string> names;
  Status s = env->ListDir(dir, &names);
  if (!s.ok()) return s;
  std::vector<std::pair<uint64_t, std::string>> segments;
  for (const std::string& name : names) {
    uint64_t start;
    if (log_format::ParseWalFileName(name, &start)) {
      segments.emplace_back(start, dir + "/" + name);
    }
  }
  std::sort(segments.begin(), segments.end());

  // Pass over every segment in start-LSN order, collecting the valid
  // record prefix and the set of committed transactions.  The stream ends
  // at the first torn/corrupt frame or LSN regression; later segments are
  // not read past it (their records could only follow the corruption).
  std::vector<LogRecord> valid;
  std::vector<uint64_t> committed;
  uint64_t last_lsn = 0;
  for (const auto& [start, path] : segments) {
    if (result->tail_corrupt) break;
    std::string data;
    s = env->ReadFile(path, &data);
    if (!s.ok()) return s;
    ++result->segments_read;
    size_t pos = 0;
    for (;;) {
      LogRecord record;
      const log_format::DecodeResult r =
          log_format::DecodeRecord(data, &pos, &record);
      if (r == log_format::DecodeResult::kEnd) break;
      if (r == log_format::DecodeResult::kCorrupt ||
          record.lsn <= last_lsn) {
        result->tail_corrupt = true;
        // Best-effort count of the frames lost after the corruption (the
        // bad frame plus any well-framed successors) so Progress can
        // report how much was dropped.  None of them are applied.
        while (pos + 8 <= data.size()) {
          uint32_t len;
          std::memcpy(&len, data.data() + pos, sizeof(len));
          if (pos + 8 + len > data.size()) break;
          pos += 8 + len;
          ++result->records_dropped;
        }
        if (pos < data.size()) ++result->records_dropped;  // torn tail frame
        break;
      }
      last_lsn = record.lsn;
      result->max_lsn = std::max(result->max_lsn, record.lsn);
      if (record.is_commit_marker()) {
        committed.push_back(record.txn_id);
      }
      valid.push_back(std::move(record));
    }
  }

  // Keep only data records of committed transactions past the checkpoint.
  auto is_committed = [&committed](uint64_t txn_id) {
    return std::find(committed.begin(), committed.end(), txn_id) !=
           committed.end();
  };
  for (LogRecord& record : valid) {
    if (record.is_commit_marker()) continue;
    if (!is_committed(record.txn_id)) {
      ++result->records_dropped;
      continue;
    }
    if (record.lsn <= after_lsn) continue;  // covered by the checkpoint
    result->records.push_back(std::move(record));
  }
  return Status::Ok();
}

}  // namespace mmdb
