// Write-ahead log segments on an Env.  WalWriter appends framed records
// (src/txn/log_format.h) to the current segment and rotates to a fresh one
// at each checkpoint; ReplayWalDir reads every segment of a durability
// directory back in LSN order, keeps the valid prefix, and filters it down
// to the records of committed transactions newer than the checkpoint.
//
// Failure discipline: the first append/sync error latches the writer as
// failed — a half-written frame must never be followed by a valid one, or
// replay could resurrect the valid record while skipping the torn one.

#ifndef MMDB_TXN_WAL_H_
#define MMDB_TXN_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/txn/log.h"
#include "src/util/env.h"

namespace mmdb {

class WalWriter {
 public:
  WalWriter(Env* env, std::string dir) : env_(env), dir_(std::move(dir)) {}

  /// Opens segment wal-<start_lsn>.log.  `truncate` discards any previous
  /// file of that name (safe only when every needed record ≤ start_lsn is
  /// checkpointed — see DurabilityManager's initial checkpoint).
  Status Open(uint64_t start_lsn, bool truncate);

  /// Appends one framed record (buffered until Sync).
  Status Append(const LogRecord& record);

  /// fsyncs the current segment.
  Status Sync();

  /// Closes the current segment and opens a fresh wal-<start_lsn>.log.
  Status Rotate(uint64_t start_lsn);

  Status Close();

  uint64_t segment_start() const { return segment_start_; }
  std::string segment_path() const;
  bool failed() const { return failed_; }
  uint64_t bytes_appended() const { return bytes_appended_; }
  uint64_t records_appended() const { return records_appended_; }

 private:
  Env* env_;
  std::string dir_;
  std::unique_ptr<WritableFile> file_;
  uint64_t segment_start_ = 0;
  uint64_t bytes_appended_ = 0;
  uint64_t records_appended_ = 0;
  bool failed_ = false;
};

struct WalReplayResult {
  /// Data records of committed transactions with lsn > the filter LSN, in
  /// LSN order (commit markers are consumed, not emitted).
  std::vector<LogRecord> records;
  /// Records parsed but discarded: members of transactions with no commit
  /// marker in the valid prefix, plus frames after the first corruption.
  size_t records_dropped = 0;
  /// Highest LSN seen in the valid prefix (committed or not) — the floor
  /// for ResetNextLsn, so fresh LSNs never collide with on-disk ones.
  uint64_t max_lsn = 0;
  /// True if replay stopped at a torn/corrupt record instead of clean EOF.
  bool tail_corrupt = false;
  size_t segments_read = 0;
};

/// Replays every wal-*.log under `dir`: records with lsn <= after_lsn are
/// skipped (they are covered by the checkpoint).  Stops cleanly at the
/// first torn/corrupt record or LSN regression; everything before it that
/// belongs to a committed transaction is returned.
Status ReplayWalDir(Env* env, const std::string& dir, uint64_t after_lsn,
                    WalReplayResult* result);

}  // namespace mmdb

#endif  // MMDB_TXN_WAL_H_
