// Write-ahead log segments on an Env.  WalWriter appends framed records
// (src/txn/log_format.h) to the current segment and rotates to a fresh one
// when the segment is sealed — at a checkpoint, or mid-epoch once the
// segment reaches the configured size (DurabilityOptions::wal_segment_bytes).
// Sealed segments are recorded in a WalManifest (wal.manifest): a contiguous
// chain of [start, end] LSN ranges that replay and replication both rely on
// to detect gaps, overlaps, and truncated segments loudly.
//
// ReplayWalDir reads every segment of a durability directory back in LSN
// order, keeps the valid prefix, and filters it down to the records of
// committed transactions newer than the checkpoint.  Corruption policy:
// a torn tail in the *final* segment is the legitimate residue of a crash
// and stops replay cleanly (tail_corrupt); anything wrong earlier in the
// chain — a missing manifest segment, overlapping or duplicate start LSNs,
// a bad frame inside a sealed segment, a sealed segment whose size differs
// from its manifest entry — is a typed StatusCode::kCorruption error,
// never a silent partial replay.
//
// Failure discipline: the first append/sync error latches the writer as
// failed — a half-written frame must never be followed by a valid one, or
// replay could resurrect the valid record while skipping the torn one.

#ifndef MMDB_TXN_WAL_H_
#define MMDB_TXN_WAL_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "src/txn/log.h"
#include "src/util/env.h"

namespace mmdb {

/// One sealed WAL segment: wal-<start>.log holds records with
/// start < lsn <= end and is exactly `bytes` long.  (LSN holes inside the
/// range are legitimate: aborted transactions release their LSNs without
/// ever reaching the WAL.)
struct WalSegmentInfo {
  uint64_t start = 0;
  uint64_t end = 0;
  uint64_t bytes = 0;
};

/// The sealed-segment chain of a durability directory, persisted as
/// wal.manifest (text, temp+rename).  Invariant: entries are ordered and
/// contiguous — entry[i].end == entry[i+1].start — so a reader can prove
/// the chain covers an LSN range with no gaps.  The active (still-growing)
/// segment is never listed; its name is the last entry's end (or the
/// checkpoint LSN when the chain is empty).
class WalManifest {
 public:
  /// Loads dir/wal.manifest.  A missing file is an empty manifest (legacy
  /// directories predate it); a malformed file is kCorruption.
  static Status Load(Env* env, const std::string& dir, WalManifest* out);

  /// Persists via temp+rename (crash-atomic).
  Status Save(Env* env, const std::string& dir) const;

  /// Appends a sealed segment; fails if it does not chain onto the last
  /// entry (end >= start, start == last end).
  Status Append(const WalSegmentInfo& info);

  /// Drops leading entries with end <= floor (their files were GC'd).
  void PruneBelow(uint64_t floor);

  void Clear() { segments_.clear(); }
  const std::vector<WalSegmentInfo>& segments() const { return segments_; }
  const WalSegmentInfo* Find(uint64_t start) const;
  bool empty() const { return segments_.empty(); }

 private:
  std::vector<WalSegmentInfo> segments_;
};

class WalWriter {
 public:
  WalWriter(Env* env, std::string dir) : env_(env), dir_(std::move(dir)) {}

  /// Opens segment wal-<start_lsn>.log.  `truncate` discards any previous
  /// file of that name (safe only when every needed record ≤ start_lsn is
  /// checkpointed — see DurabilityManager's initial checkpoint).
  Status Open(uint64_t start_lsn, bool truncate);

  /// Appends one framed record (buffered until Sync).
  Status Append(const LogRecord& record);

  /// fsyncs the current segment.
  Status Sync();

  /// Closes the current segment and opens a fresh wal-<start_lsn>.log.
  Status Rotate(uint64_t start_lsn);

  Status Close();

  uint64_t segment_start() const { return segment_start_; }
  std::string segment_path() const;
  bool failed() const { return failed_; }
  uint64_t bytes_appended() const { return bytes_appended_; }
  uint64_t records_appended() const { return records_appended_; }
  /// Bytes written to the *current* segment (resets at Open/Rotate).
  uint64_t segment_bytes() const { return segment_bytes_; }
  /// Prefix of the current segment covered by the last Sync — the shipper
  /// serves a live segment only up to here (unsynced bytes could vanish in
  /// a crash and fork the replica off a timeline the primary never had).
  uint64_t synced_bytes() const { return synced_bytes_; }

 private:
  Env* env_;
  std::string dir_;
  std::unique_ptr<WritableFile> file_;
  uint64_t segment_start_ = 0;
  uint64_t bytes_appended_ = 0;
  uint64_t records_appended_ = 0;
  uint64_t segment_bytes_ = 0;
  uint64_t synced_bytes_ = 0;
  bool failed_ = false;
};

struct WalReplayOptions {
  /// Records with lsn <= after_lsn are skipped (covered by the checkpoint).
  uint64_t after_lsn = 0;
  /// Point-in-time bound: scanning stops at the first record with
  /// lsn > upto_lsn, so commit markers past the target do not count —
  /// transactions still open at the target LSN are dropped, exactly as a
  /// crash at that moment would have dropped them.
  uint64_t upto_lsn = std::numeric_limits<uint64_t>::max();
};

struct WalReplayResult {
  /// Data records of committed transactions with lsn > the filter LSN, in
  /// LSN order (commit markers are consumed, not emitted).
  std::vector<LogRecord> records;
  /// Records parsed but discarded: members of transactions with no commit
  /// marker in the valid prefix, plus frames after the first corruption.
  size_t records_dropped = 0;
  /// Highest LSN seen in the valid prefix (committed or not) — the floor
  /// for ResetNextLsn, so fresh LSNs never collide with on-disk ones.
  uint64_t max_lsn = 0;
  /// True if replay stopped at a torn/corrupt record instead of clean EOF.
  bool tail_corrupt = false;
  size_t segments_read = 0;
};

/// Replays every wal-*.log under `dir`.  A torn tail in the final segment
/// stops cleanly (crash residue); a gap / overlap / duplicate in the
/// segment chain, or corruption inside a sealed or non-final segment,
/// fails with StatusCode::kCorruption and an empty result.
Status ReplayWalDir(Env* env, const std::string& dir,
                    const WalReplayOptions& options, WalReplayResult* result);

/// Back-compat convenience: replay with only the checkpoint filter.
Status ReplayWalDir(Env* env, const std::string& dir, uint64_t after_lsn,
                    WalReplayResult* result);

}  // namespace mmdb

#endif  // MMDB_TXN_WAL_H_
