// Bump-pointer arena used by index structures for node allocation.
//
// Main-memory index structures allocate many small fixed-ish nodes; an arena
// keeps them dense (good cache behavior, the property Section 2.1 of the
// paper argues partitions provide for tuples) and makes whole-index teardown
// O(#blocks).  Freed nodes are recycled through per-size free lists.

#ifndef MMDB_UTIL_ARENA_H_
#define MMDB_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace mmdb {

/// Block-allocating arena with free-list recycling.
/// Not thread-safe; each index owns its own arena.
class Arena {
 public:
  explicit Arena(size_t block_bytes = 64 * 1024) : block_bytes_(block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Allocates `bytes` with at least alignof(max_align_t) alignment.
  void* Allocate(size_t bytes) {
    bytes = Align(bytes);
    if (bytes > block_bytes_) {
      // Oversized allocation gets its own block.
      blocks_.push_back(std::make_unique<std::byte[]>(bytes));
      allocated_bytes_ += bytes;
      return blocks_.back().get();
    }
    if (current_ == nullptr || remaining_ < bytes) {
      blocks_.push_back(std::make_unique<std::byte[]>(block_bytes_));
      current_ = blocks_.back().get();
      remaining_ = block_bytes_;
    }
    void* out = current_;
    current_ += bytes;
    remaining_ -= bytes;
    allocated_bytes_ += bytes;
    return out;
  }

  /// Releases every block.  All previously returned pointers are
  /// invalidated; any NodePool layered on top must be discarded too.  Used
  /// by per-worker scratch arenas that recycle between tasks.
  void Reset() {
    blocks_.clear();
    current_ = nullptr;
    remaining_ = 0;
    allocated_bytes_ = 0;
  }

  /// Total bytes handed out (net of nothing: frees are recycled by callers).
  size_t allocated_bytes() const { return allocated_bytes_; }

  /// Total bytes reserved from the system.
  size_t reserved_bytes() const {
    size_t total = 0;
    for (const auto& b : blocks_) (void)b, total += block_bytes_;
    return total;
  }

 private:
  static size_t Align(size_t n) {
    constexpr size_t kAlign = alignof(std::max_align_t);
    return (n + kAlign - 1) & ~(kAlign - 1);
  }

  size_t block_bytes_;
  std::vector<std::unique_ptr<std::byte[]>> blocks_;
  std::byte* current_ = nullptr;
  size_t remaining_ = 0;
  size_t allocated_bytes_ = 0;
};

/// Typed free list layered over an Arena: recycles fixed-size nodes.
template <typename T>
class NodePool {
 public:
  explicit NodePool(Arena* arena) : arena_(arena) {}

  /// Allocates raw storage for one T (caller constructs in place).
  void* Allocate() {
    if (free_ != nullptr) {
      void* out = free_;
      free_ = free_->next;
      ++live_;
      return out;
    }
    ++live_;
    return arena_->Allocate(SlotBytes());
  }

  /// Returns storage for a destroyed T to the pool.
  void Free(void* p) {
    auto* node = static_cast<FreeNode*>(p);
    node->next = free_;
    free_ = node;
    --live_;
  }

  size_t live() const { return live_; }

  static constexpr size_t SlotBytes() {
    return sizeof(T) > sizeof(void*) ? sizeof(T) : sizeof(void*);
  }

 private:
  struct FreeNode {
    FreeNode* next;
  };
  Arena* arena_;
  FreeNode* free_ = nullptr;
  size_t live_ = 0;
};

}  // namespace mmdb

#endif  // MMDB_UTIL_ARENA_H_
