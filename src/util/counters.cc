#include "src/util/counters.h"

#include <mutex>
#include <sstream>

#include "src/util/metrics.h"

namespace mmdb {

OpCounters OpCounters::operator-(const OpCounters& rhs) const {
  OpCounters out;
  out.comparisons = comparisons - rhs.comparisons;
  out.data_moves = data_moves - rhs.data_moves;
  out.hash_calls = hash_calls - rhs.hash_calls;
  out.node_visits = node_visits - rhs.node_visits;
  out.rotations = rotations - rhs.rotations;
  out.splits = splits - rhs.splits;
  out.merges = merges - rhs.merges;
  out.chunks = chunks - rhs.chunks;
  out.prefetches = prefetches - rhs.prefetches;
  return out;
}

OpCounters& OpCounters::operator+=(const OpCounters& rhs) {
  comparisons += rhs.comparisons;
  data_moves += rhs.data_moves;
  hash_calls += rhs.hash_calls;
  node_visits += rhs.node_visits;
  rotations += rhs.rotations;
  splits += rhs.splits;
  merges += rhs.merges;
  chunks += rhs.chunks;
  prefetches += rhs.prefetches;
  return *this;
}

std::string OpCounters::ToString() const {
  std::ostringstream os;
  os << "cmp=" << comparisons << " moves=" << data_moves
     << " hash=" << hash_calls << " nodes=" << node_visits
     << " rot=" << rotations << " splits=" << splits << " merges=" << merges
     << " chunks=" << chunks << " pf=" << prefetches;
  return os.str();
}

namespace counters {

#if defined(MMDB_COUNTERS)
namespace detail {
thread_local OpCounters tls_counters;
}  // namespace detail

namespace {
std::mutex g_fold_mu;
OpCounters g_folded;  // counters folded by threads that finished counting
}  // namespace

OpCounters Snapshot() { return detail::tls_counters; }
void Reset() { detail::tls_counters = OpCounters(); }

void FoldIntoGlobal() {
  std::lock_guard<std::mutex> lock(g_fold_mu);
  g_folded += detail::tls_counters;
  detail::tls_counters = OpCounters();
}

OpCounters AccumulatedSnapshot() {
  std::lock_guard<std::mutex> lock(g_fold_mu);
  OpCounters out = g_folded;
  out += detail::tls_counters;
  return out;
}

void ResetAll() {
  std::lock_guard<std::mutex> lock(g_fold_mu);
  g_folded = OpCounters();
  detail::tls_counters = OpCounters();
}
#else
OpCounters Snapshot() { return OpCounters(); }
void Reset() {}
void FoldIntoGlobal() {}
OpCounters AccumulatedSnapshot() { return OpCounters(); }
void ResetAll() {}
#endif

void PublishGauges(MetricsRegistry* registry) {
  if (registry == nullptr) return;
  const OpCounters oc = AccumulatedSnapshot();
  const auto set = [&](const char* name, uint64_t v) {
    registry->GetGauge(std::string("mmdb_opcounters_") + name)
        ->Set(static_cast<int64_t>(v));
  };
  set("comparisons", oc.comparisons);
  set("data_moves", oc.data_moves);
  set("hash_calls", oc.hash_calls);
  set("node_visits", oc.node_visits);
  set("rotations", oc.rotations);
  set("splits", oc.splits);
  set("merges", oc.merges);
  set("chunks", oc.chunks);
  set("prefetches", oc.prefetches);
}

}  // namespace counters
}  // namespace mmdb
