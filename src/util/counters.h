// Operation counters, mirroring the instrumentation described in Section 3.1
// of the paper: "recording and examining the number of comparisons, the
// amount of data movement, the number of hash function calls, and other
// miscellaneous operations to ensure that the algorithms were doing what they
// were supposed to".
//
// The paper compiled the counters out for the final timing runs; we do the
// same via the MMDB_COUNTERS preprocessor flag (ON by default for tests,
// turned into no-ops otherwise).
//
// Thread-safety: the live counters are explicitly thread_local, so Bump*
// never contends and never races — each thread (including every query
// service worker) counts its own work.  Cross-thread totals are explicit:
// a thread folds its counters into a process-wide, mutex-protected
// accumulator with FoldIntoGlobal() (workers do this when they exit), and
// AccumulatedSnapshot() reads that accumulator plus the calling thread's
// live counters.  Live counters of *other* running threads are never read
// — that would be a data race.

#ifndef MMDB_UTIL_COUNTERS_H_
#define MMDB_UTIL_COUNTERS_H_

#include <cstdint>
#include <string>

namespace mmdb {

/// Snapshot of the global operation counters.
struct OpCounters {
  uint64_t comparisons = 0;     ///< key comparisons (index + sort + merge)
  uint64_t data_moves = 0;      ///< items moved/copied inside index nodes
  uint64_t hash_calls = 0;      ///< hash function evaluations
  uint64_t node_visits = 0;     ///< index nodes touched during a traversal
  uint64_t rotations = 0;       ///< tree rebalancing rotations
  uint64_t splits = 0;          ///< node/bucket splits (hash or tree)
  uint64_t merges = 0;          ///< node/bucket merges or directory shrinks
  uint64_t chunks = 0;          ///< tuple-pointer chunks processed (batched exec)
  uint64_t prefetches = 0;      ///< software prefetch instructions issued

  OpCounters operator-(const OpCounters& rhs) const;
  OpCounters& operator+=(const OpCounters& rhs);
  bool operator==(const OpCounters& rhs) const = default;

  /// Human-readable one-line rendering, for test diagnostics.
  std::string ToString() const;
};

class MetricsRegistry;

namespace counters {

/// Returns a snapshot of the current thread's counters.
OpCounters Snapshot();

/// Resets the current thread's counters to zero.
void Reset();

/// Adds the current thread's counters into the process-wide accumulator
/// (mutex-protected) and resets them.  Call before a counting thread
/// exits; QueryService workers do this automatically.
void FoldIntoGlobal();

/// Process-wide accumulator (everything folded so far) plus the calling
/// thread's live counters.
OpCounters AccumulatedSnapshot();

/// Clears the process-wide accumulator and the calling thread's counters.
void ResetAll();

/// Publishes AccumulatedSnapshot() into `registry` as
/// `mmdb_opcounters_<field>` gauges (one per OpCounters field).  Workers
/// fold on every query completion, so the published totals track live
/// traffic, not just exited threads.
void PublishGauges(MetricsRegistry* registry);

#if defined(MMDB_COUNTERS)
namespace detail {
extern thread_local OpCounters tls_counters;
}  // namespace detail
inline void BumpComparisons(uint64_t n = 1) { detail::tls_counters.comparisons += n; }
inline void BumpDataMoves(uint64_t n = 1) { detail::tls_counters.data_moves += n; }
inline void BumpHashCalls(uint64_t n = 1) { detail::tls_counters.hash_calls += n; }
inline void BumpNodeVisits(uint64_t n = 1) { detail::tls_counters.node_visits += n; }
inline void BumpRotations(uint64_t n = 1) { detail::tls_counters.rotations += n; }
inline void BumpSplits(uint64_t n = 1) { detail::tls_counters.splits += n; }
inline void BumpMerges(uint64_t n = 1) { detail::tls_counters.merges += n; }
inline void BumpChunks(uint64_t n = 1) { detail::tls_counters.chunks += n; }
inline void BumpPrefetches(uint64_t n = 1) { detail::tls_counters.prefetches += n; }
#else
inline void BumpComparisons(uint64_t = 1) {}
inline void BumpDataMoves(uint64_t = 1) {}
inline void BumpHashCalls(uint64_t = 1) {}
inline void BumpNodeVisits(uint64_t = 1) {}
inline void BumpRotations(uint64_t = 1) {}
inline void BumpSplits(uint64_t = 1) {}
inline void BumpMerges(uint64_t = 1) {}
inline void BumpChunks(uint64_t = 1) {}
inline void BumpPrefetches(uint64_t = 1) {}
#endif

}  // namespace counters
}  // namespace mmdb

#endif  // MMDB_UTIL_COUNTERS_H_
